module xemem

go 1.22
