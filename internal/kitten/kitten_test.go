package kitten_test

import (
	"testing"

	"xemem/internal/extent"
	"xemem/internal/kitten"
	"xemem/internal/mem"
	"xemem/internal/pagetable"
	"xemem/internal/sim"
)

func newKitten(t *testing.T) (*kitten.Kitten, *sim.World) {
	t.Helper()
	w := sim.NewWorld(1)
	pm := mem.NewPhysMem("node", 1<<30)
	return kitten.New("kitten0", w, sim.DefaultCosts(), pm, pm.Zone(0)), w
}

func TestStaticLayout(t *testing.T) {
	k, _ := newKitten(t)
	p, heap, err := k.NewProcess("app", 1024)
	if err != nil {
		t.Fatal(err)
	}
	// All three static regions fully mapped at creation (§4.3).
	names := map[string]bool{}
	for _, r := range p.AS.Regions() {
		names[r.Name] = true
		if r.Populated != r.Pages() {
			t.Errorf("region %q not fully populated (%d/%d)", r.Name, r.Populated, r.Pages())
		}
		if r.Lazy {
			t.Errorf("region %q lazy in a static address space", r.Name)
		}
	}
	for _, want := range []string{"text", "heap", "stack"} {
		if !names[want] {
			t.Errorf("missing region %q", want)
		}
	}
	if heap.Pages() != 1024 {
		t.Errorf("heap pages = %d", heap.Pages())
	}
	// The heap is physically contiguous (one extent).
	if heap.Backing.Len() != 1 {
		t.Errorf("heap not contiguous: %v", heap.Backing)
	}
	// Everything lives in top-level slot 0, leaving slots for SMARTMAP.
	for _, r := range p.AS.Regions() {
		if pagetable.SlotOf(r.Base) != 0 {
			t.Errorf("region %q outside slot 0", r.Name)
		}
	}
}

func TestLargeHeapAlignedForLargePages(t *testing.T) {
	k, _ := newKitten(t)
	_, heap, err := k.NewProcess("app", 2048)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := heap.Backing.Page(0)
	if uint64(f)%512 != 0 {
		t.Errorf("large heap not 2MB-aligned: first frame %#x", uint64(f))
	}
}

func TestWalkForExportChargesPerPage(t *testing.T) {
	k, w := newKitten(t)
	p, heap, err := k.NewProcess("app", 512)
	if err != nil {
		t.Fatal(err)
	}
	costs := sim.DefaultCosts()
	var elapsed sim.Time
	w.Spawn("serve", func(a *sim.Actor) {
		start := a.Now()
		list, err := k.WalkForExport(a, p.AS, heap.Base, 512)
		if err != nil {
			t.Error(err)
			return
		}
		elapsed = a.Now() - start
		if !list.Equal(heap.Backing) {
			t.Errorf("walk = %v, want %v", list, heap.Backing)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 512 * costs.WalkPerPage; elapsed != want {
		t.Errorf("walk charged %v, want %v", elapsed, want)
	}
}

func TestMapRemoteUsesHeapExtensionArea(t *testing.T) {
	k, w := newKitten(t)
	p, heap, err := k.NewProcess("app", 64)
	if err != nil {
		t.Fatal(err)
	}
	list := extent.FromExtents(extent.Extent{First: 0x200, Count: 16})
	w.Spawn("map", func(a *sim.Actor) {
		r, err := k.MapRemote(a, p, list, 3)
		if err != nil {
			t.Error(err)
			return
		}
		// The dynamic heap extension lands above the static layout and
		// never overlaps it.
		if r.Base <= heap.End() {
			t.Errorf("remote mapping at %#x inside static layout", uint64(r.Base))
		}
		if err := k.UnmapRemote(a, p, r); err != nil {
			t.Error(err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessExhaustsPartition(t *testing.T) {
	w := sim.NewWorld(1)
	pm := mem.NewPhysMem("node", 64<<20)
	k := kitten.New("tiny", w, sim.DefaultCosts(), pm, pm.Zone(0))
	// 64 MB partition cannot hold a 128 MB heap.
	if _, _, err := k.NewProcess("big", (128<<20)/4096); err == nil {
		t.Fatal("oversized process accepted")
	}
}
