// Package kitten simulates the Kitten lightweight kernel (§4): a
// special-purpose HPC OS with statically mapped process address spaces,
// SMARTMAP for local-process sharing, and — the XEMEM modification of
// §4.3 — dynamic heap extension so remote page-frame lists can be mapped
// without sacrificing either property.
//
// Kitten's distinguishing costs in the model: no demand faults (every
// region is fully mapped at process creation), cheap per-page mapping of
// remote lists (no fullweight VMA machinery), and a single core per
// enclave in the co-kernel configurations, so XEMEM serve work appears as
// detours in the enclave's noise profile (§5.5).
package kitten

import (
	"fmt"

	"xemem/internal/core"
	"xemem/internal/extent"
	"xemem/internal/mem"
	"xemem/internal/pagetable"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/smartmap"
	"xemem/internal/xproto"
)

// Static layout of every Kitten process (all inside top-level slot 0 so
// SMARTMAP windows of other processes can live in slots 1–511).
const (
	textBase  = pagetable.VA(0x400000)
	textPages = 16
	heapBase  = pagetable.VA(0x10000000)
	stackBase = pagetable.VA(0x7f_e000_0000)
	stackPgs  = 512
	// Dynamic heap-extension area: where remote XEMEM attachments land.
	heapExtBase = pagetable.VA(0x60_0000_0000)
)

// Kitten is one Kitten LWK instance managing a partition of the node.
type Kitten struct {
	name    string
	w       *sim.World
	c       *sim.Costs
	core    *sim.Core
	pm      *mem.PhysMem
	zone    *mem.Zone
	smap    *smartmap.Space
	nextPID int
}

// New creates a Kitten instance over the given memory partition with a
// single core, the standard co-kernel configuration.
func New(name string, w *sim.World, costs *sim.Costs, pm *mem.PhysMem, zone *mem.Zone) *Kitten {
	return &Kitten{
		name: name,
		w:    w,
		c:    costs,
		core: sim.NewCore(name + "/core"),
		pm:   pm,
		zone: zone,
		smap: smartmap.New(),
	}
}

// Core returns the enclave's (single) core.
func (k *Kitten) Core() *sim.Core { return k.core }

// Zone returns the enclave's memory partition.
func (k *Kitten) Zone() *mem.Zone { return k.zone }

// Smartmap returns the enclave's SMARTMAP space (for the local-sharing
// ablation benchmark).
func (k *Kitten) Smartmap() *smartmap.Space { return k.smap }

// NewProcess creates a Kitten process with the static layout: text,
// stack, and a heap of heapPages, all physically contiguous and fully
// mapped at creation (§4.3 — "all virtual address space regions for
// Kitten processes are mapped statically to physical memory as processes
// are created"). It returns the process and its heap region.
func (k *Kitten) NewProcess(name string, heapPages uint64) (*proc.Process, *proc.Region, error) {
	as := proc.NewAddressSpace(proc.HostDomain{Mem: k.pm}, heapExtBase)
	alloc := func(regName string, base pagetable.VA, pages uint64, fl pagetable.Flags) (*proc.Region, error) {
		align := uint64(1)
		if pages >= 512 {
			align = 512 // large-page eligible, like a hugepage-backed buffer
		}
		e, err := k.zone.AllocContigAligned(pages, align)
		if err != nil {
			return nil, fmt.Errorf("kitten %s: %s: %w", k.name, regName, err)
		}
		return as.AddRegion(regName, base, extent.FromExtents(e), fl, false)
	}
	if _, err := alloc("text", textBase, textPages, pagetable.Read|pagetable.Exec|pagetable.User); err != nil {
		return nil, nil, err
	}
	heap, err := alloc("heap", heapBase, heapPages, pagetable.Read|pagetable.Write|pagetable.User)
	if err != nil {
		return nil, nil, err
	}
	if _, err := alloc("stack", stackBase, stackPgs, pagetable.Read|pagetable.Write|pagetable.User); err != nil {
		return nil, nil, err
	}
	k.nextPID++
	p := &proc.Process{PID: k.nextPID, Name: name, AS: as}
	if _, err := k.smap.Register(as.PageTable()); err != nil {
		return nil, nil, err
	}
	return p, heap, nil
}

func permFlags(perm xproto.Perm) pagetable.Flags {
	fl := pagetable.Read | pagetable.User
	if perm&xproto.PermWrite != 0 {
		fl |= pagetable.Write
	}
	return fl
}

// --- core.OS implementation -------------------------------------------

// OSName identifies the kernel instance.
func (k *Kitten) OSName() string { return k.name }

// KernelCore is the core XEMEM kernel work runs on — the enclave's only
// core, which is why serves are visible in the §5.5 noise profile.
func (k *Kitten) KernelCore() *sim.Core { return k.core }

// WalkForExport walks the exporting process's page tables to build the
// frame list, using Kitten's existing page-table walking functions
// (§4.3). Kitten regions are always populated, so no faults occur.
func (k *Kitten) WalkForExport(a *sim.Actor, as *proc.AddressSpace, va pagetable.VA, pages uint64) (extent.List, error) {
	k.core.Exec(a, sim.Time(pages)*k.c.WalkPerPage, "xemem-serve")
	list, faults, err := as.WalkExtents(va, pages)
	if err != nil {
		return extent.List{}, err
	}
	if faults != 0 {
		return extent.List{}, fmt.Errorf("kitten %s: unexpected demand faults (%d) in a static address space", k.name, faults)
	}
	return list, nil
}

// ExportWalkCost charges what a repeat WalkForExport would: Kitten walks
// never fault, so it is the per-page walk price alone. The module's
// frame-list cache uses it on hits.
func (k *Kitten) ExportWalkCost(a *sim.Actor, pages uint64) {
	k.core.Exec(a, sim.Time(pages)*k.c.WalkPerPage, "xemem-serve")
}

// MapRemote maps a remote frame list through the dynamic heap-extension
// mechanism: a new fully populated region in the extension area.
func (k *Kitten) MapRemote(a *sim.Actor, p *proc.Process, list extent.List, perm xproto.Perm) (*proc.Region, error) {
	a.Charge("mmap-setup", k.c.MmapRegionSetup)
	k.core.Exec(a, sim.Time(list.Pages())*k.c.MapPerPageKitten, "xemem-attach")
	return p.AS.AddRegion("xemem-remote", 0, list, permFlags(perm), false)
}

// UnmapRemote tears down a heap-extension region.
func (k *Kitten) UnmapRemote(a *sim.Actor, p *proc.Process, r *proc.Region) error {
	k.core.Exec(a, sim.Time(r.Pages())*k.c.UnmapPerPage, "xemem-detach")
	return p.AS.RemoveRegion(r)
}

// AttachLocal attaches a locally owned segment via SMARTMAP: an O(1)
// top-level-slot share instead of per-page mapping (§4.3 keeps SMARTMAP
// for local processes).
func (k *Kitten) AttachLocal(a *sim.Actor, seg *core.Segment, p *proc.Process, offPages, pages uint64, perm xproto.Perm) (*proc.Region, error) {
	a.Charge("smartmap-attach", k.c.SmartmapAttach)
	srcVA := seg.VA + pagetable.VA(offPages*extent.PageSize)
	win, err := k.smap.Attach(p.AS.PageTable(), seg.Owner.AS.PageTable(), srcVA)
	if err != nil {
		return nil, err
	}
	// Record a window region for bookkeeping. It is lazy with zero
	// populated pages: translations resolve through the shared slot, so
	// the populate path never fires, and detach must not unmap.
	backing, err := seg.Owner.AS.PageTable().ExtentsFor(srcVA, pages)
	if err != nil {
		_ = k.smap.Detach(p.AS.PageTable(), win)
		return nil, err
	}
	r, err := p.AS.AddRegion("smartmap-window", win, backing, permFlags(perm), true)
	if err != nil {
		_ = k.smap.Detach(p.AS.PageTable(), win)
		return nil, err
	}
	return r, nil
}

// DetachLocal releases a SMARTMAP window.
func (k *Kitten) DetachLocal(a *sim.Actor, p *proc.Process, r *proc.Region) error {
	a.Charge("smartmap-detach", k.c.SmartmapAttach)
	if err := k.smap.Detach(p.AS.PageTable(), r.Base); err != nil {
		return err
	}
	return p.AS.ForgetRegion(r)
}

var _ core.OS = (*Kitten)(nil)
