package experiments

// Repro bundles: a self-contained, replayable fingerprint of one
// experiment world. A bundle pins the recipe, its parameter blob, the
// seed, a snapshot cut, the snapshot image's integrity hash at that cut,
// and the end-of-run trace digest. Replaying re-runs the recipe from
// scratch and verifies both fingerprints: the hash proves the entire
// serialized mid-run state — allocators, page tables, protocol counters,
// name server, RNG cursors — is bit-identical, and the digest proves the
// remainder of the run unfolded identically too. A bundle that verifies
// on another machine (or another commit) is a machine-checked claim that
// the simulated behaviour reproduced exactly; one that fails names the
// first layer that drifted.

import (
	"encoding/json"
	"fmt"

	"xemem/internal/sim"
	"xemem/internal/sim/trace"
)

// Bundle is the repro bundle format (JSON on disk).
type Bundle struct {
	Recipe         string          `json:"recipe"`
	Params         json.RawMessage `json:"params,omitempty"`
	Seed           uint64          `json:"seed"`
	CutNs          int64           `json:"cut_ns"`
	SnapshotSHA256 string          `json:"snapshot_sha256"`
	Digest         trace.Digest    `json:"digest"`
}

// reproProbe observes one recipe run: it forces the serial engine (cut
// placement is a serial-dispatch construct, and bundles must verify
// regardless of the replayer's -partitions setting), installs a
// digest-only tracer, and — when armed — a checkpoint that hashes the
// world's snapshot image at the cut.
type reproProbe struct {
	worlds int
	tr     *trace.Tracer
	hash   string
}

func (p *reproProbe) hook(cut sim.Time, armed bool) observeFn {
	return func(label string, w *sim.World) {
		p.worlds++
		if p.worlds > 1 {
			return // CaptureBundle/RunBundle reject this after the run
		}
		w.SetParallel(0)
		tr := trace.NewTracer(label)
		tr.SetKeepEvents(false)
		w.SetObserver(tr)
		p.tr = tr
		if armed {
			w.SetCheckpoint(cut, func() { p.hash = w.SnapshotImage().Hash() })
		}
	}
}

// runRecipe executes a registered recipe under a probe and returns it.
func runRecipe(name string, params json.RawMessage, seed uint64, cut sim.Time, armed bool) (*reproProbe, error) {
	fn, ok := recipes[name]
	if !ok {
		return nil, fmt.Errorf("unknown recipe %q (have: %s)", name, RecipeNames())
	}
	p := &reproProbe{}
	if err := fn(params, seed, p.hook(cut, armed)); err != nil {
		return nil, fmt.Errorf("recipe %s: %w", name, err)
	}
	if p.worlds != 1 {
		return nil, fmt.Errorf("recipe %s announced %d worlds; bundles need exactly one", name, p.worlds)
	}
	return p, nil
}

// CaptureBundle runs a recipe twice and packages the result: the first
// run measures the virtual duration, the second places the snapshot cut
// at cutFrac of it and records the image hash there. The two runs must
// produce the same digest — a recipe that fails that is not
// deterministic and cannot be bundled.
func CaptureBundle(recipe string, params json.RawMessage, seed uint64, cutFrac float64) (*Bundle, error) {
	if cutFrac < 0 || cutFrac > 1 {
		return nil, fmt.Errorf("cut fraction %v outside [0, 1]", cutFrac)
	}
	ref, err := runRecipe(recipe, params, seed, 0, false)
	if err != nil {
		return nil, err
	}
	d := ref.tr.Digest()
	cut := sim.Time(cutFrac * float64(d.FinalNs))
	cutRun, err := runRecipe(recipe, params, seed, cut, true)
	if err != nil {
		return nil, err
	}
	if cd := cutRun.tr.Digest(); cd != d {
		return nil, fmt.Errorf("recipe %s is not deterministic: digest %s vs %s across identical runs",
			recipe, d.SHA256, cd.SHA256)
	}
	if cutRun.hash == "" {
		return nil, fmt.Errorf("recipe %s: checkpoint at %v never fired", recipe, cut)
	}
	return &Bundle{
		Recipe: recipe, Params: params, Seed: seed,
		CutNs: int64(cut), SnapshotSHA256: cutRun.hash, Digest: d,
	}, nil
}

// RunBundle replays a bundle: re-run its recipe and verify the snapshot
// hash at the pinned cut and the end-of-run digest. nil means the run
// reproduced the bundled behaviour bit-exactly.
func RunBundle(b *Bundle) error {
	p, err := runRecipe(b.Recipe, b.Params, b.Seed, sim.Time(b.CutNs), true)
	if err != nil {
		return err
	}
	if p.hash != b.SnapshotSHA256 {
		return fmt.Errorf("recipe %s: snapshot at cut %v hashes %s, bundle pinned %s — mid-run state diverged",
			b.Recipe, sim.Time(b.CutNs), p.hash, b.SnapshotSHA256)
	}
	if d := p.tr.Digest(); d != b.Digest {
		return fmt.Errorf("recipe %s: trace digest %+v, bundle pinned %+v — post-cut behaviour diverged",
			b.Recipe, d, b.Digest)
	}
	return nil
}
