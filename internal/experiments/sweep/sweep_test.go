package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// cells builds n trivial cells that record their execution and return
// their own index.
func cells(n int, ran *[]int32) []Cell[int] {
	out := make([]Cell[int], n)
	slots := make([]int32, n)
	*ran = slots
	for i := range out {
		i := i
		out[i] = Cell[int]{Label: fmt.Sprintf("cell%d", i), Run: func() (int, error) {
			atomic.AddInt32(&slots[i], 1)
			return i, nil
		}}
	}
	return out
}

// TestRunOrderAndCompleteness: results come back in cell order with every
// cell run exactly once, at several worker counts.
func TestRunOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{1, 2, 3, runtime.NumCPU(), 64} {
		var ran []int32
		cs := cells(37, &ran)
		got, err := Run(cs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: results[%d] = %d", workers, i, v)
			}
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, n)
			}
		}
	}
}

// TestRunFirstError: the reported error is the lowest-indexed failure,
// wrapped with the cell's label, regardless of worker count.
func TestRunFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	build := func() []Cell[int] {
		cs := make([]Cell[int], 10)
		for i := range cs {
			i := i
			cs[i] = Cell[int]{Label: fmt.Sprintf("cell%d", i), Run: func() (int, error) {
				if i == 3 || i == 7 {
					return 0, sentinel
				}
				return i, nil
			}}
		}
		return cs
	}
	for _, workers := range []int{1, 4} {
		_, err := Run(build(), workers)
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		if !strings.HasPrefix(err.Error(), "cell3:") {
			t.Fatalf("workers=%d: err = %q, want lowest-indexed cell3 failure", workers, err)
		}
	}
}

// TestRunSerialStopsAtFirstFailure: workers=1 must not run cells past the
// first failing one — exactly the legacy sequential-runner behavior.
func TestRunSerialStopsAtFirstFailure(t *testing.T) {
	var ran []int32
	cs := cells(10, &ran)
	cs[4].Run = func() (int, error) { return 0, errors.New("boom") }
	if _, err := Run(cs, 1); err == nil {
		t.Fatal("expected error")
	}
	for i := 5; i < 10; i++ {
		if ran[i] != 0 {
			t.Fatalf("cell %d ran after the failure at cell 4", i)
		}
	}
}

// TestWorkers: the flag normalization.
func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

// TestRunEmpty: no cells is a no-op, not a hang.
func TestRunEmpty(t *testing.T) {
	got, err := Run[int](nil, 8)
	if err != nil || len(got) != 0 {
		t.Fatalf("Run(nil) = %v, %v", got, err)
	}
}
