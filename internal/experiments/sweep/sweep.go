// Package sweep runs independent simulation cells across host cores.
//
// A cell is one (figure, configuration, repetition) point of an
// experiment sweep: it constructs its own sim.World from a fixed seed,
// runs it to completion, and returns that world's result. Because each
// world is a closed virtual-time universe — its own RNG streams, memory,
// actors, and trace digest — cells share no mutable state and can execute
// on any host goroutine without affecting simulated results. Run
// therefore fans cells out over a worker pool and merges results back in
// enumeration order: the output is byte-identical at any worker count,
// and workers=1 executes the cells strictly sequentially, reproducing
// the original serial runner exactly.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell is one independently runnable point of a sweep. Run must not
// touch state shared with other cells; the label names the cell in
// error messages.
type Cell[T any] struct {
	Label string
	Run   func() (T, error)
}

// Workers normalizes a worker-count flag: values <= 0 select one worker
// per host core (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes every cell and returns their results in cell order,
// regardless of completion order. workers <= 0 selects GOMAXPROCS;
// workers == 1 runs the cells sequentially in order on the calling
// goroutine. On failure the error of the lowest-indexed failing cell is
// returned (the same one a sequential run would hit first), wrapped
// with its label; cells not yet started when a failure is observed are
// skipped, and their results are the zero value.
func Run[T any](cells []Cell[T], workers int) ([]T, error) {
	workers = Workers(workers)
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]T, len(cells))
	errs := make([]error, len(cells))

	if workers <= 1 {
		for i, c := range cells {
			results[i], errs[i] = c.Run()
			if errs[i] != nil {
				break
			}
		}
		return results, firstError(cells, errs)
	}

	var next atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cells) || failed.Load() {
					return
				}
				results[i], errs[i] = cells[i].Run()
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return results, firstError(cells, errs)
}

// SnapCell is one continuation cell of a snapshot-forked sweep: Run
// receives the shared bootstrap artifact instead of rebuilding it.
type SnapCell[S, T any] struct {
	Label string
	Run   func(S) (T, error)
}

// FromSnapshot adapts cells that continue from a shared bootstrap
// artifact — typically a decoded world snapshot whose cells fork fresh
// worlds from one expensive common prefix — into ordinary sweep cells
// for Run. prep executes at most once, lazily, on whichever worker
// reaches a cell first; every other cell blocks on the same sync.Once
// and receives the identical artifact. Cells must treat the artifact as
// read-only: it is shared across workers without further
// synchronization. When prep fails, every cell reports its error and no
// cell body runs.
func FromSnapshot[S, T any](prep func() (S, error), cells []SnapCell[S, T]) []Cell[T] {
	var once sync.Once
	var art S
	var prepErr error
	shared := func() (S, error) {
		once.Do(func() { art, prepErr = prep() })
		return art, prepErr
	}
	out := make([]Cell[T], len(cells))
	for i, c := range cells {
		c := c
		out[i] = Cell[T]{
			Label: c.Label,
			Run: func() (T, error) {
				s, err := shared()
				if err != nil {
					var zero T
					return zero, fmt.Errorf("snapshot prep: %w", err)
				}
				return c.Run(s)
			},
		}
	}
	return out
}

// firstError reports the lowest-indexed cell failure, or nil.
func firstError[T any](cells []Cell[T], errs []error) error {
	for i, err := range errs {
		if err != nil {
			if cells[i].Label != "" {
				return fmt.Errorf("%s: %w", cells[i].Label, err)
			}
			return err
		}
	}
	return nil
}
