package experiments

// Golden-trace regression harness: each figure/table runs a reduced
// configuration under a fixed seed with a metrics-only tracer attached,
// and the per-world span digests must match the checked-in goldens.
// The digest hashes every observed event (spans, resource acquisitions,
// queue waits, counters) in dispatch order, so any change to the
// simulator's schedule or to a cost-charge site shows up as a mismatch
// here before it shows up as a silently shifted figure. Regenerate
// after an intentional model change with:
//
//	go test ./internal/experiments -run TestGolden -update

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"xemem/internal/sim/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace digests")

// runTraced executes fn with a fresh metrics-only trace.Set installed
// as the Observe hook and returns the digests of every traced world.
func runTraced(t *testing.T, fn func() error) []trace.Digest {
	t.Helper()
	s := trace.NewSet()
	s.SetKeepEvents(false)
	saved := Observe
	Observe = s.Hook()
	defer func() { Observe = saved }()
	if err := fn(); err != nil {
		t.Fatal(err)
	}
	return s.Digests()
}

// checkGolden compares digests against testdata/golden/<name>.json,
// rewriting the file under -update.
func checkGolden(t *testing.T, name string, got []trace.Digest) {
	t.Helper()
	if len(got) == 0 {
		t.Fatal("no worlds were traced")
	}
	path := filepath.Join("testdata", "golden", name+".json")
	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d digests)", path, len(got))
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	var want []trace.Digest
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	if len(got) != len(want) {
		t.Fatalf("traced %d worlds, golden has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("world %d diverged from golden:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

func TestGoldenFig5(t *testing.T) {
	checkGolden(t, "fig5", runTraced(t, func() error {
		_, err := Fig5(1, 2, 1)
		return err
	}))
}

func TestGoldenFig6(t *testing.T) {
	checkGolden(t, "fig6", runTraced(t, func() error {
		_, _, _, err := fig6Point(nil, 1, 2, 128, 2)
		return err
	}))
}

func TestGoldenFig7(t *testing.T) {
	checkGolden(t, "fig7", runTraced(t, func() error {
		_, err := Fig7(1, 1)
		return err
	}))
}

func TestGoldenFig8(t *testing.T) {
	checkGolden(t, "fig8", runTraced(t, func() error {
		if _, err := fig8Run(nil, 1, KittenLinux, true, false); err != nil {
			return err
		}
		_, err := fig8Run(nil, 1, KittenVMOnKt, false, true)
		return err
	}))
}

func TestGoldenFig9(t *testing.T) {
	checkGolden(t, "fig9", runTraced(t, func() error {
		_, err := fig9Run(nil, 1, 2, true, false)
		return err
	}))
}

func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2", runTraced(t, func() error {
		_, err := Table2(1, 1, 1)
		return err
	}))
}

// TestGoldenRepeatable guards the digest itself: two traced runs of the
// same configuration must produce identical digests (no wall-clock, map
// order, or allocation address leaks into the hash).
func TestGoldenRepeatable(t *testing.T) {
	run := func() []trace.Digest {
		return runTraced(t, func() error {
			_, _, _, err := fig6Point(nil, 3, 2, 128, 2)
			return err
		})
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("world counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("run digests differ at %d:\n %+v\n %+v", i, a[i], b[i])
		}
	}
}
