package experiments

import (
	"fmt"
	"strings"

	"xemem"
	"xemem/internal/cluster"
	"xemem/internal/core"
	"xemem/internal/experiments/sweep"
	"xemem/internal/insitu"
	"xemem/internal/linuxos"
	"xemem/internal/proc"
	"xemem/internal/sim"
)

// Fig9Cell is one point of Figure 9: mean ± stddev completion time of the
// weak-scaled composed benchmark at a node count.
type Fig9Cell struct {
	Nodes        int
	MultiEnclave bool
	Recurring    bool
	MeanS        float64
	StdS         float64
}

// Fig9Result holds the regenerated figure (both subfigures).
type Fig9Result struct {
	Runs  int
	Cells []Fig9Cell
}

// Fig9NodeCounts is the paper's x-axis.
var Fig9NodeCounts = []int{1, 2, 4, 8}

// Fig9 reproduces §7: the composed benchmark in weak-scaling mode on
// 1–8 nodes, asynchronous execution, with the Linux-only configuration
// against the multi-enclave one (HPC simulation in a Palacios VM on an
// isolated Kitten co-kernel host, analytics in the native Linux enclave),
// for both attachment models. runs repetitions (the paper reports 5).
// Every (model, configuration, node count, repetition) run is one sweep
// cell with its own fixed seed, executed on workers host goroutines
// (<= 0 selects GOMAXPROCS, 1 reproduces the serial runner exactly).
func Fig9(seed uint64, runs, workers int) (*Fig9Result, error) {
	if runs <= 0 {
		runs = 5
	}
	res := &Fig9Result{Runs: runs}
	var cells []sweep.Cell[sim.Time]
	for _, recurring := range []bool{false, true} {
		for _, multi := range []bool{false, true} {
			for _, nodes := range Fig9NodeCounts {
				for r := 0; r < runs; r++ {
					recurring, multi, nodes, r := recurring, multi, nodes, r
					obs := cellObserve(len(cells))
					cells = append(cells, sweep.Cell[sim.Time]{
						Label: fmt.Sprintf("fig9 nodes=%d multi=%v rec=%v run %d", nodes, multi, recurring, r),
						Run: func() (sim.Time, error) {
							return fig9Run(obs, seed+uint64(r)*104729, nodes, multi, recurring)
						},
					})
				}
			}
		}
	}
	times, err := sweep.Run(cells, workers)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, recurring := range []bool{false, true} {
		for _, multi := range []bool{false, true} {
			for _, nodes := range Fig9NodeCounts {
				var s sim.Sample
				for r := 0; r < runs; r++ {
					s.AddTime(times[i])
					i++
				}
				res.Cells = append(res.Cells, Fig9Cell{
					Nodes: nodes, MultiEnclave: multi, Recurring: recurring,
					MeanS: s.Mean(), StdS: s.Stddev(),
				})
			}
		}
	}
	return res, nil
}

// Fig9Run executes a single Figure 9 cell — one weak-scaled run at the
// given node count — and returns the completion time. It is the
// benchmark-facing wrapper around the sweep's per-cell function.
func Fig9Run(seed uint64, nodes int, multiEnclave, recurring bool) (sim.Time, error) {
	return fig9Run(nil, seed, nodes, multiEnclave, recurring)
}

// fig9Node is one node's built substrate for the composed workload: the
// component placements, cost models, and data region the insitu phases
// run on, plus the handles the snapshot fork path overlays state onto.
type fig9Node struct {
	node      *xemem.Node
	simSide   insitu.Side
	simModel  insitu.ComputeModel
	simRegion *proc.Region
	anSide    insitu.Side
	anModel   insitu.AnalyticsModel
	// oses and mods hold every OS instance and enclave module of this
	// node in construction order — the order their snapshot sections were
	// registered in.
	oses []*linuxos.Linux
	mods []*core.Module
}

// fig9BuildNode constructs node i of a Figure 9 world: the Linux
// management enclave with the analytics process and, in the
// multi-enclave configuration, the Kitten co-kernel hosting the
// simulation's Palacios VM. Both fig9Run and the snapshot-forked bench
// build through here, so a forked world reconstructs exactly the
// substrate the snapshotted one had.
func fig9BuildNode(w *sim.World, costs *sim.Costs, i int, seed uint64, multiEnclave bool) (*fig9Node, error) {
	node := xemem.NewNodeInWorld(w, costs, xemem.NodeConfig{
		Name: fmt.Sprintf("node%d", i), Seed: seed, MemBytes: 32 << 30, LinuxCores: 8,
	})
	regionBytes := uint64(fig9DataBytes) + 64<<10
	n := &fig9Node{
		node: node,
		oses: []*linuxos.Linux{node.Linux()},
		mods: []*core.Module{node.LinuxModule()},
	}
	ap := node.Linux().NewProcess("analytics", 2)
	n.anSide = insitu.Side{Mod: node.LinuxModule(), Proc: ap, Core: node.Linux().Cores()[2]}
	n.anModel = nativeAnalytics(costs)

	if multiEnclave {
		ckHost, err := node.BootCoKernel("kitten-host", 6<<30)
		if err != nil {
			return nil, err
		}
		vm, err := node.BootVMOnCoKernel("vm-sim", ckHost, 4<<30, 1)
		if err != nil {
			return nil, err
		}
		sp := vm.Guest.NewProcess("sim", 0)
		region, err := vm.Guest.AllocContiguous(sp, "sim-data", regionBytes/4096, true)
		if err != nil {
			return nil, err
		}
		n.simSide = insitu.Side{Mod: vm.Module, Proc: sp, Core: vm.Guest.Cores()[0]}
		n.simModel = vmOnKittenSim(fig9IterKitten)
		n.simRegion = region
		n.mods = append(n.mods, ckHost.Module)
		n.oses = append(n.oses, vm.Guest)
		n.mods = append(n.mods, vm.Module)
	} else {
		sp := node.Linux().NewProcess("sim", 1)
		region, err := node.Linux().AllocContiguous(sp, "sim-data", regionBytes/4096, true)
		if err != nil {
			return nil, err
		}
		n.simSide = insitu.Side{Mod: node.LinuxModule(), Proc: sp, Core: node.Linux().Cores()[1]}
		n.simModel = linuxSimPinned(fig9IterLinux)
		n.simRegion = region
	}
	return n, nil
}

// fig9Insitu wires the composed pair of node i with the standard Figure
// 9 geometry; phase selects the iteration span (full runs use
// {0, fig9Iters, false}).
func fig9Insitu(w *sim.World, n *fig9Node, i int, multiEnclave, recurring bool, bar insitu.Barrier, iters int, startAt sim.Time, cleanExit bool) (func() *insitu.Result, error) {
	cfg := insitu.Config{
		Sync: false, Recurring: recurring,
		Iters: iters, SignalEvery: fig9SignalEvery,
		DataBytes: fig9DataBytes,
		CtrlName:  fmt.Sprintf("fig9-ctrl-%d", i),
		SameOS:    !multiEnclave,
		Barrier:   bar,
		StartAt:   startAt,
		CleanExit: cleanExit,
	}
	return insitu.Run(w, cfg, n.simSide, n.simModel, n.anSide, n.anModel, n.simRegion)
}

// fig9Run executes one weak-scaled run: `nodes` simulated machines in one
// world, coupled by the allreduce at every CG iteration, each running its
// own composed pair. It returns the slowest node's simulation completion
// time (they coincide up to the final partial interval).
func fig9Run(obs observeFn, seed uint64, nodes int, multiEnclave, recurring bool) (sim.Time, error) {
	w := sim.NewWorld(seed)
	announce(obs, fmt.Sprintf("fig9/nodes=%d/multi=%v/recurring=%v/seed=%d", nodes, multiEnclave, recurring, seed), w)
	costs := sim.DefaultCosts()
	bar := cluster.NewAllreduce(nodes, fig9AllreduceNs)
	results := make([]func() *insitu.Result, nodes)

	for i := 0; i < nodes; i++ {
		n, err := fig9BuildNode(w, costs, i, seed, multiEnclave)
		if err != nil {
			return 0, err
		}
		get, err := fig9Insitu(w, n, i, multiEnclave, recurring, bar, fig9Iters, 0, false)
		if err != nil {
			return 0, err
		}
		results[i] = get
	}
	if err := w.Run(); err != nil {
		return 0, err
	}
	var slowest sim.Time
	for _, get := range results {
		if t := get().SimTime; t > slowest {
			slowest = t
		}
	}
	return slowest, nil
}

// Cell fetches one figure point.
func (r *Fig9Result) Cell(nodes int, multi, recurring bool) Fig9Cell {
	for _, c := range r.Cells {
		if c.Nodes == nodes && c.MultiEnclave == multi && c.Recurring == recurring {
			return c
		}
	}
	return Fig9Cell{}
}

// String renders both subfigures.
func (r *Fig9Result) String() string {
	var b strings.Builder
	for _, recurring := range []bool{false, true} {
		sub, model := "(a)", "one-time shared memory attachment model"
		if recurring {
			sub, model = "(b)", "recurring shared memory attachment model"
		}
		fmt.Fprintf(&b, "Figure 9%s: multi-node in situ benchmark (weak scaling, async), %s (%d runs)\n", sub, model, r.Runs)
		fmt.Fprintf(&b, "%8s %22s %22s\n", "Nodes", "Linux Only", "Multi Enclave")
		for _, n := range Fig9NodeCounts {
			lo := r.Cell(n, false, recurring)
			me := r.Cell(n, true, recurring)
			fmt.Fprintf(&b, "%8d %13.1f ± %4.1f s %13.1f ± %4.1f s\n",
				n, lo.MeanS, lo.StdS, me.MeanS, me.StdS)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
