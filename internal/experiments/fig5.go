package experiments

import (
	"fmt"
	"strings"

	"xemem"
	"xemem/internal/experiments/sweep"
	"xemem/internal/extent"
	"xemem/internal/rdma"
	"xemem/internal/sim"
	"xemem/internal/xpmem"
)

// Fig5Row is one memory size of Figure 5: cross-enclave throughput of
// XEMEM attachments (with and without reading the contents out) next to
// the RDMA-write baseline over the virtualized InfiniBand device.
type Fig5Row struct {
	SizeMB        int
	AttachGBs     float64
	AttachReadGBs float64
	RDMAGBs       float64
}

// Fig5Result holds the regenerated figure.
type Fig5Result struct {
	Reps int
	Rows []Fig5Row
}

// Fig5 reproduces §5.2: one Kitten co-kernel exports regions of
// 128 MB–1 GB; a native Linux process attaches each region reps times
// (the paper uses 500), once timing the attachment alone and once
// including a full read-out; the RDMA column runs the write bandwidth
// test between two VMs with SR-IOV virtual functions. The two worlds
// (attach node, RDMA baseline) are independent sweep cells executed on
// workers host goroutines (<= 0 selects GOMAXPROCS, 1 reproduces the
// serial runner exactly).
func Fig5(seed uint64, reps, workers int) (*Fig5Result, error) {
	if reps <= 0 {
		reps = 500
	}
	res := &Fig5Result{Reps: reps}
	sizes := []int{128, 256, 512, 1024}

	type out struct {
		rows []Fig5Row
		rdma []float64
	}
	obsMain, obsRDMA := cellObserve(0), cellObserve(1)
	cells := []sweep.Cell[out]{
		{Label: "fig5", Run: func() (out, error) {
			rows, err := fig5Attach(obsMain, seed, sizes, reps)
			return out{rows: rows}, err
		}},
		{Label: "fig5/rdma", Run: func() (out, error) {
			bw, err := fig5RDMA(obsRDMA, seed+1, sizes)
			return out{rdma: bw}, err
		}},
	}
	outs, err := sweep.Run(cells, workers)
	if err != nil {
		return nil, err
	}
	res.Rows = outs[0].rows
	for i := range res.Rows {
		res.Rows[i].RDMAGBs = outs[1].rdma[i]
	}
	return res, nil
}

// fig5Attach runs the XEMEM attach world: per size, the attach-only and
// attach+read throughputs.
func fig5Attach(obs observeFn, seed uint64, sizes []int, reps int) ([]Fig5Row, error) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 32 << 30, LinuxCores: 4})
	announce(obs, "fig5", node.World())
	ck, err := node.BootCoKernel("kitten0", 2<<30)
	if err != nil {
		return nil, err
	}
	expSess, heap, err := node.KittenProcess(ck, "exporter", 1<<30)
	if err != nil {
		return nil, err
	}
	attSess, _ := node.LinuxProcess("attacher", 1)
	costs := node.Costs()

	var rows []Fig5Row
	var runErr error
	node.Spawn("fig5", func(a *sim.Actor) {
		for _, szMB := range sizes {
			bytes := uint64(szMB) << 20
			segid, err := expSess.Make(a, heap.Base, bytes, xpmem.PermRead|xpmem.PermWrite, "")
			if err != nil {
				runErr = err
				return
			}
			apid, err := attSess.Get(a, segid, xpmem.PermRead)
			if err != nil {
				runErr = err
				return
			}
			measure := func(read bool) (float64, error) {
				var total sim.Time
				for i := 0; i < reps; i++ {
					start := a.Now()
					va, err := attSess.Attach(a, segid, apid, 0, bytes, xpmem.PermRead)
					if err != nil {
						return 0, err
					}
					if read {
						// Stream the contents out of the mapping.
						a.Advance(sim.CopyTime(int(bytes), costs.MemReadBW))
					}
					total += a.Now() - start
					if err := attSess.Detach(a, va); err != nil {
						return 0, err
					}
				}
				return sim.PerSecond(float64(bytes)*float64(reps), total), nil
			}
			attachBW, err := measure(false)
			if err != nil {
				runErr = err
				return
			}
			readBW, err := measure(true)
			if err != nil {
				runErr = err
				return
			}
			if err := attSess.Release(a, segid, apid); err != nil {
				runErr = err
				return
			}
			if err := expSess.Remove(a, segid); err != nil {
				runErr = err
				return
			}
			rows = append(rows, Fig5Row{SizeMB: szMB, AttachGBs: attachBW / 1e9, AttachReadGBs: readBW / 1e9})
		}
	})
	if err := node.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return rows, nil
}

// fig5RDMA runs the RDMA baseline: a bandwidth test between two KVM
// virtual machines, each owning one virtual function (§5.2).
func fig5RDMA(obs observeFn, seed uint64, sizes []int) ([]float64, error) {
	w := sim.NewWorld(seed)
	announce(obs, "fig5/rdma", w)
	dev := rdma.NewDevice("cx3", sim.DefaultCosts())
	vf := dev.NewVF("vf0")
	var rdmaErr error
	rdmaBW := make([]float64, len(sizes))
	w.Spawn("rdma-test", func(a *sim.Actor) {
		for i, szMB := range sizes {
			bw, err := vf.BandwidthTest(a, szMB<<20, 50)
			if err != nil {
				rdmaErr = err
				return
			}
			rdmaBW[i] = bw / 1e9
		}
	})
	if err := w.Run(); err != nil {
		return nil, err
	}
	if rdmaErr != nil {
		return nil, rdmaErr
	}
	return rdmaBW, nil
}

// String renders the figure as the paper's series.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: cross-enclave throughput, shared memory vs RDMA (%d attachments/point)\n", r.Reps)
	fmt.Fprintf(&b, "%10s %16s %22s %18s\n", "Size(MB)", "XEMEM Attach", "XEMEM Attach+Read", "RDMA Verbs/IB")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %13.2f GB/s %19.2f GB/s %15.2f GB/s\n",
			row.SizeMB, row.AttachGBs, row.AttachReadGBs, row.RDMAGBs)
	}
	return b.String()
}

var _ = extent.PageSize
