package experiments

// Phased Figure 9: the snapshot-forked sweep machinery behind
// BENCH_snapshot.json. A Figure 9 world is split into a bootstrap prefix
// (build every node's enclave substrate, run the composed workload for
// PrefixIters iterations with a clean retire of every XEMEM object) and
// a per-cell suffix (the remaining iterations under the cell's
// attachment model). Every cell of a sweep shares the identical prefix,
// so there are two ways to run a cell:
//
//   - bootstrap: rebuild the world and re-execute the prefix, then run
//     the suffix — the reference path;
//   - fork: decode a snapshot image of the quiesced prefix world,
//     re-run only the build recipe, overlay the handful of fields the
//     prefix advanced (allocator state, module counters, name server,
//     RNG cursors, address-space placement), verify the re-encoded
//     sections byte-match the image, and run the suffix.
//
// Both paths continue the same trace digest — the fork restores the
// tracer watermark the image carries — so equality of the end-to-end
// digests is a machine-checked proof that the fork is behaviorally
// indistinguishable from the bootstrap.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"xemem/internal/cluster"
	"xemem/internal/insitu"
	"xemem/internal/sim"
	"xemem/internal/sim/snapshot"
	"xemem/internal/sim/trace"
)

// fig9PrefixParams is the recipe parameter blob embedded in a phased
// Figure 9 snapshot image: everything needed to rebuild the world and
// re-run (or fork past) its bootstrap prefix.
type fig9PrefixParams struct {
	Nodes        int  `json:"nodes"`
	MultiEnclave bool `json:"multi_enclave"`
	PrefixIters  int  `json:"prefix_iters"`
	// Recurring selects the prefix's attachment model. The recurring
	// model re-creates and re-attaches the data segment at every analysis
	// point, which is what makes a long prefix host-expensive — and a
	// fork that skips it worthwhile.
	Recurring bool `json:"recurring"`
}

// fig9Tail is one cell's suffix workload: the iterations that run on
// top of the shared prefix, under the cell's attachment model.
type fig9Tail struct {
	Recurring bool
	Iters     int
}

// fig9Outcome is a phased cell's simulated result — a pure function of
// (seed, prefix, tail), identical whether the cell bootstrapped or
// forked. The digest covers the full event stream from world build
// through the last suffix event.
type fig9Outcome struct {
	SimTimeNs int64        `json:"sim_time_ns"`
	Points    int          `json:"points"`
	Digest    trace.Digest `json:"digest"`
}

// fig9Phased is a world positioned at the prefix/suffix boundary: the
// quiesced engine, the tracer that observed everything so far, and the
// per-node substrate handles the suffix wires into.
type fig9Phased struct {
	w     *sim.World
	tr    *trace.Tracer
	nodes []*fig9Node
	p     fig9PrefixParams
	cut   sim.Time
}

func fig9PhasedLabel(p fig9PrefixParams, seed uint64) string {
	return fmt.Sprintf("fig9phased/nodes=%d/multi=%v/prefix=%d/rec=%v/seed=%d",
		p.Nodes, p.MultiEnclave, p.PrefixIters, p.Recurring, seed)
}

// fig9Snapshot builds a Figure 9 world, runs the bootstrap prefix to
// quiescence (serial engine — RunPhase is the fork primitive), and
// returns the world positioned at the cut. SnapshotImage may be taken
// from it, and runSuffix continues it as the bootstrap path.
func fig9Snapshot(seed uint64, p fig9PrefixParams) (*fig9Phased, error) {
	w := sim.NewWorld(seed)
	params, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	w.SetRecipe("fig9-prefix", params)
	tr := trace.NewTracer(fig9PhasedLabel(p, seed))
	tr.SetKeepEvents(false)
	w.SetObserver(tr)

	costs := sim.DefaultCosts()
	bar := cluster.NewAllreduce(p.Nodes, fig9AllreduceNs)
	nodes := make([]*fig9Node, p.Nodes)
	for i := range nodes {
		n, err := fig9BuildNode(w, costs, i, seed, p.MultiEnclave)
		if err != nil {
			return nil, err
		}
		// The prefix retires every segment it creates (CleanExit), so the
		// quiesced world carries no live XEMEM state a fork would have to
		// reconstruct actors for.
		if _, err := fig9Insitu(w, n, i, p.MultiEnclave, p.Recurring, bar, p.PrefixIters, 0, true); err != nil {
			return nil, err
		}
		nodes[i] = n
	}
	if err := w.RunPhase(); err != nil {
		return nil, err
	}
	// Drain daemon dispatches already queued at the instant the last
	// prefix actor finished, so the cut is a pure function of the prefix
	// (the fork performs the same drain on its side of the boundary).
	if err := w.DrainDaemons(); err != nil {
		return nil, err
	}
	return &fig9Phased{w: w, tr: tr, nodes: nodes, p: p, cut: w.Now()}, nil
}

// runSuffix attaches the tail workload at the cut and runs the world to
// completion, returning the cell's outcome.
func (ph *fig9Phased) runSuffix(tail fig9Tail) (fig9Outcome, error) {
	bar := cluster.NewAllreduce(len(ph.nodes), fig9AllreduceNs)
	gets := make([]func() *insitu.Result, len(ph.nodes))
	for i, n := range ph.nodes {
		get, err := fig9Insitu(ph.w, n, i, ph.p.MultiEnclave, tail.Recurring, bar, tail.Iters, ph.cut, false)
		if err != nil {
			return fig9Outcome{}, err
		}
		gets[i] = get
	}
	if err := ph.w.Run(); err != nil {
		return fig9Outcome{}, err
	}
	out := fig9Outcome{Digest: ph.tr.Digest()}
	for _, get := range gets {
		r := get()
		if t := int64(r.SimTime); t > out.SimTimeNs {
			out.SimTimeNs = t
		}
		out.Points += r.Points
	}
	return out, nil
}

// sectionLoader pairs a component snapshot section name with the
// restore/overlay routine of the rebuilt component that owns it.
type sectionLoader struct {
	name string
	load func(*snapshot.Dec) error
}

// loaders returns this node's component loaders in the order the
// components registered their snapshot sections during construction —
// the order their sections appear in the image. overlaySections matches
// them positionally and rejects any drift by name.
func (n *fig9Node) loaders() []sectionLoader {
	pm := n.node.Phys()
	ls := []sectionLoader{
		{"phys/" + pm.Name(), pm.LoadSnapshot},
		{"os/" + n.oses[0].Name(), n.oses[0].LoadSnapshotOverlay},
		{"mod/" + n.mods[0].Name(), n.mods[0].LoadSnapshotOverlay},
	}
	if len(n.mods) > 1 {
		ls = append(ls,
			sectionLoader{"mod/" + n.mods[1].Name(), n.mods[1].LoadSnapshotOverlay},
			sectionLoader{"os/" + n.oses[1].Name(), n.oses[1].LoadSnapshotOverlay},
			sectionLoader{"mod/" + n.mods[2].Name(), n.mods[2].LoadSnapshotOverlay},
		)
	}
	return ls
}

// overlaySections walks the image's sections in order, dispatching each
// to its owner: the engine scalars and tracer watermark to the world and
// tracer, component sections positionally to comps. The actor and
// mailbox sections are checked, not overlaid — the stand-ins already
// hold the prefix actors' scheduler slots, and a clean cut must carry no
// pending messages (a fork from a non-quiesced image is refused).
func overlaySections(w *sim.World, tr *trace.Tracer, img *snapshot.Image, comps []sectionLoader) error {
	ci := 0
	for _, s := range img.Sections {
		switch s.Name {
		case "sim/world":
			if err := w.LoadWorldOverlay(s.Data); err != nil {
				return fmt.Errorf("sim/world: %w", err)
			}
		case "sim/actors":
			// Stand-ins take the ids; prefix actors' final state is moot.
		case "sim/mailboxes":
			if n := pendingMessages(s.Data); n != 0 {
				return fmt.Errorf("%w: image has %d pending messages — not a quiesced phase boundary",
					snapshot.ErrCorrupt, n)
			}
		case "obs/watermark":
			if err := tr.RestoreWatermark(s.Data); err != nil {
				return fmt.Errorf("obs/watermark: %w", err)
			}
		default:
			if ci >= len(comps) || comps[ci].name != s.Name {
				have := "nothing"
				if ci < len(comps) {
					have = fmt.Sprintf("%q", comps[ci].name)
				}
				return fmt.Errorf("%w: image section %q where the rebuilt world registered %s",
					snapshot.ErrCorrupt, s.Name, have)
			}
			if err := comps[ci].load(snapshot.NewDec(s.Data)); err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
			ci++
		}
	}
	if ci != len(comps) {
		return fmt.Errorf("%w: image has %d component sections, rebuilt world registered %d",
			snapshot.ErrCorrupt, ci, len(comps))
	}
	return nil
}

// pendingMessages sums the pending-message counts of a "sim/mailboxes"
// section (-1 on parse failure, which the caller reports as non-zero).
func pendingMessages(data []byte) int {
	d := snapshot.NewDec(data)
	total := 0
	n := d.U64()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		d.Str() // name
		d.U64() // owner
		d.I64() // min latency
		d.U64() // sent
		d.U64() // received
		d.U64() // max depth
		pend := d.U64()
		total += int(pend)
		for j := uint64(0); j < pend && d.Err() == nil; j++ {
			d.I64()
			d.U64()
			d.U64()
		}
	}
	if d.Err() != nil {
		return -1
	}
	return total
}

// forkVerifySkip reports whether a section is excluded from the fork's
// re-encode verification: the engine sections (stand-in actors have
// their own names, clocks, and — for the world scalars — a boot-time
// clock) and the OS sections, whose trailing core-scheduler statistics
// accumulate per executed dispatch and are observability, not behavior
// (their address-space state IS overlaid and its cursor checked by the
// suffix's placement determinism).
func forkVerifySkip(name string) bool {
	switch name {
	case "sim/world", "sim/actors", "sim/mailboxes":
		return true
	}
	return strings.HasPrefix(name, "os/")
}

// verifyFork re-encodes the forked world and byte-compares every
// verifiable section against the image: the physical memory, every
// enclave module (segments, permits, name server, router, counters),
// and the restored tracer watermark must be indistinguishable from the
// snapshotted world's. This is the restore-side half of the snapshot
// determinism contract — canonical encodings make divergence a byte
// inequality instead of a heisenbug three phases later.
func verifyFork(w *sim.World, img *snapshot.Image) error {
	re := w.SnapshotImage()
	if len(re.Sections) != len(img.Sections) {
		return fmt.Errorf("%w: fork re-encoded %d sections, image has %d",
			snapshot.ErrCorrupt, len(re.Sections), len(img.Sections))
	}
	for i := range img.Sections {
		a, b := &img.Sections[i], &re.Sections[i]
		if a.Name != b.Name {
			return fmt.Errorf("%w: section %d is %q in the image, %q re-encoded",
				snapshot.ErrCorrupt, i, a.Name, b.Name)
		}
		if forkVerifySkip(a.Name) {
			continue
		}
		if !bytes.Equal(a.Data, b.Data) {
			return fmt.Errorf("%w: forked world diverges from the image in section %q",
				snapshot.ErrCorrupt, a.Name)
		}
	}
	return nil
}

// fig9ForkBytes decodes an encoded snapshot image (integrity-checking
// its trailing hash) and forks a world from it.
func fig9ForkBytes(enc []byte) (*fig9Phased, error) {
	img, err := sim.Restore(bytes.NewReader(enc))
	if err != nil {
		return nil, err
	}
	return fig9Fork(img)
}

// fig9Fork reconstructs a phased Figure 9 world from a snapshot image:
// re-run the build recipe under the image's seed, spawn one stand-in per
// prefix actor (holding their scheduler ids), quiesce, overlay the
// prefix-advanced state, verify, and position the tracer at the image's
// watermark. The returned world is ready for runSuffix.
func fig9Fork(img *snapshot.Image) (*fig9Phased, error) {
	if img.Recipe != "fig9-prefix" {
		return nil, fmt.Errorf("fig9 fork: image recipe is %q", img.Recipe)
	}
	if img.Kind != "serial" {
		return nil, fmt.Errorf("fig9 fork: phase boundaries are a serial-engine construct, image is %q", img.Kind)
	}
	var p fig9PrefixParams
	if err := json.Unmarshal(img.Params, &p); err != nil {
		return nil, fmt.Errorf("fig9 fork: params: %w", err)
	}
	w := sim.NewWorld(img.Seed)
	costs := sim.DefaultCosts()
	nodes := make([]*fig9Node, p.Nodes)
	var comps []sectionLoader
	for i := range nodes {
		n, err := fig9BuildNode(w, costs, i, img.Seed, p.MultiEnclave)
		if err != nil {
			return nil, err
		}
		nodes[i] = n
		comps = append(comps, n.loaders()...)
		// Stand-ins in the prefix pair's spawn slots: same actor ids, no
		// trace events (the tracer is installed after they run). The sim
		// stand-in waits for the node's enclaves to bootstrap — kernel
		// daemons only advance while a non-daemon is runnable, and the
		// fork needs the same registered identities and learned routes the
		// prefix world had before the overlay can verify against them.
		w.Spawn(n.simSide.Mod.Name()+"/sim", func(a *sim.Actor) {
			for _, m := range n.mods {
				m.WaitReady(a)
			}
		})
		w.Spawn(n.anSide.Mod.Name()+"/analytics", func(a *sim.Actor) {})
	}
	if err := w.RunPhase(); err != nil {
		return nil, err
	}
	// The stand-ins finish the moment the enclaves report ready, which can
	// leave bootstrap residue queued (the prefix world executed it long
	// before the cut): drain it before the watermark restore so it is not
	// re-observed in the suffix.
	if err := w.DrainDaemons(); err != nil {
		return nil, err
	}
	tr := trace.NewTracer(fig9PhasedLabel(p, img.Seed))
	tr.SetKeepEvents(false)
	w.SetObserver(tr)
	if err := overlaySections(w, tr, img, comps); err != nil {
		return nil, fmt.Errorf("fig9 fork: %w", err)
	}
	if err := verifyFork(w, img); err != nil {
		return nil, fmt.Errorf("fig9 fork: %w", err)
	}
	return &fig9Phased{w: w, tr: tr, nodes: nodes, p: p, cut: sim.Time(img.CutNs)}, nil
}
