package experiments

// Snapshot round-trip property tests (DESIGN.md §12): for one world of
// every figure (Fig. 5–9, Table 2) and a faulted world, arming a
// checkpoint and capturing a snapshot image must be invisible — the
// run-to-end digest equals the uninterrupted run's — at cuts 0%, 50%,
// and 90% of the run's virtual time. The captured image must survive
// the wire format bit-exactly (Snapshot→Restore), and replaying the
// recipe to the same cut must regenerate the image byte-for-byte: that
// replay IS the restore path (checkpoint.go), so byte-equality here is
// the restore-correctness property. TestParallelSnapshotRoundtrip
// repeats the capture on the conservative parallel engine
// (SetParallel(2)) and runs under -race via the Makefile race target.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"xemem/internal/sim"
	"xemem/internal/sim/snapshot"
	"xemem/internal/sim/trace"
)

// roundtripCases drives every registered recipe with parameters reduced
// for test runtime; together they cover each figure world, a fault world
// with message loss and a mid-run enclave crash, and a sharded cluster
// world whose mid-run cuts serialize live lease caches and shard
// counters.
var roundtripCases = []struct {
	recipe string
	params string
}{
	{"fig5", `{"sizes_mb":[128,256],"reps":2}`},
	{"fig6point", `{"enclaves":2,"size_mb":128,"reps":2}`},
	{"fig7", `{"size":"2MB"}`},
	{"fig8", ``},
	{"fig9", ``},
	{"table2", `{"pairing":"vm-to-kitten","reps":2}`},
	{"fault", `{"drop":0.05,"crash":true,"rounds":10}`},
	{"cluster", `{"nodes":2,"shards":1,"churn":false,"rounds":6}`},
}

const roundtripSeed = 11

// runRoundtrip executes one recipe with a digest-only tracer on its
// world, the engine selected by workers (0 = serial), and — when armed —
// a checkpoint at cut that hands the world's snapshot image to onImage.
// It returns the run's trace digest.
func runRoundtrip(t *testing.T, recipe, params string, workers int, cut sim.Time, armed bool, onImage func(*snapshot.Image)) trace.Digest {
	t.Helper()
	fn, ok := recipes[recipe]
	if !ok {
		t.Fatalf("unknown recipe %q", recipe)
	}
	var tr *trace.Tracer
	worlds := 0
	obs := func(label string, w *sim.World) {
		worlds++
		if worlds > 1 {
			return
		}
		w.SetParallel(workers)
		tr = trace.NewTracer(label)
		tr.SetKeepEvents(false)
		w.SetObserver(tr)
		if armed {
			w.SetCheckpoint(cut, func() { onImage(w.SnapshotImage()) })
		}
	}
	if err := fn(json.RawMessage(params), roundtripSeed, obs); err != nil {
		t.Fatal(err)
	}
	if worlds != 1 {
		t.Fatalf("recipe %q announced %d worlds, want 1", recipe, worlds)
	}
	return tr.Digest()
}

// TestSnapshotRoundtrip is the serial-engine property.
func TestSnapshotRoundtrip(t *testing.T) {
	for _, tc := range roundtripCases {
		tc := tc
		t.Run(tc.recipe, func(t *testing.T) {
			base := runRoundtrip(t, tc.recipe, tc.params, 0, 0, false, nil)
			if base.FinalNs == 0 {
				t.Fatal("uninterrupted run ended at virtual time 0")
			}
			for _, pct := range []int64{0, 50, 90} {
				pct := pct
				t.Run(fmt.Sprintf("cut=%d%%", pct), func(t *testing.T) {
					cut := sim.Time(base.FinalNs * pct / 100)

					// Capture: the checkpoint must not perturb the run.
					var enc []byte
					d := runRoundtrip(t, tc.recipe, tc.params, 0, cut, true, func(img *snapshot.Image) {
						enc = img.Encode()
					})
					if d != base {
						t.Errorf("checkpointed digest diverged\n got  %+v\n want %+v", d, base)
					}
					if enc == nil {
						t.Fatal("checkpoint never fired")
					}

					// Wire format: Snapshot→Restore is bit-exact and
					// integrity-checked.
					img, err := sim.Restore(bytes.NewReader(enc))
					if err != nil {
						t.Fatal(err)
					}
					if img.CutNs != int64(cut) {
						t.Errorf("image cut %d, want %d", img.CutNs, int64(cut))
					}
					if !bytes.Equal(img.Encode(), enc) {
						t.Error("restored image re-encodes differently")
					}

					// Restore-by-replay: rebuilding the recipe and running
					// to the same cut must regenerate the serialized state
					// byte-for-byte, and still finish with the base digest.
					replayed := false
					d2 := runRoundtrip(t, tc.recipe, tc.params, 0, cut, true, func(img2 *snapshot.Image) {
						replayed = true
						if !bytes.Equal(img2.Encode(), enc) {
							t.Error("replayed world's state diverged from the snapshot at the cut")
						}
					})
					if !replayed {
						t.Fatal("replay checkpoint never fired")
					}
					if d2 != base {
						t.Errorf("replay digest diverged\n got  %+v\n want %+v", d2, base)
					}
				})
			}
		})
	}
}

// TestParallelSnapshotRoundtrip captures at 50% on the conservative
// parallel engine: the checkpoint (a barrier quiesce there) must leave
// the digest identical to the serial uninterrupted run, and the image —
// taken at a barrier, so not byte-comparable to a serial-cut image —
// must still round-trip the wire format bit-exactly.
func TestParallelSnapshotRoundtrip(t *testing.T) {
	for _, tc := range roundtripCases {
		tc := tc
		t.Run(tc.recipe, func(t *testing.T) {
			base := runRoundtrip(t, tc.recipe, tc.params, 0, 0, false, nil)
			if base.FinalNs == 0 {
				t.Fatal("uninterrupted run ended at virtual time 0")
			}
			cut := sim.Time(base.FinalNs / 2)
			var enc []byte
			d := runRoundtrip(t, tc.recipe, tc.params, 2, cut, true, func(img *snapshot.Image) {
				enc = img.Encode()
			})
			if d != base {
				t.Errorf("parallel checkpointed digest diverged\n got  %+v\n want %+v", d, base)
			}
			if enc == nil {
				t.Fatal("checkpoint never fired on the parallel engine")
			}
			img, err := sim.Restore(bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			if img.Kind != "parallel" {
				t.Errorf("image kind %q, want parallel", img.Kind)
			}
			if !bytes.Equal(img.Encode(), enc) {
				t.Error("restored image re-encodes differently")
			}
		})
	}
}
