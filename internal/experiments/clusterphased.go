package experiments

// Phased cluster worlds: the snapshot-fork path for the multi-node tier.
// A cluster prefix builds N machines with co-kernels, runs setup (enclave
// bootstrap, RDMA queue-pair charges, routing mesh, shard installation),
// and warms the sharded name service with one fully-retired cross-node
// exchange — so the quiesced image carries populated lease caches, shard
// counters, advanced segid cursors, and fabric-written physical memory,
// but no live XEMEM objects a fork would have to reconstruct actors for.
// A fork re-runs the build recipe (setup executes for real: routing
// tables and shard maps are host pointers), stands in for the warm
// actors, overlays the prefix-advanced state — including the lease/shard
// tail the module overlay restores — verifies the re-encoded sections
// byte-match the image, and continues the trace digest at the cut.

import (
	"encoding/json"
	"fmt"

	"xemem/internal/cluster"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/sim/snapshot"
	"xemem/internal/sim/trace"
	"xemem/internal/xpmem"
)

// clusterPrefixParams is the recipe parameter blob embedded in a phased
// cluster snapshot image.
type clusterPrefixParams struct {
	Nodes  int `json:"nodes"`
	Shards int `json:"shards"`
}

const clusterWarmPayload = "warm exchange payload"

// clusterOutcome is a phased cluster cell's simulated result — a pure
// function of (seed, prefix, suffix rounds), identical whether the cell
// bootstrapped or forked.
type clusterOutcome struct {
	SimTimeNs int64        `json:"sim_time_ns"`
	Successes int          `json:"successes"`
	LeaseHits int          `json:"lease_hits"`
	Digest    trace.Digest `json:"digest"`
}

// clusterPhased is a cluster world positioned at the prefix/suffix
// boundary, plus the warm producer/consumer process handles the suffix
// workload reuses.
type clusterPhased struct {
	w    *sim.World
	tr   *trace.Tracer
	cl   *cluster.Cluster
	prod *xpmem.Session
	heap *proc.Region
	cons *xpmem.Session
	p    clusterPrefixParams
	cut  sim.Time
}

func clusterPhasedLabel(p clusterPrefixParams, seed uint64) string {
	return fmt.Sprintf("clusterphased/nodes=%d/shards=%d/seed=%d", p.Nodes, p.Shards, seed)
}

// clusterPhasedBuild constructs the cluster substrate both paths share:
// the N-node sharded cluster plus the warm producer (last node's
// co-kernel) and warm consumer (node 0's management enclave) processes.
// Process creation lives here so a fork reconstructs the same OS
// address-space layout the snapshotted world had.
func clusterPhasedBuild(w *sim.World, seed uint64, p clusterPrefixParams) (*clusterPhased, error) {
	cl, err := cluster.NewInWorld(w, cluster.Config{
		Nodes: p.Nodes, Shards: p.Shards, CoKernels: true, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	last := cl.Nodes[p.Nodes-1]
	prod, heap, err := last.X.KittenProcess(last.CK, "warm-prod", clusterSegBytes+1<<16)
	if err != nil {
		return nil, err
	}
	cons, _ := cl.Nodes[0].X.LinuxProcess("warm-cons", 1)
	return &clusterPhased{w: w, cl: cl, prod: prod, heap: heap, cons: cons, p: p}, nil
}

// clusterSnapshot builds a cluster world, runs the warm prefix to
// quiescence (serial engine — RunPhase is the fork primitive), and
// returns the world positioned at the cut. The warm exchange fully
// retires its segment: the consumer's lease cache entry and every
// module's shard counters are the only live prefix state, and those are
// exactly what the module overlay restores on the fork side.
func clusterSnapshot(seed uint64, p clusterPrefixParams) (*clusterPhased, error) {
	w := sim.NewWorld(seed)
	params, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	w.SetRecipe("cluster-prefix", params)
	tr := trace.NewTracer(clusterPhasedLabel(p, seed))
	tr.SetKeepEvents(false)
	w.SetObserver(tr)
	ph, err := clusterPhasedBuild(w, seed, p)
	if err != nil {
		return nil, err
	}
	ph.tr = tr

	var runErr error
	var done bool
	w.Spawn("cluster/warm-prod", func(a *sim.Actor) {
		ph.cl.WaitReady(a)
		if _, err := ph.prod.Write(ph.heap.Base, []byte(clusterWarmPayload)); err != nil {
			runErr = err
			return
		}
		segid, err := ph.prod.Make(a, ph.heap.Base, clusterSegBytes, xpmem.PermRead, "warm-seg")
		if err != nil {
			runErr = err
			return
		}
		a.Poll(20*sim.Microsecond, func() bool { return done })
		if err := ph.prod.Remove(a, segid); err != nil {
			runErr = err
		}
	})
	w.Spawn("cluster/warm-cons", func(a *sim.Actor) {
		defer func() { done = true }()
		ph.cl.WaitReady(a)
		var segid xpmem.Segid
		if !a.PollDeadline(clusterLookupEvery, a.Now()+2*sim.Millisecond, func() bool {
			s, err := ph.cons.Lookup(a, "warm-seg")
			if err != nil {
				return false
			}
			segid = s
			return true
		}) {
			runErr = fmt.Errorf("cluster prefix: warm-seg never published")
			return
		}
		apid, err := ph.cons.Get(a, segid, xpmem.PermRead)
		if err != nil {
			runErr = err
			return
		}
		va, err := ph.cons.Attach(a, segid, apid, 0, clusterSegBytes, xpmem.PermRead)
		if err != nil {
			runErr = err
			return
		}
		buf := make([]byte, len(clusterWarmPayload))
		if _, err := ph.cons.Read(va, buf); err != nil || string(buf) != clusterWarmPayload {
			runErr = fmt.Errorf("cluster prefix: read %q over the fabric (%v)", buf, err)
			return
		}
		if err := ph.cons.Detach(a, va); err != nil {
			runErr = err
			return
		}
		if err := ph.cons.Release(a, segid, apid); err != nil {
			runErr = err
			return
		}
		// A second get inside the lease TTL: the warmed image must carry a
		// lease-cache hit, not just a miss-and-fill.
		apid2, err := ph.cons.Get(a, segid, xpmem.PermRead)
		if err != nil {
			runErr = err
			return
		}
		if err := ph.cons.Release(a, segid, apid2); err != nil {
			runErr = err
		}
	})
	if err := w.RunPhase(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	// Drain daemon dispatches already queued at the instant the last
	// prefix actor finished, so the cut is a pure function of the prefix.
	if err := w.DrainDaemons(); err != nil {
		return nil, err
	}
	ph.cut = w.Now()
	return ph, nil
}

// runSuffix attaches the suffix workload at the cut — a fresh cross-node
// exchange with `rounds` paced get/release cycles against a new segment —
// and runs the world to completion.
func (ph *clusterPhased) runSuffix(rounds int) (clusterOutcome, error) {
	var out clusterOutcome
	var runErr error
	var done bool
	w := ph.w
	w.Spawn("cluster/tail-prod", func(a *sim.Actor) {
		a.AdvanceTo(ph.cut)
		segid, err := ph.prod.Make(a, ph.heap.Base, clusterSegBytes, xpmem.PermRead, "tail-seg")
		if err != nil {
			runErr = err
			return
		}
		a.Poll(20*sim.Microsecond, func() bool { return done })
		if err := ph.prod.Remove(a, segid); err != nil {
			runErr = err
		}
	})
	w.Spawn("cluster/tail-cons", func(a *sim.Actor) {
		defer func() { done = true }()
		a.AdvanceTo(ph.cut)
		var segid xpmem.Segid
		if !a.PollDeadline(clusterLookupEvery, a.Now()+2*sim.Millisecond, func() bool {
			s, err := ph.cons.Lookup(a, "tail-seg")
			if err != nil {
				return false
			}
			segid = s
			return true
		}) {
			runErr = fmt.Errorf("cluster suffix: tail-seg never published")
			return
		}
		for r := 0; r < rounds; r++ {
			apid, err := ph.cons.GetWith(a, segid, xpmem.GetOpts{Perm: xpmem.PermRead, Timeout: clusterGetTimeout})
			if err != nil {
				runErr = err
				return
			}
			out.Successes++
			if err := ph.cons.Release(a, segid, apid); err != nil {
				runErr = err
				return
			}
			a.Advance(clusterPace)
		}
	})
	if err := w.Run(); err != nil {
		return out, err
	}
	if runErr != nil {
		return out, runErr
	}
	out.SimTimeNs = int64(w.Now())
	for _, m := range ph.cl.Modules() {
		out.LeaseHits += m.ShardStats.LeaseHits
	}
	out.Digest = ph.tr.Digest()
	return out, nil
}

// clusterLoaders returns the cluster's component loaders in section
// registration order: per node, the physical memory, the Linux kernel,
// the Linux module, then the co-kernel module (the Kitten kernel keeps
// no snapshot section of its own — its processes are statically laid
// out at build time).
func clusterLoaders(cl *cluster.Cluster) []sectionLoader {
	var ls []sectionLoader
	for _, n := range cl.Nodes {
		pm := n.X.Phys()
		ls = append(ls,
			sectionLoader{"phys/" + pm.Name(), pm.LoadSnapshot},
			sectionLoader{"os/" + n.X.Linux().Name(), n.X.Linux().LoadSnapshotOverlay},
			sectionLoader{"mod/" + n.X.LinuxModule().Name(), n.X.LinuxModule().LoadSnapshotOverlay},
			sectionLoader{"mod/" + n.CK.Module.Name(), n.CK.Module.LoadSnapshotOverlay},
		)
	}
	return ls
}

// clusterFork reconstructs a phased cluster world from a snapshot image:
// re-run the build recipe under the image's seed (cluster setup executes
// for real — the routing mesh and shard layout are host state the
// overlay verifies against, not restores), spawn stand-ins in the warm
// actors' scheduler slots, quiesce, overlay the prefix-advanced state,
// verify, and position the tracer at the image's watermark.
func clusterFork(img *snapshot.Image) (*clusterPhased, error) {
	if img.Recipe != "cluster-prefix" {
		return nil, fmt.Errorf("cluster fork: image recipe is %q", img.Recipe)
	}
	if img.Kind != "serial" {
		return nil, fmt.Errorf("cluster fork: phase boundaries are a serial-engine construct, image is %q", img.Kind)
	}
	var p clusterPrefixParams
	if err := json.Unmarshal(img.Params, &p); err != nil {
		return nil, fmt.Errorf("cluster fork: params: %w", err)
	}
	w := sim.NewWorld(img.Seed)
	ph, err := clusterPhasedBuild(w, img.Seed, p)
	if err != nil {
		return nil, err
	}
	// Stand-ins in the warm pair's spawn slots: same actor ids, no trace
	// events (the tracer is installed after they run). Cluster setup is
	// the actor that drives bootstrap to completion on this side too.
	w.Spawn("cluster/warm-prod", func(a *sim.Actor) { ph.cl.WaitReady(a) })
	w.Spawn("cluster/warm-cons", func(a *sim.Actor) {})
	if err := w.RunPhase(); err != nil {
		return nil, err
	}
	if err := w.DrainDaemons(); err != nil {
		return nil, err
	}
	tr := trace.NewTracer(clusterPhasedLabel(p, img.Seed))
	tr.SetKeepEvents(false)
	w.SetObserver(tr)
	ph.tr = tr
	if err := overlaySections(w, tr, img, clusterLoaders(ph.cl)); err != nil {
		return nil, fmt.Errorf("cluster fork: %w", err)
	}
	if err := verifyFork(w, img); err != nil {
		return nil, fmt.Errorf("cluster fork: %w", err)
	}
	ph.cut = sim.Time(img.CutNs)
	return ph, nil
}
