package experiments

import (
	"runtime"

	"xemem/internal/sim"
)

// HostInfo is the host-parallelism header every BENCH_*.json carries:
// without it, a ~1.0x sweep speedup recorded on a single-core CI
// container is indistinguishable from a regression on a real multicore
// host. Simulated results never depend on these values — only host
// wall-clock figures do.
type HostInfo struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// CaptureHost snapshots the current host's parallelism context.
func CaptureHost() HostInfo {
	return HostInfo{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
}

// EngineWorkers, when positive, switches every world an experiment
// constructs onto the conservative parallel engine with that many worker
// goroutines (sim.World.SetParallel). The engine is digest-identical to
// the serial reference at any worker count, so every figure, table, and
// golden artifact is byte-identical whatever this is set to — the
// identity tests assert exactly that. Zero (the default) keeps the
// serial reference engine. Like Observe, set it before an experiment
// starts and leave it alone until the experiment returns.
var EngineWorkers int

// engineHook applies the package-level engine selection to one freshly
// constructed world. Called from announce, which every experiment world
// passes through before it runs.
func engineHook(w *sim.World) {
	if n := EngineWorkers; n > 0 {
		w.SetParallel(n)
	}
}
