package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"xemem/internal/experiments/sweep"
	"xemem/internal/sim"
	"xemem/internal/sim/snapshot"
)

// TestSnapshotFork is the fork-identity contract behind the snapshot
// bench: a Figure 9 cell continued from a decoded snapshot image must be
// indistinguishable — simulated time, analysis points, and trace digest,
// dispatch counter included — from the same cell re-run from scratch
// through the bootstrap prefix.
func TestSnapshotFork(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    fig9PrefixParams
	}{
		{"multi", fig9PrefixParams{Nodes: 2, MultiEnclave: true, PrefixIters: 120, Recurring: true}},
		{"linux-only", fig9PrefixParams{Nodes: 2, MultiEnclave: false, PrefixIters: 120}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ph, err := fig9Snapshot(7, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			img := ph.w.SnapshotImage()

			// Round-trip the image through the wire format, as the bench's
			// shared prep does.
			var buf bytes.Buffer
			if _, err := img.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			tail := fig9Tail{Recurring: true, Iters: 60}
			boot, err := ph.runSuffix(tail)
			if err != nil {
				t.Fatal(err)
			}
			fk, err := fig9ForkBytes(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			fork, err := fk.runSuffix(tail)
			if err != nil {
				t.Fatal(err)
			}
			if boot != fork {
				t.Fatalf("outcomes diverge:\n boot %+v\n fork %+v", boot, fork)
			}
		})
	}

	// The cluster tier: a warmed 2-node sharded world — populated lease
	// cache, non-zero shard counters, fabric-written memory — forked
	// through sweep.FromSnapshot exactly as a production sweep would,
	// must be indistinguishable from re-bootstrapping the prefix.
	t.Run("cluster", func(t *testing.T) {
		p := clusterPrefixParams{Nodes: 2, Shards: 1}
		ph, err := clusterSnapshot(7, p)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ph.w.SnapshotImage().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		enc := buf.Bytes()

		tails := []int{8, 12}
		boots := make([]clusterOutcome, len(tails))
		for i, rounds := range tails {
			bp := ph
			if i > 0 {
				if bp, err = clusterSnapshot(7, p); err != nil {
					t.Fatal(err)
				}
			}
			if boots[i], err = bp.runSuffix(rounds); err != nil {
				t.Fatal(err)
			}
		}

		// The decoded image is the shared bootstrap artifact; each fork
		// cell forks its own world from it, the sweep.FromSnapshot shape
		// the snapshot-forked sweeps use in production. Two workers prove
		// the forked worlds are independent.
		prep := func() (*snapshot.Image, error) { return sim.Restore(bytes.NewReader(enc)) }
		forkCells := make([]sweep.SnapCell[*snapshot.Image, clusterOutcome], len(tails))
		for i, rounds := range tails {
			rounds := rounds
			forkCells[i] = sweep.SnapCell[*snapshot.Image, clusterOutcome]{
				Label: fmt.Sprintf("cluster fork rounds=%d", rounds),
				Run: func(img *snapshot.Image) (clusterOutcome, error) {
					fk, err := clusterFork(img)
					if err != nil {
						return clusterOutcome{}, err
					}
					// The warmed state really crossed the image: the fork
					// starts with the prefix's lease-cache hit already on
					// the consumer module's counters.
					if hits := fk.cl.Nodes[0].X.LinuxModule().ShardStats.LeaseHits; hits == 0 {
						return clusterOutcome{}, fmt.Errorf("forked consumer module has no lease hits — shard tail not overlaid")
					}
					return fk.runSuffix(rounds)
				},
			}
		}
		forks, err := sweep.Run(sweep.FromSnapshot(prep, forkCells), 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tails {
			if boots[i] != forks[i] {
				t.Fatalf("cluster outcomes diverge at rounds=%d:\n boot %+v\n fork %+v", tails[i], boots[i], forks[i])
			}
			if boots[i].LeaseHits == 0 || boots[i].Successes != tails[i] {
				t.Fatalf("cluster suffix did no sharded work: %+v", boots[i])
			}
		}
	})
}
