package experiments

import (
	"bytes"
	"testing"
)

// TestSnapshotFork is the fork-identity contract behind the snapshot
// bench: a Figure 9 cell continued from a decoded snapshot image must be
// indistinguishable — simulated time, analysis points, and trace digest,
// dispatch counter included — from the same cell re-run from scratch
// through the bootstrap prefix.
func TestSnapshotFork(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    fig9PrefixParams
	}{
		{"multi", fig9PrefixParams{Nodes: 2, MultiEnclave: true, PrefixIters: 120, Recurring: true}},
		{"linux-only", fig9PrefixParams{Nodes: 2, MultiEnclave: false, PrefixIters: 120}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ph, err := fig9Snapshot(7, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			img := ph.w.SnapshotImage()

			// Round-trip the image through the wire format, as the bench's
			// shared prep does.
			var buf bytes.Buffer
			if _, err := img.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			tail := fig9Tail{Recurring: true, Iters: 60}
			boot, err := ph.runSuffix(tail)
			if err != nil {
				t.Fatal(err)
			}
			fk, err := fig9ForkBytes(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			fork, err := fk.runSuffix(tail)
			if err != nil {
				t.Fatal(err)
			}
			if boot != fork {
				t.Fatalf("outcomes diverge:\n boot %+v\n fork %+v", boot, fork)
			}
		})
	}
}
