package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFaultSweepDeterministic is the acceptance gate for the fault
// sweep: a fixed (seed, rounds) pair produces a byte-identical
// BENCH_fault.json — including every per-cell digest — across reruns
// and across worker counts, and the cells behave as the failure model
// promises: the control cell is loss-free and fully successful, crash
// cells attribute their failures to the dead enclave, and lossy cells
// actually lose messages.
func TestFaultSweepDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")

	r1, err := FaultSweep(1234, 12, 1, p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FaultSweep(1234, 12, 4, p2)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("BENCH_fault.json differs across reruns/worker counts:\n%s\nvs\n%s", b1, b2)
	}
	for i := range r1.Cells {
		if r1.Cells[i].Digest != r2.Cells[i].Digest {
			t.Fatalf("cell %d digest differs: %s vs %s", i, r1.Cells[i].Digest, r2.Cells[i].Digest)
		}
		if r1.Cells[i].Digest == "" {
			t.Fatalf("cell %d has no digest", i)
		}
	}

	// The file round-trips as JSON.
	var back FaultSweepResult
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("BENCH_fault.json does not parse: %v", err)
	}
	if len(back.Cells) != len(FaultDropRates)*2 {
		t.Fatalf("sweep has %d cells, want %d", len(back.Cells), len(FaultDropRates)*2)
	}

	for _, c := range r1.Cells {
		switch {
		case c.DropProb == 0 && !c.Crash:
			// Control cell: nothing injected, nothing failed.
			if c.SuccessRate != 1.0 || c.Drops != 0 || c.Timeouts != 0 || c.EnclaveDown != 0 {
				t.Errorf("control cell degraded: %+v", c)
			}
			if c.P50AttachNs == 0 || c.P99AttachNs < c.P50AttachNs {
				t.Errorf("control cell latencies implausible: %+v", c)
			}
		case c.DropProb == 0 && c.Crash:
			// Crash-only cell: failures exist and are attributed to the
			// dead enclave, not to timeouts.
			if c.EnclaveDown == 0 || c.Successes == 0 {
				t.Errorf("crash cell did not split pre/post-crash: %+v", c)
			}
			if c.Drops != 0 {
				t.Errorf("crash-only cell dropped messages: %+v", c)
			}
		case c.DropProb >= 0.05:
			if c.Drops == 0 {
				t.Errorf("lossy cell (drop=%.2f) lost nothing over the sweep: %+v", c.DropProb, c)
			}
		}
		if c.OtherErrors != 0 {
			t.Errorf("cell %+v saw errors outside the failure model", c)
		}
	}
}
