package experiments

import (
	"fmt"
	"strings"

	"xemem/internal/sim"
	"xemem/internal/sim/trace"
)

// Fig6Explanation decomposes the Figure 6 1→2 enclave throughput dip
// into the contention metrics the tracer exports. All times are per
// attachment (totals divided by enclaves·reps), so ObservedDeltaNs —
// the growth in mean attachment latency when a second enclave starts
// attaching concurrently — can be compared directly against
// ExplainedDeltaNs, the growth of the three contention components:
//
//   - Coherence: the mm-coherence counter, the per-page cache-line
//     coherence traffic Linux pays on its shared memory-map structures
//     once a second mapper is active (§5.3). Zero with one enclave.
//   - InboxWait: residency of XEMEM command messages in the Linux
//     kernel module's inbox — the core-0 IPI funnel serialization;
//     with one enclave a message is always handled immediately.
//   - Core0Wait: queueing for the core-0 execution resource itself
//     (IPI handlers and serve work colliding with other core-0 duty).
type Fig6Explanation struct {
	SizeMB int
	Reps   int

	// Mean per-attachment latency at 1 and 2 enclaves.
	Attach1Ns sim.Time
	Attach2Ns sim.Time
	// ObservedDeltaNs = Attach2Ns - Attach1Ns: the dip being explained.
	ObservedDeltaNs sim.Time

	// Per-attachment contention components at 1 and 2 enclaves.
	Coherence1Ns, Coherence2Ns sim.Time
	InboxWait1Ns, InboxWait2Ns sim.Time
	Core0Wait1Ns, Core0Wait2Ns sim.Time

	// ExplainedDeltaNs is the growth of the summed components.
	ExplainedDeltaNs sim.Time
}

// Coverage reports what fraction of the observed latency growth the
// exported contention metrics account for (1.0 = fully explained).
func (e *Fig6Explanation) Coverage() float64 {
	if e.ObservedDeltaNs == 0 {
		return 0
	}
	return float64(e.ExplainedDeltaNs) / float64(e.ObservedDeltaNs)
}

// Fig6Explain reruns the Figure 6 szMB point at 1 and 2 enclaves with a
// metrics-only tracer attached and decomposes the latency dip. The
// tracers are threaded per world, so it neither touches the package
// Observe hooks nor conflicts with a concurrent sweep.
func Fig6Explain(seed uint64, szMB, reps int) (*Fig6Explanation, error) {
	if reps <= 0 {
		reps = 20
	}

	run := func(enclaves int) (sim.Time, *trace.Tracer, error) {
		tr := trace.NewTracer(fmt.Sprintf("fig6/enclaves=%d/size=%dMB", enclaves, szMB))
		tr.SetKeepEvents(false)
		obs := func(label string, w *sim.World) { w.SetObserver(tr) }
		_, meanAttach, _, err := fig6Point(obs, seed, enclaves, szMB, reps)
		if err != nil {
			return 0, nil, err
		}
		return meanAttach, tr, nil
	}

	attach1, tr1, err := run(1)
	if err != nil {
		return nil, err
	}
	attach2, tr2, err := run(2)
	if err != nil {
		return nil, err
	}

	per := func(tr *trace.Tracer, enclaves int) (coh, inbox, core0 sim.Time) {
		n := sim.Time(enclaves * reps)
		coh = tr.Counter("mm-coherence") / n
		inbox = tr.Queue("inbox:node0/linux").WaitTime / n
		core0 = tr.Resource("node0/linux/core0").Wait / n
		return
	}

	e := &Fig6Explanation{
		SizeMB:          szMB,
		Reps:            reps,
		Attach1Ns:       attach1,
		Attach2Ns:       attach2,
		ObservedDeltaNs: attach2 - attach1,
	}
	e.Coherence1Ns, e.InboxWait1Ns, e.Core0Wait1Ns = per(tr1, 1)
	e.Coherence2Ns, e.InboxWait2Ns, e.Core0Wait2Ns = per(tr2, 2)
	e.ExplainedDeltaNs = (e.Coherence2Ns + e.InboxWait2Ns + e.Core0Wait2Ns) -
		(e.Coherence1Ns + e.InboxWait1Ns + e.Core0Wait1Ns)
	return e, nil
}

// String renders the decomposition as a small table.
func (e *Fig6Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 dip decomposition: %d MB attachments, %d reps (per-attachment means)\n", e.SizeMB, e.Reps)
	fmt.Fprintf(&b, "%-24s %14s %14s %14s\n", "Component", "1 enclave", "2 enclaves", "delta")
	row := func(name string, a, b2 sim.Time) string {
		return fmt.Sprintf("%-24s %14s %14s %14s\n", name, a, b2, b2-a)
	}
	b.WriteString(row("attachment latency", e.Attach1Ns, e.Attach2Ns))
	b.WriteString(row("  mm coherence", e.Coherence1Ns, e.Coherence2Ns))
	b.WriteString(row("  inbox (IPI funnel)", e.InboxWait1Ns, e.InboxWait2Ns))
	b.WriteString(row("  core-0 queueing", e.Core0Wait1Ns, e.Core0Wait2Ns))
	fmt.Fprintf(&b, "explained: %s of %s (%.1f%%)\n",
		e.ExplainedDeltaNs, e.ObservedDeltaNs, 100*e.Coverage())
	return b.String()
}
