package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"xemem"
	"xemem/internal/core"
	"xemem/internal/experiments/sweep"
	"xemem/internal/fault"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
	"xemem/internal/xpmem"
)

// FaultDropRates are the message-loss probabilities the fault sweep
// covers (0 is the control cell).
var FaultDropRates = []float64{0, 0.02, 0.05, 0.10}

// Fault sweep workload geometry: each cell runs `rounds`
// get→attach→read→detach→release cycles from a Linux consumer against a
// co-kernel export, with bounded per-request retry policies so lost
// messages surface as ErrTimeout instead of hangs. In crash cells the
// exporting enclave dies mid-sweep at faultCrashAt.
const (
	faultSegBytes   = 64 << 12
	faultCrashAt    = 500 * sim.Microsecond
	faultGetTimeout = 200 * sim.Microsecond
	faultAttTimeout = 500 * sim.Microsecond
)

// FaultCell is one (drop rate, crash) point: how the protocol degraded,
// where the failures were attributed, the attach-latency distribution of
// the survivors, and the run's trace digest — the determinism artifact.
type FaultCell struct {
	DropProb float64 `json:"drop_prob"`
	Crash    bool    `json:"crash"`

	Attempts    int     `json:"attempts"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
	Timeouts    int     `json:"timeouts"`
	EnclaveDown int     `json:"enclave_down"`
	OtherErrors int     `json:"other_errors"`

	Retries int `json:"retries"` // consumer-side rpc retries
	Drops   int `json:"drops"`   // messages the injector discarded
	Delays  int `json:"delays"`  // messages the injector stalled

	P50AttachNs int64 `json:"p50_attach_ns"` // virtual time, successful cycles
	P99AttachNs int64 `json:"p99_attach_ns"`

	Digest string `json:"digest"` // SHA-256 of the cell's full event stream
}

// FaultSweepResult is the regenerated fault sweep (BENCH_fault.json).
type FaultSweepResult struct {
	Host   HostInfo    `json:"host"`
	Seed   uint64      `json:"seed"`
	Rounds int         `json:"rounds"`
	Cells  []FaultCell `json:"cells"`
}

// FaultSweep runs the fault-injection sweep: every drop rate × {no
// crash, mid-sweep exporter crash}, each cell a closed world with its
// own injector and tracer. The entire result — per-cell counts,
// latency percentiles, and digests — is a pure function of (seed,
// rounds): rerunning writes a byte-identical BENCH_fault.json. When
// jsonPath is non-empty the result is written there as JSON.
func FaultSweep(seed uint64, rounds, workers int, jsonPath string) (*FaultSweepResult, error) {
	if rounds <= 0 {
		rounds = 40
	}
	res := &FaultSweepResult{Host: CaptureHost(), Seed: seed, Rounds: rounds}
	var cells []sweep.Cell[FaultCell]
	for _, crash := range []bool{false, true} {
		for _, drop := range FaultDropRates {
			drop, crash := drop, crash
			obs := cellObserve(len(cells))
			cells = append(cells, sweep.Cell[FaultCell]{
				Label: fmt.Sprintf("fault drop=%.2f crash=%v", drop, crash),
				Run: func() (FaultCell, error) {
					return faultRun(obs, seed, drop, crash, rounds)
				},
			})
		}
	}
	out, err := sweep.Run(cells, workers)
	if err != nil {
		return nil, err
	}
	res.Cells = out

	if jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// faultRun executes one fault-sweep cell in a fresh world. The world is
// announced through the standard observability seam; when the installed
// hook provides a tracer, the cell digest comes from it, otherwise a
// private digest-only tracer is installed.
func faultRun(obs observeFn, seed uint64, drop float64, crash bool, rounds int) (FaultCell, error) {
	cell := FaultCell{DropProb: drop, Crash: crash}
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 2 << 30})
	announce(obs, fmt.Sprintf("fault/drop=%.2f/crash=%v", drop, crash), node.World())
	tr, ok := node.World().Observer().(*trace.Tracer)
	if !ok {
		tr = trace.NewTracer(fmt.Sprintf("fault/drop=%.2f/crash=%v", drop, crash))
		tr.SetKeepEvents(false)
		node.World().SetObserver(tr)
	}

	plan := fault.Plan{DropProb: drop, DelayProb: drop, DelayMax: 5 * sim.Microsecond}
	ck, err := node.BootCoKernel("victim", 256<<20)
	if err != nil {
		return cell, err
	}
	if crash {
		plan.Crashes = []fault.Crash{{At: faultCrashAt, Module: ck.Module.Name()}}
	}
	inj := fault.New(node.World(), plan)
	inj.Register(node.LinuxModule(), ck.Module)
	inj.Arm()

	exp, heap, err := node.KittenProcess(ck, "producer", faultSegBytes+1<<16)
	if err != nil {
		return cell, err
	}
	var runErr error
	node.Spawn("producer", func(a *sim.Actor) {
		if _, err := exp.Make(a, heap.Base, faultSegBytes, xpmem.PermRead, "fault-sweep"); err != nil {
			// Under heavy loss the export itself may exhaust its budget;
			// the consumer then reports rounds of failures, which is the
			// behaviour under measurement, not a harness error.
			if !errors.Is(err, core.ErrTimeout) && !errors.Is(err, core.ErrEnclaveDown) {
				runErr = err
			}
		}
	})

	att, _ := node.LinuxProcess("consumer", 1)
	var attachNs []int64
	node.Spawn("consumer", func(a *sim.Actor) {
		var segid xpmem.Segid
		if !a.PollDeadline(20*sim.Microsecond, a.Now()+faultCrashAt/2, func() bool {
			s, err := att.Lookup(a, "fault-sweep")
			if err != nil {
				return false
			}
			segid = s
			return true
		}) {
			return // never exported; every cycle is unattempted
		}
		classify := func(err error) {
			switch {
			case errors.Is(err, core.ErrTimeout):
				cell.Timeouts++
			case errors.Is(err, core.ErrEnclaveDown):
				cell.EnclaveDown++
			default:
				cell.OtherErrors++
			}
		}
		for i := 0; i < rounds; i++ {
			cell.Attempts++
			start := a.Now()
			apid, err := att.GetWith(a, segid, xpmem.GetOpts{Perm: xpmem.PermRead, Timeout: faultGetTimeout})
			if err != nil {
				classify(err)
				continue
			}
			va, err := att.AttachWith(a, segid, apid, xpmem.AttachOpts{Bytes: faultSegBytes, Perm: xpmem.PermRead, Timeout: faultAttTimeout})
			if err != nil {
				classify(err)
				_ = att.Release(a, segid, apid)
				continue
			}
			attachNs = append(attachNs, int64(a.Now()-start))
			cell.Successes++
			buf := make([]byte, 64)
			if _, err := att.Read(va, buf); err != nil {
				classify(err)
			}
			if err := att.Detach(a, va); err != nil {
				classify(err)
			}
			if err := att.Release(a, segid, apid); err != nil {
				classify(err)
			}
		}
	})
	if err := node.Run(); err != nil {
		return cell, err
	}
	if runErr != nil {
		return cell, runErr
	}

	if cell.Attempts > 0 {
		cell.SuccessRate = float64(cell.Successes) / float64(cell.Attempts)
	}
	cell.Retries = node.LinuxModule().Stats.Retries
	st := inj.Stats()
	cell.Drops, cell.Delays = st.Drops, st.Delays
	cell.P50AttachNs = percentileNs(attachNs, 50)
	cell.P99AttachNs = percentileNs(attachNs, 99)
	cell.Digest = tr.Digest().SHA256
	return cell, nil
}

// percentileNs returns the p-th percentile of samples (nearest-rank), 0
// when empty.
func percentileNs(samples []int64, p int) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := (p*len(s) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// String renders the sweep for the terminal.
func (r *FaultSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep: %d get/attach cycles per cell, seed %d\n", r.Rounds, r.Seed)
	fmt.Fprintf(&b, "%-10s %-6s %9s %9s %9s %8s %8s %8s %12s %12s\n",
		"drop", "crash", "success", "timeout", "encdown", "retries", "drops", "delays", "p50 attach", "p99 attach")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-10.2f %-6v %8.0f%% %9d %9d %8d %8d %8d %10.1fµs %10.1fµs\n",
			c.DropProb, c.Crash, c.SuccessRate*100, c.Timeouts, c.EnclaveDown,
			c.Retries, c.Drops, c.Delays,
			float64(c.P50AttachNs)/1e3, float64(c.P99AttachNs)/1e3)
	}
	return b.String()
}
