package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestClusterSweepDeterministic is the acceptance gate for the cluster
// sweep: a fixed (seed, rounds) pair produces a byte-identical
// BENCH_cluster.json — every per-cell digest included — across reruns
// and worker counts; the flat deployment's tail latency collapses with
// node count while the sharded one stays flat; the lease cache and
// shard counters actually move; and the conservative parallel engine
// reproduces the serial digest on the representative cell.
func TestClusterSweepDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")

	// Default rounds: the collapse ratio is a tail-latency statement and
	// needs the full steady-state sample that BENCH_cluster.json ships.
	const rounds = 0
	r1, err := ClusterSweep(1234, rounds, 1, p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ClusterSweep(1234, rounds, 4, p2)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("BENCH_cluster.json differs across reruns/worker counts:\n%s\nvs\n%s", b1, b2)
	}
	for i := range r1.Cells {
		if r1.Cells[i].Digest != r2.Cells[i].Digest || r1.Cells[i].Digest == "" {
			t.Fatalf("cell %d digest differs or empty: %q vs %q", i, r1.Cells[i].Digest, r2.Cells[i].Digest)
		}
	}

	var back ClusterSweepResult
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("BENCH_cluster.json does not parse: %v", err)
	}
	if want := len(ClusterNodeCounts) * 4; len(back.Cells) != want {
		t.Fatalf("sweep has %d cells, want %d", len(back.Cells), want)
	}

	// The headline: flat p99 collapses with node count (and against the
	// sharded deployment at scale), sharded p99 stays flat.
	if r1.FlatP99Collapse < 5 {
		t.Errorf("flat p99 only %.1fx the sharded p99 at %d nodes, want >= 5x",
			r1.FlatP99Collapse, ClusterNodeCounts[len(ClusterNodeCounts)-1])
	}
	if r1.FlatP99Growth < 5 {
		t.Errorf("flat p99 grew only %.1fx from %d to %d nodes, want >= 5x",
			r1.FlatP99Growth, ClusterNodeCounts[0], ClusterNodeCounts[len(ClusterNodeCounts)-1])
	}
	if r1.ShardedP99Growth > 2 {
		t.Errorf("sharded p99 grew %.1fx with node count — not flat", r1.ShardedP99Growth)
	}
	if !r1.Engine.Match {
		t.Errorf("parallel engine diverged from serial on %s: %s vs %s",
			r1.Engine.Label, r1.Engine.SerialDigest, r1.Engine.ParallelDigest)
	}

	for _, c := range r1.Cells {
		if c.Attempts == 0 || c.Successes == 0 {
			t.Errorf("cell %+v ran no cycles", c)
		}
		if c.OtherErrors != 0 {
			t.Errorf("cell %+v saw errors outside the failure model", c)
		}
		if c.Shards == 0 {
			// Flat: every resolution funnels through the root.
			if c.RootForwards == 0 {
				t.Errorf("flat cell (n=%d churn=%v) never transited the root name server", c.Nodes, c.Churn)
			}
			if c.LeaseHits+c.LeaseMisses+c.ShardLookups != 0 {
				t.Errorf("flat cell (n=%d churn=%v) touched the sharded paths: %+v", c.Nodes, c.Churn, c)
			}
		} else {
			if c.RootForwards != 0 {
				t.Errorf("sharded cell (n=%d) still funnels through the root: %+v", c.Nodes, c)
			}
			if c.LeaseMisses == 0 || c.LeaseHits == 0 || c.ShardLookups == 0 || c.SyncsSent == 0 {
				t.Errorf("sharded cell (n=%d churn=%v) counters flat: %+v", c.Nodes, c.Churn, c)
			}
			if c.LeaseHits < c.LeaseMisses {
				t.Errorf("sharded cell (n=%d churn=%v): lease cache mostly missing: %+v", c.Nodes, c.Churn, c)
			}
			if c.Churn && c.LeaseStale == 0 {
				t.Errorf("sharded churn cell (n=%d) invalidated no leases: %+v", c.Nodes, c)
			}
		}
		if c.Churn && c.EnclaveDown == 0 {
			t.Errorf("churn cell (n=%d s=%d) attributed no failures to the crash: %+v", c.Nodes, c.Shards, c)
		}
		if !c.Churn && c.SuccessRate != 1.0 {
			t.Errorf("quiet cell (n=%d s=%d) degraded: %+v", c.Nodes, c.Shards, c)
		}
	}
}
