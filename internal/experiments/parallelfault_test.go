package experiments

// Fault-injection × parallel-engine matrix: a partitioned multi-node
// world with a scheduled enclave crash AND a name-server outage window
// must digest identically on the serial reference engine and on the
// conservative parallel engine at 1, 2, and NumCPU workers, for every
// partition count. The injector's per-partition RNG streams and the
// cross-partition crash-notification mailboxes are exactly the
// machinery under test: a fault draw or a crash fanout that depended on
// host-thread interleaving would flip the digest.

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"xemem"
	"xemem/internal/core"
	"xemem/internal/fault"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
	"xemem/internal/xpmem"
)

const (
	pfNodes    = 4
	pfSegBytes = 16 << 12
	pfCrashAt  = sim.Millisecond
	pfRounds   = 8
)

// pfOutage is the name-server unavailability window: it opens after the
// per-node export/lookup prologue (tens of microseconds) and closes
// before the crash, so each run exercises outage-timeouts and
// crash-poisoning as distinct phases.
var pfOutage = fault.Window{Start: 300 * sim.Microsecond, End: 600 * sim.Microsecond}

// runParallelFaultCell builds and runs one faulted world: pfNodes XEMEM
// machines placed whole into partition n % partitions, node 1's
// co-kernel crashing at pfCrashAt, the name server dark during
// pfOutage, and a cross-partition token ring coupling the nodes.
// workers <= 0 selects the serial reference engine. It returns the
// run's trace digest.
func runParallelFaultCell(t *testing.T, seed uint64, partitions, workers int) trace.Digest {
	t.Helper()
	w := sim.NewWorld(seed)
	w.SetStableActorRNG(true)
	tr := trace.NewTracer(fmt.Sprintf("pfault/p=%d", partitions))
	tr.SetKeepEvents(false)
	w.SetObserver(tr)

	const ringLat = 10 * sim.Microsecond
	const ringLaps = 5
	boxes := make([]*sim.Mailbox, pfNodes)
	for n := 0; n < pfNodes; n++ {
		boxes[n] = w.NewMailbox(fmt.Sprintf("pfring%d", n), n%partitions, ringLat)
	}

	var mods []*core.Module
	victim := ""
	for n := 0; n < pfNodes; n++ {
		n := n
		w.SetDefaultPartition(n % partitions)
		node := xemem.NewNodeInWorld(w, sim.DefaultCosts(), xemem.NodeConfig{
			Name: fmt.Sprintf("pfnode%d", n), Seed: seed, MemBytes: 2 << 30,
		})
		ck, err := node.BootCoKernel("kitten", 256<<20)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, node.LinuxModule(), ck.Module)
		if n == 1 {
			victim = ck.Module.Name()
		}
		exp, heap, err := node.KittenProcess(ck, "exporter", pfSegBytes+1<<16)
		if err != nil {
			t.Fatal(err)
		}
		att, _ := node.LinuxProcess("attacher", 1)
		tag := fmt.Sprintf("pf%d", n)

		node.Spawn("producer", func(a *sim.Actor) {
			if _, err := exp.Make(a, heap.Base, pfSegBytes, xpmem.PermRead, tag); err != nil &&
				!errors.Is(err, core.ErrTimeout) && !errors.Is(err, core.ErrEnclaveDown) {
				t.Errorf("node %d Make: %v", n, err)
			}
		})
		node.Spawn("consumer", func(a *sim.Actor) {
			var segid xpmem.Segid
			if !a.PollDeadline(10*sim.Microsecond, a.Now()+pfOutage.Start/2, func() bool {
				s, err := att.Lookup(a, tag)
				if err != nil {
					return false
				}
				segid = s
				return true
			}) {
				return
			}
			// Every failure mode here — outage timeouts, crash poisoning —
			// is the behaviour under measurement: the digest records it.
			// Rounds are paced so the sweep spans the outage window and
			// runs past the crash (the run must outlive pfCrashAt, or the
			// schedule daemon dies with the world before firing).
			for i := 0; i < pfRounds; i++ {
				a.AdvanceTo(sim.Time(i) * 200 * sim.Microsecond)
				apid, err := att.GetWith(a, segid, xpmem.GetOpts{Perm: xpmem.PermRead, Timeout: 200 * sim.Microsecond})
				if err != nil {
					a.Charge("fault-backoff", 50*sim.Microsecond)
					continue
				}
				va, err := att.AttachWith(a, segid, apid, xpmem.AttachOpts{Bytes: pfSegBytes, Perm: xpmem.PermRead, Timeout: 500 * sim.Microsecond})
				if err == nil {
					a.Charge("consume", 20*sim.Microsecond)
					_ = att.Detach(a, va)
				}
				_ = att.Release(a, segid, apid)
			}
		})
		node.Spawn("courier", func(a *sim.Actor) {
			if n == 0 {
				boxes[1%pfNodes].Send(a, ringLaps*pfNodes, ringLat)
			}
			for k := 0; k < ringLaps; k++ {
				hop := boxes[n].Recv(a).(int)
				a.Charge("route", 2*sim.Microsecond)
				if hop > 1 {
					boxes[(n+1)%pfNodes].Send(a, hop-1, ringLat)
				}
			}
		})
	}
	w.SetDefaultPartition(0)

	inj := fault.New(w, fault.Plan{
		NSOutages: []fault.Window{pfOutage},
		Crashes:   []fault.Crash{{At: pfCrashAt, Module: victim}},
	})
	inj.Register(mods...)
	inj.Arm() // after every victim module is Started: partitions are known

	if workers > 0 {
		w.SetParallel(workers)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := inj.Stats().Crashes; got != 1 {
		t.Fatalf("crash schedule fired %d times, want 1", got)
	}
	return tr.Digest()
}

// TestParallelFaultMatrix holds the faulted world digest-identical
// between the serial engine and the parallel engine at 1, 2, and
// NumCPU workers, across partition counts. (Digests legitimately differ
// *between* partition counts — the injector streams and crash mailboxes
// are per-partition — so each row compares only against its own serial
// reference.)
func TestParallelFaultMatrix(t *testing.T) {
	counts := []int{1, 2, runtime.NumCPU()}
	for _, parts := range []int{1, 2, pfNodes} {
		parts := parts
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			want := runParallelFaultCell(t, 77, parts, 0)
			if want.Dispatches == 0 {
				t.Fatal("serial reference traced no dispatches")
			}
			for _, workers := range counts {
				if got := runParallelFaultCell(t, 77, parts, workers); got != want {
					t.Errorf("workers=%d digest diverged from serial\n got  %+v\n want %+v",
						workers, got, want)
				}
			}
		})
	}
}
