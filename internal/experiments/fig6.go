package experiments

import (
	"fmt"
	"strings"

	"xemem"
	"xemem/internal/experiments/sweep"
	"xemem/internal/pagetable"
	"xemem/internal/sim"
	"xemem/internal/xpmem"
)

// Fig6Cell is the per-attacher throughput for one (enclave count, size)
// point of Figure 6.
type Fig6Cell struct {
	Enclaves int
	SizeMB   int
	GBs      float64
}

// Fig6Result holds the regenerated figure.
type Fig6Result struct {
	Reps  int
	Cells []Fig6Cell
	// Core0Waits reports, per enclave count, how many IPI handlings on
	// the management enclave's core 0 had to queue — the §5.3 contention
	// diagnostic.
	Core0Busy map[int]sim.Time
}

// Fig6 reproduces §5.3: 1, 2, 4 or 8 Kitten co-kernel enclaves (one core,
// 1.5 GB each) export regions of 128 MB–1 GB; one Linux process per
// enclave attaches concurrently, ≥reps times each. The 1→2 enclave dip
// comes from contention on shared Linux memory-map structures and the
// core-0 IPI funnel, both emergent here. Each (enclaves, size) point is
// one sweep cell with its own fixed seed, executed on workers host
// goroutines (<= 0 selects GOMAXPROCS, 1 reproduces the serial runner).
func Fig6(seed uint64, reps, workers int) (*Fig6Result, error) {
	if reps <= 0 {
		reps = 500
	}
	res := &Fig6Result{Reps: reps, Core0Busy: make(map[int]sim.Time)}
	sizes := []int{128, 256, 512, 1024}

	type point struct {
		enclaves, szMB int
		bw             float64
		core0          sim.Time
	}
	var cells []sweep.Cell[point]
	for _, enclaves := range []int{1, 2, 4, 8} {
		for _, szMB := range sizes {
			enclaves, szMB := enclaves, szMB
			obs := cellObserve(len(cells))
			cells = append(cells, sweep.Cell[point]{
				Label: fmt.Sprintf("fig6/enclaves=%d/size=%dMB", enclaves, szMB),
				Run: func() (point, error) {
					bw, _, core0busy, err := fig6Point(obs, seed, enclaves, szMB, reps)
					return point{enclaves: enclaves, szMB: szMB, bw: bw, core0: core0busy}, err
				},
			})
		}
	}
	points, err := sweep.Run(cells, workers)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		res.Cells = append(res.Cells, Fig6Cell{Enclaves: p.enclaves, SizeMB: p.szMB, GBs: p.bw / 1e9})
		if p.szMB == 1024 {
			res.Core0Busy[p.enclaves] = p.core0
		}
	}
	return res, nil
}

// fig6Point runs one configuration and returns the mean per-attacher
// throughput, the mean per-attachment latency, and core 0's busy time.
func fig6Point(obs observeFn, seed uint64, enclaves, szMB, reps int) (float64, sim.Time, sim.Time, error) {
	node := xemem.NewNode(xemem.NodeConfig{
		Seed:       seed + uint64(enclaves*1000+szMB),
		MemBytes:   32 << 30,
		LinuxCores: 1 + enclaves, // core 0 + one per attacher
	})
	announce(obs, fmt.Sprintf("fig6/enclaves=%d/size=%dMB", enclaves, szMB), node.World())
	bytes := uint64(szMB) << 20

	type pair struct {
		exp  *xpmem.Session
		att  *xpmem.Session
		heap pagetable.VA
	}
	pairs := make([]pair, enclaves)
	for i := 0; i < enclaves; i++ {
		ck, err := node.BootCoKernel(fmt.Sprintf("kitten%d", i), 1536<<20)
		if err != nil {
			return 0, 0, 0, err
		}
		expSess, heap, err := node.KittenProcess(ck, fmt.Sprintf("exp%d", i), 1<<30)
		if err != nil {
			return 0, 0, 0, err
		}
		attSess, _ := node.LinuxProcess(fmt.Sprintf("att%d", i), 1+i)
		pairs[i] = pair{exp: expSess, att: attSess, heap: heap.Base}
	}

	bws := make([]float64, enclaves)
	totals := make([]sim.Time, enclaves)
	var runErr error
	for i := range pairs {
		i := i
		p := pairs[i]
		node.Spawn(fmt.Sprintf("attacher%d", i), func(a *sim.Actor) {
			segid, err := p.exp.Make(a, p.heap, bytes, xpmem.PermRead|xpmem.PermWrite, "")
			if err != nil {
				runErr = err
				return
			}
			apid, err := p.att.Get(a, segid, xpmem.PermRead)
			if err != nil {
				runErr = err
				return
			}
			var total sim.Time
			for r := 0; r < reps; r++ {
				start := a.Now()
				va, err := p.att.Attach(a, segid, apid, 0, bytes, xpmem.PermRead)
				if err != nil {
					runErr = err
					return
				}
				total += a.Now() - start
				if err := p.att.Detach(a, va); err != nil {
					runErr = err
					return
				}
			}
			bws[i] = sim.PerSecond(float64(bytes)*float64(reps), total)
			totals[i] = total
		})
	}
	if err := node.Run(); err != nil {
		return 0, 0, 0, err
	}
	if runErr != nil {
		return 0, 0, 0, runErr
	}
	mean := 0.0
	var attachSum sim.Time
	for i, bw := range bws {
		mean += bw
		attachSum += totals[i]
	}
	mean /= float64(enclaves)
	meanAttach := attachSum / sim.Time(enclaves*reps)
	return mean, meanAttach, node.Linux().Cores()[0].BusyTime(), nil
}

// String renders the figure as the paper's series (one line per size).
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: throughput vs number of co-kernel enclaves (%d attachments/point)\n", r.Reps)
	fmt.Fprintf(&b, "%10s", "Size")
	for _, n := range []int{1, 2, 4, 8} {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%d encl", n))
	}
	fmt.Fprintf(&b, "\n")
	for _, szMB := range []int{128, 256, 512, 1024} {
		fmt.Fprintf(&b, "%7d MB", szMB)
		for _, n := range []int{1, 2, 4, 8} {
			for _, c := range r.Cells {
				if c.Enclaves == n && c.SizeMB == szMB {
					fmt.Fprintf(&b, " %7.2f GB", c.GBs)
				}
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// cell fetches one figure cell.
func (r *Fig6Result) cell(enclaves, szMB int) float64 {
	for _, c := range r.Cells {
		if c.Enclaves == enclaves && c.SizeMB == szMB {
			return c.GBs
		}
	}
	return 0
}
