package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"xemem/internal/cluster"
	"xemem/internal/core"
	"xemem/internal/experiments/sweep"
	"xemem/internal/fault"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
	"xemem/internal/xpmem"
)

// ClusterNodeCounts are the machine counts the cluster sweep covers.
var ClusterNodeCounts = []int{2, 4, 8}

// Cluster sweep workload geometry. Every node exports one segment from
// its co-kernel and runs clusterConsumers attacher processes on its
// management enclave, each hammering the next node's segment with paced
// get/release cycles — an all-to-neighbour lookup storm. In the flat
// deployment every one of those resolutions funnels through node 0's
// root name server; under sharding each consumer's second and later
// cycles resolve from its lease cache and go straight to the owner. The
// get-latency distribution against node count is the headline curve.
const (
	clusterSegBytes    = 16 << 12
	clusterConsumers   = 2
	clusterPace        = 10 * sim.Microsecond
	clusterGetTimeout  = 2 * sim.Millisecond
	clusterAttTimeout  = 2 * sim.Millisecond
	clusterLookupEvery = 50 * sim.Microsecond
)

// clusterShards is the shard count the sweep pairs with a node count
// (replica pairs on distinct nodes: S = N/2 keeps every management
// enclave hosting at most one replica).
func clusterShards(nodes int) int { return nodes / 2 }

// clusterCrashAt places the churn-cell crash after cluster setup (whose
// serial queue-pair charges grow quadratically with node count) but
// inside the measurement window at every node count.
func clusterCrashAt(nodes int, c *sim.Costs) sim.Time {
	return sim.Time(nodes*(nodes-1))*c.RDMASetup + 3*sim.Millisecond
}

// ClusterCell is one (nodes, shards, churn) point: how lookups degraded,
// where failures were attributed, the get-latency distribution, the
// name-service counter totals, and the run's trace digest.
type ClusterCell struct {
	Nodes  int  `json:"nodes"`
	Shards int  `json:"shards"` // 0 = flat root name server
	Churn  bool `json:"churn"`  // one exporting co-kernel crashes mid-sweep

	Attempts    int     `json:"attempts"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
	Timeouts    int     `json:"timeouts"`
	EnclaveDown int     `json:"enclave_down"`
	OtherErrors int     `json:"other_errors"`

	P50GetNs int64 `json:"p50_get_ns"` // virtual time, successful cycles
	P99GetNs int64 `json:"p99_get_ns"`

	// RootForwards counts segment messages the root name server relayed
	// toward owners — the flat deployment's collapse indicator.
	RootForwards int `json:"root_forwards"`
	// Sharded name-service counters, summed over every module.
	LeaseHits      int `json:"lease_hits"`
	LeaseMisses    int `json:"lease_misses"`
	LeaseStale     int `json:"lease_stale"`
	ShardLookups   int `json:"shard_lookups"`
	ShardFailovers int `json:"shard_failovers"`
	SyncsSent      int `json:"syncs_sent"`
	SyncsApplied   int `json:"syncs_applied"`

	Digest string `json:"digest"` // SHA-256 of the cell's full event stream
}

// EngineIdentity records the serial-vs-parallel digest check on one
// representative cell: the conservative parallel engine must reproduce
// the serial reference event stream bit for bit.
type EngineIdentity struct {
	Label          string `json:"label"`
	SerialDigest   string `json:"serial_digest"`
	ParallelDigest string `json:"parallel_digest"`
	Match          bool   `json:"match"`
}

// ClusterSweepResult is the regenerated cluster sweep
// (BENCH_cluster.json).
type ClusterSweepResult struct {
	Host             HostInfo      `json:"host"`
	Seed             uint64        `json:"seed"`
	Rounds           int           `json:"rounds"`
	ConsumersPerNode int           `json:"consumers_per_node"`
	NodeCounts       []int         `json:"node_counts"`
	Cells            []ClusterCell `json:"cells"`

	// FlatP99Collapse is flat p99 / sharded p99 at the largest quiet
	// (churn-free) node count — how much latency the single root name
	// server costs at scale. FlatP99Growth and ShardedP99Growth are each
	// deployment's quiet p99 at the largest node count over its p99 at
	// the smallest: the flat curve collapses, the sharded one stays flat.
	FlatP99Collapse  float64 `json:"flat_p99_collapse"`
	FlatP99Growth    float64 `json:"flat_p99_growth"`
	ShardedP99Growth float64 `json:"sharded_p99_growth"`

	Engine EngineIdentity `json:"engine_identity"`
}

// ClusterSweep runs the cluster-scale name-service sweep: every node
// count × {flat, sharded} × {quiet, churn}, each cell a closed world
// with its own fabric, injector, and tracer. The result is a pure
// function of (seed, rounds): rerunning writes a byte-identical
// BENCH_cluster.json at any sweep worker count and under any
// EngineWorkers selection. When jsonPath is non-empty the result is
// written there as JSON.
func ClusterSweep(seed uint64, rounds, workers int, jsonPath string) (*ClusterSweepResult, error) {
	if rounds <= 0 {
		rounds = 120
	}
	res := &ClusterSweepResult{
		Host: CaptureHost(), Seed: seed, Rounds: rounds,
		ConsumersPerNode: clusterConsumers, NodeCounts: ClusterNodeCounts,
	}
	var cells []sweep.Cell[ClusterCell]
	for _, churn := range []bool{false, true} {
		for _, sharded := range []bool{false, true} {
			for _, n := range ClusterNodeCounts {
				n, churn := n, churn
				shards := 0
				if sharded {
					shards = clusterShards(n)
				}
				obs := cellObserve(len(cells))
				cells = append(cells, sweep.Cell[ClusterCell]{
					Label: fmt.Sprintf("cluster nodes=%d shards=%d churn=%v", n, shards, churn),
					Run: func() (ClusterCell, error) {
						return clusterRun(obs, seed, n, shards, churn, rounds, 0)
					},
				})
			}
		}
	}
	out, err := sweep.Run(cells, workers)
	if err != nil {
		return nil, err
	}
	res.Cells = out

	minN := ClusterNodeCounts[0]
	maxN := ClusterNodeCounts[len(ClusterNodeCounts)-1]
	var flatMin, flatMax, shardMin, shardMax int64
	for _, c := range out {
		if c.Churn {
			continue
		}
		switch {
		case c.Shards == 0 && c.Nodes == minN:
			flatMin = c.P99GetNs
		case c.Shards == 0 && c.Nodes == maxN:
			flatMax = c.P99GetNs
		case c.Shards > 0 && c.Nodes == minN:
			shardMin = c.P99GetNs
		case c.Shards > 0 && c.Nodes == maxN:
			shardMax = c.P99GetNs
		}
	}
	if shardMax > 0 {
		res.FlatP99Collapse = float64(flatMax) / float64(shardMax)
	}
	if flatMin > 0 {
		res.FlatP99Growth = float64(flatMax) / float64(flatMin)
	}
	if shardMin > 0 {
		res.ShardedP99Growth = float64(shardMax) / float64(shardMin)
	}

	// Engine-identity probe: the same cell under the serial reference and
	// the conservative parallel engine, bypassing the announce hooks so
	// the probe's engine choice cannot be overridden.
	idLabel := "cluster/n=4/s=2/churn=true"
	ser, err := clusterRun(nil, seed, 4, 2, true, rounds, 1)
	if err != nil {
		return nil, err
	}
	par, err := clusterRun(nil, seed, 4, 2, true, rounds, 2)
	if err != nil {
		return nil, err
	}
	res.Engine = EngineIdentity{
		Label: idLabel, SerialDigest: ser.Digest, ParallelDigest: par.Digest,
		Match: ser.Digest == par.Digest,
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// clusterRun executes one cluster-sweep cell in a fresh world.
// forceWorkers selects the engine-identity probe path: 0 runs the normal
// announced world, 1 forces the serial engine, >1 forces the parallel
// engine with that many workers (both skipping the announce hooks).
func clusterRun(obs observeFn, seed uint64, nodes, shards int, churn bool, rounds, forceWorkers int) (ClusterCell, error) {
	cell := ClusterCell{Nodes: nodes, Shards: shards, Churn: churn}
	label := fmt.Sprintf("cluster/n=%d/s=%d/churn=%v", nodes, shards, churn)
	w := sim.NewWorld(seed)
	switch {
	case forceWorkers > 1:
		w.SetParallel(forceWorkers)
	case forceWorkers == 0:
		announce(obs, label, w)
	}
	tr, ok := w.Observer().(*trace.Tracer)
	if !ok {
		tr = trace.NewTracer(label)
		tr.SetKeepEvents(false)
		w.SetObserver(tr)
	}

	cl, err := cluster.NewInWorld(w, cluster.Config{Nodes: nodes, Shards: shards, CoKernels: true, Seed: seed})
	if err != nil {
		return cell, err
	}
	if churn {
		victim := cl.Nodes[1%nodes].CK.Module
		inj := fault.New(w, fault.Plan{Crashes: []fault.Crash{
			{At: clusterCrashAt(nodes, cl.Costs), Module: victim.Name()},
		}})
		inj.Register(cl.Modules()...)
		inj.Arm()
	}

	var runErr error
	payload := []byte("cluster sweep payload")
	for i, n := range cl.Nodes {
		i, n := i, n
		sess, heap, err := n.X.KittenProcess(n.CK, fmt.Sprintf("prod%d", i), clusterSegBytes+1<<16)
		if err != nil {
			return cell, err
		}
		w.Spawn(fmt.Sprintf("node%d/producer", i), func(a *sim.Actor) {
			cl.WaitReady(a)
			if _, err := sess.Write(heap.Base, payload); err != nil {
				runErr = err
				return
			}
			if _, err := sess.Make(a, heap.Base, clusterSegBytes, xpmem.PermRead, fmt.Sprintf("cseg-%d", i)); err != nil {
				runErr = err
			}
		})
	}

	nCons := nodes * clusterConsumers
	lat := make([][]int64, nCons)
	for ci := 0; ci < nCons; ci++ {
		ci := ci
		node := cl.Nodes[ci%nodes]
		target := (ci%nodes + 1) % nodes
		sess, _ := node.X.LinuxProcess(fmt.Sprintf("consumer%d", ci/nodes), 1+ci/nodes%3)
		w.Spawn(fmt.Sprintf("node%d/consumer%d", ci%nodes, ci/nodes), func(a *sim.Actor) {
			cl.WaitReady(a)
			var segid xpmem.Segid
			if !a.PollDeadline(clusterLookupEvery, a.Now()+2*sim.Millisecond, func() bool {
				s, err := sess.Lookup(a, fmt.Sprintf("cseg-%d", target))
				if err != nil {
					return false
				}
				segid = s
				return true
			}) {
				runErr = fmt.Errorf("cluster: consumer %d: cseg-%d never published", ci, target)
				return
			}
			classify := func(err error) {
				switch {
				case errors.Is(err, core.ErrTimeout):
					cell.Timeouts++
				case errors.Is(err, core.ErrEnclaveDown):
					cell.EnclaveDown++
				default:
					cell.OtherErrors++
				}
			}
			attached := false
			for r := 0; r < rounds; r++ {
				cell.Attempts++
				start := a.Now()
				apid, err := sess.GetWith(a, segid, xpmem.GetOpts{Perm: xpmem.PermRead, Timeout: clusterGetTimeout})
				if err != nil {
					classify(err)
					a.Advance(clusterPace)
					continue
				}
				lat[ci] = append(lat[ci], int64(a.Now()-start))
				cell.Successes++
				if !attached {
					// One cross-node attach per consumer: the page-frame
					// list and data bytes cross the fabric into the digest.
					attached = true
					va, err := sess.AttachWith(a, segid, apid, xpmem.AttachOpts{
						Bytes: clusterSegBytes, Perm: xpmem.PermRead, Timeout: clusterAttTimeout,
					})
					if err != nil {
						classify(err)
					} else {
						buf := make([]byte, len(payload))
						if _, rerr := sess.Read(va, buf); rerr != nil || string(buf) != string(payload) {
							runErr = fmt.Errorf("cluster: consumer %d read %q over the fabric", ci, buf)
						}
						if err := sess.Detach(a, va); err != nil {
							classify(err)
						}
					}
				}
				if err := sess.Release(a, segid, apid); err != nil {
					classify(err)
				}
				a.Advance(clusterPace)
			}
		})
	}

	if err := w.Run(); err != nil {
		return cell, err
	}
	if runErr != nil {
		return cell, runErr
	}

	if cell.Attempts > 0 {
		cell.SuccessRate = float64(cell.Successes) / float64(cell.Attempts)
	}
	for _, m := range cl.Modules() {
		ss := m.ShardStats
		cell.LeaseHits += ss.LeaseHits
		cell.LeaseMisses += ss.LeaseMisses
		cell.LeaseStale += ss.LeaseStale
		cell.ShardLookups += ss.ShardLookups
		cell.ShardFailovers += ss.ShardFailovers
		cell.SyncsSent += ss.SyncsSent
		cell.SyncsApplied += ss.SyncsApplied
	}
	if root := cl.Nodes[0].X.LinuxModule(); root.NS != nil {
		cell.RootForwards = root.NS.Forwards
	}
	var all []int64
	for _, s := range lat {
		all = append(all, s...)
	}
	cell.P50GetNs = percentileNs(all, 50)
	cell.P99GetNs = percentileNs(all, 99)
	cell.Digest = tr.Digest().SHA256
	return cell, nil
}

// String renders the sweep for the terminal.
func (r *ClusterSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster sweep: %d get cycles x %d consumers/node, seed %d\n",
		r.Rounds, r.ConsumersPerNode, r.Seed)
	fmt.Fprintf(&b, "%-6s %-7s %-6s %9s %9s %9s %12s %12s %9s %9s %9s %9s\n",
		"nodes", "shards", "churn", "success", "timeout", "encdown", "p50 get", "p99 get",
		"fwd@root", "hits", "misses", "stale")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-6d %-7d %-6v %8.0f%% %9d %9d %10.1fµs %10.1fµs %9d %9d %9d %9d\n",
			c.Nodes, c.Shards, c.Churn, c.SuccessRate*100, c.Timeouts, c.EnclaveDown,
			float64(c.P50GetNs)/1e3, float64(c.P99GetNs)/1e3,
			c.RootForwards, c.LeaseHits, c.LeaseMisses, c.LeaseStale)
	}
	fmt.Fprintf(&b, "flat p99 collapse at %d nodes: %.1fx vs sharded (growth %d->%d nodes: flat %.1fx, sharded %.1fx)\n",
		r.NodeCounts[len(r.NodeCounts)-1], r.FlatP99Collapse,
		r.NodeCounts[0], r.NodeCounts[len(r.NodeCounts)-1], r.FlatP99Growth, r.ShardedP99Growth)
	fmt.Fprintf(&b, "engine identity (%s): serial=parallel %v\n", r.Engine.Label, r.Engine.Match)
	return b.String()
}
