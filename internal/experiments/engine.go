package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"xemem"
	"xemem/internal/experiments/sweep"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/xpmem"
)

// EngineBenchResult reports host wall-clock performance of the simulator
// engine itself: scheduler dispatch with the indexed min-heap vs the
// original linear scan, a 1 GB cross-enclave attach with batched page
// operations vs the original per-page loops, and the Fig. 9 sweep as an
// end-to-end composite. All numbers are host nanoseconds; simulated
// results are bit-identical across every variant.
type EngineBenchResult struct {
	Host HostInfo `json:"host"`

	SchedulerActors     int     `json:"scheduler_actors"`
	SchedulerDispatches int     `json:"scheduler_dispatches"`
	SchedulerHeapNs     float64 `json:"scheduler_heap_ns_per_dispatch"`
	SchedulerLinearNs   float64 `json:"scheduler_linear_ns_per_dispatch"`
	SchedulerSpeedup    float64 `json:"scheduler_speedup"`

	AttachBytes    uint64  `json:"attach_bytes"`
	AttachReps     int     `json:"attach_reps"`
	AttachFastNs   float64 `json:"attach_fast_ns_per_op"`
	AttachLegacyNs float64 `json:"attach_legacy_ns_per_op"`
	AttachSpeedup  float64 `json:"attach_speedup"`

	Fig9SweepNs float64 `json:"fig9_sweep_ns_per_run"`

	// The Fig. 9 sweep again, through the parallel sweep runner: serial
	// (workers=1) vs one worker per host core. Simulated results are
	// byte-identical; only host wall-clock changes.
	SweepWorkers    int     `json:"sweep_workers"`
	SweepSerialNs   float64 `json:"sweep_serial_ns"`
	SweepParallelNs float64 `json:"sweep_parallel_ns"`
	SweepSpeedup    float64 `json:"sweep_speedup"`
}

// EngineBench measures the engine fast paths against their retained
// reference implementations and, when jsonPath is non-empty, writes the
// result there as JSON.
func EngineBench(seed uint64, jsonPath string) (*EngineBenchResult, error) {
	const (
		actors = 256
		steps  = 2000
		reps   = 3
	)
	res := &EngineBenchResult{
		Host:                CaptureHost(),
		SchedulerActors:     actors,
		SchedulerDispatches: actors * steps,
		AttachBytes:         1 << 30,
		AttachReps:          reps,
	}

	// Each scheduler run is short (~0.5 s), so take the best of a few
	// trials per mode. Min-tracking starts from +Inf (never from trial
	// zero's sentinel value) so the loop cannot mistake an uninitialized
	// field for a measurement.
	const trials = 3
	res.SchedulerHeapNs, res.SchedulerLinearNs = math.MaxFloat64, math.MaxFloat64
	for i := 0; i < trials; i++ {
		if heapNs := schedulerBench(seed, actors, steps, false); heapNs < res.SchedulerHeapNs {
			res.SchedulerHeapNs = heapNs
		}
		if linearNs := schedulerBench(seed, actors, steps, true); linearNs < res.SchedulerLinearNs {
			res.SchedulerLinearNs = linearNs
		}
	}
	if res.SchedulerHeapNs > 0 {
		res.SchedulerSpeedup = res.SchedulerLinearNs / res.SchedulerHeapNs
	}

	fastNs, err := attachBench(seed, reps, false)
	if err != nil {
		return nil, err
	}
	legacyNs, err := attachBench(seed, reps, true)
	if err != nil {
		return nil, err
	}
	res.AttachFastNs = fastNs
	res.AttachLegacyNs = legacyNs
	if fastNs > 0 {
		res.AttachSpeedup = legacyNs / fastNs
	}

	start := time.Now() //xemem:wallclock -- host-side benchmark timer for BENCH_engine.json
	if _, err := Fig9(seed, 1, 1); err != nil {
		return nil, err
	}
	res.Fig9SweepNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_engine.json

	// The same sweep through the parallel runner: serial reference, then
	// one worker per host core.
	res.SweepWorkers = sweep.Workers(0)
	start = time.Now() //xemem:wallclock -- host-side benchmark timer for BENCH_engine.json
	if _, err := Fig9(seed, 1, 1); err != nil {
		return nil, err
	}
	res.SweepSerialNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_engine.json
	start = time.Now()                                           //xemem:wallclock -- host-side benchmark timer for BENCH_engine.json
	if _, err := Fig9(seed, 1, res.SweepWorkers); err != nil {
		return nil, err
	}
	res.SweepParallelNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_engine.json
	if res.SweepParallelNs > 0 {
		res.SweepSpeedup = res.SweepSerialNs / res.SweepParallelNs
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// schedulerBench times pure dispatch over a mixed-clock actor pool,
// reporting host ns and heap allocations per dispatch. Each actor
// advances by its own pseudorandom strides, so the ready queue is
// constantly reordered — the worst case for the scan, the common case for
// the heap.
func schedulerBench(seed uint64, actors, steps int, linear bool) float64 {
	ns, _ := schedulerBenchAllocs(seed, actors, steps, linear)
	return ns
}

func schedulerBenchAllocs(seed uint64, actors, steps int, linear bool) (nsPerOp, allocsPerOp float64) {
	w := sim.NewWorld(seed)
	if linear {
		w.SetLinearScan(true)
	}
	w.Reserve(actors)
	for i := 0; i < actors; i++ {
		w.Spawn(fmt.Sprintf("a%d", i), func(a *sim.Actor) {
			r := a.RNG()
			for s := 0; s < steps; s++ {
				a.Advance(sim.Time(r.Intn(1000)) * sim.Nanosecond)
			}
		})
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now() //xemem:wallclock -- measures host dispatch rate, not simulated time
	if err := w.Run(); err != nil {
		panic(err) // a pure advance loop cannot deadlock
	}
	elapsed := time.Since(start).Nanoseconds() //xemem:wallclock -- measures host dispatch rate, not simulated time
	runtime.ReadMemStats(&after)
	ops := float64(actors * steps)
	return float64(elapsed) / ops, float64(after.Mallocs-before.Mallocs) / ops
}

// attachBench times the host cost of serving and mapping a whole-segment
// 1 GB attach (Fig. 5's topology: Kitten exporter, Linux attacher),
// measured around the Attach call only so enclave boot stays out of the
// number. legacy selects the original per-page demand-population loop.
func attachBench(seed uint64, reps int, legacy bool) (float64, error) {
	ns, _, err := attachBenchAllocs(seed, reps, legacy)
	return ns, err
}

func attachBenchAllocs(seed uint64, reps int, legacy bool) (nsPerOp, allocsPerOp float64, err error) {
	proc.SetLegacyPerPageOps(legacy)
	defer proc.SetLegacyPerPageOps(false)

	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 32 << 30, LinuxCores: 4})
	ck, err := node.BootCoKernel("kitten0", 2<<30)
	if err != nil {
		return 0, 0, err
	}
	expSess, heap, err := node.KittenProcess(ck, "exporter", 1<<30)
	if err != nil {
		return 0, 0, err
	}
	attSess, _ := node.LinuxProcess("attacher", 1)

	const bytes = uint64(1) << 30
	var runErr error
	var hostNs int64
	var mallocs uint64
	node.Spawn("attach-bench", func(a *sim.Actor) {
		segid, err := expSess.Make(a, heap.Base, bytes, xpmem.PermRead|xpmem.PermWrite, "")
		if err != nil {
			runErr = err
			return
		}
		apid, err := attSess.Get(a, segid, xpmem.PermRead)
		if err != nil {
			runErr = err
			return
		}
		var before, after runtime.MemStats
		for i := 0; i < reps; i++ {
			runtime.ReadMemStats(&before)
			start := time.Now() //xemem:wallclock -- measures host cost of the attach fast path
			va, err := attSess.Attach(a, segid, apid, 0, bytes, xpmem.PermRead)
			hostNs += time.Since(start).Nanoseconds() //xemem:wallclock -- measures host cost of the attach fast path
			runtime.ReadMemStats(&after)
			mallocs += after.Mallocs - before.Mallocs
			if err != nil {
				runErr = err
				return
			}
			// Detach between reps so every serve re-walks (the detach
			// invalidates the frame-list cache): the benchmark measures the
			// walk and map paths, not the cache.
			if err := attSess.Detach(a, va); err != nil {
				runErr = err
				return
			}
		}
	})
	if err := node.Run(); err != nil {
		return 0, 0, err
	}
	if runErr != nil {
		return 0, 0, runErr
	}
	return float64(hostNs) / float64(reps), float64(mallocs) / float64(reps), nil
}

// String renders the benchmark for the terminal.
func (r *EngineBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Engine benchmark (host wall-clock; simulated results identical in all modes)\n")
	fmt.Fprintf(&b, "  scheduler dispatch (%d actors, %d dispatches):\n", r.SchedulerActors, r.SchedulerDispatches)
	fmt.Fprintf(&b, "    heap   %8.1f ns/dispatch\n", r.SchedulerHeapNs)
	fmt.Fprintf(&b, "    linear %8.1f ns/dispatch   (%.2fx speedup)\n", r.SchedulerLinearNs, r.SchedulerSpeedup)
	fmt.Fprintf(&b, "  1 GB attach (%d reps):\n", r.AttachReps)
	fmt.Fprintf(&b, "    batched  %12.0f ns/attach\n", r.AttachFastNs)
	fmt.Fprintf(&b, "    per-page %12.0f ns/attach   (%.2fx speedup)\n", r.AttachLegacyNs, r.AttachSpeedup)
	fmt.Fprintf(&b, "  fig9 sweep: %.2f s/run\n", r.Fig9SweepNs/1e9)
	fmt.Fprintf(&b, "  fig9 sweep via runner: serial %.2f s, %d workers %.2f s   (%.2fx speedup)\n",
		r.SweepSerialNs/1e9, r.SweepWorkers, r.SweepParallelNs/1e9, r.SweepSpeedup)
	return b.String()
}
