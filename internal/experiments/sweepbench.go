package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"xemem/internal/experiments/sweep"
)

// SweepBenchResult records the parallel sweep runner's end-to-end win on
// the full Fig. 5–9 + Table 2 sweep (reduced repetition counts, the
// -fast profile) plus the allocation-diet numbers for the two hot paths:
// heap allocations per scheduler dispatch and per 1 GB attach, for the
// fast paths and their retained reference implementations (linear-scan
// scheduler, per-page populate loop). All host-side; simulated results
// are byte-identical across every worker count and both path variants.
type SweepBenchResult struct {
	Host HostInfo `json:"host"`

	Workers    int     `json:"workers"`
	SerialNs   float64 `json:"serial_ns"`
	ParallelNs float64 `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`

	DispatchAllocsPerOp       float64 `json:"dispatch_allocs_per_op"`
	DispatchAllocsPerOpLinear float64 `json:"dispatch_allocs_per_op_linear"`
	AttachAllocsPerOp         float64 `json:"attach_allocs_per_op"`
	AttachAllocsPerOpLegacy   float64 `json:"attach_allocs_per_op_legacy"`
}

// SweepBench runs the full figure sweep serially (workers=1) and with
// one worker per host core, measures the dispatch/attach allocation
// rates, and — when jsonPath is non-empty — writes the result there as
// JSON (BENCH_sweep.json).
func SweepBench(seed uint64, jsonPath string) (*SweepBenchResult, error) {
	res := &SweepBenchResult{Host: CaptureHost(), Workers: sweep.Workers(0)}

	sweepAll := func(workers int) error {
		if _, err := Fig5(seed, 50, workers); err != nil {
			return err
		}
		if _, err := Fig6(seed, 50, workers); err != nil {
			return err
		}
		if _, err := Fig7(seed, workers); err != nil {
			return err
		}
		if _, err := Table2(seed, 5, workers); err != nil {
			return err
		}
		if _, err := Fig8(seed, 3, workers); err != nil {
			return err
		}
		if _, err := Fig9(seed, 3, workers); err != nil {
			return err
		}
		return nil
	}
	start := time.Now() //xemem:wallclock -- host-side benchmark timer for BENCH_sweep.json
	if err := sweepAll(1); err != nil {
		return nil, err
	}
	res.SerialNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_sweep.json
	start = time.Now()                                      //xemem:wallclock -- host-side benchmark timer for BENCH_sweep.json
	if err := sweepAll(res.Workers); err != nil {
		return nil, err
	}
	res.ParallelNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_sweep.json
	if res.ParallelNs > 0 {
		res.Speedup = res.SerialNs / res.ParallelNs
	}

	_, res.DispatchAllocsPerOp = schedulerBenchAllocs(seed, 256, 2000, false)
	_, res.DispatchAllocsPerOpLinear = schedulerBenchAllocs(seed, 256, 2000, true)
	var err error
	if _, res.AttachAllocsPerOp, err = attachBenchAllocs(seed, 3, false); err != nil {
		return nil, err
	}
	if _, res.AttachAllocsPerOpLegacy, err = attachBenchAllocs(seed, 3, true); err != nil {
		return nil, err
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// String renders the benchmark for the terminal.
func (r *SweepBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep benchmark (full Fig. 5-9 + Table 2, fast repetition counts)\n")
	fmt.Fprintf(&b, "  serial (1 worker)    %8.2f s\n", r.SerialNs/1e9)
	fmt.Fprintf(&b, "  parallel (%d workers) %7.2f s   (%.2fx speedup)\n", r.Workers, r.ParallelNs/1e9, r.Speedup)
	fmt.Fprintf(&b, "  dispatch allocs/op:  heap %.3f   linear %.3f\n",
		r.DispatchAllocsPerOp, r.DispatchAllocsPerOpLinear)
	fmt.Fprintf(&b, "  1 GB attach allocs/op: batched %.0f   per-page %.0f\n",
		r.AttachAllocsPerOp, r.AttachAllocsPerOpLegacy)
	return b.String()
}
