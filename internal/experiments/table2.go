package experiments

import (
	"fmt"
	"strings"

	"xemem"
	"xemem/internal/experiments/sweep"
	"xemem/internal/pagetable"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/xpmem"
)

// Table2Row is one enclave pairing of Table 2: the sustained throughput
// of 1 GB attachments, and — for the guest-attachment direction — what
// the throughput becomes when the rb-tree insertion time is excluded.
type Table2Row struct {
	Exporting string
	Attaching string
	GBs       float64
	// NoRBTreeGBs is >0 only for the guest-attachment row.
	NoRBTreeGBs float64
}

// Table2Result holds the regenerated table.
type Table2Result struct {
	Reps int
	Rows []Table2Row
}

// Table2 reproduces §5.4: throughput of 1 GB attachments between a Linux
// process and a native Kitten process in three pairings — native↔native,
// guest attaching native memory (Fig. 4(a), rb-tree dominated), and
// native attaching guest memory (Fig. 4(b), cheap translation). The
// simulator is deterministic, so reps beyond a handful only confirm the
// steady state (the paper used ≥500 to average hardware noise).
// Each row is an independent world and therefore one sweep cell,
// executed on workers host goroutines (<= 0 selects GOMAXPROCS, 1
// reproduces the serial runner exactly).
func Table2(seed uint64, reps, workers int) (*Table2Result, error) {
	if reps <= 0 {
		reps = 20
	}
	res := &Table2Result{Reps: reps}
	const bytes = 1 << 30

	rows := []struct {
		label string
		run   func(obs observeFn) (Table2Row, error)
	}{
		{"table2/kitten-to-linux", func(obs observeFn) (Table2Row, error) {
			return table2KittenToLinux(obs, seed, bytes, reps)
		}},
		{"table2/kitten-to-vm", func(obs observeFn) (Table2Row, error) {
			return table2KittenToVM(obs, seed+1, bytes, reps)
		}},
		{"table2/vm-to-kitten", func(obs observeFn) (Table2Row, error) {
			return table2VMToKitten(obs, seed+2, bytes, reps)
		}},
	}
	cells := make([]sweep.Cell[Table2Row], len(rows))
	for i, row := range rows {
		row := row
		obs := cellObserve(i)
		cells[i] = sweep.Cell[Table2Row]{Label: row.label, Run: func() (Table2Row, error) {
			return row.run(obs)
		}}
	}
	out, err := sweep.Run(cells, workers)
	if err != nil {
		return nil, err
	}
	res.Rows = out
	return res, nil
}

// table2KittenToLinux: Kitten exports, native Linux attaches (Fig. 5's
// 1 GB point).
func table2KittenToLinux(obs observeFn, seed uint64, bytes uint64, reps int) (Table2Row, error) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 32 << 30})
	announce(obs, "table2/kitten-to-linux", node.World())
	ck, err := node.BootCoKernel("kitten0", 2<<30)
	if err != nil {
		return Table2Row{}, err
	}
	expSess, heap, err := node.KittenProcess(ck, "exp", bytes)
	if err != nil {
		return Table2Row{}, err
	}
	attSess, _ := node.LinuxProcess("att", 1)
	bw, _, err := attachLoop(node, expSess, attSess, heap.Base, bytes, reps)
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{Exporting: "Kitten", Attaching: "Linux", GBs: bw / 1e9}, nil
}

// table2KittenToVM: Kitten exports, a Linux VM (on the Linux host)
// attaches — the Fig. 4(a) path whose cost is dominated by per-page
// rb-tree insertion.
func table2KittenToVM(obs observeFn, seed uint64, bytes uint64, reps int) (Table2Row, error) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 32 << 30})
	announce(obs, "table2/kitten-to-vm", node.World())
	ck, err := node.BootCoKernel("kitten0", 2<<30)
	if err != nil {
		return Table2Row{}, err
	}
	vm, err := node.BootVM("vm0", 2<<30, 1)
	if err != nil {
		return Table2Row{}, err
	}
	expSess, heap, err := node.KittenProcess(ck, "exp", bytes)
	if err != nil {
		return Table2Row{}, err
	}
	attSess, _ := node.GuestProcess(vm, "att", 0)
	bw, elapsed, err := attachLoop(node, expSess, attSess, heap.Base, bytes, reps)
	if err != nil {
		return Table2Row{}, err
	}
	// "(w/o rb-tree inserts)": subtract the exact accumulated memory
	// map insertion time, as the paper's measurement does.
	adjusted := sim.PerSecond(float64(bytes)*float64(reps), elapsed-vm.MapInsertTime)
	return Table2Row{
		Exporting: "Kitten", Attaching: "Linux (VM)",
		GBs: bw / 1e9, NoRBTreeGBs: adjusted / 1e9,
	}, nil
}

// table2VMToKitten: a Linux VM exports, the native Kitten process
// attaches — the Fig. 4(b) path, cheap memory-map walks.
func table2VMToKitten(obs observeFn, seed uint64, bytes uint64, reps int) (Table2Row, error) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 32 << 30})
	announce(obs, "table2/vm-to-kitten", node.World())
	ck, err := node.BootCoKernel("kitten0", 4<<30)
	if err != nil {
		return Table2Row{}, err
	}
	vm, err := node.BootVM("vm0", 2<<30, 1)
	if err != nil {
		return Table2Row{}, err
	}
	expSess, expProc := node.GuestProcess(vm, "exp", 0)
	region, err := xemem.AllocLinux(vm.Guest, expProc, "buf", bytes, true)
	if err != nil {
		return Table2Row{}, err
	}
	// The Kitten attacher needs room for the 1 GB mapping plus its
	// static layout; its co-kernel has 4 GB.
	attSess, _, err := node.KittenProcess(ck, "att", 16<<20)
	if err != nil {
		return Table2Row{}, err
	}
	bw, _, err := attachLoop(node, expSess, attSess, region.Base, bytes, reps)
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{Exporting: "Linux (VM)", Attaching: "Kitten", GBs: bw / 1e9}, nil
}

// attachLoop exports [base, base+bytes) from expSess and attaches it reps
// times from attSess, returning mean throughput and total attach time.
func attachLoop(node *xemem.Node, expSess, attSess *xpmem.Session, base pagetable.VA, bytes uint64, reps int) (float64, sim.Time, error) {
	var total sim.Time
	var runErr error
	node.Spawn("attach-loop", func(a *sim.Actor) {
		segid, err := expSess.Make(a, base, bytes, xpmem.PermRead|xpmem.PermWrite, "")
		if err != nil {
			runErr = err
			return
		}
		apid, err := attSess.Get(a, segid, xpmem.PermRead)
		if err != nil {
			runErr = err
			return
		}
		for i := 0; i < reps; i++ {
			start := a.Now()
			va, err := attSess.Attach(a, segid, apid, 0, bytes, xpmem.PermRead)
			if err != nil {
				runErr = err
				return
			}
			total += a.Now() - start
			if err := attSess.Detach(a, va); err != nil {
				runErr = err
				return
			}
		}
	})
	if err := node.Run(); err != nil {
		return 0, 0, err
	}
	if runErr != nil {
		return 0, 0, runErr
	}
	return sim.PerSecond(float64(bytes)*float64(reps), total), total, nil
}

// String renders the table in the paper's layout.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: cross-enclave throughput, 1 GB attachments (%d per row)\n", r.Reps)
	fmt.Fprintf(&b, "%-12s %-12s %10s %22s\n", "Exporting", "Attaching", "GB/s", "(w/o rb-tree inserts)")
	for _, row := range r.Rows {
		extra := "(N/A)"
		if row.NoRBTreeGBs > 0 {
			extra = fmt.Sprintf("(%.2f)", row.NoRBTreeGBs)
		}
		fmt.Fprintf(&b, "%-12s %-12s %10.3f %22s\n", row.Exporting, row.Attaching, row.GBs, extra)
	}
	return b.String()
}

var _ = proc.Region{}
