package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"xemem/internal/experiments/sweep"
	"xemem/internal/sim/snapshot"
	"xemem/internal/sim/trace"
)

// SnapshotBenchCell is one suffix workload of the snapshot benchmark,
// run both ways: re-bootstrapped through the shared prefix and forked
// from the prefix's snapshot image. The simulated outcome columns are
// from the bootstrap run; Identical asserts the fork produced the very
// same outcome (digest included).
type SnapshotBenchCell struct {
	Label       string       `json:"label"`
	Recurring   bool         `json:"recurring"`
	SuffixIters int          `json:"suffix_iters"`
	SimTimeNs   int64        `json:"sim_time_ns"`
	Points      int          `json:"points"`
	Digest      trace.Digest `json:"digest"`

	BootstrapHostNs float64 `json:"bootstrap_host_ns"`
	ForkHostNs      float64 `json:"fork_host_ns"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
}

// SnapshotBenchResult records the snapshot-forked sweep's win over
// re-bootstrapping (BENCH_snapshot.json): every cell of a Figure 9
// suffix sweep shares one bootstrap prefix, so forking from the prefix's
// snapshot image replaces PrefixIters simulated iterations per cell with
// one image decode and overlay. Simulated results are byte-identical
// either way — the digests prove it — so the speedup is pure host time.
type SnapshotBenchResult struct {
	Host HostInfo `json:"host"`

	Seed         uint64 `json:"seed"`
	Nodes        int    `json:"nodes"`
	MultiEnclave bool   `json:"multi_enclave"`
	PrefixIters  int    `json:"prefix_iters"`

	SnapshotBytes  int     `json:"snapshot_bytes"`
	SnapshotSHA256 string  `json:"snapshot_sha256"`
	SnapshotCutNs  int64   `json:"snapshot_cut_ns"`
	PrefixHostNs   float64 `json:"prefix_host_ns"`
	EncodeHostNs   float64 `json:"encode_host_ns"`
	DecodeHostNs   float64 `json:"decode_host_ns"`

	SweepsIdentical bool    `json:"sweeps_identical"`
	MinSpeedup      float64 `json:"min_speedup"`

	Cells []SnapshotBenchCell `json:"cells"`
}

// snapshotBenchTails is the benchmark's suffix sweep: both attachment
// models at two suffix lengths.
var snapshotBenchTails = []fig9Tail{
	{Recurring: false, Iters: 60},
	{Recurring: true, Iters: 60},
	{Recurring: false, Iters: 90},
	{Recurring: true, Iters: 90},
}

// SnapshotBench measures the snapshot-forked Figure 9 sweep against the
// re-bootstrapped one. Cells run serially (workers=1) so the per-cell
// wall clocks are clean; the fork cells go through sweep.FromSnapshot,
// sharing one lazily-decoded image exactly as a production sweep would.
// When jsonPath is non-empty the result is written there
// (BENCH_snapshot.json).
func SnapshotBench(seed uint64, jsonPath string) (*SnapshotBenchResult, error) {
	p := fig9PrefixParams{Nodes: 2, MultiEnclave: true, PrefixIters: 480, Recurring: true}
	res := &SnapshotBenchResult{
		Host: CaptureHost(), Seed: seed,
		Nodes: p.Nodes, MultiEnclave: p.MultiEnclave, PrefixIters: p.PrefixIters,
	}

	// One reference prefix: its snapshot image is what every fork cell
	// shares, and its encode/decode cost is the fork path's overhead.
	start := time.Now() //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json
	ph, err := fig9Snapshot(seed, p)
	if err != nil {
		return nil, err
	}
	res.PrefixHostNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json
	start = time.Now()                                          //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json
	img := ph.w.SnapshotImage()
	enc := img.Encode()
	res.EncodeHostNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json
	res.SnapshotBytes = len(enc)
	res.SnapshotSHA256 = img.Hash()
	res.SnapshotCutNs = img.CutNs
	start = time.Now() //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json
	if _, err := snapshot.Decode(enc); err != nil {
		return nil, err
	}
	res.DecodeHostNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json

	// timedOutcome pairs a cell's simulated outcome with its host cost.
	type timedOutcome struct {
		out fig9Outcome
		ns  float64
	}

	bootCells := make([]sweep.Cell[timedOutcome], len(snapshotBenchTails))
	forkCells := make([]sweep.SnapCell[*snapshot.Image, timedOutcome], len(snapshotBenchTails))
	for i, tail := range snapshotBenchTails {
		tail := tail
		label := fmt.Sprintf("suffix rec=%v iters=%d", tail.Recurring, tail.Iters)
		bootCells[i] = sweep.Cell[timedOutcome]{
			Label: "bootstrap " + label,
			Run: func() (timedOutcome, error) {
				start := time.Now() //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json
				bp, err := fig9Snapshot(seed, p)
				if err != nil {
					return timedOutcome{}, err
				}
				out, err := bp.runSuffix(tail)
				if err != nil {
					return timedOutcome{}, err
				}
				return timedOutcome{out, float64(time.Since(start).Nanoseconds())}, nil //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json
			},
		}
		forkCells[i] = sweep.SnapCell[*snapshot.Image, timedOutcome]{
			Label: "fork " + label,
			Run: func(shared *snapshot.Image) (timedOutcome, error) {
				start := time.Now() //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json
				fk, err := fig9Fork(shared)
				if err != nil {
					return timedOutcome{}, err
				}
				out, err := fk.runSuffix(tail)
				if err != nil {
					return timedOutcome{}, err
				}
				return timedOutcome{out, float64(time.Since(start).Nanoseconds())}, nil //xemem:wallclock -- host-side benchmark timer for BENCH_snapshot.json
			},
		}
	}

	boots, err := sweep.Run(bootCells, 1)
	if err != nil {
		return nil, err
	}
	prep := func() (*snapshot.Image, error) { return snapshot.Decode(enc) }
	forks, err := sweep.Run(sweep.FromSnapshot(prep, forkCells), 1)
	if err != nil {
		return nil, err
	}

	bootOuts := make([]fig9Outcome, len(boots))
	forkOuts := make([]fig9Outcome, len(forks))
	res.MinSpeedup = 0
	for i := range boots {
		bootOuts[i], forkOuts[i] = boots[i].out, forks[i].out
		cell := SnapshotBenchCell{
			Label:       fmt.Sprintf("rec=%v iters=%d", snapshotBenchTails[i].Recurring, snapshotBenchTails[i].Iters),
			Recurring:   snapshotBenchTails[i].Recurring,
			SuffixIters: snapshotBenchTails[i].Iters,
			SimTimeNs:   boots[i].out.SimTimeNs,
			Points:      boots[i].out.Points,
			Digest:      boots[i].out.Digest,

			BootstrapHostNs: boots[i].ns,
			ForkHostNs:      forks[i].ns,
			Identical:       boots[i].out == forks[i].out,
		}
		if cell.ForkHostNs > 0 {
			cell.Speedup = cell.BootstrapHostNs / cell.ForkHostNs
		}
		if i == 0 || cell.Speedup < res.MinSpeedup {
			res.MinSpeedup = cell.Speedup
		}
		res.Cells = append(res.Cells, cell)
	}
	bj, err := json.MarshalIndent(bootOuts, "", "  ")
	if err != nil {
		return nil, err
	}
	fj, err := json.MarshalIndent(forkOuts, "", "  ")
	if err != nil {
		return nil, err
	}
	res.SweepsIdentical = bytes.Equal(bj, fj)

	if jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// String renders the benchmark for the terminal.
func (r *SnapshotBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Snapshot-forked sweep benchmark (fig9 nodes=%d multi=%v, prefix %d iters)\n",
		r.Nodes, r.MultiEnclave, r.PrefixIters)
	fmt.Fprintf(&b, "  snapshot: %d bytes, cut %.3f s, encode %.2f ms, decode %.2f ms, sha256 %s\n",
		r.SnapshotBytes, float64(r.SnapshotCutNs)/1e9, r.EncodeHostNs/1e6, r.DecodeHostNs/1e6, r.SnapshotSHA256[:16])
	fmt.Fprintf(&b, "  prefix bootstrap: %.2f ms host\n", r.PrefixHostNs/1e6)
	fmt.Fprintf(&b, "  %-22s %14s %14s %9s %s\n", "cell", "bootstrap", "fork", "speedup", "identical")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-22s %11.2f ms %11.2f ms %8.2fx %v\n",
			c.Label, c.BootstrapHostNs/1e6, c.ForkHostNs/1e6, c.Speedup, c.Identical)
	}
	fmt.Fprintf(&b, "  sweeps identical: %v   min speedup: %.2fx\n", r.SweepsIdentical, r.MinSpeedup)
	return b.String()
}
