package experiments

import (
	"fmt"
	"strings"

	"xemem/internal/sim"
	"xemem/internal/sim/trace"
)

// Observe, when non-nil, is invoked for every simulation world an
// experiment constructs, with a label identifying the configuration the
// world runs (e.g. "fig6/enclaves=2/size=1024MB"). Installing a
// sim.Observer on the world — typically via trace.Set.Hook() — captures
// that configuration's full event stream. Leave nil for zero overhead;
// the simulated results are bit-identical either way. The hook is a
// package variable because experiments construct their worlds
// internally, one per configuration point; set it before an experiment
// starts and leave it alone until the experiment returns — under the
// parallel sweep runner it is read from worker goroutines. With more
// than one worker, tracers registered through this hook land in
// completion order; use ObserveCell for worker-count-independent order.
var Observe func(label string, w *sim.World)

// ObserveCell is the cell-aware variant of Observe, consumed by the
// parallel sweep runner: it additionally receives the sweep-cell index
// of the world being announced, so a trace.Set.CellHook() can order
// tracers by cell rather than by which worker registered first. When
// both hooks are set, ObserveCell wins.
var ObserveCell func(cell int, label string, w *sim.World)

// observeFn announces one world of one sweep cell to whatever hook is
// installed; nil means no tracing.
type observeFn = func(label string, w *sim.World)

// cellObserve resolves the observer for sweep cell i from the package
// hooks. Resolve once per cell while enumerating (before workers start);
// the returned closure is then safe to call from a worker goroutine.
func cellObserve(cell int) observeFn {
	if oc := ObserveCell; oc != nil {
		return func(label string, w *sim.World) { oc(cell, label, w) }
	}
	return Observe
}

// announce invokes obs, falling back to the package Observe hook when
// obs is nil (the path for direct calls to per-cell run functions, e.g.
// from the golden-trace tests). It is also the seam through which the
// package-level engine selection (EngineWorkers) reaches every
// experiment world: announce runs right after world construction,
// before any actor is dispatched.
func announce(obs observeFn, label string, w *sim.World) {
	engineHook(w)
	if obs == nil {
		obs = Observe
	}
	if obs != nil {
		obs(label, w)
	}
}

// Breakdown renders, per traced configuration, where simulated time went:
// the top operations by charged time, every resource's busy/wait profile,
// and every receive queue's residency — the per-figure tables the
// -metrics flag prints.
func Breakdown(s *trace.Set) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-figure virtual-time breakdown (%d traced worlds)\n", len(s.Tracers()))
	for _, t := range s.Tracers() {
		b.WriteString(t.Summary())
	}
	return b.String()
}
