package experiments

import (
	"fmt"
	"strings"

	"xemem/internal/sim"
	"xemem/internal/sim/trace"
)

// Observe, when non-nil, is invoked for every simulation world an
// experiment constructs, with a label identifying the configuration the
// world runs (e.g. "fig6/enclaves=2/size=1024MB"). Installing a
// sim.Observer on the world — typically via trace.Set.Hook() — captures
// that configuration's full event stream. Leave nil for zero overhead;
// the simulated results are bit-identical either way. The hook is a
// package variable because experiments construct their worlds
// internally, one per configuration point; it is read once per world at
// creation, not concurrency-safe to reassign mid-experiment.
var Observe func(label string, w *sim.World)

// observeWorld announces a freshly built experiment world to the
// Observe hook.
func observeWorld(label string, w *sim.World) {
	if Observe != nil {
		Observe(label, w)
	}
}

// Breakdown renders, per traced configuration, where simulated time went:
// the top operations by charged time, every resource's busy/wait profile,
// and every receive queue's residency — the per-figure tables the
// -metrics flag prints.
func Breakdown(s *trace.Set) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-figure virtual-time breakdown (%d traced worlds)\n", len(s.Tracers()))
	for _, t := range s.Tracers() {
		b.WriteString(t.Summary())
	}
	return b.String()
}
