package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"xemem"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
	"xemem/internal/xpmem"
)

// ParallelBenchCell is one point of the partition-count × actor-count
// scaling grid: one multi-enclave world run on the serial reference
// engine and on the conservative parallel engine, with trace-digest
// identity checked and host wall-clocks compared. Speedup is a ratio of
// host times — on a single-core container it hovers near (or below) 1.0,
// which is why the Host header records the core count.
type ParallelBenchCell struct {
	Partitions int `json:"partitions"`
	Actors     int `json:"actors"` // app actors, excluding per-enclave substrate

	FinalNs int64 `json:"final_ns"` // simulated completion (identical in all modes)

	SerialDigest   string `json:"serial_digest"`
	ParallelDigest string `json:"parallel_digest"`
	Identical      bool   `json:"identical"`

	SerialNs   float64 `json:"serial_ns"`
	ParallelNs float64 `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// ParallelBenchResult is the regenerated scaling sweep
// (BENCH_parallel.json).
type ParallelBenchResult struct {
	Host    HostInfo            `json:"host"`
	Seed    uint64              `json:"seed"`
	Workers int                 `json:"workers"` // engine workers for the parallel runs
	Cells   []ParallelBenchCell `json:"cells"`
}

// ParallelBenchPartitions is the partition-count axis.
var ParallelBenchPartitions = []int{1, 2, 4, 8}

// ParallelBenchActorCounts is the actor-count axis. The 1000-actor rows
// are the acceptance target: ≥4x wall-clock on a ≥4-core host.
var ParallelBenchActorCounts = []int{256, 1000}

// parallelBenchNodes is the fixed enclave-node count of the bench world;
// node n lands in partition n % partitions, so the world construction —
// and therefore its simulated schedule — is identical at every partition
// count up to the labels.
const parallelBenchNodes = 8

// buildParallelBenchWorld constructs the scaling-bench world: nodes
// XEMEM machines, each a Linux management enclave plus a Kitten
// co-kernel, placed whole into partition n % partitions. Per node, one
// protocol driver runs attach/compute/detach cycles through the real
// cross-enclave protocol, and (actors/nodes - 1) compute workers churn
// the node's cores; nodes are coupled by a token ring of cross-partition
// mailboxes serviced by daemon couriers. All cross-partition traffic
// goes through the ring mailboxes, so any partitioning of the node set
// is safe. It returns the world and a deferred error collector.
func buildParallelBenchWorld(seed uint64, partitions, actors int) (*sim.World, func() error, error) {
	w := sim.NewWorld(seed)
	// Actor RNG streams keyed by actor id, not creation-order first use:
	// required for digest identity once partitions interleave.
	w.SetStableActorRNG(true)

	// ringLaps bounds the token ring: every courier performs exactly
	// ringLaps receives (the token counts hops down from laps × nodes), so
	// termination is deterministic.
	const ringLaps = 20
	const ringLat = 10 * sim.Microsecond
	boxes := make([]*sim.Mailbox, parallelBenchNodes)
	for n := 0; n < parallelBenchNodes; n++ {
		boxes[n] = w.NewMailbox(fmt.Sprintf("pring%d", n), n%partitions, ringLat)
	}

	perNode := actors / parallelBenchNodes
	if perNode < 2 {
		perNode = 2
	}
	var errs []error
	for n := 0; n < parallelBenchNodes; n++ {
		n := n
		w.SetDefaultPartition(n % partitions)
		node := xemem.NewNodeInWorld(w, sim.DefaultCosts(), xemem.NodeConfig{
			Name: fmt.Sprintf("node%d", n), Seed: seed, MemBytes: 4 << 30, LinuxCores: 4,
		})
		ck, err := node.BootCoKernel("kitten", 1<<30)
		if err != nil {
			return nil, nil, err
		}
		expSess, heap, err := node.KittenProcess(ck, "exporter", 64<<20)
		if err != nil {
			return nil, nil, err
		}
		attSess, _ := node.LinuxProcess("attacher", 1)
		cores := node.Linux().Cores()

		errIdx := len(errs)
		errs = append(errs, nil)
		node.Spawn("driver", func(a *sim.Actor) {
			const window = uint64(16) << 20
			segid, err := expSess.Make(a, heap.Base, window, xpmem.PermRead|xpmem.PermWrite, "")
			if err != nil {
				errs[errIdx] = err
				return
			}
			apid, err := attSess.Get(a, segid, xpmem.PermRead)
			if err != nil {
				errs[errIdx] = err
				return
			}
			for round := 0; round < 4; round++ {
				va, err := attSess.Attach(a, segid, apid, 0, window, xpmem.PermRead)
				if err != nil {
					errs[errIdx] = err
					return
				}
				a.Charge("consume", 50*sim.Microsecond)
				if err := attSess.Detach(a, va); err != nil {
					errs[errIdx] = err
					return
				}
			}
		})

		for i := 0; i < perNode-1; i++ {
			i := i
			core := cores[2+i%(len(cores)-2)]
			node.Spawn(fmt.Sprintf("worker%d", i), func(a *sim.Actor) {
				r := a.RNG()
				for s := 0; s < 300; s++ {
					a.Charge("compute", sim.Time(200+r.Intn(800))*sim.Nanosecond)
					if s%8 == 0 {
						core.Exec(a, sim.Time(100+r.Intn(200))*sim.Nanosecond, "svc")
					}
				}
			})
		}

		// The courier is a non-daemon with a fixed receive budget, so the
		// ring is part of the world's termination rather than a perpetual
		// daemon: a free-running daemon would keep generating events right
		// up to the termination cut-off, where the serial and parallel
		// engines legitimately diverge (see DESIGN.md §11).
		node.Spawn("courier", func(a *sim.Actor) {
			if n == 0 {
				boxes[1%parallelBenchNodes].Send(a, ringLaps*parallelBenchNodes, ringLat)
			}
			for k := 0; k < ringLaps; k++ {
				hop := boxes[n].Recv(a).(int)
				a.Charge("route", 2*sim.Microsecond)
				if hop > 1 {
					boxes[(n+1)%parallelBenchNodes].Send(a, hop-1, ringLat)
				}
			}
		})
	}
	w.SetDefaultPartition(0)
	collect := func() error {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	return w, collect, nil
}

// runParallelBench executes one world build. workers <= 0 selects the
// serial reference engine; batch opts the parallel engine into
// run-to-completion advance batching (ignored when an observer is
// installed — the engine disengages batching under observation anyway).
func runParallelBench(seed uint64, partitions, actors, workers int, batch bool, obs sim.Observer) (sim.Time, error) {
	w, collect, err := buildParallelBenchWorld(seed, partitions, actors)
	if err != nil {
		return 0, err
	}
	if workers > 0 {
		w.SetParallel(workers)
		w.SetBatchedAdvances(batch)
	}
	if obs != nil {
		w.SetObserver(obs)
	}
	if err := w.Run(); err != nil {
		return 0, err
	}
	return w.Now(), collect()
}

// ParallelBench runs the partition-count × actor-count scaling grid.
// Per cell: a serial and a parallel run under a digesting tracer (the
// identity check), then an untraced serial and an untraced batched
// parallel run for the wall-clock comparison. When jsonPath is non-empty
// the result is written there (BENCH_parallel.json).
func ParallelBench(seed uint64, jsonPath string) (*ParallelBenchResult, error) {
	res := &ParallelBenchResult{
		Host:    CaptureHost(),
		Seed:    seed,
		Workers: runtime.NumCPU(),
	}
	for _, actors := range ParallelBenchActorCounts {
		for _, parts := range ParallelBenchPartitions {
			cell := ParallelBenchCell{Partitions: parts, Actors: actors}

			// Both tracers carry the same mode-neutral label: the label is
			// part of the digest, and the two streams must be byte-equal.
			serTr := trace.NewTracer(fmt.Sprintf("pb/p=%d/a=%d", parts, actors))
			serTr.SetKeepEvents(false)
			final, err := runParallelBench(seed, parts, actors, 0, false, serTr)
			if err != nil {
				return nil, err
			}
			cell.FinalNs = int64(final)
			cell.SerialDigest = serTr.Digest().SHA256

			parTr := trace.NewTracer(fmt.Sprintf("pb/p=%d/a=%d", parts, actors))
			parTr.SetKeepEvents(false)
			if _, err := runParallelBench(seed, parts, actors, res.Workers, false, parTr); err != nil {
				return nil, err
			}
			cell.ParallelDigest = parTr.Digest().SHA256
			cell.Identical = cell.SerialDigest == cell.ParallelDigest

			start := time.Now() //xemem:wallclock -- host-side benchmark timer for BENCH_parallel.json
			if _, err := runParallelBench(seed, parts, actors, 0, false, nil); err != nil {
				return nil, err
			}
			cell.SerialNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_parallel.json
			start = time.Now()                                       //xemem:wallclock -- host-side benchmark timer for BENCH_parallel.json
			if _, err := runParallelBench(seed, parts, actors, res.Workers, true, nil); err != nil {
				return nil, err
			}
			cell.ParallelNs = float64(time.Since(start).Nanoseconds()) //xemem:wallclock -- host-side benchmark timer for BENCH_parallel.json
			if cell.ParallelNs > 0 {
				cell.Speedup = cell.SerialNs / cell.ParallelNs
			}
			res.Cells = append(res.Cells, cell)
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// String renders the scaling grid for the terminal.
func (r *ParallelBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel engine scaling (host: %d cores, GOMAXPROCS=%d; %d engine workers)\n",
		r.Host.NumCPU, r.Host.GOMAXPROCS, r.Workers)
	fmt.Fprintf(&b, "%10s %8s %12s %12s %9s %10s\n", "partitions", "actors", "serial", "parallel", "speedup", "identical")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%10d %8d %10.1fms %10.1fms %8.2fx %10v\n",
			c.Partitions, c.Actors, c.SerialNs/1e6, c.ParallelNs/1e6, c.Speedup, c.Identical)
	}
	return b.String()
}
