package experiments

import (
	"fmt"
	"strings"

	"xemem"
	"xemem/internal/experiments/sweep"
	"xemem/internal/noise"
	"xemem/internal/sim"
	"xemem/internal/xpmem"
)

// Fig7Class summarizes one detour class of the noise profile.
type Fig7Class struct {
	Name  string
	Count int
	MinUS float64
	AvgUS float64
	MaxUS float64
}

// Fig7Phase is the noise profile of one attachment size.
type Fig7Phase struct {
	Size    string
	Classes []Fig7Class
	// Detours is the raw (time, duration) series for plotting.
	Detours []noise.Detour
}

// Fig7Result holds the regenerated figure.
type Fig7Result struct {
	Phases []Fig7Phase
}

// Fig7 reproduces §5.5: a single-core Kitten enclave exports regions of
// 4 KB, 2 MB and 1 GB; a Linux process attaches once per second for 10
// seconds while the Selfish Detour benchmark profiles the Kitten core.
// Detours caused by XEMEM serves are classified apart from the baseline
// hardware noise and periodic SMIs. Each size phase is an independent
// world and therefore one sweep cell, executed on workers host
// goroutines (<= 0 selects GOMAXPROCS, 1 reproduces the serial runner).
func Fig7(seed uint64, workers int) (*Fig7Result, error) {
	phases := []struct {
		name  string
		bytes uint64
	}{
		{"4KB", 4 << 10},
		{"2MB", 2 << 20},
		{"1GB", 1 << 30},
	}
	cells := make([]sweep.Cell[Fig7Phase], len(phases))
	for i, phase := range phases {
		phase := phase
		obs := cellObserve(i)
		cells[i] = sweep.Cell[Fig7Phase]{
			Label: "fig7/" + phase.name,
			Run: func() (Fig7Phase, error) {
				return fig7Phase(obs, seed, phase.name, phase.bytes)
			},
		}
	}
	out, err := sweep.Run(cells, workers)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Phases: out}, nil
}

// fig7Phase runs the noise profile for one attachment size.
func fig7Phase(obs observeFn, seed uint64, name string, bytes uint64) (Fig7Phase, error) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 32 << 30})
	announce(obs, "fig7/"+name, node.World())
	ck, err := node.BootCoKernel("kitten0", 2<<30)
	if err != nil {
		return Fig7Phase{}, err
	}
	expSess, heap, err := node.KittenProcess(ck, "exporter", 1<<30)
	if err != nil {
		return Fig7Phase{}, err
	}
	attSess, _ := node.LinuxProcess("attacher", 1)
	noise.Inject(node.World(), ck.OS.Core(), noise.DefaultKittenSources())

	var runErr error
	node.Spawn("fig7-"+name, func(a *sim.Actor) {
		segid, err := expSess.Make(a, heap.Base, bytes, xpmem.PermRead, "")
		if err != nil {
			runErr = err
			return
		}
		apid, err := attSess.Get(a, segid, xpmem.PermRead)
		if err != nil {
			runErr = err
			return
		}
		ck.OS.Core().StartRecording()
		// Attach, sleep one second, repeat, for ten seconds (§5.5).
		for t := 0; t < 10; t++ {
			va, err := attSess.Attach(a, segid, apid, 0, bytes, xpmem.PermRead)
			if err != nil {
				runErr = err
				return
			}
			if err := attSess.Detach(a, va); err != nil {
				runErr = err
				return
			}
			a.Advance(sim.Second)
		}
	})
	if err := node.Run(); err != nil {
		return Fig7Phase{}, err
	}
	if runErr != nil {
		return Fig7Phase{}, runErr
	}
	spans := ck.OS.Core().StopRecording()
	detours := noise.Detours(spans, "app")
	return Fig7Phase{Size: name, Classes: classify(detours), Detours: detours}, nil
}

// classify buckets detours into attachment serves, SMIs, and baseline
// hardware noise.
func classify(ds []noise.Detour) []Fig7Class {
	mk := func(name string, sel func(noise.Detour) bool) Fig7Class {
		c := Fig7Class{Name: name}
		for _, d := range ds {
			if !sel(d) {
				continue
			}
			us := d.Dur.Micros()
			if c.Count == 0 || us < c.MinUS {
				c.MinUS = us
			}
			if us > c.MaxUS {
				c.MaxUS = us
			}
			c.AvgUS += us
			c.Count++
		}
		if c.Count > 0 {
			c.AvgUS /= float64(c.Count)
		}
		return c
	}
	isServe := func(d noise.Detour) bool { return d.Tagged("xemem-serve") }
	isNotify := func(d noise.Detour) bool { return d.Tagged("xemem-msg") && !isServe(d) }
	return []Fig7Class{
		mk("xemem-attach", isServe),
		mk("xemem-notify", isNotify),
		mk("smi", func(d noise.Detour) bool { return d.Tagged("smi") && !isServe(d) && !isNotify(d) }),
		mk("hw-baseline", func(d noise.Detour) bool { return d.Tagged("hw") && !d.Tagged("smi") && !isServe(d) && !isNotify(d) }),
	}
}

// Class fetches a phase's class summary by name.
func (p Fig7Phase) Class(name string) Fig7Class {
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	return Fig7Class{}
}

// String renders the profile summary.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Kitten enclave noise profile while serving XEMEM attachments (10 s, 1 attach/s)\n")
	fmt.Fprintf(&b, "%8s %-14s %7s %12s %12s %12s\n", "Region", "Detour class", "Count", "Min(us)", "Avg(us)", "Max(us)")
	for _, p := range r.Phases {
		for _, c := range p.Classes {
			fmt.Fprintf(&b, "%8s %-14s %7d %12.1f %12.1f %12.1f\n",
				p.Size, c.Name, c.Count, c.MinUS, c.AvgUS, c.MaxUS)
		}
	}
	return b.String()
}
