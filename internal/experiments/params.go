// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§7) on the simulated node. Each experiment builds fresh
// enclaves, runs the real XEMEM protocol over them, and reports the same
// rows/series the paper plots. EXPERIMENTS.md records paper-vs-measured
// for each.
package experiments

import (
	"xemem/internal/insitu"
	"xemem/internal/sim"
)

// Workload calibration for the §6/§7 composed benchmarks. The hardware
// and OS costs live in sim.Costs; these constants describe the
// *applications* (HPCCG iteration time, STREAM bandwidths) and the OS
// noise environments of Table 3's enclave configurations, calibrated so
// the regenerated Figs. 8 and 9 land in the paper's bands
// (≈140–160 s single-node, ≈42–54 s multi-node).
const (
	// Single-node HPCCG (§6.1): 600 iterations, 15 communication points,
	// 512 MB analytics region.
	fig8Iters       = 600
	fig8SignalEvery = 40
	fig8DataBytes   = 512 << 20
	// HPCCG iteration compute time on a quiet LWK core.
	fig8IterKitten = 233 * sim.Millisecond
	// Fullweight penalty: timer ticks, TLB pressure (≈1.5%).
	fig8IterLinux = 236500 * sim.Microsecond
	// Guest penalty on top of the host kernel (nested paging, exits).
	fig8VirtFactor = 1.012

	// Multi-node HPCCG (§7.1): 300 iterations, 10 points, 1 GB regions,
	// weak scaling (per-node problem size constant).
	fig9Iters       = 300
	fig9SignalEvery = 30
	fig9DataBytes   = 1 << 30
	fig9IterKitten  = 140 * sim.Millisecond
	fig9IterLinux   = 141500 * sim.Microsecond
	fig9AllreduceNs = 30 * sim.Microsecond
)

// kittenSim is the simulation compute model inside a Kitten co-kernel:
// essentially noise-free (§5.5).
func kittenSim(iterBase sim.Time) insitu.ComputeModel {
	return insitu.ComputeModel{
		IterBase:  iterBase,
		RelJitter: 0.0004,
		RunJitter: 0.0015,
	}
}

// linuxSim is the simulation compute model in the native Linux enclave:
// fine-grained jitter, occasional long daemon bursts, and contention
// inflation while a co-located analytics component is active.
func linuxSim(iterBase sim.Time) insitu.ComputeModel {
	return insitu.ComputeModel{
		IterBase:         iterBase,
		RelJitter:        0.004,
		BurstRate:        0.06,
		BurstMean:        350 * sim.Millisecond,
		BurstJit:         0.5,
		ContentionFactor: 0.22,
		RunJitter:        0.003,
	}
}

// linuxSimPinned is linuxSim with the §7.1 NUMA pinning: the steady
// cross-component contention is largely avoided, leaving jitter and
// daemon bursts — the noise that allreduce amplifies with node count.
func linuxSimPinned(iterBase sim.Time) insitu.ComputeModel {
	m := linuxSim(iterBase)
	m.ContentionFactor = 0.06
	return m
}

// vmOnKittenSim is the simulation compute model inside a Palacios VM
// hosted by an isolated Kitten co-kernel (§7): virtualization overhead
// but near-LWK noise.
func vmOnKittenSim(iterBase sim.Time) insitu.ComputeModel {
	return insitu.ComputeModel{
		IterBase:  sim.Time(float64(iterBase) * 1.045),
		RelJitter: 0.001,
		RunJitter: 0.002,
	}
}

// Analytics (STREAM) calibration: shared→private copy at memcpy speed,
// then the four kernels; the traffic factor scales region bytes to total
// kernel traffic.
const (
	anCopyBW        = 9e9
	anStreamBW      = 11e9
	anTrafficFactor = 6.0
	// Efficiency of the analytics stack inside a VM, by host kind. The
	// Linux-host case includes host-daemon steal on the vcpus — the
	// interference the multi-enclave design exists to avoid.
	vmKittenHostEff = 0.90
	vmLinuxHostEff  = 0.72
)

func nativeAnalytics(costs *sim.Costs) insitu.AnalyticsModel {
	return insitu.AnalyticsModel{
		CopyBW:              anCopyBW,
		StreamBW:            anStreamBW,
		StreamTrafficFactor: anTrafficFactor,
		FaultPerPage:        costs.FaultLinux,
		FaultPressureProb:   0.4,
		FaultPressureFactor: 2.5,
	}
}

func vmAnalytics(costs *sim.Costs, eff float64) insitu.AnalyticsModel {
	return insitu.AnalyticsModel{
		CopyBW:              anCopyBW * eff,
		StreamBW:            anStreamBW * eff,
		StreamTrafficFactor: anTrafficFactor,
		FaultPerPage:        costs.FaultLinux,
	}
}
