package experiments

// Parallel determinism harness: every figure must produce byte-identical
// JSON and identical per-world trace digests no matter how many workers
// the sweep runner uses. The serial runner (workers=1) is the reference;
// 2 and NumCPU workers must reproduce it exactly. Digest order comes
// from the cell-aware trace hook, which keys tracers by (cell, seq)
// rather than creation order, so it is worker-count independent by
// construction — this test proves the simulated content is too.

import (
	"encoding/json"
	"runtime"
	"testing"

	"xemem/internal/sim/trace"
)

// parallelFigures enumerates reduced configurations of every figure,
// parameterized on the sweep worker count.
var parallelFigures = []struct {
	name string
	run  func(workers int) (any, error)
}{
	{"fig5", func(w int) (any, error) { return Fig5(11, 2, w) }},
	{"fig6", func(w int) (any, error) { return Fig6(11, 2, w) }},
	{"fig7", func(w int) (any, error) { return Fig7(11, w) }},
	{"fig8", func(w int) (any, error) { return Fig8(11, 1, w) }},
	{"fig9", func(w int) (any, error) { return Fig9(11, 1, w) }},
	{"table2", func(w int) (any, error) { return Table2(11, 1, w) }},
}

// runCellTraced executes fn with a fresh metrics-only trace.Set installed
// through the cell-aware hook and returns the figure's JSON rendering
// alongside the trace digests.
func runCellTraced(t *testing.T, workers int, fn func(workers int) (any, error)) ([]byte, []trace.Digest) {
	t.Helper()
	s := trace.NewSet()
	s.SetKeepEvents(false)
	savedObs, savedCell := Observe, ObserveCell
	Observe = nil
	ObserveCell = s.CellHook()
	defer func() { Observe, ObserveCell = savedObs, savedCell }()
	res, err := fn(workers)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return buf, s.Digests()
}

// TestParallelIdentity checks every figure at 1, 2, and NumCPU workers:
// the result JSON must be byte-identical and every world's digest equal.
func TestParallelIdentity(t *testing.T) {
	counts := []int{2, runtime.NumCPU()}
	for _, fig := range parallelFigures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			wantJSON, wantDigests := runCellTraced(t, 1, fig.run)
			if len(wantDigests) == 0 {
				t.Fatal("serial run traced no worlds")
			}
			for _, workers := range counts {
				gotJSON, gotDigests := runCellTraced(t, workers, fig.run)
				if string(gotJSON) != string(wantJSON) {
					t.Errorf("workers=%d: JSON diverged from serial\n got  %s\n want %s",
						workers, gotJSON, wantJSON)
				}
				if len(gotDigests) != len(wantDigests) {
					t.Fatalf("workers=%d: traced %d worlds, serial traced %d",
						workers, len(gotDigests), len(wantDigests))
				}
				for i := range gotDigests {
					if gotDigests[i] != wantDigests[i] {
						t.Errorf("workers=%d: world %d digest diverged\n got  %+v\n want %+v",
							workers, i, gotDigests[i], wantDigests[i])
					}
				}
			}
		})
	}
}

// TestParallelWorldIdentity checks the per-world conservative parallel
// engine (sim.World.SetParallel, selected through EngineWorkers) the
// same way TestParallelIdentity checks the sweep runner: every figure
// on the serial reference engine, then with every world running on the
// parallel engine at 1, 2, and NumCPU workers. Result JSON and every
// world's trace digest must be byte-identical — the golden artifacts
// cannot depend on which engine produced them.
func TestParallelWorldIdentity(t *testing.T) {
	counts := []int{1, 2, runtime.NumCPU()}
	saved := EngineWorkers
	defer func() { EngineWorkers = saved }()
	for _, fig := range parallelFigures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			EngineWorkers = 0
			wantJSON, wantDigests := runCellTraced(t, 1, fig.run)
			if len(wantDigests) == 0 {
				t.Fatal("serial run traced no worlds")
			}
			for _, workers := range counts {
				EngineWorkers = workers
				gotJSON, gotDigests := runCellTraced(t, 1, fig.run)
				if string(gotJSON) != string(wantJSON) {
					t.Errorf("engine workers=%d: JSON diverged from serial engine\n got  %s\n want %s",
						workers, gotJSON, wantJSON)
				}
				if len(gotDigests) != len(wantDigests) {
					t.Fatalf("engine workers=%d: traced %d worlds, serial traced %d",
						workers, len(gotDigests), len(wantDigests))
				}
				for i := range gotDigests {
					if gotDigests[i] != wantDigests[i] {
						t.Errorf("engine workers=%d: world %d digest diverged\n got  %+v\n want %+v",
							workers, i, gotDigests[i], wantDigests[i])
					}
				}
			}
		})
	}
}

// TestParallelMatchesGolden ties the parallel runner back to the
// checked-in golden digests: a parallel Fig. 7 sweep traced through the
// cell-aware hook must reproduce testdata/golden/fig7.json exactly —
// the same bytes the serial legacy-hook harness is held to.
func TestParallelMatchesGolden(t *testing.T) {
	_, got := runCellTraced(t, runtime.NumCPU(), func(w int) (any, error) {
		return Fig7(1, w)
	})
	checkGolden(t, "fig7", got)
}
