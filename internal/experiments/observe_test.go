package experiments

// Observer-neutrality and dip-explanation tests: tracing must never
// move a simulated timestamp, and the exported contention metrics must
// quantitatively account for the Figure 6 1→2 enclave dip.

import (
	"math"
	"reflect"
	"testing"

	"xemem/internal/sim"
	"xemem/internal/sim/trace"
)

// traced runs fn with a metrics-only tracer installed, restoring the
// Observe hook afterwards, and returns the set for inspection.
func traced(fn func() error) (*trace.Set, error) {
	s := trace.NewSet()
	s.SetKeepEvents(false)
	saved := Observe
	Observe = s.Hook()
	defer func() { Observe = saved }()
	return s, fn()
}

// TestTracingDoesNotPerturbFig6 runs the same Figure 6 point bare and
// traced; every simulated output must be bit-identical.
func TestTracingDoesNotPerturbFig6(t *testing.T) {
	bw0, at0, busy0, err := fig6Point(nil, 7, 2, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	var bw1 float64
	var at1, busy1 sim.Time
	s, err := traced(func() error {
		var err error
		bw1, at1, busy1, err = fig6Point(nil, 7, 2, 128, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if bw0 != bw1 || at0 != at1 || busy0 != busy1 {
		t.Errorf("tracing changed fig6 results: (%v,%v,%v) vs (%v,%v,%v)",
			bw0, at0, busy0, bw1, at1, busy1)
	}
	if len(s.Tracers()) != 1 || s.Digests()[0].Spans == 0 {
		t.Errorf("tracer captured nothing: %+v", s.Digests())
	}
}

// TestTracingDoesNotPerturbFig8 does the same for a full composed run.
func TestTracingDoesNotPerturbFig8(t *testing.T) {
	t0, err := fig8Run(nil, 7, KittenLinux, false, true)
	if err != nil {
		t.Fatal(err)
	}
	var t1 sim.Time
	if _, err := traced(func() error {
		var err error
		t1, err = fig8Run(nil, 7, KittenLinux, false, true)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if t0 != t1 {
		t.Errorf("tracing changed fig8 completion: %v vs %v", t0, t1)
	}
}

// TestTracingDoesNotPerturbTable2 compares whole result structs.
func TestTracingDoesNotPerturbTable2(t *testing.T) {
	r0, err := Table2(7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var r1 *Table2Result
	if _, err := traced(func() error {
		var err error
		r1, err = Table2(7, 1, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r0, r1) {
		t.Errorf("tracing changed table2:\n bare   %+v\n traced %+v", r0, r1)
	}
}

// TestFig6Explain is the acceptance criterion: the exported core-0
// funnel wait and coherence metrics must quantitatively explain the
// Figure 6 1→2 enclave latency growth (sum of components ≈ delta).
func TestFig6Explain(t *testing.T) {
	e, err := Fig6Explain(1, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.ObservedDeltaNs <= 0 {
		t.Fatalf("no 1→2 dip observed: %+v", e)
	}
	// The dip must be dominated by contention that only exists with a
	// second enclave: coherence on the shared mm and funnel queueing.
	if e.Coherence2Ns <= e.Coherence1Ns {
		t.Errorf("coherence did not grow: %v → %v", e.Coherence1Ns, e.Coherence2Ns)
	}
	cov := e.Coverage()
	if math.Abs(cov-1) > 0.2 {
		t.Errorf("metrics explain %.1f%% of the dip, want 100±20%%\n%s", 100*cov, e)
	}
}
