package experiments

import (
	"fmt"
	"strings"

	"xemem"
	"xemem/internal/experiments/sweep"
	"xemem/internal/insitu"
	"xemem/internal/proc"
	"xemem/internal/sim"
)

// Fig8Config names the Table 3 enclave configurations.
type Fig8Config string

// Table 3 rows: where the HPC simulation and the analytics program run.
const (
	LinuxLinux   Fig8Config = "Linux/Linux"
	KittenLinux  Fig8Config = "Kitten/Linux"
	KittenVMOnLx Fig8Config = "Kitten/Linux VM (Linux Host)"
	KittenVMOnKt Fig8Config = "Kitten/Linux VM (Kitten Host)"
)

// Fig8Configs lists the configurations in the paper's legend order.
var Fig8Configs = []Fig8Config{LinuxLinux, KittenLinux, KittenVMOnLx, KittenVMOnKt}

// Fig8Cell is one bar of Figure 8: mean ± stddev of the HPC simulation's
// completion time over the runs.
type Fig8Cell struct {
	Config    Fig8Config
	Sync      bool
	Recurring bool
	MeanS     float64
	StdS      float64
}

// Fig8Result holds the regenerated figure (both subfigures).
type Fig8Result struct {
	Runs  int
	Cells []Fig8Cell
}

// Fig8 reproduces §6.4: the composed HPCCG+STREAM benchmark on a single
// node, across the four Table 3 enclave configurations, the
// synchronous/asynchronous execution models, and the one-time/recurring
// attachment models — runs repetitions of each (the paper reports 10).
// Every (configuration, model, repetition) run is one sweep cell with
// its own fixed seed, executed on workers host goroutines (<= 0 selects
// GOMAXPROCS, 1 reproduces the serial runner exactly).
func Fig8(seed uint64, runs, workers int) (*Fig8Result, error) {
	if runs <= 0 {
		runs = 10
	}
	res := &Fig8Result{Runs: runs}
	var cells []sweep.Cell[sim.Time]
	for _, recurring := range []bool{false, true} {
		for _, sync := range []bool{true, false} {
			for _, cfg := range Fig8Configs {
				for r := 0; r < runs; r++ {
					cfg, sync, recurring, r := cfg, sync, recurring, r
					obs := cellObserve(len(cells))
					cells = append(cells, sweep.Cell[sim.Time]{
						Label: fmt.Sprintf("fig8 %s sync=%v rec=%v run %d", cfg, sync, recurring, r),
						Run: func() (sim.Time, error) {
							return fig8Run(obs, seed+uint64(r)*7919, cfg, sync, recurring)
						},
					})
				}
			}
		}
	}
	times, err := sweep.Run(cells, workers)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, recurring := range []bool{false, true} {
		for _, sync := range []bool{true, false} {
			for _, cfg := range Fig8Configs {
				var s sim.Sample
				for r := 0; r < runs; r++ {
					s.AddTime(times[i])
					i++
				}
				res.Cells = append(res.Cells, Fig8Cell{
					Config: cfg, Sync: sync, Recurring: recurring,
					MeanS: s.Mean(), StdS: s.Stddev(),
				})
			}
		}
	}
	return res, nil
}

// fig8Run executes one composed run in a fresh world and returns the HPC
// simulation's completion time.
func fig8Run(obs observeFn, seed uint64, config Fig8Config, sync, recurring bool) (sim.Time, error) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 16 << 30, LinuxCores: 8})
	announce(obs, fmt.Sprintf("fig8/%s/sync=%v/recurring=%v/seed=%d", config, sync, recurring, seed), node.World())
	costs := node.Costs()
	regionBytes := uint64(fig8DataBytes) + 64<<10 // data + control page slack

	var simSide, anSide insitu.Side
	var simModel insitu.ComputeModel
	var anModel insitu.AnalyticsModel
	var simRegion *proc.Region

	switch config {
	case LinuxLinux:
		sp := node.Linux().NewProcess("sim", 1)
		ap := node.Linux().NewProcess("analytics", 2)
		region, err := node.Linux().AllocContiguous(sp, "sim-data", regionBytes/4096, true)
		if err != nil {
			return 0, err
		}
		simSide = insitu.Side{Mod: node.LinuxModule(), Proc: sp, Core: node.Linux().Cores()[1]}
		anSide = insitu.Side{Mod: node.LinuxModule(), Proc: ap, Core: node.Linux().Cores()[2]}
		simModel = linuxSim(fig8IterLinux)
		anModel = nativeAnalytics(costs)
		simRegion = region

	case KittenLinux, KittenVMOnLx, KittenVMOnKt:
		ck, err := node.BootCoKernel("kitten-sim", 2<<30)
		if err != nil {
			return 0, err
		}
		sess, heap, err := node.KittenProcess(ck, "sim", regionBytes)
		if err != nil {
			return 0, err
		}
		simSide = insitu.Side{Mod: ck.Module, Proc: sess.Process(), Core: ck.OS.Core()}
		simModel = kittenSim(fig8IterKitten)
		simRegion = heap

		switch config {
		case KittenLinux:
			ap := node.Linux().NewProcess("analytics", 2)
			anSide = insitu.Side{Mod: node.LinuxModule(), Proc: ap, Core: node.Linux().Cores()[2]}
			anModel = nativeAnalytics(costs)
		case KittenVMOnLx:
			vm, err := node.BootVM("vm-an", 2<<30, 2)
			if err != nil {
				return 0, err
			}
			ap := vm.Guest.NewProcess("analytics", 1)
			anSide = insitu.Side{Mod: vm.Module, Proc: ap, Core: vm.Guest.Cores()[1]}
			anModel = vmAnalytics(costs, vmLinuxHostEff)
		case KittenVMOnKt:
			ckHost, err := node.BootCoKernel("kitten-host", 3<<30)
			if err != nil {
				return 0, err
			}
			vm, err := node.BootVMOnCoKernel("vm-an", ckHost, 2<<30, 2)
			if err != nil {
				return 0, err
			}
			ap := vm.Guest.NewProcess("analytics", 1)
			anSide = insitu.Side{Mod: vm.Module, Proc: ap, Core: vm.Guest.Cores()[1]}
			anModel = vmAnalytics(costs, vmKittenHostEff)
		}
	default:
		return 0, fmt.Errorf("unknown config %q", config)
	}

	cfg := insitu.Config{
		Sync: sync, Recurring: recurring,
		Iters: fig8Iters, SignalEvery: fig8SignalEvery,
		DataBytes: fig8DataBytes,
		CtrlName:  "fig8-ctrl",
		SameOS:    config == LinuxLinux,
	}
	get, err := insitu.Run(node.World(), cfg, simSide, simModel, anSide, anModel, simRegion)
	if err != nil {
		return 0, err
	}
	if err := node.Run(); err != nil {
		return 0, err
	}
	return get().SimTime, nil
}

// Fig8Single runs one configuration/workflow combination (a single
// Figure 8 bar) with the given repetitions — the backing for the
// xemem-insitu command. Repetitions are independent sweep cells.
func Fig8Single(seed uint64, cfg Fig8Config, sync, recurring bool, runs, workers int) (Fig8Cell, error) {
	if runs <= 0 {
		runs = 1
	}
	cells := make([]sweep.Cell[sim.Time], runs)
	for r := 0; r < runs; r++ {
		r := r
		obs := cellObserve(r)
		cells[r] = sweep.Cell[sim.Time]{
			Label: fmt.Sprintf("fig8 %s sync=%v rec=%v run %d", cfg, sync, recurring, r),
			Run: func() (sim.Time, error) {
				return fig8Run(obs, seed+uint64(r)*7919, cfg, sync, recurring)
			},
		}
	}
	times, err := sweep.Run(cells, workers)
	if err != nil {
		return Fig8Cell{}, err
	}
	var s sim.Sample
	for _, t := range times {
		s.AddTime(t)
	}
	return Fig8Cell{Config: cfg, Sync: sync, Recurring: recurring, MeanS: s.Mean(), StdS: s.Stddev()}, nil
}

// Cell fetches one bar.
func (r *Fig8Result) Cell(cfg Fig8Config, sync, recurring bool) Fig8Cell {
	for _, c := range r.Cells {
		if c.Config == cfg && c.Sync == sync && c.Recurring == recurring {
			return c
		}
	}
	return Fig8Cell{}
}

// String renders both subfigures.
func (r *Fig8Result) String() string {
	var b strings.Builder
	for _, recurring := range []bool{false, true} {
		sub, model := "(a)", "one-time shared memory attachment model"
		if recurring {
			sub, model = "(b)", "recurring shared memory attachment model"
		}
		fmt.Fprintf(&b, "Figure 8%s: single-node in situ benchmark, %s (%d runs)\n", sub, model, r.Runs)
		fmt.Fprintf(&b, "%-32s %22s %22s\n", "Configuration", "Synchronous", "Asynchronous")
		for _, cfg := range Fig8Configs {
			s := r.Cell(cfg, true, recurring)
			as := r.Cell(cfg, false, recurring)
			fmt.Fprintf(&b, "%-32s %13.1f ± %4.1f s %13.1f ± %4.1f s\n",
				cfg, s.MeanS, s.StdS, as.MeanS, as.StdS)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
