package experiments

// Shape tests: each experiment must reproduce the qualitative result the
// paper reports — who wins, by roughly what factor, where crossovers fall.
// Repetition counts are reduced (the simulator is deterministic, so
// repetitions only average injected noise); the full counts run in the
// benchmark harness.

import (
	"testing"
)

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(1, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Attach ≈ 13 GB/s, flat across sizes.
		if row.AttachGBs < 11 || row.AttachGBs > 15 {
			t.Errorf("%d MB attach = %.2f GB/s, want ≈13", row.SizeMB, row.AttachGBs)
		}
		// Attach+read just below attach.
		if row.AttachReadGBs >= row.AttachGBs {
			t.Errorf("%d MB attach+read %.2f not below attach %.2f", row.SizeMB, row.AttachReadGBs, row.AttachGBs)
		}
		if row.AttachReadGBs < 10.5 {
			t.Errorf("%d MB attach+read = %.2f GB/s, want ≈12", row.SizeMB, row.AttachReadGBs)
		}
		// RDMA ≈ 3.4 GB/s: shared memory wins by ≈4x.
		if row.RDMAGBs < 2.8 || row.RDMAGBs > 4 {
			t.Errorf("%d MB rdma = %.2f GB/s, want ≈3.4", row.SizeMB, row.RDMAGBs)
		}
		if row.AttachGBs < 3*row.RDMAGBs {
			t.Errorf("%d MB: attach %.2f not ≈4x RDMA %.2f", row.SizeMB, row.AttachGBs, row.RDMAGBs)
		}
	}
	// Flat in size: extremes within 5%.
	lo, hi := res.Rows[0].AttachGBs, res.Rows[len(res.Rows)-1].AttachGBs
	if hi < lo*0.95 || hi > lo*1.05 {
		t.Errorf("attach not flat in size: %.2f vs %.2f", lo, hi)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(1, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, szMB := range []int{128, 256, 512, 1024} {
		one := res.cell(1, szMB)
		two := res.cell(2, szMB)
		four := res.cell(4, szMB)
		eight := res.cell(8, szMB)
		// A slight dip from 1 to 2 enclaves (§5.3)...
		if two >= one {
			t.Errorf("%d MB: no 1→2 dip (%.2f → %.2f)", szMB, one, two)
		}
		if two < 0.8*one {
			t.Errorf("%d MB: dip too deep (%.2f → %.2f)", szMB, one, two)
		}
		// ...then good scaling beyond 2: within 5% of the 2-enclave rate.
		for _, v := range []float64{four, eight} {
			if v < two*0.95 || v > two*1.05 {
				t.Errorf("%d MB: scaling beyond 2 not flat: 2=%.2f, got %.2f", szMB, two, v)
			}
		}
	}
	// The IPI funnel really concentrates on core 0: busier with more
	// enclaves.
	if res.Core0Busy[8] <= res.Core0Busy[1] {
		t.Errorf("core-0 busy did not grow with enclaves: %v vs %v", res.Core0Busy[8], res.Core0Busy[1])
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	native, vmAttach, vmExport := res.Rows[0], res.Rows[1], res.Rows[2]
	// Native ≈ 13 GB/s.
	if native.GBs < 11 || native.GBs > 15 {
		t.Errorf("native = %.2f GB/s", native.GBs)
	}
	// Guest attachment ≈ 3x slower than native (paper: 12.8 vs 3.99).
	ratio := native.GBs / vmAttach.GBs
	if ratio < 2.4 || ratio > 4 {
		t.Errorf("VM attach slowdown = %.2fx, want ≈3x (%.2f vs %.2f)", ratio, native.GBs, vmAttach.GBs)
	}
	// Removing rb-tree insert time roughly doubles it (3.99 → 8.79).
	if vmAttach.NoRBTreeGBs < 1.8*vmAttach.GBs || vmAttach.NoRBTreeGBs > 3*vmAttach.GBs {
		t.Errorf("w/o rb-tree = %.2f, want ≈2.2x of %.2f", vmAttach.NoRBTreeGBs, vmAttach.GBs)
	}
	// The rb-tree updates dominate: ≥60% of the difference (paper: ~80%).
	// Guest-export direction stays near native (12.6).
	if vmExport.GBs < 0.9*native.GBs || vmExport.GBs > 1.05*native.GBs {
		t.Errorf("guest-export = %.2f, want ≈native %.2f", vmExport.GBs, native.GBs)
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	for _, p := range res.Phases {
		base := p.Class("hw-baseline")
		smi := p.Class("smi")
		att := p.Class("xemem-attach")
		if base.Count < 3000 {
			t.Errorf("%s: baseline count = %d", p.Size, base.Count)
		}
		if base.AvgUS < 9 || base.AvgUS > 16 {
			t.Errorf("%s: baseline avg = %.1f us, want ≈12", p.Size, base.AvgUS)
		}
		if smi.Count < 5 || smi.AvgUS < 100 || smi.AvgUS > 250 {
			t.Errorf("%s: smi profile off: %+v", p.Size, smi)
		}
		if att.Count != 10 {
			t.Errorf("%s: attach detours = %d, want 10", p.Size, att.Count)
		}
		switch p.Size {
		case "4KB":
			// Indistinguishable from the baseline band.
			if att.AvgUS > 2.5*base.AvgUS {
				t.Errorf("4KB attach detours (%.1f us) should hide in the baseline (%.1f us)", att.AvgUS, base.AvgUS)
			}
		case "2MB":
			// Noticeable, but below the SMI band.
			if att.AvgUS <= base.AvgUS || att.AvgUS >= smi.AvgUS {
				t.Errorf("2MB attach detours (%.1f us) not between baseline (%.1f) and SMIs (%.1f)", att.AvgUS, base.AvgUS, smi.AvgUS)
			}
		case "1GB":
			// Two orders of magnitude above everything else: ≈23 ms.
			if att.AvgUS < 15000 || att.AvgUS > 40000 {
				t.Errorf("1GB attach detours = %.1f us, want ≈23000", att.AvgUS)
			}
			if att.AvgUS < 50*smi.AvgUS {
				t.Errorf("1GB detours (%.1f us) not 2 orders above SMIs (%.1f us)", att.AvgUS, smi.AvgUS)
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("composed benchmark sweep")
	}
	res, err := Fig8(1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, recurring := range []bool{false, true} {
		// Sync is slower than async for every configuration.
		for _, cfg := range Fig8Configs {
			s, as := res.Cell(cfg, true, recurring), res.Cell(cfg, false, recurring)
			if s.MeanS <= as.MeanS {
				t.Errorf("rec=%v %s: sync %.1f not slower than async %.1f", recurring, cfg, s.MeanS, as.MeanS)
			}
			// All runs land in the paper's 135–165 s band.
			if s.MeanS < 135 || s.MeanS > 165 {
				t.Errorf("rec=%v %s sync = %.1f s outside the paper's band", recurring, cfg, s.MeanS)
			}
		}
		// Kitten/Linux wins under both execution models.
		for _, sync := range []bool{true, false} {
			best := res.Cell(KittenLinux, sync, recurring).MeanS
			for _, cfg := range Fig8Configs {
				if cfg == KittenLinux {
					continue
				}
				if res.Cell(cfg, sync, recurring).MeanS < best {
					t.Errorf("rec=%v sync=%v: %s beat Kitten/Linux", recurring, sync, cfg)
				}
			}
		}
		// Async: every Kitten-simulation configuration beats Linux-only.
		lo := res.Cell(LinuxLinux, false, recurring).MeanS
		for _, cfg := range []Fig8Config{KittenLinux, KittenVMOnLx, KittenVMOnKt} {
			if res.Cell(cfg, false, recurring).MeanS >= lo {
				t.Errorf("rec=%v async: %s (%.1f) not faster than Linux-only (%.1f)",
					recurring, cfg, res.Cell(cfg, false, recurring).MeanS, lo)
			}
		}
		// Multi-enclave configurations are more consistent than Linux-only.
		loStd := res.Cell(LinuxLinux, true, recurring).StdS
		for _, cfg := range []Fig8Config{KittenLinux, KittenVMOnLx, KittenVMOnKt} {
			if res.Cell(cfg, true, recurring).StdS >= loStd {
				t.Errorf("rec=%v: %s variance (%.2f) not below Linux-only (%.2f)",
					recurring, cfg, res.Cell(cfg, true, recurring).StdS, loStd)
			}
		}
	}
	// Sync: native analytics beats virtualized, Palacios-on-Linux worst
	// of the VM pair (§6.4).
	for _, recurring := range []bool{false, true} {
		kl := res.Cell(KittenLinux, true, recurring).MeanS
		lh := res.Cell(KittenVMOnLx, true, recurring).MeanS
		kh := res.Cell(KittenVMOnKt, true, recurring).MeanS
		if !(kl < kh && kh < lh) {
			t.Errorf("rec=%v sync VM ordering: native %.1f, kitten-host %.1f, linux-host %.1f", recurring, kl, kh, lh)
		}
	}
	// Recurring+sync is the worst case for the virtualized enclaves.
	for _, cfg := range []Fig8Config{KittenVMOnLx, KittenVMOnKt} {
		if res.Cell(cfg, true, true).MeanS <= res.Cell(cfg, true, false).MeanS {
			t.Errorf("%s: recurring sync not worse than one-time sync", cfg)
		}
	}
	// Linux-only also suffers in the recurring model, with more variance.
	if res.Cell(LinuxLinux, true, true).MeanS <= res.Cell(LinuxLinux, true, false).MeanS {
		t.Error("Linux-only recurring sync not worse than one-time")
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node sweep")
	}
	res, err := Fig9(1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, recurring := range []bool{false, true} {
		// Multi-enclave scales flat: ≤2% growth 1→8 nodes.
		m1 := res.Cell(1, true, recurring).MeanS
		m8 := res.Cell(8, true, recurring).MeanS
		if m8 > m1*1.02 {
			t.Errorf("rec=%v: multi-enclave grew %.1f → %.1f", recurring, m1, m8)
		}
		// Linux-only degrades steadily: ≥7% growth 1→8 nodes.
		l1 := res.Cell(1, false, recurring).MeanS
		l8 := res.Cell(8, false, recurring).MeanS
		if l8 < l1*1.07 {
			t.Errorf("rec=%v: Linux-only did not degrade (%.1f → %.1f)", recurring, l1, l8)
		}
		// At 8 nodes the multi-enclave configuration clearly wins.
		if m8 >= l8 {
			t.Errorf("rec=%v: multi-enclave (%.1f) not faster at 8 nodes (%.1f)", recurring, m8, l8)
		}
		// Everything stays inside the paper's 42–54 s band.
		for _, c := range res.Cells {
			if c.Recurring == recurring && (c.MeanS < 41 || c.MeanS > 55) {
				t.Errorf("cell %+v outside band", c)
			}
		}
	}
	// Linux-only is competitive at a single node (the §7.2 observation:
	// in the recurring model it outperforms; we require parity within
	// noise).
	l1 := res.Cell(1, false, true)
	m1 := res.Cell(1, true, true)
	if l1.MeanS > m1.MeanS+2*l1.StdS+1 {
		t.Errorf("recurring 1-node: Linux-only (%.1f±%.1f) far above multi-enclave (%.1f)", l1.MeanS, l1.StdS, m1.MeanS)
	}
}
