package experiments

// The recipe registry names the experiment builders a repro bundle (or a
// snapshot image) can re-run without out-of-band knowledge: a recipe is
// (name, JSON parameter blob, seed) → one deterministic world, executed
// to completion. The obs hook is announced to the world exactly as the
// sweep runners do it, which is where a replay attaches its tracer and
// checkpoint.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// recipeFn runs one recipe world to completion. params is the recipe's
// JSON parameter blob (nil selects the recipe's defaults); obs is
// announced to the world right after construction.
type recipeFn func(params json.RawMessage, seed uint64, obs observeFn) error

// decodeParams unmarshals params into dst (which arrives holding the
// recipe's defaults), rejecting unknown fields so a typo'd bundle fails
// loudly instead of silently running the default.
func decodeParams(params json.RawMessage, dst any) error {
	if len(params) == 0 {
		return nil
	}
	dec := json.NewDecoder(strings.NewReader(string(params)))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// recipes is the registry. Every entry must be deterministic in (params,
// seed): same inputs, same trace digest — that determinism is what a
// repro bundle verifies.
var recipes = map[string]recipeFn{
	"fig5": func(params json.RawMessage, seed uint64, obs observeFn) error {
		p := struct {
			SizesMB []int `json:"sizes_mb"`
			Reps    int   `json:"reps"`
		}{SizesMB: []int{128, 256}, Reps: 2}
		if err := decodeParams(params, &p); err != nil {
			return err
		}
		_, err := fig5Attach(obs, seed, p.SizesMB, p.Reps)
		return err
	},
	"fig7": func(params json.RawMessage, seed uint64, obs observeFn) error {
		p := struct {
			Size string `json:"size"`
		}{Size: "2MB"}
		if err := decodeParams(params, &p); err != nil {
			return err
		}
		bytes, ok := map[string]uint64{"4KB": 4 << 10, "2MB": 2 << 20, "1GB": 1 << 30}[p.Size]
		if !ok {
			return fmt.Errorf("fig7 recipe: unknown size %q (have 4KB, 2MB, 1GB)", p.Size)
		}
		_, err := fig7Phase(obs, seed, p.Size, bytes)
		return err
	},
	"table2": func(params json.RawMessage, seed uint64, obs observeFn) error {
		p := struct {
			Pairing string `json:"pairing"`
			Reps    int    `json:"reps"`
		}{Pairing: "kitten-to-linux", Reps: 2}
		if err := decodeParams(params, &p); err != nil {
			return err
		}
		const bytes = 1 << 30
		var err error
		switch p.Pairing {
		case "kitten-to-linux":
			_, err = table2KittenToLinux(obs, seed, bytes, p.Reps)
		case "kitten-to-vm":
			_, err = table2KittenToVM(obs, seed, bytes, p.Reps)
		case "vm-to-kitten":
			_, err = table2VMToKitten(obs, seed, bytes, p.Reps)
		default:
			return fmt.Errorf("table2 recipe: unknown pairing %q", p.Pairing)
		}
		return err
	},
	"fig9": func(params json.RawMessage, seed uint64, obs observeFn) error {
		p := struct {
			Nodes     int  `json:"nodes"`
			Multi     bool `json:"multi_enclave"`
			Recurring bool `json:"recurring"`
		}{Nodes: 2, Multi: true, Recurring: true}
		if err := decodeParams(params, &p); err != nil {
			return err
		}
		_, err := fig9Run(obs, seed, p.Nodes, p.Multi, p.Recurring)
		return err
	},
	"fig6point": func(params json.RawMessage, seed uint64, obs observeFn) error {
		p := struct {
			Enclaves int `json:"enclaves"`
			SizeMB   int `json:"size_mb"`
			Reps     int `json:"reps"`
		}{Enclaves: 2, SizeMB: 128, Reps: 2}
		if err := decodeParams(params, &p); err != nil {
			return err
		}
		_, _, _, err := fig6Point(obs, seed, p.Enclaves, p.SizeMB, p.Reps)
		return err
	},
	"fig8": func(params json.RawMessage, seed uint64, obs observeFn) error {
		p := struct {
			Config    string `json:"config"`
			Sync      bool   `json:"sync"`
			Recurring bool   `json:"recurring"`
		}{Config: string(KittenLinux), Sync: true}
		if err := decodeParams(params, &p); err != nil {
			return err
		}
		cfg := Fig8Config(p.Config)
		valid := false
		for _, c := range Fig8Configs {
			valid = valid || c == cfg
		}
		if !valid {
			return fmt.Errorf("fig8 recipe: unknown config %q", p.Config)
		}
		_, err := fig8Run(obs, seed, cfg, p.Sync, p.Recurring)
		return err
	},
	"fault": func(params json.RawMessage, seed uint64, obs observeFn) error {
		p := struct {
			Drop   float64 `json:"drop"`
			Crash  bool    `json:"crash"`
			Rounds int     `json:"rounds"`
		}{Drop: 0.05, Rounds: 20}
		if err := decodeParams(params, &p); err != nil {
			return err
		}
		_, err := faultRun(obs, seed, p.Drop, p.Crash, p.Rounds)
		return err
	},
	"cluster": func(params json.RawMessage, seed uint64, obs observeFn) error {
		p := struct {
			Nodes  int  `json:"nodes"`
			Shards int  `json:"shards"`
			Churn  bool `json:"churn"`
			Rounds int  `json:"rounds"`
		}{Nodes: 4, Shards: 2, Rounds: 24}
		if err := decodeParams(params, &p); err != nil {
			return err
		}
		_, err := clusterRun(obs, seed, p.Nodes, p.Shards, p.Churn, p.Rounds, 0)
		return err
	},
}

// RecipeNames lists the registered recipe names, sorted, for usage text.
func RecipeNames() string {
	names := make([]string, 0, len(recipes))
	for n := range recipes {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
