package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"xemem"
	"xemem/internal/coll"
	"xemem/internal/experiments/sweep"
	"xemem/internal/pagetable"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
)

// Collective sweep geometry: six ranks (one process per enclave) on the
// default 2×2 locality grid, crossed over hierarchy depth × enclave mix
// × message size × data plane. Iterations run from a cold communicator,
// so the first broadcast carries the export/attach setup and the
// registration-cache misses; the warm numbers show what the attacher-
// side cache amortizes away.
const (
	collBufBytes = 64 << 10
	collChunk    = 16 << 10
	collIters    = 4
)

// CollSizes straddle the 32 KB zero-copy/CICO switchover.
var CollSizes = []uint64{4 << 10, 64 << 10}

// CollMixes are the enclave compositions swept: a uniform co-kernel job
// and the composed co-kernel/VM shape of the paper.
var CollMixes = map[string]string{
	"uniform": "kitten,kitten,kitten,kitten,kitten,kitten",
	"mixed":   "kitten,kitten,kitten,kitten,vm,vm",
}

// collLevels maps sweep depth to the hierarchy run at that depth.
func collLevels(depth int) []xemem.Level {
	switch depth {
	case 1:
		return []xemem.Level{xemem.LevelFlat}
	case 2:
		return []xemem.Level{xemem.LevelNUMA, xemem.LevelFlat}
	default:
		return xemem.DefaultLevels
	}
}

func collModeName(m coll.Mode) string {
	if m == coll.ModeCICO {
		return "cico"
	}
	return "zero-copy"
}

// CollLevelStat attributes collective time to one hierarchy level: the
// virtual time and event count of every coll-* trace op at that level
// (copies, CICO transfers, reductions, flag syncs).
type CollLevelStat struct {
	Level string `json:"level"` // e.g. "L0-numa"
	Ops   uint64 `json:"ops"`
	Ns    int64  `json:"ns"`
}

// CollCell is one (depth, mix, bytes, plane) point of the sweep.
type CollCell struct {
	Depth int    `json:"depth"`
	Mix   string `json:"mix"`
	Bytes uint64 `json:"bytes"`
	Mode  string `json:"mode"`

	// ColdBcastNs is iteration 0 (setup + registration-cache misses);
	// BcastNs and AllreduceNs average the warm iterations. Each
	// iteration's latency is the slowest rank's wall time through the
	// call — the canonical root does no work in a zero-copy broadcast,
	// so a single rank's clock would under-report.
	ColdBcastNs int64 `json:"cold_bcast_ns"`
	BcastNs     int64 `json:"bcast_ns"`
	AllreduceNs int64 `json:"allreduce_ns"`

	// Attacher-side registration-cache counters summed over every rank.
	RegHits          uint64 `json:"reg_hits"`
	RegMisses        uint64 `json:"reg_misses"`
	RegInvalidations uint64 `json:"reg_invalidations"`

	Levels []CollLevelStat `json:"levels"`
	Digest string          `json:"digest"`
}

// CollCrossover summarizes the switchover claim on the deepest uniform
// hierarchy: CICO wins below the switchover (attach latency dominates),
// zero-copy wins above it (the second copy dominates).
type CollCrossover struct {
	SmallZCNs     int64 `json:"small_zc_ns"`
	SmallCICONs   int64 `json:"small_cico_ns"`
	LargeZCNs     int64 `json:"large_zc_ns"`
	LargeCICONs   int64 `json:"large_cico_ns"`
	CICOWinsSmall bool  `json:"cico_wins_small"`
	ZCWinsLarge   bool  `json:"zc_wins_large"`
}

// CollSweepResult is the regenerated collective sweep (BENCH_coll.json).
type CollSweepResult struct {
	Host      HostInfo       `json:"host"`
	Seed      uint64         `json:"seed"`
	Ranks     int            `json:"ranks"`
	Iters     int            `json:"iters"`
	Sizes     []uint64       `json:"sizes"`
	Cells     []CollCell     `json:"cells"`
	Crossover CollCrossover  `json:"crossover"`
	Engine    EngineIdentity `json:"engine_identity"`
}

// CollSweep runs the hierarchical-collective sweep: hierarchy depth
// {1,2,3} × enclave mix {uniform, mixed} × message size across the
// switchover × forced data plane {zero-copy, CICO}, each cell a closed
// world. The result is a pure function of seed: rerunning writes a
// byte-identical BENCH_coll.json at any sweep worker count. When
// jsonPath is non-empty the result is written there as JSON.
func CollSweep(seed uint64, workers int, jsonPath string) (*CollSweepResult, error) {
	res := &CollSweepResult{
		Host: CaptureHost(), Seed: seed, Ranks: 6, Iters: collIters, Sizes: CollSizes,
	}
	mixes := []string{"uniform", "mixed"}
	var cells []sweep.Cell[CollCell]
	for _, depth := range []int{1, 2, 3} {
		for _, mix := range mixes {
			for _, bytes := range CollSizes {
				for _, mode := range []coll.Mode{coll.ModeZeroCopy, coll.ModeCICO} {
					depth, mix, bytes, mode := depth, mix, bytes, mode
					obs := cellObserve(len(cells))
					cells = append(cells, sweep.Cell[CollCell]{
						Label: fmt.Sprintf("coll depth=%d mix=%s bytes=%d mode=%s", depth, mix, bytes, collModeName(mode)),
						Run: func() (CollCell, error) {
							return collRun(obs, seed, depth, mix, bytes, mode, 0)
						},
					})
				}
			}
		}
	}
	out, err := sweep.Run(cells, workers)
	if err != nil {
		return nil, err
	}
	res.Cells = out

	for _, c := range out {
		if c.Mix != "uniform" || c.Depth != 3 {
			continue
		}
		small, large := c.Bytes == CollSizes[0], c.Bytes == CollSizes[len(CollSizes)-1]
		switch {
		case small && c.Mode == "zero-copy":
			res.Crossover.SmallZCNs = c.BcastNs
		case small && c.Mode == "cico":
			res.Crossover.SmallCICONs = c.BcastNs
		case large && c.Mode == "zero-copy":
			res.Crossover.LargeZCNs = c.BcastNs
		case large && c.Mode == "cico":
			res.Crossover.LargeCICONs = c.BcastNs
		}
	}
	res.Crossover.CICOWinsSmall = res.Crossover.SmallCICONs < res.Crossover.SmallZCNs
	res.Crossover.ZCWinsLarge = res.Crossover.LargeZCNs < res.Crossover.LargeCICONs

	// Engine-identity probe on the deepest mixed cell: the conservative
	// parallel engine must replay the serial event stream bit for bit.
	ser, err := collRun(nil, seed, 3, "mixed", CollSizes[len(CollSizes)-1], coll.ModeZeroCopy, 1)
	if err != nil {
		return nil, err
	}
	par, err := collRun(nil, seed, 3, "mixed", CollSizes[len(CollSizes)-1], coll.ModeZeroCopy, 2)
	if err != nil {
		return nil, err
	}
	res.Engine = EngineIdentity{
		Label: "coll/depth=3/mix=mixed/zc", SerialDigest: ser.Digest, ParallelDigest: par.Digest,
		Match: ser.Digest == par.Digest,
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// collRun executes one collective-sweep cell in a fresh world.
// forceWorkers selects the engine-identity probe path exactly as in
// clusterRun: 0 announces normally, 1 forces serial, >1 forces the
// parallel engine.
func collRun(obs observeFn, seed uint64, depth int, mix string, bytes uint64, mode coll.Mode, forceWorkers int) (CollCell, error) {
	cell := CollCell{Depth: depth, Mix: mix, Bytes: bytes, Mode: collModeName(mode)}
	label := fmt.Sprintf("coll/d=%d/%s/b=%d/%s", depth, mix, bytes, cell.Mode)
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 8 << 30})
	w := node.World()
	switch {
	case forceWorkers > 1:
		w.SetParallel(forceWorkers)
	case forceWorkers == 0:
		announce(obs, label, w)
	}
	tr, ok := w.Observer().(*trace.Tracer)
	if !ok {
		tr = trace.NewTracer(label)
		tr.SetKeepEvents(false)
		w.SetObserver(tr)
	}

	topo, err := xemem.ParseTopology(CollMixes[mix])
	if err != nil {
		return cell, err
	}
	topo.KittenBytes = 128 << 20
	topo.VMBytes = 128 << 20
	encl, err := topo.Build(node)
	if err != nil {
		return cell, err
	}
	levels := collLevels(depth)
	scratchCap := uint64(collChunk * len(encl) * len(levels))
	members := make([]coll.Member, 0, len(encl))
	for i, e := range encl {
		name := fmt.Sprintf("rank%d", i)
		m := coll.Member{Loc: e.Loc}
		if e.Kitten != nil {
			s, heap, err := node.KittenProcess(e.Kitten, name, collBufBytes+scratchCap)
			if err != nil {
				return cell, err
			}
			m.Sess, m.Buf = s, heap.Base
		} else {
			s, p := node.GuestProcess(e.VM, name, 0)
			region, err := xemem.AllocLinux(e.VM.Guest, p, name+"-buf", collBufBytes+scratchCap, true)
			if err != nil {
				return cell, err
			}
			m.Sess, m.Buf = s, region.Base
		}
		m.Scratch = m.Buf + pagetable.VA(collBufBytes)
		data := make([]byte, collBufBytes)
		for j := range data {
			data[j] = byte((i + 1) * (j + 7))
		}
		if _, err := m.Sess.Write(m.Buf, data); err != nil {
			return cell, err
		}
		members = append(members, m)
	}
	comm, err := coll.New(members, collBufBytes, coll.Opts{
		ChunkBytes: collChunk, Levels: levels, Mode: mode})
	if err != nil {
		return cell, err
	}

	// Per rank × iteration latencies; the iteration's cost is the slowest
	// rank's (collectives complete when the last rank is done). Errors
	// are kept per rank so one failure cannot shadow another's.
	nr := len(members)
	rankErr := make([]error, nr)
	bcastRank := make([]int64, collIters*nr)
	arRank := make([]int64, collIters*nr)
	for r := range members {
		r := r
		node.Spawn(fmt.Sprintf("rank%d", r), func(a *sim.Actor) {
			for it := 0; it < collIters; it++ {
				if err := comm.Barrier(a, r); err != nil {
					rankErr[r] = err
					return
				}
				t0 := a.Now()
				if err := comm.Bcast(a, r, 0, bytes); err != nil {
					rankErr[r] = err
					return
				}
				bcastRank[it*nr+r] = int64(a.Now() - t0)
				if err := comm.Barrier(a, r); err != nil {
					rankErr[r] = err
					return
				}
				t0 = a.Now()
				if err := comm.Allreduce(a, r, bytes); err != nil {
					rankErr[r] = err
					return
				}
				arRank[it*nr+r] = int64(a.Now() - t0)
			}
			rankErr[r] = comm.Close(a, r)
		})
	}
	if err := node.Run(); err != nil {
		return cell, err
	}
	for r, err := range rankErr {
		if err != nil {
			return cell, fmt.Errorf("rank %d: %w", r, err)
		}
	}

	bcastNs := make([]int64, collIters)
	arNs := make([]int64, collIters)
	for it := 0; it < collIters; it++ {
		for r := 0; r < nr; r++ {
			if v := bcastRank[it*nr+r]; v > bcastNs[it] {
				bcastNs[it] = v
			}
			if v := arRank[it*nr+r]; v > arNs[it] {
				arNs[it] = v
			}
		}
	}

	cell.ColdBcastNs = bcastNs[0]
	var bSum, aSum int64
	for it := 1; it < collIters; it++ {
		bSum += bcastNs[it]
		aSum += arNs[it]
	}
	cell.BcastNs = bSum / int64(collIters-1)
	cell.AllreduceNs = aSum / int64(collIters-1)

	for _, m := range members {
		s := m.Sess.RegCacheStats()
		cell.RegHits += s.Hits
		cell.RegMisses += s.Misses
		cell.RegInvalidations += s.Invalidations
	}
	for l, lv := range levels {
		st := CollLevelStat{Level: fmt.Sprintf("L%d-%s", l, lv)}
		for _, kind := range []string{"coll-copy", "coll-cico-in", "coll-cico-out", "coll-reduce", "coll-sync"} {
			op := tr.Op(fmt.Sprintf("%s:L%d-%s", kind, l, lv))
			st.Ops += op.Count
			st.Ns += int64(op.Time)
		}
		cell.Levels = append(cell.Levels, st)
	}
	cell.Digest = tr.Digest().SHA256
	return cell, nil
}

// String renders the sweep for the terminal.
func (r *CollSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Collective sweep: %d ranks, %d iterations from cold, seed %d\n", r.Ranks, r.Iters, r.Seed)
	fmt.Fprintf(&b, "%-6s %-8s %-7s %-10s %12s %12s %12s %6s %6s\n",
		"depth", "mix", "bytes", "mode", "cold bcast", "warm bcast", "allreduce", "hits", "miss")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-6d %-8s %-7d %-10s %10.1fµs %10.1fµs %10.1fµs %6d %6d\n",
			c.Depth, c.Mix, c.Bytes, c.Mode,
			float64(c.ColdBcastNs)/1e3, float64(c.BcastNs)/1e3, float64(c.AllreduceNs)/1e3,
			c.RegHits, c.RegMisses)
	}
	x := r.Crossover
	fmt.Fprintf(&b, "switchover (uniform, depth 3): %dB cico %.1fµs vs zc %.1fµs (cico wins: %v); %dB zc %.1fµs vs cico %.1fµs (zc wins: %v)\n",
		r.Sizes[0], float64(x.SmallCICONs)/1e3, float64(x.SmallZCNs)/1e3, x.CICOWinsSmall,
		r.Sizes[len(r.Sizes)-1], float64(x.LargeZCNs)/1e3, float64(x.LargeCICONs)/1e3, x.ZCWinsLarge)
	fmt.Fprintf(&b, "engine identity (%s): serial=parallel %v\n", r.Engine.Label, r.Engine.Match)
	return b.String()
}
