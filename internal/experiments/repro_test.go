package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestReplayBundle replays every checked-in repro bundle: the bundles
// under testdata/repro pin (snapshot hash, trace digest) pairs that
// every commit must reproduce bit-exactly — the CI `make replay` step
// runs the same verification through the xemem-bench CLI.
func TestReplayBundle(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "repro", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no repro bundles under testdata/repro")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var b Bundle
			if err := json.Unmarshal(buf, &b); err != nil {
				t.Fatal(err)
			}
			if err := RunBundle(&b); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReplayBundleDetectsDrift corrupts each fingerprint of a freshly
// captured bundle: a replay must fail loudly when either the mid-run
// snapshot hash or the end-of-run digest no longer matches.
func TestReplayBundleDetectsDrift(t *testing.T) {
	b, err := CaptureBundle("fig6point", json.RawMessage(`{"size_mb":128,"reps":2}`), 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunBundle(b); err != nil {
		t.Fatalf("pristine bundle failed to replay: %v", err)
	}

	tampered := *b
	tampered.SnapshotSHA256 = "0000000000000000000000000000000000000000000000000000000000000000"
	if err := RunBundle(&tampered); err == nil {
		t.Error("replay accepted a bundle with a corrupted snapshot hash")
	}

	tampered = *b
	tampered.Digest.Dispatches++
	if err := RunBundle(&tampered); err == nil {
		t.Error("replay accepted a bundle with a corrupted trace digest")
	}
}
