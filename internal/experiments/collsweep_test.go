package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCollSweepDeterministic is the acceptance gate for the collective
// sweep: a fixed seed produces a byte-identical BENCH_coll.json across
// reruns and worker counts; zero-copy beats CICO above the switchover
// on the deepest hierarchy (and CICO wins below it); the registration
// cache turns first-iteration misses into warm hits; per-level
// attribution actually lands time on every hierarchy tier; and the
// conservative parallel engine reproduces the serial digest.
func TestCollSweepDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")

	r1, err := CollSweep(1234, 1, p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CollSweep(1234, 4, p2)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("BENCH_coll.json differs across worker counts:\n%s\nvs\n%s", b1, b2)
	}
	for i := range r1.Cells {
		if r1.Cells[i].Digest != r2.Cells[i].Digest || r1.Cells[i].Digest == "" {
			t.Fatalf("cell %d digest differs or empty: %q vs %q", i, r1.Cells[i].Digest, r2.Cells[i].Digest)
		}
	}

	var back CollSweepResult
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("BENCH_coll.json does not parse: %v", err)
	}
	if want := 3 * 2 * len(CollSizes) * 2; len(back.Cells) != want {
		t.Fatalf("sweep has %d cells, want %d", len(back.Cells), want)
	}

	// The headline switchover claim on the deepest uniform hierarchy.
	if !r1.Crossover.ZCWinsLarge {
		t.Errorf("zero-copy does not beat CICO above the switchover: zc %dns vs cico %dns",
			r1.Crossover.LargeZCNs, r1.Crossover.LargeCICONs)
	}
	if !r1.Crossover.CICOWinsSmall {
		t.Errorf("CICO does not beat zero-copy below the switchover: cico %dns vs zc %dns",
			r1.Crossover.SmallCICONs, r1.Crossover.SmallZCNs)
	}
	if !r1.Engine.Match {
		t.Errorf("parallel engine diverged from serial on %s: %s vs %s",
			r1.Engine.Label, r1.Engine.SerialDigest, r1.Engine.ParallelDigest)
	}

	for _, c := range r1.Cells {
		if c.ColdBcastNs <= 0 || c.BcastNs <= 0 || c.AllreduceNs <= 0 {
			t.Errorf("cell %+v measured no time", c)
		}
		if c.Mode == "zero-copy" && c.Depth > 1 {
			// The attacher-side cache: misses only on first appearance,
			// warm iterations all hit.
			if c.RegMisses == 0 || c.RegHits <= c.RegMisses {
				t.Errorf("zero-copy cell %+v: registration cache not amortizing", c)
			}
			if c.ColdBcastNs <= c.BcastNs {
				t.Errorf("cell %+v: cold bcast not dearer than warm (setup+misses missing?)", c)
			}
		}
		if len(c.Levels) != c.Depth {
			t.Errorf("cell %+v attributes %d levels, want %d", c, len(c.Levels), c.Depth)
		}
		for _, lv := range c.Levels {
			if lv.Ops == 0 || lv.Ns <= 0 {
				t.Errorf("cell depth=%d mix=%s bytes=%d mode=%s: level %s has no attributed time",
					c.Depth, c.Mix, c.Bytes, c.Mode, lv.Level)
			}
		}
	}
}
