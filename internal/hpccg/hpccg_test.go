package hpccg

import (
	"math"
	"testing"
)

func TestGenerateStructure(t *testing.T) {
	m, b, exact := Generate(4, 4, 4)
	if m.N != 64 {
		t.Fatalf("N = %d", m.N)
	}
	// Interior point has 27 entries; corner has 8.
	interiorRow := 1*16 + 1*4 + 1
	if got := m.RowPtr[interiorRow+1] - m.RowPtr[interiorRow]; got != 27 {
		t.Fatalf("interior row has %d entries, want 27", got)
	}
	if got := m.RowPtr[1] - m.RowPtr[0]; got != 8 {
		t.Fatalf("corner row has %d entries, want 8", got)
	}
	if len(b) != 64 || len(exact) != 64 {
		t.Fatalf("vector sizes %d/%d", len(b), len(exact))
	}
	// Row sum = 27 - (neighbours): corner row sum = 27 - 7 = 20, so
	// b[corner] (with x = ones) = 20.
	if b[0] != 20 {
		t.Fatalf("b[0] = %v, want 20", b[0])
	}
}

func TestMatrixSymmetric(t *testing.T) {
	m, _, _ := Generate(3, 3, 3)
	// Extract dense and compare transposes.
	dense := make([][]float64, m.N)
	for i := range dense {
		dense[i] = make([]float64, m.N)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			dense[i][m.ColIdx[k]] = m.Vals[k]
		}
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if dense[i][j] != dense[j][i] {
				t.Fatalf("A[%d][%d] = %v != A[%d][%d] = %v", i, j, dense[i][j], j, i, dense[j][i])
			}
		}
	}
}

func TestSolveConvergesToOnes(t *testing.T) {
	m, b, exact := Generate(8, 8, 8)
	x, iters, resid, err := m.Solve(b, 200, 1e-10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 || iters == 200 {
		t.Fatalf("iters = %d", iters)
	}
	if resid > 1e-10 {
		t.Fatalf("residual %g did not converge", resid)
	}
	for i, v := range x {
		if math.Abs(v-exact[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want 1", i, v)
		}
	}
	// Independent residual check.
	if rn := m.ResidualNorm(x, b); rn > 1e-9 {
		t.Fatalf("‖b-Ax‖ = %g", rn)
	}
}

func TestResidualMonotoneOverall(t *testing.T) {
	m, b, _ := Generate(6, 6, 6)
	var resids []float64
	_, _, _, err := m.Solve(b, 50, 0, func(_ int, r float64) bool {
		resids = append(resids, r)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resids) < 5 {
		t.Fatalf("only %d iterations recorded", len(resids))
	}
	if resids[len(resids)-1] >= resids[0] {
		t.Fatalf("residual did not decrease: %g → %g", resids[0], resids[len(resids)-1])
	}
}

func TestProgressCanStopEarly(t *testing.T) {
	m, b, _ := Generate(6, 6, 6)
	_, iters, _, err := m.Solve(b, 100, 0, func(it int, _ float64) bool { return it < 7 })
	if err != nil {
		t.Fatal(err)
	}
	if iters != 7 {
		t.Fatalf("iters = %d, want early stop at 7", iters)
	}
}

func TestDotWaxpby(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("dot = %v", got)
	}
	w := make([]float64, 3)
	Waxpby(2, x, -1, y, w)
	if w[0] != -2 || w[1] != -1 || w[2] != 0 {
		t.Fatalf("waxpby = %v", w)
	}
}

func TestSolveSizeMismatch(t *testing.T) {
	m, _, _ := Generate(3, 3, 3)
	if _, _, _, err := m.Solve(make([]float64, 5), 10, 0, nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
