// Package hpccg implements the HPCCG mini-application from the Mantevo
// suite (Heroux et al.) that the paper's composed workload uses as its
// HPC simulation component (§6.1): a conjugate-gradient solver on a
// 27-point stencil over a 3-D grid, with a sparse CSR matrix, generated so
// the exact solution is the all-ones vector.
//
// This is the real numerical kernel — the in situ example runs it and
// ships its iterates to the analytics component through XEMEM. The timed
// figure-8/9 harnesses use a calibrated per-iteration cost with the same
// communication structure.
package hpccg

import (
	"errors"
	"math"
)

// Matrix is a square sparse matrix in CSR form.
type Matrix struct {
	N          int
	RowPtr     []int
	ColIdx     []int
	Vals       []float64
	nx, ny, nz int
}

// Generate builds the 27-point stencil problem on an nx×ny×nz grid:
// diagonal 27, off-diagonals -1 for every neighbouring grid point —
// symmetric and strictly diagonally dominant, hence SPD. It returns the
// matrix, the right-hand side b = A·1, and the exact solution (ones).
func Generate(nx, ny, nz int) (*Matrix, []float64, []float64) {
	n := nx * ny * nz
	m := &Matrix{N: n, RowPtr: make([]int, n+1), nx: nx, ny: ny, nz: nz}
	idx := func(x, y, z int) int { return z*nx*ny + y*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				row := idx(x, y, z)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							cx, cy, cz := x+dx, y+dy, z+dz
							if cx < 0 || cx >= nx || cy < 0 || cy >= ny || cz < 0 || cz >= nz {
								continue
							}
							col := idx(cx, cy, cz)
							m.ColIdx = append(m.ColIdx, col)
							if col == row {
								m.Vals = append(m.Vals, 27)
							} else {
								m.Vals = append(m.Vals, -1)
							}
						}
					}
				}
				m.RowPtr[row+1] = len(m.ColIdx)
			}
		}
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	m.SpMV(ones, b)
	return m, b, ones
}

// SpMV computes y = A·x.
func (m *Matrix) SpMV(x, y []float64) {
	for i := 0; i < m.N; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
}

// Dot computes xᵀy.
func Dot(x, y []float64) float64 {
	sum := 0.0
	for i := range x {
		sum += x[i] * y[i]
	}
	return sum
}

// Waxpby computes w = alpha·x + beta·y.
func Waxpby(alpha float64, x []float64, beta float64, y, w []float64) {
	for i := range w {
		w[i] = alpha*x[i] + beta*y[i]
	}
}

// Progress is invoked after each CG iteration with the iteration number
// (1-based) and current residual norm. Returning false stops the solve —
// it is how the in situ driver interleaves analytics communication with
// the solver's natural iteration boundary.
type Progress func(iter int, residual float64) bool

// Solve runs conjugate gradient from the zero vector, stopping at maxIter
// iterations or residual tolerance tol. It returns the solution,
// iterations executed, and the final residual norm.
func (m *Matrix) Solve(b []float64, maxIter int, tol float64, progress Progress) ([]float64, int, float64, error) {
	if len(b) != m.N {
		return nil, 0, 0, errors.New("hpccg: rhs size mismatch")
	}
	x := make([]float64, m.N)
	r := make([]float64, m.N)
	p := make([]float64, m.N)
	ap := make([]float64, m.N)
	copy(r, b) // r = b - A·0
	copy(p, r)
	rtr := Dot(r, r)
	resid := math.Sqrt(rtr)
	iters := 0
	for iters < maxIter && resid > tol {
		m.SpMV(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			return x, iters, resid, errors.New("hpccg: matrix not positive definite")
		}
		alpha := rtr / pap
		Waxpby(1, x, alpha, p, x)
		Waxpby(1, r, -alpha, ap, r)
		rtrNew := Dot(r, r)
		beta := rtrNew / rtr
		rtr = rtrNew
		resid = math.Sqrt(rtr)
		Waxpby(1, r, beta, p, p)
		iters++
		if progress != nil && !progress(iters, resid) {
			break
		}
	}
	return x, iters, resid, nil
}

// ResidualNorm computes ‖b − A·x‖₂ for verification.
func (m *Matrix) ResidualNorm(x, b []float64) float64 {
	ax := make([]float64, m.N)
	m.SpMV(x, ax)
	sum := 0.0
	for i := range ax {
		d := b[i] - ax[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
