package coll

import (
	"fmt"

	"xemem/internal/pagetable"
	"xemem/internal/sim"
)

// opKind tags a collective operation.
type opKind int

const (
	opBcast opKind = iota
	opAllreduce
	opBarrier
)

func (k opKind) String() string {
	switch k {
	case opBcast:
		return "bcast"
	case opAllreduce:
		return "allreduce"
	default:
		return "barrier"
	}
}

// opState is the host-side control state of one in-flight collective,
// shared by every rank under the world's one-runnable-goroutine
// guarantee. Counters are per rank or per group; each is advanced by
// exactly one writer except the consumption tallies (slotAck, arrive),
// which readers increment as they pass.
type opState struct {
	kind    opKind
	root    int
	bytes   uint64
	zc      bool
	nchunks int

	have []uint64 // per rank: payload (bcast) / result (allreduce) chunks present in its buffer
	red  []uint64 // per rank: chunks whose subtree reduction is committed in its buffer

	slotIn  []uint64 // per group: chunks written to the broadcast slot
	slotAck []uint64 // per group: total broadcast-slot consumptions
	redIn   [][]uint64
	redAck  [][]uint64 // per group × reduce slot: chunks pushed / consumed

	arrive  []uint64 // per group: fence arrivals (drain barrier / Barrier)
	release []uint64 // per group: fence release flag

	// wins memoizes the zero-copy window a rank resolved to each source
	// this operation: the registration-cache probe is a syscall, so a
	// pipelined collective validates each peer window once per op, not
	// once per chunk.
	wins []map[int]pagetable.VA

	done int
}

// opFor joins rank into its next collective: the first rank to arrive
// creates the operation's control state, later ranks find it and verify
// they issued the same call — a mismatch means the program broke the
// same-sequence-everywhere contract.
func (c *Communicator) opFor(rank int, kind opKind, root int, bytes uint64) (*opState, uint64, error) {
	seq := c.seq[rank]
	c.seq[rank]++
	if op, ok := c.ops[seq]; ok {
		if op.kind != kind || op.root != root || op.bytes != bytes {
			return nil, 0, fmt.Errorf("coll: rank %d called %s(root=%d, bytes=%d) at sequence %d where the collective in flight is %s(root=%d, bytes=%d)",
				rank, kind, root, bytes, seq, op.kind, op.root, op.bytes)
		}
		return op, seq, nil
	}
	zc := false
	switch c.opts.Mode {
	case ModeZeroCopy:
		zc = true
	case ModeCICO:
		zc = false
	default:
		zc = bytes >= c.opts.Switchover
	}
	op := &opState{
		kind: kind, root: root, bytes: bytes, zc: zc,
		nchunks: int((bytes + c.chunk - 1) / c.chunk),
		have:    make([]uint64, len(c.members)),
		red:     make([]uint64, len(c.members)),
		slotIn:  make([]uint64, len(c.groups)),
		slotAck: make([]uint64, len(c.groups)),
		arrive:  make([]uint64, len(c.groups)),
		release: make([]uint64, len(c.groups)),
		wins:    make([]map[int]pagetable.VA, len(c.members)),
	}
	op.redIn = make([][]uint64, len(c.groups))
	op.redAck = make([][]uint64, len(c.groups))
	for i, g := range c.groups {
		op.redIn[i] = make([]uint64, g.readers())
		op.redAck[i] = make([]uint64, g.readers())
	}
	c.ops[seq] = op
	return op, seq, nil
}

// finish retires rank's participation; the last rank out drops the
// control state.
func (c *Communicator) finish(seq uint64, op *opState) {
	op.done++
	if op.done == len(c.members) {
		delete(c.ops, seq)
	}
}

// opWindow resolves rank's zero-copy window onto src's buffer, probing
// the registration cache at most once per operation per peer.
func (c *Communicator) opWindow(a *sim.Actor, rank, src int, op *opState) (pagetable.VA, error) {
	if op.wins[rank] == nil {
		op.wins[rank] = make(map[int]pagetable.VA)
	}
	if va, ok := op.wins[rank][src]; ok {
		return va, nil
	}
	va, err := c.window(a, rank, src)
	if err != nil {
		return 0, err
	}
	op.wins[rank][src] = va
	return va, nil
}

// chunkLen reports the byte length of chunk chk of a bytes-long message.
func (c *Communicator) chunkLen(bytes uint64, chk int) int {
	off := uint64(chk) * c.chunk
	if bytes-off < c.chunk {
		return int(bytes - off)
	}
	return int(c.chunk)
}

// copyIn moves rank's buffer chunk into an arena slot, charging the
// level's CICO-in copy.
func (c *Communicator) copyIn(a *sim.Actor, rank int, g *group, slot, chk int, op *opState) error {
	m := c.members[rank]
	nb := c.chunkLen(op.bytes, chk)
	off := pagetable.VA(uint64(chk) * c.chunk)
	tmp := make([]byte, nb)
	if _, err := m.Sess.Read(m.Buf+off, tmp); err != nil {
		return err
	}
	dst := c.arenaFor(rank, g) + pagetable.VA(uint64(slot)*c.chunk)
	if _, err := m.Sess.Write(dst, tmp); err != nil {
		return err
	}
	a.Charge(c.labels[g.lvl].cicoIn, sim.CopyTime(nb, c.bw(g.lvl)))
	return nil
}

// copyOut moves an arena slot into rank's buffer chunk (reduce=false) or
// folds it into the chunk byte-wise (reduce=true), charging the level's
// CICO-out or reduce cost.
func (c *Communicator) copyOut(a *sim.Actor, rank int, g *group, slot, chk int, op *opState, reduce bool) error {
	m := c.members[rank]
	nb := c.chunkLen(op.bytes, chk)
	off := pagetable.VA(uint64(chk) * c.chunk)
	src := c.arenaFor(rank, g) + pagetable.VA(uint64(slot)*c.chunk)
	tmp := make([]byte, nb)
	if _, err := m.Sess.Read(src, tmp); err != nil {
		return err
	}
	label := c.labels[g.lvl].cicoOut
	if reduce {
		label = c.labels[g.lvl].reduce
		own := make([]byte, nb)
		if _, err := m.Sess.Read(m.Buf+off, own); err != nil {
			return err
		}
		for i := range tmp {
			tmp[i] += own[i]
		}
	}
	if _, err := m.Sess.Write(m.Buf+off, tmp); err != nil {
		return err
	}
	a.Charge(label, sim.CopyTime(nb, c.bw(g.lvl)))
	return nil
}

// pull copies chunk chk out of a zero-copy window into rank's buffer
// (reduce=false) or folds it in byte-wise (reduce=true), charging level
// lvl's copy or reduce cost.
func (c *Communicator) pull(a *sim.Actor, rank int, win pagetable.VA, chk int, op *opState, lvl int, reduce bool) error {
	m := c.members[rank]
	nb := c.chunkLen(op.bytes, chk)
	off := pagetable.VA(uint64(chk) * c.chunk)
	tmp := make([]byte, nb)
	if _, err := m.Sess.Read(win+off, tmp); err != nil {
		return err
	}
	label := c.labels[lvl].copyOp
	if reduce {
		label = c.labels[lvl].reduce
		own := make([]byte, nb)
		if _, err := m.Sess.Read(m.Buf+off, own); err != nil {
			return err
		}
		for i := range tmp {
			tmp[i] += own[i]
		}
	}
	if _, err := m.Sess.Write(m.Buf+off, tmp); err != nil {
		return err
	}
	a.Charge(label, sim.CopyTime(nb, c.bw(lvl)))
	return nil
}

// sync charges one control-flag transfer at level lvl.
func (c *Communicator) sync(a *sim.Actor, lvl int) {
	a.Charge(c.labels[lvl].sync, c.costs.CollFlagSync)
}

// fence is the drain at the tail of every collective: arrivals tally up
// the hierarchy to the canonical root, releases fan back down, on the
// operation's own arrive/release counters. A rank arrives only after
// its last read of the operation — zero-copy pulls out of peer buffers
// and CICO slot copies alike — so by the time any rank returns, every
// rank has finished reading. Without it, a rank entering operation N+1
// would pass the fresh op's zeroed slot gates and overwrite arena slots
// (or rewrite its application buffer) that slow readers of operation N
// are still copying out of.
func (c *Communicator) fence(a *sim.Actor, rank int, op *opState) {
	for _, gid := range c.led[rank] {
		g := c.groups[gid]
		a.Poll(pollInterval, func() bool { return op.arrive[g.id] == uint64(g.readers()) })
		c.sync(a, g.lvl)
	}
	if e := c.edge[rank]; e >= 0 {
		g := c.groups[e]
		op.arrive[g.id]++
		c.sync(a, g.lvl)
		a.Poll(pollInterval, func() bool { return op.release[g.id] == 1 })
	}
	for i := len(c.led[rank]) - 1; i >= 0; i-- {
		g := c.groups[c.led[rank][i]]
		op.release[g.id] = 1
		c.sync(a, g.lvl)
	}
}

// serveDown publishes rank's buffer chunk chk into the broadcast slot of
// every group it leads (CICO plane): waits for the slot's previous chunk
// to drain, copies in, and bumps the slot counter.
func (c *Communicator) serveDown(a *sim.Actor, rank, chk int, op *opState) error {
	for _, gid := range c.led[rank] {
		g := c.groups[gid]
		a.Poll(pollInterval, func() bool {
			return op.slotIn[g.id] == uint64(chk) && op.slotAck[g.id] == uint64(chk)*uint64(g.readers())
		})
		if err := c.copyIn(a, rank, g, 0, chk, op); err != nil {
			return err
		}
		op.slotIn[g.id] = uint64(chk) + 1
		c.sync(a, g.lvl)
	}
	return nil
}

// recvDown obtains chunk chk of the payload travelling down the tree
// into rank's buffer; copy=false acknowledges without copying (the
// original broadcast root already holds the payload).
func (c *Communicator) recvDown(a *sim.Actor, rank, chk int, op *opState, copy bool) error {
	g := c.groups[c.edge[rank]]
	if op.zc {
		if !copy {
			return nil
		}
		s := c.parent[rank]
		a.Poll(pollInterval, func() bool { return op.have[s] > uint64(chk) })
		win, err := c.opWindow(a, rank, s, op)
		if err != nil {
			return err
		}
		return c.pull(a, rank, win, chk, op, g.lvl, false)
	}
	a.Poll(pollInterval, func() bool { return op.slotIn[g.id] > uint64(chk) })
	if copy {
		if err := c.copyOut(a, rank, g, 0, chk, op, false); err != nil {
			return err
		}
	}
	op.slotAck[g.id]++
	c.sync(a, g.lvl)
	return nil
}

// Bcast broadcasts root's first bytes of application buffer to every
// rank, pipelined chunk by chunk down the hierarchy. When root is not
// the canonical top leader, the payload first relocates to it over a
// registered top-tier window. Every rank calls Bcast from its own actor
// with identical root and bytes. The operation ends with an internal
// drain fence: when Bcast returns, every rank has finished reading this
// rank's buffer and the CICO arena slots, so the caller may immediately
// rewrite its buffer or start the next collective without a Barrier.
func (c *Communicator) Bcast(a *sim.Actor, rank, root int, bytes uint64) error {
	if err := c.checkOp(root, bytes); err != nil {
		return err
	}
	if err := c.Setup(a, rank); err != nil {
		return err
	}
	op, seq, err := c.opFor(rank, opBcast, root, bytes)
	if err != nil {
		return err
	}
	if rank == root {
		// The payload is only known valid once the root itself enters
		// the operation; consumers gate on this, not on op creation.
		op.have[rank] = uint64(op.nchunks)
	}
	top := len(c.levels) - 1
	for chk := 0; chk < op.nchunks; chk++ {
		switch {
		case rank == c.canonRoot && root != c.canonRoot:
			// Root relocation: the canonical root pulls straight from
			// the original root's buffer at the top tier.
			a.Poll(pollInterval, func() bool { return op.have[root] > uint64(chk) })
			win, err := c.opWindow(a, rank, root, op)
			if err != nil {
				return err
			}
			if err := c.pull(a, rank, win, chk, op, top, false); err != nil {
				return err
			}
			op.have[rank] = uint64(chk) + 1
		case c.edge[rank] >= 0:
			if err := c.recvDown(a, rank, chk, op, rank != root); err != nil {
				return err
			}
			if rank != root {
				op.have[rank] = uint64(chk) + 1
			}
		}
		if !op.zc {
			if err := c.serveDown(a, rank, chk, op); err != nil {
				return err
			}
		}
	}
	c.fence(a, rank, op)
	c.finish(seq, op)
	return nil
}

// Allreduce folds the first bytes of every rank's buffer together
// byte-wise (sum mod 256) and leaves the result in every buffer:
// reduce-up into the canonical root interleaved, chunk by chunk, with
// the broadcast back down. Like Bcast it ends with an internal drain
// fence, so returning guarantees no peer still reads this rank's
// buffer or arena slots.
func (c *Communicator) Allreduce(a *sim.Actor, rank int, bytes uint64) error {
	if err := c.checkOp(0, bytes); err != nil {
		return err
	}
	if err := c.Setup(a, rank); err != nil {
		return err
	}
	op, seq, err := c.opFor(rank, opAllreduce, c.canonRoot, bytes)
	if err != nil {
		return err
	}
	for chk := 0; chk < op.nchunks; chk++ {
		// Reduce up: fold the led groups' contributions into this rank's
		// buffer bottom level first — the chunk must carry the whole
		// subtree's sum before it travels to the parent.
		for _, gid := range c.led[rank] {
			g := c.groups[gid]
			for i, m := range g.members[1:] {
				if op.zc {
					a.Poll(pollInterval, func() bool { return op.red[m] > uint64(chk) })
					win, err := c.opWindow(a, rank, m, op)
					if err != nil {
						return err
					}
					if err := c.pull(a, rank, win, chk, op, g.lvl, true); err != nil {
						return err
					}
				} else {
					a.Poll(pollInterval, func() bool { return op.redIn[g.id][i] > uint64(chk) })
					if err := c.copyOut(a, rank, g, 1+i, chk, op, true); err != nil {
						return err
					}
					op.redAck[g.id][i] = uint64(chk) + 1
					c.sync(a, g.lvl)
				}
			}
		}
		// The subtree sum is complete: publish it to the parent — a copy
		// into the edge group's reduce slot (CICO) or just the red flag
		// the leader's zero-copy pull gates on.
		if e := c.edge[rank]; e >= 0 && !op.zc {
			g := c.groups[e]
			mi := g.slotIdx(rank)
			a.Poll(pollInterval, func() bool { return op.redAck[g.id][mi] == uint64(chk) })
			if err := c.copyIn(a, rank, g, 1+mi, chk, op); err != nil {
				return err
			}
			op.redIn[g.id][mi] = uint64(chk) + 1
			c.sync(a, g.lvl)
		}
		op.red[rank] = uint64(chk) + 1

		// Broadcast down: the canonical root's buffer now holds the
		// full sum for this chunk.
		if rank == c.canonRoot {
			op.have[rank] = uint64(chk) + 1
		} else {
			if err := c.recvDown(a, rank, chk, op, true); err != nil {
				return err
			}
			op.have[rank] = uint64(chk) + 1
		}
		if !op.zc {
			if err := c.serveDown(a, rank, chk, op); err != nil {
				return err
			}
		}
	}
	c.fence(a, rank, op)
	c.finish(seq, op)
	return nil
}

// Barrier blocks until every rank has entered it: a bare drain fence.
// No data moves, so neither Setup nor a data plane is involved.
func (c *Communicator) Barrier(a *sim.Actor, rank int) error {
	op, seq, err := c.opFor(rank, opBarrier, c.canonRoot, 0)
	if err != nil {
		return err
	}
	c.fence(a, rank, op)
	c.finish(seq, op)
	return nil
}

// checkOp validates a data collective's arguments against the
// communicator's capacity.
func (c *Communicator) checkOp(root int, bytes uint64) error {
	if root < 0 || root >= len(c.members) {
		return fmt.Errorf("coll: root %d out of range (%d ranks)", root, len(c.members))
	}
	if bytes == 0 || bytes > c.bufBytes {
		return fmt.Errorf("coll: message of %d bytes outside (0, %d]", bytes, c.bufBytes)
	}
	return nil
}
