package coll_test

import (
	"fmt"
	"testing"

	"xemem"
	"xemem/internal/coll"
	"xemem/internal/mem"
	"xemem/internal/pagetable"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
)

// pat is the deterministic per-rank buffer fill the reference results
// are computed from.
func pat(rank, i int) byte { return byte((rank+3)*53 + i*17) }

// chunkBytes keeps tests multi-chunk at small message sizes (64 KB
// messages pipeline as four chunks).
const chunkBytes = 16 << 10

// rig is one booted world with a communicator over every enclave of a
// topology spec: one process per enclave, application buffer and CICO
// scratch carved from its heap.
type rig struct {
	node    *xemem.Node
	members []coll.Member
	comm    *coll.Communicator
	bufCap  uint64
}

func buildRig(t *testing.T, seed uint64, spec string, bufBytes uint64, o coll.Opts) *rig {
	t.Helper()
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 8 << 30})
	topo, err := xemem.ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	topo.KittenBytes = 128 << 20
	topo.VMBytes = 128 << 20
	encl, err := topo.Build(node)
	if err != nil {
		t.Fatal(err)
	}
	bufCap := (bufBytes + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
	chunk := o.ChunkBytes
	if chunk == 0 {
		chunk = 64 << 10
	}
	// Generous arena headroom: no leader's arenas exceed one chunk slot
	// per rank per hierarchy level.
	scratchCap := chunk * uint64(len(encl)*3)
	members := make([]coll.Member, 0, len(encl))
	for i, e := range encl {
		name := fmt.Sprintf("rank%d", i)
		m := coll.Member{Loc: e.Loc}
		if e.Kitten != nil {
			s, heap, err := node.KittenProcess(e.Kitten, name, bufCap+scratchCap)
			if err != nil {
				t.Fatal(err)
			}
			m.Sess, m.Buf = s, heap.Base
		} else {
			s, p := node.GuestProcess(e.VM, name, 0)
			region, err := xemem.AllocLinux(e.VM.Guest, p, name+"-buf", bufCap+scratchCap, true)
			if err != nil {
				t.Fatal(err)
			}
			m.Sess, m.Buf = s, region.Base
		}
		m.Scratch = m.Buf + pagetable.VA(bufCap)
		members = append(members, m)
	}
	comm, err := coll.New(members, bufBytes, o)
	if err != nil {
		t.Fatal(err)
	}
	for r := range members {
		if need := comm.ScratchNeed(r); need > scratchCap {
			t.Fatalf("rank %d needs %d scratch bytes, rig provides %d", r, need, scratchCap)
		}
	}
	return &rig{node: node, members: members, comm: comm, bufCap: bufCap}
}

// fill writes every rank's full buffer with its pattern (host-side,
// before the world runs).
func (rg *rig) fill(t *testing.T) {
	t.Helper()
	for r, m := range rg.members {
		data := make([]byte, rg.bufCap)
		for i := range data {
			data[i] = pat(r, i)
		}
		if _, err := m.Sess.Write(m.Buf, data); err != nil {
			t.Fatal(err)
		}
	}
}

// run spawns one actor per rank executing fn and runs the world; any
// rank error fails the test.
func (rg *rig) run(t *testing.T, fn func(a *sim.Actor, rank int) error) {
	t.Helper()
	errs := make([]error, len(rg.members))
	for r := range rg.members {
		r := r
		rg.node.Spawn(fmt.Sprintf("rank%d", r), func(a *sim.Actor) {
			errs[r] = fn(a, r)
		})
	}
	if err := rg.node.Run(); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// bufs reads back every rank's full buffer after the world ran.
func (rg *rig) bufs(t *testing.T) [][]byte {
	t.Helper()
	out := make([][]byte, len(rg.members))
	for r, m := range rg.members {
		buf := make([]byte, rg.bufCap)
		if _, err := m.Sess.Read(m.Buf, buf); err != nil {
			t.Fatal(err)
		}
		out[r] = buf
	}
	return out
}

var (
	flat     = []xemem.Level{xemem.LevelFlat}
	numaFlat = []xemem.Level{xemem.LevelNUMA, xemem.LevelFlat}
	full     = xemem.DefaultLevels
)

const sixKittens = "kitten,kitten,kitten,kitten,kitten,kitten"

// collCases crosses hierarchy depth × message size (straddling the
// 32 KB switchover) × root × forced data plane.
var collCases = []struct {
	name   string
	levels []xemem.Level
	bytes  uint64
	root   int
	mode   coll.Mode
}{
	{"flat-8k-auto-cico", flat, 8 << 10, 0, coll.ModeAuto},
	{"flat-64k-auto-zc", flat, 64 << 10, 0, coll.ModeAuto},
	{"numa-flat-8k-auto-cico", numaFlat, 8 << 10, 3, coll.ModeAuto},
	{"numa-flat-64k-auto-zc", numaFlat, 64 << 10, 3, coll.ModeAuto},
	{"full-8k-forced-zc", full, 8 << 10, 0, coll.ModeZeroCopy},
	{"full-64k-forced-cico", full, 64 << 10, 3, coll.ModeCICO},
	{"full-20k-partial-chunk", full, 20 << 10, 1, coll.ModeAuto},
}

// TestBcastMatchesReference checks every depth/size/plane cell against
// the serial reference: the first `bytes` of every buffer become the
// root's pattern; everything past the message is untouched.
func TestBcastMatchesReference(t *testing.T) {
	for _, tc := range collCases {
		t.Run(tc.name, func(t *testing.T) {
			rg := buildRig(t, 11, sixKittens, 64<<10, coll.Opts{
				ChunkBytes: chunkBytes, Levels: tc.levels, Mode: tc.mode})
			rg.fill(t)
			rg.run(t, func(a *sim.Actor, rank int) error {
				return rg.comm.Bcast(a, rank, tc.root, tc.bytes)
			})
			for r, buf := range rg.bufs(t) {
				for i, b := range buf {
					want := pat(r, i)
					if uint64(i) < tc.bytes {
						want = pat(tc.root, i)
					}
					if b != want {
						t.Fatalf("rank %d byte %d = %#x, want %#x", r, i, b, want)
					}
				}
			}
		})
	}
}

// TestAllreduceMatchesReference checks the reduce-up/broadcast-down
// pipeline against the serial byte-wise sum of every rank's pattern.
func TestAllreduceMatchesReference(t *testing.T) {
	for _, tc := range collCases {
		t.Run(tc.name, func(t *testing.T) {
			rg := buildRig(t, 13, sixKittens, 64<<10, coll.Opts{
				ChunkBytes: chunkBytes, Levels: tc.levels, Mode: tc.mode})
			rg.fill(t)
			rg.run(t, func(a *sim.Actor, rank int) error {
				return rg.comm.Allreduce(a, rank, tc.bytes)
			})
			n := len(rg.members)
			for r, buf := range rg.bufs(t) {
				for i, b := range buf {
					want := pat(r, i)
					if uint64(i) < tc.bytes {
						want = 0
						for src := 0; src < n; src++ {
							want += pat(src, i)
						}
					}
					if b != want {
						t.Fatalf("rank %d byte %d = %#x, want %#x", r, i, b, want)
					}
				}
			}
		})
	}
}

// TestMixedEnclaveSequence drives a bcast followed by an allreduce over
// a co-kernel/VM mix — the composed-application shape of the paper —
// checking the final buffers against both references chained.
func TestMixedEnclaveSequence(t *testing.T) {
	const bytes = 48 << 10
	rg := buildRig(t, 17, "kitten,kitten,vm,kitten,vm,kitten", 64<<10, coll.Opts{
		ChunkBytes: chunkBytes})
	rg.fill(t)
	rg.run(t, func(a *sim.Actor, rank int) error {
		if err := rg.comm.Bcast(a, rank, 2, bytes); err != nil {
			return err
		}
		return rg.comm.Allreduce(a, rank, bytes)
	})
	n := len(rg.members)
	for r, buf := range rg.bufs(t) {
		for i, b := range buf {
			want := pat(r, i)
			if uint64(i) < bytes {
				// After the bcast every rank holds root 2's pattern, so
				// the allreduce sums n copies of it.
				want = byte(n) * pat(2, i)
			}
			if b != want {
				t.Fatalf("rank %d byte %d = %#x, want %#x", r, i, b, want)
			}
		}
	}
}

// TestBackToBackNoBarrier pins the drain contract on both data planes:
// consecutive collectives — with the root rewriting its buffer between
// them — need no interleaved Barrier, because each operation's tail
// fence keeps every rank inside the call until all peers finished
// reading its buffer and the arena slots. Without the drain, the root
// (which does no work in a zero-copy broadcast) would return instantly
// and its rewrite would race the still-in-flight pulls; a CICO leader
// would overwrite slots of the previous operation's final chunk.
func TestBackToBackNoBarrier(t *testing.T) {
	const bytes, iters, root = 48 << 10, 3, 1
	iterPat := func(it, i int) byte { return byte(it*31 + i*7 + 5) }
	for _, tc := range []struct {
		name string
		mode coll.Mode
	}{{"zc", coll.ModeZeroCopy}, {"cico", coll.ModeCICO}} {
		t.Run(tc.name, func(t *testing.T) {
			rg := buildRig(t, 41, sixKittens, 64<<10, coll.Opts{
				ChunkBytes: chunkBytes, Mode: tc.mode})
			rg.fill(t)
			rg.run(t, func(a *sim.Actor, rank int) error {
				m := rg.members[rank]
				for it := 0; it < iters; it++ {
					if rank == root {
						data := make([]byte, bytes)
						for i := range data {
							data[i] = iterPat(it, i)
						}
						if _, err := m.Sess.Write(m.Buf, data); err != nil {
							return err
						}
					}
					if err := rg.comm.Bcast(a, rank, root, bytes); err != nil {
						return err
					}
					buf := make([]byte, bytes)
					if _, err := m.Sess.Read(m.Buf, buf); err != nil {
						return err
					}
					for i, b := range buf {
						if want := iterPat(it, i); b != want {
							return fmt.Errorf("iter %d byte %d = %#x, want %#x", it, i, b, want)
						}
					}
				}
				// Two allreduces in a row reuse the reduce slots across
				// operations: each multiplies every byte by the rank count.
				if err := rg.comm.Allreduce(a, rank, bytes); err != nil {
					return err
				}
				return rg.comm.Allreduce(a, rank, bytes)
			})
			n := byte(len(rg.members))
			for r, buf := range rg.bufs(t) {
				for i := 0; uint64(i) < bytes; i++ {
					if want := n * n * iterPat(iters-1, i); buf[i] != want {
						t.Fatalf("rank %d byte %d = %#x, want %#x", r, i, buf[i], want)
					}
				}
			}
		})
	}
}

// TestBarrierOrdering asserts the barrier contract on the virtual
// clock: no rank is released before the last rank arrived, even with
// deliberately staggered arrivals.
func TestBarrierOrdering(t *testing.T) {
	rg := buildRig(t, 19, sixKittens, 4<<10, coll.Opts{ChunkBytes: chunkBytes})
	n := len(rg.members)
	arrived := make([]sim.Time, n)
	released := make([]sim.Time, n)
	rg.run(t, func(a *sim.Actor, rank int) error {
		a.Advance(sim.Time(rank) * 40 * sim.Microsecond)
		arrived[rank] = a.Now()
		if err := rg.comm.Barrier(a, rank); err != nil {
			return err
		}
		released[rank] = a.Now()
		return rg.comm.Barrier(a, rank) // reusability: a second barrier completes too
	})
	var maxArrive sim.Time
	for _, ts := range arrived {
		if ts > maxArrive {
			maxArrive = ts
		}
	}
	for r, ts := range released {
		if ts < maxArrive {
			t.Errorf("rank %d released at %v, before last arrival %v", r, ts, maxArrive)
		}
	}
}

// TestRegistrationCacheLifecycle pins the attacher-side cache counters
// over two zero-copy broadcasts: every hierarchy edge registers exactly
// once (miss), every later chunk recovers the window from the cache
// (hit), and Close's detach invalidates every entry.
func TestRegistrationCacheLifecycle(t *testing.T) {
	const bytes, iters = 64 << 10, 2
	rg := buildRig(t, 23, sixKittens, bytes, coll.Opts{
		ChunkBytes: chunkBytes, Mode: coll.ModeZeroCopy})
	rg.fill(t)
	rg.run(t, func(a *sim.Actor, rank int) error {
		for i := 0; i < iters; i++ {
			if err := rg.comm.Bcast(a, rank, 0, bytes); err != nil {
				return err
			}
		}
		return rg.comm.Close(a, rank)
	})
	var st sim.CacheStats
	for _, m := range rg.members {
		s := m.Sess.RegCacheStats()
		st.Hits += s.Hits
		st.Misses += s.Misses
		st.Invalidations += s.Invalidations
	}
	// Five edges (six ranks, rank 0 canonical): each op resolves the
	// window once per edge (the probe is memoized across chunks), so the
	// first broadcast misses and every later one hits.
	wantMiss := uint64(5)
	wantHit := uint64(5 * (iters - 1))
	if st.Misses != wantMiss || st.Hits != wantHit || st.Invalidations != wantMiss {
		t.Fatalf("cache stats hits=%d misses=%d invalidations=%d, want %d/%d/%d",
			st.Hits, st.Misses, st.Invalidations, wantHit, wantMiss, wantMiss)
	}
}

// collDigest runs the full mixed-enclave workload under the given
// engine and returns the trace digest.
func collDigest(t *testing.T, workers int) trace.Digest {
	t.Helper()
	rg := buildRig(t, 29, "kitten,kitten,vm,kitten,vm,kitten", 64<<10, coll.Opts{
		ChunkBytes: chunkBytes})
	tr := trace.NewTracer(fmt.Sprintf("coll-par-%d", workers))
	tr.SetKeepEvents(false)
	rg.node.World().SetObserver(tr)
	if workers > 1 {
		rg.node.World().SetParallel(workers)
	}
	rg.fill(t)
	rg.run(t, func(a *sim.Actor, rank int) error {
		if err := rg.comm.Bcast(a, rank, 1, 48<<10); err != nil {
			return err
		}
		if err := rg.comm.Allreduce(a, rank, 8<<10); err != nil {
			return err
		}
		if err := rg.comm.Barrier(a, rank); err != nil {
			return err
		}
		return rg.comm.Close(a, rank)
	})
	return tr.Digest()
}

// TestParallelEngineDigestIdentity: the collective layer keeps its
// control flags host-side, so the parallel engine must replay the
// serial engine's trace bit for bit.
func TestParallelEngineDigestIdentity(t *testing.T) {
	serial := collDigest(t, 1)
	parallel := collDigest(t, 2)
	if serial.SHA256 != parallel.SHA256 {
		t.Fatalf("parallel digest %s != serial %s", parallel.SHA256, serial.SHA256)
	}
}

// TestSingleRankDegenerate: a one-rank communicator completes every
// operation trivially.
func TestSingleRankDegenerate(t *testing.T) {
	rg := buildRig(t, 31, "kitten", 8<<10, coll.Opts{ChunkBytes: chunkBytes})
	rg.fill(t)
	rg.run(t, func(a *sim.Actor, rank int) error {
		if err := rg.comm.Bcast(a, rank, 0, 8<<10); err != nil {
			return err
		}
		if err := rg.comm.Allreduce(a, rank, 8<<10); err != nil {
			return err
		}
		return rg.comm.Barrier(a, rank)
	})
	for i, b := range rg.bufs(t)[0] {
		if b != pat(0, i) {
			t.Fatalf("byte %d = %#x, want %#x", i, b, pat(0, i))
		}
	}
}

// TestConstructionErrors pins New's validation and the non-converging
// hierarchy diagnostic.
func TestConstructionErrors(t *testing.T) {
	rg := buildRig(t, 37, sixKittens, 8<<10, coll.Opts{ChunkBytes: chunkBytes})
	if _, err := coll.New(nil, 8<<10, coll.Opts{}); err == nil {
		t.Error("New with no members succeeded")
	}
	if _, err := coll.New(rg.members, 0, coll.Opts{}); err == nil {
		t.Error("New with zero buffer capacity succeeded")
	}
	if _, err := coll.New(rg.members, 8<<10, coll.Opts{ChunkBytes: 100}); err == nil {
		t.Error("New with unaligned chunk succeeded")
	}
	// Six ranks spread over four NUMA domains cannot converge without a
	// flat top tier.
	if _, err := coll.New(rg.members, 8<<10, coll.Opts{Levels: []xemem.Level{xemem.LevelNUMA}}); err == nil {
		t.Error("New with non-converging hierarchy succeeded")
	}
	// Argument validation happens before any protocol traffic.
	rg.run(t, func(a *sim.Actor, rank int) error {
		if err := rg.comm.Bcast(a, rank, 99, 4<<10); err == nil {
			return fmt.Errorf("Bcast with out-of-range root succeeded")
		}
		if err := rg.comm.Bcast(a, rank, 0, 0); err == nil {
			return fmt.Errorf("Bcast with zero bytes succeeded")
		}
		if err := rg.comm.Allreduce(a, rank, 1<<30); err == nil {
			return fmt.Errorf("Allreduce beyond buffer capacity succeeded")
		}
		return nil
	})
}
