// Package coll implements XHC-style hierarchical, topology-aware
// collectives — broadcast, allreduce, and barrier — directly on the
// XEMEM zero-copy attach machinery (SNIPPETS.md, Open MPI coll/xhc).
//
// A Communicator groups one rank per participating process and builds an
// n-level reduction/broadcast hierarchy from the ranks' localities
// (xemem.Locality), innermost level first: ranks sharing a NUMA domain
// form the bottom groups, their leaders regroup by socket, and the
// surviving leaders meet in a flat top group. Data moves through the
// hierarchy chunk by chunk (pipelining), one of two ways:
//
//   - Zero-copy: the consumer attaches the producer's application buffer
//     once — on first appearance — and recovers the window from the
//     attacher-side registration cache on every later operation
//     (xpmem.Session.AttachCached), then copies directly out of it. One
//     copy per hierarchy edge.
//
//   - Copy-in/copy-out (CICO): each group's leader owns a small arena,
//     exported at setup and permanently attached by every member. The
//     producer copies a chunk in, consumers copy it out. Two copies per
//     edge, but no per-buffer attach traffic — cheaper below the
//     message-size switchover, where attach latency dominates copy cost.
//
// Allreduce runs reduce-up (leaders fold members' chunks into their own
// buffer, byte-wise sum) and broadcast-down over the same tree, with the
// phases interleaved per chunk: chunk c broadcasts down while chunk c+1
// is still reducing up. Copies are charged against per-level bandwidth
// tiers (sim.Costs.CollNUMABW/CollSocketBW/CollFlatBW) under trace op
// labels that name the hierarchy level, so a contention observer
// attributes collective time level by level.
//
// Every data collective ends with an internal drain fence (a tree
// barrier on the operation's own counters): no rank returns from an
// operation while any peer still reads its buffer or a CICO arena
// slot, so consecutive collectives — and application buffer rewrites
// between them — need no explicit Barrier.
//
// Control flags live host-side in the Communicator and are safe under
// the world's one-runnable-goroutine guarantee; all rank actors must
// share one partition (they do by default). Every rank must issue the
// same sequence of collective calls, as in MPI.
package coll

import (
	"fmt"
	"sort"

	"xemem"
	"xemem/internal/mem"
	"xemem/internal/pagetable"
	"xemem/internal/sim"
	"xemem/internal/xpmem"
)

// Mode selects the data plane.
type Mode int

const (
	// ModeAuto picks zero-copy at and above Opts.Switchover, CICO below.
	ModeAuto Mode = iota
	// ModeZeroCopy forces the zero-copy plane at every message size.
	ModeZeroCopy
	// ModeCICO forces the copy-in/copy-out plane at every message size.
	ModeCICO
)

// Opts parameterizes a Communicator, following the repo-wide
// option-struct convention (DESIGN.md §15): every zero field selects the
// calibrated default in parentheses.
type Opts struct {
	// Switchover is the message size in bytes at which ModeAuto moves
	// from CICO to zero-copy (32 KB).
	Switchover uint64
	// ChunkBytes is the pipelining granularity and CICO slot size; must
	// be a page multiple (64 KB).
	ChunkBytes uint64
	// Levels is the hierarchy, innermost first; the last level must
	// converge every rank into one group, so it normally ends with
	// xemem.LevelFlat (xemem.DefaultLevels).
	Levels []xemem.Level
	// Mode forces a data plane regardless of message size (ModeAuto).
	Mode Mode
}

// Member describes one rank: its XPMEM session, the application buffer
// collectives operate on, the scratch window CICO arenas are carved
// from (leaders only; may be zero for ranks that lead no group), and
// the rank's physical locality. Buf and Scratch must be page-aligned
// addresses inside mapped regions of the session's process.
type Member struct {
	Sess    *xpmem.Session
	Buf     pagetable.VA
	Scratch pagetable.VA
	Loc     xemem.Locality
}

// group is one node of the hierarchy: the ranks local to each other at
// one level. members is sorted ascending; members[0] is the (canonical)
// leader. Groups with a single member carry no arena and no traffic.
type group struct {
	id         int
	lvl        int   // index into Communicator.levels
	members    []int // ascending; members[0] is the leader
	arenaOff   uint64
	arenaBytes uint64
	seg        xpmem.Segid // arena segment, exported by the leader at setup
}

func (g *group) leader() int  { return g.members[0] }
func (g *group) readers() int { return len(g.members) - 1 }

// slotIdx reports rank's reduce-slot index within the group's arena
// (0-based over the non-leader members).
func (g *group) slotIdx(rank int) int {
	for i, m := range g.members[1:] {
		if m == rank {
			return i
		}
	}
	return -1
}

// binding is one rank's registered window onto another rank's
// application buffer: the access permit plus the cached attach address.
// register acquires one; unregister retires it (xemem-vet's paircheck
// enforces the pairing).
type binding struct {
	src   int
	segid xpmem.Segid
	apid  xpmem.Apid
	va    pagetable.VA
}

// rankState is the per-rank runtime state; each field is written only by
// its own rank's actor.
type rankState struct {
	seg      xpmem.Segid // exported application buffer
	exported bool
	ready    bool

	binds map[int]*binding // src rank → registered window

	arenaSeg      xpmem.Segid
	arenaApid     xpmem.Apid
	arenaVA       pagetable.VA
	arenaAttached bool
}

// lvlLabels are the precomputed trace op names of one hierarchy level.
type lvlLabels struct {
	copyOp  string
	cicoIn  string
	cicoOut string
	reduce  string
	sync    string
}

// Communicator runs collectives over a fixed set of ranks. Construct
// with New, drive each rank from its own actor, and Close each rank
// when done.
type Communicator struct {
	opts     Opts
	members  []Member
	costs    *sim.Costs
	bufBytes uint64 // page-rounded buffer capacity
	chunk    uint64
	levels   []xemem.Level
	labels   []lvlLabels

	groups    []*group
	led       [][]int // per rank: group ids it leads (≥2 members), bottom-up
	edge      []int   // per rank: group id it is a non-leader member of, -1 for the canonical root
	parent    []int   // per rank: leader of its edge group, -1 for the canonical root
	canonRoot int

	st   []*rankState
	seq  []uint64            // per rank: next collective sequence number
	ops  map[uint64]*opState // in-flight collectives by sequence number
	need []uint64            // per rank: scratch bytes its led arenas occupy
}

// pollInterval is the granularity at which ranks poll the host-side
// control flags; fine enough to be invisible against per-chunk copy
// costs.
const pollInterval = 500 * sim.Nanosecond

const (
	defaultSwitchover = 32 << 10
	defaultChunk      = 64 << 10
)

// New builds a communicator over members with application buffers of
// bufBytes capacity. Opts' zero value selects the defaults; see Opts.
func New(members []Member, bufBytes uint64, o Opts) (*Communicator, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("coll: no members")
	}
	if bufBytes == 0 {
		return nil, fmt.Errorf("coll: zero buffer capacity")
	}
	if o.Switchover == 0 {
		o.Switchover = defaultSwitchover
	}
	if o.ChunkBytes == 0 {
		o.ChunkBytes = defaultChunk
	}
	if o.ChunkBytes%mem.PageSize != 0 {
		return nil, fmt.Errorf("coll: chunk size %d is not a page multiple", o.ChunkBytes)
	}
	if len(o.Levels) == 0 {
		o.Levels = xemem.DefaultLevels
	}
	c := &Communicator{
		opts:     o,
		members:  members,
		costs:    members[0].Sess.Module().Costs(),
		bufBytes: (bufBytes + mem.PageSize - 1) &^ uint64(mem.PageSize-1),
		chunk:    o.ChunkBytes,
		levels:   o.Levels,
		ops:      make(map[uint64]*opState),
		seq:      make([]uint64, len(members)),
	}
	w := members[0].Sess.Module().World()
	for i, m := range members {
		if m.Sess.Module().World() != w {
			return nil, fmt.Errorf("coll: rank %d lives in a different world", i)
		}
		if m.Buf.Offset() != 0 {
			return nil, fmt.Errorf("coll: rank %d buffer %#x is not page-aligned", i, uint64(m.Buf))
		}
	}
	for l, lv := range c.levels {
		c.labels = append(c.labels, lvlLabels{
			copyOp:  fmt.Sprintf("coll-copy:L%d-%s", l, lv),
			cicoIn:  fmt.Sprintf("coll-cico-in:L%d-%s", l, lv),
			cicoOut: fmt.Sprintf("coll-cico-out:L%d-%s", l, lv),
			reduce:  fmt.Sprintf("coll-reduce:L%d-%s", l, lv),
			sync:    fmt.Sprintf("coll-sync:L%d-%s", l, lv),
		})
	}
	if err := c.buildHierarchy(); err != nil {
		return nil, err
	}
	for range members {
		c.st = append(c.st, &rankState{binds: make(map[int]*binding)})
	}
	return c, nil
}

// buildHierarchy partitions the ranks level by level: every rank starts
// at the bottom, each group's minimum rank survives to the next level,
// and the top level must leave exactly one survivor — the canonical
// root. Led-group arenas are laid out in each leader's scratch window in
// creation (bottom-up) order.
func (c *Communicator) buildHierarchy() error {
	n := len(c.members)
	c.led = make([][]int, n)
	c.edge = make([]int, n)
	c.parent = make([]int, n)
	c.need = make([]uint64, n)
	for i := range c.edge {
		c.edge[i], c.parent[i] = -1, -1
	}
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	for l, lv := range c.levels {
		byKey := make(map[int][]int)
		var keys []int
		for _, r := range cur {
			k := c.members[r].Loc.Key(lv)
			if _, ok := byKey[k]; !ok {
				keys = append(keys, k)
			}
			byKey[k] = append(byKey[k], r)
		}
		sort.Ints(keys)
		next := cur[:0]
		for _, k := range keys {
			part := byKey[k] // ascending: cur stays sorted level to level
			g := &group{id: len(c.groups), lvl: l, members: part}
			c.groups = append(c.groups, g)
			lead := g.leader()
			if g.readers() > 0 {
				c.led[lead] = append(c.led[lead], g.id)
				g.arenaOff = c.need[lead]
				g.arenaBytes = c.chunk * uint64(len(part))
				c.need[lead] += g.arenaBytes
				for _, m := range part[1:] {
					c.edge[m] = g.id
					c.parent[m] = lead
				}
			}
			next = append(next, lead)
		}
		sort.Ints(next)
		cur = next
	}
	if len(cur) != 1 {
		return fmt.Errorf("coll: hierarchy does not converge: %d groups at the top level (end Levels with LevelFlat)", len(cur))
	}
	c.canonRoot = cur[0]
	return nil
}

// bw reports the copy bandwidth of hierarchy level l's locality tier.
func (c *Communicator) bw(l int) float64 {
	switch c.levels[l] {
	case xemem.LevelNUMA:
		return c.costs.CollNUMABW
	case xemem.LevelSocket:
		return c.costs.CollSocketBW
	default:
		return c.costs.CollFlatBW
	}
}

// CanonRoot reports the rank leading every hierarchy level — the
// implicit root of allreduce and barrier.
func (c *Communicator) CanonRoot() int { return c.canonRoot }

// Groups reports the hierarchy's group count (diagnostics).
func (c *Communicator) Groups() int { return len(c.groups) }

// ScratchNeed reports how many scratch bytes rank's led-group arenas
// occupy — the minimum capacity its Member.Scratch window must have.
func (c *Communicator) ScratchNeed(rank int) uint64 { return c.need[rank] }

// Setup exports rank's application buffer, exports and permanently
// attaches the CICO arenas (the XHC init-time attachment), and waits for
// every other rank to do the same. Collectives call it lazily; calling
// it explicitly keeps setup cost out of operation latency.
func (c *Communicator) Setup(a *sim.Actor, rank int) error {
	st := c.st[rank]
	if st.ready {
		return nil
	}
	m := c.members[rank]
	if c.need[rank] > 0 {
		if m.Scratch.Offset() != 0 {
			return fmt.Errorf("coll: rank %d scratch %#x is not page-aligned", rank, uint64(m.Scratch))
		}
	}
	seg, err := m.Sess.Make(a, m.Buf, c.bufBytes, xpmem.PermRead, "")
	if err != nil {
		return err
	}
	st.seg = seg
	for _, gid := range c.led[rank] {
		g := c.groups[gid]
		arenaSeg, err := m.Sess.Make(a, m.Scratch+pagetable.VA(g.arenaOff), g.arenaBytes,
			xpmem.PermRead|xpmem.PermWrite, "")
		if err != nil {
			return err
		}
		g.seg = arenaSeg
	}
	st.exported = true
	a.Poll(pollInterval, func() bool {
		for _, other := range c.st {
			if !other.exported {
				return false
			}
		}
		return true
	})
	if e := c.edge[rank]; e >= 0 {
		g := c.groups[e]
		apid, err := m.Sess.GetWith(a, g.seg, xpmem.GetOpts{Perm: xpmem.PermRead | xpmem.PermWrite})
		if err != nil {
			return err
		}
		va, err := m.Sess.AttachWith(a, g.seg, apid, xpmem.AttachOpts{
			Bytes: g.arenaBytes, Perm: xpmem.PermRead | xpmem.PermWrite})
		if err != nil {
			return err
		}
		st.arenaSeg, st.arenaApid, st.arenaVA, st.arenaAttached = g.seg, apid, va, true
	}
	st.ready = true
	a.Poll(pollInterval, func() bool {
		for _, other := range c.st {
			if !other.ready {
				return false
			}
		}
		return true
	})
	return nil
}

// register acquires a registration-cache binding onto src's application
// buffer: an access permit plus the first (miss) attach through
// AttachCached. The caller owns the binding and must retire it with
// unregister on teardown.
func (c *Communicator) register(a *sim.Actor, rank, src int) (*binding, error) {
	m := c.members[rank]
	seg := c.st[src].seg
	apid, err := m.Sess.GetWith(a, seg, xpmem.GetOpts{Perm: xpmem.PermRead})
	if err != nil {
		return nil, err
	}
	va, err := m.Sess.AttachCached(a, seg, apid, xpmem.AttachOpts{Bytes: c.bufBytes, Perm: xpmem.PermRead})
	if err != nil {
		relErr := m.Sess.Release(a, seg, apid)
		if relErr != nil {
			return nil, fmt.Errorf("%w (release after failed attach: %v)", err, relErr)
		}
		return nil, err
	}
	return &binding{src: src, segid: seg, apid: apid, va: va}, nil
}

// unregister retires one binding: detaches the cached window (which
// invalidates the session's registration-cache entry) and releases the
// permit.
func (c *Communicator) unregister(a *sim.Actor, rank int, b *binding) error {
	m := c.members[rank]
	if err := m.Sess.Detach(a, b.va); err != nil {
		return err
	}
	return m.Sess.Release(a, b.segid, b.apid)
}

// window resolves rank's view of src's application buffer: the first
// request registers (attach on first appearance), every later one
// recovers the window from the attacher-side registration cache.
func (c *Communicator) window(a *sim.Actor, rank, src int) (pagetable.VA, error) {
	st := c.st[rank]
	if b, ok := st.binds[src]; ok {
		va, err := c.members[rank].Sess.AttachCached(a, b.segid, b.apid,
			xpmem.AttachOpts{Bytes: c.bufBytes, Perm: xpmem.PermRead})
		if err != nil {
			return 0, err
		}
		b.va = va
		return va, nil
	}
	b, err := c.register(a, rank, src)
	if err != nil {
		return 0, err
	}
	st.binds[src] = b
	return b.va, nil
}

// arenaFor resolves rank's address of group g's arena: leaders write
// their own scratch directly, members go through the permanent
// attachment made at setup.
func (c *Communicator) arenaFor(rank int, g *group) pagetable.VA {
	if g.leader() == rank {
		return c.members[rank].Scratch + pagetable.VA(g.arenaOff)
	}
	return c.st[rank].arenaVA
}

// Close tears down rank's side of the communicator: unregisters every
// cached peer-buffer binding (in ascending source order, so teardown
// cost is deterministic) and detaches the permanently attached CICO
// arena. Exported segments stay live — peers may still hold windows
// onto them.
func (c *Communicator) Close(a *sim.Actor, rank int) error {
	st := c.st[rank]
	srcs := make([]int, 0, len(st.binds))
	for src := range st.binds {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		b := st.binds[src]
		if err := c.unregister(a, rank, b); err != nil {
			return err
		}
		delete(st.binds, src)
	}
	if st.arenaAttached {
		if err := c.members[rank].Sess.Detach(a, st.arenaVA); err != nil {
			return err
		}
		if err := c.members[rank].Sess.Release(a, st.arenaSeg, st.arenaApid); err != nil {
			return err
		}
		st.arenaAttached = false
	}
	return nil
}
