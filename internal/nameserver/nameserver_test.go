package nameserver

import (
	"testing"
	"testing/quick"

	"xemem/internal/xproto"
)

func TestEnclaveIDsUniqueAndSequential(t *testing.T) {
	ns := New()
	a, b := ns.AllocEnclaveID(), ns.AllocEnclaveID()
	if a == b {
		t.Fatal("duplicate enclave IDs")
	}
	if a == xproto.NameServerID || b == xproto.NameServerID {
		t.Fatal("the NS's own ID must never be handed out")
	}
}

func TestSegidLifecycle(t *testing.T) {
	ns := New()
	s, err := ns.AllocSegid(2)
	if err != nil {
		t.Fatal(err)
	}
	if s == xproto.NoSegid {
		t.Fatal("allocated NoSegid")
	}
	owner, ok := ns.Owner(s)
	if !ok || owner != 2 {
		t.Fatalf("owner = %d %v", owner, ok)
	}
	if err := ns.RemoveSegid(s, 3); err == nil {
		t.Fatal("non-owner removal accepted")
	}
	if err := ns.RemoveSegid(s, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := ns.Owner(s); ok {
		t.Fatal("removed segid still has owner")
	}
	if err := ns.RemoveSegid(s, 2); err == nil {
		t.Fatal("double removal accepted")
	}
}

func TestAllocSegidRequiresIdentity(t *testing.T) {
	ns := New()
	if _, err := ns.AllocSegid(xproto.NoEnclave); err == nil {
		t.Fatal("unidentified enclave allocated a segid")
	}
}

func TestPublishLookup(t *testing.T) {
	ns := New()
	s, _ := ns.AllocSegid(4)
	if err := ns.Publish("sim-output", s, 4); err != nil {
		t.Fatal(err)
	}
	got, ok := ns.Lookup("sim-output")
	if !ok || got != s {
		t.Fatalf("lookup = %d %v", got, ok)
	}
	if _, ok := ns.Lookup("absent"); ok {
		t.Fatal("phantom name resolved")
	}
	// Re-publishing the same binding is idempotent.
	if err := ns.Publish("sim-output", s, 4); err != nil {
		t.Fatal(err)
	}
	// A different segid cannot steal the name.
	s2, _ := ns.AllocSegid(4)
	if err := ns.Publish("sim-output", s2, 4); err == nil {
		t.Fatal("name stolen")
	}
}

func TestPublishValidation(t *testing.T) {
	ns := New()
	s, _ := ns.AllocSegid(4)
	if err := ns.Publish("", s, 4); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := ns.Publish("x", s, 5); err == nil {
		t.Fatal("non-owner publish accepted")
	}
	if err := ns.Publish("x", s+999, 4); err == nil {
		t.Fatal("unknown segid published")
	}
}

func TestRemoveDropsNames(t *testing.T) {
	ns := New()
	s, _ := ns.AllocSegid(2)
	ns.Publish("a", s, 2)
	ns.Publish("b", s, 2)
	if err := ns.RemoveSegid(s, 2); err != nil {
		t.Fatal(err)
	}
	if len(ns.Names()) != 0 {
		t.Fatalf("names survive removal: %v", ns.Names())
	}
}

// Property: segids are unique across arbitrarily many allocations from
// arbitrary enclaves — the core §3.1 guarantee.
func TestSegidUniquenessProperty(t *testing.T) {
	err := quick.Check(func(owners []uint8) bool {
		ns := New()
		seen := map[xproto.Segid]bool{}
		for _, o := range owners {
			s, err := ns.AllocSegid(xproto.EnclaveID(o) + 2)
			if err != nil || seen[s] {
				return false
			}
			seen[s] = true
		}
		return ns.LiveSegids() == len(seen)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
