package nameserver

import (
	"bytes"
	"testing"
	"testing/quick"

	"xemem/internal/sim/snapshot"
	"xemem/internal/xproto"
)

func TestEnclaveIDsUniqueAndSequential(t *testing.T) {
	ns := New()
	a, b := ns.AllocEnclaveID(), ns.AllocEnclaveID()
	if a == b {
		t.Fatal("duplicate enclave IDs")
	}
	if a == xproto.NameServerID || b == xproto.NameServerID {
		t.Fatal("the NS's own ID must never be handed out")
	}
}

func TestSegidLifecycle(t *testing.T) {
	ns := New()
	s, err := ns.AllocSegid(2)
	if err != nil {
		t.Fatal(err)
	}
	if s == xproto.NoSegid {
		t.Fatal("allocated NoSegid")
	}
	owner, ok := ns.Owner(s)
	if !ok || owner != 2 {
		t.Fatalf("owner = %d %v", owner, ok)
	}
	if err := ns.RemoveSegid(s, 3); err == nil {
		t.Fatal("non-owner removal accepted")
	}
	if err := ns.RemoveSegid(s, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := ns.Owner(s); ok {
		t.Fatal("removed segid still has owner")
	}
	if err := ns.RemoveSegid(s, 2); err == nil {
		t.Fatal("double removal accepted")
	}
}

func TestAllocSegidRequiresIdentity(t *testing.T) {
	ns := New()
	if _, err := ns.AllocSegid(xproto.NoEnclave); err == nil {
		t.Fatal("unidentified enclave allocated a segid")
	}
}

func TestPublishLookup(t *testing.T) {
	ns := New()
	s, _ := ns.AllocSegid(4)
	if err := ns.Publish("sim-output", s, 4); err != nil {
		t.Fatal(err)
	}
	got, ok := ns.Lookup("sim-output")
	if !ok || got != s {
		t.Fatalf("lookup = %d %v", got, ok)
	}
	if _, ok := ns.Lookup("absent"); ok {
		t.Fatal("phantom name resolved")
	}
	// Re-publishing the same binding is idempotent.
	if err := ns.Publish("sim-output", s, 4); err != nil {
		t.Fatal(err)
	}
	// A different segid cannot steal the name.
	s2, _ := ns.AllocSegid(4)
	if err := ns.Publish("sim-output", s2, 4); err == nil {
		t.Fatal("name stolen")
	}
}

func TestPublishValidation(t *testing.T) {
	ns := New()
	s, _ := ns.AllocSegid(4)
	if err := ns.Publish("", s, 4); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := ns.Publish("x", s, 5); err == nil {
		t.Fatal("non-owner publish accepted")
	}
	if err := ns.Publish("x", s+999, 4); err == nil {
		t.Fatal("unknown segid published")
	}
}

func TestRemoveDropsNames(t *testing.T) {
	ns := New()
	s, _ := ns.AllocSegid(2)
	ns.Publish("a", s, 2)
	ns.Publish("b", s, 2)
	if err := ns.RemoveSegid(s, 2); err != nil {
		t.Fatal(err)
	}
	if len(ns.Names()) != 0 {
		t.Fatalf("names survive removal: %v", ns.Names())
	}
}

// Property: segids are unique across arbitrarily many allocations from
// arbitrary enclaves — the core §3.1 guarantee.
func TestSegidUniquenessProperty(t *testing.T) {
	err := quick.Check(func(owners []uint8) bool {
		ns := New()
		seen := map[xproto.Segid]bool{}
		for _, o := range owners {
			s, err := ns.AllocSegid(xproto.EnclaveID(o) + 2)
			if err != nil || seen[s] {
				return false
			}
			seen[s] = true
		}
		return ns.LiveSegids() == len(seen)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// The shard residue-class contract: shard k of n allocates only segids
// homing to k under ShardOf, cursors stride so replicas sub-striping a
// class can never collide, and names hash to shards deterministically.
func TestConfigureShardResidueClasses(t *testing.T) {
	const n = 4
	seen := map[xproto.Segid]bool{}
	for k := 0; k < n; k++ {
		ns := New()
		ns.ConfigureShard(k, n)
		for i := 0; i < 8; i++ {
			s, err := ns.AllocSegid(2)
			if err != nil {
				t.Fatal(err)
			}
			if ShardOf(s, n) != k {
				t.Fatalf("shard %d allocated segid %d homing to shard %d", k, s, ShardOf(s, n))
			}
			if seen[s] {
				t.Fatalf("segid %d allocated by two shards", s)
			}
			seen[s] = true
		}
	}
}

func TestConfigureShardRejectsBadLayout(t *testing.T) {
	for _, kn := range [][2]int{{0, 0}, {-1, 2}, {2, 2}} {
		kn := kn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ConfigureShard(%d, %d) accepted", kn[0], kn[1])
				}
			}()
			New().ConfigureShard(kn[0], kn[1])
		}()
	}
}

func TestShardOfNameStableAndInRange(t *testing.T) {
	const n = 5
	for _, name := range []string{"", "a", "sim-output", "warm-seg", "x/y/z"} {
		k := ShardOfName(name, n)
		if k < 0 || k >= n {
			t.Fatalf("ShardOfName(%q, %d) = %d", name, n, k)
		}
		if ShardOfName(name, n) != k {
			t.Fatalf("ShardOfName(%q) unstable", name)
		}
	}
	// The hash actually spreads: not every name on one shard.
	shards := map[int]bool{}
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		shards[ShardOfName(name, n)] = true
	}
	if len(shards) < 2 {
		t.Fatal("ShardOfName maps every probe name to one shard")
	}
}

// Replication entry points: a backup records what the primary decided,
// without touching its own cursor or validating ownership.
func TestSyncRegisterAndRemove(t *testing.T) {
	ns := New()
	ns.ConfigureShard(1, 2)
	before := ns.nextSegid
	ns.SyncRegister(0x2000, 7)
	if ns.nextSegid != before {
		t.Fatal("SyncRegister moved the allocation cursor")
	}
	if owner, ok := ns.Owner(0x2000); !ok || owner != 7 {
		t.Fatalf("synced owner = %d %v", owner, ok)
	}
	if err := ns.BindName("synced", 0x2000); err != nil {
		t.Fatal(err)
	}
	ns.SyncRemove(0x2000)
	if _, ok := ns.Owner(0x2000); ok {
		t.Fatal("synced removal kept the registration")
	}
	if _, ok := ns.Lookup("synced"); ok {
		t.Fatal("synced removal kept the name binding")
	}
}

// BindName is Publish without the ownership check (the binding shard
// cannot see a foreign shard's registration), but keeps first-come
// single-writer semantics.
func TestBindName(t *testing.T) {
	ns := New()
	if err := ns.BindName("", 0x2000); err == nil {
		t.Fatal("empty name bound")
	}
	if err := ns.BindName("n", 0x2000); err != nil {
		t.Fatal(err)
	}
	if err := ns.BindName("n", 0x2000); err != nil {
		t.Fatalf("idempotent rebind rejected: %v", err)
	}
	if err := ns.BindName("n", 0x3000); err == nil {
		t.Fatal("name stolen across segids")
	}
	if s, ok := ns.Lookup("n"); !ok || s != 0x2000 {
		t.Fatalf("lookup = %d %v", s, ok)
	}
}

func TestMarkEnclaveDownKeepsRegistrations(t *testing.T) {
	ns := New()
	s, _ := ns.AllocSegid(4)
	ns.MarkEnclaveDown(4)
	ns.MarkEnclaveDown(4) // idempotent
	ns.MarkEnclaveDown(xproto.NoEnclave)
	if !ns.EnclaveDown(4) || ns.EnclaveDown(5) {
		t.Fatal("down set wrong")
	}
	if ns.EnclavesDowned != 1 {
		t.Fatalf("EnclavesDowned = %d", ns.EnclavesDowned)
	}
	if _, ok := ns.Owner(s); !ok {
		t.Fatal("crash dropped the dead owner's registration")
	}
}

// Snapshot round-trip: encode → load into a fresh instance → re-encode
// must be byte-identical, and the loaded instance must keep allocating
// where the original left off.
func TestSnapshotRoundTrip(t *testing.T) {
	ns := New()
	ns.AllocEnclaveID()
	s, _ := ns.AllocSegid(2)
	ns.Publish("a", s, 2)
	s2, _ := ns.AllocSegid(3)
	ns.BindName("b", s2)
	ns.Lookup("a")
	ns.MarkEnclaveDown(3)

	var e snapshot.Enc
	ns.EncodeSnapshot(&e)

	fresh := New()
	if err := fresh.LoadSnapshot(snapshot.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	var e2 snapshot.Enc
	fresh.EncodeSnapshot(&e2)
	if !bytes.Equal(e.Data(), e2.Data()) {
		t.Fatal("snapshot round-trip not byte-identical")
	}
	if got, ok := fresh.Lookup("b"); !ok || got != s2 {
		t.Fatalf("restored lookup = %d %v", got, ok)
	}
	if !fresh.EnclaveDown(3) {
		t.Fatal("restored instance lost the down set")
	}
	a, b := ns.AllocSegid(2)
	c, d := fresh.AllocSegid(2)
	if b != nil || d != nil || a != c {
		t.Fatalf("cursors diverge after restore: %d vs %d", a, c)
	}
	// Removing a restored binding must also drop the rebuilt reverse
	// index entry.
	if err := fresh.RemoveSegid(s, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Lookup("a"); ok {
		t.Fatal("restored nameOf index did not drop the binding")
	}
}

func TestLoadSnapshotTruncated(t *testing.T) {
	ns := New()
	ns.AllocSegid(2)
	var e snapshot.Enc
	ns.EncodeSnapshot(&e)
	if err := New().LoadSnapshot(snapshot.NewDec(e.Data()[:3])); err == nil {
		t.Fatal("truncated section loaded")
	}
}
