// Package nameserver implements the centralized name server of §3.1: the
// single authority for enclave-ID allocation, globally unique segment-ID
// allocation, the segid→owner map used to route attachment commands, and
// the name registry that gives processes discoverability without local
// IPC constructs.
//
// The name server is deliberately passive state — the paper implements it
// "as a component of our XEMEM kernel module", and so do we: the enclave
// module that hosts it (normally the management enclave's) invokes these
// methods from its message loop.
package nameserver

import (
	"fmt"
	"sort"

	"xemem/internal/xproto"
)

// NS is the name server's state.
type NS struct {
	nextEnclave xproto.EnclaveID
	nextSegid   xproto.Segid
	owners      map[xproto.Segid]xproto.EnclaveID
	names       map[string]xproto.Segid
	// nameOf is the reverse index of names, so retiring a segid drops its
	// bindings without scanning the whole registry. A segid can carry
	// several names (publish is idempotent per name, first-come).
	nameOf map[xproto.Segid][]string
	// down records crashed enclaves. Their segid registrations are kept —
	// a lookup of a dead owner's segment must report "enclave down", not
	// "no such segment" — but requests toward them are answered with
	// StatusEnclaveDown instead of being forwarded.
	down map[xproto.EnclaveID]bool

	// Counters for the scalability analysis.
	EnclaveAllocs int
	SegidAllocs   int
	Lookups       int
	Forwards      int
	// EnclavesDowned counts crash notifications processed.
	EnclavesDowned int
}

// New returns an empty name server. The hosting enclave holds ID 1; the
// first allocated enclave ID is 2. Segids start above zero so a zero
// Segid is always invalid.
func New() *NS {
	return &NS{
		nextEnclave: xproto.NameServerID + 1,
		nextSegid:   0x1000,
		owners:      make(map[xproto.Segid]xproto.EnclaveID),
		names:       make(map[string]xproto.Segid),
		nameOf:      make(map[xproto.Segid][]string),
	}
}

// AllocEnclaveID hands out the next enclave ID.
func (ns *NS) AllocEnclaveID() xproto.EnclaveID {
	id := ns.nextEnclave
	ns.nextEnclave++
	ns.EnclaveAllocs++
	return id
}

// AllocSegid allocates a globally unique segment ID owned by the given
// enclave.
func (ns *NS) AllocSegid(owner xproto.EnclaveID) (xproto.Segid, error) {
	if owner == xproto.NoEnclave {
		return xproto.NoSegid, fmt.Errorf("nameserver: segid requested by unidentified enclave")
	}
	s := ns.nextSegid
	ns.nextSegid++
	ns.owners[s] = owner
	ns.SegidAllocs++
	return s, nil
}

// Owner reports the enclave owning segid.
func (ns *NS) Owner(s xproto.Segid) (xproto.EnclaveID, bool) {
	e, ok := ns.owners[s]
	return e, ok
}

// RemoveSegid retires a segid. Only the owning enclave may remove it. Any
// names bound to it are dropped.
func (ns *NS) RemoveSegid(s xproto.Segid, requester xproto.EnclaveID) error {
	owner, ok := ns.owners[s]
	if !ok {
		return fmt.Errorf("nameserver: unknown segid %d", s)
	}
	if owner != requester {
		return fmt.Errorf("nameserver: enclave %d cannot remove segid %d owned by %d", requester, s, owner)
	}
	delete(ns.owners, s)
	for _, name := range ns.nameOf[s] {
		delete(ns.names, name)
	}
	delete(ns.nameOf, s)
	return nil
}

// Publish binds a human-readable name to a segid so processes in other
// enclaves can discover it. The segid must exist and be published by its
// owner; names are first-come single-writer.
func (ns *NS) Publish(name string, s xproto.Segid, requester xproto.EnclaveID) error {
	if name == "" {
		return fmt.Errorf("nameserver: empty name")
	}
	owner, ok := ns.owners[s]
	if !ok {
		return fmt.Errorf("nameserver: publish of unknown segid %d", s)
	}
	if owner != requester {
		return fmt.Errorf("nameserver: enclave %d cannot publish segid %d owned by %d", requester, s, owner)
	}
	if bound, taken := ns.names[name]; taken {
		if bound != s {
			return fmt.Errorf("nameserver: name %q already bound to segid %d", name, bound)
		}
		return nil // re-publish of the same binding: already indexed
	}
	ns.names[name] = s
	ns.nameOf[s] = append(ns.nameOf[s], name)
	return nil
}

// Lookup resolves a published name to its segid.
func (ns *NS) Lookup(name string) (xproto.Segid, bool) {
	ns.Lookups++
	s, ok := ns.names[name]
	return s, ok
}

// Names lists published names, sorted (diagnostics).
func (ns *NS) Names() []string {
	out := make([]string, 0, len(ns.names))
	for n := range ns.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LiveSegids reports the number of live segment registrations.
func (ns *NS) LiveSegids() int { return len(ns.owners) }

// MarkEnclaveDown records that enclave e crashed. Its segid
// registrations are deliberately retained: subsequent gets and attaches
// of its segments fail with an attributable "enclave down" rather than
// a confusing "no such segment", and the IDs stay burned (segids are
// never reused, so a stale apid can never alias a new segment).
func (ns *NS) MarkEnclaveDown(e xproto.EnclaveID) {
	if e == xproto.NoEnclave || ns.down[e] {
		return
	}
	if ns.down == nil {
		ns.down = make(map[xproto.EnclaveID]bool)
	}
	ns.down[e] = true
	ns.EnclavesDowned++
}

// EnclaveDown reports whether e has been marked crashed.
func (ns *NS) EnclaveDown(e xproto.EnclaveID) bool { return ns.down[e] }
