// Package nameserver implements the centralized name server of §3.1: the
// single authority for enclave-ID allocation, globally unique segment-ID
// allocation, the segid→owner map used to route attachment commands, and
// the name registry that gives processes discoverability without local
// IPC constructs.
//
// The name server is deliberately passive state — the paper implements it
// "as a component of our XEMEM kernel module", and so do we: the enclave
// module that hosts it (normally the management enclave's) invokes these
// methods from its message loop.
package nameserver

import (
	"fmt"
	"sort"

	"xemem/internal/sim/snapshot"
	"xemem/internal/xproto"
)

// NS is the name server's state.
type NS struct {
	nextEnclave xproto.EnclaveID
	nextSegid   xproto.Segid
	// allocStep is the segid allocation stride: 1 for the flat deployment,
	// the shard count for a shard replica (ConfigureShard), so every shard
	// allocates within its own residue class and a segid's home shard is
	// computable locally (ShardOf) without a directory.
	allocStep xproto.Segid //xemem:nosnap -- deployment config (ConfigureShard stride), re-applied by the restore recipe's world build
	owners    map[xproto.Segid]xproto.EnclaveID
	names     map[string]xproto.Segid
	// nameOf is the reverse index of names, so retiring a segid drops its
	// bindings without scanning the whole registry. A segid can carry
	// several names (publish is idempotent per name, first-come).
	nameOf map[xproto.Segid][]string //xemem:nosnap -- derived reverse index; LoadSnapshot rebuilds it from the encoded names map
	// down records crashed enclaves. Their segid registrations are kept —
	// a lookup of a dead owner's segment must report "enclave down", not
	// "no such segment" — but requests toward them are answered with
	// StatusEnclaveDown instead of being forwarded.
	down map[xproto.EnclaveID]bool

	// Counters for the scalability analysis.
	EnclaveAllocs int
	SegidAllocs   int
	Lookups       int
	Forwards      int
	// EnclavesDowned counts crash notifications processed.
	EnclavesDowned int
}

// New returns an empty name server. The hosting enclave holds ID 1; the
// first allocated enclave ID is 2. Segids start above zero so a zero
// Segid is always invalid.
func New() *NS {
	return &NS{
		nextEnclave: xproto.NameServerID + 1,
		nextSegid:   0x1000,
		allocStep:   1,
		owners:      make(map[xproto.Segid]xproto.EnclaveID),
		names:       make(map[string]xproto.Segid),
		nameOf:      make(map[xproto.Segid][]string),
	}
}

// ConfigureShard turns this instance into shard k of n: segid allocation
// starts at 0x1000·n+k and strides by n, so every segid this shard hands
// out satisfies ShardOf(segid, n) == k. Call it once, before the first
// allocation; a warm-fork overlay re-applies it before LoadSnapshot
// restores the cursor (the stride is configuration, not snapshot state).
func (ns *NS) ConfigureShard(k, n int) {
	if n <= 0 || k < 0 || k >= n {
		panic(fmt.Sprintf("nameserver: shard %d of %d", k, n))
	}
	ns.allocStep = xproto.Segid(n)
	ns.nextSegid = xproto.Segid(0x1000*n + k)
}

// ShardOf reports the home shard of a segid under n-way residue-class
// partitioning.
func ShardOf(s xproto.Segid, n int) int { return int(uint64(s) % uint64(n)) }

// ShardOfName reports the home shard of a published name: an FNV-1a hash
// of the name, reduced mod n. Names and segids generally live on
// different shards — a name binding resolves to a segid whose
// registration then resolves at the segid's own home shard.
func ShardOfName(name string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// AllocEnclaveID hands out the next enclave ID.
func (ns *NS) AllocEnclaveID() xproto.EnclaveID {
	id := ns.nextEnclave
	ns.nextEnclave++
	ns.EnclaveAllocs++
	return id
}

// AllocSegid allocates a globally unique segment ID owned by the given
// enclave.
func (ns *NS) AllocSegid(owner xproto.EnclaveID) (xproto.Segid, error) {
	if owner == xproto.NoEnclave {
		return xproto.NoSegid, fmt.Errorf("nameserver: segid requested by unidentified enclave")
	}
	s := ns.nextSegid
	ns.nextSegid += ns.allocStep
	ns.owners[s] = owner
	ns.SegidAllocs++
	return s, nil
}

// SyncRegister installs a segid registration replicated from another
// shard replica (MsgShardSyncAlloc). Unlike AllocSegid it does not touch
// the allocation cursor — the primary allocated; the backup records.
func (ns *NS) SyncRegister(s xproto.Segid, owner xproto.EnclaveID) {
	ns.owners[s] = owner
}

// SyncRemove retires a segid replicated from another shard replica
// (MsgShardSyncRemove): no ownership check — the primary validated.
func (ns *NS) SyncRemove(s xproto.Segid) {
	delete(ns.owners, s)
	for _, name := range ns.nameOf[s] {
		delete(ns.names, name)
	}
	delete(ns.nameOf, s)
}

// BindName binds a name to a segid without validating the registration:
// under sharding, a name's home shard is generally not the segid's home
// shard, so the binding shard cannot see the registration. First-come
// single-writer, like Publish.
func (ns *NS) BindName(name string, s xproto.Segid) error {
	if name == "" {
		return fmt.Errorf("nameserver: empty name")
	}
	if bound, taken := ns.names[name]; taken {
		if bound != s {
			return fmt.Errorf("nameserver: name %q already bound to segid %d", name, bound)
		}
		return nil
	}
	ns.names[name] = s
	ns.nameOf[s] = append(ns.nameOf[s], name)
	return nil
}

// Owner reports the enclave owning segid.
func (ns *NS) Owner(s xproto.Segid) (xproto.EnclaveID, bool) {
	e, ok := ns.owners[s]
	return e, ok
}

// RemoveSegid retires a segid. Only the owning enclave may remove it. Any
// names bound to it are dropped.
func (ns *NS) RemoveSegid(s xproto.Segid, requester xproto.EnclaveID) error {
	owner, ok := ns.owners[s]
	if !ok {
		return fmt.Errorf("nameserver: unknown segid %d", s)
	}
	if owner != requester {
		return fmt.Errorf("nameserver: enclave %d cannot remove segid %d owned by %d", requester, s, owner)
	}
	delete(ns.owners, s)
	for _, name := range ns.nameOf[s] {
		delete(ns.names, name)
	}
	delete(ns.nameOf, s)
	return nil
}

// Publish binds a human-readable name to a segid so processes in other
// enclaves can discover it. The segid must exist and be published by its
// owner; names are first-come single-writer.
func (ns *NS) Publish(name string, s xproto.Segid, requester xproto.EnclaveID) error {
	if name == "" {
		return fmt.Errorf("nameserver: empty name")
	}
	owner, ok := ns.owners[s]
	if !ok {
		return fmt.Errorf("nameserver: publish of unknown segid %d", s)
	}
	if owner != requester {
		return fmt.Errorf("nameserver: enclave %d cannot publish segid %d owned by %d", requester, s, owner)
	}
	if bound, taken := ns.names[name]; taken {
		if bound != s {
			return fmt.Errorf("nameserver: name %q already bound to segid %d", name, bound)
		}
		return nil // re-publish of the same binding: already indexed
	}
	ns.names[name] = s
	ns.nameOf[s] = append(ns.nameOf[s], name)
	return nil
}

// Lookup resolves a published name to its segid.
func (ns *NS) Lookup(name string) (xproto.Segid, bool) {
	ns.Lookups++
	s, ok := ns.names[name]
	return s, ok
}

// Names lists published names, sorted (diagnostics).
func (ns *NS) Names() []string {
	out := make([]string, 0, len(ns.names))
	for n := range ns.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LiveSegids reports the number of live segment registrations.
func (ns *NS) LiveSegids() int { return len(ns.owners) }

// MarkEnclaveDown records that enclave e crashed. Its segid
// registrations are deliberately retained: subsequent gets and attaches
// of its segments fail with an attributable "enclave down" rather than
// a confusing "no such segment", and the IDs stay burned (segids are
// never reused, so a stale apid can never alias a new segment).
func (ns *NS) MarkEnclaveDown(e xproto.EnclaveID) {
	if e == xproto.NoEnclave || ns.down[e] {
		return
	}
	if ns.down == nil {
		ns.down = make(map[xproto.EnclaveID]bool)
	}
	ns.down[e] = true
	ns.EnclavesDowned++
}

// EnclaveDown reports whether e has been marked crashed.
func (ns *NS) EnclaveDown(e xproto.EnclaveID) bool { return ns.down[e] }

// EncodeSnapshot appends the name server's full state to e: allocation
// cursors, counters, and the registries with every map collected and
// sorted first. The nameOf reverse index is not encoded — it is derivable
// from the name registry.
func (ns *NS) EncodeSnapshot(e *snapshot.Enc) {
	e.U64(uint64(ns.nextEnclave))
	e.U64(uint64(ns.nextSegid))
	e.U64(uint64(ns.EnclaveAllocs))
	e.U64(uint64(ns.SegidAllocs))
	e.U64(uint64(ns.Lookups))
	e.U64(uint64(ns.Forwards))
	e.U64(uint64(ns.EnclavesDowned))
	segids := make([]xproto.Segid, 0, len(ns.owners))
	for s := range ns.owners {
		segids = append(segids, s)
	}
	sort.Slice(segids, func(i, j int) bool { return segids[i] < segids[j] })
	e.U64(uint64(len(segids)))
	for _, s := range segids {
		e.U64(uint64(s))
		e.U64(uint64(ns.owners[s]))
	}
	names := ns.Names()
	e.U64(uint64(len(names)))
	for _, n := range names {
		e.Str(n)
		e.U64(uint64(ns.names[n]))
	}
	downs := make([]xproto.EnclaveID, 0, len(ns.down))
	for id := range ns.down {
		downs = append(downs, id)
	}
	sort.Slice(downs, func(i, j int) bool { return downs[i] < downs[j] })
	e.U64(uint64(len(downs)))
	for _, id := range downs {
		e.U64(uint64(id))
	}
}

// LoadSnapshot replaces the name server's state from a section encoded by
// EncodeSnapshot (warm-fork overlay). The nameOf index is rebuilt from
// the decoded name registry.
func (ns *NS) LoadSnapshot(d *snapshot.Dec) error {
	nextEnclave := xproto.EnclaveID(d.U64())
	nextSegid := xproto.Segid(d.U64())
	enclaveAllocs := int(d.U64())
	segidAllocs := int(d.U64())
	lookups := int(d.U64())
	forwards := int(d.U64())
	downed := int(d.U64())
	nowners := d.U64()
	owners := make(map[xproto.Segid]xproto.EnclaveID, min64(nowners, 1024))
	for i := uint64(0); i < nowners && d.Err() == nil; i++ {
		owners[xproto.Segid(d.U64())] = xproto.EnclaveID(d.U64())
	}
	nnames := d.U64()
	names := make(map[string]xproto.Segid, min64(nnames, 1024))
	nameOf := make(map[xproto.Segid][]string, min64(nnames, 1024))
	for i := uint64(0); i < nnames && d.Err() == nil; i++ {
		n := d.Str()
		s := xproto.Segid(d.U64())
		names[n] = s
		nameOf[s] = append(nameOf[s], n)
	}
	ndown := d.U64()
	var down map[xproto.EnclaveID]bool
	if ndown > 0 {
		down = make(map[xproto.EnclaveID]bool, min64(ndown, 1024))
	}
	for i := uint64(0); i < ndown && d.Err() == nil; i++ {
		down[xproto.EnclaveID(d.U64())] = true
	}
	if d.Err() != nil {
		return d.Err()
	}
	ns.nextEnclave, ns.nextSegid = nextEnclave, nextSegid
	ns.EnclaveAllocs, ns.SegidAllocs = enclaveAllocs, segidAllocs
	ns.Lookups, ns.Forwards, ns.EnclavesDowned = lookups, forwards, downed
	ns.owners, ns.names, ns.nameOf, ns.down = owners, names, nameOf, down
	return nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
