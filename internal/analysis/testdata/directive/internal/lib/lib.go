// Package lib is a directive fixture: every //xemem: misuse the driver
// must reject.
package lib

// NoReason carries an allow without the mandatory reason.
func NoReason() {
	_ = 1 //xemem:allow maporder
}

// UnknownAnalyzer names an analyzer that does not exist.
func UnknownAnalyzer() {
	_ = 1 //xemem:allow frobcheck -- no such analyzer
}

// AllowDeterminism tries the generic form on the analyzer that only
// accepts wallclock.
func AllowDeterminism() {
	_ = 1 //xemem:allow determinism -- must use wallclock instead
}

// UnknownDirective uses a verb the driver does not know.
func UnknownDirective() {
	_ = 1 //xemem:frobnicate -- nonsense
}

// BareWallclock has no reason after the wallclock verb.
func BareWallclock() {
	_ = 1 //xemem:wallclock
}

// BareNosnap has no reason after the nosnap verb.
func BareNosnap() {
	_ = 1 //xemem:nosnap
}

// AllowSnapshotcheck tries the generic form on the analyzer whose
// exceptions are per-field.
func AllowSnapshotcheck() {
	_ = 1 //xemem:allow snapshotcheck -- must annotate the field instead
}
