// Package other writes a foreign package's hook from library code:
// flagged.
package other

import "fixture/internal/lib"

// Hijack swaps lib's hook mid-flight.
func Hijack() {
	saved := lib.Hook
	lib.Hook = nil
	_ = saved
}
