// Package lib is a hookstate fixture: a package-level hook variable and
// the library-side writes that must be flagged.
package lib

// Hook is the package-level observer hook.
var Hook func(int)

// Install writes the hook from library code: flagged even in the
// declaring package (the Fig6Explain bug class).
func Install(f func(int)) {
	Hook = f
}

// InstallExcused is the same write with a reasoned suppression.
func InstallExcused(f func(int)) {
	Hook = f //xemem:allow hookstate -- fixture: registration helper invoked only by driver binaries before any world runs
}

// Counter is a non-func package variable: writes to it are out of
// scope.
var Counter int

// Bump mutates ordinary package state, which hookstate ignores.
func Bump() { Counter++; Counter = Counter + 1 }
