// Package lib is a hookstate fixture: a package-level hook variable and
// the library-side writes that must be flagged.
package lib

// Hook is the package-level observer hook.
var Hook func(int)

// Install writes the hook from library code: flagged even in the
// declaring package (the Fig6Explain bug class).
func Install(f func(int)) {
	Hook = f
}

// InstallExcused is the same write with a reasoned suppression.
func InstallExcused(f func(int)) {
	Hook = f //xemem:allow hookstate -- fixture: registration helper invoked only by driver binaries before any world runs
}

// PartHooks is a per-partition hook table: one observer slot per
// engine partition. Element writes are hook installs.
var PartHooks [4]func(int)

// HookByPart is the map-shaped per-partition table.
var HookByPart = map[int]func(int){}

// Chain is a slice-shaped hook chain.
var Chain []func(int)

// InstallPart writes one partition's slot from library code: flagged,
// same bug class as the scalar hook.
func InstallPart(p int, f func(int)) {
	PartHooks[p] = f
}

// InstallByPart writes the map-shaped table: flagged.
func InstallByPart(p int, f func(int)) {
	HookByPart[p] = f
}

// InstallChain appends to the hook chain: flagged (the slice itself is
// the package-level hook).
func InstallChain(f func(int)) {
	Chain = append(Chain, f)
}

// Counter is a non-func package variable: writes to it are out of
// scope.
var Counter int

// Bump mutates ordinary package state, which hookstate ignores.
func Bump() { Counter++; Counter = Counter + 1 }
