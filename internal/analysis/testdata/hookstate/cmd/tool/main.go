// Command tool is the fixture driver binary: hook registration in
// package main is the one blessed location.
package main

import "fixture/internal/lib"

func main() {
	lib.Hook = func(int) {}
}
