// Package xpmem is a paircheck fixture: the acquire/release method
// surface the analyzer pairs up.
package xpmem

// Session mirrors the real API's handle-returning surface.
type Session struct{}

// Get returns an access permit.
func (s *Session) Get(segid int) (int, error) { return segid + 1, nil }

// Release retires a permit.
func (s *Session) Release(apid int) error { return nil }

// Attach returns a mapping address.
func (s *Session) Attach(apid int) (uintptr, error) { return uintptr(apid), nil }

// Detach unmaps an attachment.
func (s *Session) Detach(va uintptr) error { return nil }

// GetWith is the option-struct form of Get.
func (s *Session) GetWith(segid int) (int, error) { return segid + 1, nil }

// AttachWith is the option-struct form of Attach.
func (s *Session) AttachWith(apid int) (uintptr, error) { return uintptr(apid), nil }

// AttachCached is the registration-cache form of Attach: same handle,
// same Detach.
func (s *Session) AttachCached(apid int) (uintptr, error) { return uintptr(apid), nil }
