// Registration-cache pairs: the AttachCached/Detach handle and the
// collective communicator's register/unregister binding.
package app

import "fixture/internal/xpmem"

// Communicator mirrors internal/coll's binding-owning surface.
type Communicator struct{ s *xpmem.Session }

// register acquires a registration-cache binding.
func (c *Communicator) register(src int) (int, error) { return src, nil }

// unregister retires a binding.
func (c *Communicator) unregister(b int) error { return nil }

// LeakCachedBlank binds the cached attachment address to the blank
// identifier.
func LeakCachedBlank(s *xpmem.Session) error {
	_, err := s.AttachCached(7)
	return err
}

// PairedCached detaches the cached window: the same retire call as the
// plain forms, so the analyzer must stay silent.
func PairedCached(s *xpmem.Session) error {
	va, err := s.AttachCached(7)
	if err != nil {
		return err
	}
	return s.Detach(va)
}

// LeakBinding never mentions the registration binding again.
func LeakBinding(c *Communicator) {
	b, _ := c.register(3)
}

// PairedBinding unregisters on teardown — silent.
func PairedBinding(c *Communicator) error {
	b, err := c.register(3)
	if err != nil {
		return err
	}
	return c.unregister(b)
}

// TransfersBinding stores the binding into caller-owned state: the
// owner drives teardown later, so ownership escapes and the analyzer
// must stay silent.
func TransfersBinding(c *Communicator, binds map[int]int) error {
	b, err := c.register(3)
	if err != nil {
		return err
	}
	binds[3] = b
	return nil
}
