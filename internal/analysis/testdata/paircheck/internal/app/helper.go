// Interprocedural paircheck cases: a helper that retires the handle on
// the caller's behalf (silent), and a handle that is only ever read —
// every use is a neutral inspection, so no path releases or takes
// ownership of it (flagged).
package app

import "fixture/internal/xpmem"

// retire releases a permit for its caller.
func retire(s *xpmem.Session, apid int) {
	s.Release(apid)
}

// PairedViaHelper retires through the helper: the summary must carry
// the release back to the acquire site.
func PairedViaHelper(s *xpmem.Session) {
	apid, _ := s.Get(7)
	retire(s, apid)
}

// classify only inspects its argument.
func classify(apid int) bool {
	if apid > 0 {
		return true
	}
	return false
}

// ReadOnly inspects the permit but never releases or transfers it: the
// reads defeat the syntactic "never used again" rule, so the
// interprocedural verdict must catch it.
func ReadOnly(s *xpmem.Session) {
	apid, _ := s.Get(7)
	if classify(apid) {
		return
	}
}
