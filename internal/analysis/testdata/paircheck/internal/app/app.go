// Package app exercises every paircheck verdict: leaks that must be
// flagged, ownership transfers that must not, and a suppressed leak.
package app

import "fixture/internal/xpmem"

// LeakDiscarded drops the Get result outright.
func LeakDiscarded(s *xpmem.Session) {
	s.Get(7)
}

// LeakBlank binds the attachment address to the blank identifier.
func LeakBlank(s *xpmem.Session) error {
	_, err := s.Attach(7)
	return err
}

// LeakUnused never mentions the permit again.
func LeakUnused(s *xpmem.Session) {
	apid, _ := s.Get(7)
}

// LeakExcused is LeakUnused with a reasoned suppression.
func LeakExcused(s *xpmem.Session) {
	apid, _ := s.Get(7) //xemem:allow paircheck -- fixture: teardown is exercised by the world's end-of-run sweep
}

// Paired releases on every path, one of them deferred.
func Paired(s *xpmem.Session) error {
	apid, err := s.Get(7)
	if err != nil {
		return err
	}
	defer s.Release(apid)
	va, err := s.Attach(apid)
	if err != nil {
		return err
	}
	return s.Detach(va)
}

// Transfers hands the permit to its caller: ownership escapes, so the
// analyzer must stay silent.
func Transfers(s *xpmem.Session) (int, error) {
	return s.Get(7)
}

// TransfersVar stores the permit into a struct the caller owns.
func TransfersVar(s *xpmem.Session, out *struct{ Apid int }) error {
	apid, err := s.Get(7)
	out.Apid = apid
	return err
}

// LeakOptsUnused never mentions the option-form permit again.
func LeakOptsUnused(s *xpmem.Session) {
	apid, _ := s.GetWith(7)
}

// LeakOptsDiscarded drops the option-form attachment outright.
func LeakOptsDiscarded(s *xpmem.Session) {
	s.AttachWith(7)
}

// PairedOpts releases and detaches the option-form handles — the same
// retire calls as the positional forms, so the analyzer must stay
// silent.
func PairedOpts(s *xpmem.Session) error {
	apid, err := s.GetWith(7)
	if err != nil {
		return err
	}
	defer s.Release(apid)
	va, err := s.AttachWith(apid)
	if err != nil {
		return err
	}
	return s.Detach(va)
}
