// Package sim is a partition-fixture stub of the engine's actor API:
// just enough surface for the analyzer to resolve receiver types.
package sim

// Actor is the stub actor.
type Actor struct{ id int }

// Identity methods — immutable, safe to read on any actor.
func (a *Actor) ID() int        { return a.id }
func (a *Actor) Name() string   { return "" }
func (a *Actor) Partition() int { return 0 }

// State methods — partition-local.
func (a *Actor) Now() int64       { return 0 }
func (a *Actor) Advance(d int64)  {}
func (a *Actor) Unblock(b *Actor) {}
func (a *Actor) RNG() int         { return 0 }

// Pool is the stub scheduler surface: Go runs a closure as part of
// another partition's dispatch.
type Pool struct{}

func (p *Pool) Go(f func()) {}

// Mailbox is the stub cross-partition channel.
type Mailbox struct{}

func (m *Mailbox) Send(a *Actor, v any, lat int64) {}
func (m *Mailbox) Recv(a *Actor) any               { return nil }
