// Package app exercises the partition analyzer: state access on a
// foreign actor inside an actor closure is flagged; identity reads,
// own-receiver primitives, explicit two-actor helpers, build-time code,
// and reasoned suppressions stay silent.
package app

import "fixture/internal/sim"

// Peers wires a captured actor into a worker closure the wrong way:
// the worker reads and mutates the waiter's state directly.
func Peers(spawn func(func(*sim.Actor)), waiter *sim.Actor) {
	spawn(func(a *sim.Actor) {
		_ = waiter.Now()       // flagged: foreign clock read
		waiter.Advance(5)      // flagged: foreign clock mutation
		_ = waiter.RNG()       // flagged: foreign RNG stream draw
		a.Unblock(waiter)      // silent: the running actor's own primitive
		_ = waiter.ID()        // silent: immutable identity
		_ = waiter.Name()      // silent
		_ = waiter.Partition() // silent
	})
}

// Helper receives both actors as parameters: the caller handed them
// over explicitly, which is the two-actor contract the engine's own
// primitives use.
func Helper(a, b *sim.Actor) {
	_ = b.Now()
	a.Unblock(b)
}

// Nested actor closures re-scope: the outer running actor is foreign
// inside the inner actor body, but a plain closure (a Poll condition)
// inherits the dispatch it runs in.
func Nested(spawn func(func(*sim.Actor))) {
	spawn(func(a *sim.Actor) {
		spawn(func(b *sim.Actor) {
			_ = a.Now() // flagged: a is not the running actor here
			_ = b.Now() // silent
		})
		cond := func() bool { return a.Now() > 0 } // silent: runs within a's dispatch
		_ = cond
	})
}

// Excused documents a known same-partition pairing.
func Excused(spawn func(func(*sim.Actor)), peer *sim.Actor) {
	spawn(func(a *sim.Actor) {
		_ = peer.Now() //xemem:allow partition -- fixture: both actors pinned to one partition by construction
	})
}

// Build runs before any window exists: no actor scope, no findings.
func Build(actors []*sim.Actor) int64 {
	var total int64
	for _, a := range actors {
		total += a.Now()
	}
	return total
}
