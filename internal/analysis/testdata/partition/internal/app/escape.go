// Closure-escape cases for the partition analyzer: a plain closure
// that captures the running actor must not leave the dispatch that
// owns it — not via `go`, not via a scheduler spawn, and not via a
// helper whose summary says the parameter runs on another goroutine.
package app

import "fixture/internal/sim"

// runLater hands the closure to another goroutine: its parameter
// go-escapes, which the summary must record.
func runLater(f func()) { go f() }

// runNow invokes the closure synchronously, inside the calling
// dispatch: handing it an actor capture is fine.
func runNow(f func()) { f() }

// GoEscape launches a goroutine straight from the actor body.
func GoEscape(spawn func(func(*sim.Actor))) {
	spawn(func(a *sim.Actor) {
		go func() { a.Advance(1) }() // flagged: leaves the dispatch
	})
}

// HelperEscape hands an actor-capturing closure to runLater: the
// escape happens inside the helper, so only the summary sees it.
func HelperEscape(spawn func(func(*sim.Actor))) {
	spawn(func(a *sim.Actor) {
		runLater(func() { a.Advance(1) }) // flagged via runLater's summary
	})
}

// NamedEscape binds the closure to a local first; the escape is the
// same.
func NamedEscape(spawn func(func(*sim.Actor))) {
	spawn(func(a *sim.Actor) {
		tick := func() { a.Advance(1) }
		runLater(tick) // flagged via the tracked local
	})
}

// SpawnEscape hands the closure to a scheduler spawn by name.
func SpawnEscape(spawn func(func(*sim.Actor)), pool *sim.Pool) {
	spawn(func(a *sim.Actor) {
		pool.Go(func() { a.Advance(1) }) // flagged: scheduler spawn
	})
}

// SyncHelper stays silent: runNow runs the closure within this
// dispatch.
func SyncHelper(spawn func(func(*sim.Actor))) {
	spawn(func(a *sim.Actor) {
		runNow(func() { a.Advance(1) })
	})
}

// EscapeExcused pins the suppression path for the escape rule.
func EscapeExcused(spawn func(func(*sim.Actor))) {
	spawn(func(a *sim.Actor) {
		runLater(func() { a.Advance(1) }) //xemem:allow partition -- fixture: the helper re-enters the same partition by construction
	})
}
