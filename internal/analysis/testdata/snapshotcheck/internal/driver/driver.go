// Package driver mutates a snapshotted type from outside its package:
// the owning package cannot see the write, so it must travel as an
// external-write fact to keep the module-wide verdict sound.
package driver

import "fixture/internal/comp"

// Poke skews a counter from the outside.
func Poke(c *comp.Counter) { c.Skew++ }
