// Package comp exercises every snapshotcheck verdict: a dropped
// mutable field, a field the decoder never reads back, a delegated
// type's dropped field, a reasoned //xemem:nosnap exception, and the
// silent cases — immutable fields, covered fields, and an encoder that
// is never registered or delegated to.
package comp

import "fixture/internal/sim"

// Counter is the registered component.
type Counter struct {
	// ticks is mutable, encoded, and decoded: silent.
	ticks uint64
	// drops is mutable but the encoder never writes it: flagged.
	drops uint64
	// sent is encoded but LoadSnapshot never reads it back: flagged.
	sent uint64
	// cache is mutable and unencoded, with a reasoned exception.
	cache uint64 //xemem:nosnap -- fixture: derived from ticks, recomputed on the next Tick
	// Skew is written only by the driver package: the external-write
	// fact must still mark it mutable, and it is unencoded: flagged.
	Skew uint64
	// label is set only by the constructor: immutable, silent.
	label string
	// nested is the delegation edge: Counter's codec calls Nested's.
	nested *Nested
}

// NewCounter builds a counter; constructor writes do not count as
// mutations.
func NewCounter(label string) *Counter {
	return &Counter{label: label, nested: &Nested{}}
}

// Tick mutates the counted state.
func (c *Counter) Tick() {
	c.ticks++
	c.sent++
	c.cache = c.ticks * 2
}

// Drop mutates the field the encoder forgot.
func (c *Counter) Drop() { c.drops++ }

// EncodeSnapshot writes everything but drops, cache, and Skew; the
// nested component is delegated.
func (c *Counter) EncodeSnapshot(w *sim.Writer) {
	w.U64(c.ticks)
	w.U64(c.sent)
	c.nested.EncodeSnapshot(w)
}

// LoadSnapshot restores ticks but skips over sent's slot without
// reading it back.
func (c *Counter) LoadSnapshot(r *sim.Reader) {
	c.ticks = r.U64()
	_ = r.U64()
	c.nested.LoadSnapshot(r)
}

// Nested is never registered itself: it enters the snapshot graph
// through Counter's delegation.
type Nested struct {
	// depth is covered by both codecs: silent.
	depth uint64
	// lost is mutable but never encoded: flagged.
	lost uint64
}

// Bump mutates both nested fields.
func (n *Nested) Bump() {
	n.depth++
	n.lost++
}

// EncodeSnapshot writes depth only.
func (n *Nested) EncodeSnapshot(w *sim.Writer) { w.U64(n.depth) }

// LoadSnapshot restores depth.
func (n *Nested) LoadSnapshot(r *sim.Reader) { n.depth = r.U64() }

// Gauge is registered through a closure wrapper; its one mutable field
// is covered, so it stays silent. No LoadSnapshot: the read-back check
// does not apply.
type Gauge struct{ level uint64 }

// Set mutates the gauge.
func (g *Gauge) Set(v uint64) { g.level = v }

// EncodeSnapshot writes the level.
func (g *Gauge) EncodeSnapshot(w *sim.Writer) { w.U64(g.level) }

// Scratch has an encoder and a mutated field but is neither registered
// nor delegated to: outside the snapshot graph, silent.
type Scratch struct{ n uint64 }

// Inc mutates the scratch counter.
func (s *Scratch) Inc() { s.n++ }

// EncodeSnapshot exists but nothing reaches it.
func (s *Scratch) EncodeSnapshot(w *sim.Writer) { w.U64(s.n) }

// Register wires the two components: a method value for the counter, a
// closure wrapper for the gauge.
func Register(w *sim.World, c *Counter, g *Gauge) {
	w.AddSnapshotComponent("counter", c.EncodeSnapshot)
	w.AddSnapshotComponent("gauge", func(sw *sim.Writer) { g.EncodeSnapshot(sw) })
}
