// Package sim is a snapshotcheck fixture stub: just the snapshot
// registration and byte-stream surface the analyzer keys on.
package sim

// Writer is the stub snapshot encoder stream.
type Writer struct{ buf []byte }

// U64 appends one value.
func (w *Writer) U64(v uint64) { w.buf = append(w.buf, byte(v)) }

// Reader is the stub snapshot decoder stream.
type Reader struct {
	buf []byte
	off int
}

// U64 consumes one value.
func (r *Reader) U64() uint64 {
	v := uint64(r.buf[r.off])
	r.off++
	return v
}

// World registers snapshot components.
type World struct{ comps []func(*Writer) }

// AddSnapshotComponent registers one component's encoder.
func (w *World) AddSnapshotComponent(name string, enc func(*Writer)) {
	w.comps = append(w.comps, enc)
}
