package sim

import "time"

// HostTimer is a legitimate wall-clock benchmark timer: every read is
// annotated, so the analyzer stays silent here.
func HostTimer() float64 {
	start := time.Now() //xemem:wallclock -- host-side benchmark timer
	//xemem:wallclock -- host-side benchmark timer
	return time.Since(start).Seconds()
}
