// Package sim is a determinism fixture: every construct here reads
// host state the analyzer must flag.
package sim

import (
	"math/rand"
	"os"
	"time"
)

// Elapsed reads the host clock twice.
func Elapsed() int64 {
	start := time.Now()
	return int64(time.Since(start))
}

// Jitter mixes the global rand stream and process identity into what
// pretends to be simulated state.
func Jitter() int {
	return rand.Intn(10) + os.Getpid()
}
