// Package sub is the fixture substrate: it charges Costs.Used through
// an intermediate local, the flow chargecheck must follow.
package sub

import "fixture/internal/sim"

// DoWork charges c.Used indirectly: field → local → arithmetic → Charge.
func DoWork(a *sim.Actor, c *sim.Costs, pages int) {
	perPage := c.Used
	total := sim.Time(pages) * perPage
	a.Charge("work", total)
}
