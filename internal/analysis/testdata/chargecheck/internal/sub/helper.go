// Interprocedural chargecheck cases: a cost that reaches the sink only
// through a laundering helper's parameter, one that reaches it as a
// helper's return value, and one a helper returns to a caller that
// never sinks it.
package sub

import "fixture/internal/sim"

// chargeAll launders its cost through a parameter: a caller passing a
// Costs field here is charging it.
func chargeAll(a *sim.Actor, op string, d sim.Time) {
	a.Charge(op, d)
}

// Laundered charges c.Helper only via chargeAll.
func Laundered(a *sim.Actor, c *sim.Costs) {
	chargeAll(a, "helper", c.Helper)
}

// pick returns a cost for the caller to spend.
func pick(c *sim.Costs) sim.Time { return c.Picked }

// Picked sinks pick's result, so Costs.Picked counts as charged.
func Picked(a *sim.Actor, c *sim.Costs) {
	a.Charge("picked", pick(c))
}

// pickDead also returns a cost, but its only caller just compares the
// result against zero — Costs.PickedDead stays dead.
func pickDead(c *sim.Costs) sim.Time { return c.PickedDead }

// Compared never sinks pickDead's result.
func Compared(c *sim.Costs) bool { return pickDead(c) > 0 }
