// Lease-expiry cases for the chargecheck fixture: a name-service lease
// cache charges a probe cost on every validity check, but the TTL it
// compares the clock against is never itself charged — a deadline
// comparison is a read, not a charge sink.
package sim

// LeaseValid charges the expiry probe, then compares the lease's fill
// time against the TTL. LeaseCheck reaches a sink (silent); LeaseExpiry
// appears only in the comparison (flagged at its declaration).
func (a *Actor) LeaseValid(c *Costs, filled Time) bool {
	a.Charge("lease-check", c.LeaseCheck)
	if a.now-filled < c.LeaseExpiry {
		return true
	}
	return false
}
