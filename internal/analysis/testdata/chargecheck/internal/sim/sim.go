// Package sim is a chargecheck fixture: a miniature cost model and
// actor with one live constant, one dead constant, one excused
// constant, and one clock-bypassing method.
package sim

// Time is simulated nanoseconds.
type Time int64

// Costs is the fixture cost model.
type Costs struct {
	// Used flows into a Charge through a local variable.
	Used Time

	// Dead is charged nowhere: the analyzer must flag it.
	Dead Time

	// Excused is also charged nowhere, but carries a suppression.
	//
	//xemem:allow chargecheck -- fixture: deliberately unwired to prove the directive works
	Excused Time

	// LeaseCheck is charged by the lease-expiry probe in lease.go.
	LeaseCheck Time

	// LeaseExpiry is a TTL the lease path only compares against the
	// clock; reading is not charging, so the analyzer must flag it.
	LeaseExpiry Time

	// Helper reaches a Charge only through the laundering helper in
	// sub/helper.go — the summary edge chargecheck must follow.
	Helper Time

	// Picked reaches a Charge as a helper's return value: the helper
	// returns it and the caller sinks the result.
	Picked Time

	// PickedDead is returned by a helper whose result is never sunk:
	// returning is not charging, so the analyzer must flag it.
	PickedDead Time
}

// Actor is the fixture actor.
type Actor struct{ now Time }

// Advance is the charge path.
func (a *Actor) Advance(d Time) { a.now += d }

// Charge is the labelled charge path.
func (a *Actor) Charge(op string, d Time) { a.Advance(d) }

// Warp writes the clock directly: the analyzer must flag it.
func (a *Actor) Warp(t Time) { a.now = t }

// WarpExcused also writes the clock directly, with a reasoned
// suppression.
func (a *Actor) WarpExcused(t Time) {
	a.now = t //xemem:allow chargecheck -- fixture: suppressed clock write
}
