// Package acct holds a non-exporter map walk maporder must ignore: the
// analyzer's scope is trace packages and serializer-named functions.
package acct

// Total is order-insensitive accounting outside the exporter scope.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
