// Snapshot-encoder cases for the maporder fixture: the snapshot image
// hash is a golden artifact, so snapshot encoders (EncodeSnapshot
// methods, unexported encode* helpers) are exporter-feeding.
package trace

import "sort"

// Enc stands in for the snapshot encoder.
type Enc struct{ data []byte }

// U64 appends a value.
func (e *Enc) U64(v uint64) { e.data = append(e.data, byte(v)) }

// World is a fixture container with map-shaped state.
type World struct {
	frames map[uint64]uint64
	live   map[uint64]bool
}

// EncodeSnapshot ranges straight over a map while encoding: flagged.
func (w *World) EncodeSnapshot(e *Enc) {
	for f, v := range w.frames {
		e.U64(f)
		e.U64(v)
	}
}

// encodeSorted collects — with a tombstone filter — then sorts: silent.
func (w *World) encodeSorted(e *Enc) {
	keys := make([]uint64, 0, len(w.frames))
	for f := range w.frames {
		if w.live[f] {
			keys = append(keys, f)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, f := range keys {
		e.U64(f)
		e.U64(w.frames[f])
	}
}

// encodeExcused ranges over a map with a reasoned suppression: silent.
func (w *World) encodeExcused(e *Enc) {
	total := uint64(0)
	//xemem:allow maporder -- fixture: commutative sum, order cannot reach the encoding
	for _, v := range w.frames {
		total += v
	}
	e.U64(total)
}

// loadSnapshotHelper is on the decode side but carries the Snapshot
// marker: a bare map range here is flagged too.
func (w *World) RestoreSnapshot() uint64 {
	n := uint64(0)
	for f := range w.frames {
		n += f
	}
	return n
}
