// Package trace is a maporder fixture: exporter-feeding map iteration
// in its flagged, idiomatic, suppressed, and out-of-scope forms.
package trace

import (
	"fmt"
	"sort"
)

// WriteBad ranges straight over a map while exporting: flagged.
func WriteBad(m map[string]int) string {
	out := ""
	for k, v := range m {
		out += fmt.Sprintf("%s=%d\n", k, v)
	}
	return out
}

// WriteSorted is the collect-then-sort idiom: silent.
func WriteSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d\n", k, m[k])
	}
	return out
}

// WriteExcused ranges over a map with a reasoned suppression.
func WriteExcused(m map[string]int) int {
	total := 0
	//xemem:allow maporder -- fixture: commutative sum, order cannot reach the export
	for _, v := range m {
		total += v
	}
	return total
}
