// Shard-map cases for the maporder fixture: a sharded name service
// keeps per-segid lease maps and per-shard replica tables whose
// encodings land in snapshot hashes and trace digests, so iterating
// them raw is nondeterminism an exporter will surface.
package trace

import "sort"

// ShardMap is a fixture shard layout: replica lists are slices (ordered,
// safe to range), leases are a map (unordered, must be sorted first).
type ShardMap struct {
	replicas [][]uint64
	leases   map[uint64]uint64
}

// EncodeSnapshot ranges straight over the lease map while encoding:
// flagged.
func (s *ShardMap) EncodeSnapshot(e *Enc) {
	for _, reps := range s.replicas {
		for _, id := range reps {
			e.U64(id)
		}
	}
	for segid, owner := range s.leases {
		e.U64(segid)
		e.U64(owner)
	}
}

// encodeLeasesSorted collects the lease keys, sorts, then encodes:
// silent.
func (s *ShardMap) encodeLeasesSorted(e *Enc) {
	segids := make([]uint64, 0, len(s.leases))
	for segid := range s.leases {
		segids = append(segids, segid)
	}
	sort.Slice(segids, func(i, j int) bool { return segids[i] < segids[j] })
	for _, segid := range segids {
		e.U64(segid)
		e.U64(s.leases[segid])
	}
}
