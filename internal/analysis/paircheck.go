package analysis

import (
	"go/ast"
	"go/types"
)

// The paircheck analyzer guards resource pairing on the XPMEM API
// surface: a Get returns an access permit (apid) that Release must
// retire, an Attach returns a mapping (va) that Detach must unmap.
// sim.Resource/Core acquisitions are self-releasing by construction
// (Acquire occupies the resource for a fixed virtual duration and
// returns only when it ends), so the leak-prone handles in this
// codebase are the protocol-level ones.
//
// The check is per acquire site but sees through the module's own
// helpers via the interprocedural summaries: a handle passed to a
// callee that releases the matching parameter counts as released, one
// passed to a callee that stores or re-exports it (or to code the
// module cannot see into) counts as transferred and is exempt. What is
// flagged is a handle no path can ever release:
//
//   - the acquire's results are discarded outright (expression
//     statement, or the handle bound to _),
//   - the handle is bound to a local that is never mentioned again —
//     including by a deferred release — or
//   - every use of the handle merely reads it (comparisons, logging,
//     passing to module helpers that neither release nor keep it).
type pairSpec struct {
	recv    map[string]bool // receiver type names the pair applies to
	acquire string
	release string
	noun    string // what the handle represents, for diagnostics
}

var pairs = []pairSpec{
	{
		recv:    pairRecvSet,
		acquire: "Get", release: "Release", noun: "access permit (apid)",
	},
	{
		recv:    pairRecvSet,
		acquire: "Attach", release: "Detach", noun: "attachment address",
	},
	// The option-struct forms acquire the same handles as their
	// positional counterparts and retire through the same calls.
	{
		recv:    pairRecvSet,
		acquire: "GetWith", release: "Release", noun: "access permit (apid)",
	},
	{
		recv:    pairRecvSet,
		acquire: "AttachWith", release: "Detach", noun: "attachment address",
	},
	// The registration-cache forms: AttachCached returns the same
	// mapping address as AttachWith (possibly recovered from the
	// attacher-side cache) and retires through the same Detach, which
	// also invalidates the cache entry. The collective communicator's
	// register wraps a Get + AttachCached into one binding that must be
	// unregistered on teardown.
	{
		recv:    pairRecvSet,
		acquire: "AttachCached", release: "Detach", noun: "attachment address",
	},
	{
		recv:    pairRecvSet,
		acquire: "register", release: "unregister", noun: "registration-cache binding",
	},
}

func newPaircheck() *Analyzer {
	return &Analyzer{
		Name:    "paircheck",
		Doc:     "flags XPMEM Get/Attach/AttachCached handles and coll registration-cache bindings no path can release (directly or via a summarized helper); escaped handles transfer ownership and are exempt",
		Version: 3,
		Run: func(pass *Pass) any {
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
						checkPairs(pass, fd)
					}
				}
			}
			return nil
		},
	}
}

// pairFor matches a call against the pair table, requiring resolved
// receiver type information (no types ⇒ no finding: conservative).
func pairFor(info *types.Info, call *ast.CallExpr) *pairSpec {
	name := calleeName(call)
	for i := range pairs {
		if pairs[i].acquire == name && pairs[i].recv[recvTypeName(info, call)] {
			return &pairs[i]
		}
	}
	return nil
}

func checkPairs(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	sums := pass.Module.Summaries()

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if p := pairFor(info, call); p != nil {
					pass.Reportf(call.Pos(),
						"%s result discarded: the %s can never be paired with %s", p.acquire, p.noun, p.release)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			p := pairFor(info, call)
			if p == nil || len(n.Lhs) == 0 {
				return true
			}
			handle, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored straight into a field/element: escapes
			}
			if handle.Name == "_" {
				pass.Reportf(call.Pos(),
					"%s handle bound to _: the %s can never be paired with %s", p.acquire, p.noun, p.release)
				return true
			}
			obj := info.Defs[handle]
			if obj == nil {
				// Plain assignment to an existing variable (possibly
				// captured or package-level): treat as escaping.
				return true
			}
			released, escaped, reads := sums.classifyUses(info, fd.Body, obj)
			switch {
			case released || escaped:
				// Paired (possibly inside a helper) or ownership
				// transferred: fine either way.
			case reads == 0:
				pass.Reportf(call.Pos(),
					"%s handle %q is never used again: no path (including defer) pairs it with %s", p.acquire, handle.Name, p.release)
			default:
				pass.Reportf(call.Pos(),
					"%s handle %q is only ever read: no path (including the module's own helpers) pairs it with %s or takes ownership", p.acquire, handle.Name, p.release)
			}
		}
		return true
	})
}
