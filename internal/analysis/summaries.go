package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// This file is the interprocedural core: a call graph over the
// type-checked module plus one FuncSummary per declared function. The
// analyzers consume summaries instead of reasoning one function at a
// time, so a sim.Costs value laundered through a helper, a handle
// released in a callee, or a closure handed to a goroutine-spawning
// wrapper are all visible at the call site.
//
// Summaries are computed bottom-up: packages in dependency order (a
// callee's package is always summarized before its importers), and
// within a package by fixpoint iteration so intra-package recursion
// converges. Every summary is an over-approximation in the direction
// that silences analyzers — an unknown callee escapes its arguments, a
// possibly-sunk value is sunk — so interprocedural imprecision can
// suppress a finding but never invent one.

// FuncSummary records one declared function's externally visible
// dataflow behavior. Receiver and parameters share one index space:
// for methods index 0 is the receiver and parameters start at 1; plain
// functions start at 0. Variadic call arguments clamp to the last
// index.
type FuncSummary struct {
	// Sunk marks parameters whose value flows into a charge sink
	// (Charge/Advance/Acquire/… — see chargeSinks), directly or through
	// further summarized callees.
	Sunk []bool
	// Released marks parameters some path passes to a Release/Detach
	// (or to a callee that releases the matching parameter).
	Released []bool
	// Escaped marks parameters that leave the function's hands:
	// returned, stored, aliased, sent, or passed to a callee the module
	// cannot see into.
	Escaped []bool
	// GoEscaped marks func-typed parameters that may run on another
	// goroutine: invoked under a go statement, handed to a scheduler
	// spawn, or passed along to a callee whose parameter go-escapes.
	GoEscaped []bool
	// CostsReturns lists the sim.Costs field names whose values flow
	// into the function's results: charging the call result charges
	// these fields.
	CostsReturns []string
}

// Summaries indexes every declared function of a module with its
// summary. Built once per load, read-only afterwards (safe for
// concurrent analyzer passes).
type Summaries struct {
	decls map[*types.Func]*ast.FuncDecl
	pkgOf map[*types.Func]*Package
	fns   map[*types.Func]*FuncSummary

	costsFields map[types.Object]bool
	costsVars   []*types.Var
}

// Summaries returns the module's interprocedural summary index,
// building it on first use. Not safe to call for the first time from
// concurrent goroutines; the driver builds it before fanning out.
func (m *Module) Summaries() *Summaries {
	if m.summaries == nil {
		m.summaries = buildSummaries(m)
	}
	return m.summaries
}

// CostsFields lists the fields of the module's sim.Costs struct (empty
// when the module has none).
func (s *Summaries) CostsFields() []*types.Var { return s.costsVars }

// IsCostsField reports whether obj is a field of sim.Costs.
func (s *Summaries) IsCostsField(obj types.Object) bool { return s.costsFields[obj] }

// Of returns the summary for fn, nil when fn is not a function declared
// in the module (builtins, stdlib, dynamic calls).
func (s *Summaries) Of(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	return s.fns[fn]
}

// Decl returns the declaration and package of a module function, (nil,
// nil) for functions declared elsewhere.
func (s *Summaries) Decl(fn *types.Func) (*ast.FuncDecl, *Package) {
	if fn == nil {
		return nil, nil
	}
	return s.decls[fn], s.pkgOf[fn]
}

// summaryRounds caps the intra-package fixpoint. Mutual recursion
// converges in a handful of rounds; the cap guarantees termination (and
// determinism) even if a pathological cycle oscillates.
const summaryRounds = 10

func buildSummaries(m *Module) *Summaries {
	s := &Summaries{
		decls:       make(map[*types.Func]*ast.FuncDecl),
		pkgOf:       make(map[*types.Func]*Package),
		fns:         make(map[*types.Func]*FuncSummary),
		costsFields: make(map[types.Object]bool),
	}
	s.initCosts(m)

	for _, pkg := range m.order {
		if pkg.Info == nil {
			continue
		}
		var fns []*types.Func
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				s.decls[fn] = fd
				s.pkgOf[fn] = pkg
				fns = append(fns, fn)
			}
		}
		// Intra-package fixpoint: recompute every summary against the
		// current state until nothing changes. Cross-package callees are
		// already final thanks to dependency order.
		for round := 0; round < summaryRounds; round++ {
			changed := false
			for _, fn := range fns {
				next := s.compute(pkg, s.decls[fn])
				if !reflect.DeepEqual(s.fns[fn], next) {
					s.fns[fn] = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return s
}

// initCosts locates sim.Costs (the engine package is
// <module>/internal/sim by convention, for the real module and fixture
// mini-modules alike) and records its fields.
func (s *Summaries) initCosts(m *Module) {
	pkg := m.Lookup(m.Path + "/internal/sim")
	if pkg == nil || pkg.Types == nil {
		return
	}
	obj := pkg.Types.Scope().Lookup("Costs")
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		s.costsVars = append(s.costsVars, st.Field(i))
		s.costsFields[st.Field(i)] = true
	}
}

// compute derives one function's summary from the current state of the
// index.
func (s *Summaries) compute(pkg *Package, fd *ast.FuncDecl) *FuncSummary {
	info := pkg.Info
	params := paramObjs(info, fd)
	sum := &FuncSummary{
		Sunk:      make([]bool, len(params)),
		Released:  make([]bool, len(params)),
		Escaped:   make([]bool, len(params)),
		GoEscaped: make([]bool, len(params)),
	}

	// Sunk: expand charge-sink zones (syntactic sinks plus callee
	// summaries) backward through local assignments and ask which
	// parameters end up tainted.
	_, tainted := taintFlow(info, fd.Body, s.sinkZones(info, fd.Body), nil)
	for i, p := range params {
		if p != nil && tainted[p] {
			sum.Sunk[i] = true
		}
	}

	for i, p := range params {
		if p == nil {
			continue
		}
		released, escaped, _ := s.classifyUses(info, fd.Body, p)
		sum.Released[i] = released
		sum.Escaped[i] = escaped
		if _, ok := p.Type().Underlying().(*types.Signature); ok {
			sum.GoEscaped[i] = s.goEscapes(info, fd.Body, p)
		}
	}

	sum.CostsReturns = s.costsReturns(info, fd)
	return sum
}

// sinkZones collects the source ranges of expressions flowing into a
// charge sink: arguments of syntactic sink-name calls, plus —
// interprocedurally — arguments at positions a callee summary marks
// sunk.
func (s *Summaries) sinkZones(info *types.Info, body ast.Node) []posRange {
	var zones []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if chargeSinks[calleeName(call)] {
			for _, arg := range call.Args {
				zones = append(zones, rangeOf(arg))
			}
			return true
		}
		callee := resolveCallee(info, call)
		if cs := s.Of(callee); cs != nil {
			forEachArg(info, call, callee, func(arg ast.Expr, pi int) {
				if pi < len(cs.Sunk) && cs.Sunk[pi] {
					zones = append(zones, rangeOf(arg))
				}
			})
		}
		return true
	})
	return zones
}

// costsReturns computes which sim.Costs fields flow into fd's results:
// the return expressions (and named results) seed a taint flow, and
// every Costs field read — or Costs-returning callee called — inside
// the flowing zones contributes its name.
func (s *Summaries) costsReturns(info *types.Info, fd *ast.FuncDecl) []string {
	if len(s.costsFields) == 0 || fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return nil
	}
	var zones []posRange
	seed := make(map[types.Object]bool)
	for _, f := range fd.Type.Results.List {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				seed[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested function's returns are not ours
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				zones = append(zones, rangeOf(r))
			}
		}
		return true
	})
	allZones, _ := taintFlow(info, fd.Body, zones, seed)
	names := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && s.costsFields[sel.Obj()] && inAny(allZones, n.Pos()) {
				names[sel.Obj().Name()] = true
			}
		case *ast.CallExpr:
			if inAny(allZones, n.Pos()) {
				if cs := s.Of(resolveCallee(info, n)); cs != nil {
					for _, f := range cs.CostsReturns {
						names[f] = true
					}
				}
			}
		}
		return true
	})
	return sortedNames(names)
}

// releaseNames are the calls that retire a handle, on the XPMEM API
// receivers paircheck guards. unregister is the collective
// communicator's retire call for a registration-cache binding.
var releaseNames = map[string]bool{"Release": true, "Detach": true, "unregister": true}

// pairRecvSet are the receiver type names the pair table applies to.
// Communicator is internal/coll's: its register/unregister pair wraps a
// Get + AttachCached whose teardown the binding owner must drive.
var pairRecvSet = map[string]bool{"Session": true, "Module": true, "Communicator": true}

// classifyUses walks every appearance of obj in body and classifies it.
// released: some path passes obj to a Release/Detach or to a callee
// releasing the matching parameter. escaped: obj is returned, stored,
// aliased, sent, address-taken, or passed to a callee the module cannot
// see into (assumed ownership transfer). reads counts the uses that
// read the value (writes to obj are not reads).
func (s *Summaries) classifyUses(info *types.Info, body ast.Node, obj types.Object) (released, escaped bool, reads int) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			r, e, isRead := s.classifyUse(info, stack)
			released = released || r
			escaped = escaped || e
			if isRead {
				reads++
			}
		}
		return true
	})
	return released, escaped, reads
}

// classifyUse judges one use by walking from the identifier (stack top)
// up through its syntactic context.
func (s *Summaries) classifyUse(info *types.Info, stack []ast.Node) (released, escaped, isRead bool) {
	cur := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		parent := stack[i]
		switch p := parent.(type) {
		case *ast.ParenExpr, *ast.BinaryExpr, *ast.StarExpr, *ast.SelectorExpr:
			// Transparent: the value (or a view of it) keeps flowing.
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return false, true, true // address taken: aliases escape
			}
		case *ast.IndexExpr:
			if p.Index == cur {
				return false, false, true // used as a key: a read
			}
		case *ast.CallExpr:
			if p.Fun == cur {
				return false, false, true // invoking a func-typed handle
			}
			if tv, ok := info.Types[p.Fun]; ok && tv.IsType() {
				break // conversion: transparent
			}
			return s.classifyCallArg(info, p, cur)
		case *ast.ReturnStmt:
			return false, true, true
		case *ast.SendStmt:
			if p.Value == cur {
				return false, true, true
			}
			return false, false, true
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return false, true, true
		case *ast.AssignStmt:
			for ri, r := range p.Rhs {
				if r != cur {
					continue
				}
				if len(p.Lhs) == len(p.Rhs) {
					if id, ok := ast.Unparen(p.Lhs[ri]).(*ast.Ident); ok && id.Name == "_" {
						return false, false, true
					}
				}
				return false, true, true // aliased into another name or stored
			}
			return false, false, false // on the left-hand side: a write
		case *ast.ValueSpec:
			for _, v := range p.Values {
				if v == cur {
					return false, true, true
				}
			}
			return false, false, false
		case *ast.IncDecStmt:
			return false, false, false
		case ast.Stmt:
			return false, false, true // consumed by control flow or discarded
		case ast.Decl:
			return false, false, true
		}
		cur = parent
	}
	return false, false, true
}

// classifyCallArg judges a handle passed as a call argument (or method
// receiver), consulting the callee's summary when the module declares
// it and assuming ownership transfer when it does not.
func (s *Summaries) classifyCallArg(info *types.Info, call *ast.CallExpr, arg ast.Node) (released, escaped, isRead bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.X == arg {
		// Method call on the handle itself: the receiver occupies
		// summary index 0.
		if cs := s.Of(resolveCallee(info, call)); cs != nil && len(cs.Released) > 0 {
			return cs.Released[0], cs.Escaped[0], true
		}
		return false, false, true
	}
	idx := -1
	for i, a := range call.Args {
		if a == arg {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, false, true
	}
	if releaseNames[calleeName(call)] && pairRecvSet[recvTypeName(info, call)] {
		return true, false, true
	}
	callee := resolveCallee(info, call)
	cs := s.Of(callee)
	if cs == nil {
		// Builtin, stdlib, or dynamic callee: assume the handle's
		// ownership transfers.
		return false, true, true
	}
	pi := idx
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if _, isMethod := info.Selections[sel]; isMethod {
				pi = idx + 1
			}
		}
	}
	if pi >= len(cs.Released) {
		pi = len(cs.Released) - 1 // variadic tail
	}
	if pi < 0 {
		return false, false, true
	}
	return cs.Released[pi], cs.Escaped[pi], true
}

// spawnNames are the scheduler entry points that run a function value
// as (part of) another partition's dispatch: handing a closure to one
// is handing it to another goroutine under the parallel engine.
var spawnNames = map[string]bool{"Spawn": true, "SpawnAt": true, "SpawnIn": true, "Go": true}

// goEscapes reports whether the func-typed obj may be invoked on
// another goroutine.
func (s *Summaries) goEscapes(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if usesObj(info, n.Call, obj) {
				found = true
			}
		case *ast.CallExpr:
			if spawnNames[calleeName(n)] {
				for _, arg := range n.Args {
					if usesObj(info, arg, obj) {
						found = true
					}
				}
				return true
			}
			callee := resolveCallee(info, n)
			if cs := s.Of(callee); cs != nil {
				forEachArg(info, n, callee, func(arg ast.Expr, pi int) {
					if pi < len(cs.GoEscaped) && cs.GoEscaped[pi] {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
							found = true
						}
					}
				})
			}
		}
		return true
	})
	return found
}

// paramObjs lists a declaration's receiver (for methods) and parameter
// objects in the unified index space. Unnamed and blank slots are nil.
func paramObjs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				objs = append(objs, nil)
				continue
			}
			for _, name := range f.Names {
				objs = append(objs, info.Defs[name])
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return objs
}

// forEachArg maps each call argument (and, for method calls, the
// receiver expression) to the callee's unified parameter index.
func forEachArg(info *types.Info, call *ast.CallExpr, callee *types.Func, visit func(arg ast.Expr, paramIdx int)) {
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	base := 0
	if sig.Recv() != nil {
		base = 1
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if _, isMethod := info.Selections[sel]; isMethod {
				visit(sel.X, 0)
			} else {
				// Method expression T.M(recv, args...): the first
				// argument is the receiver.
				base = 0
			}
		}
	}
	n := base + sig.Params().Len()
	for i, arg := range call.Args {
		idx := base + i
		if idx >= n {
			idx = n - 1 // variadic tail
		}
		if idx >= 0 {
			visit(arg, idx)
		}
	}
}

// resolveCallee resolves the *types.Func a call dispatches to, nil for
// builtins, conversions, and dynamic calls through function values.
// Promoted methods resolve to the embedded type's method — exactly the
// declaration whose summary applies.
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// usesObj reports whether any identifier under n refers to obj.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// assignRec is one assignment or declaration feeding the taint flow.
type assignRec struct {
	lhs map[types.Object]bool
	rhs []ast.Expr
}

// collectAssigns gathers every assignment in body, plus the ranges of
// right-hand sides feeding stores (selector/index left-hand sides,
// which escape the function's locals).
func collectAssigns(info *types.Info, body ast.Node) (assigns []assignRec, storeRHS []posRange) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			a := assignRec{lhs: make(map[types.Object]bool)}
			storing := false
			for _, l := range n.Lhs {
				switch l := l.(type) {
				case *ast.Ident:
					if obj := info.Defs[l]; obj != nil {
						a.lhs[obj] = true
					} else if obj := info.Uses[l]; obj != nil {
						a.lhs[obj] = true
					}
				default:
					storing = true
				}
			}
			a.rhs = n.Rhs
			assigns = append(assigns, a)
			if storing {
				for _, r := range n.Rhs {
					storeRHS = append(storeRHS, rangeOf(r))
				}
			}
		case *ast.ValueSpec:
			a := assignRec{lhs: make(map[types.Object]bool)}
			for _, name := range n.Names {
				if obj := info.Defs[name]; obj != nil {
					a.lhs[obj] = true
				}
			}
			a.rhs = n.Values
			assigns = append(assigns, a)
		}
		return true
	})
	return assigns, storeRHS
}

// taintFlow propagates seed zones (and seed objects) backward through
// local assignments: every object read inside a zone is tainted, the
// right-hand side of any assignment feeding a tainted local becomes a
// zone too, until fixpoint. Returns the expanded zones and the tainted
// object set.
func taintFlow(info *types.Info, body ast.Node, seedZones []posRange, seedObjs map[types.Object]bool) ([]posRange, map[types.Object]bool) {
	assigns, _ := collectAssigns(info, body)
	zones := append([]posRange(nil), seedZones...)
	tainted := make(map[types.Object]bool)
	for obj := range seedObjs {
		tainted[obj] = true
	}
	for _, z := range zones {
		collectObjectsIn(info, body, z, tainted)
	}
	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			hit := false
			for obj := range a.lhs {
				if tainted[obj] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			for _, r := range a.rhs {
				before := len(tainted)
				identObjects(info, r, tainted)
				if len(tainted) != before {
					changed = true
				}
			}
		}
	}
	for _, a := range assigns {
		for obj := range a.lhs {
			if tainted[obj] {
				for _, r := range a.rhs {
					zones = append(zones, rangeOf(r))
				}
				break
			}
		}
	}
	return zones, tainted
}

// sortedNames returns a set's keys in sorted order (nil for empty).
func sortedNames(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
