package analysis_test

import (
	"strings"
	"testing"

	"xemem/internal/analysis"
)

// knownSet mirrors the driver's directive vocabulary.
func knownSet() map[string]bool {
	known := make(map[string]bool)
	for _, name := range analysis.Names() {
		known[name] = true
	}
	return known
}

// TestParseDirective pins the verb-to-analyzer mapping and the error
// texts fixture tests match against.
func TestParseDirective(t *testing.T) {
	known := knownSet()
	tests := []struct {
		text             string
		analyzer, reason string
		errSubstr        string
	}{
		{"// ordinary comment", "", "", ""},
		{"//xemem:allow maporder -- unordered by design", "maporder", "unordered by design", ""},
		{"//xemem:allow paircheck --  padded  ", "paircheck", "padded", ""},
		{"//xemem:wallclock -- timing the host build", "determinism", "timing the host build", ""},
		{"//xemem:nosnap -- derived index, rebuilt on load", "snapshotcheck", "derived index, rebuilt on load", ""},
		{"//xemem:allow maporder", "", "", "needs a ' -- <reason>'"},
		{"//xemem:allow maporder -- ", "", "", "needs a ' -- <reason>'"},
		{"//xemem:allow -- no analyzer", "", "", "needs an analyzer name"},
		{"//xemem:allow frobcheck -- nope", "", "", `unknown analyzer "frobcheck"`},
		{"//xemem:allow determinism -- nope", "", "", "only be excused via //xemem:wallclock"},
		{"//xemem:allow snapshotcheck -- nope", "", "", "per-field"},
		{"//xemem:wallclock", "", "", "needs a ' -- <reason>'"},
		{"//xemem:nosnap", "", "", "needs a ' -- <reason>'"},
		{"//xemem:frobnicate -- nonsense", "", "", `unknown //xemem: directive`},
	}
	for _, tt := range tests {
		analyzer, reason, errMsg := analysis.ParseDirective(tt.text, known)
		if analyzer != tt.analyzer || reason != tt.reason {
			t.Errorf("ParseDirective(%q) = (%q, %q), want (%q, %q)", tt.text, analyzer, reason, tt.analyzer, tt.reason)
		}
		if tt.errSubstr == "" && errMsg != "" {
			t.Errorf("ParseDirective(%q): unexpected error %q", tt.text, errMsg)
		}
		if tt.errSubstr != "" && !strings.Contains(errMsg, tt.errSubstr) {
			t.Errorf("ParseDirective(%q): error %q, want substring %q", tt.text, errMsg, tt.errSubstr)
		}
	}
}

// FuzzDirective hammers the directive parser: whatever the comment
// text, it must never panic, and the result must be exactly one of
// {no directive, well-formed suppression, unsuppressible finding}.
// The parser sits on the trust boundary between arbitrary source
// comments and the suppression index, so a malformed directive must
// always surface as a finding — never as a silent suppression.
func FuzzDirective(f *testing.F) {
	f.Add("//xemem:allow maporder -- reason")
	f.Add("//xemem:allow determinism -- sneak")
	f.Add("//xemem:allow snapshotcheck -- sneak")
	f.Add("//xemem:wallclock -- bench")
	f.Add("//xemem:nosnap -- derived")
	f.Add("//xemem:nosnap--glued")
	f.Add("//xemem:")
	f.Add("//xemem:allow")
	f.Add("// not a directive")
	f.Add("//xemem:allow \x00 -- \xff")
	known := knownSet()
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, errMsg := analysis.ParseDirective(text, known)
		if !strings.HasPrefix(text, "//xemem:") {
			if analyzer != "" || reason != "" || errMsg != "" {
				t.Fatalf("non-directive %q parsed to (%q, %q, %q)", text, analyzer, reason, errMsg)
			}
			return
		}
		if errMsg != "" {
			if analyzer != "" || reason != "" {
				t.Fatalf("malformed %q still yielded suppression (%q, %q)", text, analyzer, reason)
			}
			return
		}
		// A well-formed directive must name a known analyzer and carry a
		// non-empty reason; determinism and snapshotcheck are reachable
		// only through their dedicated verbs.
		if !known[analyzer] {
			t.Fatalf("directive %q silenced unknown analyzer %q", text, analyzer)
		}
		if strings.TrimSpace(reason) == "" {
			t.Fatalf("directive %q accepted with empty reason", text)
		}
		if strings.HasPrefix(text, "//xemem:allow") && (analyzer == "determinism" || analyzer == "snapshotcheck") {
			t.Fatalf("//xemem:allow reached %s: %q", analyzer, text)
		}
	})
}
