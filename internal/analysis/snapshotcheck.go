package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The snapshotcheck analyzer guards restore fidelity (DESIGN.md §12):
// the XSNP snapshot is only trustworthy if every piece of mutable
// simulation state reaches it. For every type whose EncodeSnapshot is
// registered as a snapshot component via World.AddSnapshotComponent —
// plus every type those encoders delegate to, transitively (a module
// encoder calls its nameserver's, an OS encoder its address spaces' and
// cores') — the analyzer verifies:
//
//   - every mutable field (written anywhere in the module outside New*
//     constructors) is read by the encoder, and
//   - when the type has a full LoadSnapshot decoder, every such field
//     is also written back by it. Overlay decoders
//     (LoadSnapshotOverlay) restore a deliberate prefix and verify the
//     rest by byte comparison, so they are exempt from the
//     read-it-back half.
//
// Adding a field to a snapshotted struct therefore fails vet until the
// codec handles it — or until the field is annotated, with a reason,
// as deliberately outside the image:
//
//	links map[string]*Link //xemem:nosnap -- rebuilt from topology config on restore
//
// Coverage is computed over the encoder's same-package call closure
// (helpers like encodeStats count), and a write through a field path
// (m.Stats.MsgsSent++) marks every field on the path mutable.

// snapCodecNames are the snapshot codec entry points: a call to one of
// these on another type makes that type part of the snapshot graph.
var snapCodecNames = map[string]bool{
	"EncodeSnapshot": true, "LoadSnapshot": true, "LoadSnapshotOverlay": true,
}

// snapshotFacts is one package's contribution to the module-wide
// snapshot-coverage verdict.
type snapshotFacts struct {
	// Registered lists the type keys this package registers via
	// AddSnapshotComponent.
	Registered []string `json:"registered,omitempty"`
	// Types maps type key → coverage fact for every local type
	// declaring an EncodeSnapshot method.
	Types map[string]snapTypeFact `json:"types,omitempty"`
	// ExternalWrites records mutations of *other* packages' snapshotted
	// types' fields (the owning package cannot see them).
	ExternalWrites []extWrite `json:"externalWrites,omitempty"`
}

type snapTypeFact struct {
	// Display is the short pkg.Type name for diagnostics.
	Display string `json:"display"`
	// FullDecoder is set when the type has a LoadSnapshot method (the
	// read-back check applies only then, not to overlay decoders).
	FullDecoder bool `json:"fullDecoder,omitempty"`
	// Calls lists the type keys whose snapshot codecs this type's
	// encoder/decoder closure invokes: the delegation edges of the
	// snapshot graph.
	Calls []string `json:"calls,omitempty"`
	// Fields covers every field of the type's struct, in declaration
	// order.
	Fields []snapField `json:"fields"`
}

type snapField struct {
	Name    string         `json:"name"`
	Pos     token.Position `json:"pos"`
	Mutable bool           `json:"mutable,omitempty"`
	Encoded bool           `json:"encoded,omitempty"`
	Decoded bool           `json:"decoded,omitempty"`
}

type extWrite struct {
	Type  string `json:"type"`
	Field string `json:"field"`
}

func newSnapshotcheck() *Analyzer {
	return &Analyzer{
		Name:    "snapshotcheck",
		Doc:     "verifies every mutable field of a registered snapshot component (and its delegates) is written by EncodeSnapshot and read back by LoadSnapshot; excuse derived/rebuilt fields with //xemem:nosnap -- <reason>",
		Version: 1,
		Run:     snapshotcheckRun,
		Finish:  snapshotcheckFinish,
	}
}

// typeKey names a type unambiguously across packages.
func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "#" + obj.Name()
}

// displayName is the short pkg.Type form for diagnostics.
func displayName(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	path := obj.Pkg().Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + obj.Name()
}

// namedType unwraps pointers/aliases down to a *types.Named, nil
// otherwise.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// recvNamed resolves the named receiver type of a method, nil for plain
// functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedType(sig.Recv().Type())
}

func snapshotcheckRun(pass *Pass) any {
	if pass.Pkg.Info == nil || pass.Pkg.Types == nil {
		return nil
	}
	info := pass.Pkg.Info
	sums := pass.Module.Summaries()

	// Pass 1: the package's snapshot codec declarations, grouped by
	// receiver type.
	type codecDecls struct {
		named   *types.Named
		enc     *ast.FuncDecl
		dec     *ast.FuncDecl // LoadSnapshot (full restore)
		overlay *ast.FuncDecl // LoadSnapshotOverlay (prefix restore)
	}
	codecs := make(map[string]*codecDecls)
	var codecOrder []string
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !snapCodecNames[fd.Name.Name] {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			named := recvNamed(fn)
			if named == nil {
				continue
			}
			key := typeKey(named)
			c := codecs[key]
			if c == nil {
				c = &codecDecls{named: named}
				codecs[key] = c
				codecOrder = append(codecOrder, key)
			}
			switch fd.Name.Name {
			case "EncodeSnapshot":
				c.enc = fd
			case "LoadSnapshot":
				c.dec = fd
			case "LoadSnapshotOverlay":
				c.overlay = fd
			}
		}
	}

	// Pass 2: mutability — every field written anywhere in this package
	// outside New* constructors, including writes through field paths.
	// Writes to other packages' snapshotted types are recorded for their
	// owners.
	localMutable := make(map[string]map[string]bool) // type key → field name
	extSeen := make(map[extWrite]bool)
	var facts snapshotFacts
	hasEncoder := func(named *types.Named) bool {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), "EncodeSnapshot")
		_, ok := obj.(*types.Func)
		return ok
	}
	markWrite := func(lhs ast.Expr) {
		ast.Inspect(lhs, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			owner := namedType(s.Recv())
			if owner == nil || owner.Obj().Pkg() == nil {
				return true
			}
			key := typeKey(owner)
			field := s.Obj().Name()
			if owner.Obj().Pkg() == pass.Pkg.Types {
				if codecs[key] != nil {
					if localMutable[key] == nil {
						localMutable[key] = make(map[string]bool)
					}
					localMutable[key][field] = true
				}
			} else if strings.HasPrefix(owner.Obj().Pkg().Path(), pass.Module.Path) && hasEncoder(owner) {
				w := extWrite{Type: key, Field: field}
				if !extSeen[w] {
					extSeen[w] = true
					facts.ExternalWrites = append(facts.ExternalWrites, w)
				}
			}
			return true
		})
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new") {
				continue // constructors initialize, they don't mutate
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, l := range n.Lhs {
						markWrite(l)
					}
				case *ast.IncDecStmt:
					markWrite(n.X)
				}
				return true
			})
		}
	}

	// Pass 3: registrations — method values (pm.EncodeSnapshot) or
	// closure wrappers handed to AddSnapshotComponent.
	regSeen := make(map[string]bool)
	register := func(fn *types.Func) {
		if fn == nil || fn.Name() != "EncodeSnapshot" {
			return
		}
		if named := recvNamed(fn); named != nil {
			if key := typeKey(named); !regSeen[key] {
				regSeen[key] = true
				facts.Registered = append(facts.Registered, key)
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeName(call) != "AddSnapshotComponent" {
				return true
			}
			for _, arg := range call.Args {
				switch arg := ast.Unparen(arg).(type) {
				case *ast.SelectorExpr:
					if s, ok := info.Selections[arg]; ok {
						fn, _ := s.Obj().(*types.Func)
						register(fn)
					}
				case *ast.FuncLit:
					ast.Inspect(arg.Body, func(x ast.Node) bool {
						if inner, ok := x.(*ast.CallExpr); ok && calleeName(inner) == "EncodeSnapshot" {
							register(resolveCallee(info, inner))
						}
						return true
					})
				}
			}
			return true
		})
	}

	// Pass 4: per-type coverage over the codec call closures.
	sort.Strings(facts.Registered)
	for _, key := range codecOrder {
		c := codecs[key]
		if c.enc == nil {
			continue // decoder without encoder: nothing to cover
		}
		st, ok := c.named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		fieldObjs := make(map[types.Object]int, st.NumFields())
		fact := snapTypeFact{Display: displayName(c.named), FullDecoder: c.dec != nil}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			fieldObjs[f] = i
			fact.Fields = append(fact.Fields, snapField{
				Name:    f.Name(),
				Pos:     pass.Module.Position(f.Pos()),
				Mutable: localMutable[key][f.Name()],
			})
		}
		calls := make(map[string]bool)
		cover := func(root *ast.FuncDecl, mark func(i int)) {
			if root == nil {
				return
			}
			for _, d := range snapReach(sums, pass.Pkg, root, key, calls) {
				ast.Inspect(d.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if s, ok := info.Selections[sel]; ok {
						if i, isField := fieldObjs[s.Obj()]; isField {
							mark(i)
						}
					}
					return true
				})
			}
		}
		cover(c.enc, func(i int) { fact.Fields[i].Encoded = true })
		cover(c.dec, func(i int) { fact.Fields[i].Decoded = true })
		cover(c.overlay, func(int) {}) // for its delegation edges only
		fact.Calls = sortedNames(calls)
		if facts.Types == nil {
			facts.Types = make(map[string]snapTypeFact)
		}
		facts.Types[key] = fact
	}

	if facts.Registered == nil && facts.Types == nil && facts.ExternalWrites == nil {
		return nil
	}
	return facts
}

// snapReach walks the same-package call closure from root, collecting
// the reachable declarations and recording (into calls) the type keys
// of cross-type snapshot codec invocations along the way.
func snapReach(sums *Summaries, pkg *Package, root *ast.FuncDecl, selfKey string, calls map[string]bool) []*ast.FuncDecl {
	seen := map[*ast.FuncDecl]bool{root: true}
	queue := []*ast.FuncDecl{root}
	var out []*ast.FuncDecl
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		out = append(out, d)
		ast.Inspect(d.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolveCallee(pkg.Info, call)
			if fn == nil {
				return true
			}
			if snapCodecNames[fn.Name()] {
				if named := recvNamed(fn); named != nil {
					if key := typeKey(named); key != selfKey {
						calls[key] = true
						return true
					}
				}
			}
			if d2, p2 := sums.Decl(fn); d2 != nil && p2 == pkg && !seen[d2] {
				seen[d2] = true
				queue = append(queue, d2)
			}
			return true
		})
	}
	return out
}

// snapshotcheckFinish computes the registered-reachable snapshot graph
// and reports every mutable field its codecs miss.
func snapshotcheckFinish(f *FinishPass) {
	typesByKey := make(map[string]snapTypeFact)
	extMutable := make(map[extWrite]bool)
	var roots []string
	for _, path := range f.Paths() {
		var facts snapshotFacts
		if !f.Fact(path, &facts) {
			continue
		}
		roots = append(roots, facts.Registered...)
		for key, fact := range facts.Types {
			typesByKey[key] = fact
		}
		for _, w := range facts.ExternalWrites {
			extMutable[w] = true
		}
	}

	// The snapshot graph: registered components plus everything their
	// codecs delegate to.
	reachable := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		if reachable[key] {
			continue
		}
		reachable[key] = true
		queue = append(queue, typesByKey[key].Calls...)
	}

	keys := make([]string, 0, len(reachable))
	for key := range reachable {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fact, ok := typesByKey[key]
		if !ok {
			continue
		}
		for _, field := range fact.Fields {
			if field.Name == "_" {
				continue
			}
			mutable := field.Mutable || extMutable[extWrite{Type: key, Field: field.Name}]
			if !mutable {
				continue // set once at construction: the image needs no copy
			}
			switch {
			case !field.Encoded:
				f.Reportf(field.Pos,
					"field %s.%s is mutable simulation state but %s's EncodeSnapshot never writes it: snapshots silently drop it and restore diverges; encode it or annotate the field with //xemem:nosnap -- <reason>",
					fact.Display, field.Name, fact.Display)
			case fact.FullDecoder && !field.Decoded:
				f.Reportf(field.Pos,
					"field %s.%s is encoded by EncodeSnapshot but %s's LoadSnapshot never reads it back: restore loses the value; decode it or annotate the field with //xemem:nosnap -- <reason>",
					fact.Display, field.Name, fact.Display)
			}
		}
	}
}
