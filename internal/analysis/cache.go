package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// The result cache makes xemem-vet cheap enough for the inner loop.
// One entry per package, keyed by a content hash that covers the
// package's own sources, the analyzer suite (names + versions), the Go
// toolchain, and — transitively — the keys of every module-internal
// import. Editing one file therefore invalidates exactly that package
// and its import-graph dependents; everything else replays its recorded
// diagnostics and facts without being re-parsed or re-type-checked.
// When every package hits, the driver skips loading the module
// entirely — type-checking (the source importer in particular) is the
// dominant cost — and module-level conclusions (chargecheck's
// dead-constant sweep, snapshotcheck's coverage verdict) are recomputed
// from the cached facts, which is what makes caching them sound.
//
// Entries live under a git-ignored directory (.vetcache/ at the module
// root by default) as plain JSON: inspectable, relocatable (positions
// are root-relative), and safe to delete at any time.

const cacheSchema = 1

// Options configures a cached driver run.
type Options struct {
	// CacheDir overrides the cache location (default <root>/.vetcache).
	CacheDir string
	// NoCache bypasses the cache entirely: no reads, no writes.
	NoCache bool
}

// cacheEntry is one package's persisted analysis product.
type cacheEntry struct {
	Schema int       `json:"schema"`
	Key    string    `json:"key"`
	Result pkgResult `json:"result"`
}

// scanPkg is the cheap pre-load view of one package: enough to compute
// its cache key without parsing function bodies or type-checking.
type scanPkg struct {
	path    string
	dir     string
	hash    string   // content hash over the package's source files
	imports []string // module-internal imports
	key     string   // transitive cache key (filled by computeKeys)
}

// RunCached executes the analyzer suite over the module at root,
// reusing per-package cached results where source content and
// dependencies are unchanged, and returns the surviving diagnostics
// plus run statistics.
func RunCached(root string, analyzers []*Analyzer, opts Options) ([]Diagnostic, *Stats, error) {
	start := time.Now() //xemem:wallclock -- driver self-timing for `make vet`, never simulation state
	stats := &Stats{}
	finish := func(diags []Diagnostic) []Diagnostic {
		stats.TotalNs = int64(time.Since(start)) //xemem:wallclock -- driver self-timing
		return diags
	}

	if opts.NoCache {
		m, err := loadTimed(root, stats)
		if err != nil {
			return nil, nil, err
		}
		results := runPackages(m, analyzers, nil, stats)
		stats.Packages = len(m.Pkgs)
		for _, pkg := range m.Pkgs {
			stats.Analyzed = append(stats.Analyzed, pkg.Path)
		}
		return finish(assemble(analyzers, results)), stats, nil
	}

	scan, err := scanModule(root)
	if err != nil {
		return nil, nil, err
	}
	computeKeys(scan, suiteSignature(analyzers))
	stats.Packages = len(scan)

	cacheDir := opts.CacheDir
	if cacheDir == "" {
		cacheDir = filepath.Join(root, ".vetcache")
	}

	cached := make(map[string]*pkgResult)
	miss := make(map[string]bool)
	for _, p := range scan {
		if entry := readEntry(cacheDir, p); entry != nil {
			cached[p.path] = &entry.Result
			stats.CacheHits++
		} else {
			miss[p.path] = true
			stats.Analyzed = append(stats.Analyzed, p.path)
		}
	}
	sort.Strings(stats.Analyzed)

	if len(miss) == 0 {
		// Fully warm: assemble from cache without loading the module.
		results := make([]*pkgResult, 0, len(scan))
		for _, p := range scan {
			results = append(results, cached[p.path])
		}
		return finish(assemble(analyzers, results)), stats, nil
	}

	m, err := loadTimed(root, stats)
	if err != nil {
		return nil, nil, err
	}
	results := runPackages(m, analyzers, miss, stats)
	byPath := make(map[string]*scanPkg, len(scan))
	for _, p := range scan {
		byPath[p.path] = p
	}
	for i, pkg := range m.Pkgs {
		if results[i] == nil {
			results[i] = cached[pkg.Path]
			continue
		}
		if p := byPath[pkg.Path]; p != nil {
			writeEntry(cacheDir, p, results[i])
		}
	}
	return finish(assemble(analyzers, results)), stats, nil
}

// loadTimed loads the module and builds its summaries, recording the
// wall-clock under stats.LoadNs.
func loadTimed(root string, stats *Stats) (*Module, error) {
	start := time.Now() //xemem:wallclock -- driver self-timing
	m, err := Load(root)
	if err != nil {
		return nil, err
	}
	m.Summaries()
	stats.LoadNs = int64(time.Since(start)) //xemem:wallclock -- driver self-timing
	return m, nil
}

// suiteSignature fingerprints the analyzer suite for cache keys.
func suiteSignature(analyzers []*Analyzer) string {
	parts := []string{fmt.Sprintf("schema=%d", cacheSchema), "go=" + runtime.Version()}
	for _, a := range analyzers {
		parts = append(parts, fmt.Sprintf("%s@%d", a.Name, a.Version))
	}
	return strings.Join(parts, ";")
}

// scanModule enumerates the module's packages the same way Load does —
// same directory walk, same file filter — but reads only far enough to
// hash contents and extract imports, returning packages sorted by
// import path.
func scanModule(root string) ([]*scanPkg, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*scanPkg
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		h := sha256.New()
		importSet := make(map[string]bool)
		for _, name := range names {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "%s\x00%d\x00", name, len(src))
			h.Write(src)
			f, err := parser.ParseFile(fset, name, src, parser.ImportsOnly)
			if err != nil {
				continue // Load will report it properly; key still covers content
			}
			for _, spec := range f.Imports {
				importSet[strings.Trim(spec.Path.Value, `"`)] = true
			}
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		pkgs = append(pkgs, &scanPkg{
			path:    path,
			dir:     dir,
			hash:    hex.EncodeToString(h.Sum(nil)),
			imports: sortedNames(importSet),
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].path < pkgs[j].path })
	return pkgs, nil
}

// computeKeys fills each package's transitive cache key: its own
// content hash plus, recursively, the keys of its module-internal
// imports — so an edit invalidates the package and exactly its
// import-graph dependents.
func computeKeys(pkgs []*scanPkg, signature string) {
	byPath := make(map[string]*scanPkg, len(pkgs))
	for _, p := range pkgs {
		byPath[p.path] = p
	}
	var visit func(p *scanPkg) string
	visit = func(p *scanPkg) string {
		if p.key != "" {
			return p.key
		}
		p.key = "cycle" // sentinel: import cycles are a build error anyway
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00", signature, p.path, p.hash)
		for _, imp := range p.imports {
			if dep := byPath[imp]; dep != nil {
				fmt.Fprintf(h, "%s=%s\x00", imp, visit(dep))
			}
		}
		p.key = hex.EncodeToString(h.Sum(nil))
		return p.key
	}
	for _, p := range pkgs {
		visit(p)
	}
}

// entryPath places a package's cache entry under dir.
func entryPath(dir string, p *scanPkg) string {
	sum := sha256.Sum256([]byte(p.path))
	return filepath.Join(dir, hex.EncodeToString(sum[:12])+".json")
}

// readEntry loads a package's cache entry, nil on any mismatch (absent,
// unreadable, stale schema, stale key).
func readEntry(dir string, p *scanPkg) *cacheEntry {
	data, err := os.ReadFile(entryPath(dir, p))
	if err != nil {
		return nil
	}
	var entry cacheEntry
	if json.Unmarshal(data, &entry) != nil || entry.Schema != cacheSchema || entry.Key != p.key {
		return nil
	}
	return &entry
}

// writeEntry persists one package's result. Cache writes are best
// effort: a failure costs a future re-analysis, nothing else.
func writeEntry(dir string, p *scanPkg, res *pkgResult) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(cacheEntry{Schema: cacheSchema, Key: p.key, Result: *res})
	if err != nil {
		return
	}
	tmp := entryPath(dir, p) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, entryPath(dir, p))
}
