package analysis_test

import (
	"path/filepath"
	"testing"

	"xemem/internal/analysis"
)

// TestRealModuleClean is the merge gate behind the merge gate: it runs
// the full analyzer suite over the real xemem module and asserts zero
// diagnostics, so a PR that introduces a violation (or a malformed
// suppression directive) fails `go test ./...` even if it skips
// `make check`.
func TestRealModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against the source importer")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	if m.Path != "xemem" {
		t.Fatalf("loaded module %q from %s, want xemem (test run from an unexpected directory?)", m.Path, root)
	}

	// A healthy tree type-checks without soft errors; degraded type info
	// would silently blunt the analyzers, so it is a failure here.
	for _, pkg := range m.Pkgs {
		for _, err := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.Path, err)
		}
	}

	for _, d := range analysis.Run(m, analysis.All()) {
		t.Errorf("xemem-vet finding: %s", d)
	}
}
