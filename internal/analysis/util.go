package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// posRange is a half-open source interval covering one AST subtree.
type posRange struct{ lo, hi token.Pos }

func rangeOf(n ast.Node) posRange { return posRange{n.Pos(), n.End()} }

func (r posRange) contains(p token.Pos) bool { return p >= r.lo && p < r.hi }

// inAny reports whether p falls inside any of the ranges.
func inAny(ranges []posRange, p token.Pos) bool {
	for _, r := range ranges {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// identObjects collects the type-checker objects of every identifier in
// the subtree rooted at n.
func identObjects(info *types.Info, n ast.Node, into map[types.Object]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				into[obj] = true
			}
			if obj := info.Defs[id]; obj != nil {
				into[obj] = true
			}
		}
		return true
	})
}

// calleeName returns the bare method/function name a call dispatches to
// ("" when the callee is not an identifier or selector).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// recvTypeName resolves the named type a method call's receiver has
// (pointers dereferenced), or "" when unknown. For package-qualified
// calls (pkg.Func) it returns "".
func recvTypeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	return namedTypeName(s.Recv())
}

// namedTypeName unwraps pointers and reports the underlying named
// type's name, "" for unnamed types.
func namedTypeName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return ""
		}
	}
}

// pkgNameOf resolves the import path an identifier refers to when it is
// a package name in scope ("" otherwise).
func pkgNameOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// funcName labels a declaration for diagnostics: method names include
// the receiver type.
func funcName(fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return name
}

// isSimPackage reports whether the package is the simulator engine
// (<module>/internal/sim), where the virtual-clock invariants live.
func isSimPackage(m *Module, p *Package) bool {
	return p.Path == m.Path+"/internal/sim"
}

// hasSuffixPath reports whether imports path ends with the given
// slash-separated suffix (e.g. "internal/sim").
func hasSuffixPath(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
