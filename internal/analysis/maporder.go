package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The maporder analyzer guards the golden-trace contract: everything the
// tracer exports — Chrome traces, metrics JSON, digests, rendered tables
// — must be byte-identical run to run, and Go's randomized map iteration
// order is the classic way that breaks silently. Inside exporter-feeding
// code, ranging over a map is flagged unless the loop is the standard
// collect-keys-then-sort idiom (a body of nothing but appends, with a
// sort call downstream in the same function).
//
// "Exporter-feeding" is a deliberate, documented heuristic, not a call
// graph: every function in a trace package, plus any function whose name
// marks it as a serializer (Write*/Export*/Render*/Digest*/Summary*/
// Marshal*/Encode*/Golden*/Breakdown*, the unexported encode* helpers,
// or containing JSON/Chrome/Snapshot). Snapshot encoders are in scope
// because the snapshot image hash is a golden artifact: a map-ordered
// section makes the same world produce different hashes run to run.
// Order-insensitive map walks elsewhere (teardown, accounting) are out
// of scope by construction rather than by annotation burden.

var exporterPrefixes = []string{
	"Write", "Export", "Render", "Digest", "Summary",
	"Marshal", "Encode", "Golden", "Breakdown", "encode",
}

func newMaporder() *Analyzer {
	a := &Analyzer{
		Name:    "maporder",
		Doc:     "flags map iteration in exporter-feeding functions unless keys are collected and sorted; nondeterministic order corrupts golden digests",
		Version: 1,
	}
	a.Run = func(pass *Pass) any {
		tracePkg := hasSuffixPath(pass.Pkg.Path, "trace")
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if tracePkg || exporterFunc(fd.Name.Name) {
					checkMapOrder(pass, fd)
				}
			}
		}
		return nil
	}
	return a
}

func exporterFunc(name string) bool {
	for _, p := range exporterPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return strings.Contains(name, "JSON") || strings.Contains(name, "Chrome") ||
		strings.Contains(name, "Snapshot")
}

func checkMapOrder(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Positions of sort calls (sort.* / slices.Sort*) in this function.
	var sortCalls []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				switch pkgNameOf(info, id) {
				case "sort", "slices":
					sortCalls = append(sortCalls, call)
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectLoop(rs) && sortedAfter(sortCalls, rs) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"%s ranges over a map on an exporter-feeding path: iteration order is nondeterministic and will corrupt exported artifacts and golden digests; collect the keys and sort them first", funcName(fd))
		return true
	})
}

// collectLoop reports whether the range body does nothing but append
// (the collect-keys half of the sorted-iteration idiom). Appends may be
// guarded by if statements — a filtered collect (snapshot encoders skip
// tombstones this way) is still order-insensitive, because the appended
// keys get sorted downstream like any other collect.
func collectLoop(rs *ast.RangeStmt) bool {
	return collectStmts(rs.Body.List)
}

// collectStmts reports whether every statement is an append assignment
// or an if (with optional else) whose branches are themselves collects.
func collectStmts(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || calleeName(call) != "append" {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || !collectStmts(s.Body.List) {
				return false
			}
			switch els := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !collectStmts(els.List) {
					return false
				}
			default:
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortedAfter reports whether any sort call follows the loop.
func sortedAfter(sortCalls []ast.Node, rs *ast.RangeStmt) bool {
	for _, c := range sortCalls {
		if c.Pos() >= rs.End() {
			return true
		}
	}
	return false
}
