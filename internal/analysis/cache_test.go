package analysis_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"xemem/internal/analysis"
)

// copyFixture clones a fixture module into a temp dir so tests can
// edit sources without touching the checked-in tree.
func copyFixture(t *testing.T, fixture string) string {
	t.Helper()
	src := filepath.Join("testdata", fixture)
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy fixture: %v", err)
	}
	return dst
}

// runCached is RunCached with the test's cache dir and fatal errors.
func runCached(t *testing.T, root, cacheDir string) ([]analysis.Diagnostic, *analysis.Stats) {
	t.Helper()
	diags, stats, err := analysis.RunCached(root, analysis.All(), analysis.Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("RunCached: %v", err)
	}
	return diags, stats
}

// TestCacheWarmRun: a second run over unchanged sources must serve
// every package from the cache — without loading the module at all —
// and reproduce the cold run's diagnostics exactly (including the
// module-level conclusions recomputed from cached facts).
func TestCacheWarmRun(t *testing.T) {
	root := copyFixture(t, "snapshotcheck")
	cacheDir := filepath.Join(root, ".vetcache")

	cold, coldStats := runCached(t, root, cacheDir)
	if coldStats.CacheHits != 0 || len(coldStats.Analyzed) != coldStats.Packages {
		t.Fatalf("cold run: hits=%d analyzed=%v, want none/all of %d",
			coldStats.CacheHits, coldStats.Analyzed, coldStats.Packages)
	}
	if len(cold) == 0 {
		t.Fatal("cold run: no diagnostics from the snapshotcheck fixture")
	}

	warm, warmStats := runCached(t, root, cacheDir)
	if warmStats.CacheHits != warmStats.Packages || len(warmStats.Analyzed) != 0 {
		t.Fatalf("warm run: hits=%d/%d analyzed=%v, want all-hit",
			warmStats.CacheHits, warmStats.Packages, warmStats.Analyzed)
	}
	if warmStats.LoadNs != 0 {
		t.Errorf("warm run loaded the module (LoadNs=%d); the all-hit path must skip loading", warmStats.LoadNs)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm diagnostics diverge from cold:\ncold: %v\nwarm: %v", cold, warm)
	}
}

// TestCacheInvalidation: editing one file re-analyzes exactly that
// package and its import-graph dependents. The snapshotcheck fixture
// imports sim <- comp <- driver, so a leaf edit re-analyzes one
// package and a root edit re-analyzes all three.
func TestCacheInvalidation(t *testing.T) {
	root := copyFixture(t, "snapshotcheck")
	cacheDir := filepath.Join(root, ".vetcache")
	runCached(t, root, cacheDir)

	touch := func(rel string) {
		path := filepath.Join(root, rel)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", rel, err)
		}
		if err := os.WriteFile(path, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
			t.Fatalf("write %s: %v", rel, err)
		}
	}

	touch("internal/driver/driver.go")
	_, stats := runCached(t, root, cacheDir)
	if want := []string{"fixture/internal/driver"}; !reflect.DeepEqual(stats.Analyzed, want) {
		t.Errorf("leaf edit re-analyzed %v, want %v", stats.Analyzed, want)
	}

	touch("internal/sim/sim.go")
	_, stats = runCached(t, root, cacheDir)
	want := []string{"fixture/internal/comp", "fixture/internal/driver", "fixture/internal/sim"}
	sort.Strings(stats.Analyzed)
	if !reflect.DeepEqual(stats.Analyzed, want) {
		t.Errorf("root edit re-analyzed %v, want %v", stats.Analyzed, want)
	}

	// And the third run is warm again.
	_, stats = runCached(t, root, cacheDir)
	if stats.CacheHits != stats.Packages {
		t.Errorf("post-edit warm run: hits=%d/%d", stats.CacheHits, stats.Packages)
	}
}

// TestCacheSuppressionRecords: a suppression directive recorded in a
// cached package must keep silencing module-level diagnostics on fully
// warm runs (the cache carries the records, not just the verdicts).
func TestCacheSuppressionRecords(t *testing.T) {
	root := copyFixture(t, "snapshotcheck")
	cacheDir := filepath.Join(root, ".vetcache")

	cold, _ := runCached(t, root, cacheDir)
	warm, _ := runCached(t, root, cacheDir)
	for _, diags := range [][]analysis.Diagnostic{cold, warm} {
		for _, d := range diags {
			if d.Pos.Line == 19 && filepath.ToSlash(d.Pos.Filename) == "internal/comp/comp.go" {
				t.Errorf("nosnap-annotated field resurfaced: %s", d)
			}
		}
	}
}

// TestCacheVersionBump: changing an analyzer's version must invalidate
// every entry (the suite signature participates in each key).
func TestCacheVersionBump(t *testing.T) {
	root := copyFixture(t, "snapshotcheck")
	cacheDir := filepath.Join(root, ".vetcache")
	runCached(t, root, cacheDir)

	bumped := analysis.All()
	bumped[len(bumped)-1].Version++
	_, stats, err := analysis.RunCached(root, bumped, analysis.Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("RunCached: %v", err)
	}
	if stats.CacheHits != 0 {
		t.Errorf("version bump still hit the cache %d times", stats.CacheHits)
	}
}

// TestCacheWarmSpeedup runs the suite over the real module twice and
// requires the warm run to be at least 3x faster than the cold one:
// the whole point of the cache is skipping the load/type-check. Skipped
// under -short (the cold run type-checks the entire module).
func TestCacheWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("real-module cold run is slow")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()

	_, cold := runCached(t, root, cacheDir)
	_, warm := runCached(t, root, cacheDir)
	if warm.CacheHits != warm.Packages {
		t.Fatalf("warm run not fully cached: %d/%d", warm.CacheHits, warm.Packages)
	}
	if warm.TotalNs*3 > cold.TotalNs {
		t.Errorf("warm run %dns not >=3x faster than cold %dns", warm.TotalNs, cold.TotalNs)
	}
}
