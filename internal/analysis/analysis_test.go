package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"xemem/internal/analysis"
)

// want is one expected diagnostic: a position (file relative to the
// fixture root, 1-based line), the analyzer that must report it, and a
// substring its message must contain.
type want struct {
	file     string
	line     int
	analyzer string
	substr   string
}

// fixtureTests drives every analyzer over its fixture mini-module and
// asserts the exact diagnostic set: each triggering construct is
// flagged, each suppressed or idiomatic construct is silent (silence is
// asserted implicitly — an unexpected diagnostic fails the test).
var fixtureTests = []struct {
	fixture string
	wants   []want
}{
	{
		fixture: "determinism",
		wants: []want{
			{"internal/sim/clock.go", 6, "determinism", "import of math/rand"},
			{"internal/sim/clock.go", 13, "determinism", "time.Now reads the host clock"},
			{"internal/sim/clock.go", 14, "determinism", "time.Since reads the host clock"},
			{"internal/sim/clock.go", 20, "determinism", "os.Getpid is host/process-dependent"},
			// bench.go: both reads carry //xemem:wallclock — silent.
		},
	},
	{
		fixture: "chargecheck",
		wants: []want{
			// Used flows into Charge through two locals in sub.DoWork;
			// LeaseCheck is charged by the lease-expiry probe in lease.go;
			// Excused carries a directive. Dead and LeaseExpiry survive —
			// the TTL is only compared against the clock, and a deadline
			// comparison is a read, not a charge sink.
			{"internal/sim/sim.go", 15, "chargecheck", "Costs.Dead is never charged"},
			{"internal/sim/sim.go", 27, "chargecheck", "Costs.LeaseExpiry is never charged"},
			{"internal/sim/sim.go", 39, "chargecheck", "Costs.PickedDead is never charged"},
			{"internal/sim/sim.go", 52, "chargecheck", "writes Actor.now directly"},
			// WarpExcused is suppressed end-of-line. Helper (laundered
			// through sub.chargeAll's sunk parameter) and Picked (returned
			// by sub.pick into a Charge) are charged interprocedurally.
		},
	},
	{
		fixture: "paircheck",
		wants: []want{
			{"internal/app/app.go", 9, "paircheck", "Get result discarded"},
			{"internal/app/app.go", 14, "paircheck", "Attach handle bound to _"},
			{"internal/app/app.go", 20, "paircheck", `Get handle "apid" is never used again`},
			{"internal/app/app.go", 57, "paircheck", `GetWith handle "apid" is never used again`},
			{"internal/app/app.go", 62, "paircheck", "AttachWith result discarded"},
			{"internal/app/coll.go", 19, "paircheck", "AttachCached handle bound to _"},
			{"internal/app/coll.go", 35, "paircheck", `register handle "b" is never used again`},
			{"internal/app/helper.go", 33, "paircheck", "is only ever read"},
			// LeakExcused is suppressed; Paired/Transfers/TransfersVar/
			// PairedOpts release or transfer ownership and must stay
			// silent — as must PairedViaHelper, whose release happens
			// inside the retire helper. The registration-cache pairs:
			// PairedCached detaches, PairedBinding unregisters, and
			// TransfersBinding parks the binding in caller-owned state —
			// all silent.
		},
	},
	{
		fixture: "maporder",
		wants: []want{
			{"internal/trace/trace.go", 13, "maporder", "ranges over a map on an exporter-feeding path"},
			{"internal/trace/snapshot.go", 22, "maporder", "ranges over a map on an exporter-feeding path"},
			{"internal/trace/snapshot.go", 57, "maporder", "ranges over a map on an exporter-feeding path"},
			// shard.go: the lease map is the unordered half of a shard
			// layout; EncodeSnapshot ranges it raw (flagged — the replica
			// slices above it are ordered and silent), encodeLeasesSorted
			// collects and sorts.
			{"internal/trace/shard.go", 24, "maporder", "ranges over a map on an exporter-feeding path"},
			// WriteSorted and encodeSorted (filtered collect) use the
			// collect-then-sort idiom, WriteExcused/encodeExcused are
			// suppressed, and acct.Total is outside the exporter scope.
		},
	},
	{
		fixture: "hookstate",
		wants: []want{
			{"internal/lib/lib.go", 11, "hookstate", "package-level hook lib.Hook"},
			{"internal/lib/lib.go", 32, "hookstate", "package-level hook lib.PartHooks"},
			{"internal/lib/lib.go", 37, "hookstate", "package-level hook lib.HookByPart"},
			{"internal/lib/lib.go", 43, "hookstate", "package-level hook lib.Chain"},
			{"internal/other/other.go", 10, "hookstate", "package-level hook lib.Hook"},
			// InstallExcused is suppressed; cmd/tool is package main;
			// Counter is not func-typed.
		},
	},
	{
		fixture: "partition",
		wants: []want{
			{"internal/app/app.go", 13, "partition", "Now called on an actor other than the running one"},
			{"internal/app/app.go", 14, "partition", "Advance called on an actor other than the running one"},
			{"internal/app/app.go", 15, "partition", "RNG called on an actor other than the running one"},
			{"internal/app/app.go", 37, "partition", "Now called on an actor other than the running one"},
			// Identity reads, own-receiver Unblock, the two-actor Helper,
			// build-time Build, and the suppressed Excused stay silent.
			{"internal/app/escape.go", 20, "partition", "goroutine launched from an actor body captures the running actor"},
			{"internal/app/escape.go", 28, "partition", "escapes into another goroutine via runLater"},
			{"internal/app/escape.go", 37, "partition", "escapes into another goroutine via runLater"},
			{"internal/app/escape.go", 44, "partition", "escapes into another goroutine via Go"},
			// SyncHelper (runNow invokes within the dispatch) and the
			// suppressed EscapeExcused stay silent.
		},
	},
	{
		fixture: "snapshotcheck",
		wants: []want{
			{"internal/comp/comp.go", 15, "snapshotcheck", "Counter's EncodeSnapshot never writes it"},
			{"internal/comp/comp.go", 17, "snapshotcheck", "LoadSnapshot never reads it back"},
			{"internal/comp/comp.go", 22, "snapshotcheck", "Counter's EncodeSnapshot never writes it"},
			{"internal/comp/comp.go", 67, "snapshotcheck", "Nested's EncodeSnapshot never writes it"},
			// ticks/depth/level are covered, label is constructor-only,
			// cache carries //xemem:nosnap, and Scratch is outside the
			// registered-reachable snapshot graph.
		},
	},
	{
		fixture: "directive",
		wants: []want{
			{"internal/lib/lib.go", 7, "directive", "needs a ' -- <reason>'"},
			{"internal/lib/lib.go", 12, "directive", `unknown analyzer "frobcheck"`},
			{"internal/lib/lib.go", 18, "directive", "only be excused via //xemem:wallclock"},
			{"internal/lib/lib.go", 23, "directive", `unknown //xemem: directive "//xemem:frobnicate"`},
			{"internal/lib/lib.go", 28, "directive", "needs a ' -- <reason>'"},
			{"internal/lib/lib.go", 33, "directive", "needs a ' -- <reason>'"},
			{"internal/lib/lib.go", 39, "directive", "per-field"},
		},
	},
}

func TestFixtures(t *testing.T) {
	for _, tt := range fixtureTests {
		t.Run(tt.fixture, func(t *testing.T) {
			m, err := analysis.Load(filepath.Join("testdata", tt.fixture))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			diags := analysis.Run(m, analysis.All())

			matched := make([]bool, len(diags))
			for _, w := range tt.wants {
				found := false
				for i, d := range diags {
					if matched[i] {
						continue
					}
					rel, err := filepath.Rel(m.Root, d.Pos.Filename)
					if err != nil {
						rel = d.Pos.Filename
					}
					if filepath.ToSlash(rel) == w.file && d.Pos.Line == w.line &&
						d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
						matched[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("missing diagnostic: %s:%d: %s: ...%s...", w.file, w.line, w.analyzer, w.substr)
				}
			}
			for i, d := range diags {
				if !matched[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

// TestWallclockSuppressionForms pins the two directive placements the
// determinism fixture relies on: end-of-line (suppresses its own line)
// and standalone comment (suppresses the line below).
func TestWallclockSuppressionForms(t *testing.T) {
	m, err := analysis.Load(filepath.Join("testdata", "determinism"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, d := range analysis.Run(m, analysis.All()) {
		if filepath.Base(d.Pos.Filename) == "bench.go" {
			t.Errorf("annotated wall-clock read still flagged: %s", d)
		}
	}
}

// TestNames pins the allow-directive vocabulary: the analyzer names are
// load-bearing in source annotations across the tree, so renaming one is
// a breaking change this test makes deliberate.
func TestNames(t *testing.T) {
	got := strings.Join(analysis.Names(), " ")
	const only = "determinism chargecheck paircheck maporder hookstate partition snapshotcheck"
	if got != only {
		t.Fatalf("analyzer suite = %q, want %q", got, only)
	}
}
