// Package analysis is xemem's in-tree static-analysis framework: a
// stdlib-only (go/parser + go/ast + go/types, no x/tools) driver core
// plus the domain analyzers that mechanically enforce the simulator's
// correctness invariants — determinism of virtual time, cost-model
// charging, resource pairing, exporter map ordering, hook-variable
// discipline, partition isolation under the parallel engine, and
// snapshot completeness. The cmd/xemem-vet driver loads the module,
// type-checks every package, builds interprocedural function summaries,
// runs the analyzers (concurrently, one worker per package), applies
// //xemem: suppression directives, and reports what survives.
//
// Analyzers run per package and return JSON-serializable *facts*; a
// Finish hook draws whole-module conclusions from the union of facts.
// That split is what makes the on-disk result cache (cache.go) sound: a
// cached package replays its diagnostics and facts without being
// re-type-checked, and module-level conclusions are recomputed from
// facts alone.
//
// Invariants are enforced conservatively: an analyzer may miss an
// exotic violation, but every diagnostic it does emit is intended to be
// actionable, and every intentional exception must carry an explicit,
// reasoned suppression directive in the source.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Diagnostic is one finding: an invariant violation (or directive
// misuse) at a source position. Positions are module-root-relative so
// diagnostics are stable across checkouts and cacheable.
type Diagnostic struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package plus the whole-module
// context interprocedural analyzers need.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos (stored root-relative).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Module.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FinishPass is an analyzer's whole-module view: the per-package facts
// its Run calls returned (possibly replayed from cache), and a reporter
// for module-level diagnostics.
type FinishPass struct {
	Analyzer *Analyzer
	// Facts maps package path → the JSON encoding of the value Run
	// returned for that package (absent when Run returned nil).
	Facts map[string]json.RawMessage

	report func(Diagnostic)
}

// Paths lists the packages that contributed facts, sorted.
func (f *FinishPass) Paths() []string {
	paths := make([]string, 0, len(f.Facts))
	for p := range f.Facts {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Fact unmarshals one package's facts into `into`, reporting whether
// the package had any.
func (f *FinishPass) Fact(path string, into any) bool {
	raw, ok := f.Facts[path]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, into) == nil
}

// Reportf records a module-level diagnostic at a (root-relative)
// position carried in facts.
func (f *FinishPass) Reportf(pos token.Position, format string, args ...any) {
	f.report(Diagnostic{Pos: pos, Analyzer: f.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	// Version participates in cache keys: bump it whenever the
	// analyzer's semantics change so stale cached results die.
	Version int
	// Run analyzes one package and returns the analyzer's package facts
	// (any JSON-marshalable value; nil when the package contributes
	// none). Run is invoked concurrently for different packages and
	// must not share mutable state across calls.
	Run func(*Pass) any
	// Finish, when non-nil, draws whole-module conclusions from the
	// union of per-package facts (e.g. "this cost constant is charged
	// nowhere").
	Finish func(*FinishPass)
}

// All returns the full analyzer suite in fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		newDeterminism(),
		newChargecheck(),
		newPaircheck(),
		newMaporder(),
		newHookstate(),
		newPartition(),
		newSnapshotcheck(),
	}
}

// Names reports the analyzer names in suite order (the vocabulary the
// //xemem:allow directive accepts).
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// Stats describes one driver run: how much work the cache absorbed and
// where the remaining wall-clock went.
type Stats struct {
	Packages  int      `json:"packages"`
	CacheHits int      `json:"cacheHits"`
	Analyzed  []string `json:"analyzed,omitempty"` // packages analyzed fresh, sorted

	LoadNs     int64            `json:"loadNs"` // parse + type-check + summaries
	AnalyzerNs map[string]int64 `json:"analyzerNs,omitempty"`
	TotalNs    int64            `json:"totalNs"`
}

// pkgResult is one package's complete analysis product — everything the
// driver (and the on-disk cache) needs downstream of type-checking:
// post-suppression diagnostics, per-analyzer facts, and the suppression
// records module-level diagnostics must honor.
type pkgResult struct {
	Path  string                     `json:"path"`
	Diags []Diagnostic               `json:"diags,omitempty"`
	Facts map[string]json.RawMessage `json:"facts,omitempty"`
	Sup   []supRecord                `json:"sup,omitempty"`
}

// Run executes the given analyzers over a loaded module, applies the
// suppression directives found in the module's sources, and returns the
// surviving diagnostics sorted by position. Directive misuse (missing
// reason, unknown analyzer name, misplaced wallclock) is reported under
// the "directive" pseudo-analyzer and is never suppressible.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	results := runPackages(m, analyzers, nil, nil)
	return assemble(analyzers, results)
}

// runPackages analyzes m's packages concurrently — all of them, or just
// the ones in `only` when non-nil (cache misses). The result slice is
// aligned with m.Pkgs; skipped packages leave nil slots for the caller
// to fill from cache. stats, when non-nil, accumulates per-analyzer
// timing.
func runPackages(m *Module, analyzers []*Analyzer, only map[string]bool, stats *Stats) []*pkgResult {
	m.Summaries() // built once, up front: read-only for the workers

	results := make([]*pkgResult, len(m.Pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	timing := newTimingTable(analyzers)
	for i, pkg := range m.Pkgs {
		if only != nil && !only[pkg.Path] {
			continue
		}
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = analyzePackage(m, analyzers, pkg, timing)
		}(i, pkg)
	}
	wg.Wait()

	if stats != nil {
		timing.addTo(stats)
	}
	return results
}

// analyzePackage runs every analyzer over one package, applies the
// package's own suppression directives, and bundles the result.
func analyzePackage(m *Module, analyzers []*Analyzer, pkg *Package, timing *timingTable) *pkgResult {
	sup := collectPackageDirectives(m, pkg, knownNames(analyzers))

	res := &pkgResult{Path: pkg.Path, Facts: make(map[string]json.RawMessage), Sup: sup.records}
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		start := time.Now() //xemem:wallclock -- analyzer self-timing for `make vet`, never simulation state
		facts := a.Run(&Pass{Analyzer: a, Module: m, Pkg: pkg, report: report})
		timing.add(a.Name, time.Since(start)) //xemem:wallclock -- analyzer self-timing
		if facts != nil {
			if raw, err := json.Marshal(facts); err == nil {
				res.Facts[a.Name] = raw
			}
		}
	}

	res.Diags = sup.errors // directive misuse is itself diagnosed, unsuppressibly
	for _, d := range diags {
		if !sup.suppressed(d) {
			res.Diags = append(res.Diags, d)
		}
	}
	sortDiags(res.Diags)
	return res
}

// assemble merges per-package results with the module-level Finish
// diagnostics (which honor suppression directives from any package) and
// sorts.
func assemble(analyzers []*Analyzer, results []*pkgResult) []Diagnostic {
	var kept []Diagnostic
	sup := &suppressions{byLine: make(map[lineKey]map[string]bool)}
	facts := make(map[string]map[string]json.RawMessage) // analyzer → pkg path → facts
	for _, r := range results {
		if r == nil {
			continue
		}
		kept = append(kept, r.Diags...)
		for _, s := range r.Sup {
			sup.add(s.File, s.Line, s.Analyzer)
		}
		for name, raw := range r.Facts {
			if facts[name] == nil {
				facts[name] = make(map[string]json.RawMessage)
			}
			facts[name][r.Path] = raw
		}
	}

	var moduleDiags []Diagnostic
	report := func(d Diagnostic) { moduleDiags = append(moduleDiags, d) }
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		f := facts[a.Name]
		if f == nil {
			f = make(map[string]json.RawMessage)
		}
		a.Finish(&FinishPass{Analyzer: a, Facts: f, report: report})
	}
	for _, d := range moduleDiags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sortDiags(kept)
	return kept
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func knownNames(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// timingTable accumulates per-analyzer wall-clock across concurrent
// package workers.
type timingTable struct {
	ns map[string]*atomic.Int64
}

func newTimingTable(analyzers []*Analyzer) *timingTable {
	t := &timingTable{ns: make(map[string]*atomic.Int64)}
	for _, a := range analyzers {
		t.ns[a.Name] = new(atomic.Int64)
	}
	return t
}

func (t *timingTable) add(name string, d time.Duration) {
	if c := t.ns[name]; c != nil {
		c.Add(int64(d))
	}
}

func (t *timingTable) addTo(stats *Stats) {
	if stats.AnalyzerNs == nil {
		stats.AnalyzerNs = make(map[string]int64)
	}
	for name, c := range t.ns {
		stats.AnalyzerNs[name] += c.Load()
	}
}
