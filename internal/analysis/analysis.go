// Package analysis is xemem's in-tree static-analysis framework: a
// stdlib-only (go/parser + go/ast + go/types, no x/tools) driver core
// plus the domain analyzers that mechanically enforce the simulator's
// correctness invariants — determinism of virtual time, cost-model
// charging, resource pairing, exporter map ordering, hook-variable
// discipline, and partition isolation under the parallel engine. The cmd/xemem-vet driver loads the module, type-checks
// every package, runs the analyzers, applies //xemem: suppression
// directives, and reports what survives.
//
// Invariants are enforced conservatively and syntactically: an analyzer
// may miss an exotic violation, but every diagnostic it does emit is
// intended to be actionable, and every intentional exception must carry
// an explicit, reasoned suppression directive in the source.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: an invariant violation (or directive
// misuse) at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package plus the whole-module
// context cross-package analyzers need.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Module.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker. Run is invoked once per package in
// import-path order; Finish, when non-nil, is invoked once after every
// package has been visited, for whole-module conclusions (e.g. "this
// cost constant is charged nowhere").
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)

	Finish func(m *Module, report func(Diagnostic))
}

// All returns the full analyzer suite in fixed order. A fresh slice of
// fresh analyzer states is returned on every call: analyzers that carry
// cross-package state (chargecheck) are not reusable across module
// loads.
func All() []*Analyzer {
	return []*Analyzer{
		newDeterminism(),
		newChargecheck(),
		newPaircheck(),
		newMaporder(),
		newHookstate(),
		newPartition(),
	}
}

// Names reports the analyzer names in suite order (the vocabulary the
// //xemem:allow directive accepts).
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// Run executes the given analyzers over a loaded module, applies the
// suppression directives found in the module's sources, and returns the
// surviving diagnostics sorted by position. Directive misuse (missing
// reason, unknown analyzer name, misplaced wallclock) is reported under
// the "directive" pseudo-analyzer and is never suppressible.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	sup := collectDirectives(m, analyzers)

	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	for _, a := range analyzers {
		for _, pkg := range m.Pkgs {
			a.Run(&Pass{Analyzer: a, Module: m, Pkg: pkg, report: report})
		}
		if a.Finish != nil {
			a.Finish(m, report)
		}
	}

	kept := sup.errors // directive misuse is itself diagnosed
	for _, d := range diags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}
