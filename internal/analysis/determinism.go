package analysis

import (
	"go/ast"
)

// The determinism analyzer guards the simulator's foundational property:
// for a fixed seed, every run produces bit-identical virtual-time
// results. Host-side nondeterminism — wall-clock reads, the global
// math/rand stream, process identity — must never leak into simulation
// logic. The only legitimate uses are real-time benchmark timers, which
// must be annotated //xemem:wallclock -- <reason>; the generic
// //xemem:allow form is deliberately rejected for this analyzer.

// wallclockFuncs are the time-package functions that read or depend on
// the host clock.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// processIdentityFuncs are os-package reads of ambient process identity
// that differ run to run or host to host.
var processIdentityFuncs = map[string]bool{
	"Getpid": true, "Getppid": true, "Hostname": true, "Environ": true,
}

func newDeterminism() *Analyzer {
	a := &Analyzer{
		Name:    "determinism",
		Doc:     "flags wall-clock, math/rand, and process-identity nondeterminism; excuse real benchmark timers with //xemem:wallclock -- <reason>",
		Version: 1,
	}
	a.Run = func(pass *Pass) any {
		for _, f := range pass.Pkg.Files {
			runDeterminismFile(pass, f)
		}
		return nil
	}
	return a
}

func runDeterminismFile(pass *Pass, f *ast.File) {
	// Fallback import table for degraded type information: local name of
	// each interesting import in this file.
	importName := make(map[string]string)
	for _, spec := range f.Imports {
		path := importPath(spec)
		switch path {
		case "time", "os", "math/rand", "math/rand/v2":
			name := path
			if i := lastSlash(path); i >= 0 {
				name = path[i+1:]
			}
			if spec.Name != nil {
				name = spec.Name.Name
			}
			importName[name] = path
		}
		switch path {
		case "math/rand", "math/rand/v2":
			pass.Reportf(spec.Pos(),
				"import of %s: its generators are seeded outside the World's control; use the deterministic per-actor stream (sim.RNG)", path)
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path := pkgNameOf(pass.Pkg.Info, id)
		if path == "" {
			path = importName[id.Name]
		}
		switch {
		case path == "time" && wallclockFuncs[sel.Sel.Name]:
			pass.Reportf(call.Pos(),
				"time.%s reads the host clock: simulated time must come from Actor.Now/Charge; real benchmark timers need //xemem:wallclock -- <reason>", sel.Sel.Name)
		case path == "os" && processIdentityFuncs[sel.Sel.Name]:
			pass.Reportf(call.Pos(),
				"os.%s is host/process-dependent and breaks run-to-run determinism", sel.Sel.Name)
		}
		return true
	})
}

func importPath(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	if len(s) >= 2 {
		s = s[1 : len(s)-1]
	}
	return s
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
