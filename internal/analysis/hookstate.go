package analysis

import (
	"go/ast"
	"go/types"
)

// The hookstate analyzer guards the "a World owns everything it
// touches" audit (PR 3): package-level hook variables — func-typed
// globals like experiments.Observe/ObserveCell — are process-wide
// mutable state, and library code that writes them mid-experiment
// couples unrelated worlds together (the Fig6Explain bug class: a
// library function swapped the package hook and broke the parallel
// sweep's isolation).
//
// The rule is mechanical: assignments to package-level variables of
// function type are allowed only in package main — the driver binaries
// that own process configuration and install registration closures
// (trace.Set.Hook/CellHook) at startup. Everywhere else, observers must
// be threaded explicitly (World.SetObserver, function parameters).
// Tests are outside xemem-vet's scope and may save/restore hooks
// freely.
func newHookstate() *Analyzer {
	a := &Analyzer{
		Name: "hookstate",
		Doc:  "flags writes to package-level func-typed hook variables outside package main; library code must thread observers explicitly",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types == nil || pass.Pkg.Types.Name() == "main" {
			return
		}
		for _, f := range pass.Pkg.Files {
			checkHookWrites(pass, f)
		}
	}
	return a
}

func checkHookWrites(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			var id *ast.Ident
			switch l := l.(type) {
			case *ast.Ident:
				id = l
			case *ast.SelectorExpr:
				id = l.Sel
			default:
				continue
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				continue // not a package-level variable
			}
			if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
				continue
			}
			pass.Reportf(l.Pos(),
				"write to package-level hook %s.%s outside package main: hooks are installed once by driver binaries; library code must thread observers explicitly (World.SetObserver or parameters)",
				v.Pkg().Name(), v.Name())
		}
		return true
	})
}
