package analysis

import (
	"go/ast"
	"go/types"
)

// The hookstate analyzer guards the "a World owns everything it
// touches" audit (PR 3): package-level hook variables — func-typed
// globals like experiments.Observe/ObserveCell — are process-wide
// mutable state, and library code that writes them mid-experiment
// couples unrelated worlds together (the Fig6Explain bug class: a
// library function swapped the package hook and broke the parallel
// sweep's isolation).
//
// The rule is mechanical: assignments to package-level variables of
// function type are allowed only in package main — the driver binaries
// that own process configuration and install registration closures
// (trace.Set.Hook/CellHook/CellPartitionHook) at startup. Everywhere
// else, observers must be threaded explicitly (World.SetObserver,
// function parameters). Per-partition hook *tables* — package-level
// slices, arrays, or maps with function elements, the natural shape for
// one-observer-per-engine-partition registration — are hooks too:
// writing an element (or appending) from library code couples worlds
// exactly the same way, so those writes are flagged as well. Tests are
// outside xemem-vet's scope and may save/restore hooks freely.
func newHookstate() *Analyzer {
	a := &Analyzer{
		Name:    "hookstate",
		Doc:     "flags writes to package-level func-typed hook variables outside package main; library code must thread observers explicitly",
		Version: 1,
	}
	a.Run = func(pass *Pass) any {
		if pass.Pkg.Types == nil || pass.Pkg.Types.Name() == "main" {
			return nil
		}
		for _, f := range pass.Pkg.Files {
			checkHookWrites(pass, f)
		}
		return nil
	}
	return a
}

func checkHookWrites(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			var id *ast.Ident
			switch l := l.(type) {
			case *ast.Ident:
				id = l
			case *ast.SelectorExpr:
				id = l.Sel
			case *ast.IndexExpr:
				// Element write into a per-partition hook table:
				// Hooks[part] = f.
				switch x := ast.Unparen(l.X).(type) {
				case *ast.Ident:
					id = x
				case *ast.SelectorExpr:
					id = x.Sel
				default:
					continue
				}
			default:
				continue
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				continue // not a package-level variable
			}
			if !isHookType(v.Type()) {
				continue
			}
			pass.Reportf(l.Pos(),
				"write to package-level hook %s.%s outside package main: hooks are installed once by driver binaries; library code must thread observers explicitly (World.SetObserver or parameters)",
				v.Pkg().Name(), v.Name())
		}
		return true
	})
}

// isHookType reports whether t is a hook shape: a function, or a
// per-partition hook table (slice, array, or map with function
// elements).
func isHookType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Signature:
		return true
	case *types.Slice:
		_, ok := u.Elem().Underlying().(*types.Signature)
		return ok
	case *types.Array:
		_, ok := u.Elem().Underlying().(*types.Signature)
		return ok
	case *types.Map:
		_, ok := u.Elem().Underlying().(*types.Signature)
		return ok
	}
	return false
}
