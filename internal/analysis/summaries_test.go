package analysis_test

import (
	"go/types"
	"path/filepath"
	"reflect"
	"testing"

	"xemem/internal/analysis"
)

// lookupFunc resolves a (possibly unexported) function or method in a
// fixture package.
func lookupFunc(t *testing.T, m *analysis.Module, pkgPath, recv, name string) *types.Func {
	t.Helper()
	pkg := m.Lookup(pkgPath)
	if pkg == nil || pkg.Types == nil {
		t.Fatalf("package %s not loaded", pkgPath)
	}
	if recv == "" {
		fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("%s.%s not found", pkgPath, name)
		}
		return fn
	}
	obj := pkg.Types.Scope().Lookup(recv)
	if obj == nil {
		t.Fatalf("%s.%s not found", pkgPath, recv)
	}
	sel, _, _ := types.LookupFieldOrMethod(types.NewPointer(obj.Type()), true, pkg.Types, name)
	fn, ok := sel.(*types.Func)
	if !ok {
		t.Fatalf("method %s.%s.%s not found", pkgPath, recv, name)
	}
	return fn
}

// TestSummariesCharge pins the dataflow facts the chargecheck fixture
// relies on: a laundering helper's parameter is sunk, a cost-returning
// helper reports its Costs fields, and a dead-returning helper does
// not get its result charged for free.
func TestSummariesCharge(t *testing.T) {
	m, err := analysis.Load(filepath.Join("testdata", "chargecheck"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sums := m.Summaries()

	chargeAll := sums.Of(lookupFunc(t, m, "fixture/internal/sub", "", "chargeAll"))
	if chargeAll == nil {
		t.Fatal("no summary for sub.chargeAll")
	}
	// Plain function: a=0, op=1, d=2. Every Charge argument is a charge
	// zone (deliberately over-approximate — it can only silence, never
	// invent, a finding), so op and d are sunk but the actor is not.
	if want := []bool{false, true, true}; !reflect.DeepEqual(chargeAll.Sunk, want) {
		t.Errorf("chargeAll.Sunk = %v, want %v", chargeAll.Sunk, want)
	}

	pick := sums.Of(lookupFunc(t, m, "fixture/internal/sub", "", "pick"))
	if want := []string{"Picked"}; !reflect.DeepEqual(pick.CostsReturns, want) {
		t.Errorf("pick.CostsReturns = %v, want %v", pick.CostsReturns, want)
	}
	pickDead := sums.Of(lookupFunc(t, m, "fixture/internal/sub", "", "pickDead"))
	if want := []string{"PickedDead"}; !reflect.DeepEqual(pickDead.CostsReturns, want) {
		t.Errorf("pickDead.CostsReturns = %v, want %v", pickDead.CostsReturns, want)
	}

	// The method index space puts the receiver at 0: Actor.Charge sinks
	// its duration parameter (index 2, after the op string).
	charge := sums.Of(lookupFunc(t, m, "fixture/internal/sim", "Actor", "Charge"))
	if len(charge.Sunk) != 3 || !charge.Sunk[2] || charge.Sunk[1] {
		t.Errorf("Actor.Charge.Sunk = %v, want duration-only at index 2", charge.Sunk)
	}

	if fields := sums.CostsFields(); len(fields) == 0 {
		t.Error("CostsFields: fixture sim.Costs not located")
	}
}

// TestSummariesRelease pins ownership facts: a helper that releases
// the handle for its caller, against one that only reads it.
func TestSummariesRelease(t *testing.T) {
	m, err := analysis.Load(filepath.Join("testdata", "paircheck"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sums := m.Summaries()

	retire := sums.Of(lookupFunc(t, m, "fixture/internal/app", "", "retire"))
	if want := []bool{false, true}; !reflect.DeepEqual(retire.Released, want) {
		t.Errorf("retire.Released = %v, want %v", retire.Released, want)
	}
	classify := sums.Of(lookupFunc(t, m, "fixture/internal/app", "", "classify"))
	if classify.Released[0] || classify.Escaped[0] {
		t.Errorf("classify = released %v escaped %v, want a neutral read",
			classify.Released, classify.Escaped)
	}
}

// TestSummariesGoEscape pins the closure-escape facts the partition
// analyzer consumes: a helper that launches its parameter on a
// goroutine go-escapes it, a synchronous invoker does not.
func TestSummariesGoEscape(t *testing.T) {
	m, err := analysis.Load(filepath.Join("testdata", "partition"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sums := m.Summaries()

	later := sums.Of(lookupFunc(t, m, "fixture/internal/app", "", "runLater"))
	if want := []bool{true}; !reflect.DeepEqual(later.GoEscaped, want) {
		t.Errorf("runLater.GoEscaped = %v, want %v", later.GoEscaped, want)
	}
	now := sums.Of(lookupFunc(t, m, "fixture/internal/app", "", "runNow"))
	if want := []bool{false}; !reflect.DeepEqual(now.GoEscaped, want) {
		t.Errorf("runNow.GoEscaped = %v, want %v", now.GoEscaped, want)
	}
}
