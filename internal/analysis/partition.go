package analysis

import (
	"go/ast"
	"go/types"
)

// The partition analyzer guards the parallel engine's isolation
// contract: under sim.World.SetParallel, partitions run concurrently
// between barriers, and the only actor whose mutable state a dispatch
// may touch is the running actor itself (plus whatever the engine's own
// partition-local primitives — Unblock, Spawn, resources, mailboxes —
// do on its behalf). Code that reaches into *another* actor's state
// from inside an actor closure (reading its clock, drawing from its RNG
// stream, advancing it) is a data race the moment the two actors land
// in different partitions, and a determinism leak even when it happens
// to be safe today.
//
// Two rules, both conservative:
//
//  1. Foreign-actor calls (v1): inside any function or closure that
//     receives a *sim.Actor parameter (an actor body, in this codebase's
//     idiom), a method call on an actor *other than* one of those
//     parameters is flagged — except the immutable identity methods
//     (ID, Name, Partition, World), which are set at spawn and safe to
//     read from anywhere. A nested actor closure resets the scope; plain
//     closures inherit it; build-time and post-run code (no actor
//     parameter in scope) is exempt.
//
//  2. Closure escape (v2, interprocedural): a plain closure that
//     captures the running actor must not leave the dispatch that owns
//     it. Launching one on a goroutine (`go`), handing it to a scheduler
//     spawn, or passing it to *any* helper whose summary says the
//     matching parameter may run on another goroutine is flagged — the
//     captured actor would be touched from a different partition's
//     dispatch. Known same-partition pairings may carry an
//     //xemem:allow partition directive with the reason.
func newPartition() *Analyzer {
	return &Analyzer{
		Name:    "partition",
		Doc:     "flags actor-state access on an actor other than the running one inside actor closures, and running-actor captures that escape into other goroutines (directly or through a helper); cross-partition interaction must go through a Mailbox",
		Version: 2,
		Run: func(pass *Pass) any {
			if pass.Pkg.Types == nil || pass.Pkg.Types.Name() == "main" || isSimPackage(pass.Module, pass.Pkg) {
				return nil
			}
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
						checkPartitionScope(pass, fd.Body, actorParams(pass.Pkg.Info, fd.Type))
					}
				}
			}
			return nil
		},
	}
}

// partitionSafeMethods are the Actor methods readable on any actor:
// immutable identity, fixed at spawn.
var partitionSafeMethods = map[string]bool{
	"ID": true, "Name": true, "Partition": true, "World": true,
}

// actorParams collects the *sim.Actor-typed parameters of a function
// signature (nil when it has none).
func actorParams(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	var own map[types.Object]bool
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil || !isActorType(obj.Type()) {
				continue
			}
			if own == nil {
				own = make(map[types.Object]bool)
			}
			own[obj] = true
		}
	}
	return own
}

// isActorType reports whether t is (a pointer to) the engine's Actor
// type. The package is matched by path suffix so fixture modules
// exercise the same rule.
func isActorType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			obj := u.Obj()
			return obj.Name() == "Actor" && obj.Pkg() != nil && hasSuffixPath(obj.Pkg().Path(), "internal/sim")
		default:
			return false
		}
	}
}

// checkPartitionScope walks one function body with the given
// running-actor scope, re-scoping at nested function literals: a
// literal with its own actor parameter is a new actor body, one without
// runs inside the current dispatch and inherits. Along the way it
// tracks locals bound to plain closures, so a capture that escapes via
// a named closure is caught like an inline one.
func checkPartitionScope(pass *Pass, body ast.Node, own map[types.Object]bool) {
	info := pass.Pkg.Info
	closures := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			next := own
			if ps := actorParams(info, n.Type); len(ps) > 0 {
				next = ps
			}
			checkPartitionScope(pass, n.Body, next)
			return false
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if fl, ok := n.Rhs[i].(*ast.FuncLit); ok {
					if id, ok := l.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							closures[obj] = fl
						}
					}
				}
			}
		case *ast.GoStmt:
			if len(own) > 0 && usesAnyOf(info, n.Call, own) {
				pass.Reportf(n.Pos(),
					"goroutine launched from an actor body captures the running actor: its state would be touched outside the owning partition's dispatch; route the work through the scheduler (Spawn) or a Mailbox")
				return false
			}
		case *ast.CallExpr:
			checkPartitionCall(pass, n, own)
			checkClosureEscape(pass, n, own, closures)
		}
		return true
	})
}

// checkPartitionCall flags a method call on a foreign actor from inside
// an actor scope.
func checkPartitionCall(pass *Pass, call *ast.CallExpr, own map[types.Object]bool) {
	if len(own) == 0 {
		return // build-time or post-run code: no window is running
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.Pkg.Info.Selections[sel]
	if !ok || !isActorType(s.Recv()) {
		return
	}
	if partitionSafeMethods[sel.Sel.Name] {
		return
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := pass.Pkg.Info.Uses[id]; obj != nil && own[obj] {
			return // the running actor's own primitive
		}
	}
	pass.Reportf(sel.Pos(),
		"%s called on an actor other than the running one: actor state is partition-local under the parallel engine; route cross-partition interaction through a Mailbox (or pass the actor in as the running parameter)",
		sel.Sel.Name)
}

// checkClosureEscape flags a plain closure capturing the running actor
// handed to a goroutine-spawning callee: a scheduler spawn by name, or
// any helper whose summary marks the matching func parameter as
// go-escaping.
func checkClosureEscape(pass *Pass, call *ast.CallExpr, own map[types.Object]bool, closures map[types.Object]*ast.FuncLit) {
	if len(own) == 0 {
		return
	}
	info := pass.Pkg.Info
	sums := pass.Module.Summaries()
	callee := resolveCallee(info, call)
	cs := sums.Of(callee)
	spawn := spawnNames[calleeName(call)]
	if !spawn && cs == nil {
		return
	}
	inspect := func(arg ast.Expr, escaping bool, how string) {
		if !escaping {
			return
		}
		fl, _ := ast.Unparen(arg).(*ast.FuncLit)
		if fl == nil {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				fl = closures[info.Uses[id]]
			}
		}
		if fl == nil || len(actorParams(info, fl.Type)) > 0 {
			return // not a closure we track, or a fresh actor body (re-scoped)
		}
		if !usesAnyOf(info, fl.Body, own) {
			return
		}
		pass.Reportf(arg.Pos(),
			"closure capturing the running actor escapes into another goroutine via %s: the captured actor's state would be touched outside the owning partition's dispatch; pass data through a Mailbox instead of capturing the actor", how)
	}
	if spawn {
		for _, arg := range call.Args {
			inspect(arg, true, calleeName(call))
		}
		return
	}
	forEachArg(info, call, callee, func(arg ast.Expr, pi int) {
		inspect(arg, pi < len(cs.GoEscaped) && cs.GoEscaped[pi], calleeName(call))
	})
}

// usesAnyOf reports whether any identifier under n refers to one of the
// given objects.
func usesAnyOf(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
