package analysis

import (
	"go/ast"
	"go/types"
)

// The partition analyzer guards the parallel engine's isolation
// contract: under sim.World.SetParallel, partitions run concurrently
// between barriers, and the only actor whose mutable state a dispatch
// may touch is the running actor itself (plus whatever the engine's own
// partition-local primitives — Unblock, Spawn, resources, mailboxes —
// do on its behalf). Code that reaches into *another* actor's state
// from inside an actor closure (reading its clock, drawing from its RNG
// stream, advancing it) is a data race the moment the two actors land
// in different partitions, and a determinism leak even when it happens
// to be safe today.
//
// The rule is conservative and syntactic, mirroring the engine's
// runtime guard on cross-partition Unblock: inside any function or
// closure that receives a *sim.Actor parameter (an actor body, in this
// codebase's idiom), a method call on an actor *other than* one of
// those parameters is flagged — except the immutable identity methods
// (ID, Name, Partition, World), which are set at spawn and safe to read
// from anywhere. A nested actor closure resets the scope: its own
// parameter is the running actor there, and the outer closure's actor
// is foreign. Plain closures (Poll conditions, deferred cleanups)
// inherit the enclosing actor scope, because they run within its
// dispatch. Build-time and post-run code (no actor parameter in scope)
// is exempt: no window is running. Known same-partition pairings may
// carry an //xemem:allow partition directive with the reason.
func newPartition() *Analyzer {
	a := &Analyzer{
		Name: "partition",
		Doc:  "flags actor-state access on an actor other than the running one inside actor closures; cross-partition interaction must go through a Mailbox",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types == nil || pass.Pkg.Types.Name() == "main" || isSimPackage(pass.Module, pass.Pkg) {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkPartitionScope(pass, fd.Body, actorParams(pass.Pkg.Info, fd.Type))
				}
			}
		}
	}
	return a
}

// partitionSafeMethods are the Actor methods readable on any actor:
// immutable identity, fixed at spawn.
var partitionSafeMethods = map[string]bool{
	"ID": true, "Name": true, "Partition": true, "World": true,
}

// actorParams collects the *sim.Actor-typed parameters of a function
// signature (nil when it has none).
func actorParams(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	var own map[types.Object]bool
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil || !isActorType(obj.Type()) {
				continue
			}
			if own == nil {
				own = make(map[types.Object]bool)
			}
			own[obj] = true
		}
	}
	return own
}

// isActorType reports whether t is (a pointer to) the engine's Actor
// type. The package is matched by path suffix so fixture modules
// exercise the same rule.
func isActorType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			obj := u.Obj()
			return obj.Name() == "Actor" && obj.Pkg() != nil && hasSuffixPath(obj.Pkg().Path(), "internal/sim")
		default:
			return false
		}
	}
}

// checkPartitionScope walks one function body with the given
// running-actor scope, re-scoping at nested function literals: a
// literal with its own actor parameter is a new actor body, one without
// runs inside the current dispatch and inherits.
func checkPartitionScope(pass *Pass, body ast.Node, own map[types.Object]bool) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			next := own
			if ps := actorParams(info, n.Type); len(ps) > 0 {
				next = ps
			}
			checkPartitionScope(pass, n.Body, next)
			return false
		case *ast.CallExpr:
			checkPartitionCall(pass, n, own)
		}
		return true
	})
}

// checkPartitionCall flags a method call on a foreign actor from inside
// an actor scope.
func checkPartitionCall(pass *Pass, call *ast.CallExpr, own map[types.Object]bool) {
	if len(own) == 0 {
		return // build-time or post-run code: no window is running
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.Pkg.Info.Selections[sel]
	if !ok || !isActorType(s.Recv()) {
		return
	}
	if partitionSafeMethods[sel.Sel.Name] {
		return
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := pass.Pkg.Info.Uses[id]; obj != nil && own[obj] {
			return // the running actor's own primitive
		}
	}
	pass.Reportf(sel.Pos(),
		"%s called on an actor other than the running one: actor state is partition-local under the parallel engine; route cross-partition interaction through a Mailbox (or pass the actor in as the running parameter)",
		sel.Sel.Name)
}
