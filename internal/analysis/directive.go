package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// Suppression directives.
//
// Three comment forms silence diagnostics, all requiring a reason:
//
//	//xemem:allow <analyzer> -- <reason>
//	//xemem:wallclock -- <reason>
//	//xemem:nosnap -- <reason>
//
// A directive written at the end of a code line suppresses that line's
// findings; a directive on a line of its own (including the last line of
// a doc comment) suppresses the line below it. Two analyzers are
// special-cased per the invariants they guard: determinism findings are
// real uses of host time and may only be excused as deliberate
// wall-clock measurement via //xemem:wallclock, and snapshotcheck
// findings are per-field coverage gaps excused only by annotating the
// field itself with //xemem:nosnap (for derived, rebuilt, or transient
// state the snapshot deliberately omits) — //xemem:allow is rejected
// for both. Malformed directives (missing " -- ", empty reason, unknown
// analyzer) are themselves reported under the "directive" name and
// cannot be suppressed.

const (
	allowPrefix     = "//xemem:allow"
	wallclockPrefix = "//xemem:wallclock"
	nosnapPrefix    = "//xemem:nosnap"
)

// ParseDirective parses one comment's //xemem: directive. known is the
// analyzer-name vocabulary //xemem:allow accepts. For a well-formed
// directive it returns the analyzer silenced and the reason; for a
// malformed one errMsg is non-empty (the text of the unsuppressible
// finding); for a comment that is no directive at all, every result is
// empty. It never panics, whatever the input: the directive parser sits
// on the trust boundary between source comments and the suppression
// index, so it is fuzzed (FuzzDirective).
func ParseDirective(text string, known map[string]bool) (analyzer, reason, errMsg string) {
	if !strings.HasPrefix(text, "//xemem:") {
		return "", "", ""
	}
	var body string
	switch {
	case strings.HasPrefix(text, wallclockPrefix):
		analyzer = "determinism"
		body = strings.TrimSpace(strings.TrimPrefix(text, wallclockPrefix))
	case strings.HasPrefix(text, nosnapPrefix):
		analyzer = "snapshotcheck"
		body = strings.TrimSpace(strings.TrimPrefix(text, nosnapPrefix))
	case strings.HasPrefix(text, allowPrefix):
		body = strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
		analyzer, body, _ = strings.Cut(body, " ")
		body = strings.TrimSpace(body)
		switch {
		case analyzer == "" || strings.HasPrefix(analyzer, "--"):
			return "", "", "//xemem:allow needs an analyzer name: //xemem:allow <analyzer> -- <reason>"
		case analyzer == "determinism":
			return "", "", "determinism findings may only be excused via //xemem:wallclock -- <reason>"
		case analyzer == "snapshotcheck":
			return "", "", "snapshot exceptions are per-field: annotate the field with //xemem:nosnap -- <reason>"
		case !known[analyzer]:
			return "", "", fmt.Sprintf("//xemem:allow names unknown analyzer %q", analyzer)
		}
	default:
		return "", "", fmt.Sprintf("unknown //xemem: directive %q", firstField(text))
	}
	reason, ok := strings.CutPrefix(body, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		return "", "", "//xemem: directive needs a ' -- <reason>' explaining the exception"
	}
	return analyzer, strings.TrimSpace(reason), ""
}

// supRecord is one applied suppression: analyzer silenced on a
// (root-relative) file line. Serialized into cache entries so
// module-level diagnostics honor cached packages' directives.
type supRecord struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
}

// suppressions indexes which analyzers are silenced on which lines, plus
// the diagnostics produced by malformed directives.
type suppressions struct {
	byLine  map[lineKey]map[string]bool
	records []supRecord
	errors  []Diagnostic
}

type lineKey struct {
	file string
	line int
}

func (s *suppressions) suppressed(d Diagnostic) bool {
	return s.byLine[lineKey{d.Pos.Filename, d.Pos.Line}][d.Analyzer]
}

func (s *suppressions) add(file string, line int, analyzer string) {
	k := lineKey{file, line}
	if s.byLine[k] == nil {
		s.byLine[k] = make(map[string]bool)
	}
	s.byLine[k][analyzer] = true
}

func (s *suppressions) record(file string, line int, analyzer string) {
	s.add(file, line, analyzer)
	s.records = append(s.records, supRecord{File: file, Line: line, Analyzer: analyzer})
}

func (s *suppressions) errorf(pos token.Position, format string, args ...any) {
	s.errors = append(s.errors, Diagnostic{Pos: pos, Analyzer: "directive", Message: fmt.Sprintf(format, args...)})
}

// collectPackageDirectives scans one package's comments for //xemem:
// directives and builds its suppression index.
func collectPackageDirectives(m *Module, pkg *Package, known map[string]bool) *suppressions {
	sup := &suppressions{byLine: make(map[lineKey]map[string]bool)}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				sup.directive(m, c.Pos(), c.Text, known)
			}
		}
	}
	return sup
}

// directive parses one comment, recording a suppression or an error.
func (s *suppressions) directive(m *Module, pos token.Pos, text string, known map[string]bool) {
	if !strings.HasPrefix(text, "//xemem:") {
		return
	}
	p := m.Position(pos)
	analyzer, _, errMsg := ParseDirective(text, known)
	if errMsg != "" {
		s.errorf(p, "%s", errMsg)
		return
	}
	s.record(p.Filename, p.Line, analyzer)
	if wholeLine(m, p) {
		s.record(p.Filename, p.Line+1, analyzer)
	}
}

// wholeLine reports whether the directive at p is the only thing on its
// source line (i.e. a standalone comment, whose suppression applies to
// the line below).
func wholeLine(m *Module, p token.Position) bool {
	line := m.Line(p.Filename, p.Line)
	return strings.HasPrefix(strings.TrimSpace(line), "//")
}

func firstField(text string) string {
	if f := strings.Fields(text); len(f) > 0 {
		return f[0]
	}
	return text
}
