package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// Suppression directives.
//
// Two comment forms silence diagnostics, both requiring a reason:
//
//	//xemem:allow <analyzer> -- <reason>
//	//xemem:wallclock -- <reason>
//
// A directive written at the end of a code line suppresses that line's
// findings; a directive on a line of its own (including the last line of
// a doc comment) suppresses the line below it. The determinism analyzer
// is special-cased per the invariant it guards: its findings are real
// uses of host time and may only be excused as deliberate wall-clock
// measurement via //xemem:wallclock — //xemem:allow determinism is
// rejected. Malformed directives (missing " -- ", empty reason, unknown
// analyzer) are themselves reported under the "directive" name and
// cannot be suppressed.

const (
	allowPrefix     = "//xemem:allow"
	wallclockPrefix = "//xemem:wallclock"
)

// suppressions indexes which analyzers are silenced on which lines, plus
// the diagnostics produced by malformed directives.
type suppressions struct {
	byLine map[lineKey]map[string]bool
	errors []Diagnostic
}

type lineKey struct {
	file string
	line int
}

func (s *suppressions) suppressed(d Diagnostic) bool {
	return s.byLine[lineKey{d.Pos.Filename, d.Pos.Line}][d.Analyzer]
}

func (s *suppressions) add(file string, line int, analyzer string) {
	k := lineKey{file, line}
	if s.byLine[k] == nil {
		s.byLine[k] = make(map[string]bool)
	}
	s.byLine[k][analyzer] = true
}

func (s *suppressions) errorf(pos token.Position, format string, args ...any) {
	s.errors = append(s.errors, Diagnostic{Pos: pos, Analyzer: "directive", Message: fmt.Sprintf(format, args...)})
}

// collectDirectives scans every comment in the module for //xemem:
// directives and builds the suppression index.
func collectDirectives(m *Module, analyzers []*Analyzer) *suppressions {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := &suppressions{byLine: make(map[lineKey]map[string]bool)}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					sup.directive(m, c.Pos(), c.Text, known)
				}
			}
		}
	}
	return sup
}

// directive parses one comment, recording a suppression or an error.
func (s *suppressions) directive(m *Module, pos token.Pos, text string, known map[string]bool) {
	if !strings.HasPrefix(text, "//xemem:") {
		return
	}
	p := m.Fset.Position(pos)
	var analyzer, body string
	switch {
	case strings.HasPrefix(text, wallclockPrefix):
		analyzer = "determinism"
		body = strings.TrimSpace(strings.TrimPrefix(text, wallclockPrefix))
	case strings.HasPrefix(text, allowPrefix):
		body = strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
		analyzer, body, _ = strings.Cut(body, " ")
		body = strings.TrimSpace(body)
		switch {
		case analyzer == "" || strings.HasPrefix(analyzer, "--"):
			s.errorf(p, "//xemem:allow needs an analyzer name: //xemem:allow <analyzer> -- <reason>")
			return
		case analyzer == "determinism":
			s.errorf(p, "determinism findings may only be excused via //xemem:wallclock -- <reason>")
			return
		case !known[analyzer]:
			s.errorf(p, "//xemem:allow names unknown analyzer %q", analyzer)
			return
		}
	default:
		s.errorf(p, "unknown //xemem: directive %q", firstField(text))
		return
	}
	reason, ok := strings.CutPrefix(body, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		s.errorf(p, "//xemem: directive needs a ' -- <reason>' explaining the exception")
		return
	}
	s.add(p.Filename, p.Line, analyzer)
	if wholeLine(m, p) {
		s.add(p.Filename, p.Line+1, analyzer)
	}
}

// wholeLine reports whether the directive at p is the only thing on its
// source line (i.e. a standalone comment, whose suppression applies to
// the line below).
func wholeLine(m *Module, p token.Position) bool {
	line := m.Line(p.Filename, p.Line)
	return strings.HasPrefix(strings.TrimSpace(line), "//")
}

func firstField(text string) string {
	if f := strings.Fields(text); len(f) > 0 {
		return f[0]
	}
	return text
}
