package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. "xemem/internal/sim"
	Dir   string
	Files []*ast.File // non-test files, in filename order

	Types *types.Package
	Info  *types.Info

	// TypeErrors collects soft type-check errors. With the source
	// importer available this stays empty for a healthy tree; when a
	// stdlib import cannot be resolved the checker degrades instead of
	// failing and the errors land here.
	TypeErrors []error
}

// Module is a fully loaded Go module: every non-test package parsed and
// type-checked, plus the raw source lines the directive scanner needs.
type Module struct {
	Root string // filesystem root (directory containing go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // import-path order

	byPath map[string]*Package
	lines  map[string][]string // filename -> source lines (1-based via index+1)
	order  []*Package          // dependency (topological) order

	// summaries is the lazily built interprocedural summary index shared
	// by every analyzer pass over this module.
	summaries *Summaries
}

// Position resolves pos to a token.Position whose filename is relative
// to the module root — the canonical form every diagnostic, directive,
// and cached fact uses, so cache entries are relocatable and output is
// stable across checkouts.
func (m *Module) Position(pos token.Pos) token.Position {
	p := m.Fset.Position(pos)
	if rel, err := filepath.Rel(m.Root, p.Filename); err == nil {
		p.Filename = filepath.ToSlash(rel)
	}
	return p
}

// Lookup returns the module package with the given import path, nil if
// absent.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Line returns the text of line n (1-based) of a loaded file, "" when
// unknown.
func (m *Module) Line(filename string, n int) string {
	lines := m.lines[filename]
	if n < 1 || n > len(lines) {
		return ""
	}
	return lines[n-1]
}

// Load parses and type-checks every non-test package under root, which
// must contain a go.mod naming the module. Stdlib imports are resolved
// from source via go/importer; a stdlib package that cannot be loaded is
// replaced by an empty stub and the resulting type errors are recorded
// rather than fatal, so analysis degrades instead of dying.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		lines:  make(map[string][]string),
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := m.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Pkgs = append(m.Pkgs, pkg)
			m.byPath[pkg.Path] = pkg
		}
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })

	order, err := m.topoOrder()
	if err != nil {
		return nil, err
	}
	m.order = order
	imp := &moduleImporter{m: m, std: importer.ForCompiler(m.Fset, "source", nil)}
	for _, pkg := range order {
		m.check(pkg, imp)
	}
	return m, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if path := strings.TrimSpace(rest); path != "" {
				return strings.Trim(path, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// packageDirs lists every directory under root that may hold a package,
// skipping testdata, vendor, hidden, and underscore-prefixed trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of one directory, returning nil
// when the directory holds none.
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		filename := filepath.Join(dir, name)
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(m.Fset, filename, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", filename, err)
		}
		// Keyed root-relative: directive and diagnostic positions use the
		// relative form throughout.
		if rel, err := filepath.Rel(m.Root, filename); err == nil {
			m.lines[filepath.ToSlash(rel)] = strings.Split(string(src), "\n")
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	path := m.Path
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: path, Dir: dir, Files: files}, nil
}

// topoOrder returns the module's packages in dependency order so each
// package's internal imports are type-checked before it is.
func (m *Module) topoOrder() ([]*Package, error) {
	const (
		white = iota // unvisited
		gray         // on stack
		black        // done
	)
	state := make(map[*Package]int)
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", p.Path)
		}
		state[p] = gray
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if dep := m.byPath[path]; dep != nil {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks one package, recording soft errors instead of
// failing.
func (m *Module) check(pkg *Package, imp types.Importer) {
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even on soft errors; the Error hook above
	// keeps it from aborting at the first one.
	tpkg, _ := conf.Check(pkg.Path, m.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
}

// moduleImporter resolves module-internal imports from the loader's own
// packages (already type-checked, thanks to topo order) and everything
// else through the compiler source importer, degrading to empty stub
// packages when that fails.
type moduleImporter struct {
	m     *Module
	std   types.Importer
	stubs map[string]*types.Package
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg := mi.m.byPath[path]; pkg != nil {
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: import %s before it is checked", path)
		}
		return pkg.Types, nil
	}
	if p, err := mi.std.Import(path); err == nil {
		return p, nil
	}
	if mi.stubs == nil {
		mi.stubs = make(map[string]*types.Package)
	}
	if p, ok := mi.stubs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	mi.stubs[path] = p
	return p, nil
}
