package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The chargecheck analyzer guards the §4 cost model's integrity in two
// directions:
//
//  1. Dead cost constants: every field of sim.Costs must somewhere flow
//     into a charge — an Actor.Charge/ChargeN/Advance/AdvanceN, a
//     Resource acquisition (Acquire/AcquireOp/TryAcquire/Exec), or a
//     sim.CopyTime conversion feeding one. A calibrated constant nothing
//     charges is drift waiting to happen: the model documents a cost the
//     simulation silently omits. Flow is tracked through local
//     assignments, stores, and composite literals — and, via the
//     interprocedural summaries, through helpers: an argument position a
//     callee summary marks sunk is a charge zone at the call site, and a
//     call whose callee returns Costs-derived values charges those
//     fields when the call itself sits in a charge zone. A field that
//     merely *returns* from a helper whose result never reaches a sink
//     is no longer considered charged.
//
//  2. Clock bypasses: inside the engine package, an Actor's virtual
//     clock (the `now` field) may only be mutated by the charge path —
//     Advance/AdvanceN — and the scheduler's handoff points
//     (Unblock/Spawn). Any other write desynchronizes actors from the
//     ready-queue ordering invariant.

// chargeSinks are the call names whose arguments constitute "being
// charged". Matching is by name, deliberately over-approximate: a cost
// that reaches any same-named sink is assumed charged (chargecheck never
// false-positives on plumbing style, at the price of missing exotic
// leaks).
var chargeSinks = map[string]bool{
	"Charge": true, "ChargeN": true,
	"Advance": true, "AdvanceN": true, "AdvanceTo": true, "Sleep": true,
	"Acquire": true, "AcquireOp": true, "TryAcquire": true, "Exec": true,
	"CopyTime": true, "advanceSync": true,
	// The fault-era timeout primitive: interval and deadline both become
	// virtual-time advances on the polling actor.
	"PollDeadline": true,
}

// clockPath are the sim functions allowed to write Actor.now directly:
// the two advance primitives plus the scheduler handoffs that
// re-baseline a woken or newborn actor.
var clockPath = map[string]bool{
	"Advance": true, "AdvanceN": true, "Unblock": true, "Spawn": true, "SpawnAt": true,
	// Mailbox delivery is a wake primitive like Unblock: it re-baselines a
	// blocked receiver's clock to the delivery time. advanceSync is the
	// non-batched advance primitive used by revisable waits.
	"deliver": true, "advanceSync": true,
}

// chargeFacts is chargecheck's per-package contribution to the
// module-level dead-constant verdict.
type chargeFacts struct {
	// Charged lists the Costs field names some flow in this package
	// charges.
	Charged []string `json:"charged,omitempty"`
	// Fields carries the Costs field declarations themselves — emitted
	// only by the engine package, where the struct lives.
	Fields []fieldRef `json:"fields,omitempty"`
}

// fieldRef names a struct field at its (root-relative) declaration
// position.
type fieldRef struct {
	Name string         `json:"name"`
	Pos  token.Position `json:"pos"`
}

func newChargecheck() *Analyzer {
	return &Analyzer{
		Name:    "chargecheck",
		Doc:     "flags sim.Costs fields never charged through Charge/ChargeN/AdvanceN or a resource acquisition (flow tracked through helpers via summaries), and Actor clock writes that bypass the charge path",
		Version: 2,
		Run:     chargecheckRun,
		Finish:  chargecheckFinish,
	}
}

func chargecheckRun(pass *Pass) any {
	sums := pass.Module.Summaries()
	sim := isSimPackage(pass.Module, pass.Pkg)
	charged := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			markChargedFields(sums, pass.Pkg.Info, fd, charged)
			if sim {
				checkClockWrites(pass, fd)
			}
		}
	}

	facts := chargeFacts{Charged: sortedNames(charged)}
	if sim {
		for _, f := range sums.CostsFields() {
			facts.Fields = append(facts.Fields, fieldRef{Name: f.Name(), Pos: pass.Module.Position(f.Pos())})
		}
	}
	if facts.Charged == nil && facts.Fields == nil {
		return nil
	}
	return facts
}

// markChargedFields computes, for one function, the source regions whose
// expressions flow toward a charge (sink arguments — syntactic and
// summary-derived — stores, composite literals, and transitively the
// right-hand sides feeding locals that do), then records every Costs
// field read inside them and every Costs-returning call made inside
// them.
func markChargedFields(sums *Summaries, info *types.Info, fd *ast.FuncDecl, charged map[string]bool) {
	if len(sums.CostsFields()) == 0 {
		return
	}
	zones := sums.sinkZones(info, fd.Body)
	_, storeRHS := collectAssigns(info, fd.Body)
	zones = append(zones, storeRHS...)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if cl, ok := n.(*ast.CompositeLit); ok {
			zones = append(zones, rangeOf(cl))
		}
		return true
	})
	zones, _ = taintFlow(info, fd.Body, zones, nil)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sums.IsCostsField(sel.Obj()) && inAny(zones, n.Pos()) {
				charged[sel.Obj().Name()] = true
			}
		case *ast.CallExpr:
			// A call in a charge zone charges whatever Costs fields its
			// callee's results carry.
			if inAny(zones, n.Pos()) {
				if cs := sums.Of(resolveCallee(info, n)); cs != nil {
					for _, name := range cs.CostsReturns {
						charged[name] = true
					}
				}
			}
		}
		return true
	})
}

// collectObjectsIn gathers the objects of identifiers lying inside zone.
func collectObjectsIn(info *types.Info, root ast.Node, zone posRange, into map[types.Object]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && zone.contains(id.Pos()) {
			if obj := info.Uses[id]; obj != nil {
				into[obj] = true
			}
		}
		return true
	})
}

// checkClockWrites flags direct mutations of an Actor's `now` field
// outside the charge path.
func checkClockWrites(pass *Pass, fd *ast.FuncDecl) {
	if clockPath[fd.Name.Name] {
		return
	}
	info := pass.Pkg.Info
	flag := func(sel *ast.SelectorExpr) {
		if sel.Sel.Name != "now" {
			return
		}
		if t := info.Types[sel.X].Type; t == nil || namedTypeName(t) != "Actor" {
			return
		}
		pass.Reportf(sel.Pos(),
			"%s writes Actor.now directly, bypassing the charge path; use Advance/AdvanceN (or Charge/ChargeN for attributed costs)", funcName(fd))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if sel, ok := l.(*ast.SelectorExpr); ok {
					flag(sel)
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok {
				flag(sel)
			}
		}
		return true
	})
}

// chargecheckFinish unions every package's charged-field set against the
// engine's Costs declaration and reports the constants nothing charges.
func chargecheckFinish(f *FinishPass) {
	charged := make(map[string]bool)
	var fields []fieldRef
	for _, path := range f.Paths() {
		var facts chargeFacts
		if !f.Fact(path, &facts) {
			continue
		}
		for _, name := range facts.Charged {
			charged[name] = true
		}
		fields = append(fields, facts.Fields...)
	}
	for _, field := range fields {
		if charged[field.Name] {
			continue
		}
		f.Reportf(field.Pos,
			"cost constant Costs.%s is never charged: no flow into Charge/ChargeN/Advance*/Acquire*/Exec/CopyTime anywhere in the module"+
				" — wire it into a substrate cost path or document the exception with //xemem:allow chargecheck -- <reason>", field.Name)
	}
}
