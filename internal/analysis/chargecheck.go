package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The chargecheck analyzer guards the §4 cost model's integrity in two
// directions:
//
//  1. Dead cost constants: every field of sim.Costs must somewhere flow
//     into a charge — an Actor.Charge/ChargeN/Advance/AdvanceN, a
//     Resource acquisition (Acquire/AcquireOp/TryAcquire/Exec), or a
//     sim.CopyTime conversion feeding one. A calibrated constant nothing
//     charges is drift waiting to happen: the model documents a cost the
//     simulation silently omits. Flow is tracked conservatively and
//     syntactically per function (through local assignments, returns,
//     stores, and composite literals), so indirect plumbing counts.
//
//  2. Clock bypasses: inside the engine package, an Actor's virtual
//     clock (the `now` field) may only be mutated by the charge path —
//     Advance/AdvanceN — and the scheduler's handoff points
//     (Unblock/Spawn). Any other write desynchronizes actors from the
//     ready-queue ordering invariant.
type chargecheck struct {
	inited  bool
	fields  []*types.Var
	charged map[*types.Var]bool
	fset    *token.FileSet
}

// chargeSinks are the call names whose arguments constitute "being
// charged". Matching is by name, deliberately over-approximate: a cost
// that reaches any same-named sink is assumed charged (chargecheck never
// false-positives on plumbing style, at the price of missing exotic
// leaks).
var chargeSinks = map[string]bool{
	"Charge": true, "ChargeN": true,
	"Advance": true, "AdvanceN": true, "AdvanceTo": true, "Sleep": true,
	"Acquire": true, "AcquireOp": true, "TryAcquire": true, "Exec": true,
	"CopyTime": true, "advanceSync": true,
	// The fault-era timeout primitive: interval and deadline both become
	// virtual-time advances on the polling actor.
	"PollDeadline": true,
}

// clockPath are the sim functions allowed to write Actor.now directly:
// the two advance primitives plus the scheduler handoffs that
// re-baseline a woken or newborn actor.
var clockPath = map[string]bool{
	"Advance": true, "AdvanceN": true, "Unblock": true, "Spawn": true, "SpawnAt": true,
	// Mailbox delivery is a wake primitive like Unblock: it re-baselines a
	// blocked receiver's clock to the delivery time. advanceSync is the
	// non-batched advance primitive used by revisable waits.
	"deliver": true, "advanceSync": true,
}

func newChargecheck() *Analyzer {
	c := &chargecheck{charged: make(map[*types.Var]bool)}
	a := &Analyzer{
		Name: "chargecheck",
		Doc:  "flags sim.Costs fields never charged through Charge/ChargeN/AdvanceN or a resource acquisition, and Actor clock writes that bypass the charge path",
	}
	a.Run = c.run
	a.Finish = c.finish
	return a
}

func (c *chargecheck) run(pass *Pass) {
	c.ensureInit(pass.Module)
	sim := isSimPackage(pass.Module, pass.Pkg)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.markChargedFields(pass.Pkg.Info, fd)
			if sim {
				checkClockWrites(pass, fd)
			}
		}
	}
}

// ensureInit locates sim.Costs in the module under analysis and records
// its fields. Works for the real module and for fixture mini-modules
// alike: the engine package is <module>/internal/sim by convention.
func (c *chargecheck) ensureInit(m *Module) {
	if c.inited {
		return
	}
	c.inited = true
	c.fset = m.Fset
	pkg := m.Lookup(m.Path + "/internal/sim")
	if pkg == nil || pkg.Types == nil {
		return
	}
	obj := pkg.Types.Scope().Lookup("Costs")
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		c.fields = append(c.fields, st.Field(i))
	}
}

// markChargedFields computes, for one function, the source regions whose
// expressions flow toward a charge (sink arguments, returns, stores,
// composite literals, and — transitively — the right-hand sides feeding
// locals that do), then marks every Costs field read inside them.
func (c *chargecheck) markChargedFields(info *types.Info, fd *ast.FuncDecl) {
	if len(c.fields) == 0 {
		return
	}
	fieldSet := make(map[types.Object]bool, len(c.fields))
	for _, f := range c.fields {
		fieldSet[f] = true
	}

	var zones []posRange
	type assignment struct {
		lhs map[types.Object]bool
		rhs []ast.Expr
	}
	var assigns []assignment

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if chargeSinks[calleeName(n)] {
				for _, arg := range n.Args {
					zones = append(zones, rangeOf(arg))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				zones = append(zones, rangeOf(r))
			}
		case *ast.CompositeLit:
			zones = append(zones, rangeOf(n))
		case *ast.AssignStmt:
			a := assignment{lhs: make(map[types.Object]bool)}
			storing := false
			for _, l := range n.Lhs {
				switch l := l.(type) {
				case *ast.Ident:
					if obj := info.Defs[l]; obj != nil {
						a.lhs[obj] = true
					} else if obj := info.Uses[l]; obj != nil {
						a.lhs[obj] = true
					}
				default:
					storing = true // selector/index store: escapes the function's locals
				}
			}
			a.rhs = n.Rhs
			assigns = append(assigns, a)
			if storing {
				for _, r := range n.Rhs {
					zones = append(zones, rangeOf(r))
				}
			}
		case *ast.ValueSpec:
			a := assignment{lhs: make(map[types.Object]bool)}
			for _, name := range n.Names {
				if obj := info.Defs[name]; obj != nil {
					a.lhs[obj] = true
				}
			}
			a.rhs = n.Values
			assigns = append(assigns, a)
		}
		return true
	})

	// Seed the taint set with every object read inside a zone, then
	// propagate backward through local assignments until nothing changes:
	// if a tainted local is assigned from an expression, whatever feeds
	// that expression is tainted too.
	tainted := make(map[types.Object]bool)
	for _, z := range zones {
		collectObjectsIn(info, fd.Body, z, tainted)
	}
	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			hit := false
			for obj := range a.lhs {
				if tainted[obj] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			for _, r := range a.rhs {
				before := len(tainted)
				identObjects(info, r, tainted)
				if len(tainted) != before {
					changed = true
				}
			}
		}
	}
	for _, a := range assigns {
		for obj := range a.lhs {
			if tainted[obj] {
				for _, r := range a.rhs {
					zones = append(zones, rangeOf(r))
				}
				break
			}
		}
	}

	// Finally: a Costs field selected inside any charged zone is charged.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || !fieldSet[s.Obj()] {
			return true
		}
		if inAny(zones, sel.Pos()) {
			c.charged[s.Obj().(*types.Var)] = true
		}
		return true
	})
}

// collectObjectsIn gathers the objects of identifiers lying inside zone.
func collectObjectsIn(info *types.Info, root ast.Node, zone posRange, into map[types.Object]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && zone.contains(id.Pos()) {
			if obj := info.Uses[id]; obj != nil {
				into[obj] = true
			}
		}
		return true
	})
}

// checkClockWrites flags direct mutations of an Actor's `now` field
// outside the charge path.
func checkClockWrites(pass *Pass, fd *ast.FuncDecl) {
	if clockPath[fd.Name.Name] {
		return
	}
	info := pass.Pkg.Info
	flag := func(sel *ast.SelectorExpr) {
		if sel.Sel.Name != "now" {
			return
		}
		if t := info.Types[sel.X].Type; t == nil || namedTypeName(t) != "Actor" {
			return
		}
		pass.Reportf(sel.Pos(),
			"%s writes Actor.now directly, bypassing the charge path; use Advance/AdvanceN (or Charge/ChargeN for attributed costs)", funcName(fd))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if sel, ok := l.(*ast.SelectorExpr); ok {
					flag(sel)
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok {
				flag(sel)
			}
		}
		return true
	})
}

// finish reports the cost constants nothing in the module charges.
func (c *chargecheck) finish(m *Module, report func(Diagnostic)) {
	for _, f := range c.fields {
		if c.charged[f] {
			continue
		}
		report(Diagnostic{
			Pos:      m.Fset.Position(f.Pos()),
			Analyzer: "chargecheck",
			Message: "cost constant Costs." + f.Name() + " is never charged: no flow into Charge/ChargeN/Advance*/Acquire*/Exec/CopyTime anywhere in the module" +
				" — wire it into a substrate cost path or document the exception with //xemem:allow chargecheck -- <reason>",
		})
	}
}
