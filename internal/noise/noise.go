// Package noise implements the §5.5 operating-system-noise analysis: the
// hardware noise sources a Kitten enclave experiences even in its
// feature-limited configuration, and the Selfish Detour measurement that
// reconstructs the enclave's noise profile — including the detours caused
// by XEMEM attachment serving — from the core's occupancy log.
package noise

import (
	"sort"

	"xemem/internal/sim"
)

// Source is one periodic noise process (timer-adjacent hardware events,
// SMIs).
type Source struct {
	Name   string
	Period sim.Time // mean inter-arrival
	Jitter float64  // uniform fraction applied to the period
	Dur    sim.Time // mean event duration
	DurJit float64  // uniform fraction applied to the duration
}

// DefaultKittenSources models the two baseline bands Fig. 7 shows on an
// otherwise idle Kitten core: frequent hardware noise around 12 µs, and
// rarer periodic events (SMIs) in the 100–200 µs range.
func DefaultKittenSources() []Source {
	return []Source{
		{Name: "hw", Period: 2500 * sim.Microsecond, Jitter: 0.3, Dur: 12 * sim.Microsecond, DurJit: 0.15},
		{Name: "smi", Period: 950 * sim.Millisecond, Jitter: 0.2, Dur: 150 * sim.Microsecond, DurJit: 0.3},
	}
}

// Inject spawns one daemon actor per source that occupies the core for
// each event. Events appear in the core's occupancy log when recording.
func Inject(w *sim.World, core *sim.Core, sources []Source) {
	for _, s := range sources {
		src := s
		w.Spawn("noise/"+src.Name, func(a *sim.Actor) {
			a.SetDaemon()
			rng := a.RNG()
			for {
				a.Advance(rng.Jitter(src.Period, src.Jitter))
				core.Exec(a, rng.Jitter(src.Dur, src.DurJit), src.Name)
			}
		})
	}
}

// Detour is one contiguous interval during which the core was executing
// something other than the application — what the Selfish Detour
// benchmark observes as a gap between timestamp reads.
type Detour struct {
	At   sim.Time
	Dur  sim.Time
	Tags []string // the kinds of work that composed the detour
}

// Tagged reports whether the detour contains work with the given tag.
func (d Detour) Tagged(tag string) bool {
	for _, t := range d.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// mergeGap: spans closer than this compose one detour (the application
// cannot run between them long enough to take a timestamp).
const mergeGap = 2 * sim.Microsecond

// Detours reconstructs the detour profile from a core occupancy log,
// ignoring spans tagged appTag (the application's own work). Adjacent and
// back-to-back foreign spans merge into a single detour, exactly as a
// selfish-detour loop would observe them.
func Detours(spans []sim.Span, appTag string) []Detour {
	foreign := make([]sim.Span, 0, len(spans))
	for _, s := range spans {
		if s.Tag != appTag && s.Dur > 0 {
			foreign = append(foreign, s)
		}
	}
	sort.Slice(foreign, func(i, j int) bool { return foreign[i].Start < foreign[j].Start })
	var out []Detour
	for _, s := range foreign {
		if n := len(out); n > 0 && s.Start-out[n-1].At-out[n-1].Dur <= mergeGap {
			d := &out[n-1]
			d.Dur = s.End() - d.At
			if len(d.Tags) == 0 || d.Tags[len(d.Tags)-1] != s.Tag {
				d.Tags = append(d.Tags, s.Tag)
			}
			continue
		}
		out = append(out, Detour{At: s.Start, Dur: s.Dur, Tags: []string{s.Tag}})
	}
	return out
}

// Split partitions detours into those containing the tag and the rest.
func Split(ds []Detour, tag string) (with, without []Detour) {
	for _, d := range ds {
		if d.Tagged(tag) {
			with = append(with, d)
		} else {
			without = append(without, d)
		}
	}
	return with, without
}
