package noise

import (
	"testing"

	"xemem/internal/sim"
)

func TestDetoursMergeAdjacent(t *testing.T) {
	const us = sim.Microsecond
	spans := []sim.Span{
		{Start: 0, Dur: 100 * us, Tag: "app"},
		{Start: 100 * us, Dur: 10 * us, Tag: "xemem-msg"},
		{Start: 110 * us, Dur: 50 * us, Tag: "xemem-serve"}, // back-to-back: one detour
		{Start: 500 * us, Dur: 12 * us, Tag: "hw"},          // separate
	}
	ds := Detours(spans, "app")
	if len(ds) != 2 {
		t.Fatalf("detours = %d, want 2 (%v)", len(ds), ds)
	}
	if ds[0].Dur != 60*us {
		t.Fatalf("merged detour dur = %v, want 60us", ds[0].Dur)
	}
	if !ds[0].Tagged("xemem-serve") || !ds[0].Tagged("xemem-msg") {
		t.Fatalf("merged tags = %v", ds[0].Tags)
	}
	if ds[1].Tagged("xemem-serve") {
		t.Fatal("hw detour mis-tagged")
	}
}

func TestDetoursIgnoreAppAndEmpty(t *testing.T) {
	spans := []sim.Span{
		{Start: 0, Dur: 100, Tag: "app"},
		{Start: 200, Dur: 0, Tag: "hw"},
	}
	if ds := Detours(spans, "app"); len(ds) != 0 {
		t.Fatalf("detours = %v, want none", ds)
	}
}

func TestSplit(t *testing.T) {
	ds := []Detour{
		{Dur: 1, Tags: []string{"hw"}},
		{Dur: 2, Tags: []string{"xemem-serve"}},
		{Dur: 3, Tags: []string{"smi"}},
	}
	with, without := Split(ds, "xemem-serve")
	if len(with) != 1 || len(without) != 2 {
		t.Fatalf("split = %d/%d", len(with), len(without))
	}
}

func TestInjectProducesBaselineProfile(t *testing.T) {
	w := sim.NewWorld(99)
	core := sim.NewCore("kitten")
	core.StartRecording()
	Inject(w, core, DefaultKittenSources())
	w.Spawn("clock", func(a *sim.Actor) { a.Advance(10 * sim.Second) })
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	ds := Detours(core.StopRecording(), "app")
	var hw, smi int
	for _, d := range ds {
		switch {
		case d.Tagged("smi"):
			smi++
			if d.Dur < 80*sim.Microsecond || d.Dur > 250*sim.Microsecond {
				t.Fatalf("smi detour %v outside 80-250us", d.Dur)
			}
		case d.Tagged("hw"):
			hw++
			if d.Dur < 8*sim.Microsecond || d.Dur > 30*sim.Microsecond {
				t.Fatalf("hw detour %v outside 8-30us", d.Dur)
			}
		}
	}
	// ~4000 hw events and ~10 SMIs over 10 s.
	if hw < 3000 || hw > 5000 {
		t.Fatalf("hw detours = %d, want ~4000", hw)
	}
	if smi < 5 || smi > 20 {
		t.Fatalf("smi detours = %d, want ~10", smi)
	}
}

func TestInjectDeterministic(t *testing.T) {
	run := func() int {
		w := sim.NewWorld(5)
		core := sim.NewCore("c")
		core.StartRecording()
		Inject(w, core, DefaultKittenSources())
		w.Spawn("clock", func(a *sim.Actor) { a.Advance(2 * sim.Second) })
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return len(core.StopRecording())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("noise not deterministic: %d vs %d spans", a, b)
	}
}
