package fault_test

import (
	"errors"
	"testing"

	"xemem"
	"xemem/internal/core"
	"xemem/internal/fault"
	"xemem/internal/pagetable"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
	"xemem/internal/xpmem"
)

// The fault matrix: for each phase of the XPMEM protocol an enclave
// crash can interrupt, and for each victim enclave type, the API must
// fail with the documented typed error — deterministically, so the
// whole faulted run digests identically on rerun.
//
// crashAt is far past setup (the export/get/attach prologue completes
// within tens of microseconds of virtual time), so which operations see
// the crash is fixed by construction, not by racing the scheduler.
const (
	crashAt    = 2 * sim.Millisecond
	afterCrash = crashAt + 100*sim.Microsecond
	segBytes   = 16 << 12
)

// victim is one bootable enclave type under test.
type victim struct {
	sess *xpmem.Session
	base pagetable.VA
	mod  *core.Module
}

// bootVictim boots an enclave of the given kind with an exporter
// process holding a writable region at base.
func bootVictim(t *testing.T, node *xemem.Node, kind string) victim {
	t.Helper()
	switch kind {
	case "cokernel":
		ck, err := node.BootCoKernel("lwk", 256<<20)
		if err != nil {
			t.Fatal(err)
		}
		sess, heap, err := node.KittenProcess(ck, "exp", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return victim{sess: sess, base: heap.Base, mod: ck.Module}
	case "vm":
		vm, err := node.BootVM("vm0", 128<<20, 1)
		if err != nil {
			t.Fatal(err)
		}
		sess, p := node.GuestProcess(vm, "exp", 0)
		region, err := xemem.AllocLinux(vm.Guest, p, "buf", segBytes, true)
		if err != nil {
			t.Fatal(err)
		}
		return victim{sess: sess, base: region.Base, mod: vm.Module}
	default:
		t.Fatalf("unknown victim kind %q", kind)
		return victim{}
	}
}

// matrixCase names one protocol phase the crash interrupts and the
// typed error the survivor (or the victim's own process) must see.
type matrixCase struct {
	name string
	// run performs the pre-crash prologue and the post-crash probe; the
	// actor is already past afterCrash when probe runs.
	run func(t *testing.T, a *sim.Actor, v victim, att *xpmem.Session, segid xpmem.Segid)
}

var matrixCases = []matrixCase{
	{
		// A process inside the crashed enclave: every entry point fails
		// fast with ErrEnclaveDown instead of hanging on a dead kernel.
		name: "make",
		run: func(t *testing.T, a *sim.Actor, v victim, att *xpmem.Session, segid xpmem.Segid) {
			a.AdvanceTo(afterCrash)
			if _, err := v.sess.Make(a, v.base, segBytes, xpmem.PermRead, ""); !errors.Is(err, xpmem.ErrEnclaveDown) {
				t.Errorf("Make on crashed enclave = %v, want ErrEnclaveDown", err)
			}
		},
	},
	{
		// Get of a segment whose owner died: the name server retains the
		// registration but marks the enclave down, so the failure is
		// attributable — enclave-down, not no-such-segment.
		name: "get",
		run: func(t *testing.T, a *sim.Actor, v victim, att *xpmem.Session, segid xpmem.Segid) {
			a.AdvanceTo(afterCrash)
			if _, err := att.GetWith(a, segid, xpmem.GetOpts{Timeout: sim.Millisecond}); !errors.Is(err, xpmem.ErrEnclaveDown) {
				t.Errorf("Get from dead owner = %v, want ErrEnclaveDown", err)
			}
		},
	},
	{
		// Attach with a permit granted before the crash: the apid is
		// stale, the owner cannot serve the frame list.
		name: "attach",
		run: func(t *testing.T, a *sim.Actor, v victim, att *xpmem.Session, segid xpmem.Segid) {
			apid, err := att.GetWith(a, segid, xpmem.GetOpts{Timeout: sim.Millisecond})
			if err != nil {
				t.Errorf("pre-crash Get: %v", err)
				return
			}
			a.AdvanceTo(afterCrash)
			if _, err := att.AttachWith(a, segid, apid, xpmem.AttachOpts{Bytes: segBytes, Timeout: sim.Millisecond}); !errors.Is(err, xpmem.ErrEnclaveDown) {
				t.Errorf("Attach with stale apid = %v, want ErrEnclaveDown", err)
			}
			if err := att.Release(a, segid, apid); err != nil {
				t.Errorf("Release of stale apid after owner crash = %v, want nil (local retire)", err)
			}
		},
	},
	{
		// Access through an attachment whose owner died: the mapping is
		// poisoned; reads and writes fail typed instead of returning
		// bytes from frames the dead partition no longer guards.
		name: "access",
		run: func(t *testing.T, a *sim.Actor, v victim, att *xpmem.Session, segid xpmem.Segid) {
			apid, va := attachPreCrash(t, a, att, segid)
			a.AdvanceTo(afterCrash)
			buf := make([]byte, 8)
			if _, err := att.Read(va, buf); !errors.Is(err, xpmem.ErrEnclaveDown) {
				t.Errorf("Read through poisoned attachment = %v, want ErrEnclaveDown", err)
			}
			if _, err := att.Write(va, buf); !errors.Is(err, xpmem.ErrEnclaveDown) {
				t.Errorf("Write through poisoned attachment = %v, want ErrEnclaveDown", err)
			}
			if err := att.Detach(a, va); err != nil {
				t.Errorf("Detach of poisoned attachment = %v, want nil", err)
			}
			if err := att.Release(a, segid, apid); err != nil {
				t.Errorf("Release after owner crash = %v, want nil", err)
			}
		},
	},
	{
		// Detach after the owner died unmaps locally (nil) without
		// notifying the dead owner; a second detach of the same address
		// is the usual typed ErrNotAttached.
		name: "detach",
		run: func(t *testing.T, a *sim.Actor, v victim, att *xpmem.Session, segid xpmem.Segid) {
			apid, va := attachPreCrash(t, a, att, segid)
			a.AdvanceTo(afterCrash)
			if err := att.Detach(a, va); err != nil {
				t.Errorf("first Detach after crash = %v, want nil", err)
			}
			if err := att.Detach(a, va); !errors.Is(err, xpmem.ErrNotAttached) {
				t.Errorf("second Detach = %v, want ErrNotAttached", err)
			}
			if err := att.Release(a, segid, apid); err != nil {
				t.Errorf("Release after owner crash = %v, want nil", err)
			}
		},
	},
}

// attachPreCrash performs the get+attach prologue before the crash
// fires.
func attachPreCrash(t *testing.T, a *sim.Actor, att *xpmem.Session, segid xpmem.Segid) (xpmem.Apid, pagetable.VA) {
	t.Helper()
	apid, err := att.GetWith(a, segid, xpmem.GetOpts{Timeout: sim.Millisecond})
	if err != nil {
		t.Fatalf("pre-crash Get: %v", err)
	}
	va, err := att.AttachWith(a, segid, apid, xpmem.AttachOpts{Bytes: segBytes, Timeout: sim.Millisecond})
	if err != nil {
		t.Fatalf("pre-crash Attach: %v", err)
	}
	return apid, va
}

// runMatrixCell executes one (victim kind, protocol phase) cell and
// returns the run's digest.
func runMatrixCell(t *testing.T, kind string, mc matrixCase) trace.Digest {
	t.Helper()
	node := xemem.NewNode(xemem.NodeConfig{Seed: 1234, MemBytes: 2 << 30})
	tr := trace.NewTracer("matrix-" + kind + "-" + mc.name)
	tr.SetKeepEvents(false)
	node.World().SetObserver(tr)

	v := bootVictim(t, node, kind)
	inj := fault.New(node.World(), fault.Plan{
		Crashes: []fault.Crash{{At: crashAt, Module: v.mod.Name()}},
	})
	inj.Register(node.LinuxModule(), v.mod)
	inj.Arm()

	att, _ := node.LinuxProcess("att", 1)
	node.Spawn("exp", func(a *sim.Actor) {
		if _, err := v.sess.Make(a, v.base, segBytes, xpmem.PermRead, "matrix-data"); err != nil {
			t.Errorf("setup Make: %v", err)
		}
	})
	node.Spawn("probe", func(a *sim.Actor) {
		var segid xpmem.Segid
		if !a.PollDeadline(10*sim.Microsecond, a.Now()+crashAt/2, func() bool {
			s, err := att.Lookup(a, "matrix-data")
			if err != nil {
				return false
			}
			segid = s
			return true
		}) {
			t.Error("setup Lookup never resolved before the crash")
			return
		}
		mc.run(t, a, v, att, segid)
	})
	if err := node.Run(); err != nil {
		t.Fatal(err)
	}
	if inj.Stats().Crashes != 1 {
		t.Fatalf("crash schedule fired %d times, want 1", inj.Stats().Crashes)
	}
	if !v.mod.Crashed() {
		t.Fatal("victim module not marked crashed")
	}
	return tr.Digest()
}

// TestFaultMatrix runs every (enclave type × interrupted phase) cell,
// asserting the typed error inside the cell and digest stability across
// an immediate rerun — same seed, same plan, bit-identical trace even
// through a mid-protocol enclave death.
func TestFaultMatrix(t *testing.T) {
	for _, kind := range []string{"cokernel", "vm"} {
		for _, mc := range matrixCases {
			t.Run(kind+"/"+mc.name, func(t *testing.T) {
				first := runMatrixCell(t, kind, mc)
				second := runMatrixCell(t, kind, mc)
				if first.SHA256 != second.SHA256 {
					t.Fatalf("faulted run not reproducible:\n  %+v\n  %+v", first, second)
				}
			})
		}
	}
}

// TestCrashSurvivorsKeepWorking: a crash must poison only state
// touching the dead enclave — unrelated local sharing on the survivor
// continues unharmed afterwards.
func TestCrashSurvivorsKeepWorking(t *testing.T) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: 9, MemBytes: 2 << 30})
	v := bootVictim(t, node, "cokernel")
	inj := fault.New(node.World(), fault.Plan{
		Crashes: []fault.Crash{{At: crashAt, Module: v.mod.Name()}},
	})
	inj.Register(node.LinuxModule(), v.mod)
	inj.Arm()

	maker, makerP := node.LinuxProcess("maker", 1)
	taker, _ := node.LinuxProcess("taker", 2)
	region, err := xemem.AllocLinux(node.Linux(), makerP, "local", segBytes, true)
	if err != nil {
		t.Fatal(err)
	}
	node.Spawn("local-pair", func(a *sim.Actor) {
		a.AdvanceTo(afterCrash)
		if _, err := maker.Write(region.Base, []byte("still alive")); err != nil {
			t.Error(err)
			return
		}
		segid, err := maker.Make(a, region.Base, segBytes, xpmem.PermRead, "post-crash")
		if err != nil {
			t.Errorf("Make on survivor after crash: %v", err)
			return
		}
		apid, err := taker.Get(a, segid, xpmem.PermRead)
		if err != nil {
			t.Errorf("Get on survivor after crash: %v", err)
			return
		}
		va, err := taker.Attach(a, segid, apid, 0, segBytes, xpmem.PermRead)
		if err != nil {
			t.Errorf("Attach on survivor after crash: %v", err)
			return
		}
		buf := make([]byte, len("still alive"))
		if _, err := taker.Read(va, buf); err != nil || string(buf) != "still alive" {
			t.Errorf("Read on survivor after crash: %q, %v", buf, err)
			return
		}
		if err := taker.Detach(a, va); err != nil {
			t.Error(err)
		}
		if err := taker.Release(a, segid, apid); err != nil {
			t.Error(err)
		}
	})
	if err := node.Run(); err != nil {
		t.Fatal(err)
	}
}
