package fault_test

import (
	"errors"
	"fmt"
	"testing"

	"xemem/internal/cluster"
	"xemem/internal/core"
	"xemem/internal/fault"
	"xemem/internal/nameserver"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
	"xemem/internal/xpmem"
)

// Cluster cells of the fault matrix: shard-replica outages and stale
// lease-cache entries, the two failure shapes the sharded name service
// adds on top of the single-node matrix. Cluster setup (bootstrap over
// the fabric plus serial queue-pair charges) takes longer than a
// single-node boot, so these cells crash later.
const (
	clusterCrashAt = 3 * sim.Millisecond
	clusterAfter   = clusterCrashAt + 100*sim.Microsecond
	clusterSeg     = 16 << 12
)

// nameForShard returns a published name whose home shard is k of s.
func nameForShard(t *testing.T, k, s int) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("seg-%d", i)
		if nameserver.ShardOfName(name, s) == k {
			return name
		}
	}
	t.Fatalf("no candidate name homes to shard %d of %d", k, s)
	return ""
}

// TestShardOutageFailsOver: the primary replica of a shard crashes; a
// consumer resolving a name homed there must fail over to the backup
// replica and succeed — and the run must digest identically on rerun.
func TestShardOutageFailsOver(t *testing.T) {
	// Shard 1's primary lives on node 2 (placement: shard k replica r on
	// node k*R+r), so crashing it leaves node 0's root and node 3's
	// backup intact.
	name := nameForShard(t, 1, 2)
	run := func() trace.Digest {
		w := sim.NewWorld(21)
		tr := trace.NewTracer("cluster-matrix-failover")
		tr.SetKeepEvents(false)
		w.SetObserver(tr)
		cl, err := cluster.NewInWorld(w, cluster.Config{Nodes: 4, Shards: 2, CoKernels: true})
		if err != nil {
			t.Fatal(err)
		}
		victim := cl.Nodes[2].X.LinuxModule()
		inj := fault.New(w, fault.Plan{Crashes: []fault.Crash{{At: clusterCrashAt, Module: victim.Name()}}})
		inj.Register(cl.Modules()...)
		inj.Arm()

		prod, heap, err := cl.Nodes[1].X.KittenProcess(cl.Nodes[1].CK, "prod", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		cons, _ := cl.Nodes[0].X.LinuxProcess("cons", 1)
		w.Spawn("prod", func(a *sim.Actor) {
			cl.WaitReady(a)
			if _, err := prod.Write(heap.Base, []byte("failover")); err != nil {
				t.Error(err)
				return
			}
			if _, err := prod.Make(a, heap.Base, clusterSeg, xpmem.PermRead, name); err != nil {
				t.Error(err)
			}
		})
		w.Spawn("cons", func(a *sim.Actor) {
			cl.WaitReady(a)
			// Pre-crash: the lookup resolves at the primary.
			if !a.PollDeadline(20*sim.Microsecond, a.Now()+sim.Millisecond, func() bool {
				_, err := cons.Lookup(a, name)
				return err == nil
			}) {
				t.Error("pre-crash lookup never resolved")
				return
			}
			a.AdvanceTo(clusterAfter)
			// Post-crash: the primary is dead; the replica list must carry
			// the lookup to the backup, typed success not typed failure.
			segid, err := cons.Lookup(a, name)
			if err != nil {
				t.Errorf("post-crash lookup = %v, want failover success", err)
				return
			}
			apid, err := cons.GetWith(a, segid, xpmem.GetOpts{Perm: xpmem.PermRead, Timeout: sim.Millisecond})
			if err != nil {
				t.Errorf("post-crash get = %v, want success (owner alive)", err)
				return
			}
			if err := cons.Release(a, segid, apid); err != nil {
				t.Error(err)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !victim.Crashed() {
			t.Fatal("victim replica not marked crashed")
		}
		if cl.Nodes[0].X.LinuxModule().ShardStats.ShardFailovers == 0 {
			t.Fatal("consumer never advanced along the replica list")
		}
		return tr.Digest()
	}
	if first, second := run(), run(); first.SHA256 != second.SHA256 {
		t.Fatalf("faulted run not reproducible:\n  %+v\n  %+v", first, second)
	}
}

// TestShardOutageExhaustsReplicas: with a replication factor of one, the
// home shard's only replica crashing leaves the name unresolvable — the
// failure must surface as typed ErrEnclaveDown, not a hang or a
// misleading no-such-segment.
func TestShardOutageExhaustsReplicas(t *testing.T) {
	name := nameForShard(t, 1, 2)
	run := func() trace.Digest {
		w := sim.NewWorld(22)
		tr := trace.NewTracer("cluster-matrix-outage")
		tr.SetKeepEvents(false)
		w.SetObserver(tr)
		cl, err := cluster.NewInWorld(w, cluster.Config{Nodes: 2, Shards: 2, Replicas: 1, CoKernels: true})
		if err != nil {
			t.Fatal(err)
		}
		victim := cl.Nodes[1].X.LinuxModule()
		inj := fault.New(w, fault.Plan{Crashes: []fault.Crash{{At: clusterCrashAt, Module: victim.Name()}}})
		inj.Register(cl.Modules()...)
		inj.Arm()

		prod, heap, err := cl.Nodes[0].X.KittenProcess(cl.Nodes[0].CK, "prod", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		cons, _ := cl.Nodes[0].X.LinuxProcess("cons", 1)
		w.Spawn("prod", func(a *sim.Actor) {
			cl.WaitReady(a)
			if _, err := prod.Make(a, heap.Base, clusterSeg, xpmem.PermRead, name); err != nil {
				t.Error(err)
			}
		})
		w.Spawn("cons", func(a *sim.Actor) {
			cl.WaitReady(a)
			if !a.PollDeadline(20*sim.Microsecond, a.Now()+sim.Millisecond, func() bool {
				_, err := cons.Lookup(a, name)
				return err == nil
			}) {
				t.Error("pre-crash lookup never resolved")
				return
			}
			a.AdvanceTo(clusterAfter)
			if _, err := cons.Lookup(a, name); !errors.Is(err, xpmem.ErrEnclaveDown) {
				t.Errorf("lookup with every replica dead = %v, want ErrEnclaveDown", err)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return tr.Digest()
	}
	if first, second := run(), run(); first.SHA256 != second.SHA256 {
		t.Fatalf("faulted run not reproducible:\n  %+v\n  %+v", first, second)
	}
}

// TestStaleLeaseSurfacesTimeout: a consumer holding a valid lease when
// the segment's owner dies — and, unlike the fanout path, never told
// about the death (only the victim is registered with the injector) —
// must hit the full stale-lease sequence: lease hit, request into the
// void, lease dropped as stale, re-resolution at the shard (which also
// still believes the owner alive), and a fresh request that times out
// for real. The surfaced error is attributable ErrTimeout.
func TestStaleLeaseSurfacesTimeout(t *testing.T) {
	run := func() trace.Digest {
		w := sim.NewWorld(23)
		tr := trace.NewTracer("cluster-matrix-stale-lease")
		tr.SetKeepEvents(false)
		w.SetObserver(tr)
		cl, err := cluster.NewInWorld(w, cluster.Config{
			Nodes: 4, Shards: 2, CoKernels: true,
			// A TTL outlasting the whole run: the lease goes stale through
			// owner death, never through expiry.
			LeaseTTL: sim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		victim := cl.Nodes[1].CK.Module
		inj := fault.New(w, fault.Plan{Crashes: []fault.Crash{{At: clusterCrashAt, Module: victim.Name()}}})
		inj.Register(victim) // survivors learn nothing: leases dangle
		inj.Arm()

		prod, heap, err := cl.Nodes[1].X.KittenProcess(cl.Nodes[1].CK, "prod", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		cons, _ := cl.Nodes[0].X.LinuxProcess("cons", 1)
		consMod := cl.Nodes[0].X.LinuxModule()
		w.Spawn("prod", func(a *sim.Actor) {
			cl.WaitReady(a)
			if _, err := prod.Make(a, heap.Base, clusterSeg, xpmem.PermRead, "stale-lease"); err != nil {
				t.Error(err)
			}
		})
		w.Spawn("cons", func(a *sim.Actor) {
			cl.WaitReady(a)
			var segid xpmem.Segid
			if !a.PollDeadline(20*sim.Microsecond, a.Now()+sim.Millisecond, func() bool {
				s, err := cons.Lookup(a, "stale-lease")
				if err != nil {
					return false
				}
				segid = s
				return true
			}) {
				t.Error("pre-crash lookup never resolved")
				return
			}
			// Populate the lease cache with the owner while it lives.
			apid, err := cons.GetWith(a, segid, xpmem.GetOpts{Perm: xpmem.PermRead, Timeout: sim.Millisecond})
			if err != nil {
				t.Errorf("pre-crash get = %v", err)
				return
			}
			if err := cons.Release(a, segid, apid); err != nil {
				t.Error(err)
				return
			}
			stale := consMod.ShardStats.LeaseStale
			a.AdvanceTo(clusterAfter)
			if _, err := cons.GetWith(a, segid, xpmem.GetOpts{Perm: xpmem.PermRead, Timeout: 200 * sim.Microsecond}); !errors.Is(err, core.ErrTimeout) {
				t.Errorf("get through dangling lease = %v, want ErrTimeout", err)
			}
			if consMod.ShardStats.LeaseStale != stale+1 {
				t.Errorf("stale-lease repair did not fire: LeaseStale %d -> %d", stale, consMod.ShardStats.LeaseStale)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return tr.Digest()
	}
	if first, second := run(), run(); first.SHA256 != second.SHA256 {
		t.Fatalf("faulted run not reproducible:\n  %+v\n  %+v", first, second)
	}
}
