package fault_test

import (
	"errors"
	"fmt"
	"testing"

	"xemem"
	"xemem/internal/fault"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
	"xemem/internal/xpmem"
)

// scenarioResult captures everything observable about one faulted run:
// the trace digest, the injector's own accounting, and the outcome of
// every API call the workload made (success or the exact error text).
type scenarioResult struct {
	digest   trace.Digest
	stats    fault.Stats
	faults   []trace.FaultStat
	outcomes []string
}

// runScenario boots a node (Linux + one co-kernel), installs an
// injector for plan, and drives a fixed producer/consumer workload of
// `rounds` lookup→get→attach→read→detach→release cycles from the Linux
// side against a co-kernel export. Every error is recorded, never
// fatal: under lossy plans some operations are expected to exhaust
// their retry budget, and the test's claim is that WHICH ones do is a
// pure function of (seed, plan).
func runScenario(t *testing.T, seed uint64, plan fault.Plan, rounds int) scenarioResult {
	t.Helper()
	node := xemem.NewNode(xemem.NodeConfig{Seed: seed, MemBytes: 2 << 30})
	tr := trace.NewTracer(fmt.Sprintf("fault-scenario-%d", seed))
	tr.SetKeepEvents(false)
	node.World().SetObserver(tr)

	inj := fault.New(node.World(), plan)
	ck, err := node.BootCoKernel("lwk", 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	inj.Register(node.LinuxModule(), ck.Module)
	inj.Arm()

	exp, heap, err := node.KittenProcess(ck, "producer", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	res := scenarioResult{}
	note := func(op string, err error) {
		if err != nil {
			res.outcomes = append(res.outcomes, op+": "+err.Error())
		} else {
			res.outcomes = append(res.outcomes, op+": ok")
		}
	}

	node.Spawn("producer", func(a *sim.Actor) {
		if _, err := exp.Write(heap.Base, []byte("fault payload")); err != nil {
			t.Error(err)
			return
		}
		_, err := exp.Make(a, heap.Base, 16<<12, xpmem.PermRead, "fault-data")
		note("make", err)
	})
	att, _ := node.LinuxProcess("consumer", 1)
	node.Spawn("consumer", func(a *sim.Actor) {
		var segid xpmem.Segid
		if !a.PollDeadline(20*sim.Microsecond, a.Now()+50*sim.Millisecond, func() bool {
			s, err := att.Lookup(a, "fault-data")
			if err != nil {
				return false
			}
			segid = s
			return true
		}) {
			res.outcomes = append(res.outcomes, "lookup: never resolved")
			return
		}
		for i := 0; i < rounds; i++ {
			apid, err := att.GetWith(a, segid, xpmem.GetOpts{Perm: xpmem.PermRead, Timeout: 200 * sim.Microsecond})
			note("get", err)
			if err != nil {
				continue
			}
			va, err := att.AttachWith(a, segid, apid, xpmem.AttachOpts{Bytes: 16 << 12, Perm: xpmem.PermRead, Timeout: 500 * sim.Microsecond})
			note("attach", err)
			if err == nil {
				buf := make([]byte, len("fault payload"))
				_, rerr := att.Read(va, buf)
				note("read", rerr)
				note("detach", att.Detach(a, va))
			}
			note("release", att.Release(a, segid, apid))
		}
	})
	if err := node.Run(); err != nil {
		t.Fatal(err)
	}
	res.digest = tr.Digest()
	res.stats = inj.Stats()
	res.faults = tr.Faults()
	return res
}

// TestSameSeedSamePlanIdentical is the subsystem's core contract: an
// identical (seed, plan) pair replays the identical run — the same
// SHA-256 over the full event stream, the same injector decisions, and
// the same per-call outcomes — even under heavy loss, delay, and a
// name-server outage.
func TestSameSeedSamePlanIdentical(t *testing.T) {
	plan := fault.Plan{
		DropProb:  0.05,
		DelayProb: 0.2,
		DelayMax:  5 * sim.Microsecond,
		NSOutages: []fault.Window{{Start: 300 * sim.Microsecond, End: 500 * sim.Microsecond}},
	}
	a := runScenario(t, 42, plan, 12)
	b := runScenario(t, 42, plan, 12)
	if a.digest.SHA256 != b.digest.SHA256 {
		t.Fatalf("digests differ across identical runs:\n  %+v\n  %+v", a.digest, b.digest)
	}
	if a.stats != b.stats {
		t.Fatalf("injector stats differ: %+v vs %+v", a.stats, b.stats)
	}
	if len(a.outcomes) != len(b.outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.outcomes), len(b.outcomes))
	}
	for i := range a.outcomes {
		if a.outcomes[i] != b.outcomes[i] {
			t.Fatalf("outcome %d differs: %q vs %q", i, a.outcomes[i], b.outcomes[i])
		}
	}
	// The plan was lossy enough to actually bite.
	if a.stats.Drops == 0 || a.stats.Delays == 0 {
		t.Fatalf("plan injected nothing: %+v", a.stats)
	}
	if a.stats.DelayTime == 0 {
		t.Fatalf("delays carried no virtual time: %+v", a.stats)
	}
}

// TestSeedChangesSchedule: the injector draws from the world's seeded
// RNG tree, so a different seed yields a different fault schedule (and
// digest). This is probabilistic in principle but deterministic per
// seed pair, so the assertion is stable once it holds.
func TestSeedChangesSchedule(t *testing.T) {
	plan := fault.Plan{DropProb: 0.1, DelayProb: 0.3}
	a := runScenario(t, 1, plan, 10)
	b := runScenario(t, 2, plan, 10)
	if a.digest.SHA256 == b.digest.SHA256 {
		t.Fatalf("different seeds produced identical digests: %s", a.digest.SHA256)
	}
}

// TestFaultCountersReachTrace: injected faults surface as "fault-"
// counters in the tracer (and therefore perturb the digest), and
// Faults() reports them sorted.
func TestFaultCountersReachTrace(t *testing.T) {
	plan := fault.Plan{DropProb: 0.15}
	res := runScenario(t, 7, plan, 12)
	if res.stats.Drops == 0 {
		t.Fatalf("no drops at 15%% loss over 12 rounds: %+v", res.stats)
	}
	var dropEvents uint64
	for i, f := range res.faults {
		if i > 0 && res.faults[i-1].Name >= f.Name {
			t.Fatalf("Faults() not sorted: %q before %q", res.faults[i-1].Name, f.Name)
		}
		if len(f.Name) > len("fault-drop:") && f.Name[:len("fault-drop:")] == "fault-drop:" {
			dropEvents += f.Count
		}
	}
	if dropEvents != uint64(res.stats.Drops) {
		t.Fatalf("trace counted %d drops, injector %d", dropEvents, res.stats.Drops)
	}
	// A lossless rerun must digest differently (the drop events are part
	// of the hashed stream) and report no fault counters at all.
	clean := runScenario(t, 7, fault.Plan{}, 12)
	if clean.digest.SHA256 == res.digest.SHA256 {
		t.Fatal("dropping messages did not perturb the digest")
	}
	if len(clean.faults) != 0 {
		t.Fatalf("zero plan produced fault counters: %+v", clean.faults)
	}
}

// TestServiceDownWindows pins the outage-window semantics: half-open
// [Start, End), name-server only.
func TestServiceDownWindows(t *testing.T) {
	w := sim.NewWorld(1)
	inj := fault.New(w, fault.Plan{NSOutages: []fault.Window{
		{Start: 100, End: 200},
		{Start: 500, End: 600},
	}})
	cases := []struct {
		t    sim.Time
		down bool
	}{
		{0, false}, {99, false}, {100, true}, {199, true}, {200, false},
		{499, false}, {500, true}, {599, true}, {600, false}, {1000, false},
	}
	for _, c := range cases {
		if got := inj.ServiceDown("nameserver", c.t); got != c.down {
			t.Errorf("ServiceDown(nameserver, %d) = %v, want %v", c.t, got, c.down)
		}
	}
	if inj.ServiceDown("router", 150) {
		t.Error("outage windows leaked onto a non-nameserver service")
	}
}

// TestNSOutageBackoff: a Make issued while the name server is dark
// backs off in virtual time and completes once the window ends; the
// retries are visible in the module's stats and the outage drops in the
// trace would be, had any remote request hit the window.
func TestNSOutageBackoff(t *testing.T) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: 11, MemBytes: 1 << 30})
	inj := fault.New(node.World(), fault.Plan{
		NSOutages: []fault.Window{{Start: 0, End: 250 * sim.Microsecond}},
	})
	inj.Register(node.LinuxModule())

	sess, p := node.LinuxProcess("maker", 1)
	region, err := xemem.AllocLinux(node.Linux(), p, "buf", 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	var segid xpmem.Segid
	node.Spawn("maker", func(a *sim.Actor) {
		s, err := sess.Make(a, region.Base, 4096, xpmem.PermRead, "during-outage")
		if err != nil {
			t.Errorf("Make during NS outage: %v", err)
			return
		}
		segid = s
		if a.Now() < 250*sim.Microsecond {
			t.Errorf("Make completed at %v, inside the outage window", a.Now())
		}
	})
	if err := node.Run(); err != nil {
		t.Fatal(err)
	}
	if segid == 0 {
		t.Fatal("Make never completed")
	}
	if node.LinuxModule().Stats.NSRetries == 0 {
		t.Fatal("no NS backoff retries recorded during the outage")
	}
}

// TestOutageOutlastsBudget: an outage longer than the full backoff
// budget surfaces as ErrTimeout, typed and matchable.
func TestOutageOutlastsBudget(t *testing.T) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: 12, MemBytes: 1 << 30})
	fault.New(node.World(), fault.Plan{
		NSOutages: []fault.Window{{Start: 0, End: sim.Second}},
	})
	sess, p := node.LinuxProcess("maker", 1)
	region, err := xemem.AllocLinux(node.Linux(), p, "buf", 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	node.Spawn("maker", func(a *sim.Actor) {
		_, err := sess.Make(a, region.Base, 4096, xpmem.PermRead, "never")
		if !errors.Is(err, xpmem.ErrTimeout) {
			t.Errorf("Make under unbounded outage = %v, want ErrTimeout", err)
		}
	})
	if err := node.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDelayDefaulting: DelayProb without DelayMax gets the documented
// 10 µs default rather than a zero bound.
func TestDelayDefaulting(t *testing.T) {
	res := runScenario(t, 5, fault.Plan{DelayProb: 0.5}, 6)
	if res.stats.Delays == 0 {
		t.Fatalf("no delays at 50%% probability: %+v", res.stats)
	}
	if res.stats.DelayTime == 0 {
		t.Fatal("delays were injected with zero duration — DelayMax default missing")
	}
	if max := sim.Time(res.stats.Delays) * (10*sim.Microsecond + 1); res.stats.DelayTime > max {
		t.Fatalf("total delay %v exceeds %d × default bound", res.stats.DelayTime, res.stats.Delays)
	}
}
