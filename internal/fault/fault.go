// Package fault is the deterministic, seed-driven fault-injection
// subsystem: enclave crashes mid-protocol, dropped and delayed
// cross-enclave messages, and name-server unavailability windows,
// threaded through the simulation engine via the sim.Injector hooks.
//
// Everything is a pure function of the plan and the world's seeded RNG
// streams: the same seed and plan produce a bit-identical fault schedule
// — and therefore bit-identical traces — run after run, which is what
// makes failure behaviour a golden regression artifact rather than
// flaky noise. With no Injector installed the engine's hook sites
// short-circuit, so zero-fault runs are bit-identical to builds that
// predate this package.
package fault

import (
	"fmt"
	"sort"
	"sync"

	"xemem/internal/core"
	"xemem/internal/sim"
	"xemem/internal/sim/snapshot"
	"xemem/internal/xproto"
)

// Window is a half-open virtual-time interval [Start, End) during which
// a service is unavailable.
type Window struct {
	Start sim.Time
	End   sim.Time
}

// contains reports whether t lies inside the window.
func (w Window) contains(t sim.Time) bool { return t >= w.Start && t < w.End }

// Crash schedules the death of one enclave, by module name, at a
// virtual time. The victim dies mid-protocol: in-flight requests are
// abandoned exactly where the clock caught them.
type Crash struct {
	At     sim.Time
	Module string // core.Module name, e.g. "node0/kitten0"
}

// Plan is one deterministic fault schedule. The zero value injects
// nothing.
type Plan struct {
	// DropProb is the per-delivery probability a cross-enclave message is
	// silently discarded (a lost IPI).
	DropProb float64
	// DelayProb is the per-delivery probability a message is stalled;
	// the stall is uniform in (0, DelayMax].
	DelayProb float64
	// DelayMax bounds injected delivery stalls (default 10 µs when
	// DelayProb > 0).
	DelayMax sim.Time
	// NSOutages are windows during which the name server drops every
	// request on the floor and locally hosted NS operations back off.
	NSOutages []Window
	// Crashes are scheduled enclave deaths.
	Crashes []Crash
}

// Stats counts what the injector actually did.
type Stats struct {
	Deliveries int      // delivery-fault consultations
	Drops      int      // messages discarded
	Delays     int      // messages stalled
	DelayTime  sim.Time // total injected stall time
	Crashes    int      // enclaves killed
}

// Injector implements sim.Injector for one world. Create it with New
// (which installs it on the world), Register the modules that should
// learn about crashes, and Arm it to start the crash schedule.
//
// Partitioned worlds (sim.World.SpawnIn) get one deterministic RNG
// stream and one Stats accumulator per partition: delivery-fault draws
// in partition p depend only on p's own delivery sequence, never on how
// windows from other partitions interleave on host threads. Partition
// 0's stream is the legacy injector stream, so single-partition worlds
// keep bit-identical fault schedules with builds that predate the
// parallel engine.
type Injector struct {
	w    *sim.World
	plan Plan
	rng  *sim.RNG // partition 0's stream — the legacy derivation
	// forkBase is a frozen fork of the injector stream's initial state;
	// per-partition streams derive from it so they are independent of how
	// far partition 0 has already drawn when a partition first faults.
	forkBase *sim.RNG
	mods     []*core.Module //xemem:nosnap -- module registry wired by Register at world build; restore recipes rebuild the same topology

	// mu guards the lazily grown partition table. The per-partition state
	// itself needs no lock: the engine runs at most one actor of a
	// partition at a time, and each partition touches only its own entry.
	mu    sync.Mutex
	parts map[int]*partitionState
}

// partitionState is one partition's share of the injector.
type partitionState struct {
	rng   *sim.RNG
	stats Stats
}

// New creates an injector for plan and installs it on w. The injector
// draws from its own deterministic RNG stream, so its decisions depend
// only on the world's seed, the plan, and the (deterministic) order of
// deliveries — never on host state.
func New(w *sim.World, plan Plan) *Injector {
	if plan.DelayProb > 0 && plan.DelayMax <= 0 {
		plan.DelayMax = 10 * sim.Microsecond
	}
	rng := w.NewRNG()
	inj := &Injector{
		w:        w,
		plan:     plan,
		rng:      rng,
		forkBase: rng.Fork(0), // capture pre-draw state for partition streams
		parts:    map[int]*partitionState{0: {rng: rng}},
	}
	w.SetInjector(inj)
	w.AddSnapshotComponent("fault/injector", inj.EncodeSnapshot)
	return inj
}

// EncodeSnapshot appends the injector's state to e: the plan summary
// (shape only — the schedule is a pure function of plan and seed), then
// every partition's RNG stream position and statistics in partition
// order. The parts map grows lazily on host threads, so it is collected
// and sorted under the lock.
func (i *Injector) EncodeSnapshot(e *snapshot.Enc) {
	e.F64(i.plan.DropProb)
	e.F64(i.plan.DelayProb)
	e.I64(int64(i.plan.DelayMax))
	e.U64(uint64(len(i.plan.NSOutages)))
	for _, w := range i.plan.NSOutages {
		e.I64(int64(w.Start))
		e.I64(int64(w.End))
	}
	e.U64(uint64(len(i.plan.Crashes)))
	for _, c := range i.plan.Crashes {
		e.I64(int64(c.At))
		e.Str(c.Module)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	ids := make([]int, 0, len(i.parts))
	for p := range i.parts {
		ids = append(ids, p)
	}
	sort.Ints(ids)
	e.U64(uint64(len(ids)))
	for _, p := range ids {
		ps := i.parts[p]
		e.U64(uint64(p))
		state, spare, spareOK := ps.rng.State()
		e.U64(state)
		e.F64(spare)
		e.Bool(spareOK)
		e.U64(uint64(ps.stats.Deliveries))
		e.U64(uint64(ps.stats.Drops))
		e.U64(uint64(ps.stats.Delays))
		e.I64(int64(ps.stats.DelayTime))
		e.U64(uint64(ps.stats.Crashes))
	}
}

// partition returns partition p's injector state, creating it on first
// use. Streams fork from the injector's initial state keyed by p alone,
// so first-use order across partitions cannot perturb them.
func (i *Injector) partition(p int) *partitionState {
	i.mu.Lock()
	defer i.mu.Unlock()
	ps := i.parts[p]
	if ps == nil {
		ps = &partitionState{rng: i.forkBase.Fork(uint64(p))}
		i.parts[p] = ps
	}
	return ps
}

// Register tells the injector which modules exist, so a crash can fan
// out: the victim is killed and every survivor runs its OnEnclaveDown
// invalidation (routes forgotten, segids marked dead at the name server,
// pending requests failed, attachments poisoned).
func (i *Injector) Register(mods ...*core.Module) {
	i.mods = append(i.mods, mods...)
}

// crashNoticeLat is the virtual latency of the cross-partition crash
// notification in a partitioned world: the victim's partition kills the
// enclave at the scheduled instant, and partitions hosting survivors
// learn of the death this much later over a fault mailbox. It doubles as
// the mailbox's lookahead contribution, so it must stay positive.
const crashNoticeLat = sim.Microsecond

// Arm spawns the crash-schedule daemons. Call after the victims are
// Registered and Started (a module's partition is known only once its
// kernel actor exists) and before the run; with no planned crashes it is
// a no-op.
//
// Single-partition worlds keep the original shape — one "fault/injector"
// daemon that kills each victim and fans OnEnclaveDown out to every
// survivor at the crash instant — bit-identical to pre-parallel builds.
// Partitioned worlds get one schedule daemon per partition with victims
// plus one notify daemon per partition with modules: the victim's
// partition crashes it and fans out to same-partition survivors at the
// crash instant, and broadcasts the dead enclave's ID to the other
// partitions' fault mailboxes, whose notify daemons run the fanout
// crashNoticeLat later. Cross-partition module state is never touched
// directly, so the schedule stays race-free and digest-identical between
// the serial and parallel engines for the same world build.
func (i *Injector) Arm() {
	if len(i.plan.Crashes) == 0 {
		return
	}
	crashes := append([]Crash(nil), i.plan.Crashes...)
	sort.SliceStable(crashes, func(a, b int) bool {
		if crashes[a].At != crashes[b].At {
			return crashes[a].At < crashes[b].At
		}
		return crashes[a].Module < crashes[b].Module
	})
	if i.w.NumPartitions() <= 1 {
		i.w.Spawn("fault/injector", func(a *sim.Actor) {
			a.SetDaemon()
			for _, c := range crashes {
				a.AdvanceTo(c.At)
				i.crash(a, c.Module, i.mods)
			}
		})
		return
	}

	byPart := make(map[int][]*core.Module)
	for _, m := range i.mods {
		p := m.PartitionID()
		byPart[p] = append(byPart[p], m)
	}
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)

	// One crash mailbox per module-hosting partition, created in sorted
	// order so construction is deterministic.
	boxes := make(map[int]*sim.Mailbox, len(parts))
	for _, p := range parts {
		boxes[p] = i.w.NewMailbox(fmt.Sprintf("fault/down%d", p), p, crashNoticeLat)
	}

	moduleOf := make(map[string]*core.Module, len(i.mods))
	for _, m := range i.mods {
		moduleOf[m.Name()] = m
	}

	for _, p := range parts {
		p := p
		local := byPart[p]

		var sched []Crash
		for _, c := range crashes {
			if v := moduleOf[c.Module]; v != nil && v.PartitionID() == p {
				sched = append(sched, c)
			}
		}
		if len(sched) > 0 {
			i.w.SpawnIn(p, fmt.Sprintf("fault/injector%d", p), func(a *sim.Actor) {
				a.SetDaemon()
				for _, c := range sched {
					a.AdvanceTo(c.At)
					dead := i.crash(a, c.Module, local)
					if dead == xproto.NoEnclave {
						continue
					}
					for _, q := range parts {
						if q != p {
							boxes[q].Send(a, dead, crashNoticeLat)
						}
					}
				}
			})
		}

		i.w.SpawnIn(p, fmt.Sprintf("fault/notify%d", p), func(a *sim.Actor) {
			a.SetDaemon()
			for {
				dead := boxes[p].Recv(a).(xproto.EnclaveID)
				for _, m := range local {
					m.OnEnclaveDown(a, dead)
				}
			}
		})
	}
}

// crash kills the named module and fans the death out to the survivors
// in scope (every registered module on the single-partition path, the
// victim's partition peers on the partitioned path). It reports the dead
// enclave's ID, NoEnclave when the victim was unknown or already down.
func (i *Injector) crash(a *sim.Actor, name string, scope []*core.Module) xproto.EnclaveID {
	var victim *core.Module
	for _, m := range i.mods {
		if m.Name() == name {
			victim = m
			break
		}
	}
	if victim == nil || victim.Stopped() {
		return xproto.NoEnclave
	}
	dead := victim.EnclaveID()
	victim.Crash(a)
	i.partition(a.Partition()).stats.Crashes++
	if obs := a.Observer(); obs != nil {
		obs.Count("fault-crash:"+name, a, 0)
	}
	for _, m := range scope {
		if m != victim {
			m.OnEnclaveDown(a, dead)
		}
	}
	return dead
}

// DeliveryFault implements sim.Injector: one RNG draw per configured
// hazard per delivery, in a fixed order, so the schedule of faults is a
// deterministic function of the delivery sequence.
func (i *Injector) DeliveryFault(queue string, a *sim.Actor, bytes int) (drop bool, delay sim.Time) {
	ps := i.partition(a.Partition())
	ps.stats.Deliveries++
	if i.plan.DropProb > 0 && ps.rng.Float64() < i.plan.DropProb {
		ps.stats.Drops++
		return true, 0
	}
	if i.plan.DelayProb > 0 && ps.rng.Float64() < i.plan.DelayProb {
		delay = sim.Time(ps.rng.Float64()*float64(i.plan.DelayMax)) + 1
		ps.stats.Delays++
		ps.stats.DelayTime += delay
	}
	return false, delay
}

// ServiceDown implements sim.Injector.
func (i *Injector) ServiceDown(service string, t sim.Time) bool {
	if service != "nameserver" {
		return false
	}
	for _, w := range i.plan.NSOutages {
		if w.contains(t) {
			return true
		}
	}
	return false
}

// Stats reports what the injector has done so far, summed over every
// partition's accumulator.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	var s Stats
	for _, ps := range i.parts {
		s.Deliveries += ps.stats.Deliveries
		s.Drops += ps.stats.Drops
		s.Delays += ps.stats.Delays
		s.DelayTime += ps.stats.DelayTime
		s.Crashes += ps.stats.Crashes
	}
	return s
}

var _ sim.Injector = (*Injector)(nil)
