// Package fault is the deterministic, seed-driven fault-injection
// subsystem: enclave crashes mid-protocol, dropped and delayed
// cross-enclave messages, and name-server unavailability windows,
// threaded through the simulation engine via the sim.Injector hooks.
//
// Everything is a pure function of the plan and the world's seeded RNG
// streams: the same seed and plan produce a bit-identical fault schedule
// — and therefore bit-identical traces — run after run, which is what
// makes failure behaviour a golden regression artifact rather than
// flaky noise. With no Injector installed the engine's hook sites
// short-circuit, so zero-fault runs are bit-identical to builds that
// predate this package.
package fault

import (
	"sort"

	"xemem/internal/core"
	"xemem/internal/sim"
)

// Window is a half-open virtual-time interval [Start, End) during which
// a service is unavailable.
type Window struct {
	Start sim.Time
	End   sim.Time
}

// contains reports whether t lies inside the window.
func (w Window) contains(t sim.Time) bool { return t >= w.Start && t < w.End }

// Crash schedules the death of one enclave, by module name, at a
// virtual time. The victim dies mid-protocol: in-flight requests are
// abandoned exactly where the clock caught them.
type Crash struct {
	At     sim.Time
	Module string // core.Module name, e.g. "node0/kitten0"
}

// Plan is one deterministic fault schedule. The zero value injects
// nothing.
type Plan struct {
	// DropProb is the per-delivery probability a cross-enclave message is
	// silently discarded (a lost IPI).
	DropProb float64
	// DelayProb is the per-delivery probability a message is stalled;
	// the stall is uniform in (0, DelayMax].
	DelayProb float64
	// DelayMax bounds injected delivery stalls (default 10 µs when
	// DelayProb > 0).
	DelayMax sim.Time
	// NSOutages are windows during which the name server drops every
	// request on the floor and locally hosted NS operations back off.
	NSOutages []Window
	// Crashes are scheduled enclave deaths.
	Crashes []Crash
}

// Stats counts what the injector actually did.
type Stats struct {
	Deliveries int      // delivery-fault consultations
	Drops      int      // messages discarded
	Delays     int      // messages stalled
	DelayTime  sim.Time // total injected stall time
	Crashes    int      // enclaves killed
}

// Injector implements sim.Injector for one world. Create it with New
// (which installs it on the world), Register the modules that should
// learn about crashes, and Arm it to start the crash schedule.
type Injector struct {
	w     *sim.World
	plan  Plan
	rng   *sim.RNG
	mods  []*core.Module
	stats Stats
}

// New creates an injector for plan and installs it on w. The injector
// draws from its own deterministic RNG stream, so its decisions depend
// only on the world's seed, the plan, and the (deterministic) order of
// deliveries — never on host state.
func New(w *sim.World, plan Plan) *Injector {
	if plan.DelayProb > 0 && plan.DelayMax <= 0 {
		plan.DelayMax = 10 * sim.Microsecond
	}
	inj := &Injector{w: w, plan: plan, rng: w.NewRNG()}
	w.SetInjector(inj)
	return inj
}

// Register tells the injector which modules exist, so a crash can fan
// out: the victim is killed and every survivor runs its OnEnclaveDown
// invalidation (routes forgotten, segids marked dead at the name server,
// pending requests failed, attachments poisoned).
func (i *Injector) Register(mods ...*core.Module) {
	i.mods = append(i.mods, mods...)
}

// Arm spawns the crash-schedule daemon. Call after the victims are
// Registered and before (or during) the run; with no planned crashes it
// is a no-op.
func (i *Injector) Arm() {
	if len(i.plan.Crashes) == 0 {
		return
	}
	crashes := append([]Crash(nil), i.plan.Crashes...)
	sort.SliceStable(crashes, func(a, b int) bool {
		if crashes[a].At != crashes[b].At {
			return crashes[a].At < crashes[b].At
		}
		return crashes[a].Module < crashes[b].Module
	})
	i.w.Spawn("fault/injector", func(a *sim.Actor) {
		a.SetDaemon()
		for _, c := range crashes {
			a.AdvanceTo(c.At)
			i.crash(a, c.Module)
		}
	})
}

// crash kills the named module and fans the death out to the survivors.
func (i *Injector) crash(a *sim.Actor, name string) {
	var victim *core.Module
	for _, m := range i.mods {
		if m.Name() == name {
			victim = m
			break
		}
	}
	if victim == nil || victim.Stopped() {
		return
	}
	dead := victim.EnclaveID()
	victim.Crash(a)
	i.stats.Crashes++
	if obs := i.w.Observer(); obs != nil {
		obs.Count("fault-crash:"+name, a, 0)
	}
	for _, m := range i.mods {
		if m != victim {
			m.OnEnclaveDown(a, dead)
		}
	}
}

// DeliveryFault implements sim.Injector: one RNG draw per configured
// hazard per delivery, in a fixed order, so the schedule of faults is a
// deterministic function of the delivery sequence.
func (i *Injector) DeliveryFault(queue string, a *sim.Actor, bytes int) (drop bool, delay sim.Time) {
	i.stats.Deliveries++
	if i.plan.DropProb > 0 && i.rng.Float64() < i.plan.DropProb {
		i.stats.Drops++
		return true, 0
	}
	if i.plan.DelayProb > 0 && i.rng.Float64() < i.plan.DelayProb {
		delay = sim.Time(i.rng.Float64()*float64(i.plan.DelayMax)) + 1
		i.stats.Delays++
		i.stats.DelayTime += delay
	}
	return false, delay
}

// ServiceDown implements sim.Injector.
func (i *Injector) ServiceDown(service string, t sim.Time) bool {
	if service != "nameserver" {
		return false
	}
	for _, w := range i.plan.NSOutages {
		if w.contains(t) {
			return true
		}
	}
	return false
}

// Stats reports what the injector has done so far.
func (i *Injector) Stats() Stats { return i.stats }

var _ sim.Injector = (*Injector)(nil)
