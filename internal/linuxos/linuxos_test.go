package linuxos_test

import (
	"testing"

	"xemem/internal/extent"
	"xemem/internal/linuxos"
	"xemem/internal/mem"
	"xemem/internal/proc"
	"xemem/internal/sim"
)

func newLinux(t *testing.T, cores int) (*linuxos.Linux, *sim.World, *mem.PhysMem) {
	t.Helper()
	w := sim.NewWorld(1)
	pm := mem.NewPhysMem("node", 1<<30)
	l := linuxos.New("linux", w, sim.DefaultCosts(), pm.Zone(0), proc.HostDomain{Mem: pm}, cores)
	return l, w, pm
}

func TestAllocScatteredIsFragmented(t *testing.T) {
	l, _, _ := newLinux(t, 2)
	p := l.NewProcess("app", 1)
	r, err := l.Alloc(p, "buf", 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Backing.Len() < 2 {
		t.Errorf("fullweight allocation came out contiguous: %v", r.Backing)
	}
}

func TestAllocContiguousAligned(t *testing.T) {
	l, _, _ := newLinux(t, 2)
	p := l.NewProcess("app", 1)
	r, err := l.AllocContiguous(p, "buf", 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Backing.Len() != 1 {
		t.Fatalf("not contiguous: %v", r.Backing)
	}
	f, _ := r.Backing.Page(0)
	if uint64(f)%512 != 0 {
		t.Errorf("not 2MB aligned: %#x", uint64(f))
	}
}

func TestWalkForExportChargesPinAndFaults(t *testing.T) {
	l, w, _ := newLinux(t, 2)
	costs := sim.DefaultCosts()
	p := l.NewProcess("app", 1)
	r, err := l.Alloc(p, "buf", 64, false) // lazy: serve must populate
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	w.Spawn("serve", func(a *sim.Actor) {
		start := a.Now()
		if _, err := l.WalkForExport(a, p.AS, r.Base, 64); err != nil {
			t.Error(err)
			return
		}
		elapsed = a.Now() - start
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := 64*(costs.WalkPerPage+costs.PinPerPage) + 64*costs.FaultLinux
	if elapsed != want {
		t.Errorf("serve charged %v, want %v (pin+walk+faults)", elapsed, want)
	}
}

func TestMapRemoteCoherencePenaltyWhenConcurrent(t *testing.T) {
	l, w, _ := newLinux(t, 4)
	costs := sim.DefaultCosts()
	list1 := extent.FromExtents(extent.Extent{First: 0x200, Count: 4096})
	list2 := extent.FromExtents(extent.Extent{First: 0x200 + 4096, Count: 4096})
	p1 := l.NewProcess("a", 1)
	p2 := l.NewProcess("b", 2)

	var alone, contended sim.Time
	w.Spawn("solo", func(a *sim.Actor) {
		start := a.Now()
		r, err := l.MapRemote(a, p1, list1, 3)
		if err != nil {
			t.Error(err)
			return
		}
		alone = a.Now() - start
		if err := l.UnmapRemote(a, p1, r); err != nil {
			t.Error(err)
		}
		// Now map concurrently with another process.
		done := false
		a.Spawn("other", func(b *sim.Actor) {
			r2, err := l.MapRemote(b, p2, list2, 3)
			if err != nil {
				t.Error(err)
				return
			}
			_ = r2
			done = true
		})
		a.Advance(costs.MmapRegionSetup + 10) // overlap with the other mapper
		start = a.Now()
		r, err = l.MapRemote(a, p1, list1, 3)
		if err != nil {
			t.Error(err)
			return
		}
		contended = a.Now() - start
		_ = done
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if contended <= alone {
		t.Errorf("concurrent mapping (%v) not slower than solo (%v)", contended, alone)
	}
	wantDelta := 4096 * costs.CoherencePerPage
	if contended-alone != wantDelta {
		t.Errorf("coherence penalty = %v, want %v", contended-alone, wantDelta)
	}
}

func TestKernelCoreIsCoreZero(t *testing.T) {
	l, _, _ := newLinux(t, 4)
	if l.KernelCore() != l.Cores()[0] {
		t.Fatal("kernel work must land on core 0 (§5.3)")
	}
}

func TestProcessCoreAssignmentClamped(t *testing.T) {
	l, _, _ := newLinux(t, 2)
	p := l.NewProcess("app", 99)
	if l.CoreOf(p) != l.Cores()[1] {
		t.Fatal("core index not clamped")
	}
	p2 := l.NewProcess("app2", -5)
	if l.CoreOf(p2) != l.Cores()[0] {
		t.Fatal("negative core index not clamped")
	}
}

func TestChargeFaults(t *testing.T) {
	l, w, _ := newLinux(t, 2)
	costs := sim.DefaultCosts()
	p := l.NewProcess("app", 1)
	var elapsed sim.Time
	w.Spawn("touch", func(a *sim.Actor) {
		start := a.Now()
		l.ChargeFaults(a, p, 10)
		l.ChargeFaults(a, p, 0) // no-op
		elapsed = a.Now() - start
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 10*costs.FaultLinux {
		t.Errorf("charged %v, want %v", elapsed, 10*costs.FaultLinux)
	}
}
