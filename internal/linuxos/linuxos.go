// Package linuxos simulates a Linux enclave kernel — both the native
// management enclave and the Centos guests running inside Palacios VMs.
//
// The properties the evaluation depends on are modelled faithfully:
//
//   - exports pin memory with get_user_pages and walk page tables to
//     build frame lists (§4.3);
//   - remote frame lists are mapped with vm_mmap + remap_pfn_range,
//     eagerly, at fullweight per-page cost;
//   - *local* (single-OS) XEMEM attachments are populated lazily with
//     page-fault semantics — the overhead source the paper identifies for
//     the recurring-attachment model in the Linux-only configuration
//     (§6.4);
//   - concurrent address-space updates by multiple processes contend on
//     shared mm structures (§5.3), modelled as a per-page coherence
//     penalty whenever more than one mapper is active;
//   - under Pisces, all cross-enclave IPIs are handled on core 0 (§5.3),
//     which is the module's kernel core.
package linuxos

import (
	"fmt"

	"xemem/internal/core"
	"xemem/internal/extent"
	"xemem/internal/mem"
	"xemem/internal/pagetable"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/sim/snapshot"
	"xemem/internal/xproto"
)

// VirtHooks is implemented by Palacios when this Linux instance runs as a
// guest: imported host frame lists have VMM-side state (guest-physical
// regions and memory-map entries) that must be released on detach.
type VirtHooks interface {
	// ReleaseImport tears down the VMM state backing an imported
	// guest-physical frame list, charging the acting actor.
	ReleaseImport(a *sim.Actor, list extent.List) error
}

// Linux is one Linux kernel instance.
type Linux struct {
	name    string
	w       *sim.World
	c       *sim.Costs
	cores   []*sim.Core
	zone    *mem.Zone
	dom     proc.Domain
	virt    VirtHooks //xemem:nosnap -- nil when native; virtualization wiring installed by SetVirtHooks at build time, rebuilt by the restore recipe
	nextPID int

	procCore map[*proc.Process]*sim.Core
	// procs holds every process in creation order — procCore is keyed by
	// host pointer, so snapshot encoding iterates this slice instead.
	procs []*proc.Process

	// activeMappers counts processes currently inside an address-space
	// update; >1 means shared mm structures are bouncing between cores.
	activeMappers int //xemem:nosnap -- reentrancy meter around one address-space update; the paired decrement runs before the actor yields for good, so it is zero whenever the world is quiescent for a snapshot
}

// New creates a Linux instance with ncores cores over the given zone and
// physical domain (HostDomain natively, the Palacios guest domain in a
// VM).
func New(name string, w *sim.World, costs *sim.Costs, zone *mem.Zone, dom proc.Domain, ncores int) *Linux {
	if ncores < 1 {
		ncores = 1
	}
	l := &Linux{
		name: name, w: w, c: costs, zone: zone, dom: dom,
		procCore: make(map[*proc.Process]*sim.Core),
	}
	for i := 0; i < ncores; i++ {
		l.cores = append(l.cores, sim.NewCore(fmt.Sprintf("%s/core%d", name, i)))
	}
	w.AddSnapshotComponent("os/"+name, l.EncodeSnapshot)
	return l
}

// SetVirtHooks marks this instance as a Palacios guest.
func (l *Linux) SetVirtHooks(v VirtHooks) { l.virt = v }

// Name reports the instance name (also its snapshot section suffix).
func (l *Linux) Name() string { return l.name }

// Zone returns the instance's memory zone.
func (l *Linux) Zone() *mem.Zone { return l.zone }

// Cores returns the instance's cores (core 0 handles kernel work).
func (l *Linux) Cores() []*sim.Core { return l.cores }

// NewProcess creates an empty Linux process. Its syscall-context work runs
// on the given core index (clamped); user cores should avoid core 0,
// which serves cross-enclave IPIs.
func (l *Linux) NewProcess(name string, coreIdx int) *proc.Process {
	l.nextPID++
	p := &proc.Process{PID: l.nextPID, Name: name, AS: proc.NewAddressSpace(l.dom, 0x7f00_0000_0000)}
	if coreIdx < 0 {
		coreIdx = 0
	}
	if coreIdx >= len(l.cores) {
		coreIdx = len(l.cores) - 1
	}
	l.procCore[p] = l.cores[coreIdx]
	l.procs = append(l.procs, p)
	return p
}

// EncodeSnapshot appends the kernel instance's state to e: every process
// in creation order with its PID and address space, then every core's
// scheduling state and statistics in index order. Processes come first so
// LoadSnapshotOverlay can reach the address-space cursors and stop; the
// zone is owned by the node's PhysMem (or the VMM) and is captured there.
func (l *Linux) EncodeSnapshot(e *snapshot.Enc) {
	e.Str(l.name)
	e.U64(uint64(l.nextPID))
	e.U64(uint64(len(l.procs)))
	for _, p := range l.procs {
		e.U64(uint64(p.PID))
		e.Str(p.Name)
		p.AS.EncodeSnapshot(e)
	}
	e.U64(uint64(len(l.cores)))
	for _, c := range l.cores {
		c.EncodeSnapshot(e)
	}
}

// LoadSnapshotOverlay overlays the warm-fork state from a section encoded
// by EncodeSnapshot: per process, the address-space placement cursor (so
// post-fork automatic placements hand out the addresses the snapshotted
// world would have). Identity fields are verified, not overwritten — a
// mismatch yields snapshot.ErrCorrupt. Core scheduling statistics trail
// the processes and are accumulated observability, not behavior; the
// overlay stops before them.
func (l *Linux) LoadSnapshotOverlay(d *snapshot.Dec) error {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("linuxos: "+format+": %w", append(args, snapshot.ErrCorrupt)...)
	}
	if name := d.Str(); d.Err() == nil && name != l.name {
		return corrupt("snapshot for %q, instance is %q", name, l.name)
	}
	nextPID := int(d.U64())
	nprocs := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if nprocs != uint64(len(l.procs)) {
		return corrupt("snapshot has %d processes, instance has %d", nprocs, len(l.procs))
	}
	for _, p := range l.procs {
		pid := int(d.U64())
		name := d.Str()
		if d.Err() == nil && (pid != p.PID || name != p.Name) {
			return corrupt("snapshot process %d %q, instance has %d %q", pid, name, p.PID, p.Name)
		}
		if err := p.AS.LoadSnapshotOverlay(d); err != nil {
			return err
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	l.nextPID = nextPID
	return nil
}

// CoreOf reports the core a process's syscall work executes on.
func (l *Linux) CoreOf(p *proc.Process) *sim.Core {
	if c, ok := l.procCore[p]; ok {
		return c
	}
	return l.cores[0]
}

// Alloc gives the process a new anonymous memory region of npages,
// allocated scattered (fullweight allocators fragment) and populated
// lazily unless eager is set (modelling a warmed-up buffer).
func (l *Linux) Alloc(p *proc.Process, name string, npages uint64, eager bool) (*proc.Region, error) {
	backing, err := l.zone.AllocScattered(npages, 512)
	if err != nil {
		return nil, err
	}
	return p.AS.AddRegion(name, 0, backing, pagetable.Read|pagetable.Write|pagetable.User, !eager)
}

// AllocContiguous gives the process a physically contiguous, 2 MB-aligned
// region — a hugepage-backed HPC buffer. Eager regions are fully mapped.
func (l *Linux) AllocContiguous(p *proc.Process, name string, npages uint64, eager bool) (*proc.Region, error) {
	e, err := l.zone.AllocContigAligned(npages, 512)
	if err != nil {
		return nil, err
	}
	return p.AS.AddRegion(name, 0, extent.FromExtents(e), pagetable.Read|pagetable.Write|pagetable.User, !eager)
}

func permFlags(perm xproto.Perm) pagetable.Flags {
	fl := pagetable.Read | pagetable.User
	if perm&xproto.PermWrite != 0 {
		fl |= pagetable.Write
	}
	return fl
}

// --- core.OS implementation -------------------------------------------

// OSName identifies the kernel instance.
func (l *Linux) OSName() string { return l.name }

// KernelCore is core 0: under Pisces, every cross-enclave IPI lands there
// (§5.3).
func (l *Linux) KernelCore() *sim.Core { return l.cores[0] }

// KernelCores exposes every core for distributed interrupt handling —
// only used when the module is configured with multiple kernel workers
// (the §5.3 future work); the default single worker stays on core 0.
func (l *Linux) KernelCores() []*sim.Core { return l.cores }

// WalkForExport pins (get_user_pages) and walks the exporting process's
// pages, charging fullweight per-page pin+walk costs plus any demand
// faults population triggers.
func (l *Linux) WalkForExport(a *sim.Actor, as *proc.AddressSpace, va pagetable.VA, pages uint64) (extent.List, error) {
	list, faults, err := as.WalkExtents(va, pages)
	if err != nil {
		return extent.List{}, err
	}
	cost := sim.Time(pages)*(l.c.WalkPerPage+l.c.PinPerPage) + sim.Time(faults)*l.c.FaultLinux
	l.cores[0].Exec(a, cost, "xemem-serve")
	return list, nil
}

// ExportWalkCost charges what a repeat WalkForExport would: a cached
// window was walked (and so populated) by a previous serve, so the
// repeat takes zero demand faults and costs the per-page pin+walk price.
func (l *Linux) ExportWalkCost(a *sim.Actor, pages uint64) {
	l.cores[0].Exec(a, sim.Time(pages)*(l.c.WalkPerPage+l.c.PinPerPage), "xemem-serve")
}

// MapRemote maps a remote frame list with vm_mmap + remap_pfn_range:
// eager per-page population at fullweight cost, plus the coherence
// penalty when other processes are concurrently updating memory maps, and
// nested-paging overhead inside a guest.
func (l *Linux) MapRemote(a *sim.Actor, p *proc.Process, list extent.List, perm xproto.Perm) (*proc.Region, error) {
	perPage := l.c.MapPerPageLinux
	var coherence, nested sim.Time
	if l.activeMappers > 0 {
		coherence = l.c.CoherencePerPage
		perPage += coherence
	}
	if l.virt != nil {
		nested = l.c.NestedMapPerPage
		perPage += nested
	}
	l.activeMappers++
	a.Charge("mmap-setup", l.c.MmapRegionSetup)
	// The coherence and nested-paging components ride inside the single
	// map charge (splitting the Exec would change the schedule); attribute
	// them separately so traces can decompose the §5.3 dip exactly.
	if obs := a.Observer(); obs != nil {
		if coherence > 0 {
			obs.Count("mm-coherence", a, sim.Time(list.Pages())*coherence)
		}
		if nested > 0 {
			obs.Count("nested-map", a, sim.Time(list.Pages())*nested)
		}
	}
	l.CoreOf(p).Exec(a, sim.Time(list.Pages())*perPage, "xemem-attach")
	r, err := p.AS.AddRegion("xemem-remote", 0, list, permFlags(perm), false)
	l.activeMappers--
	return r, err
}

// UnmapRemote tears down a region created by MapRemote, releasing any
// VMM-side import state when running as a guest.
func (l *Linux) UnmapRemote(a *sim.Actor, p *proc.Process, r *proc.Region) error {
	l.CoreOf(p).Exec(a, sim.Time(r.Pages())*l.c.UnmapPerPage, "xemem-detach")
	backing := r.Backing
	if err := p.AS.RemoveRegion(r); err != nil {
		return err
	}
	if l.virt != nil {
		return l.virt.ReleaseImport(a, backing)
	}
	return nil
}

// AttachLocal implements single-OS XEMEM attachment with Linux's
// page-fault semantics (§6.4): the attach itself only creates the VMA;
// pages populate on first touch at fault cost.
func (l *Linux) AttachLocal(a *sim.Actor, seg *core.Segment, p *proc.Process, offPages, pages uint64, perm xproto.Perm) (*proc.Region, error) {
	a.Charge("mmap-setup", l.c.MmapRegionSetup)
	srcVA := seg.VA + pagetable.VA(offPages*extent.PageSize)
	// Resolve the source frames (populating the exporter if needed).
	backing, faults, err := seg.Owner.AS.WalkExtents(srcVA, pages)
	if err != nil {
		return nil, err
	}
	if faults > 0 {
		l.cores[0].Exec(a, sim.Time(faults)*l.c.FaultLinux, "fault")
	}
	return p.AS.AddRegion("xemem-local", 0, backing, permFlags(perm), true)
}

// DetachLocal unmaps whatever a local attachment faulted in.
func (l *Linux) DetachLocal(a *sim.Actor, p *proc.Process, r *proc.Region) error {
	l.CoreOf(p).Exec(a, sim.Time(r.Populated)*l.c.UnmapPerPage, "xemem-detach")
	return p.AS.RemoveRegion(r)
}

// ChargeFaults bills demand faults taken by a user-level access on the
// process's core. Workload drivers call it with the fault counts returned
// by AddressSpace accessors.
func (l *Linux) ChargeFaults(a *sim.Actor, p *proc.Process, faults int) {
	if faults > 0 {
		l.CoreOf(p).Exec(a, sim.Time(faults)*l.c.FaultLinux, "fault")
	}
}

var _ core.OS = (*Linux)(nil)
