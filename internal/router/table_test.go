package router

// Table-driven hierarchical routing tests: whole topologies of routers
// are built per case and message delivery is walked hop by hop, the way
// the kernel actors forward in §3.2 — learned route if present,
// default toward the name server otherwise.

import (
	"fmt"
	"reflect"
	"testing"

	"xemem/internal/sim"
	"xemem/internal/xproto"
)

// edgeLink is a stub channel that knows which enclave it leads to, so a
// test can follow a Route decision to the next hop.
type edgeLink struct{ to xproto.EnclaveID }

func (e edgeLink) Send(*sim.Actor, *xproto.Message) {}
func (e edgeLink) String() string                   { return fmt.Sprintf("->%d", e.to) }

// learnedRoute seeds one passive-learning fact: router `at` knows `dst`
// is reachable via the link toward `via`.
type learnedRoute struct{ at, dst, via xproto.EnclaveID }

const ns = xproto.NameServerID

func TestHierarchicalForwarding(t *testing.T) {
	// All topologies are parent maps; the name server is the root.
	chain := map[xproto.EnclaveID]xproto.EnclaveID{2: ns, 3: 2, 4: 3}
	star := map[xproto.EnclaveID]xproto.EnclaveID{2: ns, 3: ns, 4: ns}
	tree := map[xproto.EnclaveID]xproto.EnclaveID{2: ns, 3: ns, 4: 2, 5: 2}

	// fullLearning derives what passive learning converges to: every
	// ancestor knows each descendant via the child subtree it sits in.
	fullLearning := func(parents map[xproto.EnclaveID]xproto.EnclaveID) []learnedRoute {
		var out []learnedRoute
		for d := range parents {
			// Walk d's ancestor chain; each ancestor learned d via the
			// previous hop on that chain.
			hop := d
			for {
				p, ok := parents[hop]
				if !ok {
					p = ns
				}
				out = append(out, learnedRoute{at: p, dst: d, via: hop})
				if p == ns {
					break
				}
				hop = p
			}
		}
		return out
	}

	cases := []struct {
		name    string
		parents map[xproto.EnclaveID]xproto.EnclaveID
		learned []learnedRoute
		dead    []xproto.EnclaveID
		src     xproto.EnclaveID
		dst     xproto.EnclaveID
		// Expected node sequence after src; nil means undeliverable at
		// the node named by failAt.
		path   []xproto.EnclaveID
		failAt xproto.EnclaveID
	}{
		{
			name: "chain/down-three-hops", parents: chain,
			learned: fullLearning(chain),
			src:     ns, dst: 4, path: []xproto.EnclaveID{2, 3, 4},
		},
		{
			name: "chain/up-is-default-route", parents: chain,
			learned: fullLearning(chain),
			src:     4, dst: ns, path: []xproto.EnclaveID{3, 2, ns},
		},
		{
			name: "chain/sibling-free-turnaround", parents: chain,
			// Only the NS has learned routes; an interior enclave must
			// send everything unknown upward.
			learned: []learnedRoute{{at: ns, dst: 4, via: 2}, {at: 2, dst: 4, via: 3}, {at: 3, dst: 4, via: 4}},
			src:     3, dst: 4, path: []xproto.EnclaveID{4},
		},
		{
			name: "star/up-then-down", parents: star,
			learned: fullLearning(star),
			src:     3, dst: 4, path: []xproto.EnclaveID{ns, 4},
		},
		{
			name: "tree/cross-subtree", parents: tree,
			learned: fullLearning(tree),
			src:     5, dst: 3, path: []xproto.EnclaveID{2, ns, 3},
		},
		{
			name: "tree/partial-learning-still-delivers", parents: tree,
			// 4 never learned where its sibling 5 is: traffic takes the
			// default route up, and the ancestors (which passively
			// learned 5 from its ID allocation) turn it around.
			learned: []learnedRoute{{at: ns, dst: 5, via: 2}, {at: 2, dst: 5, via: 5}},
			src:     4, dst: 5, path: []xproto.EnclaveID{2, 5},
		},
		{
			name: "chain/unknown-enclave-undeliverable-at-ns", parents: chain,
			learned: fullLearning(chain),
			src:     4, dst: 99, path: nil, failAt: ns,
		},
		{
			name: "tree/detach-mid-route-drops-at-last-hop", parents: tree,
			learned: fullLearning(tree),
			dead:    []xproto.EnclaveID{4},
			// The stale learned route still resolves at every live hop;
			// the message dies at the detached enclave, not before.
			src: ns, dst: 4, path: nil, failAt: 4,
		},
		{
			name: "tree/detach-leaves-siblings-routable", parents: tree,
			learned: fullLearning(tree),
			dead:    []xproto.EnclaveID{4},
			src:     3, dst: 5, path: []xproto.EnclaveID{ns, 2, 5},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			routers := map[xproto.EnclaveID]*Router{ns: New()}
			routers[ns].SetSelf(ns)
			for id, parent := range tc.parents {
				r := New()
				r.SetSelf(id)
				r.SetNSLink(edgeLink{to: parent})
				routers[id] = r
			}
			for _, l := range tc.learned {
				routers[l.at].Learn(l.dst, edgeLink{to: l.via})
			}
			for _, id := range tc.dead {
				delete(routers, id)
			}

			var got []xproto.EnclaveID
			cur := tc.src
			for hops := 0; hops < 16; hops++ {
				r, alive := routers[cur]
				if !alive {
					if tc.path != nil || tc.failAt != cur {
						t.Fatalf("message died at detached enclave %d, path so far %v", cur, got)
					}
					return
				}
				if cur == tc.dst {
					break
				}
				link, ok := r.Route(tc.dst)
				if !ok {
					if tc.path != nil || tc.failAt != cur {
						t.Fatalf("undeliverable at %d, path so far %v", cur, got)
					}
					return
				}
				cur = link.(edgeLink).to
				got = append(got, cur)
			}
			if tc.path == nil {
				t.Fatalf("expected failure at %d, but delivered via %v", tc.failAt, got)
			}
			if cur != tc.dst {
				t.Fatalf("never reached %d: %v", tc.dst, got)
			}
			if !reflect.DeepEqual(got, tc.path) {
				t.Fatalf("path %v, want %v", got, tc.path)
			}
		})
	}
}

func TestHopTrackingSequences(t *testing.T) {
	type op struct {
		track   bool
		reqID   uint64
		via     xproto.EnclaveID
		wantErr bool // for track
		wantOK  bool // for take
		wantVia xproto.EnclaveID
	}
	cases := []struct {
		name string
		ops  []op
	}{
		{"track-then-take", []op{
			{track: true, reqID: 1, via: 2},
			{track: false, reqID: 1, wantOK: true, wantVia: 2},
		}},
		{"duplicate-track-rejected", []op{
			{track: true, reqID: 7, via: 2},
			{track: true, reqID: 7, via: 3, wantErr: true},
			{track: false, reqID: 7, wantOK: true, wantVia: 2},
		}},
		{"take-unknown", []op{
			{track: false, reqID: 9, wantOK: false},
		}},
		{"take-consumes", []op{
			{track: true, reqID: 4, via: 5},
			{track: false, reqID: 4, wantOK: true, wantVia: 5},
			{track: false, reqID: 4, wantOK: false},
			// The ID is reusable after consumption (responses retire it).
			{track: true, reqID: 4, via: 6},
			{track: false, reqID: 4, wantOK: true, wantVia: 6},
		}},
		{"interleaved-requests", []op{
			{track: true, reqID: 1, via: 2},
			{track: true, reqID: 2, via: 3},
			{track: false, reqID: 2, wantOK: true, wantVia: 3},
			{track: false, reqID: 1, wantOK: true, wantVia: 2},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := New()
			for i, o := range tc.ops {
				if o.track {
					err := r.TrackHop(o.reqID, edgeLink{to: o.via})
					if (err != nil) != o.wantErr {
						t.Fatalf("op %d: TrackHop(%d) err=%v, wantErr=%v", i, o.reqID, err, o.wantErr)
					}
					continue
				}
				l, ok := r.TakeHop(o.reqID)
				if ok != o.wantOK {
					t.Fatalf("op %d: TakeHop(%d) ok=%v, want %v", i, o.reqID, ok, o.wantOK)
				}
				if ok && l.(edgeLink).to != o.wantVia {
					t.Fatalf("op %d: TakeHop(%d) via %v, want ->%d", i, o.reqID, l, o.wantVia)
				}
			}
		})
	}
}

// TestLearnOverwrites: a newer response path supersedes the old route —
// what happens when an enclave is destroyed and re-created behind a
// different channel.
func TestLearnOverwrites(t *testing.T) {
	r := New()
	r.Learn(6, edgeLink{to: 2})
	r.Learn(6, edgeLink{to: 3})
	if l, ok := r.Route(6); !ok || l.(edgeLink).to != 3 {
		t.Fatalf("Route(6) = %v %v, want ->3", l, ok)
	}
	if len(r.KnownEnclaves()) != 1 {
		t.Fatalf("relearning duplicated the entry: %v", r.KnownEnclaves())
	}
}
