package router

import (
	"testing"

	"xemem/internal/sim"
	"xemem/internal/xproto"
)

type stubLink string

func (s stubLink) Send(*sim.Actor, *xproto.Message) {}
func (s stubLink) String() string                   { return string(s) }

func TestRouteLearnedAndDefault(t *testing.T) {
	r := New()
	r.SetSelf(3)
	up := stubLink("up")
	down := stubLink("down")
	r.SetNSLink(up)
	r.Learn(7, down)

	if l, ok := r.Route(7); !ok || l != down {
		t.Fatalf("Route(7) = %v %v", l, ok)
	}
	// Unknown enclave: default toward the name server.
	if l, ok := r.Route(99); !ok || l != up {
		t.Fatalf("Route(99) = %v %v", l, ok)
	}
}

func TestRouteUndeliverableAtNS(t *testing.T) {
	r := New()
	r.SetSelf(xproto.NameServerID)
	if _, ok := r.Route(42); ok {
		t.Fatal("NS with no route should report undeliverable")
	}
	if !r.HasPathToNS() {
		t.Fatal("the NS trivially has a path to itself")
	}
}

func TestHasPathToNS(t *testing.T) {
	r := New()
	if r.HasPathToNS() {
		t.Fatal("fresh router should have no NS path")
	}
	r.SetNSLink(stubLink("up"))
	if !r.HasPathToNS() {
		t.Fatal("NS link set but no path reported")
	}
}

func TestLearnIgnoresZero(t *testing.T) {
	r := New()
	r.Learn(xproto.NoEnclave, stubLink("x"))
	if len(r.KnownEnclaves()) != 0 {
		t.Fatal("NoEnclave should not be learnable")
	}
}

func TestHopTracking(t *testing.T) {
	r := New()
	via := stubLink("child")
	if err := r.TrackHop(11, via); err != nil {
		t.Fatal(err)
	}
	if err := r.TrackHop(11, via); err == nil {
		t.Fatal("duplicate hop tracking accepted")
	}
	l, ok := r.TakeHop(11)
	if !ok || l != via {
		t.Fatalf("TakeHop = %v %v", l, ok)
	}
	if _, ok := r.TakeHop(11); ok {
		t.Fatal("hop entry should be consumed")
	}
}

func TestKnownEnclavesSorted(t *testing.T) {
	r := New()
	for _, id := range []xproto.EnclaveID{9, 2, 5} {
		r.Learn(id, stubLink("l"))
	}
	got := r.KnownEnclaves()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("KnownEnclaves = %v", got)
	}
}

func TestMinHops(t *testing.T) {
	r := New()
	r.SetSelf(3)
	if got := r.MinHops(7); got != 2 {
		t.Fatalf("unknown enclave before bootstrap: MinHops = %d, want 2", got)
	}
	r.SetNSLink(stubLink("up"))
	if got := r.MinHops(xproto.NameServerID); got != 1 {
		t.Fatalf("NS over the default route: MinHops = %d, want 1", got)
	}
	if got := r.MinHops(7); got != 2 {
		t.Fatalf("unknown enclave via NS detour: MinHops = %d, want 2", got)
	}
	r.Learn(7, stubLink("down"))
	if got := r.MinHops(7); got != 1 {
		t.Fatalf("learned route: MinHops = %d, want 1", got)
	}
	r.Forget(7)
	if got := r.MinHops(7); got != 2 {
		t.Fatalf("forgotten route: MinHops = %d, want 2", got)
	}
}

func TestRouteTableRenders(t *testing.T) {
	r := New()
	r.SetSelf(4)
	r.Learn(6, stubLink("pci0"))
	r.SetNSLink(stubLink("ipi"))
	s := r.RouteTable()
	if s == "" {
		t.Fatal("empty route table string")
	}
}

// The cluster builder's accessors: Self/NSLink expose bootstrap results,
// Knows distinguishes learned mesh routes from the NS fallback, and
// PendingHops lists outstanding hop-routed requests sorted for the
// snapshot encoder.
func TestAccessorsAndPendingHops(t *testing.T) {
	r := New()
	if r.Self() != xproto.NoEnclave {
		t.Fatalf("Self before bootstrap = %d", r.Self())
	}
	if r.NSLink() != nil {
		t.Fatal("NSLink before bootstrap")
	}
	r.SetSelf(3)
	up := stubLink("up")
	r.SetNSLink(up)
	if r.Self() != 3 || r.NSLink() != up {
		t.Fatalf("accessors = %v %v", r.Self(), r.NSLink())
	}

	r.Learn(7, stubLink("mesh"))
	if !r.Knows(7) || r.Knows(8) {
		t.Fatal("Knows disagrees with the learned routes")
	}
	r.Forget(7)
	if r.Knows(7) {
		t.Fatal("Knows survives Forget")
	}

	if got := r.PendingHops(); len(got) != 0 {
		t.Fatalf("pending hops on a fresh router: %v", got)
	}
	for _, id := range []uint64{9, 4, 6} {
		if err := r.TrackHop(id, up); err != nil {
			t.Fatal(err)
		}
	}
	got := r.PendingHops()
	if len(got) != 3 || got[0] != 4 || got[1] != 6 || got[2] != 9 {
		t.Fatalf("PendingHops = %v, want sorted [4 6 9]", got)
	}
	r.TakeHop(6)
	if got := r.PendingHops(); len(got) != 2 || got[0] != 4 || got[1] != 9 {
		t.Fatalf("PendingHops after take = %v", got)
	}
}
