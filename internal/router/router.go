// Package router implements the hierarchical routing state of §3.2: the
// per-enclave mapping from enclave IDs to communication channels, the
// default route toward the name server, and the outstanding-request lists
// that route enclave-ID allocations hop-by-hop before the requester has an
// identity.
//
// The routing rule is the paper's: to deliver a message for enclave E,
// forward on the channel recorded for E if one is known, otherwise
// forward toward the name server. Routes are learned passively as
// enclave-ID responses flow back through the tree — each hop records
// "E is reachable through the link its ID request arrived on".
package router

import (
	"fmt"
	"sort"

	"xemem/internal/xproto"
)

// Router is one enclave's routing state. It is manipulated only by the
// enclave's kernel actor, so it needs no locking.
type Router struct {
	self   xproto.EnclaveID
	nsLink xproto.Link // channel toward the name server; nil at the NS itself
	routes map[xproto.EnclaveID]xproto.Link
	hops   map[uint64]xproto.Link // reqID → arrival link for hop-routed requests
}

// New returns an empty router.
func New() *Router {
	return &Router{
		routes: make(map[xproto.EnclaveID]xproto.Link),
		hops:   make(map[uint64]xproto.Link),
	}
}

// SetSelf records this enclave's allocated ID.
func (r *Router) SetSelf(id xproto.EnclaveID) { r.self = id }

// Self reports this enclave's ID (NoEnclave before bootstrap completes).
func (r *Router) Self() xproto.EnclaveID { return r.self }

// SetNSLink records the channel through which the name server is
// reachable (learned from the first PongNS).
func (r *Router) SetNSLink(l xproto.Link) { r.nsLink = l }

// NSLink reports the channel toward the name server, nil at the NS.
func (r *Router) NSLink() xproto.Link { return r.nsLink }

// HasPathToNS reports whether this enclave can reach the name server —
// true once bootstrapped, and always true at the NS itself.
func (r *Router) HasPathToNS() bool { return r.nsLink != nil || r.self == xproto.NameServerID }

// Learn records that enclave id is reachable via link.
func (r *Router) Learn(id xproto.EnclaveID, via xproto.Link) {
	if id == xproto.NoEnclave {
		return
	}
	r.routes[id] = via
}

// Forget drops the learned route for id — crash fanout when the enclave
// behind it died. Later messages for id fall back to the name-server
// route, where the name server answers StatusEnclaveDown.
func (r *Router) Forget(id xproto.EnclaveID) {
	delete(r.routes, id)
}

// Knows reports whether a direct route for id has been learned. The
// cluster builder uses it to pre-seed only the mesh routes passive
// learning has not already established.
func (r *Router) Knows(id xproto.EnclaveID) bool {
	_, ok := r.routes[id]
	return ok
}

// Route resolves the outgoing link for dst: the learned route if any,
// otherwise the default route toward the name server. ok is false when
// neither exists (at the name server for an unknown enclave — an
// undeliverable message).
func (r *Router) Route(dst xproto.EnclaveID) (xproto.Link, bool) {
	if l, ok := r.routes[dst]; ok {
		return l, true
	}
	if r.nsLink != nil {
		return r.nsLink, true
	}
	return nil, false
}

// TrackHop records the arrival link of a hop-routed request so its
// response can retrace the path (§3.2's outstanding request list).
func (r *Router) TrackHop(reqID uint64, via xproto.Link) error {
	if _, dup := r.hops[reqID]; dup {
		return fmt.Errorf("router: duplicate hop-tracked request %d", reqID)
	}
	r.hops[reqID] = via
	return nil
}

// TakeHop consumes the outstanding-request entry for reqID.
func (r *Router) TakeHop(reqID uint64) (xproto.Link, bool) {
	l, ok := r.hops[reqID]
	if ok {
		delete(r.hops, reqID)
	}
	return l, ok
}

// MinHops reports a conservative lower bound on the number of channel
// hops a message for dst traverses from this enclave: 1 when a direct
// route is learned, 2 otherwise (the default route detours via the name
// server before the eventual owner — at least one forwarding hop). The
// parallel engine multiplies this by the per-hop floor to derive
// cross-partition lookahead; underestimating is safe (a smaller
// lookahead only shrinks the window), overestimating is not.
func (r *Router) MinHops(dst xproto.EnclaveID) int {
	if _, ok := r.routes[dst]; ok {
		return 1
	}
	if dst == xproto.NameServerID && r.nsLink != nil {
		return 1
	}
	return 2
}

// KnownEnclaves lists the enclave IDs with learned routes, sorted.
func (r *Router) KnownEnclaves() []xproto.EnclaveID {
	out := make([]xproto.EnclaveID, 0, len(r.routes))
	for id := range r.routes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PendingHops lists the reqIDs with outstanding hop-routed requests,
// sorted (snapshot encoding and diagnostics).
func (r *Router) PendingHops() []uint64 {
	out := make([]uint64, 0, len(r.hops))
	for id := range r.hops {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RouteTable renders the routing state for diagnostics.
func (r *Router) RouteTable() string {
	s := fmt.Sprintf("enclave %d:", r.self)
	for _, id := range r.KnownEnclaves() {
		s += fmt.Sprintf(" %d→%s", id, r.routes[id])
	}
	if r.nsLink != nil {
		s += fmt.Sprintf(" default→%s", r.nsLink)
	}
	return s
}
