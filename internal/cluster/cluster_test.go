package cluster

import (
	"fmt"
	"testing"

	"xemem/internal/sim"
)

func TestAllreduceReleasesAtMaxPlusLatency(t *testing.T) {
	w := sim.NewWorld(1)
	b := NewAllreduce(3, 30*sim.Microsecond)
	var outs []sim.Time
	for i, d := range []sim.Time{100, 500, 300} {
		delay := d * sim.Microsecond
		w.Spawn(fmt.Sprintf("n%d", i), func(a *sim.Actor) {
			a.Advance(delay)
			b.Arrive(a)
			outs = append(outs, a.Now())
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := 530 * sim.Microsecond
	for _, o := range outs {
		if o != want {
			t.Fatalf("released at %v, want %v (all = %v)", o, want, outs)
		}
	}
	if b.Rounds != 1 {
		t.Fatalf("rounds = %d", b.Rounds)
	}
}

func TestAllreduceManyRounds(t *testing.T) {
	w := sim.NewWorld(9)
	const nodes, rounds = 8, 50
	b := NewAllreduce(nodes, 30*sim.Microsecond)
	finals := make([]sim.Time, nodes)
	for i := 0; i < nodes; i++ {
		id := i
		w.Spawn(fmt.Sprintf("n%d", i), func(a *sim.Actor) {
			rng := a.RNG()
			for r := 0; r < rounds; r++ {
				a.Advance(sim.Time(rng.Normal(1e6, 1e5)))
				b.Arrive(a)
			}
			finals[id] = a.Now()
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < nodes; i++ {
		if finals[i] != finals[0] {
			t.Fatalf("nodes desynchronized: %v vs %v", finals[i], finals[0])
		}
	}
	if b.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", b.Rounds, rounds)
	}
}

func TestAllreduceAmplifiesTailNoise(t *testing.T) {
	// The §7 mechanism: a coupled group finishes at the max of its
	// members' noise, so E[iteration] grows with N for noisy members.
	run := func(nodes int) sim.Time {
		w := sim.NewWorld(123)
		b := NewAllreduce(nodes, 30*sim.Microsecond)
		var final sim.Time
		for i := 0; i < nodes; i++ {
			w.Spawn(fmt.Sprintf("n%d", i), func(a *sim.Actor) {
				rng := a.RNG()
				for r := 0; r < 100; r++ {
					iter := sim.Time(rng.Normal(1e6, 0))
					if rng.Float64() < 0.05 { // occasional daemon burst
						iter += 2e6
					}
					a.Advance(iter)
					b.Arrive(a)
				}
				final = a.Now()
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return final
	}
	one, eight := run(1), run(8)
	if eight <= one {
		t.Fatalf("8-node run (%v) not slower than 1-node (%v)", eight, one)
	}
	// With p=0.05 per node per iteration, 8 nodes hit a burst most
	// iterations: expect a substantial stretch, not a rounding artifact.
	if float64(eight) < 1.1*float64(one) {
		t.Fatalf("amplification too weak: %v vs %v", eight, one)
	}
}

// TestAllreduceSpuriousWakeup is the regression test for the barrier's
// generation guard: Unblock targets an actor, not a wait, so any
// subsystem sharing actors with the barrier can wake a waiter before its
// generation completes. Without the `for gen == myGen` re-block loop, a
// spuriously woken waiter would release immediately with a stale (zero)
// releaseAt instead of at max(arrivals) + latency. A noise actor spams
// Unblock at the blocked waiters — under the conservative parallel
// engine, which is where an unguarded wait would also race — and every
// party must still leave at exactly the collective's completion time.
func TestAllreduceSpuriousWakeup(t *testing.T) {
	w := sim.NewWorld(3)
	w.SetParallel(2)
	b := NewAllreduce(3, 30*sim.Microsecond)
	parties := make([]*sim.Actor, 3)
	var outs []sim.Time
	for i, d := range []sim.Time{100, 500, 300} {
		delay := d * sim.Microsecond
		parties[i] = w.Spawn(fmt.Sprintf("n%d", i), func(a *sim.Actor) {
			a.Advance(delay)
			b.Arrive(a)
			outs = append(outs, a.Now())
		})
	}
	w.Spawn("noise", func(a *sim.Actor) {
		// Fires well past n0's and n2's arrivals but stays below the
		// 530µs release, so every wake it lands is spurious (Unblock on a
		// non-blocked actor is a no-op, so the unarrived are untouched).
		for i := 0; i < 40; i++ {
			a.Advance(7 * sim.Microsecond)
			for _, p := range parties {
				a.Unblock(p)
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := 530 * sim.Microsecond
	if len(outs) != 3 {
		t.Fatalf("%d parties released, want 3", len(outs))
	}
	for _, o := range outs {
		if o != want {
			t.Fatalf("spurious wakeup leaked through the generation guard: released at %v, want %v (all = %v)", o, want, outs)
		}
	}
	if b.Rounds != 1 {
		t.Fatalf("rounds = %d", b.Rounds)
	}
}

func TestSingleNodeBarrierIsLatencyOnly(t *testing.T) {
	w := sim.NewWorld(1)
	b := NewAllreduce(1, 30*sim.Microsecond)
	var final sim.Time
	w.Spawn("n0", func(a *sim.Actor) {
		for i := 0; i < 10; i++ {
			a.Advance(sim.Millisecond)
			b.Arrive(a)
		}
		final = a.Now()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := 10 * (sim.Millisecond + 30*sim.Microsecond)
	if final != want {
		t.Fatalf("final = %v, want %v", final, want)
	}
}
