package cluster

import (
	"fmt"
	"strings"
	"testing"

	"xemem/internal/nameserver"
	"xemem/internal/sim"
	"xemem/internal/sim/trace"
	"xemem/internal/xpmem"
)

const exchangePayload = "bytes across the interconnect"

// runExchange builds a cluster and runs one cross-node exchange: a
// producer on the last node's co-kernel exports and publishes a segment,
// a consumer on node 0's management enclave looks it up, attaches, reads
// it back, and re-gets it to exercise the lease cache. It returns the
// run's tracer (digest plus, when keepEvents is set, the event stream)
// and the built cluster for stats assertions.
func runExchange(t *testing.T, seed uint64, nodes, shards, workers int, keepEvents bool) (*trace.Tracer, *Cluster) {
	t.Helper()
	w := sim.NewWorld(seed)
	if workers > 1 {
		w.SetParallel(workers)
	}
	tr := trace.NewTracer(fmt.Sprintf("cluster/n%d/s%d", nodes, shards))
	tr.SetKeepEvents(keepEvents)
	w.SetObserver(tr)
	cl, err := NewInWorld(w, Config{Nodes: nodes, Shards: shards, CoKernels: true})
	if err != nil {
		t.Fatal(err)
	}

	last := cl.Nodes[nodes-1]
	prodSess, heap, err := last.X.KittenProcess(last.CK, "producer", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	consSess, consProc := cl.Nodes[0].X.LinuxProcess("consumer", 1)

	const segBytes = 64 << 12
	w.Spawn("producer", func(a *sim.Actor) {
		cl.WaitReady(a)
		if _, err := prodSess.Write(heap.Base, []byte(exchangePayload)); err != nil {
			t.Error(err)
			return
		}
		if _, err := prodSess.Make(a, heap.Base, segBytes, xpmem.PermRead, "cseg"); err != nil {
			t.Error(err)
		}
	})
	var got string
	w.Spawn("consumer", func(a *sim.Actor) {
		cl.WaitReady(a)
		var segid xpmem.Segid
		a.Poll(20*sim.Microsecond, func() bool {
			s, err := consSess.Lookup(a, "cseg")
			if err != nil {
				return false
			}
			segid = s
			return true
		})
		if shards > 0 {
			if home := nameserver.ShardOf(segid, shards); home < 0 || home >= shards {
				t.Errorf("segid %d homes to shard %d of %d", segid, home, shards)
			}
		}
		apid, err := consSess.Get(a, segid, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		va, err := consSess.Attach(a, segid, apid, 0, segBytes, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, len(exchangePayload))
		if _, err := consProc.AS.Read(va, buf); err != nil {
			t.Error(err)
			return
		}
		got = string(buf)
		if err := consSess.Detach(a, va); err != nil {
			t.Error(err)
			return
		}
		if err := consSess.Release(a, segid, apid); err != nil {
			t.Error(err)
			return
		}
		// A second get within the lease TTL must resolve from the cache.
		apid2, err := consSess.Get(a, segid, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		if err := consSess.Release(a, segid, apid2); err != nil {
			t.Error(err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != exchangePayload {
		t.Fatalf("consumer read %q across the fabric", got)
	}
	return tr, cl
}

func TestClusterFlatExchange(t *testing.T) {
	_, cl := runExchange(t, 7, 2, 0, 0, false)
	root := cl.Nodes[0].X.LinuxModule()
	if root.NS == nil || root.NS.SegidAllocs == 0 {
		t.Fatal("flat cluster did not allocate through the root name server")
	}
	if cl.Nodes[0].CK.Module.Sharded() {
		t.Fatal("flat cluster module reports sharded")
	}
}

func TestClusterShardedExchange(t *testing.T) {
	_, cl := runExchange(t, 7, 4, 2, 0, false)
	cons := cl.Nodes[0].X.LinuxModule()
	ss := cons.ShardStats
	if ss.LeaseMisses == 0 {
		t.Fatalf("no lease miss recorded: %+v", ss)
	}
	if ss.LeaseHits == 0 {
		t.Fatalf("second get did not hit the lease cache: %+v", ss)
	}
	// The producing co-kernel allocated through a shard replica; some
	// replica's instance must carry the registration before removal.
	var registered int
	for _, n := range cl.Nodes {
		if m := n.X.LinuxModule(); m.NS != nil {
			registered += m.NS.LiveSegids()
		}
	}
	if registered == 0 {
		t.Fatal("no shard replica holds the segment registration")
	}
	if len(cl.Map.Replicas) != 2 {
		t.Fatalf("shard map has %d shards", len(cl.Map.Replicas))
	}
}

// TestShardCountersReachTrace: the lease-cache and shard-routing
// counters flow through sim.Observer into the tracer's event stream —
// so they are part of the hashed digest, and a run whose lease behaviour
// changes cannot digest identically.
func TestShardCountersReachTrace(t *testing.T) {
	tr, cl := runExchange(t, 7, 4, 2, 0, true)
	counts := map[string]int{}
	for _, e := range tr.Events() {
		if e.Kind == trace.EvCount {
			counts[e.Op]++
		}
	}
	for _, name := range []string{"lease-hit", "lease-miss", "shard-sync"} {
		if counts[name] == 0 {
			t.Errorf("counter %q never reached the trace: %v", name, counts)
		}
	}
	var routed int
	for name, n := range counts {
		if strings.HasPrefix(name, "shard-route:") {
			routed += n
		}
	}
	if routed == 0 {
		t.Errorf("no shard-route:* counter reached the trace: %v", counts)
	}
	// The traced counts agree with the module-side stats the sweep sums.
	var hits, misses int
	for _, m := range cl.Modules() {
		hits += m.ShardStats.LeaseHits
		misses += m.ShardStats.LeaseMisses
	}
	if counts["lease-hit"] != hits || counts["lease-miss"] != misses {
		t.Errorf("trace counted %d hits / %d misses, modules %d / %d",
			counts["lease-hit"], counts["lease-miss"], hits, misses)
	}
}

// TestClusterDigestStability pins the determinism contract: identical
// configurations replay byte-identically, and the conservative parallel
// engine produces the serial digest (every cluster actor lives in
// partition 0, so the window barrier changes nothing).
func TestClusterDigestStability(t *testing.T) {
	tr1, _ := runExchange(t, 11, 4, 2, 0, false)
	tr2, _ := runExchange(t, 11, 4, 2, 0, false)
	d1, d2 := tr1.Digest(), tr2.Digest()
	if d1 != d2 {
		t.Fatalf("replay diverged:\n%+v\n%+v", d1, d2)
	}
	trp, _ := runExchange(t, 11, 4, 2, 2, false)
	if dp := trp.Digest(); d1 != dp {
		t.Fatalf("SetParallel(2) diverged from serial:\n%+v\n%+v", d1, dp)
	}
}
