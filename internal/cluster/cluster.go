// Package cluster provides the multi-node coupling for the §7 weak-
// scaling experiments: the allreduce barrier that ties the per-node HPC
// simulation components together at every conjugate-gradient iteration
// (the paper's HPCCG build uses OpenMPI collectives over InfiniBand).
//
// The barrier is where OS noise amplifies with scale: a global iteration
// finishes when the *slowest* node arrives, so per-node noise that is
// negligible locally (a daemon burst on one Linux node) stretches every
// node's iteration. The multi-enclave configuration's flat scaling in
// Fig. 9 is precisely the absence of that tail.
package cluster

import "xemem/internal/sim"

// Allreduce is an N-party barrier with a fixed collective latency. All
// parties leave at max(arrival times) + latency.
type Allreduce struct {
	n       int
	latency sim.Time

	arrived   int
	maxT      sim.Time
	releaseAt sim.Time
	waiters   []*sim.Actor
	gen       int // completed-generation counter; guards spurious wakeups

	// Rounds counts completed barrier generations.
	Rounds int
}

// NewAllreduce creates a barrier for n parties with the given collective
// latency (wire + switch + software for the node count).
func NewAllreduce(n int, latency sim.Time) *Allreduce {
	if n < 1 {
		panic("cluster: allreduce over zero parties")
	}
	return &Allreduce{n: n, latency: latency}
}

// Arrive joins the current barrier generation, blocking until every party
// has arrived, and returns with the actor's clock at the collective's
// completion time.
func (b *Allreduce) Arrive(a *sim.Actor) {
	if a.Now() > b.maxT {
		b.maxT = a.Now()
	}
	b.arrived++
	if b.arrived < b.n {
		myGen := b.gen
		b.waiters = append(b.waiters, a)
		// An actor sharing state with other subsystems can be woken
		// spuriously (any Unblock targets the actor, not the wait);
		// re-block until this generation actually completes.
		for b.gen == myGen {
			a.Block("allreduce")
		}
		a.AdvanceTo(b.releaseAt)
		return
	}
	// Last arriver releases the generation.
	b.releaseAt = b.maxT + b.latency
	b.arrived = 0
	b.maxT = 0
	b.gen++
	b.Rounds++
	ws := b.waiters
	b.waiters = nil
	for _, w := range ws {
		a.Unblock(w)
	}
	a.AdvanceTo(b.releaseAt)
}
