package cluster

// Multi-node cluster builder. A Cluster places N simulated machines in
// one world, each built through the standard xemem.Node substrate (Linux
// management enclave, optional Kitten co-kernel), and couples them with
// an InfiniBand fabric (internal/rdma.Fabric): every pair of management
// enclaves shares an RDMA message channel, so the §3.2 joining protocol,
// segment commands, and page-frame lists all travel the modelled wire.
//
// Node 0's management enclave hosts the root name server (enclave-ID
// allocation and, in flat clusters, the whole segment namespace). With
// Config.Shards > 0 the segment namespace is instead partitioned across
// shard replicas hosted on member nodes' management enclaves, and every
// module gains a lease cache over owner resolutions — the sharded name
// service the cluster-scale experiments measure against the flat one.

import (
	"fmt"

	"xemem"
	"xemem/internal/core"
	"xemem/internal/extent"
	"xemem/internal/pisces"
	"xemem/internal/rdma"
	"xemem/internal/sim"
	"xemem/internal/xproto"
)

// Config sizes a cluster.
type Config struct {
	// Nodes is the machine count (>= 1).
	Nodes int
	// Shards partitions the segment namespace across this many name-
	// service shards. 0 keeps the flat deployment: every name-service
	// operation funnels to node 0's root enclave over the fabric.
	Shards int
	// Replicas is the replica count per shard (default 2, primary
	// first). Shards*Replicas must not exceed Nodes — replicas live on
	// distinct nodes' management enclaves.
	Replicas int
	// LeaseTTL bounds how long an attacher trusts a cached segid→owner
	// resolution (default 1ms of virtual time). Sharded clusters only.
	LeaseTTL sim.Time
	// MemBytes is each node's physical memory (default 4 GB).
	MemBytes uint64
	// CoKernels boots one Kitten co-kernel per node — the workload
	// enclave the cluster experiments export segments from. CKBytes
	// sizes its partition (default 256 MB).
	CoKernels bool
	CKBytes   uint64
	// Seed drives every random stream (New only; NewInWorld inherits
	// the world's).
	Seed uint64
	// Costs overrides the calibrated cost model (nil = DefaultCosts).
	Costs *sim.Costs
}

func (cfg *Config) withDefaults() error {
	if cfg.Nodes < 1 {
		return fmt.Errorf("cluster: %d nodes", cfg.Nodes)
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas < 1 {
		return fmt.Errorf("cluster: %d replicas per shard", cfg.Replicas)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("cluster: %d shards", cfg.Shards)
	}
	if cfg.Shards > 0 && cfg.Shards*cfg.Replicas > cfg.Nodes {
		return fmt.Errorf("cluster: %d shards x %d replicas need more than %d nodes",
			cfg.Shards, cfg.Replicas, cfg.Nodes)
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = sim.Millisecond
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 4 << 30
	}
	if cfg.CKBytes == 0 {
		cfg.CKBytes = 256 << 20
	}
	return nil
}

// Node is one cluster machine.
type Node struct {
	Index int
	X     *xemem.Node
	CK    *pisces.CoKernel // nil unless Config.CoKernels
}

// Modules lists the node's enclave modules in construction order.
func (n *Node) Modules() []*core.Module {
	mods := []*core.Module{n.X.LinuxModule()}
	if n.CK != nil {
		mods = append(mods, n.CK.Module)
	}
	return mods
}

// Cluster is a built multi-node world.
type Cluster struct {
	W     *sim.World
	Costs *sim.Costs
	Fab   *rdma.Fabric
	Nodes []*Node
	// Map is the installed shard layout, nil in flat clusters. It is
	// populated by the setup daemon; read it only after WaitReady.
	Map *core.ShardMap

	cfg   Config
	links [][]*rlink // links[i][j]: endpoint at node i toward node j
	// nodeOf maps every enclave to its machine, filled in by the setup
	// actor once bootstrap has assigned IDs.
	nodeOf map[xproto.EnclaveID]int
	ready  bool
}

// New builds a cluster in a fresh world.
func New(cfg Config) (*Cluster, error) {
	return NewInWorld(sim.NewWorld(cfg.Seed), cfg)
}

// NewInWorld builds a cluster inside an existing world: the nodes, the
// fabric mesh between their management enclaves, and a setup actor that
// — once every enclave has bootstrapped — seeds the cross-node routing
// mesh and installs the shard layout. Workload actors must WaitReady
// before issuing segment operations.
func NewInWorld(w *sim.World, cfg Config) (*Cluster, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	costs := cfg.Costs
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	cl := &Cluster{
		W: w, Costs: costs, cfg: cfg,
		Fab:    rdma.NewFabric("cluster", costs, cfg.Nodes),
		links:  make([][]*rlink, cfg.Nodes),
		nodeOf: make(map[xproto.EnclaveID]int),
	}
	for i := range cl.links {
		cl.links[i] = make([]*rlink, cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		x := xemem.NewNodeInWorld(w, costs, xemem.NodeConfig{
			Name:         fmt.Sprintf("node%d", i),
			Seed:         cfg.Seed,
			MemBytes:     cfg.MemBytes,
			NoNameServer: i > 0,
		})
		n := &Node{Index: i, X: x}
		cl.Nodes = append(cl.Nodes, n)
		for j := 0; j < i; j++ {
			cl.connect(j, i)
		}
		if cfg.CoKernels {
			ck, err := x.BootCoKernel("ck", cfg.CKBytes)
			if err != nil {
				return nil, err
			}
			n.CK = ck
		}
		for _, m := range n.Modules() {
			m.SetNIC(&nic{cl: cl, node: i})
		}
	}
	w.Spawn("cluster/setup", cl.setup)
	return cl, nil
}

// connect wires the fabric channel between nodes i and j's management
// enclaves. The queue-pair setup cost is charged by the setup actor, so
// the links themselves carry no mutable state (snapshot-fork safety).
func (cl *Cluster) connect(i, j int) {
	a, b := cl.Nodes[i].X.LinuxModule(), cl.Nodes[j].X.LinuxModule()
	ij := &rlink{name: fmt.Sprintf("ib:node%d->node%d", i, j), c: cl.Costs, fab: cl.Fab, src: i, dst: j, in: b.In}
	ji := &rlink{name: fmt.Sprintf("ib:node%d->node%d", j, i), c: cl.Costs, fab: cl.Fab, src: j, dst: i, in: a.In}
	ij.peer, ji.peer = ji, ij
	a.AddLink(ij)
	b.AddLink(ji)
	cl.links[i][j], cl.links[j][i] = ij, ji
}

// setup runs once the world starts: it waits for every enclave's
// bootstrap, pays the one-time RDMA queue-pair setup per channel
// direction, seeds every management enclave's routing table with the
// full cross-node mesh (a real deployment exchanges these maps during
// the joining protocol; pre-seeding keeps segment traffic off the
// hop-routed slow path), and installs the shard layout.
func (cl *Cluster) setup(a *sim.Actor) {
	for _, n := range cl.Nodes {
		for _, m := range n.Modules() {
			m.WaitReady(a)
			cl.nodeOf[m.EnclaveID()] = n.Index
		}
	}
	for i := range cl.Nodes {
		for j := range cl.Nodes {
			if i != j {
				a.Charge("rdma-setup", cl.Costs.RDMASetup)
			}
		}
	}
	for i, ni := range cl.Nodes {
		lm := ni.X.LinuxModule()
		for j, nj := range cl.Nodes {
			if i == j {
				continue
			}
			via := cl.links[i][j]
			for _, m := range nj.Modules() {
				if id := m.EnclaveID(); id != xproto.NoEnclave && !lm.R.Knows(id) {
					lm.R.Learn(id, via)
				}
			}
		}
	}
	if cl.cfg.Shards > 0 {
		cl.installShards()
	}
	cl.ready = true
}

// installShards places shard k's replica r on node (k*Replicas+r)'s
// management enclave — distinct nodes for every replica, and node 0
// (whose root instance keeps hosting enclave-ID allocation) always
// carries shard 0's primary — then hands every module the shard map.
func (cl *Cluster) installShards() {
	s, r := cl.cfg.Shards, cl.cfg.Replicas
	replicas := make([][]xproto.EnclaveID, s)
	for k := 0; k < s; k++ {
		for i := 0; i < r; i++ {
			host := cl.Nodes[k*r+i].X.LinuxModule()
			host.HostShardNS(k, i, s, r)
			replicas[k] = append(replicas[k], host.EnclaveID())
		}
	}
	cl.Map = &core.ShardMap{Replicas: replicas, LeaseTTL: cl.cfg.LeaseTTL}
	for _, n := range cl.Nodes {
		for _, m := range n.Modules() {
			m.SetShardMap(cl.Map)
		}
	}
}

// Ready reports whether cluster setup has completed.
func (cl *Cluster) Ready() bool { return cl.ready }

// WaitReady blocks the workload actor until setup completes.
func (cl *Cluster) WaitReady(a *sim.Actor) {
	a.Poll(10*sim.Microsecond, func() bool { return cl.ready })
}

// Modules lists every enclave module in the cluster, node-major in
// construction order (fault registration, snapshot loaders).
func (cl *Cluster) Modules() []*core.Module {
	var mods []*core.Module
	for _, n := range cl.Nodes {
		mods = append(mods, n.Modules()...)
	}
	return mods
}

// nic is the per-node core.NIC implementation: it answers machine
// locality from the cluster's enclave→node map and mirrors cross-node
// attachments by pulling the owner's bytes over the fabric into frames
// from this node's management zone (the RDMA-read bounce buffer a real
// multi-node XPMEM bridge would use).
type nic struct {
	cl   *Cluster
	node int
}

// Remote reports whether owner's memory lives on another machine.
// Enclaves the cluster does not know (e.g. VMs booted by workloads after
// setup) are treated as local, preserving single-machine behaviour.
func (n *nic) Remote(owner xproto.EnclaveID) bool {
	home, ok := n.cl.nodeOf[owner]
	return ok && home != n.node
}

// MirrorFrames pulls the owner's frame bytes across the fabric into
// freshly allocated local frames.
func (n *nic) MirrorFrames(a *sim.Actor, owner xproto.EnclaveID, list extent.List) (extent.List, error) {
	home := n.cl.nodeOf[owner]
	local, err := n.cl.Nodes[n.node].X.Linux().Zone().AllocScattered(list.Pages(), 512)
	if err != nil {
		return extent.List{}, err
	}
	if err := n.cl.Fab.Transfer(a, home, n.node, int(list.Bytes())); err != nil {
		return extent.List{}, err
	}
	buf := make([]byte, list.Bytes())
	if err := n.cl.Nodes[home].X.Phys().ReadAt(list, 0, buf); err != nil {
		return extent.List{}, err
	}
	if err := n.cl.Nodes[n.node].X.Phys().WriteAt(local, 0, buf); err != nil {
		return extent.List{}, err
	}
	return local, nil
}

// FreeMirror returns mirrored frames to the node's management zone.
func (n *nic) FreeMirror(list extent.List) {
	if err := n.cl.Nodes[n.node].X.Linux().Zone().Free(list); err != nil {
		panic(fmt.Sprintf("cluster: freeing mirror frames: %v", err))
	}
}

// rlink is one direction of a cross-node RDMA message channel: the
// encoded message crosses the fabric (source HCA egress, switch hop,
// destination ingress) and lands in the peer enclave's inbox with a
// completion interrupt. Queue-pair setup is paid once at cluster setup,
// so the link is stateless.
type rlink struct {
	name     string
	c        *sim.Costs
	fab      *rdma.Fabric
	src, dst int
	peer     *rlink
	in       *xproto.Inbox
}

// Send moves the encoded message over the fabric and raises the
// completion interrupt at the destination.
func (l *rlink) Send(a *sim.Actor, m *xproto.Message) {
	buf := m.AppendEncode(l.in.GetBuf(m.EncodedSize()))
	if err := l.fab.Transfer(a, l.src, l.dst, len(buf)); err != nil {
		panic(fmt.Sprintf("cluster: %s: %v", l.name, err)) // static topology: unreachable
	}
	a.Charge("ipi", l.c.IPILatency)
	l.in.Put(a, buf, l.peer)
}

// String names the link.
func (l *rlink) String() string { return l.name }
