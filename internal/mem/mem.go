// Package mem simulates a node's physical memory: NUMA zones with
// contiguous-block and scattered allocation, sparse frame contents, and
// frame pinning.
//
// Frames hold real bytes, materialized lazily on first write, so the
// simulation can model a 32 GB node without allocating 32 GB of host
// memory while still giving zero-copy semantics: when an attaching process
// in one enclave maps the frames exported by a process in another enclave,
// both resolve to the same backing array and see each other's writes.
package mem

import (
	"fmt"
	"sort"

	"xemem/internal/extent"
	"xemem/internal/sim/snapshot"
)

// PageSize and PageShift mirror the extent package's base granularity.
const (
	PageSize  = extent.PageSize
	PageShift = extent.PageShift
)

// PFN is re-exported for convenience.
type PFN = extent.PFN

// PhysMem is one node's host physical memory.
type PhysMem struct {
	name   string
	zones  []*Zone
	frames map[PFN][]byte
	// slab is the bump allocator backing newly materialized frames: one
	// slabPages-page host allocation is carved into page-sized backing
	// arrays instead of a make per frame. Only NEW frames draw from it —
	// a freed-and-reallocated frame keeps its old array (and stale
	// contents), exactly as before.
	slab []byte //xemem:nosnap -- host-side allocator free pool; frame contents are snapshotted per-frame and a restored world carves fresh slabs on demand
	// pins counts pin references per extent. Pin/Unpin operate on whole
	// frame lists and must be symmetric (unpin what was pinned); keeping
	// intervals instead of per-page counts makes pinning a 1 GB region
	// O(extents) instead of O(pages).
	pins map[extent.Extent]int
}

// slabPages is how many frame backings one slab allocation yields: 64
// pages = 256 KB per host allocation, amortizing a 1 GB attach's
// materialization from 262144 allocations to 4096.
const slabPages = 64

// framesHint caps the frames map's pre-sized bucket count. Most worlds
// touch a tiny fraction of their simulated memory; the hint only needs to
// cover the common warm-up so early growth rehashes disappear.
const framesHint = 4096

// NewPhysMem creates physical memory with one zone per given size (in
// bytes, rounded down to whole pages), modelling NUMA sockets. Frame
// numbers start at 0x100 to catch null-frame bugs.
func NewPhysMem(name string, zoneBytes ...uint64) *PhysMem {
	var pages uint64
	for _, zb := range zoneBytes {
		pages += zb / PageSize
	}
	hint := uint64(framesHint)
	if pages < hint {
		hint = pages
	}
	m := &PhysMem{
		name:   name,
		frames: make(map[PFN][]byte, hint),
		pins:   make(map[extent.Extent]int),
	}
	// Zones start 2 MB-aligned (512 frames) so aligned allocations within
	// them can be large-page mapped.
	next := PFN(0x200)
	for i, zb := range zoneBytes {
		pages := zb / PageSize
		z := &Zone{
			id:    i,
			start: next,
			limit: next + PFN(pages),
			owner: m,
		}
		z.free = []extent.Extent{{First: z.start, Count: pages}}
		z.freePages = pages
		m.zones = append(m.zones, z)
		next = z.limit
	}
	return m
}

// Name reports the node name this memory belongs to.
func (m *PhysMem) Name() string { return m.name }

// NumZones reports the number of NUMA zones.
func (m *PhysMem) NumZones() int { return len(m.zones) }

// Zone returns NUMA zone i.
func (m *PhysMem) Zone(i int) *Zone { return m.zones[i] }

// valid reports whether f lies within any zone.
func (m *PhysMem) valid(f PFN) bool {
	for _, z := range m.zones {
		if f >= z.start && f < z.limit {
			return true
		}
	}
	return false
}

// Frame returns the backing bytes of frame f, materializing them on first
// use. It panics on frames outside every zone — that is a simulation bug,
// the moral equivalent of a machine check.
func (m *PhysMem) Frame(f PFN) []byte {
	if !m.valid(f) {
		panic(fmt.Sprintf("mem: access to invalid frame %#x on %s", uint64(f), m.name))
	}
	b, ok := m.frames[f]
	if !ok {
		if len(m.slab) < PageSize {
			m.slab = make([]byte, slabPages*PageSize)
		}
		// Full slice-cap so appends through one frame's slice can never
		// bleed into its slab neighbour.
		b = m.slab[:PageSize:PageSize]
		m.slab = m.slab[PageSize:]
		m.frames[f] = b
	}
	return b
}

// Materialized reports whether frame f has backing bytes yet (i.e. has
// ever been written). Reading an unmaterialized frame yields zeros without
// materializing it.
func (m *PhysMem) Materialized(f PFN) bool {
	_, ok := m.frames[f]
	return ok
}

// ReadAt copies bytes out of the frame list l starting at byte offset off.
func (m *PhysMem) ReadAt(l extent.List, off uint64, p []byte) error {
	return m.access(l, off, p, false)
}

// WriteAt copies p into the frame list l starting at byte offset off.
func (m *PhysMem) WriteAt(l extent.List, off uint64, p []byte) error {
	return m.access(l, off, p, true)
}

func (m *PhysMem) access(l extent.List, off uint64, p []byte, write bool) error {
	if off+uint64(len(p)) > l.Bytes() {
		return fmt.Errorf("mem: access [%d,+%d) beyond %d-byte region", off, len(p), l.Bytes())
	}
	// Iterate the extent runs directly rather than resolving every page
	// through l.Page (which scans the extents from the start each call and
	// made large copies O(pages × extents)). Frames are still touched one at
	// a time because each materializes its own 4 KB backing array.
	for _, e := range l.Extents() {
		if len(p) == 0 {
			break
		}
		eb := e.Count * PageSize
		if off >= eb {
			off -= eb
			continue
		}
		f := e.First + PFN(off/PageSize)
		inPage := off % PageSize
		end := e.First + PFN(e.Count)
		for len(p) > 0 && f < end {
			n := PageSize - inPage
			if n > uint64(len(p)) {
				n = uint64(len(p))
			}
			if write {
				copy(m.Frame(f)[inPage:inPage+n], p[:n])
			} else if m.Materialized(f) {
				copy(p[:n], m.Frame(f)[inPage:inPage+n])
			} else {
				for i := range p[:n] {
					p[i] = 0
				}
			}
			p = p[n:]
			inPage = 0
			f++
		}
		off = 0
	}
	return nil
}

// Pin increments the pin count of every extent in l, preventing the
// frames from being freed — the get_user_pages analogue (§4.3). Unpin
// must later be called with the same extent shapes.
func (m *PhysMem) Pin(l extent.List) {
	for _, e := range l.Extents() {
		m.pins[e]++
	}
}

// Unpin decrements pin counts previously taken by Pin. The extents must
// match a prior Pin exactly.
func (m *PhysMem) Unpin(l extent.List) error {
	for _, e := range l.Extents() {
		if m.pins[e] == 0 {
			return fmt.Errorf("mem: unpin of unpinned extent %v", e)
		}
		m.pins[e]--
		if m.pins[e] == 0 {
			delete(m.pins, e)
		}
	}
	return nil
}

// Pinned reports the pin count covering frame f (the sum over pinned
// intervals containing it).
func (m *PhysMem) Pinned(f PFN) int {
	n := 0
	for e, c := range m.pins {
		if e.Contains(f) {
			n += c
		}
	}
	return n
}

// pinnedOverlap reports whether any pinned interval overlaps e.
func (m *PhysMem) pinnedOverlap(e extent.Extent) bool {
	for p := range m.pins {
		if e.First < p.End() && p.First < e.End() {
			return true
		}
	}
	return false
}

// EncodeSnapshot appends the memory's full state to e: per-zone allocator
// state, every materialized frame's contents (collected and sorted by PFN
// — the frames map's iteration order is host-dependent), and the pin
// table sorted by extent. The slab bump allocator is host bookkeeping and
// is not captured; a restored memory materializes into fresh slabs.
func (m *PhysMem) EncodeSnapshot(e *snapshot.Enc) {
	e.Str(m.name)
	e.U64(uint64(len(m.zones)))
	for _, z := range m.zones {
		e.U64(uint64(z.start))
		e.U64(uint64(z.limit))
		e.U64(z.freePages)
		e.U64(uint64(z.rotor))
		e.U64(uint64(len(z.free)))
		for _, fe := range z.free {
			e.U64(uint64(fe.First))
			e.U64(fe.Count)
		}
	}
	pfns := make([]PFN, 0, len(m.frames))
	for f := range m.frames {
		pfns = append(pfns, f)
	}
	sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
	e.U64(uint64(len(pfns)))
	for _, f := range pfns {
		e.U64(uint64(f))
		e.Blob(m.frames[f])
	}
	pins := make([]extent.Extent, 0, len(m.pins))
	for p := range m.pins {
		pins = append(pins, p)
	}
	sort.Slice(pins, func(i, j int) bool {
		if pins[i].First != pins[j].First {
			return pins[i].First < pins[j].First
		}
		return pins[i].Count < pins[j].Count
	})
	e.U64(uint64(len(pins)))
	for _, p := range pins {
		e.U64(uint64(p.First))
		e.U64(p.Count)
		e.U64(uint64(m.pins[p]))
	}
}

// LoadSnapshot overwrites the memory's state from a section encoded by
// EncodeSnapshot. The receiver must have been constructed with the same
// geometry (name, zone count, zone bounds) — the recipe guarantees that;
// a mismatch or malformed section yields snapshot.ErrCorrupt without
// assuming anything about the remaining bytes.
func (m *PhysMem) LoadSnapshot(d *snapshot.Dec) error {
	corrupt := func(what string) error {
		return fmt.Errorf("mem: %s: %w", what, snapshot.ErrCorrupt)
	}
	if name := d.Str(); d.Err() == nil && name != m.name {
		return corrupt("snapshot for memory " + name + ", not " + m.name)
	}
	if n := d.U64(); d.Err() == nil && n != uint64(len(m.zones)) {
		return corrupt("zone count mismatch")
	}
	for _, z := range m.zones {
		start, limit := PFN(d.U64()), PFN(d.U64())
		if d.Err() == nil && (start != z.start || limit != z.limit) {
			return corrupt("zone geometry mismatch")
		}
		freePages := d.U64()
		rotor := int(d.U64())
		nfree := d.U64()
		free := make([]extent.Extent, 0, min64(nfree, 1024))
		for i := uint64(0); i < nfree && d.Err() == nil; i++ {
			free = append(free, extent.Extent{First: PFN(d.U64()), Count: d.U64()})
		}
		if d.Err() != nil {
			return d.Err()
		}
		z.free, z.freePages, z.rotor = free, freePages, rotor
	}
	nframes := d.U64()
	// Drop current contents: frames not present in the image were never
	// materialized at the cut.
	m.frames = make(map[PFN][]byte, min64(nframes, framesHint))
	for i := uint64(0); i < nframes && d.Err() == nil; i++ {
		f := PFN(d.U64())
		b := d.Blob()
		if d.Err() != nil {
			break
		}
		if !m.valid(f) {
			return corrupt(fmt.Sprintf("frame %#x outside every zone", uint64(f)))
		}
		if len(b) != PageSize {
			return corrupt(fmt.Sprintf("frame %#x has %d bytes", uint64(f), len(b)))
		}
		copy(m.Frame(f), b)
	}
	npins := d.U64()
	pins := make(map[extent.Extent]int, min64(npins, 1024))
	for i := uint64(0); i < npins && d.Err() == nil; i++ {
		p := extent.Extent{First: PFN(d.U64()), Count: d.U64()}
		pins[p] = int(d.U64())
	}
	if d.Err() != nil {
		return d.Err()
	}
	m.pins = pins
	return nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ZoneFromExtent creates an allocator over an arbitrary extent of this
// memory. Pisces uses it when it offlines a contiguous block from the
// Linux management enclave and hands it to a co-kernel: the block's pages
// remain valid frames of the host memory, but a fresh allocator owns them.
func (m *PhysMem) ZoneFromExtent(id int, e extent.Extent) *Zone {
	if !m.valid(e.First) || !m.valid(e.End()-1) {
		panic(fmt.Sprintf("mem: zone extent %v outside physical memory", e))
	}
	return &Zone{
		id:        id,
		start:     e.First,
		limit:     e.End(),
		owner:     m,
		free:      []extent.Extent{e},
		freePages: e.Count,
	}
}

// NewDetachedZone creates an allocator over a frame-number space that is
// not backed by this node's host memory — Palacios uses one for each VM's
// guest-physical address space, whose frames translate to host frames
// through the VMM memory map rather than identity.
func NewDetachedZone(id int, e extent.Extent) *Zone {
	return &Zone{
		id:        id,
		start:     e.First,
		limit:     e.End(),
		owner:     nil,
		free:      []extent.Extent{e},
		freePages: e.Count,
	}
}

// Zone is a NUMA memory zone with a first-fit extent allocator.
type Zone struct {
	id        int
	start     PFN
	limit     PFN
	owner     *PhysMem
	free      []extent.Extent // sorted by First, non-adjacent
	freePages uint64
	// rotor distributes scattered allocations across free extents to model
	// the fragmentation of a long-running fullweight OS allocator.
	rotor int
}

// ID reports the zone's NUMA index.
func (z *Zone) ID() int { return z.id }

// Pages reports the zone's total page count.
func (z *Zone) Pages() uint64 { return uint64(z.limit - z.start) }

// FreePages reports the number of currently free pages.
func (z *Zone) FreePages() uint64 { return z.freePages }

// AllocContig allocates n physically contiguous pages (first fit). This is
// how co-kernel enclaves receive their memory blocks: Pisces hands whole
// contiguous regions to Kitten instances.
func (z *Zone) AllocContig(n uint64) (extent.Extent, error) {
	return z.AllocContigAligned(n, 1)
}

// AllocContigAligned allocates n physically contiguous pages whose first
// frame is a multiple of align. Large allocations use 2 MB alignment
// (align=512) so page tables can map them with large leaves, as a real
// kernel's hugepage-backed buffers would be.
func (z *Zone) AllocContigAligned(n, align uint64) (extent.Extent, error) {
	if n == 0 {
		return extent.Extent{}, fmt.Errorf("mem: zero-page allocation")
	}
	if align == 0 {
		align = 1
	}
	for i, e := range z.free {
		first := (uint64(e.First) + align - 1) / align * align
		skip := first - uint64(e.First)
		if e.Count < skip+n {
			continue
		}
		out := extent.Extent{First: PFN(first), Count: n}
		// Carve [first, first+n) out of the free extent, possibly
		// leaving a head fragment.
		tailFirst := out.End()
		tailCount := e.End() - tailFirst
		if skip > 0 {
			z.free[i].Count = skip
			if tailCount > 0 {
				z.free = append(z.free, extent.Extent{})
				copy(z.free[i+2:], z.free[i+1:])
				z.free[i+1] = extent.Extent{First: tailFirst, Count: uint64(tailCount)}
			}
		} else if tailCount > 0 {
			z.free[i] = extent.Extent{First: tailFirst, Count: uint64(tailCount)}
		} else {
			z.free = append(z.free[:i], z.free[i+1:]...)
		}
		z.freePages -= n
		return out, nil
	}
	return extent.Extent{}, fmt.Errorf("mem: zone %d cannot satisfy %d contiguous pages aligned %d (%d free)", z.id, n, align, z.freePages)
}

// AllocScattered allocates n pages as chunks of at most chunk pages drawn
// round-robin from distinct free extents — the fragmented allocation
// pattern of a fullweight OS. The resulting list is genuinely
// non-contiguous whenever the zone has multiple free extents.
func (z *Zone) AllocScattered(n, chunk uint64) (extent.List, error) {
	if chunk == 0 {
		chunk = 1
	}
	if n > z.freePages {
		return extent.List{}, fmt.Errorf("mem: zone %d cannot satisfy %d pages (%d free)", z.id, n, z.freePages)
	}
	var out extent.List
	for n > 0 {
		if len(z.free) == 0 {
			panic("mem: freePages inconsistent with free list")
		}
		z.rotor %= len(z.free)
		e := &z.free[z.rotor]
		take := chunk
		if take > e.Count {
			take = e.Count
		}
		if take > n {
			take = n
		}
		// Take from the tail of the extent so consecutive chunks from the
		// same extent are in descending order and never coalesce in the
		// output list.
		first := e.First + PFN(e.Count-take)
		e.Count -= take
		if e.Count == 0 {
			z.free = append(z.free[:z.rotor], z.free[z.rotor+1:]...)
		} else {
			z.rotor++
		}
		z.freePages -= take
		out.Append(first, take)
		n -= take
	}
	return out, nil
}

// Free returns the frames of l to the zone. Freeing a pinned or
// already-free frame is an error.
func (z *Zone) Free(l extent.List) error {
	for _, e := range l.Extents() {
		if e.First < z.start || e.End() > z.limit {
			return fmt.Errorf("mem: free of %v outside zone %d", e, z.id)
		}
		if z.owner != nil && z.owner.pinnedOverlap(e) {
			return fmt.Errorf("mem: free of pinned extent %v", e)
		}
		if err := z.insertFree(e); err != nil {
			return err
		}
		z.freePages += e.Count
	}
	return nil
}

// insertFree merges e back into the sorted free list.
func (z *Zone) insertFree(e extent.Extent) error {
	i := sort.Search(len(z.free), func(i int) bool { return z.free[i].First >= e.First })
	// Overlap checks against neighbours (double free detection).
	if i > 0 && z.free[i-1].End() > e.First {
		return fmt.Errorf("mem: double free of %v", e)
	}
	if i < len(z.free) && e.End() > z.free[i].First {
		return fmt.Errorf("mem: double free of %v", e)
	}
	z.free = append(z.free, extent.Extent{})
	copy(z.free[i+1:], z.free[i:])
	z.free[i] = e
	// Merge with successor, then predecessor.
	if i+1 < len(z.free) && z.free[i].End() == z.free[i+1].First {
		z.free[i].Count += z.free[i+1].Count
		z.free = append(z.free[:i+1], z.free[i+2:]...)
	}
	if i > 0 && z.free[i-1].End() == z.free[i].First {
		z.free[i-1].Count += z.free[i].Count
		z.free = append(z.free[:i], z.free[i+1:]...)
	}
	return nil
}

// FreeExtents reports a copy of the free list (diagnostics and tests).
func (z *Zone) FreeExtents() []extent.Extent {
	out := make([]extent.Extent, len(z.free))
	copy(out, z.free)
	return out
}
