package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"xemem/internal/extent"
)

func newTestMem() *PhysMem {
	return NewPhysMem("node0", 16<<20, 16<<20) // two 16 MB zones
}

func TestZoneGeometry(t *testing.T) {
	m := newTestMem()
	if m.NumZones() != 2 {
		t.Fatalf("zones = %d", m.NumZones())
	}
	if got := m.Zone(0).Pages(); got != 4096 {
		t.Fatalf("zone0 pages = %d, want 4096", got)
	}
	if m.Zone(0).FreePages() != 4096 {
		t.Fatalf("zone0 free = %d", m.Zone(0).FreePages())
	}
}

func TestAllocContigAndFree(t *testing.T) {
	z := newTestMem().Zone(0)
	a, err := z.AllocContig(100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != 100 {
		t.Fatalf("count = %d", a.Count)
	}
	b, err := z.AllocContig(50)
	if err != nil {
		t.Fatal(err)
	}
	if a.End() != b.First {
		t.Fatalf("first-fit should be adjacent: %v then %v", a, b)
	}
	if z.FreePages() != 4096-150 {
		t.Fatalf("free = %d", z.FreePages())
	}
	if err := z.Free(extent.FromExtents(a)); err != nil {
		t.Fatal(err)
	}
	if err := z.Free(extent.FromExtents(b)); err != nil {
		t.Fatal(err)
	}
	if z.FreePages() != 4096 {
		t.Fatalf("free after frees = %d", z.FreePages())
	}
	if got := len(z.FreeExtents()); got != 1 {
		t.Fatalf("free list should have coalesced to 1 extent, has %d", got)
	}
}

func TestAllocContigExhaustion(t *testing.T) {
	z := newTestMem().Zone(0)
	if _, err := z.AllocContig(4097); err == nil {
		t.Fatal("oversized allocation should fail")
	}
	if _, err := z.AllocContig(0); err == nil {
		t.Fatal("zero allocation should fail")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	z := newTestMem().Zone(0)
	a, _ := z.AllocContig(10)
	l := extent.FromExtents(a)
	if err := z.Free(l); err != nil {
		t.Fatal(err)
	}
	if err := z.Free(l); err == nil {
		t.Fatal("double free should fail")
	}
}

func TestFreeOutsideZoneRejected(t *testing.T) {
	m := newTestMem()
	z0, z1 := m.Zone(0), m.Zone(1)
	a, _ := z1.AllocContig(1)
	if err := z0.Free(extent.FromExtents(a)); err == nil {
		t.Fatal("freeing zone-1 frames into zone 0 should fail")
	}
}

func TestAllocScatteredFragmentation(t *testing.T) {
	z := newTestMem().Zone(0)
	l, err := z.AllocScattered(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if l.Pages() != 64 {
		t.Fatalf("pages = %d", l.Pages())
	}
	if l.Len() < 2 {
		t.Fatalf("scattered allocation should not be one extent, got %v", l)
	}
	// All pages distinct.
	seen := map[PFN]bool{}
	for i := uint64(0); i < l.Pages(); i++ {
		f, _ := l.Page(i)
		if seen[f] {
			t.Fatalf("duplicate frame %#x", uint64(f))
		}
		seen[f] = true
	}
	if err := z.Free(l); err != nil {
		t.Fatal(err)
	}
	if z.FreePages() != 4096 {
		t.Fatalf("free = %d after returning all", z.FreePages())
	}
}

func TestScatteredThenContigInterleave(t *testing.T) {
	z := newTestMem().Zone(0)
	s1, err := z.AllocScattered(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := z.AllocContig(200)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := z.AllocScattered(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	total := s1.Pages() + uint64(c.Count) + s2.Pages()
	if z.FreePages() != 4096-total {
		t.Fatalf("free = %d, want %d", z.FreePages(), 4096-total)
	}
}

func TestFrameContentsSharedAndSparse(t *testing.T) {
	m := newTestMem()
	z := m.Zone(0)
	a, _ := z.AllocContig(4)
	l := extent.FromExtents(a)

	// Reads before any write see zeros and do not materialize.
	buf := make([]byte, 100)
	if err := m.ReadAt(l, 50, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten frame should read as zero")
		}
	}
	if m.Materialized(a.First) {
		t.Fatal("read should not materialize a frame")
	}

	// Writes crossing a page boundary round-trip.
	msg := []byte("cross-enclave zero-copy shared memory")
	if err := m.WriteAt(l, PageSize-10, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := m.ReadAt(l, PageSize-10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip = %q", got)
	}
	if !m.Materialized(a.First) || !m.Materialized(a.First+1) {
		t.Fatal("write should materialize touched frames")
	}
	if m.Materialized(a.First + 3) {
		t.Fatal("untouched frame materialized")
	}
}

func TestAccessBeyondRegionFails(t *testing.T) {
	m := newTestMem()
	a, _ := m.Zone(0).AllocContig(1)
	l := extent.FromExtents(a)
	if err := m.WriteAt(l, PageSize-1, []byte{1, 2}); err == nil {
		t.Fatal("overflowing write should fail")
	}
	if err := m.ReadAt(l, 0, make([]byte, PageSize+1)); err == nil {
		t.Fatal("overflowing read should fail")
	}
}

func TestSameFramesTwoViews(t *testing.T) {
	// The zero-copy property: two lists naming the same frames observe the
	// same bytes — this is what an XEMEM attachment ultimately relies on.
	m := newTestMem()
	a, _ := m.Zone(0).AllocContig(8)
	exporter := extent.FromExtents(a)
	attacher, err := exporter.Slice(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt(exporter, 2*PageSize, []byte("hello enclave")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 13)
	if err := m.ReadAt(attacher, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello enclave" {
		t.Fatalf("attacher sees %q", got)
	}
}

func TestPinPreventsFree(t *testing.T) {
	m := newTestMem()
	z := m.Zone(0)
	a, _ := z.AllocContig(4)
	l := extent.FromExtents(a)
	m.Pin(l)
	if err := z.Free(l); err == nil {
		t.Fatal("freeing pinned frames should fail")
	}
	if err := m.Unpin(l); err != nil {
		t.Fatal(err)
	}
	if err := z.Free(l); err != nil {
		t.Fatalf("free after unpin: %v", err)
	}
}

func TestUnpinUnpinnedFails(t *testing.T) {
	m := newTestMem()
	a, _ := m.Zone(0).AllocContig(1)
	if err := m.Unpin(extent.FromExtents(a)); err == nil {
		t.Fatal("unpinning unpinned frame should fail")
	}
}

func TestPinNesting(t *testing.T) {
	m := newTestMem()
	a, _ := m.Zone(0).AllocContig(1)
	l := extent.FromExtents(a)
	m.Pin(l)
	m.Pin(l)
	if got := m.Pinned(a.First); got != 2 {
		t.Fatalf("pin count = %d", got)
	}
	if err := m.Unpin(l); err != nil {
		t.Fatal(err)
	}
	if err := m.Zone(0).Free(l); err == nil {
		t.Fatal("still pinned once; free should fail")
	}
}

func TestInvalidFramePanics(t *testing.T) {
	m := newTestMem()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid frame")
		}
	}()
	m.Frame(1) // below the 0x100 base
}

// Property: any interleaving of allocs and frees conserves pages and never
// hands out overlapping extents.
func TestAllocatorConservationProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	err := quick.Check(func(ops []uint16) bool {
		m := NewPhysMem("prop", 8<<20)
		z := m.Zone(0)
		total := z.Pages()
		live := map[PFN]extent.List{}
		var liveKeys []PFN
		livePages := uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0: // contig alloc
				n := uint64(op%128) + 1
				e, err := z.AllocContig(n)
				if err != nil {
					continue
				}
				l := extent.FromExtents(e)
				live[e.First] = l
				liveKeys = append(liveKeys, e.First)
				livePages += n
			case 1: // scattered alloc
				n := uint64(op%256) + 1
				l, err := z.AllocScattered(n, uint64(op%32)+1)
				if err != nil {
					continue
				}
				f, _ := l.Page(0)
				live[f] = l
				liveKeys = append(liveKeys, f)
				livePages += n
			case 2: // free one live allocation
				if len(liveKeys) == 0 {
					continue
				}
				k := liveKeys[int(op)%len(liveKeys)]
				l, ok := live[k]
				if !ok {
					continue
				}
				if err := z.Free(l); err != nil {
					return false
				}
				delete(live, k)
				livePages -= l.Pages()
			}
			if z.FreePages()+livePages != total {
				return false
			}
		}
		// All live frames must be distinct across allocations.
		seen := map[PFN]bool{}
		for _, l := range live {
			for i := uint64(0); i < l.Pages(); i++ {
				f, _ := l.Page(i)
				if seen[f] {
					return false
				}
				seen[f] = true
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
