package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotCodec drives the decoder with arbitrary bytes. The
// contract under fuzzing: Decode either returns a fully valid image or
// a typed error (ErrCorrupt / ErrVersion) — never a panic, never a
// partial image — and every accepted image re-encodes byte-identically
// (canonical form) with a matching integrity hash.
func FuzzSnapshotCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("XSNP"))
	f.Add(sampleImage().Encode())
	f.Add((&Image{Kind: "serial"}).Encode())
	short := sampleImage().Encode()
	f.Add(short[:len(short)/2])
	flipped := append([]byte(nil), short...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			if img != nil {
				t.Fatal("error with non-nil image")
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re := img.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted image is not canonical: re-encode differs (%d vs %d bytes)", len(re), len(data))
		}
		if img.Hash() == "" {
			t.Fatal("empty hash on valid image")
		}
	})
}
