package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

func sampleImage() *Image {
	return &Image{
		Recipe: "fig9",
		Params: []byte(`{"nodes":1,"recurring":true}`),
		Seed:   42,
		CutNs:  123456789,
		Kind:   "serial",
		Sections: []Section{
			{Name: "sim/world", Data: []byte{1, 2, 3, 4}},
			{Name: "sim/actors", Data: nil},
			{Name: "phys/node0", Data: bytes.Repeat([]byte{0xab}, 300)},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	img := sampleImage()
	enc := img.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Recipe != img.Recipe || string(got.Params) != string(img.Params) ||
		got.Seed != img.Seed || got.CutNs != img.CutNs || got.Kind != img.Kind {
		t.Fatalf("header mismatch: %+v vs %+v", got, img)
	}
	if len(got.Sections) != len(img.Sections) {
		t.Fatalf("section count %d, want %d", len(got.Sections), len(img.Sections))
	}
	for i := range img.Sections {
		if got.Sections[i].Name != img.Sections[i].Name ||
			!bytes.Equal(got.Sections[i].Data, img.Sections[i].Data) {
			t.Errorf("section %d mismatch", i)
		}
	}
	// Canonical: re-encoding the decode is byte-identical.
	if !bytes.Equal(got.Encode(), enc) {
		t.Error("re-encode is not byte-identical")
	}
	if got.Hash() != img.Hash() {
		t.Error("hash differs across round trip")
	}
}

func TestReadWriteTo(t *testing.T) {
	img := sampleImage()
	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != img.Hash() {
		t.Error("hash differs via Read")
	}
}

func TestSectionLookup(t *testing.T) {
	img := sampleImage()
	if b, ok := img.Section("sim/world"); !ok || !bytes.Equal(b, []byte{1, 2, 3, 4}) {
		t.Error("Section lookup failed")
	}
	if _, ok := img.Section("missing"); ok {
		t.Error("Section reported a missing name")
	}
}

func TestTruncation(t *testing.T) {
	enc := sampleImage().Encode()
	for n := 0; n < len(enc); n++ {
		img, err := Decode(enc[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
		if img != nil {
			t.Fatalf("truncation to %d bytes returned a partial image", n)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}
}

func TestBitFlips(t *testing.T) {
	enc := sampleImage().Encode()
	// Flip one bit at a sample of positions; every flip must be caught by
	// the integrity hash (or the magic/version checks before it).
	for pos := 0; pos < len(enc); pos += 7 {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 1 << bit
			img, err := Decode(mut)
			if err == nil {
				t.Fatalf("bit flip at %d.%d decoded successfully", pos, bit)
			}
			if img != nil {
				t.Fatalf("bit flip at %d.%d returned a partial image", pos, bit)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("bit flip at %d.%d: untyped error %v", pos, bit, err)
			}
		}
	}
}

func TestVersionRejected(t *testing.T) {
	enc := sampleImage().Encode()
	mut := append([]byte(nil), enc...)
	mut[4], mut[5] = 0xff, 0x7f // version field follows the 4-byte magic
	_, err := Decode(mut)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestDecSticky(t *testing.T) {
	var e Enc
	e.U64(7)
	e.Str("hi")
	d := NewDec(e.Data())
	if got := d.U64(); got != 7 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.Str(); got != "hi" {
		t.Fatalf("Str = %q", got)
	}
	// Underflow latches an error; further reads stay zero.
	if got := d.U64(); got != 0 {
		t.Fatalf("underflow U64 = %d", got)
	}
	if d.Err() == nil || !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("underflow error = %v", d.Err())
	}
	if got := d.Str(); got != "" {
		t.Fatalf("post-error Str = %q", got)
	}
}

func TestDecBadBool(t *testing.T) {
	d := NewDec([]byte{2})
	d.Bool()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("bad bool error = %v", d.Err())
	}
}

func TestDecBoundedLengths(t *testing.T) {
	// A huge length prefix must fail cleanly, not attempt the allocation.
	var e Enc
	e.U64(1 << 62)
	d := NewDec(e.Data())
	if b := d.Blob(); b != nil || !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("oversized blob: %v, err %v", b, d.Err())
	}
}
