// Package snapshot is the simulator's checkpoint codec: a versioned,
// deterministic binary image format for the state of a quiesced
// sim.World, plus the little-endian encoder/decoder the per-component
// savers build their sections with.
//
// The package is deliberately pure: it imports nothing from the rest of
// the repository and knows nothing about worlds, actors, or memory. A
// snapshot Image is an ordered list of named byte sections — each
// produced by the component that owns the state (the world core, the
// physical-memory store, each enclave module, the fault injector) — plus
// a small header identifying the recipe that can rebuild the world and
// the virtual-time cut the image was taken at. Integrity is a trailing
// SHA-256 over every preceding byte; Read verifies it before parsing
// anything, so a truncated or bit-flipped image yields ErrCorrupt and
// never a half-decoded structure.
//
// Determinism contract: encoders must emit canonical bytes — fixed-width
// little-endian integers, length-prefixed strings, and map contents
// collected and sorted before encoding (the snaporder analyzer in
// cmd/xemem-vet enforces the latter). Two encodings of equal state are
// then byte-identical, which is what lets restore verify itself by
// re-encoding and comparing, and what makes the image hash a stable
// artifact to pin in repro bundles.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
)

// magic identifies a snapshot image; Version is the current format
// version. Decoders reject other versions with ErrVersion — the format
// is append-only within a version, never silently reinterpreted.
const (
	magic   = "XSNP"
	Version = 1
)

var (
	// ErrCorrupt reports an image whose bytes fail the integrity hash or
	// whose structure does not parse. Nothing has been restored.
	ErrCorrupt = errors.New("snapshot: corrupt image")
	// ErrVersion reports an image written by an incompatible format
	// version. Nothing has been restored.
	ErrVersion = errors.New("snapshot: unsupported version")
)

// Section is one named component payload of an image. Order is
// significant: sections appear in component registration order, which
// equals world construction order.
type Section struct {
	Name string
	Data []byte
}

// Image is one decoded (or to-be-encoded) world snapshot.
type Image struct {
	// Recipe names the builder that can reconstruct the world this image
	// was taken from (see the recipe registry in internal/experiments);
	// Params is the recipe's opaque parameter blob (conventionally JSON).
	Recipe string
	Params []byte
	// Seed is the world's RNG seed; CutNs is the virtual time of the
	// checkpoint; Kind records the engine the checkpoint quiesced under
	// ("serial" or "parallel" — the two have different cut semantics).
	Seed  uint64
	CutNs int64
	Kind  string

	Sections []Section
}

// Section returns the named section's payload, or nil, false.
func (img *Image) Section(name string) ([]byte, bool) {
	for i := range img.Sections {
		if img.Sections[i].Name == name {
			return img.Sections[i].Data, true
		}
	}
	return nil, false
}

// Encode renders the image's canonical byte form, including the
// trailing integrity hash.
func (img *Image) Encode() []byte {
	var e Enc
	e.buf = append(e.buf, magic...)
	e.U16(Version)
	e.Str(img.Recipe)
	e.Blob(img.Params)
	e.U64(img.Seed)
	e.I64(img.CutNs)
	e.Str(img.Kind)
	e.U64(uint64(len(img.Sections)))
	for i := range img.Sections {
		e.Str(img.Sections[i].Name)
		e.Blob(img.Sections[i].Data)
	}
	sum := sha256.Sum256(e.buf)
	return append(e.buf, sum[:]...)
}

// WriteTo writes the canonical encoding to w.
func (img *Image) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(img.Encode())
	return int64(n), err
}

// Hash reports the image's integrity hash — the hex SHA-256 of the
// canonical encoding (everything before the trailer). It is the
// "snapshot hash" repro bundles pin.
func (img *Image) Hash() string {
	enc := img.Encode()
	return hex.EncodeToString(enc[len(enc)-sha256.Size:])
}

// Read decodes an image from r. The trailing hash is verified before
// any structure is parsed, so a damaged image fails atomically: the
// caller either gets a fully valid *Image or an error wrapping
// ErrCorrupt/ErrVersion, never a partial decode.
func Read(r io.Reader) (*Image, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return Decode(buf)
}

// Decode is Read over an in-memory encoding.
func Decode(buf []byte) (*Image, error) {
	if len(buf) < len(magic)+2+sha256.Size {
		return nil, fmt.Errorf("%w: image too short (%d bytes)", ErrCorrupt, len(buf))
	}
	if string(buf[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(buf[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: image version %d, decoder supports %d", ErrVersion, v, Version)
	}
	body, trailer := buf[:len(buf)-sha256.Size], buf[len(buf)-sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("%w: integrity hash mismatch", ErrCorrupt)
	}
	d := NewDec(body[len(magic)+2:])
	img := &Image{}
	img.Recipe = d.Str()
	img.Params = d.Blob()
	img.Seed = d.U64()
	img.CutNs = d.I64()
	img.Kind = d.Str()
	n := d.U64()
	if d.Err() == nil && n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: section count %d exceeds payload", ErrCorrupt, n)
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		img.Sections = append(img.Sections, Section{Name: d.Str(), Data: d.Blob()})
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after sections", ErrCorrupt, d.Remaining())
	}
	return img, nil
}

// --- primitive encoder ---------------------------------------------------

// Enc accumulates a canonical binary encoding: fixed-width little-endian
// integers and length-prefixed byte strings. The zero value is ready to
// use.
type Enc struct {
	buf []byte
}

// Data returns the bytes encoded so far. The slice aliases the
// encoder's buffer.
func (e *Enc) Data() []byte { return e.buf }

// U16 appends a fixed-width little-endian uint16.
func (e *Enc) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a fixed-width little-endian int64 (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 bit pattern (bit-exact round trip).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends one byte, 0 or 1.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte string.
func (e *Enc) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// --- primitive decoder ---------------------------------------------------

// Dec consumes an Enc encoding. It is error-sticky: the first underflow
// or bound violation latches an ErrCorrupt-wrapping error, every
// subsequent read returns zero values, and the caller checks Err once
// at the end. Decoders therefore never panic on damaged input.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over buf.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err reports the first decode error, nil if none so far.
func (d *Dec) Err() error { return d.err }

// Remaining reports the number of unconsumed bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail("need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U16 consumes a uint16.
func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U64 consumes a uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 consumes an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 consumes an IEEE-754 float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool consumes one byte; any value other than 0 or 1 is corrupt.
func (d *Dec) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool byte %#x", b[0])
		return false
	}
}

// Str consumes a length-prefixed string. The length is bounded by the
// remaining payload, so damaged prefixes cannot trigger huge
// allocations.
func (d *Dec) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds remaining %d", n, d.Remaining())
		return ""
	}
	return string(d.take(int(n)))
}

// Blob consumes a length-prefixed byte string (copied, so the result
// does not alias the input buffer).
func (d *Dec) Blob() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("blob length %d exceeds remaining %d", n, d.Remaining())
		return nil
	}
	return append([]byte(nil), d.take(int(n))...)
}
