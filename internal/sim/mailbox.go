package sim

import "fmt"

// Mailbox is the cross-partition communication primitive of the parallel
// engine (see parallel.go). A mailbox is owned by one partition: only
// actors of that partition may receive from it, while any actor may send
// to it. Every send pays a delivery latency of at least the mailbox's
// declared minimum — which must be strictly positive, because it is
// exactly the lookahead the conservative scheduler mines to build its
// LBTS horizon. Model the minimum on the real topology: a cross-enclave
// XEMEM hop never costs less than the fixed per-message kernel work plus
// one core-0 IPI (core.MessageLookahead derives this from sim.Costs).
//
// Under the serial engine a mailbox is just a deterministic timed queue;
// the parallel engine stages cross-partition sends during a window and
// applies them at the next barrier. Both engines produce identical
// schedules because a mailbox wakeup is a pure function of the delivered
// messages' timestamps, not of the order the engine applied them:
//
//   - Send by actor s with latency L enqueues the message with delivery
//     time s.Now()+L.
//   - A receiver takes the pending message with the smallest (delivery,
//     sender id, sender seq) key, advancing its clock to the delivery
//     time if it is still earlier.
//   - A receiver that finds the queue empty blocks; every delivery
//     (re-)computes each blocked receiver's wakeup as max(block time,
//     earliest pending delivery), lowering an already-scheduled wakeup
//     when a later-applied message has an earlier delivery time. A
//     waiter therefore always wakes at the same instant the serial
//     engine would have woken it, no matter how deliveries were batched.
type Mailbox struct {
	w      *World
	name   string
	owner  int
	minLat Time

	pending mailHeap
	waiters []mailWaiter

	// Accumulated statistics (receiver-partition-owned).
	sent     int
	received int
	maxDepth int
}

// mailMsg is one in-flight message. The (at, from, seq) triple totally
// orders messages: sender ids are unique and seq increments per sender.
type mailMsg struct {
	at   Time // delivery time
	from int  // sending actor id
	seq  uint64
	data any
}

// mailWaiter records a receiver blocked on an empty mailbox and the
// clock it blocked at (its wakeup floor).
type mailWaiter struct {
	a  *Actor
	at Time
}

// stagedSend is a cross-partition Send awaiting the next barrier.
type stagedSend struct {
	mb *Mailbox
	m  mailMsg
}

// NewMailbox creates a mailbox received from by partition owner, with
// the given strictly positive minimum delivery latency. Must be called
// before Run. Creating a mailbox for partition p extends the world's
// partition count to at least p+1, like SpawnIn.
func (w *World) NewMailbox(name string, owner int, minLatency Time) *Mailbox {
	if minLatency <= 0 {
		panic("sim: mailbox minimum latency must be positive (it is the scheduler's lookahead)")
	}
	if owner < 0 {
		panic("sim: negative mailbox owner partition")
	}
	if w.running {
		panic("sim: NewMailbox while running")
	}
	if owner+1 > w.nparts {
		w.nparts = owner + 1
	}
	mb := &Mailbox{w: w, name: name, owner: owner, minLat: minLatency}
	w.mailboxes = append(w.mailboxes, mb)
	return mb
}

// Name reports the mailbox's diagnostic name.
func (mb *Mailbox) Name() string { return mb.name }

// Owner reports the partition that receives from the mailbox.
func (mb *Mailbox) Owner() int { return mb.owner }

// MinLatency reports the declared minimum delivery latency — the
// lookahead this mailbox contributes to the parallel engine.
func (mb *Mailbox) MinLatency() Time { return mb.minLat }

// Sent reports the number of messages sent to the mailbox so far.
func (mb *Mailbox) Sent() int { return mb.sent }

// Received reports the number of messages received so far.
func (mb *Mailbox) Received() int { return mb.received }

// MaxDepth reports the high-water mark of the deliverable backlog as
// observed by receives: for each received message, that message plus
// every pending message already past its delivery time at the receive
// instant. The gauge is a pure function of message timestamps — an
// enqueue-side gauge would instead depend on how the engine batched
// deliveries and so differ between serial and parallel runs.
func (mb *Mailbox) MaxDepth() int { return mb.maxDepth }

// Send delivers data to the mailbox at the sender's current time plus
// latency, which must be at least the mailbox's declared minimum. Send
// never blocks and never advances the sender's clock; charge any
// marshalling cost separately before sending.
func (mb *Mailbox) Send(a *Actor, data any, latency Time) {
	a.Settle()
	if latency < mb.minLat {
		panic(fmt.Sprintf("sim: mailbox %s: send latency %v below declared minimum %v",
			mb.name, latency, mb.minLat))
	}
	m := mailMsg{at: a.now + latency, from: a.id, seq: a.mseq, data: data}
	a.mseq++
	if p := a.part; p != nil && p.id != mb.owner {
		// Parallel engine, foreign mailbox: stage for the next barrier.
		// The lookahead bound makes m.at >= the current horizon, so the
		// owner cannot have run past it.
		p.staged = append(p.staged, stagedSend{mb: mb, m: m})
		return
	}
	mb.deliver(m)
}

// deliver lands m in the pending queue and (re-)schedules the wakeup of
// every blocked receiver at max(its block time, the delivery time),
// keeping the earliest such wakeup if one is already scheduled. The
// resulting wakeup instant is independent of delivery order, which is
// what lets the barrier batch deliveries without perturbing the
// schedule.
func (mb *Mailbox) deliver(m mailMsg) {
	mb.sent++
	mb.pending.push(m)
	for _, wt := range mb.waiters {
		b := wt.a
		wake := m.at
		if wake < wt.at {
			wake = wt.at
		}
		switch {
		case b.state == blocked:
			b.state = ready
			b.blockReason = ""
			if b.now < wake {
				b.now = wake
			}
			b.w.heapPush(b)
		case b.state == ready && b.heapIdx >= 0 && wake < b.now:
			// Already woken by an earlier-applied delivery with a later
			// timestamp: lower the scheduled wakeup. The waiter has not run
			// since it blocked, so nothing observed the higher time.
			b.now = wake
			b.w.heapFix(b)
		}
	}
}

// Recv returns the next message for a, blocking (in virtual time) until
// one is deliverable. The receiver's clock advances to the message's
// delivery time. Only actors of the owning partition may receive.
func (mb *Mailbox) Recv(a *Actor) any {
	a.Settle()
	mb.checkOwner(a)
	for {
		if len(mb.pending) > 0 {
			head := mb.pending[0]
			if head.at <= a.now {
				mb.pending.pop()
				mb.received++
				mb.noteDepth(a.now)
				return head.data
			}
			// Park until the earliest currently-pending delivery — but stay
			// registered as a waiter, so a message applied later with an
			// earlier delivery time lowers the wake (deliver). Without the
			// registration this would silently commit to head, and the
			// commitment would depend on whether the earlier message was
			// applied yet — i.e. on barrier batching. The park must really
			// yield (advanceSync), for the same reason.
			mb.waiters = append(mb.waiters, mailWaiter{a: a, at: a.now})
			a.advanceSync(head.at - a.now)
			mb.unwait(a)
			continue
		}
		mb.waiters = append(mb.waiters, mailWaiter{a: a, at: a.now})
		a.Block("mailbox " + mb.name)
		mb.unwait(a)
	}
}

// TryRecv returns the next message deliverable at or before a's current
// time, if any, without blocking or advancing the clock.
func (mb *Mailbox) TryRecv(a *Actor) (any, bool) {
	a.Settle()
	mb.checkOwner(a)
	if len(mb.pending) > 0 && mb.pending[0].at <= a.now {
		m := mb.pending.pop()
		mb.received++
		mb.noteDepth(a.now)
		return m.data, true
	}
	return nil, false
}

// noteDepth records the deliverable backlog observed by the receive that
// just popped a message at virtual time now: the popped message plus
// every remaining pending message already past its delivery time. Unlike
// an enqueue-side gauge this is a pure function of message timestamps,
// so it is identical under serial and barrier-batched execution.
func (mb *Mailbox) noteDepth(now Time) {
	d := 1
	for i := range mb.pending {
		if mb.pending[i].at <= now {
			d++
		}
	}
	if d > mb.maxDepth {
		mb.maxDepth = d
	}
}

// Len reports the number of pending (not yet received) messages.
func (mb *Mailbox) Len() int { return len(mb.pending) }

func (mb *Mailbox) checkOwner(a *Actor) {
	if a.partID != mb.owner {
		panic(fmt.Sprintf("sim: actor %s (partition %d) receiving from mailbox %s owned by partition %d",
			a.name, a.partID, mb.name, mb.owner))
	}
}

// unwait removes a from the waiter list after a wakeup.
func (mb *Mailbox) unwait(a *Actor) {
	for i := range mb.waiters {
		if mb.waiters[i].a == a {
			mb.waiters = append(mb.waiters[:i], mb.waiters[i+1:]...)
			return
		}
	}
}

// mailHeap is a min-heap of messages keyed by (at, from, seq).
type mailHeap []mailMsg

func mailLess(a, b *mailMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.from != b.from {
		return a.from < b.from
	}
	return a.seq < b.seq
}

func (h *mailHeap) push(m mailMsg) {
	s := append(*h, m)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !mailLess(&s[i], &s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *mailHeap) pop() mailMsg {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = mailMsg{}
	s = s[:last]
	i := 0
	for {
		min := i
		if l := 2*i + 1; l < len(s) && mailLess(&s[l], &s[min]) {
			min = l
		}
		if r := 2*i + 2; r < len(s) && mailLess(&s[r], &s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}
