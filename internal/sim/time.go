// Package sim provides the deterministic virtual-time simulation core that
// every XEMEM substrate runs on.
//
// The simulator is a cooperative, conservative, virtual-time scheduler: the
// unit of concurrency is an Actor (a goroutine with a private simulated
// clock), and the World guarantees that exactly one actor executes at a
// time — always the one whose clock is globally minimal (ties broken by
// actor ID). Because execution is exclusive and the dispatch order is a
// pure function of (time, ID), simulations are bit-for-bit reproducible:
// shared state needs no locking, and seeded RNG streams make noise
// processes repeatable.
//
// Costs are charged explicitly: substrate code calls Actor.Advance with a
// duration from the cost model (see Costs). Contended hardware — a CPU
// core that handles all IPIs, a kernel lock — is a Resource, which
// serializes acquisitions in virtual time and records the queueing delay
// that contention introduced.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. A Time is also used for durations; the arithmetic is the
// same and keeping one type avoids a conversion tax on the hot paths.
type Time int64

// Common durations, in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats t with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// PerSecond converts an amount of work done in a duration to a rate per
// second. It returns 0 for non-positive durations.
func PerSecond(amount float64, d Time) float64 {
	if d <= 0 {
		return 0
	}
	return amount / d.Seconds()
}
