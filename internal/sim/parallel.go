package sim

import (
	"fmt"
	"math"
	"sync"
)

// This file implements the conservative (lookahead-based) parallel
// engine selected by World.SetParallel. The model is classic
// conservative PDES specialized to this simulator's actor semantics:
//
//   - Actors are grouped into partitions — logical processes — by the
//     label given at SpawnIn. A builder typically puts each enclave's
//     actors (kernel loops, apps, noise) in one partition, mirroring the
//     paper's hardware partitioning.
//   - Each partition owns a private ready-queue heap and runs its events
//     with the same run-to-completion handoff loop as the serial engine,
//     so within a partition the schedule is literally the serial
//     schedule restricted to that partition's actors.
//   - Partitions interact only through Mailboxes. A mailbox declares a
//     strictly positive minimum delivery latency — in XEMEM terms, a
//     cross-enclave hop always pays at least the fixed per-message
//     kernel cost plus a core-0 IPI (see core.MessageLookahead) — and
//     that bound is the engine's lookahead.
//   - The coordinator repeatedly computes a lower-bound timestamp (LBTS)
//     horizon: no partition can be affected by another before
//     min over partitions p of (next event time of p + outgoing
//     lookahead of p), where p's outgoing lookahead is the smallest
//     minimum latency among mailboxes owned by *other* partitions. Every
//     partition may then safely run every local event strictly below the
//     horizon — a window — on its own host goroutine. Cross-partition
//     sends made during a window are staged and land in the owning
//     partition's mailbox at the barrier; the lookahead bound guarantees
//     their delivery times are at or beyond the horizon, so no window
//     ever misses a message it should have seen.
//
// Because a mailbox wakeup is a pure function of the messages' delivery
// times (not of their application order — see Mailbox), the barrier
// batching reproduces the serial engine's schedule exactly: same seeds,
// same timestamps, same trace digests, at any worker count. That
// bit-identity is why the sync protocol is conservative rather than
// optimistic: a Time-Warp-style engine executes speculatively and rolls
// back, and while its *final* state converges, its observer event stream
// (the thing our golden digests hash) would depend on host scheduling.
//
// Worker-count independence of the *observer* stream needs one more
// piece: with more than one partition, events are buffered per partition
// during a window and replayed to the real observer at the barrier in
// the serial engine's dispatch order (see sliceBuffer and replay).

// infTime is the "no event / no bound" sentinel used by the LBTS
// computation.
const infTime = Time(math.MaxInt64)

// evKey is a full scheduler ordering key — the (virtual time, actor id)
// pair the ready-queue heaps compare. The termination cut-off needs full
// keys, not just times: two events at the same nanosecond are ordered by
// actor id, and whether a daemon event precedes the final non-daemon
// completion can hinge on that tie-break.
type evKey struct {
	t  Time
	id int
}

// infKey is the "no bound" sentinel: every real key is less than it.
var infKey = evKey{t: infTime, id: math.MaxInt}

func (k evKey) less(o evKey) bool { return k.t < o.t || (k.t == o.t && k.id < o.id) }

// partition is one logical process of the parallel engine: a subset of
// the world's actors with a private ready queue, clock, and yield
// channel. All fields are owned by the single worker goroutine running
// the partition's window; the coordinator touches them only between
// windows (the pool's WaitGroup orders the accesses).
type partition struct {
	id int
	w  *World

	heap  actorHeap
	yield chan *Actor // partition-local scheduler handoff
	// live counts the partition's non-daemon actors that have not
	// finished; the coordinator sums these at each barrier.
	live int
	// now is the partition-local dispatch clock: the maximum dispatch
	// time so far, exactly as World.now is for the serial engine.
	now Time
	// horizon is the exclusive virtual-time bound of the current window.
	horizon Time
	// outLA is the partition's outgoing lookahead: the smallest minimum
	// latency among mailboxes owned by other partitions, infTime when the
	// partition cannot affect any other.
	outLA Time
	// clamp is the current window's daemon dispatch bound (exclusive, a
	// full scheduler key). The serial engine stops dispatching the moment
	// the last non-daemon completes, so once this partition's own
	// non-daemons are done a daemon event may only run if a non-daemon
	// completion elsewhere provably comes later in the serial order; the
	// coordinator derives the bound at each barrier (see runParallel) and
	// a partition whose next event is a daemon's at or past it simply
	// ends its window early. infKey means unconstrained.
	clamp evKey
	// lastND is the scheduler key of the partition's latest non-daemon
	// completion — the local candidate for the serial termination cut-off
	// K_done (see drainParallel) — and lastNDActor/lastNDStretch identify
	// the completing dispatch itself, so the drain can block exactly the
	// events that dispatch created.
	lastND        evKey
	lastNDActor   *Actor
	lastNDStretch uint64
	// staged holds the cross-partition mailbox sends produced during the
	// current window; the coordinator applies them at the barrier.
	staged []stagedSend
	// buf, when non-nil, buffers observer events for barrier-time replay
	// (multi-partition observed runs only).
	buf *sliceBuffer
}

// dispatch marks next as the partition's running actor and advances the
// partition clock, mirroring World.dispatch.
func (p *partition) dispatch(next *Actor) {
	key := next.now // serial dispatch key, pre-clamp (replay merges on it)
	if key > p.now {
		p.now = key
	}
	next.stretch++
	next.madeBy = nil
	w := p.w
	if w.nparts == 1 && w.Trace != nil {
		w.Trace("t=%v run %s", p.now, next.name)
	}
	if p.buf != nil {
		p.buf.begin(key, next, p.now)
	} else if w.obs != nil {
		w.obs.Dispatch(next, p.now)
	}
}

// daemonBlocked reports whether dispatching next would overrun the
// termination cut-off. While the partition has live non-daemons of its
// own, every local daemon event is safe: the local completion is a later
// local event, so the serial run cannot have stopped yet. Afterwards,
// mid-run, a daemon's effective position (wakeEK-aware) must be provably
// ahead of some remote non-daemon completion — at or past the window's
// clamp it must wait, because the serial run may stop first. During the
// drain the cut-off K_done is exact: the serial engine dispatched every
// then-existing event below it, so a daemon event is blocked iff its
// plain key is at or past K_done or it was created by the final
// completion dispatch itself (the one set of sub-K_done events the
// serial engine never reached). The partition stalls rather than skips:
// local events must dispatch in local order.
func (p *partition) daemonBlocked(next *Actor) bool {
	if !next.daemon || p.live > 0 {
		return false
	}
	if w := p.w; w.draining {
		if !(evKey{t: next.now, id: next.id}).less(p.clamp) {
			return true
		}
		return next.madeBy != nil && next.madeBy == w.drainCompleter && next.madeSeq == w.drainStretch
	}
	k := evKey{t: next.now, id: next.id}
	if k.less(next.wakeEK) {
		k = next.wakeEK
	}
	return !k.less(p.clamp)
}

// dispatchFrom is the partition-local twin of World.dispatchFrom: it
// hands control onward from a, which has just updated its own state and
// clock. The window ends — control returns to runWindow via the yield
// channel — when the next local event would reach the horizon or the
// daemon clamp, when the queue is empty, or (single-partition worlds
// only) when the world's termination condition holds; the serial
// engine's checks, restricted to this partition.
func (p *partition) dispatchFrom(a *Actor) bool {
	if a.state == ready && !(p.w.nparts == 1 && p.live == 0) {
		// Fast paths that skip the push-then-pop round trip. The heap's pop
		// order depends only on the (time, id) keys, never on its layout, so
		// these shortcuts cannot perturb the schedule.
		next := p.heap.peek()
		if next == nil || actorLess(a, next) {
			if a.now < p.horizon && !p.daemonBlocked(a) {
				// a is still the minimum: keep running it, zero heap traffic.
				p.dispatch(a)
				return true
			}
		} else if next.now < p.horizon && !p.daemonBlocked(next) {
			// Exchange a for the root in a single sift: pop next, push a.
			h := p.heap
			h[0] = heapEntry{key: a.now, id: a.id, a: a}
			a.heapIdx = 0
			h.siftDown(0)
			next.heapIdx = -1
			p.dispatch(next)
			next.resume <- struct{}{}
			return false
		}
		// Window over: every local candidate (a included) is at or past the
		// horizon. Park a and hand control back to the coordinator.
		p.heap.push(a)
		p.yield <- a
		return false
	}
	if a.state == ready {
		p.heap.push(a)
	}
	if p.w.nparts == 1 && p.live == 0 {
		p.yield <- a
		return false
	}
	next := p.heap.peek()
	if next == nil || next.now >= p.horizon || p.daemonBlocked(next) {
		p.yield <- a
		return false
	}
	p.heap.pop()
	p.dispatch(next)
	next.resume <- struct{}{}
	return false
}

// runWindow executes every partition-local event strictly below the
// horizon, run-to-completion. It is the parallel engine's inner loop,
// executed on a worker goroutine; partitions never block mid-window on
// anything outside the partition.
func (p *partition) runWindow() {
	for {
		if p.w.nparts == 1 && p.live == 0 {
			return
		}
		next := p.heap.peek()
		if next == nil || next.now >= p.horizon || p.daemonBlocked(next) {
			return
		}
		p.heap.pop()
		p.dispatch(next)
		next.resume <- struct{}{}
		<-p.yield
	}
}

// runParallel is the coordinator loop behind Run when SetParallel is in
// effect: distribute actors to partitions, then alternate windows and
// barriers until no non-daemon actor remains.
func (w *World) runParallel() error {
	parts := make([]*partition, w.nparts)
	for i := range parts {
		parts[i] = &partition{id: i, w: w, yield: make(chan *Actor), outLA: infTime}
	}
	w.parts = parts

	// Move the global ready queue into the partition-local heaps and
	// count live non-daemons per partition.
	for i := range w.heap {
		w.heap[i] = heapEntry{}
	}
	w.heap = w.heap[:0]
	for _, a := range w.actors {
		p := parts[a.partID]
		a.part = p
		a.heapIdx = -1
		if a.state == ready {
			p.heap.push(a)
		}
		if !a.daemon && a.state != done && a.state != killed {
			p.live++
		}
	}
	w.liveNonDaemons = 0

	// Outgoing lookahead: the earliest a partition's send could land in a
	// mailbox it does not own.
	for _, mb := range w.mailboxes {
		for _, p := range parts {
			if p.id != mb.owner && mb.minLat < p.outLA {
				p.outLA = mb.minLat
			}
		}
	}
	if w.obs != nil && w.nparts > 1 {
		for _, p := range parts {
			p.buf = &sliceBuffer{}
		}
	}

	workers := w.parWorkers
	if workers > len(parts) {
		workers = len(parts)
	}
	var pool *windowPool
	if workers > 1 {
		pool = newWindowPool(workers)
		defer pool.close()
	}

	runnable := make([]*partition, 0, len(parts))
	for {
		live := 0
		for _, p := range parts {
			live += p.live
		}
		if live == 0 {
			return w.drainParallel(parts, pool, runnable)
		}

		// LBTS horizon: a partition's own events are always safe; another
		// partition cannot reach it before that partition's next event
		// plus its outgoing lookahead. Positive mailbox latencies make the
		// horizon strictly greater than the global minimum event time, so
		// at least one event executes per window — guaranteed progress.
		//
		// Alongside the horizon, derive the window's daemon clamp: a lower
		// bound on the key of some future non-daemon completion. The clamp
		// is only ever consulted by a partition whose own non-daemons are
		// all done (see daemonBlocked), so the promised completion is
		// necessarily remote to the consulter and a single global value
		// serves every partition. Two sound promises, keywise max:
		//
		//   - A ready non-daemon completes at or past its own next event
		//     key, so some completion is at or past the *maximum* ready
		//     non-daemon key anywhere. This keeps daemon-heavy phases
		//     parallel mid-run, when completions are still far away.
		//   - A blocked non-daemon in partition q completes after whatever
		//     chain of dispatches wakes it. A chain local to q starts at or
		//     past q's floor; a chain from another partition crosses a
		//     mailbox and lands at or past the horizon; a chain through the
		//     clamped daemon's own partition trails the daemon itself and
		//     needs no bound. So q promises min(floor_q, horizon) —
		//     maximized over the partitions holding blocked non-daemons.
		//
		// The partition holding the global minimum floor always has
		// tail.t == floor.t < horizon (deliveries are strictly future in
		// time), so with the horizon promise in force it is never blocked
		// and every window dispatches at least one event.
		minNext, horizon := infTime, infTime
		maxND, blockedFloor := evKey{}, evKey{}
		anyBlocked := false
		for _, p := range parts {
			readyND := 0
			for j := range p.heap {
				e := &p.heap[j]
				if !e.a.daemon {
					readyND++
					if k := (evKey{t: e.key, id: e.id}); maxND.less(k) {
						maxND = k
					}
				}
			}
			top := p.heap.peek()
			if p.live > readyND { // blocked non-daemons live here
				anyBlocked = true
				f := infKey
				if top != nil {
					f = evKey{t: top.now, id: top.id}
				}
				if blockedFloor.less(f) {
					blockedFloor = f
				}
			}
			if top == nil {
				continue
			}
			if top.now < minNext {
				minNext = top.now
			}
			if p.outLA != infTime {
				if h := top.now + p.outLA; h < horizon {
					horizon = h
				}
			}
		}
		if minNext == infTime {
			// Every heap is empty and every staged send was applied at the
			// previous barrier: remaining non-daemons are blocked forever.
			if blocked := w.blockedNonDaemons(); len(blocked) > 0 {
				return w.finishParallel(fmt.Errorf("%w: %d actor(s) blocked forever: %v",
					ErrDeadlock, len(blocked), blocked))
			}
			return w.finishParallel(nil)
		}

		// Checkpoint: at this barrier every dispatch below minNext has
		// executed, every staged send has landed, and (observed runs) the
		// barrier replay has delivered every buffered event below minNext
		// to the observer. When the earliest pending event is at or past
		// the cut, that is the parallel engine's quiesce point for it —
		// coarser than the serial engine's (a whole barrier window, not a
		// single dispatch), which is why images record the engine kind and
		// restores replay on the same engine they snapshot under.
		if w.ckptFn != nil && minNext >= w.ckptT {
			w.fireCheckpoint()
		}

		clamp := maxND
		if anyBlocked {
			c := blockedFloor
			if hk := (evKey{t: horizon, id: math.MinInt}); hk.less(c) {
				c = hk
			}
			if clamp.less(c) {
				clamp = c
			}
		}
		runnable = runnable[:0]
		for _, p := range parts {
			p.clamp = clamp
			if top := p.heap.peek(); top != nil && top.now < horizon && !p.daemonBlocked(top) {
				p.horizon = horizon
				runnable = append(runnable, p)
			}
		}
		if pool == nil || len(runnable) == 1 {
			for _, p := range runnable {
				p.runWindow()
			}
		} else {
			pool.run(runnable)
		}

		w.applyBarrier(parts)
	}
}

// applyBarrier lands the windows' cross-partition sends and replays the
// buffered observer events. Delivery times are >= the horizon (lookahead
// bound), so no partition has already run past them; the wakeups they
// cause are independent of application order (see Mailbox.deliver).
//
// Replay stops at a watermark: the minimum pending scheduler key across
// the partition heaps. A partition stalled at its daemon clamp still has
// events below the horizon to dispatch, and slices from other partitions
// beyond its stall point must stay buffered until it catches up —
// replaying them now would break the serial interleaving.
func (w *World) applyBarrier(parts []*partition) {
	for _, p := range parts {
		for i := range p.staged {
			s := &p.staged[i]
			s.mb.deliver(s.m)
			p.staged[i] = stagedSend{}
		}
		p.staged = p.staged[:0]
	}
	if w.obs != nil && w.nparts > 1 {
		watermark := infKey
		for _, p := range parts {
			if top := p.heap.peek(); top != nil {
				if k := (evKey{t: top.now, id: top.id}); k.less(watermark) {
					watermark = k
				}
			}
		}
		w.replayBelow(watermark)
	}
}

// drainParallel finishes a run whose non-daemons have all completed. The
// serial engine stops at K_done — the scheduler key of the last
// non-daemon completion — having already dispatched every daemon event
// below it. Partitions may still hold such events: the daemon clamp is
// conservative, and the window that hosted the final completion ended at
// its horizon, not at K_done. Run them now, windows and barriers as
// usual (drained daemons can message each other across partitions), with
// every partition clamped to K_done. The cut-off is exact: the serial
// engine dispatched every then-existing event below K_done before
// stopping, so the only sub-K_done events left unrun are the ones the
// final completion dispatch itself created. Those carry that dispatch's
// creation taint (madeBy/madeSeq, see daemonBlocked) and are blocked by
// identity; every other event below K_done runs.
func (w *World) drainParallel(parts []*partition, pool *windowPool, runnable []*partition) error {
	kdone := evKey{}
	for _, p := range parts {
		if kdone.less(p.lastND) {
			kdone = p.lastND
			w.drainCompleter = p.lastNDActor
			w.drainStretch = p.lastNDStretch
		}
	}
	w.draining = true
	for {
		horizon := infTime
		for _, p := range parts {
			top := p.heap.peek()
			if top == nil || p.outLA == infTime {
				continue
			}
			if h := top.now + p.outLA; h < horizon {
				horizon = h
			}
		}
		runnable = runnable[:0]
		for _, p := range parts {
			p.clamp = kdone
			if top := p.heap.peek(); top != nil && top.now < horizon && !p.daemonBlocked(top) {
				p.horizon = horizon
				runnable = append(runnable, p)
			}
		}
		if len(runnable) == 0 {
			return w.finishParallel(nil)
		}
		if pool == nil || len(runnable) == 1 {
			for _, p := range runnable {
				p.runWindow()
			}
		} else {
			pool.run(runnable)
		}
		w.applyBarrier(parts)
	}
}

// finishParallel tears the parallel run down: kill surviving daemons,
// fold the partition clocks into the world clock, and detach partition
// state so a future serial Run behaves normally.
func (w *World) finishParallel(err error) error {
	w.draining = false
	w.drainCompleter = nil
	w.killAll()
	if w.obs != nil && w.nparts > 1 {
		w.replay() // events emitted by daemons between the last barrier and teardown
	}
	live := 0
	for _, p := range w.parts {
		if p.now > w.now {
			w.now = p.now
		}
		live += p.live
	}
	w.liveNonDaemons = live
	for _, a := range w.actors {
		a.part = nil
	}
	w.parts = nil
	return err
}

// windowPool runs partition windows on a fixed set of worker goroutines.
// The channel handoff publishes the coordinator's horizon writes to the
// worker; Done/Wait publishes the worker's heap, clock, and staging
// writes back to the coordinator.
type windowPool struct {
	work chan *partition
	wg   sync.WaitGroup
}

func newWindowPool(workers int) *windowPool {
	pool := &windowPool{work: make(chan *partition, workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for p := range pool.work {
				p.runWindow()
				pool.wg.Done()
			}
		}()
	}
	return pool
}

func (pool *windowPool) run(parts []*partition) {
	pool.wg.Add(len(parts))
	for _, p := range parts {
		pool.work <- p
	}
	pool.wg.Wait()
}

func (pool *windowPool) close() { close(pool.work) }

// --- barrier-time observer replay ---------------------------------------
//
// With more than one partition, windows run concurrently, so observer
// callbacks cannot go straight to the installed Observer. Instead each
// partition buffers its window's events grouped by dispatch (an
// evSlice), and at the barrier the coordinator replays the buffers in
// the serial engine's order. That order is recovered by a head-merge:
// the serial scheduler always picks the globally minimal (time, id)
// ready actor, and an actor's dispatches appear in its own partition's
// buffer in partition-scheduler order, so repeatedly taking the buffer
// head with the smallest (dispatch key, actor id) replays the exact
// serial interleaving. The dispatch key is the actor's clock at
// dispatch, before the partition-clock clamp — the same key the serial
// heap compared.

type bufKind uint8

const (
	bufSpan bufKind = iota
	bufAcquire
	bufQueueWait
	bufCount
)

// bufEvent is one buffered observer callback.
type bufEvent struct {
	kind  bufKind
	a     *Actor
	r     *Resource
	op    string
	t1    Time
	t2    Time
	t3    Time
	depth int
}

func (e *bufEvent) replay(obs Observer) {
	switch e.kind {
	case bufSpan:
		obs.Span(e.a, e.op, e.t1, e.t2)
	case bufAcquire:
		obs.AcquireRes(e.r, e.a, e.op, e.t1, e.t2, e.t3, e.depth)
	case bufQueueWait:
		obs.QueueWait(e.op, e.a, e.t1, e.t2, e.depth)
	case bufCount:
		obs.Count(e.op, e.a, e.t1)
	}
}

// evSlice is the events of one dispatch: the actor, its dispatch key
// (clock at dispatch), the clamped partition clock the serial engine
// would have reported to Observer.Dispatch, and every event the actor
// emitted before its next pause.
type evSlice struct {
	key    Time
	a      *Actor
	disp   Time
	events []bufEvent
}

// sliceBuffer is a partition's window-local Observer implementation. It
// is installed implicitly via Actor.Observer, never via SetObserver.
type sliceBuffer struct {
	slices []evSlice
	next   int // replay cursor
}

// begin opens the event slice for a new dispatch.
func (b *sliceBuffer) begin(key Time, a *Actor, disp Time) {
	b.slices = append(b.slices, evSlice{key: key, a: a, disp: disp})
}

func (b *sliceBuffer) cur() *evSlice { return &b.slices[len(b.slices)-1] }

func (b *sliceBuffer) Span(a *Actor, op string, start, dur Time) {
	s := b.cur()
	s.events = append(s.events, bufEvent{kind: bufSpan, a: a, op: op, t1: start, t2: dur})
}

func (b *sliceBuffer) AcquireRes(r *Resource, a *Actor, op string, arrival, start, dur Time, depth int) {
	s := b.cur()
	s.events = append(s.events, bufEvent{kind: bufAcquire, a: a, r: r, op: op, t1: arrival, t2: start, t3: dur, depth: depth})
}

func (b *sliceBuffer) QueueWait(queue string, a *Actor, enqueued, dequeued Time, depth int) {
	s := b.cur()
	s.events = append(s.events, bufEvent{kind: bufQueueWait, a: a, op: queue, t1: enqueued, t2: dequeued, depth: depth})
}

func (b *sliceBuffer) Count(name string, a *Actor, d Time) {
	s := b.cur()
	s.events = append(s.events, bufEvent{kind: bufCount, a: a, op: name, t1: d})
}

// Dispatch is part of the Observer interface; dispatches are recorded by
// begin, so a nested call would be a bug.
func (b *sliceBuffer) Dispatch(a *Actor, t Time) {}

// compact discards replayed slices, moving the unreplayed remainder to
// the front and retaining capacity for the next window.
func (b *sliceBuffer) compact() {
	if b.next == 0 {
		return
	}
	n := copy(b.slices, b.slices[b.next:])
	for i := n; i < len(b.slices); i++ {
		b.slices[i].events = nil
		b.slices[i].a = nil
	}
	b.slices = b.slices[:n]
	b.next = 0
}

// replay merges every remaining buffered slice into the installed
// observer (end of run, when all dispatches are final).
func (w *World) replay() { w.replayBelow(infKey) }

// replayBelow merges the partitions' buffered windows into the installed
// observer in serial dispatch order (see the comment block above),
// stopping at the watermark: a slice at or past it may still be preceded
// — in serial order — by a dispatch a stalled partition has not made
// yet, so it stays buffered for a later barrier. Within one partition's
// buffer, slices replay strictly in append order; that order, not the
// key, carries the serial tie-break when a dispatch schedules another
// actor at its own timestamp.
func (w *World) replayBelow(watermark evKey) {
	obs := w.obs
	for {
		var best *evSlice
		var owner *sliceBuffer
		for _, p := range w.parts {
			b := p.buf
			if b == nil || b.next >= len(b.slices) {
				continue
			}
			s := &b.slices[b.next]
			if best == nil || s.key < best.key || (s.key == best.key && s.a.id < best.a.id) {
				best, owner = s, b
			}
		}
		if best == nil || !(evKey{t: best.key, id: best.a.id}).less(watermark) {
			break
		}
		owner.next++
		obs.Dispatch(best.a, best.disp)
		for i := range best.events {
			best.events[i].replay(obs)
		}
	}
	for _, p := range w.parts {
		if p.buf != nil {
			p.buf.compact()
		}
	}
}
