package sim

// This file is the engine half of world checkpoint/restore (DESIGN.md
// §12). A snapshot is taken at a quiesce point — an instant when no
// actor goroutine is mid-dispatch — and serializes the engine's own
// state (actors, mailboxes, RNG cursors, the observer's watermark) plus
// one section per registered component saver, into the versioned image
// format of internal/sim/snapshot.
//
// Restore is recipe-driven rather than pointer-surgical: an image names
// the builder ("recipe") and seed that can reconstruct the world from
// scratch, and the restoring side re-runs that builder, then either
// replays deterministically to the cut (verifying the re-encoded state
// byte-matches the image) or overlays the few divergent fields for a
// warm fork. Actor goroutine stacks therefore never need to be
// serialized — determinism is the serialization format.

import (
	"fmt"
	"io"
	"sort"

	"xemem/internal/sim/snapshot"
)

// snapComponent is one registered snapshot section saver.
type snapComponent struct {
	name string
	save func(*snapshot.Enc)
}

// SetRecipe records the name and opaque parameter blob (conventionally
// JSON) of the builder that can reconstruct this world from scratch.
// Snapshot images embed the pair so a replay can rebuild the world
// without out-of-band knowledge.
func (w *World) SetRecipe(name string, params []byte) {
	w.recipe = name
	w.recipeParams = params
}

// Recipe reports the recipe name and parameter blob set by SetRecipe.
func (w *World) Recipe() (string, []byte) { return w.recipe, w.recipeParams }

// Seed reports the world's RNG seed.
func (w *World) Seed() uint64 { return w.seed }

// RNGCursor reports the creation-order RNG counter behind NewRNG.
// Snapshots record it; a forked world overlays it so streams created
// after the fork match the streams the snapshotted world would have
// created.
func (w *World) RNGCursor() uint64 { return w.nextRNG }

// SetRNGCursor overwrites the creation-order RNG counter (snapshot
// overlay only).
func (w *World) SetRNGCursor(v uint64) { w.nextRNG = v }

// AddSnapshotComponent registers a named snapshot section saver. Savers
// run in registration order when SnapshotImage is called; builders
// register components as they construct them, so registration order —
// and therefore section order — is deterministic for a given recipe.
func (w *World) AddSnapshotComponent(name string, save func(*snapshot.Enc)) {
	w.snapComps = append(w.snapComps, snapComponent{name: name, save: save})
}

// SetCheckpoint arms a one-shot checkpoint: fn fires at the engine's
// first quiesce point at or past virtual time t. On the serial engine
// that is the instant the next dispatch would reach t — every dispatch
// strictly below t has executed and been observed, none at or past t
// has. On the parallel engine it is the first barrier whose earliest
// pending event is at or past t. A cut beyond the end of the run fires
// once at termination, after teardown. fn typically captures
// SnapshotImage (and, on restore runs, re-encodes and verifies).
func (w *World) SetCheckpoint(t Time, fn func()) {
	if w.running {
		panic("sim: SetCheckpoint while running")
	}
	w.ckptT = t
	w.ckptFn = fn
}

// fireCheckpoint runs the armed checkpoint exactly once. It executes
// under the engine's quiesce guarantee: on the serial engine the
// one-runnable-goroutine invariant, on the parallel engine the
// coordinator between barriers with every worker parked.
func (w *World) fireCheckpoint() {
	fn := w.ckptFn
	w.ckptFn = nil
	fn()
}

// SnapshotWatermarker is implemented by observers that can export their
// accumulated state as an opaque watermark and later be rewound to it
// (trace.Tracer). When the world's observer implements it, SnapshotImage
// captures an "obs/watermark" section, which is what lets a forked run
// continue a golden digest exactly where the snapshot left off.
type SnapshotWatermarker interface {
	SnapshotWatermark() []byte
}

// SnapshotImage serializes the world at a quiesce point: the engine
// core, every actor's schedule-relevant state, the mailboxes, the
// observer watermark (when the observer supports it), and one section
// per registered component saver. Call it from a SetCheckpoint callback
// or between RunPhase/Run phases — never from inside a running actor.
//
// The image's CutNs is the armed checkpoint time when one was set, else
// the world's current clock (the RunPhase quiesce case).
func (w *World) SnapshotImage() *snapshot.Image {
	kind := "serial"
	if w.parWorkers > 0 {
		kind = "parallel"
	}
	cut := w.ckptT
	if cut == 0 {
		cut = w.now
	}
	img := &snapshot.Image{
		Recipe: w.recipe,
		Params: w.recipeParams,
		Seed:   w.seed,
		CutNs:  int64(cut),
		Kind:   kind,
	}
	img.Sections = append(img.Sections,
		snapshot.Section{Name: "sim/world", Data: w.encodeWorld()},
		snapshot.Section{Name: "sim/actors", Data: w.encodeActors()},
		snapshot.Section{Name: "sim/mailboxes", Data: w.encodeMailboxes()},
	)
	if wm, ok := w.obs.(SnapshotWatermarker); ok {
		img.Sections = append(img.Sections,
			snapshot.Section{Name: "obs/watermark", Data: wm.SnapshotWatermark()})
	}
	for _, c := range w.snapComps {
		var e snapshot.Enc
		c.save(&e)
		img.Sections = append(img.Sections, snapshot.Section{Name: c.name, Data: e.Data()})
	}
	return img
}

// Snapshot writes the world's snapshot image to wr (see SnapshotImage).
func (w *World) Snapshot(wr io.Writer) error {
	_, err := w.SnapshotImage().WriteTo(wr)
	return err
}

// LoadWorldOverlay overlays the engine-global scalars from an image's
// "sim/world" section onto a rebuilt world (the warm-fork path): it
// verifies the seed and the actor count — the fork must have spawned one
// stand-in per snapshotted actor, or post-fork actor ids (and with them
// every dispatch-ordering tie-break and trace event) would shift — and
// overlays the RNG-creation cursor so streams created after the fork
// match the streams the snapshotted world would have created. The clock
// is not overlaid: it catches up at the first post-fork dispatch.
func (w *World) LoadWorldOverlay(data []byte) error {
	d := snapshot.NewDec(data)
	seed := d.U64()
	d.I64() // clock at the cut
	nextRNG := d.U64()
	d.U64() // partition count (engine config, not state)
	nactors := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if seed != w.seed {
		return fmt.Errorf("%w: snapshot of seed %d, world has seed %d", snapshot.ErrCorrupt, seed, w.seed)
	}
	if nactors != uint64(len(w.actors)) {
		return fmt.Errorf("%w: snapshot has %d actors, forked world has %d (stand-in mismatch)",
			snapshot.ErrCorrupt, nactors, len(w.actors))
	}
	w.nextRNG = nextRNG
	return nil
}

// Restore reads and integrity-checks a snapshot image from r. It
// returns the decoded image only — reconstruction is recipe-driven:
// rebuild the world named by img.Recipe with img.Seed, then replay to
// img.CutNs (verifying re-encoded sections against the image) or
// overlay the warm-fork fields. See internal/experiments for both
// drivers.
func Restore(r io.Reader) (*snapshot.Image, error) {
	return snapshot.Read(r)
}

// encodeWorld is the "sim/world" section: the engine-global scalars.
func (w *World) encodeWorld() []byte {
	var e snapshot.Enc
	e.U64(w.seed)
	e.I64(int64(w.now))
	e.U64(w.nextRNG)
	e.U64(uint64(w.nparts))
	e.U64(uint64(len(w.actors)))
	return e.Data()
}

// encodeActors is the "sim/actors" section: per actor, in id order, the
// schedule-relevant state. Goroutine stacks are not captured (restore
// re-runs the recipe); the RNG stream position is, because noise draws
// are the one piece of actor state the re-run cannot reconstruct past
// the cut without it.
func (w *World) encodeActors() []byte {
	var e snapshot.Enc
	e.U64(uint64(len(w.actors)))
	for _, a := range w.actors {
		e.Str(a.name)
		e.U64(uint64(a.partID))
		e.I64(int64(a.now))
		e.U64(uint64(a.state))
		e.Bool(a.daemon)
		e.Str(a.blockReason)
		e.U64(a.mseq)
		if a.rng != nil {
			e.Bool(true)
			state, spare, spareOK := a.rng.State()
			e.U64(state)
			e.F64(spare)
			e.Bool(spareOK)
		} else {
			e.Bool(false)
		}
	}
	return e.Data()
}

// encodeMailboxes is the "sim/mailboxes" section: per mailbox, in
// creation order, its configuration, statistics, and the metadata of
// every pending message in (delivery, sender, seq) order — the pending
// heap's layout is host-dependent, so it is collected and sorted first.
// Message payloads are live host pointers and are deliberately not
// captured (DESIGN.md §12); the timestamps alone pin the schedule, and
// both restore paths reconstruct payloads by re-execution.
func (w *World) encodeMailboxes() []byte {
	var e snapshot.Enc
	e.U64(uint64(len(w.mailboxes)))
	for _, mb := range w.mailboxes {
		e.Str(mb.name)
		e.U64(uint64(mb.owner))
		e.I64(int64(mb.minLat))
		e.U64(uint64(mb.sent))
		e.U64(uint64(mb.received))
		e.U64(uint64(mb.maxDepth))
		pend := append([]mailMsg(nil), mb.pending...)
		sort.Slice(pend, func(i, j int) bool { return mailLess(&pend[i], &pend[j]) })
		e.U64(uint64(len(pend)))
		for i := range pend {
			e.I64(int64(pend[i].at))
			e.U64(uint64(pend[i].from))
			e.U64(pend[i].seq)
		}
	}
	return e.Data()
}
