package sim

import (
	"errors"
	"fmt"
	"sort"
)

// World owns a set of actors and dispatches them in virtual-time order.
// Create one with NewWorld, add actors with Spawn (before or during Run),
// and call Run to execute the simulation to completion.
//
// A World is not safe for concurrent use from multiple host goroutines;
// actors themselves never need synchronization because the scheduler
// guarantees mutual exclusion.
type World struct {
	actors  []*Actor
	yield   chan *Actor // actors hand control back to the scheduler here
	now     Time
	running bool
	seed    uint64
	nextRNG uint64
	stopped bool

	// Trace, if non-nil, receives a line per scheduling decision. Used by
	// tests; nil in normal runs.
	Trace func(format string, args ...any)
}

// NewWorld returns an empty world whose RNG streams derive from seed.
func NewWorld(seed uint64) *World {
	return &World{
		yield: make(chan *Actor),
		seed:  seed,
	}
}

// Now reports the current global virtual time: the clock of the most
// recently dispatched actor.
func (w *World) Now() Time { return w.now }

// NewRNG returns a fresh deterministic RNG stream. Streams created in the
// same order across runs produce identical sequences.
func (w *World) NewRNG() *RNG {
	w.nextRNG++
	return NewRNG(w.seed ^ (w.nextRNG * 0x9e3779b97f4a7c15))
}

// Spawn creates an actor named name running fn. If called from within a
// running actor, the child starts at the caller's current time; otherwise
// it starts at time zero. Daemon actors (see Actor.SetDaemon) do not keep
// the world alive.
func (w *World) Spawn(name string, fn func(*Actor)) *Actor {
	a := &Actor{
		id:     len(w.actors),
		name:   name,
		w:      w,
		state:  ready,
		resume: make(chan struct{}),
	}
	w.actors = append(w.actors, a)
	go a.run(fn)
	return a
}

// SpawnAt is Spawn with an explicit start time. It is mainly useful for
// staggering workload arrivals before Run begins.
func (w *World) SpawnAt(name string, start Time, fn func(*Actor)) *Actor {
	a := w.Spawn(name, fn)
	a.now = start
	return a
}

// ErrDeadlock is returned (wrapped) by Run when non-daemon actors remain
// blocked with no runnable actor to wake them.
var ErrDeadlock = errors.New("sim: deadlock")

// Run executes the simulation until every non-daemon actor has finished.
// Remaining daemon actors are then terminated. Run reports a deadlock if
// no actor is runnable while non-daemon actors are still blocked.
func (w *World) Run() error {
	if w.running {
		return errors.New("sim: world already running")
	}
	w.running = true
	defer func() { w.running = false }()

	for {
		if !w.nonDaemonAlive() {
			w.killAll()
			return nil
		}
		next := w.pickNext()
		if next == nil {
			if blocked := w.blockedNonDaemons(); len(blocked) > 0 {
				w.killAll()
				return fmt.Errorf("%w: %d actor(s) blocked forever: %v",
					ErrDeadlock, len(blocked), blocked)
			}
			w.killAll()
			return nil
		}
		if next.now > w.now {
			w.now = next.now
		}
		if w.Trace != nil {
			w.Trace("t=%v run %s", w.now, next.name)
		}
		next.resume <- struct{}{}
		<-w.yield
	}
}

// pickNext returns the ready actor with the minimal (time, id), or nil.
func (w *World) pickNext() *Actor {
	var best *Actor
	for _, a := range w.actors {
		if a.state != ready {
			continue
		}
		if best == nil || a.now < best.now || (a.now == best.now && a.id < best.id) {
			best = a
		}
	}
	return best
}

// nonDaemonAlive reports whether any non-daemon actor has not finished.
func (w *World) nonDaemonAlive() bool {
	for _, a := range w.actors {
		if !a.daemon && a.state != done && a.state != killed {
			return true
		}
	}
	return false
}

func (w *World) blockedNonDaemons() []string {
	var names []string
	for _, a := range w.actors {
		if a.state == blocked && !a.daemon {
			names = append(names, fmt.Sprintf("%s(%s)", a.name, a.blockReason))
		}
	}
	sort.Strings(names)
	return names
}

// killAll terminates every actor that has not finished, including daemons
// blocked on message loops, so their goroutines do not leak.
func (w *World) killAll() {
	for _, a := range w.actors {
		if a.state == done || a.state == killed {
			continue
		}
		a.state = killed
		a.resume <- struct{}{}
		<-w.yield
	}
}
