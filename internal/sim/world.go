package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// resumePool recycles actor resume channels across Worlds. A channel is
// only returned to the pool after its actor's goroutine has provably
// exited (Run's teardown), so a pooled channel is always idle. This
// matters for sweeps: each of thousands of short-lived worlds would
// otherwise allocate a fresh channel per actor.
var resumePool = sync.Pool{New: func() any { return make(chan struct{}) }}

// World owns a set of actors and dispatches them in virtual-time order.
// Create one with NewWorld, add actors with Spawn (before or during Run),
// and call Run to execute the simulation to completion.
//
// Dispatch order is defined by the minimal (time, id) pair over all ready
// actors, ties broken by the lower actor id. The default scheduler keeps
// ready actors in an indexed min-heap so each dispatch is O(log n); the
// original O(n) linear scan is retained behind SetLinearScan as a
// reference implementation for determinism regression tests and
// benchmarking. Both produce bit-identical schedules.
//
// A World is not safe for concurrent use from multiple host goroutines;
// actors themselves never need synchronization because the scheduler
// guarantees mutual exclusion.
//
// # A World owns everything it touches
//
// Every piece of simulation state — actors, RNG streams, cores, zones,
// physical memory, inboxes, routers, nameservers, tracers — is reachable
// from exactly one World and is mutated only while that World's scheduler
// has dispatched one of its actors. Nothing in this module tree keeps
// package-level mutable state that two Worlds could share (configuration
// knobs like SetLinearScan are snapshotted per instance at creation).
// Consequently, distinct Worlds may run concurrently on distinct host
// goroutines with no synchronization whatsoever, and a sweep of N
// independent Worlds is embarrassingly parallel while remaining
// bit-identical to running them one after another. Code added to the
// simulation must preserve this invariant: per-world state lives on the
// World (or an object created per World), never in a package variable.
type World struct {
	actors  []*Actor
	yield   chan *Actor // actors hand control back to the scheduler here
	now     Time
	running bool
	seed    uint64
	nextRNG uint64
	stopped bool

	// heap is the ready queue: an indexed min-heap on (time, id). Running,
	// blocked, and finished actors are not in it. Unused when linearScan,
	// and empty while the partitioned parallel engine is active (each
	// partition then owns its own actorHeap).
	heap actorHeap
	// liveNonDaemons counts non-daemon actors that have not finished, so
	// the run loop's termination check is O(1) instead of a scan.
	liveNonDaemons int
	// linearScan selects the pre-heap O(n) scheduler (reference
	// implementation, see SetLinearScan).
	linearScan bool

	// Partitioning state for the conservative parallel engine (see
	// parallel.go). nparts counts the partition labels in use (always
	// >= 1); parWorkers > 0 selects the windowed engine in Run; parts is
	// non-nil only while that engine is active; mailboxes records every
	// Mailbox, whose minimum latencies are the lookahead the engine mines.
	parWorkers  int
	defaultPart int
	nparts      int
	parts       []*partition
	mailboxes   []*Mailbox
	// stableRNG selects actor-id-derived seeding for lazily created actor
	// RNG streams (see SetStableActorRNG).
	stableRNG bool
	// batchAdvances opts the parallel engine into run-to-completion
	// batching of pure advances (see SetBatchedAdvances).
	batchAdvances bool
	// draining flags the parallel run's drain phase, and drainCompleter/
	// drainStretch identify the final non-daemon completion dispatch —
	// the one dispatch whose same-timestamp creations the serial engine
	// never reached (see drainParallel and daemonBlocked).
	draining       bool
	drainCompleter *Actor
	drainStretch   uint64

	// Trace, if non-nil, receives a line per scheduling decision. Used by
	// tests; nil in normal runs.
	Trace func(format string, args ...any)

	// obs, if non-nil, receives observability events (see Observer). It
	// never influences scheduling or clocks.
	obs Observer

	// inj, if non-nil, is the fault injector consulted at delivery and
	// service boundaries (see Injector). Unlike obs it is allowed — indeed
	// exists — to perturb timing and drop messages; nil means the
	// zero-fault world.
	inj Injector

	// Checkpoint machinery (see checkpoint.go). recipe/recipeParams name
	// the builder that can reconstruct this world from scratch; snapComps
	// are the registered per-component snapshot section savers; ckptT and
	// ckptFn arm a one-shot checkpoint callback fired at the engine's
	// first quiesce point at or past ckptT.
	recipe       string
	recipeParams []byte
	snapComps    []snapComponent
	ckptT        Time
	ckptFn       func()
}

// NewWorld returns an empty world whose RNG streams derive from seed.
func NewWorld(seed uint64) *World {
	return &World{
		yield:  make(chan *Actor),
		seed:   seed,
		nparts: 1,
	}
}

// SetLinearScan switches the scheduler to the original O(n)
// linear-scan dispatch loop. The schedule is bit-identical to the default
// heap scheduler — both pick the ready actor with minimal (time, id) — so
// this exists only as the reference baseline for determinism regression
// tests and for the engine benchmark's before/after comparison. It must
// be called before Run.
func (w *World) SetLinearScan(on bool) {
	if w.running {
		panic("sim: SetLinearScan while running")
	}
	if on && w.parWorkers > 0 {
		panic("sim: SetLinearScan is incompatible with SetParallel")
	}
	if on == w.linearScan {
		return
	}
	w.linearScan = on
	w.heap = w.heap[:0]
	if !on {
		// Rebuild the ready queue for any actors spawned while linear.
		for _, a := range w.actors {
			a.heapIdx = -1
			if a.state == ready {
				w.heapPush(a)
			}
		}
	}
}

// SetParallel selects the conservative windowed parallel engine for Run,
// with up to workers host goroutines executing partition windows
// concurrently (see parallel.go for the model). workers <= 0 reverts to
// the serial reference engine. The parallel engine produces schedules —
// and therefore trace digests — bit-identical to the serial engine for
// any worker count; workers only changes host-level concurrency, never
// simulated outcomes. Must be called before Run.
func (w *World) SetParallel(workers int) {
	if w.running {
		panic("sim: SetParallel while running")
	}
	if workers > 0 && w.linearScan {
		panic("sim: SetParallel is incompatible with SetLinearScan")
	}
	if workers < 0 {
		workers = 0
	}
	w.parWorkers = workers
}

// SetBatchedAdvances opts the parallel engine into run-to-completion
// batching of pure advances: an Advance/AdvanceN that only moves the
// actor's own clock skips the scheduler yield, and the actor commits the
// accumulated virtual time the next time it touches state other actors
// can see — a resource, a mailbox, Unblock, Spawn, a Poll condition — at
// which point it yields until every actor below its clock has run,
// restoring the exact serial interleaving at every coupling point. The
// simulated outcome (final time, every interaction's timestamps, all
// statistics) is identical to the unbatched engine; only the host-level
// goroutine handoffs per pure advance disappear. Daemons never batch, so
// the end-of-run termination cut-off stays serial-exact, and batching
// disengages automatically while an Observer or Trace is installed
// (their dispatch streams must match the serial engine event for event).
//
// The contract: actors must confine cross-actor interaction to the
// engine's primitives. Code that shares raw Go state between actors
// outside them must call Actor.Settle before touching it, or leave
// batching off. It has no effect on the serial engine. Must be called
// before Run.
func (w *World) SetBatchedAdvances(on bool) {
	if w.running {
		panic("sim: SetBatchedAdvances while running")
	}
	w.batchAdvances = on
}

// SetDefaultPartition sets the partition label assigned to subsequently
// spawned actors (see SpawnIn). World builders bracket each enclave's
// construction with it so every actor of the enclave — kernels, apps,
// noise sources — lands in that enclave's partition. The default is
// partition 0, so worlds that never call it are single-partition and the
// parallel engine degenerates to one run-to-completion window.
func (w *World) SetDefaultPartition(p int) {
	if p < 0 {
		panic("sim: negative partition")
	}
	if w.running {
		panic("sim: SetDefaultPartition while running")
	}
	w.defaultPart = p
	if p+1 > w.nparts {
		w.nparts = p + 1
	}
}

// DefaultPartition reports the partition label currently assigned to
// newly spawned actors.
func (w *World) DefaultPartition() int { return w.defaultPart }

// NumPartitions reports the number of partition labels in use (the
// highest label ever assigned, plus one). Always at least 1.
func (w *World) NumPartitions() int { return w.nparts }

// Now reports the current global virtual time: the clock of the most
// recently dispatched actor.
func (w *World) Now() Time { return w.now }

// NewRNG returns a fresh deterministic RNG stream. Streams created in the
// same order across runs produce identical sequences.
func (w *World) NewRNG() *RNG {
	w.nextRNG++
	return NewRNG(w.seed ^ (w.nextRNG * 0x9e3779b97f4a7c15))
}

// SetStableActorRNG selects actor-id-derived seeding for lazily created
// actor RNG streams (Actor.RNG) instead of the legacy creation-order
// counter. Id-derived streams are insensitive to how actors are grouped
// into partitions, so a workload produces identical noise whether it is
// built as one partition or eight — the property the partition-scaling
// benchmark relies on to compare layouts. Multi-partition worlds always
// use the stable derivation (the counter would race across windows);
// this knob merely extends it to the single-partition builds of the same
// workload. Must be set before the first Actor.RNG call.
func (w *World) SetStableActorRNG(on bool) { w.stableRNG = on }

// Spawn creates an actor named name running fn. If called from within a
// running actor, the child starts at the caller's current time; otherwise
// it starts at time zero. Daemon actors (see Actor.SetDaemon) do not keep
// the world alive. The actor lands in the world's default partition.
func (w *World) Spawn(name string, fn func(*Actor)) *Actor {
	return w.SpawnIn(w.defaultPart, name, fn)
}

// SpawnIn is Spawn with an explicit partition label. Partition labels
// only matter to the parallel engine (SetParallel): actors in distinct
// partitions may then execute on distinct host goroutines within a
// window, so they must interact across partitions only through Mailbox
// sends — never Unblock or shared mutable state. The serial engine
// ignores labels entirely.
//
// Spawning mid-run is allowed in single-partition worlds (as before) but
// panics in a multi-partition world running the parallel engine: actor
// ids are assigned from a global table that windows would race on.
func (w *World) SpawnIn(part int, name string, fn func(*Actor)) *Actor {
	if part < 0 {
		panic("sim: negative partition")
	}
	if w.parts != nil && w.nparts > 1 {
		panic("sim: mid-run Spawn in a multi-partition parallel world")
	}
	if part+1 > w.nparts {
		w.nparts = part + 1
	}
	a := &Actor{
		id:      len(w.actors),
		name:    name,
		w:       w,
		partID:  part,
		state:   ready,
		resume:  resumePool.Get().(chan struct{}),
		heapIdx: -1,
	}
	if w.parts != nil {
		a.part = w.parts[part]
	}
	w.actors = append(w.actors, a)
	if a.part != nil {
		a.part.live++
	} else {
		w.liveNonDaemons++
	}
	w.heapPush(a)
	go a.run(fn)
	return a
}

// SpawnAt is Spawn with an explicit start time. It is mainly useful for
// staggering workload arrivals before Run begins.
func (w *World) SpawnAt(name string, start Time, fn func(*Actor)) *Actor {
	a := w.Spawn(name, fn)
	a.now = start
	w.heapFix(a)
	return a
}

// ErrDeadlock is returned (wrapped) by Run when non-daemon actors remain
// blocked with no runnable actor to wake them.
var ErrDeadlock = errors.New("sim: deadlock")

// Run executes the simulation until every non-daemon actor has finished.
// Remaining daemon actors are then terminated. Run reports a deadlock if
// no actor is runnable while non-daemon actors are still blocked.
//
// In heap mode dispatch is mostly actor-to-actor: a yielding actor picks
// the next one from the ready queue and resumes it directly (or keeps
// running when it is itself the minimum), so the common case costs one
// goroutine handoff instead of the two a scheduler round-trip takes.
// Control returns here only for termination and deadlock handling. Linear
// mode routes every yield through this loop, exactly as the pre-heap
// engine did.
func (w *World) Run() error {
	if w.running {
		return errors.New("sim: world already running")
	}
	w.running = true
	defer func() { w.running = false }()

	var err error
	if w.parWorkers > 0 {
		err = w.runParallel()
	} else {
		err = w.runSerial(true)
	}
	// A checkpoint armed at or past the end of the run fires at
	// termination, after teardown: the caller still gets its snapshot,
	// recognizable by actor states recording the kill.
	if w.ckptFn != nil {
		w.fireCheckpoint()
	}
	return err
}

// RunPhase executes the serial engine until every current non-daemon
// actor has finished, then returns without terminating daemons: blocked
// daemons stay parked in their message loops, and the caller may spawn
// more actors and call RunPhase or Run again. It is the bootstrap
// primitive behind snapshot forking — run a world's warm-up phase,
// snapshot (or overlay onto) the quiesced state, then attach the
// workload proper and Run to completion. Serial engine only: the
// parallel engine's termination cut-off is a whole-run construct.
func (w *World) RunPhase() error {
	if w.running {
		return errors.New("sim: world already running")
	}
	if w.parWorkers > 0 {
		panic("sim: RunPhase requires the serial engine")
	}
	w.running = true
	defer func() { w.running = false }()
	return w.runSerial(false)
}

// DrainDaemons executes every already-runnable daemon dispatch until no
// ready actor remains, then returns with the daemons parked. RunPhase
// returns the instant the last non-daemon finishes, which can abandon
// daemon work already scheduled at that instant — a wake for a delivery
// that was in flight, a deferred reply flushed after an enclave turned
// ready. A phase boundary that must be a pure function of the phase's
// inputs (snapshot forking) drains that residue explicitly before
// cutting, so the quiesced state does not depend on how far past the
// daemons' last work the non-daemons happened to run. Serial engine
// only, like RunPhase.
func (w *World) DrainDaemons() error {
	if w.running {
		return errors.New("sim: world already running")
	}
	if w.parWorkers > 0 {
		panic("sim: DrainDaemons requires the serial engine")
	}
	w.running = true
	defer func() { w.running = false }()
	for {
		var next *Actor
		if w.linearScan {
			next = w.pickNextLinear()
		} else {
			next = w.heapPop()
		}
		if next == nil {
			return nil
		}
		w.dispatch(next)
		next.resume <- struct{}{}
		<-w.yield
	}
}

// runSerial is the serial engine loop. kill selects whether daemons are
// terminated when the last non-daemon finishes (Run) or left parked for
// a later phase (RunPhase); deadlocks tear the world down either way.
func (w *World) runSerial(kill bool) error {
	for {
		if w.linearScan {
			if !w.nonDaemonAlive() {
				if kill {
					w.killAll()
				}
				return nil
			}
		} else if w.liveNonDaemons == 0 {
			if kill {
				w.killAll()
			}
			return nil
		}
		var next *Actor
		if w.linearScan {
			next = w.pickNextLinear()
		} else {
			next = w.heapPop()
		}
		if next == nil {
			if blocked := w.blockedNonDaemons(); len(blocked) > 0 {
				w.killAll()
				return fmt.Errorf("%w: %d actor(s) blocked forever: %v",
					ErrDeadlock, len(blocked), blocked)
			}
			w.killAll()
			return nil
		}
		w.dispatch(next)
		next.resume <- struct{}{}
		<-w.yield
	}
}

// dispatch advances the global clock to the dispatched actor's and emits
// the trace line. It runs on whichever goroutine performs the handoff —
// the scheduler or, in heap mode, the yielding actor — always under the
// one-runnable-goroutine guarantee.
func (w *World) dispatch(next *Actor) {
	// The checkpoint fires the instant the next dispatch would reach the
	// cut: every dispatch strictly below ckptT has executed and been
	// observed, none at or past it has — the exact serial cut semantics
	// the snapshot watermark records. Firing before the clock update and
	// the observer call keeps the dispatch itself on the far side.
	if w.ckptFn != nil && next.now >= w.ckptT {
		w.fireCheckpoint()
	}
	if next.now > w.now {
		w.now = next.now
	}
	if w.Trace != nil {
		w.Trace("t=%v run %s", w.now, next.name)
	}
	if w.obs != nil {
		w.obs.Dispatch(next, w.now)
	}
}

// dispatchFrom hands control onward from a, which has just updated its
// own state and clock (heap mode only). It returns true when a is itself
// the minimal ready actor and should simply keep running — no handoff at
// all. Otherwise it resumes the next actor directly, or wakes the
// scheduler loop when termination or deadlock handling is needed, and
// returns false: a finished actor then exits, a yielding one waits on its
// resume channel.
func (w *World) dispatchFrom(a *Actor) bool {
	if a.state == ready {
		w.heapPush(a)
	}
	if w.liveNonDaemons == 0 {
		w.yield <- a
		return false
	}
	next := w.heapPop()
	if next == nil {
		w.yield <- a
		return false
	}
	w.dispatch(next)
	if next == a {
		return true
	}
	next.resume <- struct{}{}
	return false
}

// pickNextLinear is the original O(n) dispatch scan, kept as the
// reference implementation behind SetLinearScan.
func (w *World) pickNextLinear() *Actor {
	var best *Actor
	for _, a := range w.actors {
		if a.state != ready {
			continue
		}
		if best == nil || a.now < best.now || (a.now == best.now && a.id < best.id) {
			best = a
		}
	}
	return best
}

// --- ready-queue heap ---------------------------------------------------
//
// Invariant: heap[i] is a ready actor with heap[i].heapIdx == i, and the
// key (now, id) of every node is <= its children's. Ids are unique, so
// the minimum is unique and the heap's pop order equals the linear scan's
// pick order exactly.

// actorLess orders actors by (time, id) — the dispatch priority.
func actorLess(a, b *Actor) bool {
	return a.now < b.now || (a.now == b.now && a.id < b.id)
}

// heapEntry is one ready actor with its dispatch key copied inline, so
// sift compares walk contiguous heap memory instead of dereferencing
// scattered Actor structs (the dominant cache-miss cost of the dispatch
// hot path). Invariant: key == a.now and id == a.id while enqueued; fix
// refreshes the key after a wakeup rewrites the clock.
type heapEntry struct {
	key Time
	id  int
	a   *Actor
}

func entryLess(a, b *heapEntry) bool {
	return a.key < b.key || (a.key == b.key && a.id < b.id)
}

// actorHeap is an indexed 4-ary min-heap of ready actors ordered by
// actorLess. The world's serial scheduler owns one; under the parallel
// engine each partition owns its own, so the methods live on the slice
// type rather than on World. Four-way branching halves the tree depth of
// a binary heap — and with it the compare rounds and heapIdx writes on
// the dispatch hot path — while heap shape never affects pop order (the
// (now, id) key is a total order).
type actorHeap []heapEntry

func (h *actorHeap) push(a *Actor) {
	i := len(*h)
	a.heapIdx = i
	*h = append(*h, heapEntry{key: a.now, id: a.id, a: a})
	h.siftUp(i)
}

// pop removes and returns the minimal-(time,id) ready actor, or nil.
func (h *actorHeap) pop() *Actor {
	s := *h
	n := len(s)
	if n == 0 {
		return nil
	}
	top := s[0].a
	n--
	if n > 0 {
		s[0] = s[n]
		s[0].a.heapIdx = 0
	}
	s[n] = heapEntry{}
	*h = s[:n]
	if n > 1 {
		h.siftDown(0)
	}
	top.heapIdx = -1
	return top
}

// peek returns the minimal-(time,id) ready actor without removing it, or
// nil when the heap is empty.
func (h actorHeap) peek() *Actor {
	if len(h) == 0 {
		return nil
	}
	return h[0].a
}

// fix restores the heap invariant after a's clock changed while
// enqueued, refreshing the inline key.
func (h actorHeap) fix(a *Actor) {
	i := a.heapIdx
	if i < 0 {
		return
	}
	h[i].key = a.now
	h.siftUp(i)
	h.siftDown(a.heapIdx)
}

func (h actorHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].a.heapIdx = i
		h[parent].a.heapIdx = parent
		i = parent
	}
}

func (h actorHeap) siftDown(i int) {
	n := len(h)
	for {
		min := i
		base := 4*i + 1
		end := base + 4
		if end > n {
			end = n
		}
		for c := base; c < end; c++ {
			if entryLess(&h[c], &h[min]) {
				min = c
			}
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		h[i].a.heapIdx = i
		h[min].a.heapIdx = min
		i = min
	}
}

// heapPush enqueues a ready actor in whichever ready queue owns it: the
// actor's partition heap under the parallel engine, otherwise the
// world's. No-op in linear mode, where the scan consults actor state
// directly.
func (w *World) heapPush(a *Actor) {
	if a.part != nil {
		a.part.heap.push(a)
		return
	}
	if w.linearScan {
		return
	}
	w.heap.push(a)
}

// heapPop removes and returns the minimal-(time,id) ready actor, or nil
// (serial engine only).
func (w *World) heapPop() *Actor {
	return w.heap.pop()
}

// heapFix restores the heap invariant after a's clock changed while
// enqueued (SpawnAt and child-spawn set the start time after Spawn).
func (w *World) heapFix(a *Actor) {
	if a.part != nil {
		a.part.heap.fix(a)
		return
	}
	if w.linearScan {
		return
	}
	w.heap.fix(a)
}

// nonDaemonAlive reports whether any non-daemon actor has not finished
// (linear-mode termination check; heap mode uses the liveNonDaemons
// counter).
func (w *World) nonDaemonAlive() bool {
	for _, a := range w.actors {
		if !a.daemon && a.state != done && a.state != killed {
			return true
		}
	}
	return false
}

func (w *World) blockedNonDaemons() []string {
	var names []string
	for _, a := range w.actors {
		if a.state == blocked && !a.daemon {
			names = append(names, fmt.Sprintf("%s(%s)", a.name, a.blockReason))
		}
	}
	sort.Strings(names)
	return names
}

// killAll terminates every actor that has not finished, including daemons
// blocked on message loops, so their goroutines do not leak. Termination
// follows spawn order, which keeps teardown deterministic regardless of
// scheduler mode. Once every goroutine has exited the resume channels are
// recycled for future worlds.
func (w *World) killAll() {
	for _, a := range w.actors {
		if a.state == done || a.state == killed {
			continue
		}
		a.state = killed
		a.resume <- struct{}{}
		if a.part != nil {
			<-a.part.yield
		} else {
			<-w.yield
		}
	}
	// Every actor goroutine has now exited (finished actors yielded for
	// the last time before killAll began; killed ones were just joined via
	// w.yield), so no channel below can ever be touched again.
	for _, a := range w.actors {
		if a.resume != nil {
			resumePool.Put(a.resume)
			a.resume = nil
		}
	}
}

// Reserve pre-sizes the actor table and ready queue for n actors, saving
// the append-doubling churn of worlds whose population is known up front.
func (w *World) Reserve(n int) {
	if cap(w.actors) < n {
		actors := make([]*Actor, len(w.actors), n)
		copy(actors, w.actors)
		w.actors = actors
	}
	if !w.linearScan && cap(w.heap) < n {
		heap := make(actorHeap, len(w.heap), n)
		copy(heap, w.heap)
		w.heap = heap
	}
}
