package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// resumePool recycles actor resume channels across Worlds. A channel is
// only returned to the pool after its actor's goroutine has provably
// exited (Run's teardown), so a pooled channel is always idle. This
// matters for sweeps: each of thousands of short-lived worlds would
// otherwise allocate a fresh channel per actor.
var resumePool = sync.Pool{New: func() any { return make(chan struct{}) }}

// World owns a set of actors and dispatches them in virtual-time order.
// Create one with NewWorld, add actors with Spawn (before or during Run),
// and call Run to execute the simulation to completion.
//
// Dispatch order is defined by the minimal (time, id) pair over all ready
// actors, ties broken by the lower actor id. The default scheduler keeps
// ready actors in an indexed min-heap so each dispatch is O(log n); the
// original O(n) linear scan is retained behind SetLinearScan as a
// reference implementation for determinism regression tests and
// benchmarking. Both produce bit-identical schedules.
//
// A World is not safe for concurrent use from multiple host goroutines;
// actors themselves never need synchronization because the scheduler
// guarantees mutual exclusion.
//
// # A World owns everything it touches
//
// Every piece of simulation state — actors, RNG streams, cores, zones,
// physical memory, inboxes, routers, nameservers, tracers — is reachable
// from exactly one World and is mutated only while that World's scheduler
// has dispatched one of its actors. Nothing in this module tree keeps
// package-level mutable state that two Worlds could share (configuration
// knobs like SetLinearScan are snapshotted per instance at creation).
// Consequently, distinct Worlds may run concurrently on distinct host
// goroutines with no synchronization whatsoever, and a sweep of N
// independent Worlds is embarrassingly parallel while remaining
// bit-identical to running them one after another. Code added to the
// simulation must preserve this invariant: per-world state lives on the
// World (or an object created per World), never in a package variable.
type World struct {
	actors  []*Actor
	yield   chan *Actor // actors hand control back to the scheduler here
	now     Time
	running bool
	seed    uint64
	nextRNG uint64
	stopped bool

	// heap is the ready queue: an indexed min-heap on (time, id). Running,
	// blocked, and finished actors are not in it. Unused when linearScan.
	heap []*Actor
	// liveNonDaemons counts non-daemon actors that have not finished, so
	// the run loop's termination check is O(1) instead of a scan.
	liveNonDaemons int
	// linearScan selects the pre-heap O(n) scheduler (reference
	// implementation, see SetLinearScan).
	linearScan bool

	// Trace, if non-nil, receives a line per scheduling decision. Used by
	// tests; nil in normal runs.
	Trace func(format string, args ...any)

	// obs, if non-nil, receives observability events (see Observer). It
	// never influences scheduling or clocks.
	obs Observer

	// inj, if non-nil, is the fault injector consulted at delivery and
	// service boundaries (see Injector). Unlike obs it is allowed — indeed
	// exists — to perturb timing and drop messages; nil means the
	// zero-fault world.
	inj Injector
}

// NewWorld returns an empty world whose RNG streams derive from seed.
func NewWorld(seed uint64) *World {
	return &World{
		yield: make(chan *Actor),
		seed:  seed,
	}
}

// SetLinearScan switches the scheduler to the original O(n)
// linear-scan dispatch loop. The schedule is bit-identical to the default
// heap scheduler — both pick the ready actor with minimal (time, id) — so
// this exists only as the reference baseline for determinism regression
// tests and for the engine benchmark's before/after comparison. It must
// be called before Run.
func (w *World) SetLinearScan(on bool) {
	if w.running {
		panic("sim: SetLinearScan while running")
	}
	if on == w.linearScan {
		return
	}
	w.linearScan = on
	w.heap = w.heap[:0]
	if !on {
		// Rebuild the ready queue for any actors spawned while linear.
		for _, a := range w.actors {
			a.heapIdx = -1
			if a.state == ready {
				w.heapPush(a)
			}
		}
	}
}

// Now reports the current global virtual time: the clock of the most
// recently dispatched actor.
func (w *World) Now() Time { return w.now }

// NewRNG returns a fresh deterministic RNG stream. Streams created in the
// same order across runs produce identical sequences.
func (w *World) NewRNG() *RNG {
	w.nextRNG++
	return NewRNG(w.seed ^ (w.nextRNG * 0x9e3779b97f4a7c15))
}

// Spawn creates an actor named name running fn. If called from within a
// running actor, the child starts at the caller's current time; otherwise
// it starts at time zero. Daemon actors (see Actor.SetDaemon) do not keep
// the world alive.
func (w *World) Spawn(name string, fn func(*Actor)) *Actor {
	a := &Actor{
		id:      len(w.actors),
		name:    name,
		w:       w,
		state:   ready,
		resume:  resumePool.Get().(chan struct{}),
		heapIdx: -1,
	}
	w.actors = append(w.actors, a)
	w.liveNonDaemons++
	w.heapPush(a)
	go a.run(fn)
	return a
}

// SpawnAt is Spawn with an explicit start time. It is mainly useful for
// staggering workload arrivals before Run begins.
func (w *World) SpawnAt(name string, start Time, fn func(*Actor)) *Actor {
	a := w.Spawn(name, fn)
	a.now = start
	w.heapFix(a)
	return a
}

// ErrDeadlock is returned (wrapped) by Run when non-daemon actors remain
// blocked with no runnable actor to wake them.
var ErrDeadlock = errors.New("sim: deadlock")

// Run executes the simulation until every non-daemon actor has finished.
// Remaining daemon actors are then terminated. Run reports a deadlock if
// no actor is runnable while non-daemon actors are still blocked.
//
// In heap mode dispatch is mostly actor-to-actor: a yielding actor picks
// the next one from the ready queue and resumes it directly (or keeps
// running when it is itself the minimum), so the common case costs one
// goroutine handoff instead of the two a scheduler round-trip takes.
// Control returns here only for termination and deadlock handling. Linear
// mode routes every yield through this loop, exactly as the pre-heap
// engine did.
func (w *World) Run() error {
	if w.running {
		return errors.New("sim: world already running")
	}
	w.running = true
	defer func() { w.running = false }()

	for {
		if w.linearScan {
			if !w.nonDaemonAlive() {
				w.killAll()
				return nil
			}
		} else if w.liveNonDaemons == 0 {
			w.killAll()
			return nil
		}
		var next *Actor
		if w.linearScan {
			next = w.pickNextLinear()
		} else {
			next = w.heapPop()
		}
		if next == nil {
			if blocked := w.blockedNonDaemons(); len(blocked) > 0 {
				w.killAll()
				return fmt.Errorf("%w: %d actor(s) blocked forever: %v",
					ErrDeadlock, len(blocked), blocked)
			}
			w.killAll()
			return nil
		}
		w.dispatch(next)
		next.resume <- struct{}{}
		<-w.yield
	}
}

// dispatch advances the global clock to the dispatched actor's and emits
// the trace line. It runs on whichever goroutine performs the handoff —
// the scheduler or, in heap mode, the yielding actor — always under the
// one-runnable-goroutine guarantee.
func (w *World) dispatch(next *Actor) {
	if next.now > w.now {
		w.now = next.now
	}
	if w.Trace != nil {
		w.Trace("t=%v run %s", w.now, next.name)
	}
	if w.obs != nil {
		w.obs.Dispatch(next, w.now)
	}
}

// dispatchFrom hands control onward from a, which has just updated its
// own state and clock (heap mode only). It returns true when a is itself
// the minimal ready actor and should simply keep running — no handoff at
// all. Otherwise it resumes the next actor directly, or wakes the
// scheduler loop when termination or deadlock handling is needed, and
// returns false: a finished actor then exits, a yielding one waits on its
// resume channel.
func (w *World) dispatchFrom(a *Actor) bool {
	if a.state == ready {
		w.heapPush(a)
	}
	if w.liveNonDaemons == 0 {
		w.yield <- a
		return false
	}
	next := w.heapPop()
	if next == nil {
		w.yield <- a
		return false
	}
	w.dispatch(next)
	if next == a {
		return true
	}
	next.resume <- struct{}{}
	return false
}

// pickNextLinear is the original O(n) dispatch scan, kept as the
// reference implementation behind SetLinearScan.
func (w *World) pickNextLinear() *Actor {
	var best *Actor
	for _, a := range w.actors {
		if a.state != ready {
			continue
		}
		if best == nil || a.now < best.now || (a.now == best.now && a.id < best.id) {
			best = a
		}
	}
	return best
}

// --- ready-queue heap ---------------------------------------------------
//
// Invariant: heap[i] is a ready actor with heap[i].heapIdx == i, and the
// key (now, id) of every node is <= its children's. Ids are unique, so
// the minimum is unique and the heap's pop order equals the linear scan's
// pick order exactly.

// actorLess orders actors by (time, id) — the dispatch priority.
func actorLess(a, b *Actor) bool {
	return a.now < b.now || (a.now == b.now && a.id < b.id)
}

// heapPush enqueues a ready actor. No-op in linear mode, where the scan
// consults actor state directly.
func (w *World) heapPush(a *Actor) {
	if w.linearScan {
		return
	}
	a.heapIdx = len(w.heap)
	w.heap = append(w.heap, a)
	w.siftUp(a.heapIdx)
}

// heapPop removes and returns the minimal-(time,id) ready actor, or nil.
func (w *World) heapPop() *Actor {
	if len(w.heap) == 0 {
		return nil
	}
	top := w.heap[0]
	last := len(w.heap) - 1
	w.heap[0] = w.heap[last]
	w.heap[0].heapIdx = 0
	w.heap[last] = nil
	w.heap = w.heap[:last]
	if last > 0 {
		w.siftDown(0)
	}
	top.heapIdx = -1
	return top
}

// heapFix restores the heap invariant after a's clock changed while
// enqueued (SpawnAt and child-spawn set the start time after Spawn).
func (w *World) heapFix(a *Actor) {
	if w.linearScan || a.heapIdx < 0 {
		return
	}
	w.siftUp(a.heapIdx)
	w.siftDown(a.heapIdx)
}

func (w *World) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !actorLess(w.heap[i], w.heap[parent]) {
			break
		}
		w.heap[i], w.heap[parent] = w.heap[parent], w.heap[i]
		w.heap[i].heapIdx = i
		w.heap[parent].heapIdx = parent
		i = parent
	}
}

func (w *World) siftDown(i int) {
	n := len(w.heap)
	for {
		min := i
		if l := 2*i + 1; l < n && actorLess(w.heap[l], w.heap[min]) {
			min = l
		}
		if r := 2*i + 2; r < n && actorLess(w.heap[r], w.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		w.heap[i], w.heap[min] = w.heap[min], w.heap[i]
		w.heap[i].heapIdx = i
		w.heap[min].heapIdx = min
		i = min
	}
}

// nonDaemonAlive reports whether any non-daemon actor has not finished
// (linear-mode termination check; heap mode uses the liveNonDaemons
// counter).
func (w *World) nonDaemonAlive() bool {
	for _, a := range w.actors {
		if !a.daemon && a.state != done && a.state != killed {
			return true
		}
	}
	return false
}

func (w *World) blockedNonDaemons() []string {
	var names []string
	for _, a := range w.actors {
		if a.state == blocked && !a.daemon {
			names = append(names, fmt.Sprintf("%s(%s)", a.name, a.blockReason))
		}
	}
	sort.Strings(names)
	return names
}

// killAll terminates every actor that has not finished, including daemons
// blocked on message loops, so their goroutines do not leak. Termination
// follows spawn order, which keeps teardown deterministic regardless of
// scheduler mode. Once every goroutine has exited the resume channels are
// recycled for future worlds.
func (w *World) killAll() {
	for _, a := range w.actors {
		if a.state == done || a.state == killed {
			continue
		}
		a.state = killed
		a.resume <- struct{}{}
		<-w.yield
	}
	// Every actor goroutine has now exited (finished actors yielded for
	// the last time before killAll began; killed ones were just joined via
	// w.yield), so no channel below can ever be touched again.
	for _, a := range w.actors {
		if a.resume != nil {
			resumePool.Put(a.resume)
			a.resume = nil
		}
	}
}

// Reserve pre-sizes the actor table and ready queue for n actors, saving
// the append-doubling churn of worlds whose population is known up front.
func (w *World) Reserve(n int) {
	if cap(w.actors) < n {
		actors := make([]*Actor, len(w.actors), n)
		copy(actors, w.actors)
		w.actors = actors
	}
	if !w.linearScan && cap(w.heap) < n {
		heap := make([]*Actor, len(w.heap), n)
		copy(heap, w.heap)
		w.heap = heap
	}
}
