package sim

import (
	"math"
	"sort"
)

// CacheStats counts the traffic of a memoization cache — hits, misses,
// and invalidations. The XEMEM serve path uses one for its segid →
// frame-list cache; experiment harnesses read the counters to verify
// cache behaviour without affecting simulated time.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// HitRate reports hits / (hits + misses), or 0 when the cache is unused.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Sample accumulates observations and reports summary statistics. The
// experiment harnesses use it for the mean ± stddev values the paper's
// figures report.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddTime appends a duration observation in seconds.
func (s *Sample) AddTime(t Time) { s.Add(t.Seconds()) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Mean reports the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev reports the sample standard deviation (0 with <2 observations).
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min reports the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max reports the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile reports the p-th percentile (0 <= p <= 100) by nearest-rank
// on a sorted copy.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
