package sim

import "math"

// RNG is a small, fast, deterministic random stream (SplitMix64 core).
// Every noise process in the reproduction draws from a seeded RNG so runs
// are exactly repeatable. math/rand is deliberately avoided: its global
// state and historical algorithm changes make cross-version determinism
// fragile, and the simulator needs per-actor streams.
type RNG struct {
	state uint64
	// spare holds a cached second normal deviate from the Marsaglia polar
	// method; spareOK says whether it is valid.
	spare   float64
	spareOK bool
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent child stream from r's current position
// without consuming from r: the child's seed is a SplitMix64-style mix
// of the current state and k, so distinct k values give decorrelated
// streams and forking is invisible to r's own draw sequence. The fault
// injector uses it to pin one stream per engine partition — partition
// draws then depend only on that partition's own delivery order, never
// on cross-partition interleaving.
func (r *RNG) Fork(k uint64) *RNG {
	z := r.state ^ (k+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// State exports the stream's exact position — the SplitMix64 state plus
// the cached Marsaglia polar spare — for snapshot encoding. A stream
// restored with SetState produces the identical draw sequence from here.
func (r *RNG) State() (state uint64, spare float64, spareOK bool) {
	return r.state, r.spare, r.spareOK
}

// SetState overwrites the stream's position (snapshot restore).
func (r *RNG) SetState(state uint64, spare float64, spareOK bool) {
	r.state, r.spare, r.spareOK = state, spare, spareOK
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n(0)")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Uint64n(uint64(n))) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.spareOK = true
		return u * f
	}
}

// ExpFloat64 returns an exponentially distributed deviate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Normal returns a normal deviate with the given mean and standard
// deviation, truncated at zero (negative durations are meaningless).
func (r *RNG) Normal(mean, stddev float64) float64 {
	v := mean + stddev*r.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (r *RNG) Jitter(d Time, f float64) Time {
	scale := 1 + f*(2*r.Float64()-1)
	return Time(float64(d) * scale)
}
