package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical values across different seeds", same)
	}
}

func TestUint64nRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := NewRNG(seed)
		v := r.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(7)
	n := 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	variance := ss/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestNormalTruncatesAtZero(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if v := r.Normal(0.1, 10); v < 0 {
			t.Fatalf("Normal returned negative %v", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		d := Time(1000000)
		v := r.Jitter(d, 0.25)
		return v >= 750000 && v <= 1250000
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	// Sample stddev of that classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := s.Stddev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 4 {
		t.Fatalf("p50 = %v, want 4", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("p100 = %v, want 9", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000s"},
		{-1500, "-1.500us"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestCopyTime(t *testing.T) {
	if got := CopyTime(1000, 1e9); got != 1000 {
		t.Fatalf("CopyTime = %v, want 1000ns", got)
	}
	if got := CopyTime(0, 1e9); got != 0 {
		t.Fatalf("CopyTime(0) = %v", got)
	}
	if got := CopyTime(100, 0); got != 0 {
		t.Fatalf("CopyTime(bw=0) = %v", got)
	}
}

func TestPerSecond(t *testing.T) {
	if got := PerSecond(13e9, Second); got != 13e9 {
		t.Fatalf("PerSecond = %v", got)
	}
	if got := PerSecond(1, 0); got != 0 {
		t.Fatalf("PerSecond(d=0) = %v", got)
	}
}
