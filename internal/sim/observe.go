package sim

// Observer receives the engine's observability events: every cost charge
// (Actor.Charge/ChargeN), every resource acquisition with its queueing
// delay and depth, every receive-queue wait, and every scheduler
// dispatch. Implementations must be pure observers — they may record
// state of their own but must never call back into actors, resources, or
// the world, and must not mutate any simulated clock. Under that
// contract an installed observer has zero effect on simulated
// timestamps: every experiment produces bit-identical results with and
// without one (the tracer-off determinism tests assert exactly this).
//
// Observer methods are invoked under the world's one-runnable-goroutine
// guarantee, so implementations need no locking, and the event order
// itself is deterministic for a given seed.
type Observer interface {
	// Span reports a cost charge: actor a performed op for dur of virtual
	// time starting at start (charges batched by ChargeN appear as one
	// span, matching the batched advance they charge).
	Span(a *Actor, op string, start, dur Time)

	// AcquireRes reports a resource acquisition: actor a arrived at
	// arrival, began service at start (start-arrival is the queueing
	// delay), and occupied r for dur, labelled op ("" for untagged
	// acquisitions). depth is the number of queued acquirers — including
	// this one — observed when the actor first had to wait (0 when it
	// did not wait).
	AcquireRes(r *Resource, a *Actor, op string, arrival, start, dur Time, depth int)

	// QueueWait reports one dequeue from a named receive queue: the
	// delivery was enqueued at enqueued and dequeued by actor a at
	// dequeued; depth is the queue length remaining after the dequeue.
	QueueWait(queue string, a *Actor, enqueued, dequeued Time, depth int)

	// Count attributes d of virtual time to a named cause without a span
	// of its own — used when a cost component is folded into a larger
	// charge (e.g. the per-page mm-coherence penalty inside a map span)
	// but must stay separately accountable.
	Count(name string, a *Actor, d Time)

	// Dispatch reports a scheduler dispatch of actor a at virtual time t.
	Dispatch(a *Actor, t Time)
}

// SetObserver installs (or, with nil, removes) the world's observer.
// Installing one mid-run is allowed — events simply begin at that point.
func (w *World) SetObserver(o Observer) { w.obs = o }

// Observer reports the installed observer, nil when none. Code that
// emits events on behalf of a running actor must use Actor.Observer
// instead, which stays correct under the parallel engine.
func (w *World) Observer() Observer { return w.obs }

// Observer reports the observer that should receive events attributed to
// this actor's execution: the world's installed observer or, while the
// parallel engine is running a multi-partition observed world, the
// partition-local buffer that replays to the real observer in serial
// order at the next barrier (see parallel.go). Substrate code emitting
// events for an actor must route them here rather than through
// World.Observer so the buffering stays transparent.
func (a *Actor) Observer() Observer {
	if p := a.part; p != nil && p.buf != nil {
		return p.buf
	}
	return a.w.obs
}

// Charge is Advance with an operation label: it charges d of virtual
// time to the actor exactly as Advance does, additionally reporting the
// span to the observer when one is installed. Substrate code uses it at
// every cost-charge site so traces can attribute where simulated time
// goes; with no observer it is Advance.
func (a *Actor) Charge(op string, d Time) {
	if obs := a.Observer(); obs != nil {
		a.Settle() // commit advances elided before a mid-run install
		obs.Span(a, op, a.now, d)
	}
	a.Advance(d)
}

// ChargeN is AdvanceN with an operation label: n repetitions of a d-cost
// operation charged as one batched advance, reported as a single span of
// d*n.
func (a *Actor) ChargeN(op string, d Time, n uint64) {
	if obs := a.Observer(); obs != nil {
		a.Settle() // commit advances elided before a mid-run install
		obs.Span(a, op, a.now, d*Time(n))
	}
	a.AdvanceN(d, n)
}
