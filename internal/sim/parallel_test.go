package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// recObs records every observer callback as a formatted line, giving the
// identity tests a complete, order-sensitive transcript of a run.
// Dispatch lines deliberately omit the reported time: observers see the
// clamped scheduler clock, which is global for the serial engine but
// partition-local for the parallel one (the dispatched actor, its own
// clock, and every span/acquire/count timestamp are identical).
type recObs struct {
	lines []string
}

func (o *recObs) Span(a *Actor, op string, start, dur Time) {
	o.lines = append(o.lines, fmt.Sprintf("S %s %s %d %d", a.Name(), op, start, dur))
}

func (o *recObs) AcquireRes(r *Resource, a *Actor, op string, arrival, start, dur Time, depth int) {
	o.lines = append(o.lines, fmt.Sprintf("A %s %s %s %d %d %d %d", r.Name(), a.Name(), op, arrival, start, dur, depth))
}

func (o *recObs) QueueWait(queue string, a *Actor, enqueued, dequeued Time, depth int) {
	o.lines = append(o.lines, fmt.Sprintf("Q %s %s %d %d %d", queue, a.Name(), enqueued, dequeued, depth))
}

func (o *recObs) Count(name string, a *Actor, d Time) {
	o.lines = append(o.lines, fmt.Sprintf("C %s %s %d", name, a.Name(), d))
}

func (o *recObs) Dispatch(a *Actor, t Time) {
	o.lines = append(o.lines, fmt.Sprintf("D %s", a.Name()))
}

// ringSummary is everything a ring-world run produces that identity
// tests compare: the transcript, the final virtual time, and aggregate
// stats read back from the world's objects.
type ringSummary struct {
	lines []string
	final Time
	stats []string
	err   error
}

// buildRingWorld constructs the canonical partitioned test world: nodes
// simulated cluster nodes mapped onto nparts partitions (node n lands in
// partition n%nparts), each node holding a comms actor exchanging timed
// messages around a mailbox ring, a kernel-style message-loop daemon, a
// Block/Unblock service pair, a batch of compute workers contending on a
// node-local resource, and a long-sleeping sentinel. The sentinel
// outlives every possible mailbox delivery, pinning the serial engine's
// termination instant past all daemon activity — otherwise daemon events
// between the last non-daemon finish and the window horizon would run
// under one engine and not the other, a real (documented) semantic edge
// rather than a bug. Every noise draw comes from id-derived actor
// streams, so the workload is identical no matter how it is partitioned.
func buildRingWorld(seed uint64, nodes, nparts, workersPer, rounds int, obs Observer) (*World, func() []string) {
	w := NewWorld(seed)
	w.SetStableActorRNG(true)
	if obs != nil {
		w.SetObserver(obs)
	}
	const lat = 20 * Microsecond

	ring := make([]*Mailbox, nodes)
	daemonBox := make([]*Mailbox, nodes)
	for n := 0; n < nodes; n++ {
		ring[n] = w.NewMailbox(fmt.Sprintf("ring%d", n), n%nparts, lat)
		daemonBox[n] = w.NewMailbox(fmt.Sprintf("kern%d", n), n%nparts, lat)
	}

	locks := make([]*Resource, nodes)
	for n := 0; n < nodes; n++ {
		n := n
		w.SetDefaultPartition(n % nparts)
		locks[n] = NewResource(fmt.Sprintf("node%d/lock", n))
		lock := locks[n]

		// Kernel-style daemon: serves exactly 2*rounds timed requests from
		// its mailbox, then blocks forever (killed at teardown).
		w.Spawn(fmt.Sprintf("node%d/kern", n), func(a *Actor) {
			a.SetDaemon()
			for i := 0; i < 2*rounds; i++ {
				msg := daemonBox[n].Recv(a)
				a.Charge("serve", Time(300+len(msg.(string))*10))
			}
			a.Block("kern idle")
		})

		// Comms actor: ring exchange plus daemon requests (its own node's
		// and the next node's — a cross-partition send path distinct from
		// the ring when the layout splits them).
		w.Spawn(fmt.Sprintf("node%d/comms", n), func(a *Actor) {
			r := a.RNG()
			next := (n + 1) % nodes
			for i := 0; i < rounds; i++ {
				a.Charge("pack", Time(200+r.Intn(400)))
				ring[next].Send(a, fmt.Sprintf("r%d.%d", n, i), lat+Time(r.Intn(5000)))
				daemonBox[n].Send(a, fmt.Sprintf("local%d", i), lat)
				daemonBox[next].Send(a, fmt.Sprintf("remote%d", i), lat+Time(r.Intn(2000)))
				got := ring[n].Recv(a).(string)
				a.Charge("unpack", Time(100+len(got)*5+r.Intn(300)))
			}
		})

		// A Block/Unblock pair exercising the partition-local wake path.
		waiter := w.Spawn(fmt.Sprintf("node%d/waiter", n), func(a *Actor) {
			for i := 0; i < rounds; i++ {
				a.Block("await kick")
				a.Charge("kicked", 150)
			}
		})
		w.Spawn(fmt.Sprintf("node%d/kicker", n), func(a *Actor) {
			r := a.RNG()
			for i := 0; i < rounds; i++ {
				a.Advance(Time(1000 + r.Intn(3000)))
				a.Unblock(waiter)
			}
		})

		// Sentinel: sleeps past any possible daemon delivery time.
		w.Spawn(fmt.Sprintf("node%d/sentinel", n), func(a *Actor) {
			a.Advance(Time(rounds) * 100 * Microsecond)
		})

		for i := 0; i < workersPer; i++ {
			w.Spawn(fmt.Sprintf("node%d/worker%d", n, i), func(a *Actor) {
				r := a.RNG()
				for s := 0; s < 8*rounds; s++ {
					a.Charge("compute", Time(200+r.Intn(700)))
					if s%4 == 0 {
						lock.AcquireOp(a, Time(100+r.Intn(200)), "svc")
					}
				}
			})
		}
	}
	w.SetDefaultPartition(0)

	stats := func() []string {
		var out []string
		for n := 0; n < nodes; n++ {
			out = append(out, fmt.Sprintf("ring%d sent=%d recv=%d depth=%d", n, ring[n].Sent(), ring[n].Received(), ring[n].MaxDepth()))
			out = append(out, fmt.Sprintf("kern%d sent=%d recv=%d", n, daemonBox[n].Sent(), daemonBox[n].Received()))
			out = append(out, fmt.Sprintf("lock%d busy=%d wait=%d acq=%d cont=%d", n, locks[n].BusyTime(), locks[n].WaitTime(), locks[n].Acquires(), locks[n].ContendedAcquires()))
		}
		return out
	}
	return w, stats
}

// runRing builds and runs the ring world; engineWorkers <= 0 selects the
// serial reference engine.
func runRing(seed uint64, nparts, workersPer, rounds, engineWorkers int) ringSummary {
	obs := &recObs{}
	w, stats := buildRingWorld(seed, nparts, nparts, workersPer, rounds, obs)
	if engineWorkers > 0 {
		w.SetParallel(engineWorkers)
	}
	err := w.Run()
	return ringSummary{lines: obs.lines, final: w.Now(), stats: stats(), err: err}
}

func diffSummaries(t *testing.T, label string, want, got ringSummary) {
	t.Helper()
	if (want.err == nil) != (got.err == nil) || (want.err != nil && want.err.Error() != got.err.Error()) {
		t.Fatalf("%s: err = %v, want %v", label, got.err, want.err)
	}
	if want.final != got.final {
		t.Errorf("%s: final time = %d, want %d", label, got.final, want.final)
	}
	if len(want.lines) != len(got.lines) {
		n := len(want.lines)
		if len(got.lines) < n {
			n = len(got.lines)
		}
		i := 0
		for i < n && want.lines[i] == got.lines[i] {
			i++
		}
		lo := i - 3
		if lo < 0 {
			lo = 0
		}
		hi := i + 4
		gotCtx := got.lines[lo:minInt(hi, len(got.lines))]
		wantCtx := want.lines[lo:minInt(hi, len(want.lines))]
		t.Fatalf("%s: %d observer events, want %d; first divergence at %d\n got: %s\nwant: %s",
			label, len(got.lines), len(want.lines), i,
			strings.Join(gotCtx, " | "), strings.Join(wantCtx, " | "))
	}
	for i := range want.lines {
		if want.lines[i] != got.lines[i] {
			lo := i - 3
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("%s: event %d = %q, want %q\ncontext:\n got: %s\nwant: %s",
				label, i, got.lines[i], want.lines[i],
				strings.Join(got.lines[lo:i+1], " | "),
				strings.Join(want.lines[lo:i+1], " | "))
		}
	}
	for i := range want.stats {
		if want.stats[i] != got.stats[i] {
			t.Errorf("%s: stat %q, want %q", label, got.stats[i], want.stats[i])
		}
	}
}

// TestParallelRingIdentity is the engine-level digest-identity gate: the
// partitioned mailbox-ring world must produce the identical observer
// transcript, final time, and aggregate stats under the serial engine
// and under the parallel engine at 1, 2, and NumCPU workers, across
// partition counts.
func TestParallelRingIdentity(t *testing.T) {
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for _, nparts := range []int{1, 2, 4} {
		serial := runRing(7, nparts, 3, 6, 0)
		if serial.err != nil {
			t.Fatalf("serial nparts=%d: %v", nparts, serial.err)
		}
		if len(serial.lines) == 0 {
			t.Fatalf("serial nparts=%d produced no events", nparts)
		}
		for _, workers := range workerCounts {
			got := runRing(7, nparts, 3, 6, workers)
			diffSummaries(t, fmt.Sprintf("nparts=%d workers=%d", nparts, workers), serial, got)
		}
	}
}

// TestParallelLayoutInvariance checks the cross-layout property the
// scaling benchmark relies on: with stable actor RNG streams, the same
// workload built as 1, 2, or 4 partitions reaches the same virtual
// outcome — partition labels change scheduling freedom, never simulated
// behaviour. Equal-time dispatch interleavings can differ across
// layouts, so this compares final time and aggregate stats rather than
// the transcript.
func TestParallelLayoutInvariance(t *testing.T) {
	ref := runRing(11, 4, 2, 5, 2) // 4 nodes, 4 partitions
	if ref.err != nil {
		t.Fatal(ref.err)
	}
	for _, nparts := range []int{1, 2} {
		w, stats := buildRingWorld(11, 4, nparts, 2, 5, nil)
		w.SetParallel(2)
		if err := w.Run(); err != nil {
			t.Fatalf("nparts=%d: %v", nparts, err)
		}
		if got := w.Now(); got != ref.final {
			t.Errorf("nparts=%d: final time %d, want %d", nparts, got, ref.final)
		}
		got := stats()
		for i := range ref.stats {
			if got[i] != ref.stats[i] {
				t.Errorf("nparts=%d: stat %q, want %q", nparts, got[i], ref.stats[i])
			}
		}
	}
}

// TestParallelBatchedAdvances checks that run-to-completion batching
// (SetBatchedAdvances) does not change simulated outcomes: on the fully
// coupled ring world — mailboxes, a contended resource, Block/Unblock,
// legacy counter RNG streams, daemons — a batched run must reach the
// same final time and aggregate statistics as the serial reference,
// because every elided advance is committed (Settle) before the actor
// touches any shared state. Observer-driven transcript identity is
// covered by TestParallelRingIdentity; an installed observer disengages
// batching, so here the comparison is observer-less.
func TestParallelBatchedAdvances(t *testing.T) {
	run := func(nparts, engineWorkers int, batch bool) ringSummary {
		w, stats := buildRingWorld(7, 4, nparts, 3, 6, nil)
		if engineWorkers > 0 {
			w.SetParallel(engineWorkers)
			w.SetBatchedAdvances(batch)
		}
		err := w.Run()
		return ringSummary{final: w.Now(), stats: stats(), err: err}
	}
	for _, nparts := range []int{1, 2, 4} {
		serial := run(nparts, 0, false)
		if serial.err != nil {
			t.Fatalf("serial nparts=%d: %v", nparts, serial.err)
		}
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			got := run(nparts, workers, true)
			diffSummaries(t, fmt.Sprintf("batched nparts=%d workers=%d", nparts, workers), serial, got)
		}
	}
	// Legacy-RNG coverage: the same comparison with creation-order actor
	// streams (the Settle inside Actor.RNG keeps the counter order serial).
	runLegacy := func(parallel bool) ringSummary {
		w := NewWorld(13)
		if parallel {
			w.SetParallel(1)
			w.SetBatchedAdvances(true)
		}
		lock := NewResource("lock")
		for i := 0; i < 8; i++ {
			w.Spawn(fmt.Sprintf("a%d", i), func(a *Actor) {
				r := a.RNG() // legacy counter stream: order-sensitive
				for s := 0; s < 50; s++ {
					a.Advance(Time(100 + r.Intn(900)))
					if s%5 == 0 {
						lock.Acquire(a, Time(50+r.Intn(100)))
					}
				}
			})
		}
		err := w.Run()
		return ringSummary{final: w.Now(), err: err, stats: []string{
			fmt.Sprintf("lock busy=%d wait=%d acq=%d", lock.BusyTime(), lock.WaitTime(), lock.Acquires()),
		}}
	}
	diffSummaries(t, "batched legacy-rng", runLegacy(false), runLegacy(true))
}

// TestParallelPartitionPerActor covers the degenerate fully partitioned
// layout (the <200ns dispatch configuration): every actor alone in its
// partition, no mailboxes, so the whole run is a single
// run-to-completion window per partition, and the barrier replay merges
// the complete transcripts.
func TestParallelPartitionPerActor(t *testing.T) {
	build := func(obs Observer) *World {
		w := NewWorld(3)
		w.SetStableActorRNG(true)
		if obs != nil {
			w.SetObserver(obs)
		}
		for i := 0; i < 64; i++ {
			w.SetDefaultPartition(i)
			w.Spawn(fmt.Sprintf("solo%d", i), func(a *Actor) {
				r := a.RNG()
				for s := 0; s < 100; s++ {
					a.Charge("step", Time(1+r.Intn(1000)))
				}
			})
		}
		w.SetDefaultPartition(0)
		return w
	}
	serialObs := &recObs{}
	ws := build(serialObs)
	if err := ws.Run(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		parObs := &recObs{}
		wp := build(parObs)
		wp.SetParallel(workers)
		if err := wp.Run(); err != nil {
			t.Fatal(err)
		}
		if wp.Now() != ws.Now() {
			t.Errorf("workers=%d: final %d, want %d", workers, wp.Now(), ws.Now())
		}
		if len(parObs.lines) != len(serialObs.lines) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(parObs.lines), len(serialObs.lines))
		}
		for i := range serialObs.lines {
			if serialObs.lines[i] != parObs.lines[i] {
				t.Fatalf("workers=%d: event %d = %q, want %q", workers, i, parObs.lines[i], serialObs.lines[i])
			}
		}
	}
}

// TestParallelDeadlock checks that the parallel engine reports the same
// deadlock the serial engine does, with the identical message.
func TestParallelDeadlock(t *testing.T) {
	build := func() *World {
		w := NewWorld(1)
		w.NewMailbox("mb0", 0, Microsecond)
		w.NewMailbox("mb1", 1, Microsecond)
		w.SetDefaultPartition(1)
		w.Spawn("stuck", func(a *Actor) {
			a.Advance(10)
			a.Block("waiting forever")
		})
		w.SetDefaultPartition(0)
		w.Spawn("busy", func(a *Actor) { a.Advance(100) })
		return w
	}
	ws := build()
	serialErr := ws.Run()
	if serialErr == nil {
		t.Fatal("serial: expected deadlock")
	}
	wp := build()
	wp.SetParallel(2)
	parErr := wp.Run()
	if parErr == nil {
		t.Fatal("parallel: expected deadlock")
	}
	if serialErr.Error() != parErr.Error() {
		t.Errorf("deadlock message differs:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
}

// expectActorPanic wraps an actor body section expected to panic: it
// recovers the panic (reporting its absence) and lets the actor finish
// normally so the world can still terminate.
func expectActorPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestParallelGuards checks the misuse panics: cross-partition Unblock,
// mid-run spawn in multi-partition worlds, engine-mode conflicts, and
// mailbox contract violations.
func TestParallelGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}

	mustPanic("zero mailbox latency", func() {
		NewWorld(1).NewMailbox("bad", 0, 0)
	})
	mustPanic("linear then parallel", func() {
		w := NewWorld(1)
		w.SetLinearScan(true)
		w.SetParallel(2)
	})
	mustPanic("parallel then linear", func() {
		w := NewWorld(1)
		w.SetParallel(2)
		w.SetLinearScan(true)
	})
	mustPanic("negative partition", func() {
		NewWorld(1).SetDefaultPartition(-1)
	})

	// Cross-partition Unblock panics under the parallel engine.
	w := NewWorld(1)
	w.SetDefaultPartition(1)
	blocked := w.Spawn("blocked", func(a *Actor) { a.Block("forever") })
	w.SetDefaultPartition(0)
	w.Spawn("waker", func(a *Actor) {
		a.Advance(5)
		expectActorPanic(t, "cross-partition Unblock", func() { a.Unblock(blocked) })
	})
	w.SetParallel(1)
	_ = w.Run() // deadlocks: blocked is never woken; only the message matters elsewhere

	// Mid-run spawn panics in multi-partition worlds...
	w2 := NewWorld(2)
	w2.SetDefaultPartition(1)
	w2.Spawn("spawner", func(a *Actor) {
		a.Advance(1)
		expectActorPanic(t, "mid-run multi-partition spawn", func() {
			a.Spawn("child", func(a *Actor) {})
		})
	})
	w2.SetDefaultPartition(0)
	w2.Spawn("other", func(a *Actor) { a.Advance(10) })
	w2.SetParallel(1)
	if err := w2.Run(); err != nil {
		t.Errorf("multi-partition world: %v", err)
	}

	// ...but stays allowed in single-partition parallel worlds.
	w3 := NewWorld(3)
	ran := false
	w3.Spawn("spawner", func(a *Actor) {
		a.Advance(1)
		a.Spawn("child", func(a *Actor) { a.Advance(1); ran = true })
		a.Advance(10)
	})
	w3.SetParallel(1)
	if err := w3.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("mid-run child did not run under single-partition parallel engine")
	}

	// Receiving from a mailbox owned by another partition panics.
	w4 := NewWorld(4)
	mb := w4.NewMailbox("owned-by-1", 1, Microsecond)
	w4.Spawn("wrong", func(a *Actor) {
		expectActorPanic(t, "foreign Recv", func() { mb.Recv(a) })
	})
	w4.SetDefaultPartition(1)
	w4.Spawn("other", func(a *Actor) { a.Advance(1) })
	w4.SetDefaultPartition(0)
	w4.SetParallel(1)
	if err := w4.Run(); err != nil {
		t.Errorf("foreign-recv world: %v", err)
	}
}

// TestMailboxWakeLowering pins the order-independence property the
// barrier batching relies on: a waiter's wakeup is the earliest pending
// delivery, even when a later-applied message carries an earlier
// delivery time.
func TestMailboxWakeLowering(t *testing.T) {
	w := NewWorld(9)
	mb := w.NewMailbox("mb", 0, Microsecond)
	var wake, second Time
	var first any
	w.Spawn("receiver", func(a *Actor) {
		first = mb.Recv(a)
		wake = a.Now()
		_ = mb.Recv(a)
		second = a.Now()
	})
	// slow sends first at t=10µs with a large latency; fast sends at
	// t=20µs with a small one. The receiver must wake at fast's delivery
	// (25µs), not slow's (40µs), even though slow's wake was scheduled
	// first.
	w.Spawn("slow", func(a *Actor) {
		a.Advance(10 * Microsecond)
		mb.Send(a, "slow", 30*Microsecond) // delivers at 40µs
	})
	w.Spawn("fast", func(a *Actor) {
		a.Advance(20 * Microsecond)
		mb.Send(a, "fast", 5*Microsecond) // delivers at 25µs
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if first != any("fast") {
		t.Errorf("first message %v, want fast", first)
	}
	if want := 25 * Microsecond; wake != want {
		t.Errorf("first wake at %d, want %d", wake, want)
	}
	if want := 40 * Microsecond; second != want {
		t.Errorf("second receive at %d, want %d", second, want)
	}
	if mb.Sent() != 2 || mb.Received() != 2 {
		t.Errorf("sent/received = %d/%d, want 2/2", mb.Sent(), mb.Received())
	}
}

// TestMailboxLatencyFloor checks that sends below the declared minimum
// latency panic: the minimum is the engine's lookahead, so violating it
// would let a message land inside an already-executed window.
func TestMailboxLatencyFloor(t *testing.T) {
	w := NewWorld(5)
	mb := w.NewMailbox("mb", 0, 10*Microsecond)
	w.Spawn("sender", func(a *Actor) {
		expectActorPanic(t, "sub-minimum latency", func() {
			mb.Send(a, "too fast", Microsecond)
		})
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
