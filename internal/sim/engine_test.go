package sim

import (
	"fmt"
	"strings"
	"testing"
)

// mixedWorkload builds a workload exercising every scheduler entry point:
// random-stride advances, block/unblock pairs, batched AdvanceN charges,
// spawn-during-run, SpawnAt staggering, and a forever-advancing daemon
// that Run must terminate.
func mixedWorkload(w *World) {
	for i := 0; i < 8; i++ {
		w.Spawn(fmt.Sprintf("stride%d", i), func(a *Actor) {
			r := a.RNG()
			for s := 0; s < 50; s++ {
				a.Advance(Time(r.Intn(500)) * Nanosecond)
			}
		})
	}
	var waiter *Actor
	waiter = w.Spawn("waiter", func(a *Actor) {
		for i := 0; i < 5; i++ {
			a.Block("wait-signal")
			a.Advance(10 * Nanosecond)
		}
	})
	w.Spawn("signaller", func(a *Actor) {
		r := a.RNG()
		for i := 0; i < 5; i++ {
			a.Advance(Time(r.Intn(2000)) * Nanosecond)
			a.Unblock(waiter)
		}
	})
	w.Spawn("spawner", func(a *Actor) {
		a.AdvanceN(7*Nanosecond, 100) // one batched charge of 700ns
		a.Spawn("child", func(c *Actor) {
			c.AdvanceN(3*Nanosecond, 33)
			c.Advance(Nanosecond)
		})
		a.Advance(500 * Nanosecond)
	})
	w.SpawnAt("late", 4*Microsecond, func(a *Actor) {
		a.Advance(100 * Nanosecond)
	})
	w.Spawn("noise", func(a *Actor) {
		a.SetDaemon()
		for {
			a.Advance(111 * Nanosecond)
		}
	})
}

// runTraced runs mixedWorkload under the given scheduler mode and returns
// the full dispatch trace.
func runTraced(t *testing.T, linear bool) string {
	t.Helper()
	w := NewWorld(99)
	w.SetLinearScan(linear)
	var b strings.Builder
	w.Trace = func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	mixedWorkload(w)
	if err := w.Run(); err != nil {
		t.Fatalf("linear=%v: %v", linear, err)
	}
	return b.String()
}

// TestHeapLinearTracesIdentical is the determinism regression test for the
// heap scheduler: the indexed min-heap and the original linear scan must
// produce byte-identical dispatch sequences for a workload that mixes
// every scheduling primitive.
func TestHeapLinearTracesIdentical(t *testing.T) {
	heap := runTraced(t, false)
	linear := runTraced(t, true)
	if heap != linear {
		hl := strings.Split(heap, "\n")
		ll := strings.Split(linear, "\n")
		for i := 0; i < len(hl) && i < len(ll); i++ {
			if hl[i] != ll[i] {
				t.Fatalf("traces diverge at line %d:\n  heap:   %s\n  linear: %s", i, hl[i], ll[i])
			}
		}
		t.Fatalf("trace lengths differ: heap %d lines, linear %d lines", len(hl), len(ll))
	}
	if len(heap) == 0 {
		t.Fatal("empty trace — Trace hook not firing")
	}
}

// TestKillAllTeardownOrder pins the end-of-run teardown contract: killAll
// terminates unfinished actors in spawn order, in both scheduler modes, so
// daemon cleanup (deferred in the actor function, run during the errKilled
// unwind) is deterministic.
func TestKillAllTeardownOrder(t *testing.T) {
	for _, linear := range []bool{false, true} {
		w := NewWorld(1)
		w.SetLinearScan(linear)
		var torn []string
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("d%d", i)
			w.Spawn(name, func(a *Actor) {
				a.SetDaemon()
				defer func() { torn = append(torn, name) }()
				a.Block("wait-forever")
			})
		}
		w.Spawn("worker", func(a *Actor) { a.Advance(5 * Nanosecond) })
		if err := w.Run(); err != nil {
			t.Fatalf("linear=%v: %v", linear, err)
		}
		want := "d0,d1,d2"
		if got := strings.Join(torn, ","); got != want {
			t.Fatalf("linear=%v: teardown order %s, want %s", linear, got, want)
		}
	}
}

// TestSpawnDuringRunScheduling verifies a child spawned mid-run inherits
// the parent's clock and is scheduled against it correctly — in both
// scheduler modes (Actor.Spawn must fix the child's heap position after
// setting its start time).
func TestSpawnDuringRunScheduling(t *testing.T) {
	for _, linear := range []bool{false, true} {
		w := NewWorld(1)
		w.SetLinearScan(linear)
		var events []string
		w.Spawn("parent", func(a *Actor) {
			a.Advance(10 * Nanosecond)
			a.Spawn("child", func(c *Actor) {
				events = append(events, fmt.Sprintf("child-start@%v", c.Now()))
				c.Advance(Nanosecond)
				events = append(events, fmt.Sprintf("child@%v", c.Now()))
			})
			a.Advance(5 * Nanosecond)
			events = append(events, fmt.Sprintf("parent@%v", a.Now()))
		})
		if err := w.Run(); err != nil {
			t.Fatalf("linear=%v: %v", linear, err)
		}
		want := "child-start@10ns,child@11ns,parent@15ns"
		if got := strings.Join(events, ","); got != want {
			t.Fatalf("linear=%v: events %s, want %s", linear, got, want)
		}
	}
}

// TestSetLinearScanRebuildsHeap covers the mode flip itself: actors
// spawned while linear must be enqueued when the heap is re-enabled.
func TestSetLinearScanRebuildsHeap(t *testing.T) {
	w := NewWorld(1)
	w.SetLinearScan(true)
	var order []string
	for _, n := range []string{"a", "b"} {
		name := n
		w.Spawn(name, func(a *Actor) {
			a.Advance(Nanosecond)
			order = append(order, name)
		})
	}
	w.SetLinearScan(false) // back to heap: ready queue must be rebuilt
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "a,b" {
		t.Fatalf("order = %s", got)
	}
}
