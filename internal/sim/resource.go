package sim

import "xemem/internal/sim/snapshot"

// Resource models a serially-reusable piece of hardware or a kernel lock:
// only one actor's work occupies it at a time, and work is granted in
// virtual-time arrival order. It is the mechanism behind every contention
// effect in the reproduction — most prominently the Pisces restriction
// that all cross-enclave IPIs are handled on Linux core 0 (§5.3), and the
// Linux memory-map locks contended by concurrent attachers.
type Resource struct {
	name     string
	nextFree Time

	// Accumulated statistics.
	busy     Time // total occupied time
	waited   Time // total queueing delay experienced by acquirers
	acquires int
	waits    int // acquisitions that had to queue
	// queued counts acquirers currently waiting for the resource — the
	// instantaneous queue depth the observer sees.
	queued int
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire occupies the resource for d of a's virtual time, queueing first
// if the resource is busy. It returns the time at which the work actually
// started. The actor's clock ends at start+d.
func (r *Resource) Acquire(a *Actor, d Time) (start Time) {
	return r.AcquireOp(a, d, "")
}

// AcquireOp is Acquire with an operation label for the observer: traces
// attribute the occupancy (and any queueing delay) to op. The simulated
// outcome is identical to Acquire.
func (r *Resource) AcquireOp(a *Actor, d Time, op string) (start Time) {
	a.Settle()
	r.acquires++
	arrival := a.now
	depth := 0
	waitedHere := false
	// Re-check after every advance: while we were queued, a later-queued
	// actor cannot have overtaken us (the scheduler dispatches in global
	// time order), but an earlier one may have extended nextFree. The
	// advance must really yield (advanceSync): an elided wait would re-read
	// nextFree before the earlier acquirer had run.
	for r.nextFree > a.now {
		if !waitedHere {
			waitedHere = true
			r.queued++
			depth = r.queued
		}
		delta := r.nextFree - a.now
		r.waited += delta
		a.advanceSync(delta)
	}
	if waitedHere {
		r.queued--
		r.waits++
	}
	start = a.now
	if obs := a.Observer(); obs != nil {
		obs.AcquireRes(r, a, op, arrival, start, d, depth)
	}
	r.nextFree = start + d
	r.busy += d
	a.Advance(d)
	return start
}

// TryAcquire occupies the resource only if it is idle at a's current time.
// It reports whether the acquisition happened.
func (r *Resource) TryAcquire(a *Actor, d Time) bool {
	a.Settle()
	if r.nextFree > a.now {
		return false
	}
	r.acquires++
	if obs := a.Observer(); obs != nil {
		obs.AcquireRes(r, a, "", a.now, a.now, d, 0)
	}
	r.nextFree = a.now + d
	r.busy += d
	a.Advance(d)
	return true
}

// BusyTime reports the total virtual time the resource has been occupied.
func (r *Resource) BusyTime() Time { return r.busy }

// WaitTime reports the total queueing delay acquirers experienced.
func (r *Resource) WaitTime() Time { return r.waited }

// Acquires reports the total number of acquisitions.
func (r *Resource) Acquires() int { return r.acquires }

// ContendedAcquires reports how many acquisitions had to queue.
func (r *Resource) ContendedAcquires() int { return r.waits }

// EncodeSnapshot appends the resource's scheduling state and statistics
// to e in fixed field order. The name is excluded — component savers
// iterate resources in construction order, so names are implied — and a
// Core's host-side occupancy log (StartRecording) is diagnostics, not
// simulation state, so it is deliberately not captured.
func (r *Resource) EncodeSnapshot(e *snapshot.Enc) {
	e.I64(int64(r.nextFree))
	e.I64(int64(r.busy))
	e.I64(int64(r.waited))
	e.U64(uint64(r.acquires))
	e.U64(uint64(r.waits))
	e.U64(uint64(r.queued))
}

// Span records one occupancy interval of a Core, tagged with its cause.
// The noise analysis (§5.5) reconstructs the Selfish Detour profile from
// these spans.
type Span struct {
	Start Time
	Dur   Time
	Tag   string
}

// End reports the end of the span.
func (s Span) End() Time { return s.Start + s.Dur }

// Core is a CPU core: a Resource plus an optional occupancy log. All work
// an actor performs "on" a core is routed through Exec, which serializes
// actors sharing the core — this is how a single-core Kitten enclave
// exhibits detours when its kernel serves XEMEM attachments while an
// application computes.
type Core struct {
	Resource
	record bool
	log    []Span
}

// NewCore returns an idle core with the given diagnostic name.
func NewCore(name string) *Core {
	c := &Core{}
	c.Resource.name = name
	return c
}

// StartRecording begins logging occupancy spans (used by the noise
// benchmark). Recording is off by default to keep long runs cheap.
func (c *Core) StartRecording() { c.record = true; c.log = c.log[:0] }

// StopRecording stops logging and returns the spans captured so far.
func (c *Core) StopRecording() []Span {
	c.record = false
	return c.log
}

// Exec performs d of work on the core on behalf of a, queueing behind
// other occupants, and logs the span when recording. tag identifies the
// kind of work (e.g. "app", "xemem-serve", "smi").
func (c *Core) Exec(a *Actor, d Time, tag string) (start Time) {
	start = c.AcquireOp(a, d, tag)
	if c.record {
		c.log = append(c.log, Span{Start: start, Dur: d, Tag: tag})
	}
	return start
}
