package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestAdvanceOrdering(t *testing.T) {
	w := NewWorld(1)
	var order []string
	w.Spawn("slow", func(a *Actor) {
		a.Advance(10)
		order = append(order, "slow@10")
		a.Advance(10)
		order = append(order, "slow@20")
	})
	w.Spawn("fast", func(a *Actor) {
		a.Advance(5)
		order = append(order, "fast@5")
		a.Advance(10)
		order = append(order, "fast@15")
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"fast@5", "slow@10", "fast@15", "slow@20"}
	if got := strings.Join(order, ","); got != strings.Join(want, ",") {
		t.Fatalf("order = %s, want %s", got, strings.Join(want, ","))
	}
}

func TestTieBreakByID(t *testing.T) {
	w := NewWorld(1)
	var order []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("a%d", i)
		w.Spawn(name, func(a *Actor) {
			a.Advance(7)
			order = append(order, a.Name())
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "a0,a1,a2" {
		t.Fatalf("tie order = %s, want a0,a1,a2", got)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	w := NewWorld(1)
	w.Spawn("bad", func(a *Actor) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic from negative advance")
			}
		}()
		a.Advance(-1)
	})
	_ = w.Run()
}

func TestBlockUnblock(t *testing.T) {
	w := NewWorld(1)
	var woken Time
	var waiter *Actor
	waiter = w.Spawn("waiter", func(a *Actor) {
		a.Block("test")
		woken = a.Now()
	})
	w.Spawn("waker", func(a *Actor) {
		a.Advance(100)
		a.Unblock(waiter)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 100 {
		t.Fatalf("waiter woke at %d, want 100", woken)
	}
}

func TestUnblockNeverRewindsClock(t *testing.T) {
	w := NewWorld(1)
	var woken Time
	var waiter *Actor
	waiter = w.Spawn("waiter", func(a *Actor) {
		a.Advance(500)
		a.Block("test")
		woken = a.Now()
	})
	w.Spawn("waker", func(a *Actor) {
		a.Advance(100)
		for waiter.state != blocked {
			a.Advance(100)
		}
		a.Unblock(waiter)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 500 {
		t.Fatalf("waiter woke at %d, want its own later clock 500", woken)
	}
}

func TestDeadlockDetected(t *testing.T) {
	w := NewWorld(1)
	w.Spawn("stuck", func(a *Actor) { a.Block("nobody will wake me") })
	err := w.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestDaemonDoesNotKeepWorldAlive(t *testing.T) {
	w := NewWorld(1)
	w.Spawn("daemon", func(a *Actor) {
		a.SetDaemon()
		for {
			a.Block("idle loop")
		}
	})
	w.Spawn("worker", func(a *Actor) { a.Advance(42) })
	if err := w.Run(); err != nil {
		t.Fatalf("daemon should not deadlock the world: %v", err)
	}
	if w.Now() != 42 {
		t.Fatalf("world time = %d, want 42", w.Now())
	}
}

func TestSpawnDuringRunInheritsTime(t *testing.T) {
	w := NewWorld(1)
	var childStart Time
	w.Spawn("parent", func(a *Actor) {
		a.Advance(33)
		a.Spawn("child", func(c *Actor) { childStart = c.Now() })
		a.Advance(1)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if childStart != 33 {
		t.Fatalf("child started at %d, want 33", childStart)
	}
}

func TestPollAdvancesUntilCond(t *testing.T) {
	w := NewWorld(1)
	flag := false
	w.Spawn("setter", func(a *Actor) {
		a.Advance(95)
		flag = true
	})
	var seen Time
	var polls int
	w.Spawn("poller", func(a *Actor) {
		polls = a.Poll(10, func() bool { return flag })
		seen = a.Now()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 100 {
		t.Fatalf("poller finished at %d, want 100", seen)
	}
	if polls != 10 {
		t.Fatalf("polls = %d, want 10", polls)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		w := NewWorld(7)
		var log []Time
		res := NewResource("shared")
		for i := 0; i < 5; i++ {
			w.Spawn(fmt.Sprintf("a%d", i), func(a *Actor) {
				r := a.RNG()
				for j := 0; j < 20; j++ {
					a.Advance(Time(r.Uint64n(1000)))
					res.Acquire(a, Time(r.Uint64n(500)))
					log = append(log, a.Now())
				}
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	w := NewWorld(1)
	res := NewResource("core0")
	var spans []Span
	for i := 0; i < 3; i++ {
		w.Spawn(fmt.Sprintf("a%d", i), func(a *Actor) {
			start := res.Acquire(a, 100)
			spans = append(spans, Span{Start: start, Dur: 100})
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End() {
			t.Fatalf("span %d overlaps previous: %+v vs %+v", i, spans[i], spans[i-1])
		}
	}
	if res.BusyTime() != 300 {
		t.Fatalf("busy = %v, want 300", res.BusyTime())
	}
	if res.ContendedAcquires() != 2 {
		t.Fatalf("contended = %d, want 2", res.ContendedAcquires())
	}
}

func TestResourceIdleNoWait(t *testing.T) {
	w := NewWorld(1)
	res := NewResource("idle")
	w.Spawn("a", func(a *Actor) {
		res.Acquire(a, 50)
		a.Advance(1000)
		res.Acquire(a, 50)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if res.WaitTime() != 0 {
		t.Fatalf("wait = %v, want 0", res.WaitTime())
	}
}

func TestCoreRecordsSpans(t *testing.T) {
	w := NewWorld(1)
	core := NewCore("kitten-core")
	core.StartRecording()
	w.Spawn("app", func(a *Actor) {
		core.Exec(a, 10, "app")
		core.Exec(a, 20, "app")
	})
	w.Spawn("kernel", func(a *Actor) {
		a.Advance(5)
		core.Exec(a, 100, "serve")
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	spans := core.StopRecording()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	var serve int
	for _, s := range spans {
		if s.Tag == "serve" {
			serve++
			if s.Dur != 100 {
				t.Fatalf("serve span dur = %v", s.Dur)
			}
		}
	}
	if serve != 1 {
		t.Fatalf("serve spans = %d, want 1", serve)
	}
}

func TestTryAcquire(t *testing.T) {
	w := NewWorld(1)
	res := NewResource("r")
	var first, second bool
	w.Spawn("a", func(a *Actor) {
		first = res.TryAcquire(a, 100)
	})
	w.Spawn("b", func(a *Actor) {
		a.Advance(10)
		second = res.TryAcquire(a, 100)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !first || second {
		t.Fatalf("first=%v second=%v, want true/false", first, second)
	}
}

func TestWorldNowTracksDispatch(t *testing.T) {
	w := NewWorld(1)
	w.Spawn("a", func(a *Actor) { a.Advance(123) })
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Now() != 123 {
		t.Fatalf("Now = %v, want 123", w.Now())
	}
}
