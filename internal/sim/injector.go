package sim

// Injector is the fault-injection hook set the simulation engine consults
// at its delivery and service boundaries. It is the mechanism behind
// internal/fault: the engine stays policy-free (it only asks), and the
// fault plan stays engine-free (it only answers).
//
// Implementations must be deterministic functions of the simulated state
// they observe (virtual time, their own seeded RNG streams): the engine
// guarantees the call sequence is identical run to run for a given seed,
// so a deterministic injector yields bit-identical fault schedules.
//
// A nil injector (the default) is the zero-fault world: every hook site
// short-circuits on a nil check, so simulations without an injector are
// bit-identical to builds that predate it.
type Injector interface {
	// DeliveryFault is consulted once per message delivery into a named
	// receive queue (xproto.Inbox.Put), before the delivery is enqueued.
	// Returning drop discards the message (the sender is not told — lost
	// IPIs look exactly like this); a positive delay charges the sending
	// actor that much extra wire time first, modelling a stalled or
	// retried interrupt. bytes is the encoded wire size.
	DeliveryFault(queue string, a *Actor, bytes int) (drop bool, delay Time)

	// ServiceDown reports whether the named service ("nameserver") is
	// inside an injected outage window at virtual time t. Protocol code
	// consults it before serving requests on behalf of that service.
	ServiceDown(service string, t Time) bool
}

// SetInjector installs (or, with nil, removes) the world's fault
// injector. Install it before the faulted traffic starts; the engine
// consults it on every delivery from then on.
func (w *World) SetInjector(i Injector) { w.inj = i }

// Injector reports the installed fault injector, nil when none.
func (w *World) Injector() Injector { return w.inj }

// PollDeadline repeatedly evaluates cond, advancing the actor by interval
// between checks, until cond is true or the actor's clock reaches
// deadline. It reports whether cond became true — false means the
// deadline passed first. It is the virtual-time timeout primitive: a
// requester that must not block forever on a lost response polls its
// completion flag with a deadline and turns the miss into a typed
// timeout error.
//
// Like Poll, the wait is busy in virtual time (the paper's workloads
// signal by polling shared memory, §6.1); the final step is truncated so
// the actor lands exactly on deadline rather than overshooting.
func (a *Actor) PollDeadline(interval, deadline Time, cond func() bool) bool {
	for {
		a.Settle() // cond typically reads state other actors write
		if cond() {
			return true
		}
		if a.now >= deadline {
			return false
		}
		step := interval
		if rem := deadline - a.now; rem < step {
			step = rem
		}
		a.Advance(step)
	}
}
