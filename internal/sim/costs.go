package sim

// Costs is the hardware/OS cost model: the simulated duration of every
// primitive operation the substrates perform. The defaults are calibrated
// so that the regenerated evaluation reproduces the *shape* of the paper's
// results (§5–§7): who wins, by what rough factor, and where crossovers
// fall. The calibration anchors are:
//
//   - Native Kitten→Linux attachment sustains ≈13 GB/s flat in region size
//     (Fig. 5, Table 2 row 1): per-4KB-page cost ≈ 315 ns, split between
//     the exporting kernel's page-table walk and the attaching kernel's
//     mapping work.
//   - Attach+read ≈ 12 GB/s (Fig. 5): the read-out of an already-mapped
//     region streams far faster than attachment, so the combined rate sits
//     just below the attach rate.
//   - RDMA-write over QDR InfiniBand ≈ 3.4 GB/s (Fig. 5 baseline).
//   - Attaching *into* a Palacios guest costs ≈ 955 ns/page, ≈520 ns of
//     which is red-black-tree insertion into the VMM memory map — removing
//     it yields the paper's 8.79 GB/s (Table 2 row 2).
//   - A 1 GB serve on a single-core Kitten enclave occupies the core for
//     ≈22–24 ms; a 2 MB serve ≈50 µs; a 4 KB serve disappears into the
//     ≈12 µs hardware-noise baseline (Fig. 7).
//
// All durations are per operation unless the name says PerPage or the
// field is a bandwidth (bytes per simulated second).
type Costs struct {
	// --- Page-table operations -----------------------------------------

	// WalkPerPage is the cost for an exporting kernel to walk one 4 KB
	// page of an exported region when generating a page-frame list
	// (Kitten path, §4.3: "existing page table walking functions").
	WalkPerPage Time

	// PinPerPage is the additional per-page cost of pinning user memory
	// on a Linux exporter (get_user_pages, §4.3).
	PinPerPage Time

	// MapPerPageLinux is the per-page cost of mapping a remote frame list
	// into a Linux process (vm_mmap + remap_pfn_range, §4.3).
	MapPerPageLinux Time

	// MapPerPageKitten is the per-page cost of mapping a remote frame
	// list into a Kitten process via the dynamic heap extension (§4.3).
	MapPerPageKitten Time

	// UnmapPerPage is the per-page cost of tearing down a mapping.
	UnmapPerPage Time

	// FaultLinux is the cost of one demand page fault in Linux. Single-OS
	// Linux XEMEM attachments are populated lazily with page-fault
	// semantics (§6.4), so first-touch of each page pays this.
	FaultLinux Time

	// CoherencePerPage is the extra per-page mapping cost a Linux
	// attacher pays while at least one *other* process is concurrently
	// updating memory maps — lock cache-line bouncing on shared mm
	// structures. This models §5.3's "contention for Linux data
	// structures that are accessed when multiple processes concurrently
	// update memory maps" and produces the 1→2 enclave dip of Fig. 6.
	CoherencePerPage Time

	// MmapRegionSetup is the flat cost of creating a new VMA / heap
	// region before per-page population.
	MmapRegionSetup Time

	// SmartmapAttach is the flat cost of a SMARTMAP local attachment
	// (shared top-level page-table slot, no per-page work).
	SmartmapAttach Time

	// --- Memory ---------------------------------------------------------

	// MemReadBW is the streaming bandwidth for reading out an
	// already-attached region (Fig. 5 "Attach + Read").
	MemReadBW float64

	// MemCopyBW is memcpy bandwidth for bulk copies (the analytics
	// program's shared→private copy, channel data copies).
	//
	//xemem:allow chargecheck -- reserved calibration anchor: the in-situ workload models its copy with per-program CopyBW params (internal/insitu) and channels charge ChanBW; kept so external cost-model consumers see the full §4 envelope
	MemCopyBW float64

	// --- Cross-enclave channels (§4.5) -----------------------------------

	// IPILatency is the wire latency of an inter-processor interrupt.
	IPILatency Time

	// IPIHandler is the time the *receiving* core spends in the IPI
	// handler per inbound kernel message. On the Linux management enclave
	// every such message is funnelled to core 0 (§5.3).
	IPIHandler Time

	// MsgFixed is the fixed kernel-level processing cost per message at
	// each hop (marshal, dispatch, route lookup).
	MsgFixed Time

	// ChanBW is the copy bandwidth through a channel's shared message
	// region (bytes/second); message payloads are charged against it.
	ChanBW float64

	// --- Palacios VMM (§4.4) ---------------------------------------------

	// Hypercall is the guest→host transition cost (VM exit + dispatch).
	Hypercall Time

	// IRQInject is the host→guest virtual interrupt delivery cost.
	IRQInject Time

	// RBVisit is the cost per node visited during red-black-tree memory
	// map operations (lookups, insert descent, rebalancing walks).
	RBVisit Time

	// RBRotate is the cost per rotation performed during rb-tree
	// rebalancing.
	RBRotate Time

	// RadixVisit is the cost per level visited in the radix-tree guest
	// memory map (the paper's proposed future-work replacement, §5.4).
	RadixVisit Time

	// PalaciosXlatePerPage is the amortized per-page cost of translating
	// guest frames to host frames when the memory map contains only a few
	// large entries (Fig. 4(b), the cheap direction).
	PalaciosXlatePerPage Time

	// NestedMapPerPage is the extra per-page cost of populating mappings
	// inside a guest (nested-paging maintenance) on top of the guest OS's
	// own mapping cost.
	NestedMapPerPage Time

	// PCICopyBW is the copy bandwidth of the virtual PCI device's frame
	// list window.
	PCICopyBW float64

	// --- Name server and routing (§3.1, §3.2) ----------------------------

	// NSOp is the name server's processing cost per request (segid
	// allocation, lookup, enclave-ID allocation).
	NSOp Time

	// RouteLookup is the per-hop routing table lookup cost.
	RouteLookup Time

	// --- Syscall layer ----------------------------------------------------

	// Syscall is the user→kernel entry/exit cost for XPMEM API calls.
	Syscall Time

	// --- RDMA baseline (§5.2) ---------------------------------------------

	// RDMABandwidth is the sustained RDMA-write bandwidth of the QDR
	// ConnectX-3 device (per virtual function pair).
	RDMABandwidth float64

	// RDMAMsgOverhead is the per-message (per-MTU) initiation overhead.
	RDMAMsgOverhead Time

	// RDMASetup is the one-time queue-pair/memory-registration cost per
	// transfer of the bandwidth test.
	RDMASetup Time

	// RDMAMTU is the transfer unit of the bandwidth test in bytes.
	RDMAMTU int

	// RDMASwitchLatency is the per-hop latency of the InfiniBand switch a
	// multi-node fabric routes through (port-to-port cut-through delay).
	// Single-device worlds (the §5.2 back-to-back bandwidth test) never
	// charge it; cluster worlds pay it once per cross-node transfer.
	RDMASwitchLatency Time

	// --- Sharded name service (cluster tier) ------------------------------

	// LeaseCheck is the attacher-side cost of consulting its lease cache
	// on a name-service resolution: a hash probe plus a virtual-time
	// expiry comparison. Paid on every sharded lookup, hit or miss.
	LeaseCheck Time

	// --- XEMEM serve path (§5.5) -------------------------------------------

	// ServeFixed is the fixed cost on the exporting enclave's core to
	// receive, parse, and answer one attachment request (IPI handling,
	// message copies) — the floor of a Fig. 7 attachment detour.
	ServeFixed Time

	// --- Hierarchical collectives (internal/coll) -------------------------

	// RegProbe is the attacher-side registration-cache probe: a syscall
	// into the XPMEM driver that looks up the cached window and validates
	// it against the attachment table (liveness check), paid on every
	// cached attach (hit or miss) before any protocol work. Syscall-scale,
	// not cache-line-scale: the probe crosses the kernel boundary.
	RegProbe Time

	// CollFlagSync is one control-flag transfer between collective
	// ranks — a cache-line round trip through the shared arena, paid per
	// pipeline-chunk handoff and per barrier arrival/release.
	CollFlagSync Time

	// CollNUMABW, CollSocketBW, and CollFlatBW are the streaming copy
	// bandwidths of a collective data move whose endpoints share a NUMA
	// domain, share only a socket, or share neither — the locality cost
	// tiers the hierarchy exists to exploit (PAPERS.md, "Emulating
	// Hybrid Memory on NUMA Hardware"). Charged per chunk against the
	// level of the hierarchy edge the chunk crosses.
	CollNUMABW   float64
	CollSocketBW float64
	CollFlatBW   float64
}

// DefaultCosts returns the calibrated cost model described on Costs.
func DefaultCosts() *Costs {
	return &Costs{
		WalkPerPage:      88 * Nanosecond,
		PinPerPage:       110 * Nanosecond,
		MapPerPageLinux:  230 * Nanosecond,
		MapPerPageKitten: 120 * Nanosecond,
		UnmapPerPage:     55 * Nanosecond,
		FaultLinux:       1500 * Nanosecond,
		CoherencePerPage: 35 * Nanosecond,
		MmapRegionSetup:  3 * Microsecond,
		SmartmapAttach:   500 * Nanosecond,

		MemReadBW: 168e9,
		MemCopyBW: 8e9,

		IPILatency: 1500 * Nanosecond,
		IPIHandler: 4 * Microsecond,
		MsgFixed:   1 * Microsecond,
		ChanBW:     10e9,

		Hypercall:            2 * Microsecond,
		IRQInject:            3 * Microsecond,
		RBVisit:              17 * Nanosecond,
		RBRotate:             28 * Nanosecond,
		RadixVisit:           18 * Nanosecond,
		PalaciosXlatePerPage: 12 * Nanosecond,
		NestedMapPerPage:     145 * Nanosecond,
		PCICopyBW:            12e9,

		NSOp:        500 * Nanosecond,
		RouteLookup: 200 * Nanosecond,

		Syscall: 300 * Nanosecond,

		RDMABandwidth:     3.88e9,
		RDMAMsgOverhead:   150 * Nanosecond,
		RDMASetup:         40 * Microsecond,
		RDMAMTU:           4096,
		RDMASwitchLatency: 100 * Nanosecond,

		LeaseCheck: 30 * Nanosecond,

		ServeFixed: 11 * Microsecond,

		RegProbe:     2 * Microsecond,
		CollFlagSync: 120 * Nanosecond,
		CollNUMABW:   15e9,
		CollSocketBW: 11e9,
		CollFlatBW:   8e9,
	}
}

// CopyTime reports the time to move n bytes at bandwidth bw bytes/second.
func CopyTime(n int, bw float64) Time {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return Time(float64(n) / bw * float64(Second))
}
