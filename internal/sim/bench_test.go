package sim

// Dispatch-path benchmarks and the checked-in allocation budget. The
// scheduler's steady state — advance, reschedule, handoff — must not
// allocate: the heap is index-swapped in place, resume channels are
// pooled, and the ready queue is pre-sized. The ceiling test turns that
// property into a regression gate.

import (
	"fmt"
	"runtime"
	"testing"
)

// runDispatchWorld runs a pure scheduling workload: actors advancing by
// pseudorandom strides so the ready queue is constantly reordered.
func runDispatchWorld(seed uint64, actors, steps int, linear bool) error {
	w := NewWorld(seed)
	w.SetLinearScan(linear)
	w.Reserve(actors)
	for i := 0; i < actors; i++ {
		w.Spawn(fmt.Sprintf("a%d", i), func(a *Actor) {
			r := a.RNG()
			for s := 0; s < steps; s++ {
				a.Advance(Time(r.Intn(1000)) * Nanosecond)
			}
		})
	}
	return w.Run()
}

// BenchmarkWorldDispatch measures the dispatch hot path end to end: one
// op is a full world run of 256 actors × 500 steps, with per-dispatch
// cost reported as a metric.
func BenchmarkWorldDispatch(b *testing.B) {
	const actors, steps = 256, 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := runDispatchWorld(uint64(i+1), actors, steps, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*actors*steps), "ns/dispatch")
}

// BenchmarkWorldDispatchLinear is the same workload on the retained
// linear-scan reference scheduler.
func BenchmarkWorldDispatchLinear(b *testing.B) {
	const actors, steps = 256, 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := runDispatchWorld(uint64(i+1), actors, steps, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*actors*steps), "ns/dispatch")
}

// dispatchAllocCeiling is the checked-in allocation budget for the
// dispatch path, in heap allocations per dispatch, world construction
// included. Per-world setup (actor structs, goroutines, RNG streams)
// amortizes to well under 0.01 allocs per dispatch at this scale;
// dispatch itself must contribute zero. The ceiling leaves headroom for
// runtime-internal noise only — an added make/append on the hot path
// blows through it immediately.
const dispatchAllocCeiling = 0.05

func TestDispatchAllocCeiling(t *testing.T) {
	const actors, steps = 256, 2000
	// Warm the resume-channel pool and runtime structures so the measured
	// run sees the steady state a sweep's thousands of worlds see.
	if err := runDispatchWorld(1, actors, steps, false); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := runDispatchWorld(2, actors, steps, false); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / float64(actors*steps)
	if perOp > dispatchAllocCeiling {
		t.Errorf("dispatch path allocates %.4f allocs/op, over the %.2f ceiling", perOp, dispatchAllocCeiling)
	}
}
