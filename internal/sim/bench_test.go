package sim

// Dispatch-path benchmarks and the checked-in allocation budget. The
// scheduler's steady state — advance, reschedule, handoff — must not
// allocate: the heap is index-swapped in place, resume channels are
// pooled, and the ready queue is pre-sized. The ceiling test turns that
// property into a regression gate.

import (
	"fmt"
	"runtime"
	"testing"
)

// Dispatch-benchmark engine variants.
const (
	benchSerial = iota // heap scheduler, serial engine
	benchLinear        // retained linear-scan reference scheduler
	benchPar1          // parallel engine, one partition (run-to-completion path)
)

// runDispatchWorld runs a pure scheduling workload: actors advancing by
// pseudorandom strides so the ready queue is constantly reordered.
func runDispatchWorld(seed uint64, actors, steps, mode int) error {
	w := NewWorld(seed)
	switch mode {
	case benchLinear:
		w.SetLinearScan(true)
	case benchPar1:
		w.SetParallel(1)
		w.SetBatchedAdvances(true)
	}
	w.Reserve(actors)
	for i := 0; i < actors; i++ {
		w.Spawn(fmt.Sprintf("a%d", i), func(a *Actor) {
			r := a.RNG()
			for s := 0; s < steps; s++ {
				a.Advance(Time(r.Intn(1000)) * Nanosecond)
			}
		})
	}
	return w.Run()
}

func benchDispatch(b *testing.B, mode int) {
	const actors, steps = 256, 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := runDispatchWorld(uint64(i+1), actors, steps, mode); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*actors*steps), "ns/dispatch")
}

// BenchmarkWorldDispatch measures the dispatch hot path end to end on
// the parallel engine's single-partition run-to-completion path (no
// mailboxes, so the horizon is infinite and the whole run is one
// window): one op is a full world run of 256 actors × 500 steps, with
// per-dispatch cost reported as a metric. Budget: under 200 ns/dispatch.
func BenchmarkWorldDispatch(b *testing.B) { benchDispatch(b, benchPar1) }

// BenchmarkWorldDispatchSerial is the same workload on the serial
// reference engine.
func BenchmarkWorldDispatchSerial(b *testing.B) { benchDispatch(b, benchSerial) }

// BenchmarkWorldDispatchLinear is the same workload on the retained
// linear-scan reference scheduler.
func BenchmarkWorldDispatchLinear(b *testing.B) { benchDispatch(b, benchLinear) }

// dispatchAllocCeiling is the checked-in allocation budget for the
// dispatch path, in heap allocations per dispatch, world construction
// included. Per-world setup (actor structs, goroutines, RNG streams)
// amortizes to well under 0.01 allocs per dispatch at this scale;
// dispatch itself must contribute zero. The ceiling leaves headroom for
// runtime-internal noise only — an added make/append on the hot path
// blows through it immediately.
const dispatchAllocCeiling = 0.05

func TestDispatchAllocCeiling(t *testing.T) {
	const actors, steps = 256, 2000
	// Warm the resume-channel pool and runtime structures so the measured
	// run sees the steady state a sweep's thousands of worlds see.
	if err := runDispatchWorld(1, actors, steps, benchSerial); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := runDispatchWorld(2, actors, steps, benchSerial); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / float64(actors*steps)
	if perOp > dispatchAllocCeiling {
		t.Errorf("dispatch path allocates %.4f allocs/op, over the %.2f ceiling", perOp, dispatchAllocCeiling)
	}
}
