package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"xemem/internal/sim"
)

// scenario runs a small contended workload: three actors charging
// labelled work and sharing one core, one feeding a queue-wait. It
// returns the final times of every actor.
func scenario(seed uint64, obs sim.Observer) []sim.Time {
	w := sim.NewWorld(seed)
	if obs != nil {
		w.SetObserver(obs)
	}
	core := sim.NewCore("core0")
	finals := make([]sim.Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		w.Spawn(fmt.Sprintf("worker%d", i), func(a *sim.Actor) {
			r := a.RNG()
			for step := 0; step < 50; step++ {
				a.Charge("compute", sim.Time(r.Intn(500))*sim.Nanosecond)
				core.Exec(a, 200*sim.Nanosecond, "shared")
				a.ChargeN("per-page", 10*sim.Nanosecond, 8)
			}
			finals[i] = a.Now()
		})
	}
	if err := w.Run(); err != nil {
		panic(err)
	}
	return finals
}

func TestObserverDoesNotPerturbSchedule(t *testing.T) {
	base := scenario(7, nil)
	traced := scenario(7, NewTracer("test"))
	for i := range base {
		if base[i] != traced[i] {
			t.Fatalf("actor %d final time changed under tracing: %v vs %v", i, base[i], traced[i])
		}
	}
}

func TestDigestDeterministic(t *testing.T) {
	t1 := NewTracer("run")
	scenario(7, t1)
	t2 := NewTracer("run")
	scenario(7, t2)
	if d1, d2 := t1.Digest(), t2.Digest(); d1 != d2 {
		t.Fatalf("same seed produced different digests:\n%+v\n%+v", d1, d2)
	}
	t3 := NewTracer("run")
	scenario(8, t3)
	if t1.Digest().SHA256 == t3.Digest().SHA256 {
		t.Fatal("different seeds produced identical event-stream hashes")
	}
}

func TestDigestInsensitiveToRetention(t *testing.T) {
	keep := NewTracer("run")
	scenario(7, keep)
	drop := NewTracer("run")
	drop.SetKeepEvents(false)
	scenario(7, drop)
	if keep.Digest() != drop.Digest() {
		t.Fatal("event retention changed the digest")
	}
	if drop.Events() != nil {
		t.Fatal("retention-off tracer kept events")
	}
}

func TestResourceMetricsAccounting(t *testing.T) {
	w := sim.NewWorld(1)
	tr := NewTracer("acct")
	w.SetObserver(tr)
	core := sim.NewCore("c")
	// Two actors collide on the core at t=0: the loser waits 100ns.
	for i := 0; i < 2; i++ {
		w.Spawn(fmt.Sprintf("a%d", i), func(a *sim.Actor) {
			core.Exec(a, 100*sim.Nanosecond, "work")
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := tr.Resource("c")
	if m.Busy != 200*sim.Nanosecond {
		t.Fatalf("busy = %v, want 200ns", m.Busy)
	}
	if m.Wait != 100*sim.Nanosecond {
		t.Fatalf("wait = %v, want 100ns", m.Wait)
	}
	if m.Acquires != 2 || m.Contended != 1 || m.MaxDepth != 1 {
		t.Fatalf("acquires/contended/depth = %d/%d/%d", m.Acquires, m.Contended, m.MaxDepth)
	}
	if m.Wait != core.WaitTime() || m.Busy != core.BusyTime() {
		t.Fatal("tracer disagrees with the resource's own counters")
	}
	if st := m.ByOp["work"]; st == nil || st.Count != 2 || st.Time != 200*sim.Nanosecond {
		t.Fatalf("by-op work = %+v", m.ByOp["work"])
	}
}

func TestSpanAndCounterAccounting(t *testing.T) {
	w := sim.NewWorld(1)
	tr := NewTracer("ops")
	w.SetObserver(tr)
	w.Spawn("a", func(a *sim.Actor) {
		a.Charge("syscall", 300*sim.Nanosecond)
		a.ChargeN("map", 10*sim.Nanosecond, 100)
		tr.Count("coherence", a, 35*sim.Nanosecond)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if op := tr.Op("syscall"); op.Count != 1 || op.Time != 300*sim.Nanosecond {
		t.Fatalf("syscall stat = %+v", op)
	}
	if op := tr.Op("map"); op.Count != 1 || op.Time != 1000*sim.Nanosecond {
		t.Fatalf("batched map stat = %+v", op)
	}
	if c := tr.Counter("coherence"); c != 35*sim.Nanosecond {
		t.Fatalf("counter = %v", c)
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	h.Add(0)
	h.Add(1)
	h.Add(1500)
	h.Add(2048)
	bs := h.Buckets()
	var total uint64
	for _, b := range bs {
		total += b.Count
		if b.Count == 0 {
			t.Fatal("empty bucket exported")
		}
		if b.LoNs >= b.HiNs && b.HiNs != 1 {
			t.Fatalf("bad bucket bounds %+v", b)
		}
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
}

func TestChromeTraceExport(t *testing.T) {
	s := NewSet()
	scenario(7, s.Get("phase-a"))
	scenario(9, s.Get("phase-b"))
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	var sawProcess, sawSpan bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				sawProcess = true
			}
		case "X":
			sawSpan = true
		}
	}
	if !sawProcess || !sawSpan {
		t.Fatalf("missing metadata or span events (process=%v span=%v)", sawProcess, sawSpan)
	}
}

func TestMetricsJSONExport(t *testing.T) {
	s := NewSet()
	scenario(7, s.Get("only"))
	var buf bytes.Buffer
	if err := s.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if len(records) != 1 || records[0]["label"] != "only" {
		t.Fatalf("unexpected records: %v", records)
	}
	if !strings.Contains(buf.String(), "core0") {
		t.Fatal("resource metrics missing from export")
	}
	// Export twice: byte-identical (sorted keys, no host state).
	var buf2 bytes.Buffer
	if err := s.WriteMetricsJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("metrics export is not deterministic")
	}
}

func TestSetPartitionLaneOrdering(t *testing.T) {
	// Two sets registering the same (cell, partition) lanes in opposite
	// arrival orders — as racing host workers would — must export in the
	// same (cell, partition, seq) order.
	labels := func(s *Set) []string {
		var out []string
		for _, tr := range s.Tracers() {
			out = append(out, tr.Label())
		}
		return out
	}
	a := NewSet()
	a.GetAt(0, 0, "c0p0-first")
	a.GetAt(0, 0, "c0p0-second")
	a.GetAt(0, 1, "c0p1")
	a.GetAt(1, 0, "c1p0")
	b := NewSet()
	b.GetAt(1, 0, "c1p0")
	b.GetAt(0, 1, "c0p1")
	b.GetAt(0, 0, "c0p0-first")
	b.GetAt(0, 0, "c0p0-second")
	want := []string{"c0p0-first", "c0p0-second", "c0p1", "c1p0"}
	for i, s := range []*Set{a, b} {
		got := labels(s)
		if len(got) != len(want) {
			t.Fatalf("set %d: %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("set %d export order %v, want %v", i, got, want)
			}
		}
	}
	// Seq within one lane is per-lane: a second partition's registrations
	// cannot perturb the first lane's ordering (the nested-world bug).
	hook := a.CellPartitionHook()
	w := sim.NewWorld(1)
	hook(2, 3, "hooked", w)
	if w.Observer() == nil {
		t.Fatal("CellPartitionHook did not install the tracer")
	}
}

func TestQueueWaitMetrics(t *testing.T) {
	w := sim.NewWorld(3)
	tr := NewTracer("queue")
	w.SetObserver(tr)
	// Emulate a queue: producer stamps enqueue times, consumer reports
	// the waits through the observer, as xproto.Inbox does.
	tr.QueueWait("inbox:test", nil, 0, 0, 0)
	_ = w // the direct call above exercises the nil-actor tolerance path
	m := tr.Queue("inbox:test")
	if m.Waits != 1 || m.WaitTime != 0 {
		t.Fatalf("queue metrics = %+v", m)
	}
}

// faultScenario runs one actor that emits fault-prefixed and plain
// counters through the observer, the way the fault injector and the
// sharded name service attribute events into the digest.
func faultScenario(obs sim.Observer) {
	w := sim.NewWorld(1)
	if obs != nil {
		w.SetObserver(obs)
	}
	w.Spawn("victim", func(a *sim.Actor) {
		a.Charge("work", 100*sim.Nanosecond)
		if o := a.Observer(); o != nil {
			o.Count("fault-drop:msg", a, 50*sim.Nanosecond)
			o.Count("fault-drop:msg", a, 0)
			o.Count("fault-crash", a, 0)
			o.Count("shard-lease-hit", a, 0)
		}
	})
	if err := w.Run(); err != nil {
		panic(err)
	}
}

func TestFaultCountersSortedAndPrefixed(t *testing.T) {
	tr := NewTracer("faults")
	faultScenario(tr)
	fs := tr.Faults()
	if len(fs) != 2 {
		t.Fatalf("Faults() = %v, want the two fault- labels", fs)
	}
	if fs[0].Name != "fault-crash" || fs[1].Name != "fault-drop:msg" {
		t.Fatalf("fault counters out of lexical order: %v", fs)
	}
	if fs[1].Count != 2 || fs[1].Time != 50*sim.Nanosecond {
		t.Fatalf("fault-drop stat = %+v", fs[1])
	}
	if tr.Counter("shard-lease-hit") != 0 || tr.Digest().Counts != 4 {
		t.Fatalf("non-fault counter mishandled: digest %+v", tr.Digest())
	}
	if clean := NewTracer("clean"); clean.Faults() != nil {
		t.Fatal("fault counters on a clean tracer")
	}
}

func TestFinalTimeAndDispatches(t *testing.T) {
	tr := NewTracer("run")
	scenario(7, tr)
	if tr.FinalTime() == 0 || int64(tr.FinalTime()) != tr.Digest().FinalNs {
		t.Fatalf("FinalTime = %v, digest %+v", tr.FinalTime(), tr.Digest())
	}
	if tr.Dispatches() == 0 || tr.Dispatches() != tr.Digest().Dispatches {
		t.Fatalf("Dispatches = %d, digest %+v", tr.Dispatches(), tr.Digest())
	}
}

// The watermark round-trip behind snapshot forks: a fresh tracer
// restored from a watermark reports the same digest, and continuing
// both tracers over the same suffix keeps them identical.
func TestWatermarkRoundTrip(t *testing.T) {
	orig := NewTracer("wm")
	scenario(7, orig)
	wm := orig.SnapshotWatermark()

	forked := NewTracer("wm")
	forked.SetKeepEvents(false)
	if err := forked.RestoreWatermark(wm); err != nil {
		t.Fatal(err)
	}
	if orig.Digest() != forked.Digest() {
		t.Fatalf("restored digest diverges:\n%+v\n%+v", orig.Digest(), forked.Digest())
	}
	scenario(9, orig)
	scenario(9, forked)
	if orig.Digest() != forked.Digest() {
		t.Fatalf("continued digests diverge:\n%+v\n%+v", orig.Digest(), forked.Digest())
	}
}

func TestWatermarkRejectsCorrupt(t *testing.T) {
	orig := NewTracer("wm")
	scenario(7, orig)
	wm := orig.SnapshotWatermark()

	fresh := NewTracer("wm")
	before := fresh.Digest()
	if err := fresh.RestoreWatermark(wm[:5]); err == nil {
		t.Fatal("truncated watermark restored")
	}
	if err := fresh.RestoreWatermark(append(append([]byte{}, wm...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if fresh.Digest() != before {
		t.Fatal("failed restore modified the tracer")
	}
}

// Set-level plumbing the experiment runners use: Hook/CellHook install
// tracers per labelled world, Digests lists them in lane order, and
// SetKeepEvents governs retention for tracers created afterwards.
func TestSetHooksAndDigests(t *testing.T) {
	s := NewSet()
	s.SetKeepEvents(false)
	cellHook := s.CellHook()
	w1 := sim.NewWorld(3)
	cellHook(1, "cell1", w1)
	hook := s.Hook()
	w0 := sim.NewWorld(3)
	hook("auto", w0) // auto-assigned cell 2: after the explicit cell 1
	for _, w := range []*sim.World{w0, w1} {
		w.Spawn("a", func(a *sim.Actor) { a.Charge("op", 10*sim.Nanosecond) })
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
	}
	ds := s.Digests()
	if len(ds) != 2 || ds[0].Label != "cell1" || ds[1].Label != "auto" {
		t.Fatalf("Digests() = %+v", ds)
	}
	if ds[0].SHA256 != ds[1].SHA256 {
		t.Fatal("identical worlds hashed differently across lanes")
	}
	if s.Get("cell1").Events() != nil {
		t.Fatal("SetKeepEvents(false) did not propagate to hook-created tracers")
	}
}

func TestTracerMetricsJSONAndSummary(t *testing.T) {
	tr := NewTracer("prof")
	scenario(7, tr)
	var buf bytes.Buffer
	if err := tr.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("tracer metrics JSON invalid: %v", err)
	}
	if m["label"] != "prof" {
		t.Fatalf("metrics label = %v", m["label"])
	}
	sum := tr.Summary()
	for _, want := range []string{"prof:", "compute", "core0", "dispatches"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}
