package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"xemem/internal/sim"
)

// Set collects the tracers of a multi-world run (experiments build one
// world per configuration point) and exports them together: one Chrome
// trace process per tracer, one metrics record per tracer, digests in
// deterministic order.
//
// Registration is safe from concurrent host goroutines: the parallel
// sweep runner builds worlds from several workers at once. Export order
// is keyed by (cell, partition, seq), where cell is the sweep-cell
// index, partition distinguishes nested or partitioned worlds registered
// under one cell, and seq counts registrations within a (cell,
// partition) lane — construction inside one lane is sequential, so seq
// is deterministic. Legacy Hook/Get registrations auto-assign one cell
// per tracer in call order, so a serial run's export order is exactly
// its creation order — and a parallel run sorts back to the identical
// order, whatever order the workers reached the registrations in.
// Individual Tracers still belong to exactly one world and are not
// locked.
type Set struct {
	mu      sync.Mutex
	entries []setEntry
	m       map[string]*Tracer
	keep    bool
	auto    int             // next auto-assigned cell (Get/Hook path)
	cellSeq map[cellKey]int // next within-lane sequence number
}

// setEntry is one registered tracer with its deterministic sort key.
type setEntry struct {
	cell, part, seq int
	t               *Tracer
}

// cellKey identifies one registration lane: sequence numbers are
// per-(cell, partition), so two partitions of one cell registering
// concurrently cannot perturb each other's seq values.
type cellKey struct{ cell, part int }

// NewSet returns an empty set with event retention on.
func NewSet() *Set {
	return &Set{m: make(map[string]*Tracer), cellSeq: make(map[cellKey]int), keep: true}
}

// SetKeepEvents toggles event retention for tracers the set creates
// later (metrics-only runs keep memory flat; Chrome export needs events).
func (s *Set) SetKeepEvents(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keep = on
}

// Get returns the tracer for label, creating it on first use. Tracers
// created this way sort in creation order (each takes the next free
// cell index).
func (s *Set) Get(label string) *Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.get(s.auto, 0, label)
	return t
}

// GetAt creates-or-returns the tracer for label under an explicit
// (cell, partition) lane. Partitioned world builders register each
// partition's nested tracers through their own lane so export order is
// independent of which host worker registered first.
func (s *Set) GetAt(cell, part int, label string) *Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(cell, part, label)
}

// get creates-or-returns the tracer for label under (cell, part).
// Callers hold mu.
func (s *Set) get(cell, part int, label string) *Tracer {
	if t, ok := s.m[label]; ok {
		return t
	}
	t := NewTracer(label)
	t.SetKeepEvents(s.keep)
	s.m[label] = t
	k := cellKey{cell, part}
	s.entries = append(s.entries, setEntry{cell: cell, part: part, seq: s.cellSeq[k], t: t})
	s.cellSeq[k]++
	if cell >= s.auto {
		s.auto = cell + 1
	}
	return t
}

// Tracers returns the set's tracers ordered by (cell, partition, seq) —
// creation order for serial runs, the cell-enumeration order for
// parallel sweeps, partition-label order within a cell for partitioned
// worlds.
func (s *Set) Tracers() []*Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.SliceStable(s.entries, func(i, j int) bool {
		a, b := s.entries[i], s.entries[j]
		if a.cell != b.cell {
			return a.cell < b.cell
		}
		if a.part != b.part {
			return a.part < b.part
		}
		return a.seq < b.seq
	})
	out := make([]*Tracer, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.t)
	}
	return out
}

// Hook returns an observer-installing callback in the shape the
// experiments package consumes (experiments.Observe): it creates one
// tracer per labelled world and installs it.
func (s *Set) Hook() func(label string, w *sim.World) {
	return func(label string, w *sim.World) {
		w.SetObserver(s.Get(label))
	}
}

// CellHook returns a cell-aware observer-installing callback (the shape
// of experiments.ObserveCell): worlds registered from sweep cell i sort
// at position i regardless of which worker goroutine built them, making
// trace export order — and therefore digests, Chrome traces, and metrics
// JSON — independent of the worker count.
func (s *Set) CellHook() func(cell int, label string, w *sim.World) {
	return func(cell int, label string, w *sim.World) {
		s.mu.Lock()
		t := s.get(cell, 0, label)
		s.mu.Unlock()
		w.SetObserver(t)
	}
}

// CellPartitionHook returns the partition-aware variant of CellHook: a
// world registered from sweep cell i under partition lane p sorts at
// (i, p, seq) regardless of the registering goroutine. Nested-world
// builders that construct one sub-world per engine partition hook each
// through its partition label so the export order — and therefore
// digests, Chrome traces, and metrics JSON — is identical at every
// worker count.
func (s *Set) CellPartitionHook() func(cell, part int, label string, w *sim.World) {
	return func(cell, part int, label string, w *sim.World) {
		w.SetObserver(s.GetAt(cell, part, label))
	}
}

// Digests returns every tracer's digest in (cell, partition, seq) order.
func (s *Set) Digests() []Digest {
	ts := s.Tracers()
	out := make([]Digest, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Digest())
	}
	return out
}

// --- Chrome trace_event export ------------------------------------------

// chromeEvent is one trace_event record. Timestamps and durations are in
// microseconds per the format; virtual nanoseconds divide by 1e3.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func us(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace writes the set as Chrome trace_event JSON
// ({"traceEvents": [...]}), loadable in chrome://tracing or Perfetto.
// Each tracer becomes a process (pid = creation index, named by label);
// each actor becomes a thread. Spans and resource occupancy render as
// complete ("X") events; queue residency renders as "X" events in a
// "queue" category so funnel serialization is visible as stacked waits.
// Tracers with event retention off are skipped.
func (s *Set) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		buf, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(buf)
		return err
	}
	for pid, t := range s.Tracers() {
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": t.label}}); err != nil {
			return err
		}
		ids := make([]int, 0, len(t.actors))
		for id := range t.actors {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: id + 1,
				Args: map[string]any{"name": t.actors[id]}}); err != nil {
				return err
			}
		}
		for i := range t.events {
			e := &t.events[i]
			var ce chromeEvent
			switch e.Kind {
			case EvSpan:
				ce = chromeEvent{Name: e.Op, Ph: "X", Cat: "span", Pid: pid, Tid: e.Actor + 1,
					Ts: us(e.Start), Dur: us(e.Dur)}
			case EvAcquire:
				name := e.Op
				if name == "" {
					name = e.Res
				}
				args := map[string]any{"resource": e.Res}
				if e.Wait > 0 {
					args["wait_us"] = us(e.Wait)
					args["queue_depth"] = e.Depth
				}
				ce = chromeEvent{Name: name, Ph: "X", Cat: "resource", Pid: pid, Tid: e.Actor + 1,
					Ts: us(e.Start), Dur: us(e.Dur), Args: args}
			case EvQueueWait:
				if e.Wait == 0 {
					continue // idle-worker dequeues are noise in the timeline
				}
				ce = chromeEvent{Name: e.Op, Ph: "X", Cat: "queue", Pid: pid, Tid: e.Actor + 1,
					Ts: us(e.Start), Dur: us(e.Wait),
					Args: map[string]any{"depth_after": e.Depth}}
			case EvCount:
				ce = chromeEvent{Name: e.Op, Ph: "C", Pid: pid, Ts: us(e.Start),
					Args: map[string]any{"ns": int64(e.Dur)}}
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// --- flat metrics JSON ---------------------------------------------------

// resourceJSON is the exported form of ResourceMetrics.
type resourceJSON struct {
	ResourceMetrics
	Utilization float64            `json:"utilization"`
	WaitHist    []HistBucket       `json:"wait_hist,omitempty"`
	ByOp        map[string]*OpStat `json:"by_op,omitempty"`
}

// queueJSON is the exported form of QueueMetrics.
type queueJSON struct {
	QueueMetrics
	WaitHist []HistBucket `json:"wait_hist,omitempty"`
}

// metricsJSON is one tracer's flat metrics record.
type metricsJSON struct {
	Label      string                  `json:"label"`
	FinalNs    int64                   `json:"final_ns"`
	Dispatches uint64                  `json:"dispatches"`
	Ops        map[string]*OpStat      `json:"ops,omitempty"`
	Resources  map[string]resourceJSON `json:"resources,omitempty"`
	Queues     map[string]queueJSON    `json:"queues,omitempty"`
	Counters   map[string]*OpStat      `json:"counters,omitempty"`
}

func (t *Tracer) metrics() metricsJSON {
	m := metricsJSON{
		Label:      t.label,
		FinalNs:    int64(t.final),
		Dispatches: t.dispatches,
		Ops:        t.ops,
		Counters:   t.counters,
	}
	if len(t.res) > 0 {
		m.Resources = make(map[string]resourceJSON, len(t.res))
		//xemem:allow maporder -- map-to-map transform; encoding/json serializes the result key-sorted
		for name, r := range t.res {
			util := 0.0
			if t.final > 0 {
				util = float64(r.Busy) / float64(t.final)
			}
			m.Resources[name] = resourceJSON{
				ResourceMetrics: *r, Utilization: util,
				WaitHist: r.WaitHist.Buckets(), ByOp: r.ByOp,
			}
		}
	}
	if len(t.queues) > 0 {
		m.Queues = make(map[string]queueJSON, len(t.queues))
		//xemem:allow maporder -- map-to-map transform; encoding/json serializes the result key-sorted
		for name, q := range t.queues {
			m.Queues[name] = queueJSON{QueueMetrics: *q, WaitHist: q.WaitHist.Buckets()}
		}
	}
	return m
}

// WriteMetricsJSON writes every tracer's per-op, per-resource, and
// per-queue metrics as an indented JSON array in creation order. Map
// keys serialize sorted (encoding/json), so output is deterministic.
func (s *Set) WriteMetricsJSON(w io.Writer) error {
	ts := s.Tracers()
	records := make([]metricsJSON, 0, len(ts))
	for _, t := range ts {
		records = append(records, t.metrics())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// WriteMetricsJSON writes this tracer's metrics as one JSON object.
func (t *Tracer) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.metrics())
}

// Summary renders a short human-readable profile: top operations by
// charged time and the most-contended resources and queues.
func (t *Tracer) Summary() string {
	out := fmt.Sprintf("%s: %s simulated, %d dispatches\n", t.label, t.final, t.dispatches)
	type kv struct {
		k string
		v *OpStat
	}
	var tops []kv
	for k, v := range t.ops {
		tops = append(tops, kv{k, v})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].v.Time != tops[j].v.Time {
			return tops[i].v.Time > tops[j].v.Time
		}
		return tops[i].k < tops[j].k
	})
	for i, e := range tops {
		if i >= 8 {
			break
		}
		out += fmt.Sprintf("  op %-16s %12v  x%d\n", e.k, e.v.Time, e.v.Count)
	}
	for _, name := range sorted(t.res) {
		r := t.res[name]
		out += fmt.Sprintf("  res %-28s busy %12v  wait %12v  (%d/%d contended, depth<=%d)\n",
			name, r.Busy, r.Wait, r.Contended, r.Acquires, r.MaxDepth)
	}
	for _, name := range sorted(t.queues) {
		q := t.queues[name]
		out += fmt.Sprintf("  queue %-26s wait %12v  over %d msgs, depth<=%d\n",
			name, q.WaitTime, q.Waits, q.MaxDepth)
	}
	return out
}
