// Package trace is the simulator's observability layer: a sim.Observer
// that turns the engine's event stream — cost-charge spans, resource
// acquisitions with queueing delays, receive-queue waits, attribution
// counters, scheduler dispatches — into per-operation and per-resource
// metrics, Chrome trace_event JSON for chrome://tracing / Perfetto, and
// compact digests that double as golden regression artifacts.
//
// Everything the tracer records is derived from virtual time and the
// deterministic schedule, never from the host clock, so for a fixed seed
// the full event stream — and therefore every exported artifact — is
// bit-for-bit reproducible. The golden-trace tests in
// internal/experiments rely on exactly that.
package trace

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"
	"math/bits"
	"sort"
	"strings"

	"xemem/internal/sim"
	"xemem/internal/sim/snapshot"
)

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds.
const (
	EvSpan      EventKind = iota // a Charge/ChargeN cost span
	EvAcquire                    // a Resource/Core acquisition (service span + wait)
	EvQueueWait                  // a receive-queue residency interval
	EvCount                      // a named time attribution with no span
)

// Event is one recorded observation. Field use varies by kind:
//
//	EvSpan:      Op, Start, Dur
//	EvAcquire:   Op (tag), Res, Start (service start), Dur (service), Wait, Depth
//	EvQueueWait: Op (queue name), Start (enqueue), Wait (residency), Depth
//	EvCount:     Op (counter name), Dur (attributed time)
type Event struct {
	Kind  EventKind
	Actor int
	Op    string
	Res   string
	Start sim.Time
	Dur   sim.Time
	Wait  sim.Time
	Depth int
}

// OpStat accumulates count and total virtual time for one label.
type OpStat struct {
	Count uint64   `json:"count"`
	Time  sim.Time `json:"time_ns"`
}

// Hist is a base-2 logarithmic histogram of durations: bucket i counts
// durations d with bits.Len64(d) == i, i.e. d in [2^(i-1), 2^i) ns
// (bucket 0 holds zero durations).
type Hist struct {
	buckets [65]uint64
}

// Add records one duration.
func (h *Hist) Add(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.buckets[bits.Len64(uint64(d))]++
}

// HistBucket is one non-empty histogram bucket for JSON export: Count
// durations in [LoNs, HiNs).
type HistBucket struct {
	LoNs  int64  `json:"lo_ns"`
	HiNs  int64  `json:"hi_ns"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending duration order.
func (h *Hist) Buckets() []HistBucket {
	var out []HistBucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := int64(0), int64(1)
		if i > 0 {
			lo = int64(1) << (i - 1)
			hi = int64(1) << i
		}
		out = append(out, HistBucket{LoNs: lo, HiNs: hi, Count: n})
	}
	return out
}

// ResourceMetrics is the contention profile of one Resource/Core: how
// long it was occupied and by what, how long acquirers queued, and how
// deep the queue got. Utilization is Busy over the final virtual time.
type ResourceMetrics struct {
	Busy      sim.Time `json:"busy_ns"`
	Wait      sim.Time `json:"wait_ns"`
	Acquires  uint64   `json:"acquires"`
	Contended uint64   `json:"contended"`
	MaxDepth  int      `json:"max_queue_depth"`
	WaitHist  Hist     `json:"-"`
	// ByOp splits service time by operation tag.
	ByOp map[string]*OpStat `json:"-"`
}

// QueueMetrics is the residency profile of one receive queue (inbox):
// how long deliveries sat before a worker dequeued them. For a module
// with a single kernel worker this is the §5.3 core-0 funnel: every
// message's serialization delay behind the IPI handler lands here.
type QueueMetrics struct {
	Waits    uint64   `json:"waits"`
	WaitTime sim.Time `json:"wait_ns"`
	MaxDepth int      `json:"max_depth"`
	WaitHist Hist     `json:"-"`
}

// Tracer implements sim.Observer. Create one per world with NewTracer
// and install it with World.SetObserver. All accumulation is pure
// host-side bookkeeping; the simulated schedule is untouched.
type Tracer struct {
	label string
	keep  bool

	events []Event
	digest hash.Hash
	buf    []byte

	nSpans      uint64
	nAcquires   uint64
	nQueueWaits uint64
	nCounts     uint64
	dispatches  uint64

	spanTime sim.Time // total charged time observed (spans + acquire service)
	waitTime sim.Time // total queueing delay (resource waits + queue residency)
	final    sim.Time // latest virtual timestamp observed

	actors   map[int]string
	ops      map[string]*OpStat
	res      map[string]*ResourceMetrics
	queues   map[string]*QueueMetrics
	counters map[string]*OpStat
}

// NewTracer returns an empty tracer labelled label (the experiment
// configuration it observes, e.g. "fig6/enclaves=2/size=1024MB"). Event
// retention is on by default; SetKeepEvents(false) drops raw events and
// keeps only metrics and the running digest (Chrome export then becomes
// unavailable).
func NewTracer(label string) *Tracer {
	return &Tracer{
		label:    label,
		keep:     true,
		digest:   sha256.New(),
		actors:   make(map[int]string),
		ops:      make(map[string]*OpStat),
		res:      make(map[string]*ResourceMetrics),
		queues:   make(map[string]*QueueMetrics),
		counters: make(map[string]*OpStat),
	}
}

// Label reports the tracer's configuration label.
func (t *Tracer) Label() string { return t.label }

// SetKeepEvents toggles raw event retention. Metrics and the digest are
// unaffected; only WriteChromeTrace needs retained events.
func (t *Tracer) SetKeepEvents(on bool) { t.keep = on }

// Events returns the retained raw events (nil when retention is off).
func (t *Tracer) Events() []Event { return t.events }

// hashEvent folds an event into the running digest. The encoding is
// fixed-width little-endian with length-prefixed strings, so the digest
// depends only on the deterministic event stream — no map iteration, no
// wall clock, no pointers.
func (t *Tracer) hashEvent(e *Event) {
	b := t.buf[:0]
	b = append(b, byte(e.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Actor))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(e.Op)))
	b = append(b, e.Op...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(e.Res)))
	b = append(b, e.Res...)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Start))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Dur))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Wait))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Depth))
	t.buf = b
	t.digest.Write(b)
}

func (t *Tracer) record(e Event) {
	t.hashEvent(&e)
	if t.keep {
		t.events = append(t.events, e)
	}
	if end := e.Start + e.Dur; end > t.final {
		t.final = end
	}
}

func (t *Tracer) noteActor(a *sim.Actor) int {
	if a == nil {
		return -1
	}
	id := a.ID()
	if _, ok := t.actors[id]; !ok {
		t.actors[id] = a.Name()
	}
	return id
}

func addOp(m map[string]*OpStat, key string, d sim.Time) {
	s := m[key]
	if s == nil {
		s = &OpStat{}
		m[key] = s
	}
	s.Count++
	s.Time += d
}

// Span implements sim.Observer.
func (t *Tracer) Span(a *sim.Actor, op string, start, dur sim.Time) {
	t.nSpans++
	t.spanTime += dur
	addOp(t.ops, op, dur)
	t.record(Event{Kind: EvSpan, Actor: t.noteActor(a), Op: op, Start: start, Dur: dur})
}

// AcquireRes implements sim.Observer.
func (t *Tracer) AcquireRes(r *sim.Resource, a *sim.Actor, op string, arrival, start, dur sim.Time, depth int) {
	t.nAcquires++
	t.spanTime += dur
	wait := start - arrival
	t.waitTime += wait
	m := t.res[r.Name()]
	if m == nil {
		m = &ResourceMetrics{ByOp: make(map[string]*OpStat)}
		t.res[r.Name()] = m
	}
	m.Busy += dur
	m.Wait += wait
	m.Acquires++
	if wait > 0 {
		m.Contended++
		m.WaitHist.Add(wait)
	}
	if depth > m.MaxDepth {
		m.MaxDepth = depth
	}
	tag := op
	if tag == "" {
		tag = "untagged"
	}
	addOp(m.ByOp, tag, dur)
	t.record(Event{Kind: EvAcquire, Actor: t.noteActor(a), Op: op, Res: r.Name(),
		Start: start, Dur: dur, Wait: wait, Depth: depth})
}

// QueueWait implements sim.Observer.
func (t *Tracer) QueueWait(queue string, a *sim.Actor, enqueued, dequeued sim.Time, depth int) {
	t.nQueueWaits++
	wait := dequeued - enqueued
	t.waitTime += wait
	m := t.queues[queue]
	if m == nil {
		m = &QueueMetrics{}
		t.queues[queue] = m
	}
	m.Waits++
	m.WaitTime += wait
	m.WaitHist.Add(wait)
	if depth > m.MaxDepth {
		m.MaxDepth = depth
	}
	t.record(Event{Kind: EvQueueWait, Actor: t.noteActor(a), Op: queue,
		Start: enqueued, Wait: wait, Depth: depth})
}

// Count implements sim.Observer.
func (t *Tracer) Count(name string, a *sim.Actor, d sim.Time) {
	t.nCounts++
	addOp(t.counters, name, d)
	t.record(Event{Kind: EvCount, Actor: t.noteActor(a), Op: name, Dur: d})
}

// Dispatch implements sim.Observer. Dispatches are counted (a schedule
// fingerprint the digest includes) but not recorded as events — they
// would dwarf every other kind.
func (t *Tracer) Dispatch(a *sim.Actor, now sim.Time) {
	t.dispatches++
	if now > t.final {
		t.final = now
	}
}

var _ sim.Observer = (*Tracer)(nil)

// Op reports the accumulated stat for one Charge label (zero if absent).
func (t *Tracer) Op(name string) OpStat {
	if s, ok := t.ops[name]; ok {
		return *s
	}
	return OpStat{}
}

// Resource reports the contention metrics of one resource by name.
func (t *Tracer) Resource(name string) ResourceMetrics {
	if m, ok := t.res[name]; ok {
		return *m
	}
	return ResourceMetrics{}
}

// Queue reports the residency metrics of one receive queue by name.
func (t *Tracer) Queue(name string) QueueMetrics {
	if m, ok := t.queues[name]; ok {
		return *m
	}
	return QueueMetrics{}
}

// Counter reports the total time attributed to one Count label.
func (t *Tracer) Counter(name string) sim.Time {
	if s, ok := t.counters[name]; ok {
		return s.Time
	}
	return 0
}

// FaultStat is one fault-injection counter: a "fault-" prefixed Count
// label (drops, crashes, name-server outage drops) with its event count
// and any attributed virtual time.
type FaultStat struct {
	Name  string   `json:"name"`
	Count uint64   `json:"count"`
	Time  sim.Time `json:"time_ns"`
}

// Faults reports the fault-injection counters in lexical order (empty in
// a zero-fault run). Fault events flow through Count, so they are part
// of the event stream the digest covers: a changed fault schedule
// changes the digest.
func (t *Tracer) Faults() []FaultStat {
	var out []FaultStat
	for _, k := range sorted(t.counters) {
		if strings.HasPrefix(k, "fault-") {
			s := t.counters[k]
			out = append(out, FaultStat{Name: k, Count: s.Count, Time: s.Time})
		}
	}
	return out
}

// FinalTime reports the latest virtual timestamp the tracer observed.
func (t *Tracer) FinalTime() sim.Time { return t.final }

// Dispatches reports the number of scheduler dispatches observed.
func (t *Tracer) Dispatches() uint64 { return t.dispatches }

// sorted returns m's keys in lexical order (deterministic export order).
func sorted[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Digest is a compact, fully deterministic summary of one tracer's event
// stream: counts, virtual-time totals, and a SHA-256 over the raw
// events. Any behavioural drift in an experiment — a changed cost, a
// reordered schedule, one extra message — changes the digest, which is
// what makes it a golden regression artifact.
type Digest struct {
	Label      string `json:"label"`
	Spans      uint64 `json:"spans"`
	Acquires   uint64 `json:"acquires"`
	QueueWaits uint64 `json:"queue_waits"`
	Counts     uint64 `json:"counts"`
	Dispatches uint64 `json:"dispatches"`
	SpanTimeNs int64  `json:"span_time_ns"`
	WaitTimeNs int64  `json:"wait_time_ns"`
	FinalNs    int64  `json:"final_ns"`
	SHA256     string `json:"sha256"`
}

// SnapshotWatermark implements sim.SnapshotWatermarker: it exports the
// tracer's accumulated digest state — the running SHA-256's internal
// state plus every count and time total that feeds Digest — so a
// restored or forked run can continue the digest exactly where the
// snapshot left off. The per-op/resource/queue metric maps are
// deliberately not captured: they are presentation-side aggregation, and
// a forked run's metrics cover only post-fork events, while its Digest
// is exact end-to-end.
func (t *Tracer) SnapshotWatermark() []byte {
	hb, err := t.digest.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		panic("trace: sha256 state not marshalable: " + err.Error())
	}
	var e snapshot.Enc
	e.Blob(hb)
	e.U64(t.nSpans)
	e.U64(t.nAcquires)
	e.U64(t.nQueueWaits)
	e.U64(t.nCounts)
	e.U64(t.dispatches)
	e.I64(int64(t.spanTime))
	e.I64(int64(t.waitTime))
	e.I64(int64(t.final))
	return e.Data()
}

// RestoreWatermark rewinds the tracer to a watermark exported by
// SnapshotWatermark. Events observed from here hash on top of the
// restored digest state, so the final Digest equals an uninterrupted
// run's. It fails (wrapping snapshot.ErrCorrupt) without modifying the
// tracer when the watermark does not parse.
func (t *Tracer) RestoreWatermark(data []byte) error {
	d := snapshot.NewDec(data)
	hb := d.Blob()
	nSpans := d.U64()
	nAcquires := d.U64()
	nQueueWaits := d.U64()
	nCounts := d.U64()
	dispatches := d.U64()
	spanTime := sim.Time(d.I64())
	waitTime := sim.Time(d.I64())
	final := sim.Time(d.I64())
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing watermark bytes", snapshot.ErrCorrupt, d.Remaining())
	}
	if err := t.digest.(encoding.BinaryUnmarshaler).UnmarshalBinary(hb); err != nil {
		return fmt.Errorf("%w: sha256 state: %v", snapshot.ErrCorrupt, err)
	}
	t.nSpans = nSpans
	t.nAcquires = nAcquires
	t.nQueueWaits = nQueueWaits
	t.nCounts = nCounts
	t.dispatches = dispatches
	t.spanTime = spanTime
	t.waitTime = waitTime
	t.final = final
	return nil
}

// Digest summarizes the stream observed so far.
func (t *Tracer) Digest() Digest {
	return Digest{
		Label:      t.label,
		Spans:      t.nSpans,
		Acquires:   t.nAcquires,
		QueueWaits: t.nQueueWaits,
		Counts:     t.nCounts,
		Dispatches: t.dispatches,
		SpanTimeNs: int64(t.spanTime),
		WaitTimeNs: int64(t.waitTime),
		FinalNs:    int64(t.final),
		SHA256:     fmt.Sprintf("%x", t.digest.Sum(nil)),
	}
}
