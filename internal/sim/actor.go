package sim

import "fmt"

type actorState int

const (
	ready actorState = iota
	blocked
	done
	killed
)

// errKilled is panicked through an actor's stack when the world terminates
// it (e.g. a daemon message loop at the end of a run).
type errKilled struct{}

// Actor is a simulated thread of execution with its own virtual clock. All
// Actor methods must be called from within the actor's own function; the
// sole exception is Unblock, which a *running* actor may call on another.
type Actor struct {
	id          int
	name        string
	w           *World
	now         Time
	state       actorState
	daemon      bool
	blockReason string
	resume      chan struct{}
	rng         *RNG
	// heapIdx is the actor's slot in the owning ready-queue heap, or -1
	// when the actor is not enqueued (running, blocked, or finished).
	heapIdx int
	// partID is the actor's partition label (see World.SpawnIn); part is
	// the live partition object while the parallel engine is running, nil
	// otherwise.
	partID int
	part   *partition
	// mseq numbers the actor's mailbox sends, making (delivery, sender,
	// mseq) a total order on messages.
	mseq uint64
	// dirty marks a clock moved by an elided advance (run-to-completion
	// batching, see World.SetBatchedAdvances) that has not yet been
	// committed by a scheduler yield.
	dirty bool
	// wakeEK is the effective position of the actor's current enqueue in
	// the serial dispatch order (parallel engine only). It differs from
	// the plain (now, id) scheduler key only when the enqueue was created
	// at the creator's own timestamp — an Unblock or Spawn at time t made
	// during a dispatch positioned at (t, bigger id) trails that dispatch
	// in serial order even though its own key sorts earlier. Mailbox
	// wakes never inherit: delivery latencies are strictly positive, so
	// the wake key strictly dominates every sender position.
	wakeEK evKey
	// stretch counts the actor's dispatches under the parallel engine.
	// Together with madeBy/madeSeq it identifies events created by a
	// specific dispatch — the drain phase must block exactly the events
	// the final non-daemon completion dispatch created (see
	// daemonBlocked). Every creation primitive settles first, so a
	// stretch spans one serial dispatch even under advance batching.
	stretch uint64
	// madeBy/madeSeq record the creating dispatch of the actor's current
	// enqueue: the actor (nil after the enqueue is dispatched or when
	// self-scheduled) and its stretch counter at creation time.
	madeBy  *Actor
	madeSeq uint64
}

// posKey is the actor's current effective serial position: every event
// it creates from here dispatches after this key in the serial order.
func (a *Actor) posKey() evKey {
	k := evKey{t: a.now, id: a.id}
	if k.less(a.wakeEK) {
		k = a.wakeEK
	}
	return k
}

// run is the goroutine body wrapping the user function.
func (a *Actor) run(fn func(*Actor)) {
	<-a.resume // wait for first dispatch
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(errKilled); ok {
				if p := a.part; p != nil {
					p.yield <- a
				} else {
					a.w.yield <- a
				}
				return
			}
			panic(r) // real panic: propagate (crashes the test, as it should)
		}
	}()
	if a.state == killed {
		panic(errKilled{})
	}
	fn(a)
	a.state = done
	if p := a.part; p != nil {
		// Elided advances never dispatched, so the partition clock may lag
		// the final clock the serial engine would have dispatched at.
		if a.now > p.now {
			p.now = a.now
		}
		if !a.daemon {
			p.live--
			// In serial (and under batching, which preserves a.now while
			// eliding yields) the final dispatch of a completing actor is
			// at (a.now, a.id): this partition's candidate for the global
			// termination cut-off K_done (see drainParallel). Record the
			// dispatch identity too — the drain must block exactly the
			// events the winning dispatch created.
			if k := (evKey{t: a.now, id: a.id}); p.lastND.less(k) {
				p.lastND = k
				p.lastNDActor = a
				p.lastNDStretch = a.stretch
			}
		}
		// Parallel engine: hand control onward within the partition.
		p.dispatchFrom(a)
		return
	}
	if !a.daemon {
		a.w.liveNonDaemons--
	}
	if a.w.linearScan {
		a.w.yield <- a
		return
	}
	// Heap mode: hand control onward directly; this goroutine then exits.
	// A done actor is never re-enqueued, so dispatchFrom cannot pick it.
	a.w.dispatchFrom(a)
}

// pause hands control onward and waits to be dispatched again. Heap mode
// dispatches the next actor directly (or keeps running when this actor is
// still the minimum); linear mode yields to the scheduler loop.
func (a *Actor) pause() {
	a.dirty = false
	if p := a.part; p != nil {
		if !p.dispatchFrom(a) {
			<-a.resume
		}
	} else if a.w.linearScan {
		a.w.yield <- a
		<-a.resume
	} else if !a.w.dispatchFrom(a) {
		<-a.resume
	}
	if a.state == killed {
		panic(errKilled{})
	}
}

// ID reports the actor's unique ID (dense, in spawn order).
func (a *Actor) ID() int { return a.id }

// Name reports the actor's name.
func (a *Actor) Name() string { return a.name }

// Now reports the actor's current virtual time.
func (a *Actor) Now() Time { return a.now }

// World reports the world the actor belongs to.
func (a *Actor) World() *World { return a.w }

// SetDaemon marks the actor as a daemon: the world's Run returns when all
// non-daemon actors finish, terminating daemons. Kernel message loops and
// noise generators are daemons.
func (a *Actor) SetDaemon() {
	a.Settle() // the live counter feeds the termination check
	if !a.daemon {
		a.daemon = true
		if p := a.part; p != nil {
			p.live--
		} else {
			a.w.liveNonDaemons--
		}
	}
}

// Partition reports the actor's partition label (see World.SpawnIn).
func (a *Actor) Partition() int { return a.partID }

// RNG returns the actor's private deterministic random stream, creating
// it on first use. In single-partition worlds the stream comes from the
// world's creation-order counter (the legacy derivation every golden
// digest was produced with). Multi-partition worlds derive the seed from
// the actor id instead: first-use order differs across partition
// interleavings, but the id does not — and windows running concurrently
// could not share the counter anyway. See World.SetStableActorRNG for
// opting single-partition builds into the id derivation.
func (a *Actor) RNG() *RNG {
	if a.rng == nil {
		if a.w.nparts > 1 || a.w.stableRNG {
			a.rng = NewRNG(a.w.seed ^ (uint64(a.id)+1)*0x9e3779b97f4a7c15 ^ 0x5bf0363508b19383)
		} else {
			a.Settle() // the creation-order counter is shared state
			a.rng = a.w.NewRNG()
		}
	}
	return a.rng
}

// elides reports whether the actor's pure advances may skip the
// scheduler yield (run-to-completion batching): the world opted in via
// SetBatchedAdvances, the parallel engine is running, the actor is not a
// daemon (daemons must dispatch every advance so the termination cut-off
// stays serial-exact), and nothing is observing the dispatch stream.
func (a *Actor) elides() bool {
	w := a.w
	return a.part != nil && w.batchAdvances && !a.daemon && w.obs == nil && w.Trace == nil
}

// Settle commits any advances elided by run-to-completion batching: the
// actor yields until every other actor below its clock has run, exactly
// as the serial engine would have done at each elided advance. It is a
// no-op on the serial engine and whenever batching is off. Substrate
// code that touches state shared with other actors outside the engine's
// own primitives (resources, mailboxes, Unblock, Spawn) must call it
// first; the engine primitives settle internally.
func (a *Actor) Settle() {
	if a.dirty {
		a.pause()
	}
}

// advanceSync is Advance minus batching: waits whose continuation
// depends on other actors' state (resource re-check loops, mailbox
// parks) must always yield, even in batched worlds.
func (a *Actor) advanceSync(d Time) {
	a.now += d
	a.pause()
}

// Advance charges d of virtual time to the actor and yields to the
// scheduler so that other actors with earlier clocks may run. d must be
// non-negative; Advance(0) is a pure yield. In worlds that opted into
// run-to-completion batching (SetBatchedAdvances) the yield may be
// elided until the actor next interacts with shared state.
func (a *Actor) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %d by %s", d, a.name))
	}
	a.now += d
	if a.elides() {
		a.dirty = true
		return
	}
	a.pause()
}

// Sleep is a readability alias for Advance.
func (a *Actor) Sleep(d Time) { a.Advance(d) }

// AdvanceN charges n repetitions of a d-cost operation as one advance of
// d*n, yielding to the scheduler once instead of n times. It is the
// batched cost-charging primitive for per-page work: because the actor
// performs no externally visible action between the individual unit
// advances, collapsing them into a single advance leaves every actor's
// timestamps — and therefore the whole simulated schedule's outcomes —
// unchanged, while the host does O(1) work instead of O(n).
func (a *Actor) AdvanceN(d Time, n uint64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %d by %s", d, a.name))
	}
	a.now += d * Time(n)
	if a.elides() {
		a.dirty = true
		return
	}
	a.pause()
}

// AdvanceTo moves the actor's clock forward to t (no-op if already past).
func (a *Actor) AdvanceTo(t Time) {
	if t > a.now {
		a.Advance(t - a.now)
	} else {
		a.Advance(0)
	}
}

// Block suspends the actor until another actor calls Unblock on it. The
// reason string appears in deadlock reports.
func (a *Actor) Block(reason string) {
	a.state = blocked
	a.blockReason = reason
	a.pause()
}

// Unblock makes b runnable again, no earlier than the caller's current
// time. Calling Unblock on a non-blocked actor is a no-op, which lets
// signal-style wakeups race benignly with polling. Under the parallel
// engine Unblock is a partition-local primitive: waking an actor in
// another partition would mutate that partition's heap mid-window, so it
// panics — cross-partition interaction must go through a Mailbox.
func (a *Actor) Unblock(b *Actor) {
	a.Settle()
	if a.part != nil && b.partID != a.partID {
		panic(fmt.Sprintf("sim: cross-partition Unblock of %s (partition %d) by %s (partition %d); use a Mailbox",
			b.name, b.partID, a.name, a.partID))
	}
	if b.state != blocked {
		return
	}
	b.state = ready
	b.blockReason = ""
	if b.now < a.now {
		b.now = a.now
	}
	// The wake is created by a's current dispatch: in serial order it
	// trails a's position even when the wake key — id tie-break included
	// — sorts earlier (same-timestamp wake of a smaller-id actor).
	if pk := a.posKey(); b.wakeEK.less(pk) {
		b.wakeEK = pk
	}
	b.madeBy, b.madeSeq = a, a.stretch
	a.w.heapPush(b)
}

// Poll repeatedly evaluates cond, advancing by interval between checks,
// until cond is true. It models the polling-on-shared-memory signalling
// that the paper's composed workloads use (§6.1). It returns the number of
// polls performed.
func (a *Actor) Poll(interval Time, cond func() bool) int {
	n := 0
	for {
		a.Settle() // cond typically reads state other actors write
		if cond() {
			return n
		}
		a.Advance(interval)
		n++
	}
}

// Spawn creates a child actor starting at the caller's current time. The
// child inherits the caller's partition.
func (a *Actor) Spawn(name string, fn func(*Actor)) *Actor {
	a.Settle()
	child := a.w.SpawnIn(a.partID, name, fn)
	child.now = a.now
	child.wakeEK = a.posKey() // same-timestamp creation: trails a's dispatch
	child.madeBy, child.madeSeq = a, a.stretch
	a.w.heapFix(child)
	return child
}
