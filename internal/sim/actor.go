package sim

import "fmt"

type actorState int

const (
	ready actorState = iota
	blocked
	done
	killed
)

// errKilled is panicked through an actor's stack when the world terminates
// it (e.g. a daemon message loop at the end of a run).
type errKilled struct{}

// Actor is a simulated thread of execution with its own virtual clock. All
// Actor methods must be called from within the actor's own function; the
// sole exception is Unblock, which a *running* actor may call on another.
type Actor struct {
	id          int
	name        string
	w           *World
	now         Time
	state       actorState
	daemon      bool
	blockReason string
	resume      chan struct{}
	rng         *RNG
	// heapIdx is the actor's slot in the world's ready-queue heap, or -1
	// when the actor is not enqueued (running, blocked, or finished).
	heapIdx int
}

// run is the goroutine body wrapping the user function.
func (a *Actor) run(fn func(*Actor)) {
	<-a.resume // wait for first dispatch
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(errKilled); ok {
				a.w.yield <- a
				return
			}
			panic(r) // real panic: propagate (crashes the test, as it should)
		}
	}()
	if a.state == killed {
		panic(errKilled{})
	}
	fn(a)
	a.state = done
	if !a.daemon {
		a.w.liveNonDaemons--
	}
	if a.w.linearScan {
		a.w.yield <- a
		return
	}
	// Heap mode: hand control onward directly; this goroutine then exits.
	// A done actor is never re-enqueued, so dispatchFrom cannot pick it.
	a.w.dispatchFrom(a)
}

// pause hands control onward and waits to be dispatched again. Heap mode
// dispatches the next actor directly (or keeps running when this actor is
// still the minimum); linear mode yields to the scheduler loop.
func (a *Actor) pause() {
	if a.w.linearScan {
		a.w.yield <- a
		<-a.resume
	} else if !a.w.dispatchFrom(a) {
		<-a.resume
	}
	if a.state == killed {
		panic(errKilled{})
	}
}

// ID reports the actor's unique ID (dense, in spawn order).
func (a *Actor) ID() int { return a.id }

// Name reports the actor's name.
func (a *Actor) Name() string { return a.name }

// Now reports the actor's current virtual time.
func (a *Actor) Now() Time { return a.now }

// World reports the world the actor belongs to.
func (a *Actor) World() *World { return a.w }

// SetDaemon marks the actor as a daemon: the world's Run returns when all
// non-daemon actors finish, terminating daemons. Kernel message loops and
// noise generators are daemons.
func (a *Actor) SetDaemon() {
	if !a.daemon {
		a.daemon = true
		a.w.liveNonDaemons--
	}
}

// RNG returns the actor's private deterministic random stream, creating it
// on first use.
func (a *Actor) RNG() *RNG {
	if a.rng == nil {
		a.rng = a.w.NewRNG()
	}
	return a.rng
}

// Advance charges d of virtual time to the actor and yields to the
// scheduler so that other actors with earlier clocks may run. d must be
// non-negative; Advance(0) is a pure yield.
func (a *Actor) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %d by %s", d, a.name))
	}
	a.now += d
	a.pause()
}

// Sleep is a readability alias for Advance.
func (a *Actor) Sleep(d Time) { a.Advance(d) }

// AdvanceN charges n repetitions of a d-cost operation as one advance of
// d*n, yielding to the scheduler once instead of n times. It is the
// batched cost-charging primitive for per-page work: because the actor
// performs no externally visible action between the individual unit
// advances, collapsing them into a single advance leaves every actor's
// timestamps — and therefore the whole simulated schedule's outcomes —
// unchanged, while the host does O(1) work instead of O(n).
func (a *Actor) AdvanceN(d Time, n uint64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %d by %s", d, a.name))
	}
	a.now += d * Time(n)
	a.pause()
}

// AdvanceTo moves the actor's clock forward to t (no-op if already past).
func (a *Actor) AdvanceTo(t Time) {
	if t > a.now {
		a.Advance(t - a.now)
	} else {
		a.Advance(0)
	}
}

// Block suspends the actor until another actor calls Unblock on it. The
// reason string appears in deadlock reports.
func (a *Actor) Block(reason string) {
	a.state = blocked
	a.blockReason = reason
	a.pause()
}

// Unblock makes b runnable again, no earlier than the caller's current
// time. Calling Unblock on a non-blocked actor is a no-op, which lets
// signal-style wakeups race benignly with polling.
func (a *Actor) Unblock(b *Actor) {
	if b.state != blocked {
		return
	}
	b.state = ready
	b.blockReason = ""
	if b.now < a.now {
		b.now = a.now
	}
	a.w.heapPush(b)
}

// Poll repeatedly evaluates cond, advancing by interval between checks,
// until cond is true. It models the polling-on-shared-memory signalling
// that the paper's composed workloads use (§6.1). It returns the number of
// polls performed.
func (a *Actor) Poll(interval Time, cond func() bool) int {
	n := 0
	for !cond() {
		a.Advance(interval)
		n++
	}
	return n
}

// Spawn creates a child actor starting at the caller's current time.
func (a *Actor) Spawn(name string, fn func(*Actor)) *Actor {
	child := a.w.Spawn(name, fn)
	child.now = a.now
	a.w.heapFix(child)
	return child
}
