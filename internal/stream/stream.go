// Package stream implements the STREAM microbenchmark from the HPC
// Challenge suite (Dongarra et al.) that the paper's composed workload
// uses as its analytics component (§6.1): the Copy, Scale, Add, and Triad
// kernels with STREAM's standard result validation.
//
// The in situ example runs these kernels for real over data it copied out
// of an XEMEM attachment, exactly as the paper's analytics program does.
package stream

import (
	"fmt"
	"math"
)

// Arrays holds the three STREAM working arrays.
type Arrays struct {
	A, B, C []float64
	scalar  float64
}

// New allocates STREAM arrays of n elements with the standard initial
// values (a=1, b=2, c=0) and scalar 3.
func New(n int) *Arrays {
	s := &Arrays{A: make([]float64, n), B: make([]float64, n), C: make([]float64, n), scalar: 3}
	for i := 0; i < n; i++ {
		s.A[i] = 1
		s.B[i] = 2
	}
	return s
}

// Copy performs c[i] = a[i].
func (s *Arrays) Copy() {
	copy(s.C, s.A)
}

// Scale performs b[i] = scalar·c[i].
func (s *Arrays) Scale() {
	for i := range s.B {
		s.B[i] = s.scalar * s.C[i]
	}
}

// Add performs c[i] = a[i] + b[i].
func (s *Arrays) Add() {
	for i := range s.C {
		s.C[i] = s.A[i] + s.B[i]
	}
}

// Triad performs a[i] = b[i] + scalar·c[i].
func (s *Arrays) Triad() {
	for i := range s.A {
		s.A[i] = s.B[i] + s.scalar*s.C[i]
	}
}

// Run executes the four kernels in STREAM order for reps repetitions and
// validates the results.
func (s *Arrays) Run(reps int) error {
	for i := 0; i < reps; i++ {
		s.Copy()
		s.Scale()
		s.Add()
		s.Triad()
	}
	return s.Validate(reps)
}

// BytesMoved reports the total memory traffic of reps repetitions, using
// STREAM's standard accounting (2, 2, 3, 3 words per element).
func (s *Arrays) BytesMoved(reps int) uint64 {
	perRep := uint64(len(s.A)) * 8 * (2 + 2 + 3 + 3)
	return perRep * uint64(reps)
}

// Validate checks the arrays against the analytically propagated values,
// as the reference STREAM implementation does.
func (s *Arrays) Validate(reps int) error {
	a, b, c := 1.0, 2.0, 0.0
	for i := 0; i < reps; i++ {
		c = a
		b = s.scalar * c
		c = a + b
		a = b + s.scalar*c
	}
	const eps = 1e-8
	for i, v := range s.A {
		if math.Abs(v-a) > eps*math.Abs(a) {
			return fmt.Errorf("stream: a[%d] = %g, want %g", i, v, a)
		}
	}
	for i, v := range s.B {
		if math.Abs(v-b) > eps*math.Abs(b) {
			return fmt.Errorf("stream: b[%d] = %g, want %g", i, v, b)
		}
	}
	for i, v := range s.C {
		if math.Abs(v-c) > eps*math.Abs(c) {
			return fmt.Errorf("stream: c[%d] = %g, want %g", i, v, c)
		}
	}
	return nil
}
