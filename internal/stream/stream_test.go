package stream

import "testing"

func TestKernels(t *testing.T) {
	s := New(100)
	s.Copy()
	if s.C[50] != 1 {
		t.Fatalf("copy: c = %v", s.C[50])
	}
	s.Scale()
	if s.B[50] != 3 {
		t.Fatalf("scale: b = %v", s.B[50])
	}
	s.Add()
	if s.C[50] != 4 {
		t.Fatalf("add: c = %v", s.C[50])
	}
	s.Triad()
	if s.A[50] != 15 {
		t.Fatalf("triad: a = %v", s.A[50])
	}
}

func TestRunValidates(t *testing.T) {
	s := New(1000)
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := New(1000)
	s.Copy()
	s.Scale()
	s.Add()
	s.Triad()
	s.A[123] += 1
	if err := s.Validate(1); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestBytesMoved(t *testing.T) {
	s := New(1000)
	if got := s.BytesMoved(2); got != 1000*8*10*2 {
		t.Fatalf("bytes = %d", got)
	}
}
