package rbtree

import (
	"testing"
	"testing/quick"

	"xemem/internal/sim"
)

func TestInsertLookup(t *testing.T) {
	m := New()
	if _, err := m.Insert(100, 50, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(200, 10, 2000); err != nil {
		t.Fatal(err)
	}
	v, runStart, runCount, _, ok := m.Lookup(120)
	if !ok || v != 1020 || runStart != 100 || runCount != 50 {
		t.Fatalf("lookup = %d run=[%d,+%d] ok=%v", v, runStart, runCount, ok)
	}
	if _, _, _, _, ok := m.Lookup(99); ok {
		t.Fatal("unmapped frame resolved")
	}
	if _, _, _, _, ok := m.Lookup(150); ok {
		t.Fatal("gap frame resolved")
	}
	if m.Size() != 2 {
		t.Fatalf("size = %d", m.Size())
	}
}

func TestInsertOverlapRejected(t *testing.T) {
	m := New()
	if _, err := m.Insert(100, 50, 0); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ s, n uint64 }{{100, 50}, {99, 2}, {149, 10}, {120, 1}, {50, 51}} {
		if _, err := m.Insert(c.s, c.n, 0); err == nil {
			t.Fatalf("overlap [%d,+%d) accepted", c.s, c.n)
		}
	}
	// Adjacent is fine.
	if _, err := m.Insert(150, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(99, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLengthRejected(t *testing.T) {
	m := New()
	if _, err := m.Insert(1, 0, 0); err == nil {
		t.Fatal("zero-length interval accepted")
	}
}

func TestDelete(t *testing.T) {
	m := New()
	for i := uint64(0); i < 100; i++ {
		if _, err := m.Insert(i*10, 5, i*1000); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Delete(550); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, ok := m.Lookup(552); ok {
		t.Fatal("deleted interval still resolves")
	}
	if m.Size() != 99 {
		t.Fatalf("size = %d", m.Size())
	}
	if _, err := m.Delete(550); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, err := m.Delete(551); err == nil {
		t.Fatal("delete by non-start key accepted")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInOrderSorted(t *testing.T) {
	m := New()
	rng := sim.NewRNG(5)
	for i := 0; i < 500; i++ {
		m.Insert(rng.Uint64n(1<<40)*100, 50, 0)
	}
	var prev uint64
	first := true
	m.InOrder(func(start, _, _ uint64) bool {
		if !first && start <= prev {
			t.Fatalf("out of order: %d after %d", start, prev)
		}
		prev, first = start, false
		return true
	})
}

func TestRotationCountsReported(t *testing.T) {
	m := New()
	var total OpStats
	// Ascending inserts force steady rebalancing.
	for i := uint64(0); i < 1000; i++ {
		st, err := m.Insert(i, 1, i)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(st)
	}
	if total.Rotations == 0 {
		t.Fatal("ascending inserts should rotate")
	}
	if total.Visits < 1000 {
		t.Fatalf("visits = %d, implausibly low", total.Visits)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	m := New()
	n := 1 << 14
	for i := 0; i < n; i++ {
		m.Insert(uint64(i), 1, 0)
	}
	// RB trees guarantee height <= 2*log2(n+1).
	if h := m.Height(); h > 2*15 {
		t.Fatalf("height %d exceeds RB bound for %d nodes", h, n)
	}
}

func TestVisitCostGrowsWithSize(t *testing.T) {
	// The §5.4 effect: insert cost grows as the tree accumulates one node
	// per attached page.
	m := New()
	early, _ := m.Insert(0, 1, 0)
	for i := uint64(1); i < 1<<14; i++ {
		m.Insert(i, 1, 0)
	}
	late, err := m.Insert(1<<20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if late.Visits <= early.Visits {
		t.Fatalf("late insert visits %d <= early %d", late.Visits, early.Visits)
	}
}

// Property: any sequence of inserts and deletes maintains every red-black
// invariant and exact membership.
func TestRBInvariantsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(ops []uint16) bool {
		m := New()
		live := map[uint64]uint64{} // start → val
		for _, op := range ops {
			start := uint64(op%997) * 3 // spacing avoids accidental overlap
			if op%2 == 0 {
				if _, taken := live[start]; taken {
					continue
				}
				if _, err := m.Insert(start, 2, start*7); err != nil {
					return false
				}
				live[start] = start * 7
			} else {
				_, err := m.Delete(start)
				_, existed := live[start]
				if existed != (err == nil) {
					return false
				}
				delete(live, start)
			}
		}
		if m.Size() != len(live) {
			return false
		}
		if m.Validate() != nil {
			return false
		}
		for s, v := range live {
			got, _, _, _, ok := m.Lookup(s + 1)
			if !ok || got != v+1 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: lookups translate with correct offset anywhere in an interval.
func TestLookupOffsetProperty(t *testing.T) {
	err := quick.Check(func(startRaw, countRaw uint32, probe uint32) bool {
		m := New()
		start := uint64(startRaw)
		count := uint64(countRaw%10000) + 1
		val := uint64(1 << 40)
		if _, err := m.Insert(start, count, val); err != nil {
			return false
		}
		off := uint64(probe) % count
		got, _, _, _, ok := m.Lookup(start + off)
		return ok && got == val+off
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
