// Package rbtree implements the red-black interval tree Palacios uses as
// its guest memory map (§4.4 of the paper).
//
// Each node maps a run of physically contiguous guest frames
// [start, start+count) to a run of host frames [val, val+count). Palacios
// normally manages a handful of large contiguous blocks, so the tree stays
// tiny; but host frames arriving through XEMEM attachments carry no
// contiguity guarantee and the production implementation inserted one
// entry per page — which is why §5.4 measures 80 % of guest-attachment
// time going to rb-tree updates. Every operation reports exactly how many
// node visits and rotations it performed so the simulation can charge
// virtual time for the real work done.
package rbtree

import (
	"errors"
	"fmt"
)

// OpStats reports the work one tree operation performed.
type OpStats struct {
	Visits    int // nodes touched during descent and fixup
	Rotations int // rotations performed during rebalancing
}

// Add accumulates other into s.
func (s *OpStats) Add(other OpStats) {
	s.Visits += other.Visits
	s.Rotations += other.Rotations
}

type color bool

const (
	red   color = true
	black color = false
)

type node struct {
	start, count, val uint64
	c                 color
	l, r, p           *node
}

func (n *node) end() uint64 { return n.start + n.count }

// Map is a red-black interval map. The zero value is not usable; call New.
type Map struct {
	nilNode *node // shared sentinel leaf
	root    *node
	size    int
}

// New returns an empty map.
func New() *Map {
	sentinel := &node{c: black}
	return &Map{nilNode: sentinel, root: sentinel}
}

// Size reports the number of intervals stored.
func (m *Map) Size() int { return m.size }

// ErrOverlap is returned when an insert would overlap an existing interval.
var ErrOverlap = errors.New("rbtree: interval overlaps existing entry")

// Insert adds the mapping [start, start+count) → [val, val+count).
func (m *Map) Insert(start, count, val uint64) (OpStats, error) {
	var st OpStats
	if count == 0 {
		return st, errors.New("rbtree: zero-length interval")
	}
	z := &node{start: start, count: count, val: val, c: red, l: m.nilNode, r: m.nilNode}
	y := m.nilNode
	x := m.root
	for x != m.nilNode {
		st.Visits++
		y = x
		if start < x.end() && x.start < start+count {
			return st, fmt.Errorf("%w: [%#x,+%d) vs [%#x,+%d)", ErrOverlap, start, count, x.start, x.count)
		}
		if start < x.start {
			x = x.l
		} else {
			x = x.r
		}
	}
	z.p = y
	switch {
	case y == m.nilNode:
		m.root = z
	case start < y.start:
		y.l = z
	default:
		y.r = z
	}
	m.size++
	m.insertFixup(z, &st)
	return st, nil
}

func (m *Map) leftRotate(x *node, st *OpStats) {
	st.Rotations++
	y := x.r
	x.r = y.l
	if y.l != m.nilNode {
		y.l.p = x
	}
	y.p = x.p
	switch {
	case x.p == m.nilNode:
		m.root = y
	case x == x.p.l:
		x.p.l = y
	default:
		x.p.r = y
	}
	y.l = x
	x.p = y
}

func (m *Map) rightRotate(x *node, st *OpStats) {
	st.Rotations++
	y := x.l
	x.l = y.r
	if y.r != m.nilNode {
		y.r.p = x
	}
	y.p = x.p
	switch {
	case x.p == m.nilNode:
		m.root = y
	case x == x.p.r:
		x.p.r = y
	default:
		x.p.l = y
	}
	y.r = x
	x.p = y
}

func (m *Map) insertFixup(z *node, st *OpStats) {
	for z.p.c == red {
		st.Visits++
		if z.p == z.p.p.l {
			y := z.p.p.r
			if y.c == red {
				z.p.c = black
				y.c = black
				z.p.p.c = red
				z = z.p.p
			} else {
				if z == z.p.r {
					z = z.p
					m.leftRotate(z, st)
				}
				z.p.c = black
				z.p.p.c = red
				m.rightRotate(z.p.p, st)
			}
		} else {
			y := z.p.p.l
			if y.c == red {
				z.p.c = black
				y.c = black
				z.p.p.c = red
				z = z.p.p
			} else {
				if z == z.p.l {
					z = z.p
					m.rightRotate(z, st)
				}
				z.p.c = black
				z.p.p.c = red
				m.leftRotate(z.p.p, st)
			}
		}
	}
	m.root.c = black
}

// Lookup translates key (a guest frame) through the interval containing
// it. It reports the mapped value for that exact frame, the interval's
// start and count (so callers can batch-translate contiguous runs), and
// whether the frame is mapped.
func (m *Map) Lookup(key uint64) (val, runStart, runCount uint64, st OpStats, ok bool) {
	x := m.root
	for x != m.nilNode {
		st.Visits++
		switch {
		case key < x.start:
			x = x.l
		case key >= x.end():
			x = x.r
		default:
			return x.val + (key - x.start), x.start, x.count, st, true
		}
	}
	return 0, 0, 0, st, false
}

// Delete removes the interval whose start is exactly start.
func (m *Map) Delete(start uint64) (OpStats, error) {
	var st OpStats
	z := m.root
	for z != m.nilNode && z.start != start {
		st.Visits++
		if start < z.start {
			z = z.l
		} else {
			z = z.r
		}
	}
	if z == m.nilNode {
		return st, fmt.Errorf("rbtree: no interval starting at %#x", start)
	}
	m.size--

	y := z
	yOrig := y.c
	var x *node
	switch {
	case z.l == m.nilNode:
		x = z.r
		m.transplant(z, z.r)
	case z.r == m.nilNode:
		x = z.l
		m.transplant(z, z.l)
	default:
		y = m.minimum(z.r, &st)
		yOrig = y.c
		x = y.r
		if y.p == z {
			x.p = y
		} else {
			m.transplant(y, y.r)
			y.r = z.r
			y.r.p = y
		}
		m.transplant(z, y)
		y.l = z.l
		y.l.p = y
		y.c = z.c
	}
	if yOrig == black {
		m.deleteFixup(x, &st)
	}
	return st, nil
}

func (m *Map) transplant(u, v *node) {
	switch {
	case u.p == m.nilNode:
		m.root = v
	case u == u.p.l:
		u.p.l = v
	default:
		u.p.r = v
	}
	v.p = u.p
}

func (m *Map) minimum(x *node, st *OpStats) *node {
	for x.l != m.nilNode {
		st.Visits++
		x = x.l
	}
	return x
}

func (m *Map) deleteFixup(x *node, st *OpStats) {
	for x != m.root && x.c == black {
		st.Visits++
		if x == x.p.l {
			w := x.p.r
			if w.c == red {
				w.c = black
				x.p.c = red
				m.leftRotate(x.p, st)
				w = x.p.r
			}
			if w.l.c == black && w.r.c == black {
				w.c = red
				x = x.p
			} else {
				if w.r.c == black {
					w.l.c = black
					w.c = red
					m.rightRotate(w, st)
					w = x.p.r
				}
				w.c = x.p.c
				x.p.c = black
				w.r.c = black
				m.leftRotate(x.p, st)
				x = m.root
			}
		} else {
			w := x.p.l
			if w.c == red {
				w.c = black
				x.p.c = red
				m.rightRotate(x.p, st)
				w = x.p.l
			}
			if w.r.c == black && w.l.c == black {
				w.c = red
				x = x.p
			} else {
				if w.l.c == black {
					w.r.c = black
					w.c = red
					m.leftRotate(w, st)
					w = x.p.l
				}
				w.c = x.p.c
				x.p.c = black
				w.l.c = black
				m.rightRotate(x.p, st)
				x = m.root
			}
		}
	}
	x.c = black
}

// InOrder visits intervals in ascending start order until fn returns false.
func (m *Map) InOrder(fn func(start, count, val uint64) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == m.nilNode {
			return true
		}
		if !walk(n.l) {
			return false
		}
		if !fn(n.start, n.count, n.val) {
			return false
		}
		return walk(n.r)
	}
	walk(m.root)
}

// Validate checks every red-black and interval invariant: BST order,
// disjoint intervals, black root, no red node with a red child, and equal
// black height on every root-to-leaf path. It returns the first violation.
func (m *Map) Validate() error {
	if m.root.c != black {
		return errors.New("rbtree: root is red")
	}
	var prevEnd uint64
	var havePrev bool
	ordered := true
	m.InOrder(func(start, count, _ uint64) bool {
		if havePrev && start < prevEnd {
			ordered = false
			return false
		}
		prevEnd = start + count
		havePrev = true
		return true
	})
	if !ordered {
		return errors.New("rbtree: intervals out of order or overlapping")
	}
	_, err := m.blackHeight(m.root)
	return err
}

func (m *Map) blackHeight(n *node) (int, error) {
	if n == m.nilNode {
		return 1, nil
	}
	if n.c == red && (n.l.c == red || n.r.c == red) {
		return 0, fmt.Errorf("rbtree: red node %#x has red child", n.start)
	}
	lh, err := m.blackHeight(n.l)
	if err != nil {
		return 0, err
	}
	rh, err := m.blackHeight(n.r)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black height mismatch at %#x (%d vs %d)", n.start, lh, rh)
	}
	if n.c == black {
		lh++
	}
	return lh, nil
}

// Height reports the tree's actual height (diagnostics; O(n)).
func (m *Map) Height() int {
	var h func(n *node) int
	h = func(n *node) int {
		if n == m.nilNode {
			return 0
		}
		l, r := h(n.l), h(n.r)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(m.root)
}
