package rbtree

import (
	"encoding/binary"
	"math/bits"
	"sort"
	"testing"
)

// fuzz op stream: records of 10 bytes — op selector, 8-byte key,
// count selector. Keys are masked to 40 bits and counts kept small so
// start+count can never wrap uint64 (wrapping is API misuse, not a
// tree invariant).
const (
	fuzzKeyMask = 1<<40 - 1
	fuzzRec     = 10
)

type modelEntry struct{ count, val uint64 }

func modelOverlaps(model map[uint64]modelEntry, start, count uint64) bool {
	for s, e := range model {
		if start < s+e.count && s < start+count {
			return true
		}
	}
	return false
}

func modelLookup(model map[uint64]modelEntry, key uint64) (val, runStart, runCount uint64, ok bool) {
	for s, e := range model {
		if key >= s && key < s+e.count {
			return e.val + (key - s), s, e.count, true
		}
	}
	return 0, 0, 0, false
}

// FuzzOps drives the interval map with an arbitrary insert/delete/lookup
// stream, mirrors it in a flat map, and checks after every operation
// that the red-black and interval invariants hold and that the tree
// agrees with the model — including the balanced-height bound the
// simulator's cost model depends on (§5.4 charges per visit).
func FuzzOps(f *testing.F) {
	f.Add([]byte("\x00AAAAAAAA\x03\x00BBBBBBBB\x01\x02AAAAAAAA\x00\x01AAAAAAAA\x00"))
	f.Add([]byte{})
	seq := make([]byte, 0, 64*fuzzRec)
	for i := byte(0); i < 64; i++ {
		rec := [fuzzRec]byte{i % 3, i, i ^ 0x55, 0, 0, 0, 0, 0, 0, i % 7}
		seq = append(seq, rec[:]...)
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		m := New()
		model := make(map[uint64]modelEntry)
		for len(data) >= fuzzRec {
			op := data[0] % 3
			key := binary.LittleEndian.Uint64(data[1:9]) & fuzzKeyMask
			count := uint64(data[9]%8) + 1
			data = data[fuzzRec:]

			switch op {
			case 0: // insert
				val := key ^ 0xdeadbeef
				_, err := m.Insert(key, count, val)
				if wantErr := modelOverlaps(model, key, count); (err != nil) != wantErr {
					t.Fatalf("Insert(%#x,+%d) err=%v, model overlap=%v", key, count, err, wantErr)
				}
				if err == nil {
					model[key] = modelEntry{count: count, val: val}
				}
			case 1: // delete
				_, err := m.Delete(key)
				if _, ok := model[key]; (err == nil) != ok {
					t.Fatalf("Delete(%#x) err=%v, model has=%v", key, err, ok)
				}
				delete(model, key)
			case 2: // lookup
				val, runStart, runCount, _, ok := m.Lookup(key)
				wval, wstart, wcount, wok := modelLookup(model, key)
				if ok != wok || val != wval || runStart != wstart || runCount != wcount {
					t.Fatalf("Lookup(%#x) = (%#x,%#x,%d,%v), model (%#x,%#x,%d,%v)",
						key, val, runStart, runCount, ok, wval, wstart, wcount, wok)
				}
			}

			if err := m.Validate(); err != nil {
				t.Fatalf("invariant violated after op %d on %#x: %v", op, key, err)
			}
			if m.Size() != len(model) {
				t.Fatalf("size %d, model %d", m.Size(), len(model))
			}
			// Red-black balance: height ≤ 2·log2(n+1).
			if n := m.Size(); n > 0 {
				if maxH := 2 * bits.Len(uint(n+1)); m.Height() > maxH {
					t.Fatalf("height %d exceeds bound %d for %d nodes", m.Height(), maxH, n)
				}
			}
		}

		// Final sweep: in-order traversal enumerates exactly the model,
		// in ascending start order.
		starts := make([]uint64, 0, len(model))
		for s := range model {
			starts = append(starts, s)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		i := 0
		m.InOrder(func(start, count, val uint64) bool {
			if i >= len(starts) {
				t.Fatalf("InOrder yielded extra interval %#x", start)
			}
			want := model[starts[i]]
			if start != starts[i] || count != want.count || val != want.val {
				t.Fatalf("InOrder[%d] = (%#x,%d,%#x), model (%#x,%d,%#x)",
					i, start, count, val, starts[i], want.count, want.val)
			}
			i++
			return true
		})
		if i != len(starts) {
			t.Fatalf("InOrder yielded %d intervals, model has %d", i, len(starts))
		}
	})
}
