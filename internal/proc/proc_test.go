package proc

import (
	"bytes"
	"testing"

	"xemem/internal/extent"
	"xemem/internal/mem"
	"xemem/internal/pagetable"
)

func newAS(t *testing.T) (*AddressSpace, *mem.PhysMem, *mem.Zone) {
	t.Helper()
	pm := mem.NewPhysMem("node", 64<<20)
	return NewAddressSpace(HostDomain{Mem: pm}, 0x7f00_0000_0000), pm, pm.Zone(0)
}

func TestEagerRegionReadWrite(t *testing.T) {
	as, _, z := newAS(t)
	backing, err := z.AllocScattered(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion("heap", 0, backing, pagetable.Read|pagetable.Write|pagetable.User, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Populated != 16 {
		t.Fatalf("populated = %d", r.Populated)
	}
	msg := []byte("composed workloads share memory")
	faults, err := as.Write(r.Base+100, msg)
	if err != nil {
		t.Fatal(err)
	}
	if faults != 0 {
		t.Fatalf("eager region faulted %d times", faults)
	}
	got := make([]byte, len(msg))
	if _, err := as.Read(r.Base+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestLazyRegionFaults(t *testing.T) {
	as, _, z := newAS(t)
	backing, _ := z.AllocScattered(8, 2)
	r, err := as.AddRegion("attach", 0, backing, pagetable.Read|pagetable.Write, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Populated != 0 {
		t.Fatalf("lazy region pre-populated: %d", r.Populated)
	}
	// Write spanning pages 0..3 (5 bytes on page 0, all of 1 and 2, a few
	// bytes of page 3): exactly 4 faults.
	buf := make([]byte, 2*extent.PageSize+10)
	faults, err := as.Write(r.Base+extent.PageSize-5, buf)
	if err != nil {
		t.Fatal(err)
	}
	if faults != 4 {
		t.Fatalf("faults = %d, want 4", faults)
	}
	// Re-access: no more faults.
	faults, err = as.Read(r.Base+extent.PageSize, buf[:10])
	if err != nil {
		t.Fatal(err)
	}
	if faults != 0 {
		t.Fatalf("second access faulted %d", faults)
	}
	if r.Populated != 4 {
		t.Fatalf("populated = %d", r.Populated)
	}
}

func TestAccessOutsideRegionFails(t *testing.T) {
	as, _, z := newAS(t)
	backing, _ := z.AllocScattered(2, 2)
	r, _ := as.AddRegion("r", 0, backing, pagetable.Read, true)
	if _, err := as.Read(r.End()+5, make([]byte, 1)); err == nil {
		t.Fatal("out-of-region read should fault fatally")
	}
}

func TestRegionOverlapRejected(t *testing.T) {
	as, _, z := newAS(t)
	b1, _ := z.AllocScattered(4, 4)
	b2, _ := z.AllocScattered(4, 4)
	r, err := as.AddRegion("a", 0x10000, b1, pagetable.Read, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.AddRegion("b", r.Base+extent.PageSize, b2, pagetable.Read, false); err == nil {
		t.Fatal("overlap accepted")
	}
	// Adjacent is fine.
	if _, err := as.AddRegion("c", r.End(), b2, pagetable.Read, false); err != nil {
		t.Fatalf("adjacent region rejected: %v", err)
	}
}

func TestReserveVANoOverlap(t *testing.T) {
	as, _, z := newAS(t)
	var regions []*Region
	for i := 0; i < 10; i++ {
		b, _ := z.AllocScattered(100, 16)
		r, err := as.AddRegion("r", 0, b, pagetable.Read|pagetable.Write, false)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].Base < regions[j].End() && regions[j].Base < regions[i].End() {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestWalkExtentsServePath(t *testing.T) {
	as, _, z := newAS(t)
	backing, _ := z.AllocScattered(32, 8)
	r, _ := as.AddRegion("export", 0, backing, pagetable.Read|pagetable.Write, true)

	// Serve must populate lazy pages (get_user_pages semantics) and the
	// walked list must match the backing list exactly.
	got, faults, err := as.WalkExtents(r.Base, 32)
	if err != nil {
		t.Fatal(err)
	}
	if faults != 32 {
		t.Fatalf("faults = %d, want 32", faults)
	}
	if !got.Equal(backing) {
		t.Fatalf("walked = %v, want %v", got, backing)
	}
	// Sub-range.
	sub, _, err := as.WalkExtents(r.Base+4*extent.PageSize, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := backing.Slice(4, 8)
	if !sub.Equal(want) {
		t.Fatalf("sub walk = %v, want %v", sub, want)
	}
}

func TestRemoveRegion(t *testing.T) {
	as, _, z := newAS(t)
	backing, _ := z.AllocScattered(8, 4)
	r, _ := as.AddRegion("tmp", 0, backing, pagetable.Read, true)
	// Touch half the pages.
	if _, err := as.PopulateRange(r.Base, 4); err != nil {
		t.Fatal(err)
	}
	if err := as.RemoveRegion(r); err != nil {
		t.Fatal(err)
	}
	if as.FindRegion(r.Base) != nil {
		t.Fatal("region still findable")
	}
	if _, err := as.Read(r.Base, make([]byte, 1)); err == nil {
		t.Fatal("read after remove should fail")
	}
	if err := as.RemoveRegion(r); err == nil {
		t.Fatal("double remove accepted")
	}
	if as.PageTable().Mapped() != 0 {
		t.Fatalf("PTEs leaked: %d", as.PageTable().Mapped())
	}
}

func TestCrossProcessSharing(t *testing.T) {
	// Two address spaces over the same host memory with regions naming
	// the same frames observe each other's writes — the essence of an
	// XEMEM attachment.
	pm := mem.NewPhysMem("node", 64<<20)
	z := pm.Zone(0)
	asA := NewAddressSpace(HostDomain{Mem: pm}, 0x7f00_0000_0000)
	asB := NewAddressSpace(HostDomain{Mem: pm}, 0x7f00_0000_0000)

	backing, _ := z.AllocContig(16)
	list := extent.FromExtents(backing)
	rA, err := asA.AddRegion("export", 0, list, pagetable.Read|pagetable.Write, false)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := list.Slice(2, 4)
	rB, err := asB.AddRegion("attach", 0, sub, pagetable.Read|pagetable.Write, false)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := asA.Write(rA.Base+2*extent.PageSize, []byte("in situ data")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	if _, err := asB.Read(rB.Base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "in situ data" {
		t.Fatalf("attacher sees %q", got)
	}

	// And the reverse direction.
	if _, err := asB.Write(rB.Base+10, []byte("!")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := asA.Read(rA.Base+2*extent.PageSize+10, one); err != nil {
		t.Fatal(err)
	}
	if one[0] != '!' {
		t.Fatalf("exporter sees %q", one)
	}
}

func TestPermissionFaults(t *testing.T) {
	as, _, z := newAS(t)
	roBacking, _ := z.AllocScattered(4, 4)
	ro, err := as.AddRegion("ro", 0, roBacking, pagetable.Read|pagetable.User, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reads succeed; writes take a protection fault.
	if _, err := as.Read(ro.Base, make([]byte, 8)); err != nil {
		t.Fatalf("read of read-only region failed: %v", err)
	}
	if _, err := as.Write(ro.Base, []byte("x")); err == nil {
		t.Fatal("write through read-only mapping succeeded")
	}
	// A write-only region rejects reads.
	woBacking, _ := z.AllocScattered(4, 4)
	wo, err := as.AddRegion("wo", 0, woBacking, pagetable.Write|pagetable.User, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Write(wo.Base, []byte("x")); err != nil {
		t.Fatalf("write to write-only region failed: %v", err)
	}
	if _, err := as.Read(wo.Base, make([]byte, 1)); err == nil {
		t.Fatal("read through write-only mapping succeeded")
	}
}

func TestFindRegion(t *testing.T) {
	as, _, z := newAS(t)
	b1, _ := z.AllocScattered(4, 4)
	b2, _ := z.AllocScattered(4, 4)
	r1, _ := as.AddRegion("low", 0x10000, b1, pagetable.Read, false)
	r2, _ := as.AddRegion("high", 0x40000, b2, pagetable.Read, false)
	if as.FindRegion(r1.Base+5) != r1 {
		t.Fatal("FindRegion missed low")
	}
	if as.FindRegion(r2.Base) != r2 {
		t.Fatal("FindRegion missed high")
	}
	if as.FindRegion(r1.End()) != nil {
		t.Fatal("gap address matched a region")
	}
}
