package proc

import (
	"strings"
	"testing"

	"xemem/internal/extent"
	"xemem/internal/mem"
	"xemem/internal/pagetable"
)

// patchworkAS builds an address space with a lazy scattered-backing region
// and a deterministic patchwork of pre-populated pages, so the populate
// paths have to handle mapped runs, intra-node holes, and absent subtrees.
// Both calls with the same toggle state produce identical layouts.
func patchworkAS(t *testing.T) (*AddressSpace, *Region) {
	t.Helper()
	pm := mem.NewPhysMem("node", 64<<20)
	as := NewAddressSpace(HostDomain{Mem: pm}, 0x7f00_0000_0000)
	backing, err := pm.Zone(0).AllocScattered(1200, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion("attach", 0, backing, pagetable.Read|pagetable.Write, true)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-touch a scattered subset: single pages, short runs, a run
	// crossing the 512-page PT-node boundary.
	for _, pre := range []struct{ page, count uint64 }{
		{3, 1}, {10, 5}, {100, 1}, {510, 4}, {900, 30},
	} {
		if _, err := as.PopulateRange(r.Base+pagetable.VA(pre.page*extent.PageSize), pre.count); err != nil {
			t.Fatal(err)
		}
	}
	return as, r
}

// ptState snapshots everything observable about the page-table mapping of
// a region: per-page translation plus global counters.
func ptState(t *testing.T, as *AddressSpace, r *Region, pages uint64) string {
	t.Helper()
	var b strings.Builder
	for i := uint64(0); i < pages; i++ {
		f, fl, leaf, ok := as.PageTable().Walk(r.Base + pagetable.VA(i*extent.PageSize))
		if ok {
			b.WriteString(string(rune('A' + int(leaf>>21)))) // leaf size class
			b.WriteString(fl.String())
			b.WriteByte(':')
			for d := 0; d < 8; d++ {
				b.WriteByte(byte('0' + (uint64(f)>>(4*d))&0xf))
			}
		} else {
			b.WriteByte('.')
		}
		b.WriteByte(' ')
	}
	return b.String()
}

// TestPopulateRangeBatchedMatchesLegacy: the batched populate path (runs
// via MappedRun + MapRun) must produce exactly the same faults, Populated
// count, and page-table state as the original per-page Walk+Map loop.
func TestPopulateRangeBatchedMatchesLegacy(t *testing.T) {
	type outcome struct {
		faults    int
		populated uint64
		mapped    uint64
		tables    int
		state     string
	}
	run := func(legacy bool) outcome {
		SetLegacyPerPageOps(legacy)
		defer SetLegacyPerPageOps(false)
		as, r := patchworkAS(t)
		faults, err := as.PopulateRange(r.Base, 1200)
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		return outcome{faults, r.Populated, as.PageTable().Mapped(), as.PageTable().Tables(),
			ptState(t, as, r, 1200)}
	}
	batched, legacy := run(false), run(true)
	if batched.faults != legacy.faults {
		t.Fatalf("faults: batched %d, legacy %d", batched.faults, legacy.faults)
	}
	if batched.populated != legacy.populated {
		t.Fatalf("populated: batched %d, legacy %d", batched.populated, legacy.populated)
	}
	if batched.mapped != legacy.mapped || batched.tables != legacy.tables {
		t.Fatalf("pt: batched (%d,%d), legacy (%d,%d)",
			batched.mapped, batched.tables, legacy.mapped, legacy.tables)
	}
	if batched.state != legacy.state {
		t.Fatal("page-table translations differ between batched and legacy populate")
	}
	if batched.faults != 1200-(1+5+1+4+30) {
		t.Fatalf("faults = %d, want %d", batched.faults, 1200-41)
	}
}

// TestPopulateRangeOutsideRegionError: both populate paths report the same
// error for a fault landing outside any region.
func TestPopulateRangeOutsideRegionError(t *testing.T) {
	var msgs [2]string
	for i, legacy := range []bool{false, true} {
		SetLegacyPerPageOps(legacy)
		as, r := patchworkAS(t)
		_, err := as.PopulateRange(r.Base+pagetable.VA(1195*extent.PageSize), 100)
		SetLegacyPerPageOps(false)
		if err == nil {
			t.Fatalf("legacy=%v: populate past region end succeeded", legacy)
		}
		msgs[i] = err.Error()
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error mismatch:\n  batched: %s\n  legacy:  %s", msgs[0], msgs[1])
	}
}

// TestAccessBatchedFaultCounts: the batched access path must report the
// same demand faults as the original per-page loop did (TestLazyRegionFaults
// pins the basic case; this adds a patchwork region and large spans).
func TestAccessBatchedFaultCounts(t *testing.T) {
	as, r := patchworkAS(t)
	// Write spanning pages 8..16: pages 10-14 are pre-populated, so 4 faults
	// (8, 9, 15, 16).
	buf := make([]byte, 8*extent.PageSize+10)
	faults, err := as.Write(r.Base+pagetable.VA(8*extent.PageSize)+5, buf)
	if err != nil {
		t.Fatal(err)
	}
	if faults != 4 {
		t.Fatalf("faults = %d, want 4", faults)
	}
	// Re-access is fault-free and round-trips content through scattered
	// frames.
	msg := []byte("cross-enclave shared memory")
	if _, err := as.Write(r.Base+pagetable.VA(9*extent.PageSize)-3, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if faults, err = as.Read(r.Base+pagetable.VA(9*extent.PageSize)-3, got); err != nil || faults != 0 {
		t.Fatalf("read: faults=%d err=%v", faults, err)
	}
	if string(got) != string(msg) {
		t.Fatalf("round trip = %q", got)
	}
}
