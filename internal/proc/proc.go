// Package proc provides the process and address-space abstraction shared
// by every enclave OS in the reproduction (Kitten, Linux, and Linux guests
// under Palacios).
//
// An AddressSpace is a set of named regions backed by frame lists in the
// OS's physical domain, realized through a real 4-level page table.
// Regions can be populated eagerly (Kitten's static mapping policy, §4.3)
// or lazily with demand faults (Linux's page-fault semantics, §6.4 — the
// source of the single-OS recurring-attachment overhead the paper
// observes). Reads and writes translate through the page table and the
// OS's physical domain to the node's host memory, so data written by a
// process in one enclave is genuinely visible to an attached process in
// another.
//
// The package is functional only; OS layers charge simulated time using
// the fault and page counts these methods report.
package proc

import (
	"fmt"
	"sort"

	"xemem/internal/extent"
	"xemem/internal/mem"
	"xemem/internal/pagetable"
	"xemem/internal/sim/snapshot"
)

// Domain translates frame lists from an OS's physical domain to host
// physical frames. Native enclaves use the identity HostDomain; a Palacios
// guest's domain walks the VMM memory map.
type Domain interface {
	// TranslateList converts domain frames to host frames, preserving
	// order and total page count.
	TranslateList(l extent.List) (extent.List, error)
	// Host returns the node's host physical memory.
	Host() *mem.PhysMem
}

// HostDomain is the identity domain of a native enclave.
type HostDomain struct {
	Mem *mem.PhysMem
}

// TranslateList returns l unchanged: native frames are host frames.
func (d HostDomain) TranslateList(l extent.List) (extent.List, error) { return l, nil }

// Host returns the node's physical memory.
func (d HostDomain) Host() *mem.PhysMem { return d.Mem }

// Region is a contiguous range of virtual address space backed by a frame
// list in the owning OS's physical domain.
type Region struct {
	Name    string
	Base    pagetable.VA
	Backing extent.List
	Flags   pagetable.Flags
	// Lazy regions are populated page-by-page on first touch (demand
	// faults); eager regions are fully mapped at creation.
	Lazy bool
	// Populated counts PTEs currently installed for this region.
	Populated uint64
}

// Pages reports the region's size in pages.
func (r *Region) Pages() uint64 { return r.Backing.Pages() }

// End reports the first address past the region.
func (r *Region) End() pagetable.VA {
	return r.Base + pagetable.VA(r.Pages()*extent.PageSize)
}

// Contains reports whether va falls inside the region.
func (r *Region) Contains(va pagetable.VA) bool { return va >= r.Base && va < r.End() }

// AddressSpace is one process's virtual address space.
type AddressSpace struct {
	pt      *pagetable.Table
	dom     Domain
	regions []*Region // sorted by Base
	mmapCur pagetable.VA
	// legacyPerPage is snapshotted from the package default at creation,
	// so concurrently running worlds each see a stable setting — flipping
	// the default mid-sweep cannot tear an address space's behavior.
	legacyPerPage bool
}

// NewAddressSpace creates an empty address space over dom whose automatic
// region placement starts at mmapBase and grows upward.
func NewAddressSpace(dom Domain, mmapBase pagetable.VA) *AddressSpace {
	return &AddressSpace{pt: pagetable.New(), dom: dom, mmapCur: mmapBase, legacyPerPage: legacyPerPage}
}

// Domain reports the address space's physical domain.
func (as *AddressSpace) Domain() Domain { return as.dom }

// PageTable exposes the underlying table (used by SMARTMAP, which shares
// top-level slots between local processes).
func (as *AddressSpace) PageTable() *pagetable.Table { return as.pt }

// Regions returns the regions sorted by base address.
func (as *AddressSpace) Regions() []*Region {
	out := make([]*Region, len(as.regions))
	copy(out, as.regions)
	return out
}

// MmapCur reports the automatic-placement cursor (snapshot capture).
func (as *AddressSpace) MmapCur() pagetable.VA { return as.mmapCur }

// SetMmapCur overwrites the automatic-placement cursor (snapshot overlay
// only: a forked world aligns its cursor with the snapshotted one so
// post-fork ReserveVA calls hand out the same addresses).
func (as *AddressSpace) SetMmapCur(va pagetable.VA) { as.mmapCur = va }

// EncodeSnapshot appends the address space's state to e: the placement
// cursor, then every region in base order (the slice is already sorted)
// with its backing extents, and per region the page-table translations as
// (va, frame-extent) runs. The Table's node structure is not captured —
// leaf translations pin the architectural state; node layout is a
// host-side detail.
func (as *AddressSpace) EncodeSnapshot(e *snapshot.Enc) {
	e.U64(uint64(as.mmapCur))
	e.U64(uint64(len(as.regions)))
	for _, r := range as.regions {
		e.Str(r.Name)
		e.U64(uint64(r.Base))
		e.U64(uint64(r.Flags))
		e.Bool(r.Lazy)
		e.U64(r.Populated)
		exts := r.Backing.Extents()
		e.U64(uint64(len(exts)))
		for _, x := range exts {
			e.U64(uint64(x.First))
			e.U64(x.Count)
		}
		// Mapped runs within the region, in address order.
		va := r.Base
		rem := r.Pages()
		for rem > 0 {
			run, mapped := as.pt.MappedRun(va, rem)
			if mapped {
				l, err := as.pt.ExtentsFor(va, run)
				if err != nil {
					panic("proc: mapped run not walkable: " + err.Error())
				}
				for _, x := range l.Extents() {
					f, flags, _, _ := as.pt.Walk(va)
					e.Bool(true)
					e.U64(uint64(va))
					e.U64(uint64(f))
					e.U64(x.Count)
					e.U64(uint64(flags))
					va += pagetable.VA(x.Count * extent.PageSize)
				}
			} else {
				va += pagetable.VA(run * extent.PageSize)
			}
			rem -= run
		}
		e.Bool(false)
	}
}

// LoadSnapshotOverlay consumes one address-space encoding produced by
// EncodeSnapshot and overlays the warm-fork state: the placement cursor.
// Everything else — regions, backing, translations — is reachable by
// re-running the world's build recipe, so it is verified (names, bases,
// counts) rather than overwritten; a structural mismatch means the
// decoder is reading a different process's state and yields
// snapshot.ErrCorrupt.
func (as *AddressSpace) LoadSnapshotOverlay(d *snapshot.Dec) error {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("proc: "+format+": %w", append(args, snapshot.ErrCorrupt)...)
	}
	mmapCur := pagetable.VA(d.U64())
	nregions := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if nregions != uint64(len(as.regions)) {
		return corrupt("snapshot has %d regions, address space has %d", nregions, len(as.regions))
	}
	for _, r := range as.regions {
		name := d.Str()
		base := pagetable.VA(d.U64())
		d.U64()  // flags
		d.Bool() // lazy
		d.U64()  // populated
		if d.Err() == nil && (name != r.Name || base != r.Base) {
			return corrupt("snapshot region %q@%#x, address space has %q@%#x",
				name, uint64(base), r.Name, uint64(r.Base))
		}
		next := d.U64()
		for i := uint64(0); i < next && d.Err() == nil; i++ {
			d.U64() // extent first
			d.U64() // extent count
		}
		// Mapped runs: Bool-terminated (va, frame, count, flags) records.
		for d.Err() == nil && d.Bool() {
			d.U64()
			d.U64()
			d.U64()
			d.U64()
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	as.mmapCur = mmapCur
	return nil
}

// ReserveVA allocates npages of unused virtual address space from the
// automatic placement area, 2 MB-aligned so large-page mappings remain
// possible.
func (as *AddressSpace) ReserveVA(npages uint64) pagetable.VA {
	const align = 512 * extent.PageSize // 2 MB
	va := (uint64(as.mmapCur) + align - 1) &^ uint64(align-1)
	as.mmapCur = pagetable.VA(va + npages*extent.PageSize)
	return pagetable.VA(va)
}

// AddRegion creates a region at base (or an automatically reserved range
// when base is 0) backed by the given frame list. Eager regions are fully
// mapped immediately; lazy regions install no PTEs until touched or
// populated. Overlapping an existing region is an error.
func (as *AddressSpace) AddRegion(name string, base pagetable.VA, backing extent.List, flags pagetable.Flags, lazy bool) (*Region, error) {
	if backing.Pages() == 0 {
		return nil, fmt.Errorf("proc: empty region %q", name)
	}
	if base == 0 {
		base = as.ReserveVA(backing.Pages())
	}
	if base.Offset() != 0 {
		return nil, fmt.Errorf("proc: unaligned region %q at %#x", name, uint64(base))
	}
	r := &Region{Name: name, Base: base, Backing: backing, Flags: flags, Lazy: lazy}
	i := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].Base >= base })
	if i > 0 && as.regions[i-1].End() > base {
		return nil, fmt.Errorf("proc: region %q overlaps %q", name, as.regions[i-1].Name)
	}
	if i < len(as.regions) && r.End() > as.regions[i].Base {
		return nil, fmt.Errorf("proc: region %q overlaps %q", name, as.regions[i].Name)
	}
	if !lazy {
		if err := as.pt.MapList(base, backing, flags); err != nil {
			return nil, err
		}
		r.Populated = backing.Pages()
	}
	as.regions = append(as.regions, nil)
	copy(as.regions[i+1:], as.regions[i:])
	as.regions[i] = r
	return r, nil
}

// RemoveRegion unmaps whatever PTEs the region has populated and forgets
// the region. The backing frames are not freed — ownership of frames
// belongs to the OS layer.
func (as *AddressSpace) RemoveRegion(r *Region) error {
	for i, have := range as.regions {
		if have != r {
			continue
		}
		if r.Populated == r.Pages() {
			// Fully populated: one ranged unmap preserves large leaves.
			if err := as.pt.Unmap(r.Base, r.Pages()); err != nil {
				return err
			}
		} else if r.Populated > 0 {
			// Sparse (lazy) population: partition the range into mapped and
			// unmapped runs and unmap each mapped run, instead of probing
			// every page.
			va := r.Base
			rem := r.Pages()
			for rem > 0 {
				run, mapped := as.pt.MappedRun(va, rem)
				if mapped {
					if err := as.pt.Unmap(va, run); err != nil {
						return err
					}
				}
				va += pagetable.VA(run * extent.PageSize)
				rem -= run
			}
		}
		as.regions = append(as.regions[:i], as.regions[i+1:]...)
		return nil
	}
	return fmt.Errorf("proc: region %q not in address space", r.Name)
}

// ForgetRegion drops the region record without touching the page table.
// SMARTMAP windows use it: their translations live in a borrowed top-level
// slot that the borrower must not unmap.
func (as *AddressSpace) ForgetRegion(r *Region) error {
	for i, have := range as.regions {
		if have == r {
			as.regions = append(as.regions[:i], as.regions[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("proc: region %q not in address space", r.Name)
}

// FindRegion returns the region containing va, or nil.
func (as *AddressSpace) FindRegion(va pagetable.VA) *Region {
	i := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].End() > va })
	if i < len(as.regions) && as.regions[i].Contains(va) {
		return as.regions[i]
	}
	return nil
}

// legacyPerPage routes PopulateRange through the original page-at-a-time
// loop (see SetLegacyPerPageOps).
var legacyPerPage = false

// SetLegacyPerPageOps selects the original per-page demand-population
// loop instead of the batched run installer. Both produce identical page
// tables (4 KB leaves), fault counts, and errors; the legacy path exists
// as the reference baseline for equivalence tests and the engine
// benchmark's before/after comparison. The setting is a package-wide
// DEFAULT that each AddressSpace snapshots when created: set it before
// building the world whose behavior it should govern. Address spaces
// already created keep the path they were born with.
func SetLegacyPerPageOps(on bool) { legacyPerPage = on }

// PopulateRange installs PTEs for pages [va, va+npages) that are not yet
// mapped, pulling frames from their regions' backing lists. It reports how
// many demand faults (page installs) occurred — the OS layer charges fault
// cost per install. This is both the demand-fault path and the
// get_user_pages population path (§4.3).
func (as *AddressSpace) PopulateRange(va pagetable.VA, npages uint64) (faults int, err error) {
	if va.Offset() != 0 {
		return 0, fmt.Errorf("proc: unaligned populate at %#x", uint64(va))
	}
	if as.legacyPerPage {
		return as.populateRangeLegacy(va, npages)
	}
	for npages > 0 {
		run, mapped := as.pt.MappedRun(va, npages)
		if mapped {
			va += pagetable.VA(run * extent.PageSize)
			npages -= run
			continue
		}
		r := as.FindRegion(va)
		if r == nil {
			return faults, fmt.Errorf("proc: fault at %#x outside any region", uint64(va))
		}
		// The unmapped run may extend past the region's end (into the next
		// region, or into unmapped space that errors on the next lap).
		if rem := (r.End() - va).Page(); run > rem {
			run = rem
		}
		idx := (va - r.Base).Page()
		part, err := r.Backing.Slice(idx, run)
		if err != nil {
			return faults, err
		}
		// Install each physically contiguous run of backing frames with one
		// ranged map: identical PTEs (4 KB leaves) and fault count to the
		// per-page demand loop, O(1)-ish host work per extent.
		for _, e := range part.Extents() {
			if err := as.pt.MapRun(va, e.First, e.Count, r.Flags); err != nil {
				return faults, err
			}
			r.Populated += e.Count
			faults += int(e.Count)
			va += pagetable.VA(e.Count * extent.PageSize)
			npages -= e.Count
		}
	}
	return faults, nil
}

// populateRangeLegacy is the pre-batching reference implementation: probe
// and install one page per iteration.
func (as *AddressSpace) populateRangeLegacy(va pagetable.VA, npages uint64) (faults int, err error) {
	for p := uint64(0); p < npages; p++ {
		cur := va + pagetable.VA(p*extent.PageSize)
		if _, _, _, ok := as.pt.Walk(cur); ok {
			continue
		}
		r := as.FindRegion(cur)
		if r == nil {
			return faults, fmt.Errorf("proc: fault at %#x outside any region", uint64(cur))
		}
		idx := (cur - r.Base).Page()
		f, err := r.Backing.Page(idx)
		if err != nil {
			return faults, err
		}
		if err := as.pt.Map(cur, f, r.Flags); err != nil {
			return faults, err
		}
		r.Populated++
		faults++
	}
	return faults, nil
}

// PopulateAll installs every missing PTE of a region (a first-touch burst
// over the whole range). A fully unpopulated region is mapped in one
// ranged operation, which preserves large-page leaves. It reports how
// many pages were installed.
func (as *AddressSpace) PopulateAll(r *Region) (uint64, error) {
	if r.Populated == 0 {
		if err := as.pt.MapList(r.Base, r.Backing, r.Flags); err != nil {
			return 0, err
		}
		r.Populated = r.Pages()
		return r.Pages(), nil
	}
	faults, err := as.PopulateRange(r.Base, r.Pages())
	return uint64(faults), err
}

// WalkExtents produces the frame list (in the OS's domain) backing
// [va, va+npages), populating lazy pages first — the serve side of the
// XEMEM protocol. It reports demand faults taken during population.
func (as *AddressSpace) WalkExtents(va pagetable.VA, npages uint64) (extent.List, int, error) {
	faults, err := as.PopulateRange(va, npages)
	if err != nil {
		return extent.List{}, faults, err
	}
	l, err := as.pt.ExtentsFor(va, npages)
	return l, faults, err
}

// Read copies len(p) bytes from va into p, demand-populating lazy pages.
// It reports the number of faults taken.
func (as *AddressSpace) Read(va pagetable.VA, p []byte) (int, error) {
	return as.access(va, p, false)
}

// Write copies p into the address space at va, demand-populating lazy
// pages. It reports the number of faults taken.
func (as *AddressSpace) Write(va pagetable.VA, p []byte) (int, error) {
	return as.access(va, p, true)
}

func (as *AddressSpace) access(va pagetable.VA, p []byte, write bool) (int, error) {
	faults := 0
	host := as.dom.Host()
	for len(p) > 0 {
		pageVA := va - pagetable.VA(va.Offset())
		// Pages the remaining access touches, counted from va's page.
		touched := (va.Offset() + uint64(len(p)) + extent.PageSize - 1) / extent.PageSize
		run, mapped := as.pt.MappedRun(pageVA, touched)
		if !mapped {
			// Demand-populate the unmapped run (clamped to the pages this
			// access actually touches) and re-resolve.
			n, err := as.PopulateRange(pageVA, run)
			faults += n
			if err != nil {
				return faults, err
			}
			continue
		}
		f, flags, _, _ := as.pt.Walk(va)
		// Enforce the mapping's permissions, as the MMU would: a write
		// through a read-only XEMEM attachment is a protection fault. Flags
		// are uniform within a leaf (Protect splits leaves at boundaries),
		// so one check covers the whole run.
		if write && flags&pagetable.Write == 0 {
			return faults, fmt.Errorf("proc: write protection fault at %#x (%v)", uint64(va), flags)
		}
		if !write && flags&pagetable.Read == 0 {
			return faults, fmt.Errorf("proc: read protection fault at %#x (%v)", uint64(va), flags)
		}
		// Copy through the whole leaf run at once: frames inside a leaf are
		// physically contiguous, so one extent covers it.
		n := run*extent.PageSize - va.Offset()
		if n > uint64(len(p)) {
			n = uint64(len(p))
		}
		pages := (va.Offset() + n + extent.PageSize - 1) / extent.PageSize
		hostList, err := as.dom.TranslateList(extent.FromExtents(extent.Extent{First: f, Count: pages}))
		if err != nil {
			return faults, err
		}
		if write {
			if err := host.WriteAt(hostList, va.Offset(), p[:n]); err != nil {
				return faults, err
			}
		} else {
			if err := host.ReadAt(hostList, va.Offset(), p[:n]); err != nil {
				return faults, err
			}
		}
		p = p[n:]
		va += pagetable.VA(n)
	}
	return faults, nil
}

// Process is a schedulable program instance inside one enclave OS.
type Process struct {
	PID  int
	Name string
	AS   *AddressSpace
}
