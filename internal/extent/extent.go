// Package extent represents page-frame lists as runs of contiguous frames.
//
// Page-frame lists are the payload of the XEMEM attachment protocol
// (Fig. 3 of the paper): the exporting enclave walks its page tables and
// produces the list of physical frames backing a segment, and the
// attaching enclave maps that list into a process address space. Encoding
// the list as (first, count) extents instead of one entry per page is what
// real implementations ship over kernel channels, and it is what makes the
// per-page cost accounting of the simulation affordable: a physically
// contiguous 1 GB co-kernel region is a single extent even though it spans
// 262,144 frames.
package extent

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// PageSize is the base page granularity of every frame list (4 KB).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PFN is a page frame number in some physical address domain — host
// physical for native enclaves, guest physical inside a Palacios VM.
type PFN uint64

// Extent is a run of Count physically contiguous frames starting at First.
type Extent struct {
	First PFN
	Count uint64
}

// End reports the first frame past the extent.
func (e Extent) End() PFN { return e.First + PFN(e.Count) }

// Bytes reports the extent's size in bytes.
func (e Extent) Bytes() uint64 { return e.Count * PageSize }

// Contains reports whether the extent covers frame f.
func (e Extent) Contains(f PFN) bool { return f >= e.First && f < e.End() }

// String formats the extent as "[first,+count)".
func (e Extent) String() string { return fmt.Sprintf("[%#x,+%d)", uint64(e.First), e.Count) }

// List is an ordered page-frame list. The order is the mapping order (the
// i-th page of the region is the i-th frame of the list), so a List is not
// necessarily sorted by frame number.
type List struct {
	exts  []Extent
	pages uint64
}

// FromExtents builds a list from pre-built extents (zero-count extents are
// dropped; adjacent extents are coalesced).
func FromExtents(exts ...Extent) List {
	var l List
	for _, e := range exts {
		l.Append(e.First, e.Count)
	}
	return l
}

// FromPages builds a list from individual frame numbers in mapping order,
// coalescing adjacent runs.
func FromPages(pfns []PFN) List {
	var l List
	for _, p := range pfns {
		l.Append(p, 1)
	}
	return l
}

// Append adds a run of count frames starting at first, merging with the
// tail extent when physically adjacent.
func (l *List) Append(first PFN, count uint64) {
	if count == 0 {
		return
	}
	l.pages += count
	if n := len(l.exts); n > 0 && l.exts[n-1].End() == first {
		l.exts[n-1].Count += count
		return
	}
	l.exts = append(l.exts, Extent{First: first, Count: count})
}

// AppendList appends every extent of other, coalescing at the seam.
func (l *List) AppendList(other List) {
	for _, e := range other.exts {
		l.Append(e.First, e.Count)
	}
}

// Pages reports the total number of frames in the list.
func (l List) Pages() uint64 { return l.pages }

// Bytes reports the total size in bytes.
func (l List) Bytes() uint64 { return l.pages * PageSize }

// Len reports the number of extents (the wire-size driver).
func (l List) Len() int { return len(l.exts) }

// Extents returns the underlying extents. The caller must not modify them.
func (l List) Extents() []Extent { return l.exts }

// Page returns the frame of the i-th page of the list.
func (l List) Page(i uint64) (PFN, error) {
	if i >= l.pages {
		return 0, fmt.Errorf("extent: page %d out of range (%d pages)", i, l.pages)
	}
	for _, e := range l.exts {
		if i < e.Count {
			return e.First + PFN(i), nil
		}
		i -= e.Count
	}
	panic("extent: inconsistent page count") // unreachable if pages is consistent
}

// Slice returns the sub-list covering pages [off, off+n) of the region.
// It is how partial attachments (xpmem_attach with offset/size) carve the
// exported frame list.
func (l List) Slice(off, n uint64) (List, error) {
	if off+n > l.pages {
		return List{}, fmt.Errorf("extent: slice [%d,+%d) exceeds %d pages", off, n, l.pages)
	}
	var out List
	skip := off
	need := n
	for _, e := range l.exts {
		if need == 0 {
			break
		}
		if skip >= e.Count {
			skip -= e.Count
			continue
		}
		avail := e.Count - skip
		take := avail
		if take > need {
			take = need
		}
		out.Append(e.First+PFN(skip), take)
		skip = 0
		need -= take
	}
	return out, nil
}

// Equal reports whether two lists map the same frames in the same order.
// Coalescing is canonical, so structural equality suffices.
func (l List) Equal(other List) bool {
	if l.pages != other.pages || len(l.exts) != len(other.exts) {
		return false
	}
	for i, e := range l.exts {
		if other.exts[i] != e {
			return false
		}
	}
	return true
}

// String renders a compact human-readable form.
func (l List) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d pages in %d extents:", l.pages, len(l.exts))
	for i, e := range l.exts {
		if i == 4 {
			fmt.Fprintf(&b, " …")
			break
		}
		fmt.Fprintf(&b, " %s", e)
	}
	return b.String()
}

// EncodedSize reports the wire size of the list in bytes: an 8-byte
// header plus 16 bytes per extent. Channel implementations charge copy
// costs against this size.
func (l List) EncodedSize() int { return 8 + 16*len(l.exts) }

// Encode appends the wire form of the list to buf and returns it.
func (l List) Encode(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(l.exts)))
	for _, e := range l.exts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.First))
		buf = binary.LittleEndian.AppendUint64(buf, e.Count)
	}
	return buf
}

// ErrTruncated reports a malformed wire message.
var ErrTruncated = errors.New("extent: truncated encoding")

// Decode parses a wire-form list from buf, returning the list and the
// remaining bytes.
func Decode(buf []byte) (List, []byte, error) {
	if len(buf) < 8 {
		return List{}, nil, ErrTruncated
	}
	n := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if uint64(len(buf)) < 16*n {
		return List{}, nil, ErrTruncated
	}
	var l List
	for i := uint64(0); i < n; i++ {
		first := PFN(binary.LittleEndian.Uint64(buf))
		count := binary.LittleEndian.Uint64(buf[8:])
		buf = buf[16:]
		if count == 0 {
			return List{}, nil, fmt.Errorf("extent: zero-length extent in encoding")
		}
		l.Append(first, count)
	}
	return l, buf, nil
}
