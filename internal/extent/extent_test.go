package extent

import (
	"testing"
	"testing/quick"
)

func TestAppendCoalesces(t *testing.T) {
	var l List
	l.Append(10, 5)
	l.Append(15, 5) // adjacent: coalesce
	l.Append(30, 2) // gap: new extent
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if l.Pages() != 12 {
		t.Fatalf("Pages = %d, want 12", l.Pages())
	}
	if l.Extents()[0] != (Extent{First: 10, Count: 10}) {
		t.Fatalf("first extent = %v", l.Extents()[0])
	}
}

func TestAppendZeroIgnored(t *testing.T) {
	var l List
	l.Append(5, 0)
	if l.Len() != 0 || l.Pages() != 0 {
		t.Fatalf("zero append changed list: %v", l)
	}
}

func TestFromPagesCoalesces(t *testing.T) {
	l := FromPages([]PFN{1, 2, 3, 7, 8, 100})
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Pages() != 6 {
		t.Fatalf("Pages = %d, want 6", l.Pages())
	}
}

func TestPageIndexing(t *testing.T) {
	l := FromExtents(Extent{10, 3}, Extent{100, 2})
	want := []PFN{10, 11, 12, 100, 101}
	for i, w := range want {
		got, err := l.Page(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("Page(%d) = %d, want %d", i, got, w)
		}
	}
	if _, err := l.Page(5); err == nil {
		t.Fatal("Page(5) should fail")
	}
}

func TestSlice(t *testing.T) {
	l := FromExtents(Extent{10, 4}, Extent{50, 4})
	s, err := l.Slice(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := FromExtents(Extent{12, 2}, Extent{50, 2})
	if !s.Equal(want) {
		t.Fatalf("Slice = %v, want %v", s, want)
	}
	if _, err := l.Slice(6, 4); err == nil {
		t.Fatal("out-of-range slice should fail")
	}
	// Full slice is identity.
	full, err := l.Slice(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Equal(l) {
		t.Fatalf("full slice %v != original %v", full, l)
	}
	// Empty slice.
	empty, err := l.Slice(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Pages() != 0 {
		t.Fatalf("empty slice has %d pages", empty.Pages())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := FromExtents(Extent{0xdeadb, 17}, Extent{1, 1}, Extent{0xffff0, 512})
	buf := l.Encode(nil)
	if len(buf) != l.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), l.EncodedSize())
	}
	got, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if !got.Equal(l) {
		t.Fatalf("round trip: %v != %v", got, l)
	}
}

func TestDecodeTruncated(t *testing.T) {
	l := FromExtents(Extent{1, 2})
	buf := l.Encode(nil)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("Decode of %d/%d bytes should fail", i, len(buf))
		}
	}
}

func TestDecodeRejectsZeroExtent(t *testing.T) {
	// Hand-craft an encoding with a zero-count extent.
	var l List
	l.exts = append(l.exts, Extent{First: 1, Count: 0})
	buf := l.Encode(nil)
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("zero-count extent should be rejected")
	}
}

// Property: slicing then re-concatenating reproduces the original list.
func TestSliceConcatProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seeds []uint16, cut uint16) bool {
		var l List
		base := PFN(1)
		for _, s := range seeds {
			count := uint64(s%64) + 1
			gap := PFN(s % 7)
			if gap > 0 {
				base += gap // force a new extent
			}
			l.Append(base, count)
			base += PFN(count)
		}
		if l.Pages() == 0 {
			return true
		}
		k := uint64(cut) % l.Pages()
		a, err := l.Slice(0, k)
		if err != nil {
			return false
		}
		b, err := l.Slice(k, l.Pages()-k)
		if err != nil {
			return false
		}
		a.AppendList(b)
		return a.Equal(l)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode round-trips arbitrary generated lists.
func TestEncodeDecodeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seeds []uint32) bool {
		var l List
		base := PFN(0)
		for _, s := range seeds {
			base += PFN(s%1000) + 1
			l.Append(base, uint64(s%500)+1)
			base += PFN(s%500) + 1
		}
		got, rest, err := Decode(l.Encode(nil))
		return err == nil && len(rest) == 0 && got.Equal(l)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Page(i) agrees with element-wise expansion.
func TestPageAgreesWithExpansion(t *testing.T) {
	l := FromExtents(Extent{5, 3}, Extent{20, 1}, Extent{9, 2})
	var flat []PFN
	for _, e := range l.Extents() {
		for i := uint64(0); i < e.Count; i++ {
			flat = append(flat, e.First+PFN(i))
		}
	}
	for i, w := range flat {
		got, err := l.Page(uint64(i))
		if err != nil || got != w {
			t.Fatalf("Page(%d) = %d,%v want %d", i, got, err, w)
		}
	}
}
