// Package insitu drives the composed in situ workload of §6: an HPC
// simulation component and an analytics component, in (possibly)
// different enclaves, synchronizing through stop/go variables in real
// XEMEM shared memory and exchanging data regions whose segids are passed
// through the same control page.
//
// Both §6.2 workflow axes are implemented:
//
//   - synchronous vs. asynchronous execution: whether the simulation
//     waits for the analytics acknowledgement before resuming;
//   - one-time vs. recurring attachments: whether the simulation exports
//     a fresh region (new segid) at every communication interval.
//
// The control protocol is the paper's ad hoc polling on shared variables
// (§6.1): the only cross-component facility the enclave OS/Rs provide is
// shared memory itself.
//
// Computation is charged through a calibrated per-iteration cost model
// (compute time, OS jitter, background-daemon bursts, and co-location
// contention) while every XEMEM operation — export, lookup, get, attach,
// fault population, detach — runs the real protocol through the real
// enclave substrates, so attachment overheads and their placement on or
// off the critical path are emergent, not scripted.
package insitu

import (
	"encoding/binary"
	"errors"
	"fmt"

	"xemem/internal/core"
	"xemem/internal/pagetable"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/xproto"
)

// Control page offsets.
const (
	ctrlCmd   = 0  // current communication point (0 = none yet)
	ctrlSegid = 8  // segid of the current data segment
	ctrlAck   = 16 // last point completed by the analytics
	ctrlPages = 1

	exitCmd = ^uint64(0)

	pollInterval = 50 * sim.Microsecond
)

// ComputeModel is the calibrated cost of one simulation iteration in a
// particular enclave environment.
type ComputeModel struct {
	// IterBase is the mean iteration compute time.
	IterBase sim.Time
	// RelJitter is the Gaussian relative jitter applied per iteration
	// (fine-grained OS and hardware noise).
	RelJitter float64
	// BurstRate is the rate (events per second) of long background
	// events — daemons, kswapd, cron — typical of fullweight OSes.
	BurstRate float64
	// BurstMean/BurstJit describe burst durations (uniform jitter).
	BurstMean sim.Time
	BurstJit  float64
	// ContentionFactor inflates an iteration while a co-located (same
	// OS, no enclave isolation) analytics component is actively
	// processing — memory-bandwidth and kernel-structure contention.
	ContentionFactor float64
	// RunJitter is the relative std-dev of a per-run multiplicative
	// factor (thermal/DVFS drift between runs): drawn once per run.
	RunJitter float64
}

// iterTime draws one iteration duration. runFactor is the per-run drift
// drawn from RunJitter at startup.
func (m ComputeModel) iterTime(rng *sim.RNG, runFactor float64, contended bool) sim.Time {
	t := sim.Time(runFactor * rng.Normal(float64(m.IterBase), m.RelJitter*float64(m.IterBase)))
	if contended && m.ContentionFactor > 0 {
		t = sim.Time(float64(t) * (1 + m.ContentionFactor))
	}
	if m.BurstRate > 0 {
		p := m.BurstRate * t.Seconds()
		if rng.Float64() < p {
			t += rng.Jitter(m.BurstMean, m.BurstJit)
		}
	}
	return t
}

// AnalyticsModel is the calibrated cost of processing one data region.
type AnalyticsModel struct {
	// CopyBW is the bandwidth of the shared→private copy (§6.1: "the
	// analytics program first copies the shared memory into a private
	// array").
	CopyBW float64
	// StreamBW is the effective memory bandwidth of the STREAM kernels.
	StreamBW float64
	// StreamTrafficFactor scales region size to total STREAM traffic
	// (the four kernels move ~10 words per element over the run).
	StreamTrafficFactor float64
	// FaultPerPage is the demand-fault cost paid on first touch of a
	// lazily populated attachment (single-OS Linux semantics, §6.4).
	FaultPerPage sim.Time
	// FaultPressureProb/Factor model kernel memory pressure: with this
	// per-run probability, the run's fault costs are scaled by Factor
	// (page reclaim interacting with the attachment churn). This is the
	// §6.4 "marked increase in runtime variance" of the Linux-only
	// recurring configuration; configurations that never demand-fault
	// are untouched.
	FaultPressureProb   float64
	FaultPressureFactor float64
}

// Barrier couples simulation iterations across nodes (allreduce); nil in
// single-node runs.
type Barrier interface {
	Arrive(a *sim.Actor)
}

// Side is one workload component's placement.
type Side struct {
	Mod  *core.Module
	Proc *proc.Process
	Core *sim.Core
}

// Config selects the workflow (§6.2) and problem shape.
type Config struct {
	Sync        bool
	Recurring   bool
	Iters       int
	SignalEvery int
	DataBytes   uint64
	CtrlName    string
	// SameOS marks the Linux-only configuration where both components
	// share the management enclave and contend (Table 3 row 1).
	SameOS bool
	// Barrier, when non-nil, is joined after every iteration (§7).
	Barrier Barrier
	// StartAt delays both components' first action to this virtual time.
	// Phased runs use it to start a suffix workload where a snapshotted
	// prefix left off.
	StartAt sim.Time
	// CleanExit makes the components retire every XEMEM object they
	// created before finishing: the analytics detaches and releases the
	// control attachment, then the simulation removes the data and
	// control segments and zeroes the control words. A world quiesced
	// after a CleanExit run carries no live segments, which is what lets
	// a snapshot of it fork into fresh suffix phases.
	CleanExit bool
}

// Result is the outcome of one composed run.
type Result struct {
	// SimTime is the completion time of the HPC simulation component —
	// what Figs. 8 and 9 plot.
	SimTime sim.Time
	// Points is the number of communication points executed.
	Points int
	// AttachTimes samples the analytics-side attach latency (seconds).
	AttachTimes sim.Sample
	// AnalyticsTime is when the analytics component finished.
	AnalyticsTime sim.Time
}

// Run wires one composed workload into the world: the simulation side on
// its actor, the analytics side on another. It returns a function that,
// after w.Run() completes, yields the Result.
//
// simData must be a region in the simulation process's address space of
// at least DataBytes plus one control page; the control page is carved
// from its start and the data window follows it.
func Run(w *sim.World, cfg Config, simSide Side, simModel ComputeModel, anSide Side, anModel AnalyticsModel, simData *proc.Region) (func() *Result, error) {
	needPages := ctrlPages + (cfg.DataBytes+pageSize-1)/pageSize
	if simData.Pages() < needPages {
		return nil, fmt.Errorf("insitu: region has %d pages, need %d", simData.Pages(), needPages)
	}
	if cfg.Iters <= 0 || cfg.SignalEvery <= 0 {
		return nil, errors.New("insitu: bad iteration config")
	}
	res := &Result{}
	ctrlVA := simData.Base
	dataVA := simData.Base + pagetable.VA(ctrlPages*pageSize)

	// shared Go-side flag for contention modelling: true while the
	// analytics is actively processing on the same OS.
	analyticsActive := false
	// analyticsDone flags the CleanExit handshake: the analytics has
	// released everything and the simulation may retire the segments.
	analyticsDone := false

	// The paper's components poll shared variables (§6.1). Simulating
	// every poll of a multi-second wait is pure scheduler overhead, so
	// waits block and each control-page write wakes the peer; the
	// condition is re-checked on every wake, which is observationally
	// equivalent to polling with sub-interval latency.
	var simActor, anActor *sim.Actor
	wake := func(me, peer *sim.Actor) {
		if peer != nil {
			me.Unblock(peer)
		}
	}
	waitUntil := func(a *sim.Actor, reason string, cond func() bool) {
		for !cond() {
			a.Block(reason)
		}
	}
	spawn := func(name string, fn func(*sim.Actor)) {
		if cfg.StartAt > 0 {
			w.SpawnAt(name, cfg.StartAt, fn)
		} else {
			w.Spawn(name, fn)
		}
	}

	spawn(simSide.Mod.Name()+"/sim", func(a *sim.Actor) {
		simActor = a
		rng := a.RNG()
		runFactor := 1.0
		if simModel.RunJitter > 0 {
			runFactor = rng.Normal(1, simModel.RunJitter)
		}
		mod, p := simSide.Mod, simSide.Proc

		ctrlSeg, err := mod.Make(a, p, ctrlVA, ctrlPages*pageSize, xproto.PermRead|xproto.PermWrite, cfg.CtrlName)
		if err != nil {
			panic("insitu sim: " + err.Error())
		}
		var dataSegs []xproto.Segid
		makeData := func() xproto.Segid {
			s, err := mod.Make(a, p, dataVA, cfg.DataBytes, xproto.PermRead|xproto.PermWrite, "")
			if err != nil {
				panic("insitu sim: " + err.Error())
			}
			if cfg.CleanExit {
				dataSegs = append(dataSegs, s)
			}
			return s
		}
		writeCtrl := func(off uint64, v uint64) {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], v)
			if _, err := p.AS.Write(ctrlVA+pagetable.VA(off), buf[:]); err != nil {
				panic("insitu sim: " + err.Error())
			}
		}
		readCtrl := func(off uint64) uint64 {
			var buf [8]byte
			if _, err := p.AS.Read(ctrlVA+pagetable.VA(off), buf[:]); err != nil {
				panic("insitu sim: " + err.Error())
			}
			return binary.LittleEndian.Uint64(buf[:])
		}

		if !cfg.Recurring {
			writeCtrl(ctrlSegid, uint64(makeData()))
		}
		point := 0
		for it := 1; it <= cfg.Iters; it++ {
			simSide.Core.Exec(a, simModel.iterTime(rng, runFactor, cfg.SameOS && analyticsActive), "sim")
			if cfg.Barrier != nil {
				cfg.Barrier.Arrive(a)
			}
			if it%cfg.SignalEvery == 0 {
				point++
				if cfg.Recurring {
					writeCtrl(ctrlSegid, uint64(makeData()))
				}
				writeCtrl(ctrlCmd, uint64(point))
				wake(a, anActor)
				if cfg.Sync {
					pt := uint64(point)
					waitUntil(a, "sim:ack", func() bool { return readCtrl(ctrlAck) >= pt })
				}
			}
		}
		res.SimTime = a.Now()
		res.Points = point
		writeCtrl(ctrlCmd, exitCmd)
		wake(a, anActor)
		if cfg.CleanExit {
			waitUntil(a, "sim:drain", func() bool { return analyticsDone })
			for _, s := range dataSegs {
				if err := mod.Remove(a, p, s); err != nil {
					panic("insitu sim: " + err.Error())
				}
			}
			if err := mod.Remove(a, p, ctrlSeg); err != nil {
				panic("insitu sim: " + err.Error())
			}
			// Drain the protocol: a non-NS-hosting module's removals reach
			// the name server by notification, and those messages may still
			// be in flight when this actor finishes. A lookup rides the
			// same FIFO channel, so once the control name stops resolving
			// every prior removal has been processed — the quiesced world
			// carries no in-flight protocol state for a later phase (or a
			// snapshot fork) to trip over.
			a.Poll(pollInterval, func() bool {
				_, err := mod.Lookup(a, cfg.CtrlName)
				return err != nil
			})
			// Scrub the control words: a later phase reusing this region
			// must not read this run's exit command or stale ack.
			writeCtrl(ctrlCmd, 0)
			writeCtrl(ctrlSegid, 0)
			writeCtrl(ctrlAck, 0)
		}
	})

	spawn(anSide.Mod.Name()+"/analytics", func(a *sim.Actor) {
		anActor = a
		mod, p := anSide.Mod, anSide.Proc
		faultCost := anModel.FaultPerPage
		if anModel.FaultPressureProb > 0 && a.RNG().Float64() < anModel.FaultPressureProb {
			faultCost = sim.Time(float64(faultCost) * anModel.FaultPressureFactor)
		}

		// Discover the control segment by name (§3.1 discoverability).
		var ctrlSeg xproto.Segid
		a.Poll(pollInterval, func() bool {
			s, err := mod.Lookup(a, cfg.CtrlName)
			if err != nil {
				return false
			}
			ctrlSeg = s
			return true
		})
		ctrlApid, err := mod.Get(a, p, ctrlSeg, xproto.PermRead|xproto.PermWrite)
		if err != nil {
			panic("insitu analytics: " + err.Error())
		}
		ctrl, err := mod.Attach(a, p, ctrlSeg, ctrlApid, 0, ctrlPages*pageSize, xproto.PermRead|xproto.PermWrite)
		if err != nil {
			panic("insitu analytics: " + err.Error())
		}
		readCtrl := func(off uint64) uint64 {
			var buf [8]byte
			if _, err := p.AS.Read(ctrl+pagetable.VA(off), buf[:]); err != nil {
				panic("insitu analytics: " + err.Error())
			}
			return binary.LittleEndian.Uint64(buf[:])
		}
		writeCtrl := func(off uint64, v uint64) {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], v)
			if _, err := p.AS.Write(ctrl+pagetable.VA(off), buf[:]); err != nil {
				panic("insitu analytics: " + err.Error())
			}
		}

		var dataVA pagetable.VA
		var dataSeg xproto.Segid
		var dataApid xproto.Apid
		attached := false

		attach := func(seg xproto.Segid) {
			start := a.Now()
			apid, err := mod.Get(a, p, seg, xproto.PermRead|xproto.PermWrite)
			if err != nil {
				panic("insitu analytics: " + err.Error())
			}
			va, err := mod.Attach(a, p, seg, apid, 0, cfg.DataBytes, xproto.PermRead|xproto.PermWrite)
			if err != nil {
				panic("insitu analytics: " + err.Error())
			}
			res.AttachTimes.AddTime(a.Now() - start)
			dataVA, dataSeg, dataApid, attached = va, seg, apid, true
		}
		detach := func() {
			if !attached {
				return
			}
			if err := mod.Detach(a, p, dataVA); err != nil {
				panic("insitu analytics: " + err.Error())
			}
			if err := mod.Release(a, p, dataSeg, dataApid); err != nil {
				panic("insitu analytics: " + err.Error())
			}
			attached = false
		}

		next := uint64(1)
		for {
			cmd := uint64(0)
			waitUntil(a, "analytics:signal", func() bool {
				cmd = readCtrl(ctrlCmd)
				return cmd >= next || cmd == exitCmd
			})
			if cmd == exitCmd {
				break
			}
			analyticsActive = true
			seg := xproto.Segid(readCtrl(ctrlSegid))
			if cfg.Recurring && attached && seg != dataSeg {
				detach()
			}
			if !attached {
				attach(seg)
			}
			// First-touch faults for lazily populated (single-OS Linux)
			// attachments, paid as the copy walks the region (§6.4).
			if r := p.AS.FindRegion(dataVA); r != nil && r.Lazy && r.Populated < r.Pages() {
				installed, err := p.AS.PopulateAll(r)
				if err != nil {
					panic("insitu analytics: " + err.Error())
				}
				if faultCost > 0 {
					anSide.Core.Exec(a, sim.Time(installed)*faultCost, "fault")
				}
			}
			// Copy shared → private, then run STREAM over the copy.
			anSide.Core.Exec(a, sim.CopyTime(int(cfg.DataBytes), anModel.CopyBW), "analytics")
			traffic := float64(cfg.DataBytes) * anModel.StreamTrafficFactor
			anSide.Core.Exec(a, sim.CopyTime(int(traffic), anModel.StreamBW), "analytics")
			analyticsActive = false
			writeCtrl(ctrlAck, cmd)
			wake(a, simActor)
			next = cmd + 1
		}
		detach()
		if cfg.CleanExit {
			if err := mod.Detach(a, p, ctrl); err != nil {
				panic("insitu analytics: " + err.Error())
			}
			if err := mod.Release(a, p, ctrlSeg, ctrlApid); err != nil {
				panic("insitu analytics: " + err.Error())
			}
			analyticsDone = true
			wake(a, simActor)
		}
		res.AnalyticsTime = a.Now()
	})

	return func() *Result { return res }, nil
}

const pageSize = 4096
