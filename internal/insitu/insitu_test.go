package insitu_test

import (
	"testing"

	"xemem/internal/core"
	"xemem/internal/extent"
	"xemem/internal/insitu"
	"xemem/internal/linuxos"
	"xemem/internal/mem"
	"xemem/internal/pisces"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/xproto"
)

// buildKittenLinux assembles the Table 3 "Kitten Co-Kernel / Native
// Linux" configuration with a small data region and returns everything a
// Run needs.
type rig struct {
	w       *sim.World
	costs   *sim.Costs
	simSide insitu.Side
	anSide  insitu.Side
	region  *proc.Region
}

func buildKittenLinux(t *testing.T, seed uint64, dataPages uint64) *rig {
	t.Helper()
	w := sim.NewWorld(seed)
	costs := sim.DefaultCosts()
	pm := mem.NewPhysMem("node0", 1<<30)
	linux := linuxos.New("linux", w, costs, pm.Zone(0), proc.HostDomain{Mem: pm}, 4)
	lmod := core.New("linux", w, costs, linux, true)
	lmod.Start()
	ck, err := pisces.CreateCoKernel("kitten0", w, costs, pm, linux.Zone(), 128<<20, lmod)
	if err != nil {
		t.Fatal(err)
	}
	kp, heap, err := ck.OS.NewProcess("sim", dataPages+8)
	if err != nil {
		t.Fatal(err)
	}
	lp := linux.NewProcess("analytics", 1)
	return &rig{
		w:     w,
		costs: costs,
		simSide: insitu.Side{
			Mod: ck.Module, Proc: kp, Core: ck.OS.Core(),
		},
		anSide: insitu.Side{
			Mod: lmod, Proc: lp, Core: linux.Cores()[1],
		},
		region: heap,
	}
}

func models(costs *sim.Costs) (insitu.ComputeModel, insitu.AnalyticsModel) {
	sim := insitu.ComputeModel{IterBase: 2 * 1e6, RelJitter: 0.001} // 2 ms iterations
	an := insitu.AnalyticsModel{
		CopyBW:              8e9,
		StreamBW:            8e9,
		StreamTrafficFactor: 10,
		FaultPerPage:        costs.FaultLinux,
	}
	return sim, an
}

func runOne(t *testing.T, sync, recurring bool, seed uint64) *insitu.Result {
	t.Helper()
	r := buildKittenLinux(t, seed, 64)
	simModel, anModel := models(r.costs)
	cfg := insitu.Config{
		Sync: sync, Recurring: recurring,
		Iters: 40, SignalEvery: 10,
		DataBytes: 32 * extent.PageSize,
		CtrlName:  "insitu-test",
	}
	get, err := insitu.Run(r.w, cfg, r.simSide, simModel, r.anSide, anModel, r.region)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.w.Run(); err != nil {
		t.Fatal(err)
	}
	res := get()
	if res.Points != 4 {
		t.Fatalf("points = %d, want 4", res.Points)
	}
	if res.SimTime <= 0 || res.AnalyticsTime <= 0 {
		t.Fatalf("missing completion times: %+v", res)
	}
	return res
}

func TestSyncSlowerThanAsync(t *testing.T) {
	syncRes := runOne(t, true, false, 5)
	asyncRes := runOne(t, false, false, 5)
	if syncRes.SimTime <= asyncRes.SimTime {
		t.Fatalf("sync (%v) should be slower than async (%v)",
			syncRes.SimTime, asyncRes.SimTime)
	}
}

func TestOneTimeAttachesOnce(t *testing.T) {
	res := runOne(t, true, false, 7)
	if res.AttachTimes.N() != 1 {
		t.Fatalf("one-time model attached %d times", res.AttachTimes.N())
	}
}

func TestRecurringAttachesEveryPoint(t *testing.T) {
	res := runOne(t, true, true, 7)
	if res.AttachTimes.N() != 4 {
		t.Fatalf("recurring model attached %d times, want 4", res.AttachTimes.N())
	}
}

func TestRecurringCostsMoreThanOneTimeSync(t *testing.T) {
	one := runOne(t, true, false, 11)
	rec := runOne(t, true, true, 11)
	if rec.SimTime <= one.SimTime {
		t.Fatalf("recurring sync (%v) should cost more than one-time sync (%v)",
			rec.SimTime, one.SimTime)
	}
}

func TestDeterministicReplay(t *testing.T) {
	a := runOne(t, true, true, 42)
	b := runOne(t, true, true, 42)
	if a.SimTime != b.SimTime || a.AnalyticsTime != b.AnalyticsTime {
		t.Fatalf("replay diverged: %v/%v vs %v/%v",
			a.SimTime, a.AnalyticsTime, b.SimTime, b.AnalyticsTime)
	}
}

func TestLinuxOnlyConfigurationFaultsOnTouch(t *testing.T) {
	// Table 3 row 1: both components in the native Linux enclave. The
	// data attachment is local and lazy, so the analytics pays demand
	// faults per point in the recurring model.
	build := func(recurring bool) sim.Time {
		w := sim.NewWorld(3)
		costs := sim.DefaultCosts()
		pm := mem.NewPhysMem("node0", 1<<30)
		linux := linuxos.New("linux", w, costs, pm.Zone(0), proc.HostDomain{Mem: pm}, 4)
		lmod := core.New("linux", w, costs, linux, true)
		lmod.Start()
		sp := linux.NewProcess("sim", 1)
		ap := linux.NewProcess("analytics", 2)
		region, err := linux.Alloc(sp, "data", 64+8, true)
		if err != nil {
			t.Fatal(err)
		}
		simModel, anModel := models(costs)
		cfg := insitu.Config{
			Sync: true, Recurring: recurring,
			Iters: 40, SignalEvery: 10,
			DataBytes: 32 * extent.PageSize,
			CtrlName:  "linux-only",
			SameOS:    true,
		}
		get, err := insitu.Run(w, cfg,
			insitu.Side{Mod: lmod, Proc: sp, Core: linux.Cores()[1]}, simModel,
			insitu.Side{Mod: lmod, Proc: ap, Core: linux.Cores()[2]}, anModel,
			region)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return get().SimTime
	}
	one := build(false)
	rec := build(true)
	// Recurring single-OS attachments pay page-fault population at every
	// point (§6.4): visibly slower under the sync model.
	if rec <= one {
		t.Fatalf("recurring Linux-only (%v) should exceed one-time (%v)", rec, one)
	}
}

func TestRegionTooSmallRejected(t *testing.T) {
	r := buildKittenLinux(t, 1, 4)
	simModel, anModel := models(r.costs)
	cfg := insitu.Config{
		Sync: true, Iters: 10, SignalEvery: 5,
		DataBytes: 64 * extent.PageSize, CtrlName: "x",
	}
	if _, err := insitu.Run(r.w, cfg, r.simSide, simModel, r.anSide, anModel, r.region); err == nil {
		t.Fatal("undersized region accepted")
	}
}

var _ = xproto.PermRead // keep import for future assertions
