package pagetable

import (
	"testing"
	"testing/quick"

	"xemem/internal/extent"
)

func TestMapWalkSinglePage(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1000, 0x200, Read|Write|User); err != nil {
		t.Fatal(err)
	}
	f, fl, leaf, ok := pt.Walk(0x1234)
	if !ok {
		t.Fatal("walk missed")
	}
	if f != 0x200 || fl != Read|Write|User || leaf != extent.PageSize {
		t.Fatalf("walk = %#x %v %d", uint64(f), fl, leaf)
	}
	if _, _, _, ok := pt.Walk(0x2000); ok {
		t.Fatal("unmapped address should miss")
	}
	if pt.Mapped() != 1 {
		t.Fatalf("mapped = %d", pt.Mapped())
	}
}

func TestUnalignedMapRejected(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1001, 0x200, Read); err == nil {
		t.Fatal("unaligned map should fail")
	}
}

func TestDoubleMapRejected(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1000, 0x200, Read); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x1000, 0x300, Read); err == nil {
		t.Fatal("double map should fail")
	}
}

func TestMapListUsesLargePages(t *testing.T) {
	pt := New()
	// 4 MB contiguous, 2 MB-aligned in both VA and PFN: two 2 MB leaves.
	l := extent.FromExtents(extent.Extent{First: 512, Count: 1024})
	if err := pt.MapList(VA(512*extent.PageSize), l, Read|Write); err != nil {
		t.Fatal(err)
	}
	_, _, leaf, ok := pt.Walk(VA(512 * extent.PageSize))
	if !ok || leaf != 2<<20 {
		t.Fatalf("leaf = %d, want 2MB", leaf)
	}
	if pt.Mapped() != 1024 {
		t.Fatalf("mapped = %d", pt.Mapped())
	}
	// Every page translates to the right frame.
	for i := uint64(0); i < 1024; i += 97 {
		f, _, _, ok := pt.Walk(VA((512 + i) * extent.PageSize))
		if !ok || f != extent.PFN(512+i) {
			t.Fatalf("page %d → %#x", i, uint64(f))
		}
	}
}

func TestMapListUnalignedFramesUsesSmallPages(t *testing.T) {
	pt := New()
	// Frames not 512-aligned: only 4 KB leaves possible.
	l := extent.FromExtents(extent.Extent{First: 100, Count: 600})
	if err := pt.MapList(VA(512*extent.PageSize), l, Read); err != nil {
		t.Fatal(err)
	}
	_, _, leaf, ok := pt.Walk(VA(512 * extent.PageSize))
	if !ok || leaf != extent.PageSize {
		t.Fatalf("leaf = %d, want 4KB", leaf)
	}
	if pt.Mapped() != 600 {
		t.Fatalf("mapped = %d", pt.Mapped())
	}
}

func TestMapListRollbackOnConflict(t *testing.T) {
	pt := New()
	if err := pt.Map(VA(5*extent.PageSize), 0x999, Read); err != nil {
		t.Fatal(err)
	}
	l := extent.FromExtents(extent.Extent{First: 0x200, Count: 10})
	if err := pt.MapList(0, l, Read); err == nil {
		t.Fatal("conflicting MapList should fail")
	}
	// Pages 0-4 must have been rolled back.
	for i := uint64(0); i < 5; i++ {
		if _, _, _, ok := pt.Walk(VA(i * extent.PageSize)); ok {
			t.Fatalf("page %d not rolled back", i)
		}
	}
	if pt.Mapped() != 1 {
		t.Fatalf("mapped = %d after rollback", pt.Mapped())
	}
}

func TestExtentsForRoundTrip(t *testing.T) {
	pt := New()
	l := extent.FromExtents(
		extent.Extent{First: 0x1000, Count: 512},
		extent.Extent{First: 0x5000, Count: 3},
		extent.Extent{First: 0x300, Count: 70},
	)
	base := VA(1 << 30)
	if err := pt.MapList(base, l, Read|Write); err != nil {
		t.Fatal(err)
	}
	got, err := pt.ExtentsFor(base, l.Pages())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(l) {
		t.Fatalf("ExtentsFor = %v, want %v", got, l)
	}
	// Sub-range walk.
	sub, err := pt.ExtentsFor(base+VA(510*extent.PageSize), 10)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := l.Slice(510, 10)
	if !sub.Equal(want) {
		t.Fatalf("sub walk = %v, want %v", sub, want)
	}
}

func TestExtentsForHoleFails(t *testing.T) {
	pt := New()
	if err := pt.Map(0, 0x200, Read); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.ExtentsFor(0, 2); err == nil {
		t.Fatal("walk across hole should fail")
	}
}

func TestUnmapExact(t *testing.T) {
	pt := New()
	l := extent.FromExtents(extent.Extent{First: 0x200, Count: 16})
	if err := pt.MapList(0x10000, l, Read); err != nil {
		t.Fatal(err)
	}
	if err := pt.Unmap(0x10000, 16); err != nil {
		t.Fatal(err)
	}
	if pt.Mapped() != 0 {
		t.Fatalf("mapped = %d", pt.Mapped())
	}
	if err := pt.Unmap(0x10000, 1); err == nil {
		t.Fatal("unmap of unmapped should fail")
	}
}

func TestUnmapSplitsLargePage(t *testing.T) {
	pt := New()
	l := extent.FromExtents(extent.Extent{First: 512, Count: 512}) // one 2MB leaf
	base := VA(512 * extent.PageSize)
	if err := pt.MapList(base, l, Read|Write); err != nil {
		t.Fatal(err)
	}
	// Unmap 16 pages from the middle.
	if err := pt.Unmap(base+VA(100*extent.PageSize), 16); err != nil {
		t.Fatal(err)
	}
	if pt.Mapped() != 512-16 {
		t.Fatalf("mapped = %d", pt.Mapped())
	}
	if _, _, _, ok := pt.Walk(base + VA(100*extent.PageSize)); ok {
		t.Fatal("unmapped page still walks")
	}
	// Neighbours survive with correct frames and are now 4KB leaves.
	f, _, leaf, ok := pt.Walk(base + VA(99*extent.PageSize))
	if !ok || f != extent.PFN(512+99) || leaf != extent.PageSize {
		t.Fatalf("neighbour walk = %#x leaf=%d ok=%v", uint64(f), leaf, ok)
	}
	f, _, _, ok = pt.Walk(base + VA(116*extent.PageSize))
	if !ok || f != extent.PFN(512+116) {
		t.Fatalf("post-hole walk = %#x ok=%v", uint64(f), ok)
	}
}

func TestInteriorTableGC(t *testing.T) {
	pt := New()
	base := pt.Tables()
	l := extent.FromExtents(extent.Extent{First: 0x200, Count: 8})
	if err := pt.MapList(0x40000000, l, Read); err != nil {
		t.Fatal(err)
	}
	grown := pt.Tables()
	if grown <= base {
		t.Fatal("mapping should allocate tables")
	}
	if err := pt.Unmap(0x40000000, 8); err != nil {
		t.Fatal(err)
	}
	if pt.Tables() != base {
		t.Fatalf("tables = %d after full unmap, want %d", pt.Tables(), base)
	}
}

func TestProtect(t *testing.T) {
	pt := New()
	l := extent.FromExtents(extent.Extent{First: 512, Count: 512}) // 2MB leaf
	base := VA(512 * extent.PageSize)
	if err := pt.MapList(base, l, Read|Write); err != nil {
		t.Fatal(err)
	}
	if err := pt.Protect(base+VA(10*extent.PageSize), 5, Read); err != nil {
		t.Fatal(err)
	}
	_, fl, _, _ := pt.Walk(base + VA(10*extent.PageSize))
	if fl != Read {
		t.Fatalf("flags = %v, want r", fl)
	}
	_, fl, _, _ = pt.Walk(base + VA(9*extent.PageSize))
	if fl != Read|Write {
		t.Fatalf("untouched flags = %v", fl)
	}
	if pt.Mapped() != 512 {
		t.Fatalf("protect changed mapped count: %d", pt.Mapped())
	}
	if err := pt.Protect(0, 1, Read); err == nil {
		t.Fatal("protect of unmapped should fail")
	}
}

func TestFlagsString(t *testing.T) {
	if got := (Read | Write | User).String(); got != "rw-u" {
		t.Fatalf("flags = %q", got)
	}
	if got := Flags(0).String(); got != "----" {
		t.Fatalf("flags = %q", got)
	}
}

// Property: MapList then ExtentsFor is the identity on arbitrary lists,
// and Unmap restores the empty state.
func TestMapWalkUnmapProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seeds []uint16) bool {
		pt := New()
		var l extent.List
		next := extent.PFN(0x1000)
		for _, s := range seeds {
			next += extent.PFN(s%13) + 1 // gaps prevent coalescing
			count := uint64(s%700) + 1
			l.Append(next, count)
			next += extent.PFN(count)
		}
		if l.Pages() == 0 {
			return true
		}
		base := VA(7 << 21) // 2MB-aligned VA
		if err := pt.MapList(base, l, Read|Write); err != nil {
			return false
		}
		got, err := pt.ExtentsFor(base, l.Pages())
		if err != nil || !got.Equal(l) {
			return false
		}
		if pt.Mapped() != l.Pages() {
			return false
		}
		if err := pt.Unmap(base, l.Pages()); err != nil {
			return false
		}
		return pt.Mapped() == 0 && pt.Tables() == 1
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: partial unmaps of random sub-ranges leave exactly the
// complement mapped.
func TestPartialUnmapProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(offRaw, lenRaw uint16) bool {
		const total = 2048 // 8 MB region, large-page eligible
		pt := New()
		l := extent.FromExtents(extent.Extent{First: 512, Count: total})
		base := VA(1 << 30)
		if err := pt.MapList(base, l, Read); err != nil {
			return false
		}
		off := uint64(offRaw) % total
		n := uint64(lenRaw)%(total-off) + 1
		if err := pt.Unmap(base+VA(off*extent.PageSize), n); err != nil {
			return false
		}
		if pt.Mapped() != total-n {
			return false
		}
		for _, probe := range []uint64{0, off / 2, off, off + n - 1, off + n, total - 1} {
			_, _, _, ok := pt.Walk(base + VA(probe*extent.PageSize))
			inHole := probe >= off && probe < off+n
			if probe < total && ok == inHole {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
