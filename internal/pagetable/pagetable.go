// Package pagetable implements x86-64-style 4-level page tables over
// simulated physical frames.
//
// Tables are real radix structures (PML4 → PDPT → PD → PT) with 512
// entries per level and large-page leaves at the 1 GB and 2 MB levels when
// virtual and physical alignment allow, exactly as a kernel would build
// them. Every enclave OS in the reproduction — Kitten, Linux, and Linux
// guests inside Palacios — owns one Table per process address space; the
// XEMEM serve path walks them to generate page-frame lists (§4.3), and the
// attach path populates them with remote frame lists.
//
// The package is purely functional: simulated-time costs for walks and
// mapping operations are charged by the OS layers, which know their own
// per-page prices.
package pagetable

import (
	"fmt"

	"xemem/internal/extent"
)

// VA is a virtual address. Only the canonical low 48 bits are used.
type VA uint64

// Page reports the 4 KB-page index of the address.
func (v VA) Page() uint64 { return uint64(v) >> extent.PageShift }

// Offset reports the offset within the address's 4 KB page.
func (v VA) Offset() uint64 { return uint64(v) & (extent.PageSize - 1) }

// Flags are per-mapping permissions.
type Flags uint8

// Permission bits.
const (
	Read Flags = 1 << iota
	Write
	Exec
	User
)

func (f Flags) String() string {
	b := []byte("----")
	if f&Read != 0 {
		b[0] = 'r'
	}
	if f&Write != 0 {
		b[1] = 'w'
	}
	if f&Exec != 0 {
		b[2] = 'x'
	}
	if f&User != 0 {
		b[3] = 'u'
	}
	return string(b)
}

// Entry encoding: bit0 present, bit1 leaf, bits2-5 flags, frame<<12.
const (
	entPresent = 1 << 0
	entLeaf    = 1 << 1
	flagShift  = 2
	flagMask   = 0xf << flagShift
	pfnShift   = 12
)

// pagesAtLevel[i] is the number of 4 KB pages covered by one entry at
// level i (0 = PT, 1 = PD, 2 = PDPT, 3 = PML4).
var pagesAtLevel = [4]uint64{1, 512, 512 * 512, 512 * 512 * 512}

type table struct {
	ents [512]uint64
	next []*table // allocated lazily; index-aligned with ents
	used int      // number of present entries
}

func (t *table) child(i int) *table {
	if t.next == nil {
		return nil
	}
	return t.next[i]
}

func (t *table) setChild(i int, c *table) {
	if t.next == nil {
		t.next = make([]*table, 512)
	}
	t.next[i] = c
}

// Table is one address space's page-table tree.
type Table struct {
	root   *table
	mapped uint64       // total 4 KB pages mapped (excluding shared slots)
	tables int          // number of table nodes allocated (diagnostics)
	shared map[int]bool // top-level slots borrowed via ShareSlot
}

// New returns an empty table.
func New() *Table {
	return &Table{root: &table{}, tables: 1}
}

// Mapped reports the number of 4 KB pages currently mapped.
func (t *Table) Mapped() uint64 { return t.mapped }

// Tables reports the number of radix nodes allocated.
func (t *Table) Tables() int { return t.tables }

func index(va VA, level int) int {
	return int(uint64(va) >> (12 + 9*level) & 511)
}

// MapList maps the frames of l starting at virtual address va (which must
// be page-aligned), using 1 GB and 2 MB leaves when both the virtual
// address and the frame run are size-aligned. It fails without side
// effects on misalignment, and fails (with partial mappings rolled back)
// if any page in the range is already mapped.
func (t *Table) MapList(va VA, l extent.List, flags Flags) error {
	if va.Offset() != 0 {
		return fmt.Errorf("pagetable: unaligned map at %#x", uint64(va))
	}
	done := uint64(0)
	cur := va
	for _, e := range l.Extents() {
		first, count := e.First, e.Count
		for count > 0 {
			step, err := t.mapRun(cur, first, count, flags)
			if err != nil {
				// Roll back what this call mapped so failed maps do not
				// leave a half-populated range.
				_ = t.Unmap(va, done)
				return err
			}
			cur += VA(step * extent.PageSize)
			first += extent.PFN(step)
			count -= step
			done += step
		}
	}
	return nil
}

// mapRun maps the largest aligned leaf possible at va and returns how many
// 4 KB pages it covered.
func (t *Table) mapRun(va VA, f extent.PFN, count uint64, flags Flags) (uint64, error) {
	for level := 2; level >= 1; level-- {
		span := pagesAtLevel[level]
		if count >= span && uint64(va)>>12%span == 0 && uint64(f)%span == 0 {
			if err := t.set(va, level, f, flags); err != nil {
				return 0, err
			}
			return span, nil
		}
	}
	if err := t.set(va, 0, f, flags); err != nil {
		return 0, err
	}
	return 1, nil
}

// Map maps a single 4 KB page.
func (t *Table) Map(va VA, f extent.PFN, flags Flags) error {
	if va.Offset() != 0 {
		return fmt.Errorf("pagetable: unaligned map at %#x", uint64(va))
	}
	return t.set(va, 0, f, flags)
}

// MapRun maps count 4 KB pages starting at va to the physically
// contiguous frames starting at f, always with 4 KB leaves. It is
// equivalent to count successive Map calls — the demand-fault install
// path uses it to batch-populate runs — but descends the radix tree once
// per PT node (512 entries) instead of once per page. Like a sequence of
// Map calls, it fails on the first already-mapped page, leaving earlier
// pages of the run mapped.
func (t *Table) MapRun(va VA, f extent.PFN, count uint64, flags Flags) error {
	if va.Offset() != 0 {
		return fmt.Errorf("pagetable: unaligned map at %#x", uint64(va))
	}
	for count > 0 {
		if err := t.guardShared(va, "map"); err != nil {
			return err
		}
		node := t.root
		for level := 3; level > 0; level-- {
			i := index(va, level)
			e := node.ents[i]
			if e&entPresent == 0 {
				child := &table{}
				t.tables++
				node.setChild(i, child)
				node.ents[i] = entPresent
				node.used++
				node = child
				continue
			}
			if e&entLeaf != 0 {
				return fmt.Errorf("pagetable: %#x already mapped by a level-%d leaf", uint64(va), level)
			}
			node = node.child(i)
		}
		i := index(va, 0)
		n := uint64(512 - i)
		if n > count {
			n = count
		}
		for j := uint64(0); j < n; j++ {
			if node.ents[i+int(j)]&entPresent != 0 {
				node.used += int(j)
				t.mapped += j
				return fmt.Errorf("pagetable: %#x already mapped", uint64(va)+j*extent.PageSize)
			}
			node.ents[i+int(j)] = entPresent | entLeaf | uint64(flags)<<flagShift | uint64(f+extent.PFN(j))<<pfnShift
		}
		node.used += int(n)
		t.mapped += n
		va += VA(n * extent.PageSize)
		f += extent.PFN(n)
		count -= n
	}
	return nil
}

// MappedRun reports how many consecutive 4 KB pages starting at va, up
// to limit, share va's mapped/unmapped state, and what that state is. A
// mapped run never extends past the leaf that maps va; an unmapped run
// extends to the end of the absent entry's span. Callers iterate it to
// partition a range into per-leaf runs in O(runs) instead of probing
// every page — the batched populate, unmap, and access paths all build
// on it.
func (t *Table) MappedRun(va VA, limit uint64) (n uint64, mapped bool) {
	node := t.root
	for level := 3; level >= 0; level-- {
		i := index(va, level)
		e := node.ents[i]
		span := pagesAtLevel[level]
		if level == 0 && e&entPresent == 0 {
			// A hole inside an existing PT node: extend across consecutive
			// absent entries so sparse populates batch whole gaps. (Mapped
			// runs must not be extended this way — frames are only known
			// contiguous within a single leaf.)
			run := uint64(1)
			max := uint64(512 - i)
			if max > limit {
				max = limit
			}
			for run < max && node.ents[i+int(run)]&entPresent == 0 {
				run++
			}
			return run, false
		}
		if e&entPresent == 0 || e&entLeaf != 0 {
			run := span - va.Page()%span
			if run > limit {
				run = limit
			}
			return run, e&entPresent != 0
		}
		node = node.child(i)
	}
	panic("pagetable: PT entry without leaf bit") // unreachable: level-0 entries are always leaves
}

// set installs a leaf at the given level for va.
func (t *Table) set(va VA, leafLevel int, f extent.PFN, flags Flags) error {
	if err := t.guardShared(va, "map"); err != nil {
		return err
	}
	node := t.root
	for level := 3; level > leafLevel; level-- {
		i := index(va, level)
		e := node.ents[i]
		if e&entPresent == 0 {
			child := &table{}
			t.tables++
			node.setChild(i, child)
			node.ents[i] = entPresent
			node.used++
			node = child
			continue
		}
		if e&entLeaf != 0 {
			return fmt.Errorf("pagetable: %#x already mapped by a level-%d leaf", uint64(va), level)
		}
		node = node.child(i)
	}
	i := index(va, leafLevel)
	if node.ents[i]&entPresent != 0 {
		return fmt.Errorf("pagetable: %#x already mapped", uint64(va))
	}
	node.ents[i] = entPresent | entLeaf | uint64(flags)<<flagShift | uint64(f)<<pfnShift
	node.used++
	t.mapped += pagesAtLevel[leafLevel]
	return nil
}

// Walk resolves va to its backing 4 KB frame. It reports the frame, the
// mapping's flags, the size in bytes of the leaf that mapped it, and
// whether the address is mapped at all.
func (t *Table) Walk(va VA) (f extent.PFN, flags Flags, leafBytes uint64, ok bool) {
	node := t.root
	for level := 3; level >= 0; level-- {
		i := index(va, level)
		e := node.ents[i]
		if e&entPresent == 0 {
			return 0, 0, 0, false
		}
		if e&entLeaf != 0 {
			base := extent.PFN(e >> pfnShift)
			span := pagesAtLevel[level]
			within := va.Page() % span
			return base + extent.PFN(within), Flags(e >> flagShift & 0xf), span * extent.PageSize, true
		}
		node = node.child(i)
	}
	panic("pagetable: PT entry without leaf bit") // unreachable: level-0 entries are always leaves
}

// Translate resolves va to (frame, in-page offset). It is the hot path
// used by process-level memory access.
func (t *Table) Translate(va VA) (extent.PFN, uint64, error) {
	f, _, _, ok := t.Walk(va)
	if !ok {
		return 0, 0, fmt.Errorf("pagetable: fault at %#x", uint64(va))
	}
	return f, va.Offset(), nil
}

// ExtentsFor walks npages pages starting at va and returns the backing
// frames as an extent list — the serve side of the XEMEM protocol. Any
// hole in the range is an error.
func (t *Table) ExtentsFor(va VA, npages uint64) (extent.List, error) {
	if va.Offset() != 0 {
		return extent.List{}, fmt.Errorf("pagetable: unaligned walk at %#x", uint64(va))
	}
	var out extent.List
	for npages > 0 {
		f, _, leafBytes, ok := t.Walk(va)
		if !ok {
			return extent.List{}, fmt.Errorf("pagetable: hole at %#x during walk", uint64(va))
		}
		// Take the rest of this leaf (or the rest of the request).
		leafPages := leafBytes / extent.PageSize
		within := va.Page() % leafPages
		take := leafPages - within
		if take > npages {
			take = npages
		}
		out.Append(f, take)
		va += VA(take * extent.PageSize)
		npages -= take
	}
	return out, nil
}

// Unmap removes npages pages starting at va. Large-page leaves that are
// only partially covered are split first, as a kernel would. Unmapping an
// unmapped page is an error.
func (t *Table) Unmap(va VA, npages uint64) error {
	if va.Offset() != 0 {
		return fmt.Errorf("pagetable: unaligned unmap at %#x", uint64(va))
	}
	for npages > 0 {
		n, err := t.unmapOne(va, npages)
		if err != nil {
			return err
		}
		va += VA(n * extent.PageSize)
		npages -= n
	}
	return nil
}

// unmapOne removes the leaf covering va if it fits entirely within the
// remaining range; otherwise it splits the leaf and retries. It returns
// how many 4 KB pages were removed.
func (t *Table) unmapOne(va VA, npages uint64) (uint64, error) {
	if err := t.guardShared(va, "unmap"); err != nil {
		return 0, err
	}
	node := t.root
	// root → current, for interior-table GC. A fixed-size array: the walk
	// visits at most one node per level, and level-0 entries are always
	// leaves, so the chain never exceeds the root plus three children.
	// (Keeping this off the heap matters: unmapOne runs once per leaf of
	// every teardown and a growing slice made it allocation-bound.)
	var visited [4]*table
	visited[0] = node
	nv := 1
	for level := 3; level >= 0; level-- {
		i := index(va, level)
		e := node.ents[i]
		if e&entPresent == 0 {
			return 0, fmt.Errorf("pagetable: unmap of unmapped address %#x", uint64(va))
		}
		if e&entLeaf != 0 {
			span := pagesAtLevel[level]
			within := va.Page() % span
			if within != 0 || span > npages {
				// Partial coverage: split this leaf into 512 children one
				// level down and descend.
				t.split(node, i, level)
				node = node.child(i)
				visited[nv] = node
				nv++
				continue
			}
			node.ents[i] = 0
			node.used--
			if node.next != nil {
				node.next[i] = nil
			}
			t.mapped -= span
			t.garbageCollect(visited[:nv])
			return span, nil
		}
		node = node.child(i)
		visited[nv] = node
		nv++
	}
	return 0, fmt.Errorf("pagetable: walk fell through at %#x", uint64(va))
}

// split converts the large leaf at node.ents[i] (level >= 1) into a child
// table of 512 leaves one level down.
func (t *Table) split(node *table, i, level int) {
	e := node.ents[i]
	base := extent.PFN(e >> pfnShift)
	fl := uint64(e & flagMask)
	child := &table{}
	t.tables++
	childSpan := pagesAtLevel[level-1]
	for j := 0; j < 512; j++ {
		child.ents[j] = entPresent | entLeaf | fl | uint64(base+extent.PFN(uint64(j)*childSpan))<<pfnShift
	}
	child.used = 512
	node.setChild(i, child)
	node.ents[i] = entPresent // interior entry now
}

// garbageCollect frees interior tables emptied by an unmap, walking the
// visited chain (root first) bottom-up. The root is never freed.
func (t *Table) garbageCollect(visited []*table) {
	for i := len(visited) - 1; i > 0; i-- {
		n := visited[i]
		if n.used > 0 {
			return
		}
		parent := visited[i-1]
		for j := 0; j < 512; j++ {
			if parent.child(j) == n {
				parent.ents[j] = 0
				parent.next[j] = nil
				parent.used--
				t.tables--
				break
			}
		}
	}
}

// Protect rewrites the flags of npages mapped pages starting at va,
// splitting large pages at the boundaries when necessary. This supports
// the page-protection semantics fullweight enclaves need (§3.3).
func (t *Table) Protect(va VA, npages uint64, flags Flags) error {
	if va.Offset() != 0 {
		return fmt.Errorf("pagetable: unaligned protect at %#x", uint64(va))
	}
	for npages > 0 {
		n, err := t.protectOne(va, npages, flags)
		if err != nil {
			return err
		}
		va += VA(n * extent.PageSize)
		npages -= n
	}
	return nil
}

func (t *Table) protectOne(va VA, npages uint64, flags Flags) (uint64, error) {
	if err := t.guardShared(va, "protect"); err != nil {
		return 0, err
	}
	node := t.root
	for level := 3; level >= 0; level-- {
		i := index(va, level)
		e := node.ents[i]
		if e&entPresent == 0 {
			return 0, fmt.Errorf("pagetable: protect of unmapped address %#x", uint64(va))
		}
		if e&entLeaf != 0 {
			span := pagesAtLevel[level]
			within := va.Page() % span
			if within != 0 || span > npages {
				t.split(node, i, level)
				node = node.child(i)
				continue
			}
			node.ents[i] = e&^uint64(flagMask) | uint64(flags)<<flagShift
			return span, nil
		}
		node = node.child(i)
	}
	return 0, fmt.Errorf("pagetable: protect fell through at %#x", uint64(va))
}
