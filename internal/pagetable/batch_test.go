package pagetable

import (
	"testing"

	"xemem/internal/extent"
)

// TestMapRunMatchesPerPageMap: MapRun must install exactly the state that
// the equivalent sequence of per-page Map calls would.
func TestMapRunMatchesPerPageMap(t *testing.T) {
	runs := []struct {
		va    VA
		f     extent.PFN
		count uint64
	}{
		{0x1000, 0x200, 3},
		{VA(510 * extent.PageSize), 0x900, 700},            // crosses a PT-node boundary
		{VA(3 * 512 * 512 * extent.PageSize), 0x5000, 600}, // crosses a 1 GB boundary
	}
	batched, perPage := New(), New()
	for _, r := range runs {
		if err := batched.MapRun(r.va, r.f, r.count, Read|Write); err != nil {
			t.Fatalf("MapRun(%#x): %v", uint64(r.va), err)
		}
		for i := uint64(0); i < r.count; i++ {
			if err := perPage.Map(r.va+VA(i*extent.PageSize), r.f+extent.PFN(i), Read|Write); err != nil {
				t.Fatalf("Map(%#x): %v", uint64(r.va)+i*extent.PageSize, err)
			}
		}
	}
	if batched.Mapped() != perPage.Mapped() {
		t.Fatalf("mapped: batched %d, per-page %d", batched.Mapped(), perPage.Mapped())
	}
	if batched.Tables() != perPage.Tables() {
		t.Fatalf("tables: batched %d, per-page %d", batched.Tables(), perPage.Tables())
	}
	for _, r := range runs {
		for i := uint64(0); i < r.count; i++ {
			va := r.va + VA(i*extent.PageSize)
			bf, bfl, bl, bok := batched.Walk(va)
			pf, pfl, pl, pok := perPage.Walk(va)
			if bf != pf || bfl != pfl || bl != pl || bok != pok {
				t.Fatalf("walk(%#x): batched (%#x,%v,%d,%v) per-page (%#x,%v,%d,%v)",
					uint64(va), uint64(bf), bfl, bl, bok, uint64(pf), pfl, pl, pok)
			}
		}
	}
}

// TestMapRunConflict: mapping over an existing page fails, and the pages
// installed before the conflict stay mapped with correct bookkeeping (the
// caller — proc's populate path — never retries into the same range).
func TestMapRunConflict(t *testing.T) {
	pt := New()
	if err := pt.Map(VA(5*extent.PageSize), 0x999, Read); err != nil {
		t.Fatal(err)
	}
	if err := pt.MapRun(0, 0x100, 10, Read); err == nil {
		t.Fatal("MapRun over a mapped page should fail")
	}
	// Pages 0-4 installed, page 5 untouched (the pre-existing mapping).
	for i := uint64(0); i < 5; i++ {
		f, _, _, ok := pt.Walk(VA(i * extent.PageSize))
		if !ok || f != extent.PFN(0x100+i) {
			t.Fatalf("page %d → %#x ok=%v", i, uint64(f), ok)
		}
	}
	if f, _, _, _ := pt.Walk(VA(5 * extent.PageSize)); f != 0x999 {
		t.Fatalf("conflicting page overwritten: %#x", uint64(f))
	}
	if pt.Mapped() != 6 {
		t.Fatalf("mapped = %d, want 6", pt.Mapped())
	}
	// Bookkeeping must be consistent: a full unmap of what is mapped
	// releases every interior table.
	for i := uint64(0); i < 6; i++ {
		if err := pt.Unmap(VA(i*extent.PageSize), 1); err != nil {
			t.Fatalf("unmap page %d: %v", i, err)
		}
	}
	if pt.Mapped() != 0 || pt.Tables() != 1 {
		t.Fatalf("after unmap: mapped=%d tables=%d", pt.Mapped(), pt.Tables())
	}
}

// TestMapRunLargeLeafConflict: a run colliding with a 2 MB leaf reports
// the large-page conflict rather than silently splitting it.
func TestMapRunLargeLeafConflict(t *testing.T) {
	pt := New()
	l := extent.FromExtents(extent.Extent{First: 512, Count: 512})
	if err := pt.MapList(VA(512*extent.PageSize), l, Read); err != nil {
		t.Fatal(err)
	}
	if err := pt.MapRun(VA(512*extent.PageSize), 0x100, 1, Read); err == nil {
		t.Fatal("MapRun into a 2MB leaf should fail")
	}
}

// TestMappedRunSpans checks run partitioning: leaf-granular mapped runs,
// hole runs that span absent subtrees or consecutive absent PT entries,
// always clamped to the limit.
func TestMappedRunSpans(t *testing.T) {
	pt := New()
	// Empty table: the hole at va 0 spans the whole absent 512 GB subtree,
	// clamped to limit.
	if n, mapped := pt.MappedRun(0, 100); n != 100 || mapped {
		t.Fatalf("empty table run = (%d,%v)", n, mapped)
	}

	// 2 MB leaf at 2 MB, then 4 KB pages at 4 MB..4 MB+3p with a hole after.
	l := extent.FromExtents(extent.Extent{First: 512, Count: 512})
	if err := pt.MapList(VA(2<<20), l, Read); err != nil {
		t.Fatal(err)
	}
	if err := pt.MapRun(VA(4<<20), 0x2000, 3, Read); err != nil {
		t.Fatal(err)
	}

	// Inside the 2 MB leaf: mapped run extends to the leaf end.
	if n, mapped := pt.MappedRun(VA(2<<20), 1000); n != 512 || !mapped {
		t.Fatalf("2MB leaf run = (%d,%v), want (512,true)", n, mapped)
	}
	if n, mapped := pt.MappedRun(VA(2<<20)+VA(100*extent.PageSize), 1000); n != 412 || !mapped {
		t.Fatalf("mid-leaf run = (%d,%v), want (412,true)", n, mapped)
	}
	// Clamp wins when smaller.
	if n, mapped := pt.MappedRun(VA(2<<20), 7); n != 7 || !mapped {
		t.Fatalf("clamped leaf run = (%d,%v)", n, mapped)
	}
	// The three 4 KB pages: one leaf per run.
	if n, mapped := pt.MappedRun(VA(4<<20), 100); n != 1 || !mapped {
		t.Fatalf("4KB leaf run = (%d,%v), want (1,true)", n, mapped)
	}
	// The hole after them sits inside an existing PT node: the run extends
	// across the remaining absent entries of that node (512-3), clamped.
	if n, mapped := pt.MappedRun(VA(4<<20)+VA(3*extent.PageSize), 10000); n != 509 || mapped {
		t.Fatalf("intra-node hole run = (%d,%v), want (509,false)", n, mapped)
	}
	if n, mapped := pt.MappedRun(VA(4<<20)+VA(3*extent.PageSize), 5); n != 5 || mapped {
		t.Fatalf("clamped hole run = (%d,%v)", n, mapped)
	}
	// A hole between mapped 4 KB entries stops at the next present entry.
	if err := pt.Map(VA(4<<20)+VA(9*extent.PageSize), 0x3000, Read); err != nil {
		t.Fatal(err)
	}
	if n, mapped := pt.MappedRun(VA(4<<20)+VA(3*extent.PageSize), 10000); n != 6 || mapped {
		t.Fatalf("bounded hole run = (%d,%v), want (6,false)", n, mapped)
	}
	// 3 MB is in the middle of the 2 MB leaf (it covers 2..4 MB).
	if n, mapped := pt.MappedRun(VA(3<<20), 10000); n != 256 || !mapped {
		t.Fatalf("mid-2MB-leaf run = (%d,%v), want (256,true)", n, mapped)
	}
	// The hole at 6 MB (absent level-1 subtree under a present level-2
	// node): span is that whole missing 2 MB region.
	if n, mapped := pt.MappedRun(VA(6<<20), 10000); n != 512 || mapped {
		t.Fatalf("absent-subtree hole run = (%d,%v), want (512,false)", n, mapped)
	}

	// Walking a range by MappedRun covers it exactly: total pages add up.
	var total, mappedPages uint64
	for va, limit := VA(2<<20), uint64(1024); limit > 0; {
		n, mapped := pt.MappedRun(va, limit)
		if n == 0 || n > limit {
			t.Fatalf("bad run length %d (limit %d)", n, limit)
		}
		total += n
		if mapped {
			mappedPages += n
		}
		va += VA(n * extent.PageSize)
		limit -= n
	}
	if total != 1024 || mappedPages != 512+3+1 {
		t.Fatalf("coverage: total=%d mapped=%d", total, mappedPages)
	}
}
