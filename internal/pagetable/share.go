package pagetable

import "fmt"

// Top-level (PML4) slot sharing is the mechanism behind SMARTMAP
// (Brightwell et al., SC'08), Kitten's local-process sharing facility:
// process A's PML4 slot k is pointed at the subtree under process B's
// slot 0, giving A a live, zero-copy window onto B's entire address space
// at virtual offset k<<39.
//
// A shared slot is a borrowed subtree: the borrower must never mutate it.
// Map, Unmap, and Protect reject addresses under shared slots.

// SlotOf reports the top-level slot index covering va.
func SlotOf(va VA) int { return index(va, 3) }

// SlotBase reports the first virtual address of top-level slot s.
func SlotBase(s int) VA { return VA(uint64(s) << 39) }

// ShareSlot points this table's top-level slot dstSlot at the subtree
// under src's top-level slot srcSlot. The source slot must be populated
// (an interior table, not a huge leaf) and the destination slot empty.
func (t *Table) ShareSlot(dstSlot int, src *Table, srcSlot int) error {
	if dstSlot < 0 || dstSlot > 511 || srcSlot < 0 || srcSlot > 511 {
		return fmt.Errorf("pagetable: slot out of range")
	}
	se := src.root.ents[srcSlot]
	if se&entPresent == 0 || se&entLeaf != 0 {
		return fmt.Errorf("pagetable: source slot %d has no shareable subtree", srcSlot)
	}
	if t.root.ents[dstSlot]&entPresent != 0 {
		return fmt.Errorf("pagetable: destination slot %d already in use", dstSlot)
	}
	t.root.ents[dstSlot] = entPresent
	t.root.setChild(dstSlot, src.root.child(srcSlot))
	t.root.used++
	if t.shared == nil {
		t.shared = make(map[int]bool)
	}
	t.shared[dstSlot] = true
	return nil
}

// UnshareSlot detaches a previously shared top-level slot. The borrowed
// subtree is untouched — it still belongs to the source table.
func (t *Table) UnshareSlot(dstSlot int) error {
	if !t.shared[dstSlot] {
		return fmt.Errorf("pagetable: slot %d is not shared", dstSlot)
	}
	t.root.ents[dstSlot] = 0
	t.root.next[dstSlot] = nil
	t.root.used--
	delete(t.shared, dstSlot)
	return nil
}

// SharedSlot reports whether top-level slot s is a borrowed subtree.
func (t *Table) SharedSlot(s int) bool { return t.shared[s] }

// guardShared rejects mutation under a shared slot.
func (t *Table) guardShared(va VA, op string) error {
	if t.shared[SlotOf(va)] {
		return fmt.Errorf("pagetable: %s at %#x would mutate a shared (SMARTMAP) slot", op, uint64(va))
	}
	return nil
}
