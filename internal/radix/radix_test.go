package radix

import (
	"testing"
	"testing/quick"
)

func TestInsertLookupDelete(t *testing.T) {
	m := New()
	if _, err := m.Insert(0x12345, 0x999); err != nil {
		t.Fatal(err)
	}
	h, _, ok := m.Lookup(0x12345)
	if !ok || h != 0x999 {
		t.Fatalf("lookup = %#x ok=%v", h, ok)
	}
	if _, _, ok := m.Lookup(0x12346); ok {
		t.Fatal("unmapped frame resolved")
	}
	if m.Size() != 1 {
		t.Fatalf("size = %d", m.Size())
	}
	if _, err := m.Delete(0x12345); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := m.Lookup(0x12345); ok {
		t.Fatal("deleted frame resolves")
	}
	if m.Size() != 0 {
		t.Fatalf("size = %d", m.Size())
	}
}

func TestDoubleInsertRejected(t *testing.T) {
	m := New()
	m.Insert(5, 10)
	if _, err := m.Insert(5, 11); err == nil {
		t.Fatal("double insert accepted")
	}
}

func TestDeleteMissingRejected(t *testing.T) {
	m := New()
	if _, err := m.Delete(42); err != nil {
		// good: missing frame with no interior path
	} else {
		t.Fatal("delete of missing frame accepted")
	}
	m.Insert(42, 1)
	if _, err := m.Delete(43); err == nil {
		t.Fatal("delete of sibling frame accepted")
	}
}

func TestZeroHostFrameRepresentable(t *testing.T) {
	// Host frame 0 must round-trip (it is stored biased internally).
	m := New()
	if _, err := m.Insert(7, 0); err != nil {
		t.Fatal(err)
	}
	h, _, ok := m.Lookup(7)
	if !ok || h != 0 {
		t.Fatalf("lookup = %d ok=%v", h, ok)
	}
}

func TestConstantDepth(t *testing.T) {
	// The whole point of the radix map: visits do not grow with size.
	m := New()
	first, _ := m.Insert(0, 0)
	for i := uint64(1); i < 100000; i++ {
		m.Insert(i, i)
	}
	last, err := m.Insert(1<<35, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Visits != last.Visits {
		t.Fatalf("visits changed with size: %d vs %d", first.Visits, last.Visits)
	}
	if last.Visits != 4 {
		t.Fatalf("visits = %d, want 4 levels", last.Visits)
	}
}

func TestPruneOnDelete(t *testing.T) {
	m := New()
	m.Insert(1<<30, 5)
	if _, err := m.Delete(1 << 30); err != nil {
		t.Fatal(err)
	}
	// The interior path should be pruned: a fresh lookup must stop early.
	_, st, ok := m.Lookup(1 << 30)
	if ok {
		t.Fatal("deleted frame resolves")
	}
	if st.Visits >= 4 {
		t.Fatalf("interior nodes not pruned: lookup visited %d", st.Visits)
	}
}

// Property: radix map behaves exactly like a Go map under arbitrary
// insert/delete/lookup interleavings.
func TestRadixMatchesMapProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(ops []uint32) bool {
		m := New()
		ref := map[uint64]uint64{}
		for _, op := range ops {
			g := uint64(op % 4099)
			switch op % 3 {
			case 0:
				_, err := m.Insert(g, uint64(op))
				_, exists := ref[g]
				if exists != (err != nil) {
					return false
				}
				if err == nil {
					ref[g] = uint64(op)
				}
			case 1:
				_, err := m.Delete(g)
				_, exists := ref[g]
				if exists != (err == nil) {
					return false
				}
				delete(ref, g)
			case 2:
				h, _, ok := m.Lookup(g)
				want, exists := ref[g]
				if ok != exists || (ok && h != want) {
					return false
				}
			}
		}
		return m.Size() == len(ref)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
