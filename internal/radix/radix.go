// Package radix implements the radix-tree guest memory map the paper
// proposes as future work to replace Palacios' red-black tree (§5.4):
// a structure that "can more appropriately mimic a page table's
// organization".
//
// The map is a 4-level, 512-way radix over guest frame numbers, exactly
// the shape of a hardware page table: insertion and lookup visit a fixed
// four levels regardless of how many frames are mapped, so per-page insert
// cost does not grow with attachment size the way rb-tree rebalancing
// does. The ablation benchmark compares the two under the Table 2
// workload.
package radix

import "fmt"

// OpStats reports the work one operation performed, in node visits (there
// are no rotations in a radix tree).
type OpStats struct {
	Visits int
}

const (
	fanoutBits = 9
	fanout     = 1 << fanoutBits
	levels     = 4
)

type node struct {
	children []*node  // interior nodes
	vals     []uint64 // leaf level: host frame + 1 (0 = unmapped)
	used     int
}

// Map is a guest-frame → host-frame radix map. The zero value is not
// usable; call New.
type Map struct {
	root *node
	size int // mapped frames
}

// New returns an empty map.
func New() *Map { return &Map{root: &node{children: make([]*node, fanout)}} }

// Size reports the number of mapped frames.
func (m *Map) Size() int { return m.size }

func idx(key uint64, level int) int {
	return int(key >> (fanoutBits * level) & (fanout - 1))
}

// Insert maps guest frame g to host frame h.
func (m *Map) Insert(g, h uint64) (OpStats, error) {
	var st OpStats
	n := m.root
	for level := levels - 1; level > 0; level-- {
		st.Visits++
		i := idx(g, level)
		child := n.children[i]
		if child == nil {
			if level == 1 {
				child = &node{vals: make([]uint64, fanout)}
			} else {
				child = &node{children: make([]*node, fanout)}
			}
			n.children[i] = child
			n.used++
		}
		n = child
	}
	st.Visits++
	i := idx(g, 0)
	if n.vals[i] != 0 {
		return st, fmt.Errorf("radix: guest frame %#x already mapped", g)
	}
	n.vals[i] = h + 1
	n.used++
	m.size++
	return st, nil
}

// Lookup translates guest frame g.
func (m *Map) Lookup(g uint64) (h uint64, st OpStats, ok bool) {
	n := m.root
	for level := levels - 1; level > 0; level-- {
		st.Visits++
		n = n.children[idx(g, level)]
		if n == nil {
			return 0, st, false
		}
	}
	st.Visits++
	v := n.vals[idx(g, 0)]
	if v == 0 {
		return 0, st, false
	}
	return v - 1, st, true
}

// Delete unmaps guest frame g, pruning emptied interior nodes.
func (m *Map) Delete(g uint64) (OpStats, error) {
	var st OpStats
	path := make([]*node, 0, levels)
	n := m.root
	for level := levels - 1; level > 0; level-- {
		st.Visits++
		path = append(path, n)
		n = n.children[idx(g, level)]
		if n == nil {
			return st, fmt.Errorf("radix: guest frame %#x not mapped", g)
		}
	}
	st.Visits++
	i := idx(g, 0)
	if n.vals[i] == 0 {
		return st, fmt.Errorf("radix: guest frame %#x not mapped", g)
	}
	n.vals[i] = 0
	n.used--
	m.size--
	// Prune empty nodes bottom-up.
	cur := n
	for level := 1; level < levels && cur.used == 0; level++ {
		parent := path[len(path)-level]
		parent.children[idx(g, level)] = nil
		parent.used--
		cur = parent
	}
	return st, nil
}
