package radix

import (
	"encoding/binary"
	"testing"
)

// The 4-level, 512-way radix covers guest frame numbers of 36 bits;
// fuzz keys are masked to that range (higher bits do not reach any
// level's index, exactly as in a hardware page-table walk).
const fuzzGFNMask = 1<<36 - 1

// FuzzOps drives the radix map with an arbitrary insert/delete/lookup
// stream, mirrors it in a flat map, and checks the page-table-shape
// invariants: every operation visits exactly `levels` nodes (constant
// depth is the whole point of the structure, §5.4), sizes agree, and
// lookups translate exactly as the model says.
func FuzzOps(f *testing.F) {
	f.Add([]byte("\x00AAAAAAAA\x02AAAAAAAA\x00AAAAAAAA\x01AAAAAAAA\x01AAAAAAAA"))
	f.Add([]byte{})
	seq := make([]byte, 0, 64*9)
	for i := byte(0); i < 64; i++ {
		rec := [9]byte{i % 3, i, i ^ 0xa5, 0, 0, 0, 0, 0, 0}
		seq = append(seq, rec[:]...)
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		m := New()
		model := make(map[uint64]uint64)
		for len(data) >= 9 {
			op := data[0] % 3
			g := binary.LittleEndian.Uint64(data[1:9]) & fuzzGFNMask
			data = data[9:]

			switch op {
			case 0: // insert
				h := g ^ 0xfeedface
				st, err := m.Insert(g, h)
				if _, exists := model[g]; (err != nil) != exists {
					t.Fatalf("Insert(%#x) err=%v, model has=%v", g, err, exists)
				}
				if st.Visits != levels {
					t.Fatalf("Insert(%#x) visited %d nodes, want constant %d", g, st.Visits, levels)
				}
				if err == nil {
					model[g] = h
				}
			case 1: // delete
				_, err := m.Delete(g)
				if _, exists := model[g]; (err == nil) != exists {
					t.Fatalf("Delete(%#x) err=%v, model has=%v", g, err, exists)
				}
				delete(model, g)
			case 2: // lookup
				h, st, ok := m.Lookup(g)
				want, exists := model[g]
				if ok != exists || (ok && h != want) {
					t.Fatalf("Lookup(%#x) = (%#x,%v), model (%#x,%v)", g, h, ok, want, exists)
				}
				if st.Visits > levels {
					t.Fatalf("Lookup(%#x) visited %d nodes, want ≤%d", g, st.Visits, levels)
				}
			}

			if m.Size() != len(model) {
				t.Fatalf("size %d, model %d", m.Size(), len(model))
			}
		}

		// Final sweep: every mapped frame still translates, and pruning
		// left no stale translation behind for a re-probed missing key.
		for g, h := range model {
			got, _, ok := m.Lookup(g)
			if !ok || got != h {
				t.Fatalf("final Lookup(%#x) = (%#x,%v), want (%#x,true)", g, got, ok, h)
			}
			probe := (g ^ 1) & fuzzGFNMask
			if _, exists := model[probe]; !exists {
				if _, _, ok := m.Lookup(probe); ok {
					t.Fatalf("Lookup(%#x) found a mapping the model does not have", probe)
				}
			}
		}
	})
}
