package xpmem_test

import (
	"testing"

	"xemem/internal/core"
	"xemem/internal/extent"
	"xemem/internal/linuxos"
	"xemem/internal/mem"
	"xemem/internal/pisces"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/xpmem"
)

// cacheNode is a two-enclave topology — Linux management enclave with the
// name server plus one Kitten co-kernel — so attaches cross enclaves and
// exercise the owner-side serve path where the frame-list cache lives.
// (Single-enclave attaches use SMARTMAP / local mappings and never reach
// serveAttach; see xpmem_test.go.)
type cacheNode struct {
	w       *sim.World
	pm      *mem.PhysMem
	ck      *pisces.CoKernel
	expSess *xpmem.Session // Kitten exporter process session
	attSess *xpmem.Session // Linux attacher process session
	heap    *proc.Region
}

func newCacheNode(t *testing.T) *cacheNode {
	t.Helper()
	w := sim.NewWorld(42)
	costs := sim.DefaultCosts()
	pm := mem.NewPhysMem("node0", 1<<30)
	linux := linuxos.New("linux", w, costs, pm.Zone(0), proc.HostDomain{Mem: pm}, 4)
	lmod := core.New("linux", w, costs, linux, true)
	lmod.Start()
	ck, err := pisces.CreateCoKernel("kitten0", w, costs, pm, linux.Zone(), 64<<20, lmod)
	if err != nil {
		t.Fatal(err)
	}
	kp, heap, err := ck.OS.NewProcess("exporter", 256)
	if err != nil {
		t.Fatal(err)
	}
	lp := linux.NewProcess("attacher", 1)
	return &cacheNode{
		w:       w,
		pm:      pm,
		ck:      ck,
		expSess: xpmem.NewSession(ck.Module, kp),
		attSess: xpmem.NewSession(lmod, lp),
		heap:    heap,
	}
}

// stats reads the owner-side (exporter enclave) frame-cache counters.
func (n *cacheNode) stats() sim.CacheStats { return n.expSess.FrameCacheStats() }

// TestFrameCacheHitMissDetach covers the cache lifecycle on the serve
// path: first attach of a window misses and fills, a repeat attach of the
// same window hits (and is served zero-copy — both mappings alias the same
// host frames), and a detach invalidates so the next attach misses again.
func TestFrameCacheHitMissDetach(t *testing.T) {
	n := newCacheNode(t)
	const bytes = 16 * extent.PageSize
	n.w.Spawn("driver", func(a *sim.Actor) {
		segid, err := n.expSess.Make(a, n.heap.Base, bytes, xpmem.PermRead|xpmem.PermWrite, "")
		if err != nil {
			t.Error(err)
			return
		}
		apid, err := n.attSess.Get(a, segid, xpmem.PermRead|xpmem.PermWrite)
		if err != nil {
			t.Error(err)
			return
		}

		va1, err := n.attSess.Attach(a, segid, apid, 0, bytes, xpmem.PermRead|xpmem.PermWrite)
		if err != nil {
			t.Error(err)
			return
		}
		if s := n.stats(); s.Misses != 1 || s.Hits != 0 {
			t.Errorf("after first attach: %+v, want 1 miss 0 hits", s)
		}

		// Same window again, without detaching the first: a cache hit.
		va2, err := n.attSess.Attach(a, segid, apid, 0, bytes, xpmem.PermRead|xpmem.PermWrite)
		if err != nil {
			t.Error(err)
			return
		}
		if s := n.stats(); s.Misses != 1 || s.Hits != 1 {
			t.Errorf("after repeat attach: %+v, want 1 miss 1 hit", s)
		}

		// Zero-copy through the cached mapping: the exporter's bytes are
		// visible via the cache-served attachment, and a write through it
		// lands in the exporter's pages.
		if _, err := n.expSess.Write(n.heap.Base+5, []byte("served from cache")); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, 17)
		if _, err := n.attSess.Read(va2+5, got); err != nil {
			t.Error(err)
			return
		}
		if string(got) != "served from cache" {
			t.Errorf("cached attach reads %q", got)
		}
		if _, err := n.attSess.Write(va2+extent.PageSize, []byte("written back")); err != nil {
			t.Error(err)
			return
		}
		back := make([]byte, 12)
		if _, err := n.expSess.Read(n.heap.Base+extent.PageSize, back); err != nil {
			t.Error(err)
			return
		}
		if string(back) != "written back" {
			t.Errorf("exporter sees %q through cached attach", back)
		}

		// A different window is a different key: miss, not hit.
		va3, err := n.attSess.Attach(a, segid, apid, 4*extent.PageSize, 4*extent.PageSize, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		if s := n.stats(); s.Misses != 2 || s.Hits != 1 {
			t.Errorf("after sub-window attach: %+v, want 2 misses 1 hit", s)
		}
		// Detach invalidates the segment's cached lists (the owner released
		// pins; the lists may no longer be safe to reuse). The first detach
		// notification wipes every window cached for the segid; the later
		// ones find the cache already empty and do not bump the counter.
		if err := n.attSess.Detach(a, va3); err != nil {
			t.Error(err)
			return
		}
		a.Poll(5*sim.Microsecond, func() bool { return n.stats().Invalidations >= 1 })
		if err := n.attSess.Detach(a, va2); err != nil {
			t.Error(err)
			return
		}
		if err := n.attSess.Detach(a, va1); err != nil {
			t.Error(err)
			return
		}
		f, _ := n.heap.Backing.Page(0)
		a.Poll(5*sim.Microsecond, func() bool { return n.pm.Pinned(f) == 0 })
		if s := n.stats(); s.Invalidations != 1 {
			t.Errorf("invalidations = %d, want 1 (later detaches found an empty cache)", s.Invalidations)
		}

		// Next attach of the original window must re-walk: a fresh miss.
		va4, err := n.attSess.Attach(a, segid, apid, 0, bytes, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		if s := n.stats(); s.Misses != 3 || s.Hits != 1 {
			t.Errorf("after post-detach attach: %+v, want 3 misses 1 hit", s)
		}
		if err := n.attSess.Detach(a, va4); err != nil {
			t.Error(err)
		}
	})
	if err := n.w.Run(); err != nil {
		t.Fatal(err)
	}
	if s := n.stats(); s.HitRate() <= 0 || s.HitRate() >= 1 {
		t.Fatalf("hit rate = %v, want in (0,1)", s.HitRate())
	}
}

// TestFrameCacheInvalidationOnReExport: removing a segment invalidates its
// cached frame lists, and a re-export of the same range gets a new segid
// whose first attach is a miss — a stale list can never be served.
func TestFrameCacheInvalidationOnReExport(t *testing.T) {
	n := newCacheNode(t)
	const bytes = 8 * extent.PageSize
	n.w.Spawn("driver", func(a *sim.Actor) {
		segid, err := n.expSess.Make(a, n.heap.Base, bytes, xpmem.PermRead|xpmem.PermWrite, "")
		if err != nil {
			t.Error(err)
			return
		}
		apid, err := n.attSess.Get(a, segid, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		va, err := n.attSess.Attach(a, segid, apid, 0, bytes, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		if err := n.attSess.Detach(a, va); err != nil {
			t.Error(err)
			return
		}
		f, _ := n.heap.Backing.Page(0)
		a.Poll(5*sim.Microsecond, func() bool { return n.pm.Pinned(f) == 0 })

		before := n.stats()
		if err := n.expSess.Remove(a, segid); err != nil {
			t.Error(err)
			return
		}
		// The detach already dropped the entries; Remove on an empty cache
		// must not bump the invalidation counter again.
		if s := n.stats(); s.Invalidations != before.Invalidations {
			t.Errorf("remove of uncached segment bumped invalidations: %+v", s)
		}

		// Re-export the same range and attach while the cache holds an
		// entry, then remove: this invalidation must count.
		segid2, err := n.expSess.Make(a, n.heap.Base, bytes, xpmem.PermRead|xpmem.PermWrite, "")
		if err != nil {
			t.Error(err)
			return
		}
		if segid2 == segid {
			t.Error("re-export reused the removed segid")
		}
		apid2, err := n.attSess.Get(a, segid2, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := n.attSess.Attach(a, segid2, apid2, 0, bytes, xpmem.PermRead); err != nil {
			t.Error(err)
			return
		}
		if s := n.stats(); s.Misses != 2 || s.Hits != 0 {
			t.Errorf("re-exported segment attach: %+v, want 2 misses 0 hits", s)
		}
		pre := n.stats().Invalidations
		if err := n.expSess.Remove(a, segid2); err != nil {
			t.Error(err)
			return
		}
		if s := n.stats(); s.Invalidations != pre+1 {
			t.Errorf("remove with cached entry: invalidations %d, want %d", s.Invalidations, pre+1)
		}
	})
	if err := n.w.Run(); err != nil {
		t.Fatal(err)
	}
}
