package xpmem_test

import (
	"errors"
	"testing"

	"xemem"
	"xemem/internal/core"
	"xemem/internal/sim"
	"xemem/internal/xpmem"
)

// TestTypedErrorLifecycle is the regression test for the handle-misuse
// bugs the typed-error redesign fixed: double Release, double Detach,
// and Detach of an address that was never attached must each fail with
// a stable sentinel — matchable via errors.Is through the public API,
// never by string comparison — both for local grants and across the
// cross-enclave protocol.
func TestTypedErrorLifecycle(t *testing.T) {
	node := xemem.NewNode(xemem.NodeConfig{Seed: 21, MemBytes: 2 << 30})
	ck, err := node.BootCoKernel("lwk", 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	exp, heap, err := node.KittenProcess(ck, "exp", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	att, attProc := node.LinuxProcess("att", 1)
	local, localProc := node.LinuxProcess("local", 2)
	region, err := xemem.AllocLinux(node.Linux(), localProc, "buf", 16<<12, true)
	if err != nil {
		t.Fatal(err)
	}
	_ = attProc

	node.Spawn("lifecycle", func(a *sim.Actor) {
		// Remote path: co-kernel export, Linux attacher.
		segid, err := exp.Make(a, heap.Base, 16<<12, xpmem.PermRead, "err-lifecycle")
		if err != nil {
			t.Error(err)
			return
		}
		apid, err := att.Get(a, segid, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		va, err := att.Attach(a, segid, apid, 0, 16<<12, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}

		// Detach of an address never attached: typed, with the VA
		// recoverable from the OpError.
		bogus := va + (1 << 40)
		err = att.Detach(a, bogus)
		if !errors.Is(err, xpmem.ErrNotAttached) {
			t.Errorf("Detach(never-attached) = %v, want ErrNotAttached", err)
		}
		var op *core.OpError
		if !errors.As(err, &op) || op.VA != bogus || op.Op != "detach" {
			t.Errorf("Detach(never-attached) OpError = %+v, want op=detach va=%#x", op, bogus)
		}

		// Double Detach: first succeeds, second is deterministic
		// ErrNotAttached (the region is gone, not dangling).
		if err := att.Detach(a, va); err != nil {
			t.Errorf("first Detach = %v", err)
		}
		if err := att.Detach(a, va); !errors.Is(err, xpmem.ErrNotAttached) {
			t.Errorf("second Detach = %v, want ErrNotAttached", err)
		}

		// Double Release of the remote grant: first succeeds, second
		// fails typed with the segid/apid recoverable.
		if err := att.Release(a, segid, apid); err != nil {
			t.Errorf("first Release = %v", err)
		}
		err = att.Release(a, segid, apid)
		if !errors.Is(err, xpmem.ErrNoSuchApid) {
			t.Errorf("second Release = %v, want ErrNoSuchApid", err)
		}
		if !errors.As(err, &op) || op.Segid != segid || op.Apid != apid {
			t.Errorf("second Release OpError = %+v, want segid=%d apid=%d", op, segid, apid)
		}

		// Releasing an apid that was never granted.
		if err := att.Release(a, segid, apid+999); !errors.Is(err, xpmem.ErrNoSuchApid) {
			t.Errorf("Release(never-granted) = %v, want ErrNoSuchApid", err)
		}

		// Local path: same sentinels, same determinism, no protocol hop.
		lsegid, err := local.Make(a, region.Base, 16<<12, xpmem.PermRead|xpmem.PermWrite, "")
		if err != nil {
			t.Error(err)
			return
		}
		lapid, err := local.Get(a, lsegid, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		if err := local.Release(a, lsegid, lapid); err != nil {
			t.Errorf("local Release = %v", err)
		}
		if err := local.Release(a, lsegid, lapid); !errors.Is(err, xpmem.ErrNoSuchApid) {
			t.Errorf("local double Release = %v, want ErrNoSuchApid", err)
		}
		// A foreign process releasing someone else's grant: permission,
		// not existence — the apid is real, the caller just doesn't own it.
		lapid2, err := local.Get(a, lsegid, xpmem.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		foreign := xpmem.NewSession(node.LinuxModule(), attProc)
		if err := foreign.Release(a, lsegid, lapid2); !errors.Is(err, xpmem.ErrPermission) {
			t.Errorf("foreign Release = %v, want ErrPermission", err)
		}
		if err := local.Release(a, lsegid, lapid2); err != nil {
			t.Errorf("owner Release after foreign attempt = %v", err)
		}
	})
	if err := node.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestErrorSentinelsDistinct guards the errors.Is contract: the
// re-exported sentinels are the core ones (no wrapping drift) and are
// pairwise distinct, so matching one can never accidentally match
// another.
func TestErrorSentinelsDistinct(t *testing.T) {
	sentinels := map[string]error{
		"ErrNoSuchSegid": xpmem.ErrNoSuchSegid,
		"ErrNoSuchApid":  xpmem.ErrNoSuchApid,
		"ErrPermission":  xpmem.ErrPermission,
		"ErrEnclaveDown": xpmem.ErrEnclaveDown,
		"ErrTimeout":     xpmem.ErrTimeout,
		"ErrNotAttached": xpmem.ErrNotAttached,
		"ErrBadRange":    xpmem.ErrBadRange,
	}
	for na, ea := range sentinels {
		for nb, eb := range sentinels {
			if na != nb && errors.Is(ea, eb) {
				t.Errorf("%s matches %s", na, nb)
			}
		}
	}
	if !errors.Is(xpmem.ErrNoSuchSegid, core.ErrNoSuchSegid) {
		t.Error("xpmem re-export is not the core sentinel")
	}
}
