package xpmem_test

import (
	"testing"

	"xemem/internal/core"
	"xemem/internal/extent"
	"xemem/internal/linuxos"
	"xemem/internal/mem"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/xpmem"
)

// TestTable1APISurface exercises every Table 1 operation through the
// Session veneer — the backwards-compatibility artifact of §4.1 — within
// one enclave (the protocol paths are covered by the core and palacios
// integration tests).
func TestTable1APISurface(t *testing.T) {
	w := sim.NewWorld(1)
	costs := sim.DefaultCosts()
	pm := mem.NewPhysMem("node", 1<<30)
	l := linuxos.New("linux", w, costs, pm.Zone(0), proc.HostDomain{Mem: pm}, 2)
	m := core.New("linux", w, costs, l, true)
	m.Start()

	expProc := l.NewProcess("exporter", 1)
	attProc := l.NewProcess("attacher", 1)
	exp := xpmem.NewSession(m, expProc)
	att := xpmem.NewSession(m, attProc)

	if exp.Process() != expProc || exp.Module() != m {
		t.Fatal("session accessors broken")
	}

	region, err := l.Alloc(expProc, "buf", 16, true)
	if err != nil {
		t.Fatal(err)
	}

	w.Spawn("api", func(a *sim.Actor) {
		// xpmem_make + name publication.
		segid, err := exp.Make(a, region.Base, 16*extent.PageSize, xpmem.PermRead|xpmem.PermWrite, "table1")
		if err != nil {
			t.Error(err)
			return
		}
		// Discovery.
		found, err := att.Lookup(a, "table1")
		if err != nil || found != segid {
			t.Errorf("lookup = %d, %v", found, err)
			return
		}
		// xpmem_get.
		apid, err := att.Get(a, segid, xpmem.PermRead|xpmem.PermWrite)
		if err != nil {
			t.Error(err)
			return
		}
		// xpmem_attach with an offset.
		va, err := att.Attach(a, segid, apid, 4*extent.PageSize, 4*extent.PageSize, xpmem.PermRead|xpmem.PermWrite)
		if err != nil {
			t.Error(err)
			return
		}
		// Data visibility through Session read/write helpers.
		if _, err := exp.Write(region.Base+4*extent.PageSize, []byte("table one")); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 9)
		if _, err := att.Read(va, buf); err != nil {
			t.Error(err)
			return
		}
		if string(buf) != "table one" {
			t.Errorf("read %q", buf)
			return
		}
		// xpmem_detach, xpmem_release, xpmem_remove.
		if err := att.Detach(a, va); err != nil {
			t.Error(err)
		}
		if err := att.Release(a, segid, apid); err != nil {
			t.Error(err)
		}
		if err := exp.Remove(a, segid); err != nil {
			t.Error(err)
		}
		// Removed segments are no longer discoverable or gettable.
		if _, err := att.Lookup(a, "table1"); err == nil {
			t.Error("removed segment still discoverable")
		}
		if _, err := att.Get(a, segid, xpmem.PermRead); err == nil {
			t.Error("removed segment still gettable")
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
