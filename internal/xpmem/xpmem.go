// Package xpmem is the user-level, XPMEM-backwards-compatible API of
// Table 1 (§4.1). A Session binds one process to its enclave's XEMEM
// module; the six operations mirror the SGI/Cray XPMEM interface —
// xpmem_make, xpmem_remove, xpmem_get, xpmem_release, xpmem_attach,
// xpmem_detach — so applications written against XPMEM need no knowledge
// of enclave topology or cross-enclave channels (§3).
//
// The one extension beyond XPMEM is name-based discovery (Lookup), which
// substitutes for the filesystem IPC a single-OS system would use to pass
// segids between processes (§3.1).
package xpmem

import (
	"xemem/internal/core"
	"xemem/internal/pagetable"
	"xemem/internal/proc"
	"xemem/internal/sim"
	"xemem/internal/xproto"
)

// Re-exported identifier types, matching the XPMEM API's vocabulary.
type (
	// Segid names an exported segment, globally unique system-wide.
	Segid = xproto.Segid
	// Apid is an access permit returned by Get.
	Apid = xproto.Apid
	// Perm is a permission mask.
	Perm = xproto.Perm
)

// Permission bits.
const (
	PermRead  = xproto.PermRead
	PermWrite = xproto.PermWrite
)

// AttachAll, passed as the byte count to Attach, maps the entire segment
// from the given offset (the xpmem_attach whole-segment convention).
const AttachAll = core.AttachAll

// Session is one process's handle onto its enclave's XEMEM service (the
// analogue of an open /dev/xpmem descriptor).
type Session struct {
	mod *core.Module
	p   *proc.Process
}

// NewSession binds process p to its enclave module.
func NewSession(mod *core.Module, p *proc.Process) *Session {
	return &Session{mod: mod, p: p}
}

// Process returns the bound process.
func (s *Session) Process() *proc.Process { return s.p }

// Module returns the enclave module (diagnostics).
func (s *Session) Module() *core.Module { return s.mod }

// FrameCacheStats reports the enclave's serve-side frame-list cache
// counters (hits, misses, invalidations). The counters are host-side
// diagnostics only: cached serves charge the same simulated time as
// re-walking.
func (s *Session) FrameCacheStats() sim.CacheStats { return s.mod.FrameCacheStats() }

// Make exports [va, va+bytes) as shared memory and returns its segid
// (xpmem_make). If name is non-empty the segment is discoverable via
// Lookup from any enclave.
func (s *Session) Make(a *sim.Actor, va pagetable.VA, bytes uint64, perm Perm, name string) (Segid, error) {
	return s.mod.Make(a, s.p, va, bytes, perm, name)
}

// Remove retires an exported segment (xpmem_remove).
func (s *Session) Remove(a *sim.Actor, segid Segid) error {
	return s.mod.Remove(a, s.p, segid)
}

// Get requests access to a segment and returns a permission grant
// (xpmem_get).
func (s *Session) Get(a *sim.Actor, segid Segid, perm Perm) (Apid, error) {
	return s.mod.Get(a, s.p, segid, perm)
}

// Release drops a permission grant (xpmem_release).
func (s *Session) Release(a *sim.Actor, segid Segid, apid Apid) error {
	return s.mod.Release(a, s.p, segid, apid)
}

// Attach maps bytes of the segment at the given byte offset into the
// process and returns the new virtual address (xpmem_attach).
func (s *Session) Attach(a *sim.Actor, segid Segid, apid Apid, offset, bytes uint64, perm Perm) (pagetable.VA, error) {
	return s.mod.Attach(a, s.p, segid, apid, offset, bytes, perm)
}

// Detach unmaps an attachment by any address within it (xpmem_detach).
func (s *Session) Detach(a *sim.Actor, va pagetable.VA) error {
	return s.mod.Detach(a, s.p, va)
}

// Lookup resolves a published segment name (discoverability, §3.1).
func (s *Session) Lookup(a *sim.Actor, name string) (Segid, error) {
	return s.mod.Lookup(a, name)
}

// Read copies memory out of the process's address space (helper for
// applications built on the API).
func (s *Session) Read(va pagetable.VA, buf []byte) (int, error) {
	return s.p.AS.Read(va, buf)
}

// Write copies memory into the process's address space.
func (s *Session) Write(va pagetable.VA, data []byte) (int, error) {
	return s.p.AS.Write(va, data)
}
